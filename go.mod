module agnopol

go 1.22
