// Package agnopol is a full reproduction of "Proof of Location through a
// Blockchain Agnostic Smart Contract Language: Design and Evaluation over
// Algorand and Ethereum": a decentralized proof-of-location system built on
// a Reach-style contract language compiled to EVM and AVM backends, chain
// simulators for Ropsten/Goerli/Polygon/Algorand, a hypercube DHT keyed by
// Open Location Codes, an IPFS-style content store and a W3C-DID identity
// layer.
//
// The library lives under internal/; runnable entry points are in cmd/ and
// examples/; bench_test.go regenerates every table and figure of the
// paper's evaluation chapter. See README.md, DESIGN.md and EXPERIMENTS.md.
package agnopol
