// Badgehunt: the motivation of the paper's introduction, played out.
//
// A shop rewards users who check in nearby (the Foursquare badge /
// customer-loyalty scenario of §1.1). Three attackers try the classic
// exploits:
//
//  1. a GPS spoofer claims to be at the shop from across town — the witness
//     refuses to certify (Bluetooth says otherwise);
//
//  2. a replayer re-submits an old proof — the nonce check kills it;
//
//  3. two colluding remote peers mint a proof over the internet — it works
//     against the Brambilla-style baseline chain, which has no channel
//     binding, and fails against this system's witness-proximity check.
//
//     go run ./examples/badgehunt
package main

import (
	"fmt"
	"log"

	"agnopol/internal/baseline"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/geo"
)

func main() {
	shop := geo.LatLng{Lat: 44.4938, Lng: 11.3387} // Piazza Maggiore
	home := geo.Offset(shop, 4200, -2600)          // across town

	sys, err := core.NewSystem(9)
	if err != nil {
		log.Fatal(err)
	}
	conn := core.NewEVMConnector(eth.NewChain(eth.PolygonMumbai(), 9))
	verifier, err := core.NewVerifier(sys)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 50); err != nil {
		log.Fatal(err)
	}
	witness, err := core.NewWitness(sys, shop) // the shop's own device
	if err != nil {
		log.Fatal(err)
	}
	const reward = 1e15 // 0.001 MATIC coupon

	checkIn := func(name string, truePos geo.LatLng, claim *geo.LatLng) {
		p, err := core.NewProver(sys, truePos)
		if err != nil {
			log.Fatal(err)
		}
		if claim != nil {
			p.Device.Spoof(*claim)
		}
		acct, err := p.EnsureAccount(conn, 5)
		if err != nil {
			log.Fatal(err)
		}
		cid, err := p.UploadReport(core.Report{Title: "check-in", Category: "loyalty"})
		if err != nil {
			log.Fatal(err)
		}
		proof, err := p.RequestProof(witness, cid, acct.Address())
		if err != nil {
			fmt.Printf("%-10s REJECTED at the witness: %v\n", name, err)
			return
		}
		sub, err := p.SubmitProof(conn, proof, reward)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := verifier.FundContract(conn, sub.Handle, reward); err != nil {
			log.Fatal(err)
		}
		ver, err := verifier.VerifyProver(conn, sub.Handle, p.DID)
		if err != nil {
			log.Fatal(err)
		}
		if ver.Accepted {
			fmt.Printf("%-10s checked in, coupon paid (0.001 MATIC)\n", name)
		} else {
			fmt.Printf("%-10s REJECTED by the verifier: %s\n", name, ver.Reason)
		}
	}

	fmt.Println("== agnopol proof-of-location ==")
	checkIn("honest", shop, nil)
	checkIn("spoofer", home, &shop) // physically home, claims the shop

	// Replay: an honest user tries to reuse the same nonce twice.
	replayer, err := core.NewProver(sys, shop)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := replayer.EnsureAccount(conn, 5); err != nil {
		log.Fatal(err)
	}
	cid, err := replayer.UploadReport(core.Report{Title: "check-in", Category: "loyalty"})
	if err != nil {
		log.Fatal(err)
	}
	acct, _ := replayer.Account(conn)
	if _, err := replayer.RequestProof(witness, cid, acct.Address()); err != nil {
		log.Fatal(err)
	}
	// Second exchange reusing the consumed nonce (simulated by asking the
	// witness again with a stale request — see core's replay test for the
	// raw-protocol version).
	if _, err := replayer.RequestProof(witness, cid, acct.Address()); err != nil {
		fmt.Printf("%-10s REJECTED: %v\n", "replayer", err)
	} else {
		fmt.Printf("%-10s second fresh exchange fine (new nonce) — replays of OLD proofs die at the nonce check\n", "replayer")
	}

	// Collusion against the Brambilla-style baseline: prover at home,
	// accomplice at the shop, exchanging messages over the internet.
	fmt.Println("\n== Brambilla-style baseline chain (no channel binding) ==")
	rng := chain.NewRand(77)
	mallory, err := baseline.NewP2PPeer("mallory", home, 100, rng)
	if err != nil {
		log.Fatal(err)
	}
	mallory.Device.Spoof(shop) // claims the shop
	accomplice, err := baseline.NewP2PPeer("accomplice", shop, 100, rng)
	if err != nil {
		log.Fatal(err)
	}
	pchain := baseline.NewP2PChain([]*baseline.P2PPeer{mallory, accomplice}, 77)
	req := mallory.NewRequest(pchain.Head().Hash, 0)
	resp := accomplice.Respond(req, 0) // over any channel — 4 km away
	if err := pchain.Submit(resp); err != nil {
		log.Fatal(err)
	}
	pchain.Forge()
	if pchain.HasProofFor(mallory.Key.Public, shop, 50) {
		fmt.Println("mallory     COLLUSION SUCCEEDED: the chain holds a proof placing her at the shop")
	}
	fmt.Println("(the same collusion fails above: the witness only answers peers in Bluetooth range)")
}
