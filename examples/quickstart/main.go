// Quickstart: the smallest end-to-end proof-of-location round trip.
//
// One prover, one witness and one verifier meet in Bologna. The prover
// uploads a report to IPFS, gets a location proof over (simulated)
// Bluetooth, stages it in the per-area smart contract on the simulated
// Algorand network, and the verifier validates it, pays the reward, and
// publishes the report CID to the hypercube DHT.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"agnopol/internal/algorand"
	"agnopol/internal/core"
	"agnopol/internal/geo"
)

func main() {
	bologna := geo.LatLng{Lat: 44.4949, Lng: 11.3426}

	// The shared substrate: DID registry, IPFS, hypercube, CA, and the
	// PoL contract compiled for both backends.
	sys, err := core.NewSystem(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled the PoL contract:")
	fmt.Print(sys.Compiled.Report)

	// A connector to the simulated Algorand network (swap in
	// eth.Goerli() / eth.PolygonMumbai() to target the other chains —
	// same compiled contract, same calls).
	conn := core.NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), 1))

	witness, err := core.NewWitness(sys, geo.Offset(bologna, 2, 1))
	if err != nil {
		log.Fatal(err)
	}
	prover, err := core.NewProver(sys, bologna)
	if err != nil {
		log.Fatal(err)
	}
	verifier, err := core.NewVerifier(sys)
	if err != nil {
		log.Fatal(err)
	}
	acct, err := prover.EnsureAccount(conn, 10)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 10); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprover DID:  %s\nwitness DID: %s\n", prover.DID, witness.DID)

	// 1. Upload the report to IPFS.
	cid, err := prover.UploadReport(core.Report{
		Title:       "Oily spots on the river Reno",
		Description: "dark patches along the east bank",
		Category:    "water-pollution",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreport stored on IPFS: %s…\n", cid[:24])

	// 2. Bluetooth exchange: DID auth, nonce, proof.
	proof, err := prover.RequestProof(witness, cid, acct.Address())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("witness signed proof hash %x…\n", proof.Hash[:8])

	// 3. Stage the proof on-chain (deploys the area contract, since the
	// hypercube has no entry for this OLC yet).
	const reward = 100_000 // 0.1 ALGO in µAlgos
	sub, err := prover.SubmitProof(conn, proof, reward)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed contract %s in %.1fs (fees %s)\n",
		sub.Handle.ID(), sub.Op.Latency.Seconds(), sub.Op.Fee)

	// 4. The verifier funds and validates; the prover gets the reward and
	// the CID enters the hypercube.
	if _, err := verifier.FundContract(conn, sub.Handle, reward); err != nil {
		log.Fatal(err)
	}
	before := conn.Balance(acct)
	ver, err := verifier.VerifyProver(conn, sub.Handle, prover.DID)
	if err != nil {
		log.Fatal(err)
	}
	after := conn.Balance(acct)
	fmt.Printf("verification accepted=%v; prover balance %v -> %v\n",
		ver.Accepted, before, after)

	// 5. Anyone can now query the area through the DHT.
	code := proof.Request.OLC
	target, err := sys.NodeIDForOLC(code)
	if err != nil {
		log.Fatal(err)
	}
	entry, hops, ok, err := sys.Cube.Get(0, target, code)
	if err != nil || !ok {
		log.Fatalf("hypercube lookup failed: %v", err)
	}
	fmt.Printf("hypercube node %d (reached in %d hops) serves %d validated report(s) for %s\n",
		target, hops, len(entry.CIDs), code)
	data, err := sys.IPFS.Get(ver.CID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report body: %s\n", data)
}
