// Greentoken: the paper's §2.8 and §2.1 extensions working together.
//
// The crowdsensing operator mints a GREEN reward token as an Algorand
// Standard Asset ("in the future will be possible to create a new token
// and transfer it, using the Algorand Standard Assets") and the CA issues
// Verifiable Credentials to witnesses ("in a new version of this project,
// they will issue Verifiable Credentials"). A prover submits a report; the
// verifier checks the witness's credential presentation before accepting
// the proof, then pays the reward in GREEN instead of ALGO.
//
//	go run ./examples/greentoken
package main

import (
	"fmt"
	"log"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/core"
	"agnopol/internal/did"
	"agnopol/internal/geo"
	"agnopol/internal/polcrypto"
)

func main() {
	sys, err := core.NewSystem(17)
	if err != nil {
		log.Fatal(err)
	}
	algoChain := algorand.NewChain(algorand.Testnet(), 17)
	conn := core.NewAlgorandConnector(algoChain)
	cl := algorand.NewClient(algoChain)
	spot := geo.LatLng{Lat: 44.4949, Lng: 11.3426}

	// The operator (also playing CA issuer here) mints the GREEN ASA.
	operator := algoChain.NewAccount(50_000_000)
	_, greenID, err := cl.CreateAsset(operator, "Green Reward", "GREEN", 1_000_000, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("minted ASA %d: 10,000.00 GREEN total supply\n", greenID)

	// The CA gets a DID and issues a WitnessCredential to the witness.
	caKey, caDID := mustActor(sys)
	witness, err := core.NewWitness(sys, spot)
	if err != nil {
		log.Fatal(err)
	}
	cred, err := did.IssueCredential(caKey, caDID, witness.DID, "WitnessCredential",
		map[string]string{"role": "witness", "area": "Bologna"},
		0, 24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CA %s… issued %s to witness %s…\n", caDID[:20], cred.Type, witness.DID[:20])

	// A relying party (the verifier) challenges the witness to present it.
	var nonce [32]byte
	if _, err := sys.Rand.Read(nonce[:]); err != nil {
		log.Fatal(err)
	}
	presentation := did.Present(witness.Key, cred, nonce)
	if err := did.VerifyPresentation(sys.Registry, presentation, time.Hour); err != nil {
		log.Fatal(err)
	}
	fmt.Println("witness presented a valid WitnessCredential (holder-bound, unexpired)")

	// The normal PoL flow.
	verifier, err := core.NewVerifier(sys)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 10); err != nil {
		log.Fatal(err)
	}
	prover, err := core.NewProver(sys, spot)
	if err != nil {
		log.Fatal(err)
	}
	acct, err := prover.EnsureAccount(conn, 10)
	if err != nil {
		log.Fatal(err)
	}
	cid, err := prover.UploadReport(core.Report{
		Title: "Cleaned riverbank", Category: "stewardship",
	})
	if err != nil {
		log.Fatal(err)
	}
	proof, err := prover.RequestProof(witness, cid, acct.Address())
	if err != nil {
		log.Fatal(err)
	}
	sub, err := prover.SubmitProof(conn, proof, 1) // nominal 1 µAlgo on-chain reward
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.FundContract(conn, sub.Handle, 1); err != nil {
		log.Fatal(err)
	}
	ver, err := verifier.VerifyProver(conn, sub.Handle, prover.DID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report accepted=%v — paying the real reward in GREEN\n", ver.Accepted)

	// GREEN payout: the prover opts in, the operator transfers.
	proverAlgo := acct.Algorand()
	if _, err := cl.OptInAsset(proverAlgo, greenID); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.TransferAsset(operator, greenID, proverAlgo.Address, 2500); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prover GREEN balance: %d.%02d GREEN\n",
		algoChain.AssetBalance(proverAlgo.Address, greenID)/100,
		algoChain.AssetBalance(proverAlgo.Address, greenID)%100)
}

// mustActor registers a fresh DID-holding actor.
func mustActor(sys *core.System) (*polcrypto.KeyPair, did.DID) {
	kp, err := polcrypto.GenerateKeyPair(sys.Rand)
	if err != nil {
		log.Fatal(err)
	}
	d, err := sys.RegisterDID(kp.Public)
	if err != nil {
		log.Fatal(err)
	}
	return kp, d
}
