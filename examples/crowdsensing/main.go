// Crowdsensing: the Chapter-3 use case — environmental issue reports.
//
// Citizens across several areas of a city report environmental issues
// (abandoned waste, oily rivers, potholes). Each area gets its own smart
// contract (factory-style, one per Open Location Code cell), reports are
// validated by a designated verifier, rewarded in ALGO, and the application
// then renders an area's reports by querying the hypercube and fetching the
// bodies from IPFS — the display path of Fig. 3.2.
//
//	go run ./examples/crowdsensing
package main

import (
	"encoding/json"
	"fmt"
	"log"

	"agnopol/internal/algorand"
	"agnopol/internal/core"
	"agnopol/internal/geo"
	"agnopol/internal/ipfs"
)

type spot struct {
	name    string
	at      geo.LatLng
	reports []core.Report
}

func main() {
	sys, err := core.NewSystem(3)
	if err != nil {
		log.Fatal(err)
	}
	conn := core.NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), 3))

	city := geo.LatLng{Lat: 44.4949, Lng: 11.3426} // Bologna
	spots := []spot{
		{
			name: "Reno river bank",
			at:   geo.Offset(city, 900, -1200),
			reports: []core.Report{
				{Title: "Oily spots on the river", Category: "water-pollution",
					Description: "iridescent film, ~50 m stretch"},
				{Title: "Dead fish downstream", Category: "water-pollution",
					Description: "several near the weir"},
			},
		},
		{
			name: "Industrial lot, via Stalingrado",
			at:   geo.Offset(city, 2500, 1800),
			reports: []core.Report{
				{Title: "Illegally abandoned waste", Category: "waste",
					Description: "construction debris and drums"},
			},
		},
		{
			name: "Park entrance",
			at:   geo.Offset(city, -700, 300),
			reports: []core.Report{
				{Title: "Hole in the road", Category: "road-damage",
					Description: "deep pothole by the gate"},
				{Title: "Contaminated ground", Category: "soil",
					Description: "discoloured soil near the flowerbed"},
			},
		},
	}

	verifier, err := core.NewVerifier(sys)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 100); err != nil {
		log.Fatal(err)
	}
	const reward = 50_000 // 0.05 ALGO

	fmt.Println("== collection phase ==")
	for _, s := range spots {
		witness, err := core.NewWitness(sys, s.at)
		if err != nil {
			log.Fatal(err)
		}
		var handle *core.Handle
		for i, rep := range s.reports {
			prover, err := core.NewProver(sys, s.at)
			if err != nil {
				log.Fatal(err)
			}
			acct, err := prover.EnsureAccount(conn, 5)
			if err != nil {
				log.Fatal(err)
			}
			cid, err := prover.UploadReport(rep)
			if err != nil {
				log.Fatal(err)
			}
			proof, err := prover.RequestProof(witness, cid, acct.Address())
			if err != nil {
				log.Fatal(err)
			}
			sub, err := prover.SubmitProof(conn, proof, reward)
			if err != nil {
				log.Fatal(err)
			}
			if sub.Deployed {
				handle = sub.Handle
				fmt.Printf("  %-32s contract %s deployed by report %d\n", s.name, sub.Handle.ID(), i)
			}
			if _, err := verifier.FundContract(conn, sub.Handle, reward); err != nil {
				log.Fatal(err)
			}
			ver, err := verifier.VerifyProver(conn, sub.Handle, prover.DID)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    %-34q accepted=%v reward=0.05 ALGO\n", rep.Title, ver.Accepted)
		}
		_ = handle
	}

	// The application view (Fig. 3.2): pick an area, query the hypercube
	// for its entry, pull the CIDs from IPFS and display.
	fmt.Println("\n== display phase (app view) ==")
	for _, s := range spots {
		code, target := areaOf(sys, s.at)
		entry, hops, ok, err := sys.Cube.Get(0, target, code)
		if err != nil || !ok {
			log.Fatalf("no hypercube entry for %s", s.name)
		}
		fmt.Printf("%s (%s, DHT node %d, %d hops): %d validated report(s)\n",
			s.name, code, target, hops, len(entry.CIDs))
		for _, cidStr := range entry.CIDs {
			data, err := sys.IPFS.Get(ipfs.CID(cidStr))
			if err != nil {
				log.Fatal(err)
			}
			var rep core.Report
			if err := json.Unmarshal(data, &rep); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("   • [%s] %s — %s\n", rep.Category, rep.Title, rep.Description)
		}
	}

	// Nearby search: one DHT range query collects this area and its
	// neighbours (§1.3's complex queries).
	fmt.Println("\n== nearby search (range query, ≤2 hops) ==")
	_, target := areaOf(sys, spots[0].at)
	entries, err := sys.Cube.RangeQuery(target, 2)
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		total += len(e.CIDs)
	}
	fmt.Printf("found %d area(s) holding %d report(s) within 2 hops of node %d\n",
		len(entries), total, target)
}

func areaOf(sys *core.System, at geo.LatLng) (string, uint64) {
	p, err := core.NewProver(sys, at)
	if err != nil {
		log.Fatal(err)
	}
	code, err := p.ClaimedOLC()
	if err != nil {
		log.Fatal(err)
	}
	target, err := sys.NodeIDForOLC(code)
	if err != nil {
		log.Fatal(err)
	}
	return code, target
}
