// Geofence: the Victor-et-al related work (§1.7.1) on our stack.
//
// A geofence is a set of grid cells (Open Location Code cells here, where
// the original used Geohash-like cells) stored in an Ethereum smart
// contract; an oracle checks whether a tracked device's attested location
// falls inside the fence and triggers actions. The example reproduces their
// cost analysis — ~20,000 gas per cell, ~2.1M gas for a 100-cell fence —
// and shows why on-chain geofences stopped being viable as gas prices rose.
//
//	go run ./examples/geofence
package main

import (
	"fmt"
	"log"

	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/geo"
	"agnopol/internal/lang"
	"agnopol/internal/olc"
	"agnopol/internal/polcrypto"
)

func main() {
	// The geofence contract in the agnostic language: a map of cell
	// hashes plus a containment check API.
	p := lang.NewProgram("geofence")
	p.DeclareMap("cells", lang.TUInt, lang.TUInt)
	p.DeclareGlobal("cellCount", lang.TUInt)
	p.SetConstructor(nil)
	p.AddAPI(&lang.API{
		Name:    "add_cell",
		Params:  []lang.Param{{Name: "cell", Type: lang.TUInt}},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: &lang.Not{A: &lang.MapHas{Map: "cells", Key: lang.A(0)}}, Msg: "cell already present"},
			&lang.MapSet{Map: "cells", Key: lang.A(0), Value: lang.U(1)},
			&lang.SetGlobal{Name: "cellCount", Value: lang.Add(lang.G("cellCount"), lang.U(1))},
			&lang.Return{Value: lang.G("cellCount")},
		},
	})
	p.AddAPI(&lang.API{
		Name:    "inside",
		Params:  []lang.Param{{Name: "cell", Type: lang.TUInt}},
		Returns: lang.TBool,
		Body: []lang.Stmt{
			&lang.Return{Value: &lang.MapHas{Map: "cells", Key: lang.A(0)}},
		},
	})
	p.AddView("getCellCount", lang.TUInt, lang.G("cellCount"))

	compiled, err := lang.Compile(p, lang.Options{MaxBytesLen: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(compiled.Report)

	conn := core.NewEVMConnector(eth.NewChain(eth.Goerli(), 12))
	acct, err := conn.NewAccount(50)
	if err != nil {
		log.Fatal(err)
	}
	h, deployOp, err := conn.Deploy(acct, compiled, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeofence contract %s deployed (gas %d, fee %s)\n",
		h.ID(), deployOp.GasUsed, deployOp.Fee)

	// Fence a 10×10 block of OLC cells around Bologna's station.
	center := geo.LatLng{Lat: 44.5056, Lng: 11.3430}
	var totalGas uint64
	var totalFee float64
	cells := 0
	seen := make(map[uint64]bool)
	for dn := -5; dn < 5; dn++ {
		for de := -5; de < 5; de++ {
			pos := geo.Offset(center, float64(dn)*14, float64(de)*14)
			code := olc.MustEncode(pos.Lat, pos.Lng, olc.DefaultCodeLength)
			id := cellID(code)
			if seen[id] {
				// Adjacent 14 m offsets can land in the same OLC cell.
				continue
			}
			seen[id] = true
			_, op, err := conn.Invoke(acct, h, "add_cell", core.CallOpts{}, lang.Uint64Value(id))
			if err != nil {
				log.Fatal(err)
			}
			totalGas += op.GasUsed
			totalFee += op.Fee.Euros()
			cells++
		}
	}
	fmt.Printf("stored %d cells: %d gas (%.0f gas/cell), €%.2f total\n",
		cells, totalGas, float64(totalGas)/float64(cells), totalFee)
	fmt.Println("(Victor et al. 2018: 20,000 gas/cell, 2,088,102 gas per 100-cell fence, $1.89 then, ~$240 by 2022)")

	// Track a device: inside the fence, then out.
	check := func(name string, at geo.LatLng) {
		code := olc.MustEncode(at.Lat, at.Lng, olc.DefaultCodeLength)
		v, _, err := conn.Invoke(acct, h, "inside", core.CallOpts{}, lang.Uint64Value(cellID(code)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("device %-12s at %s -> inside fence: %v\n", name, code, v.Bool)
	}
	check("courier-1", center)
	check("courier-1", geo.Offset(center, 2000, 0))

	cnt, err := conn.View(h, "getCellCount")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("on-chain cell count (free view): %d\n", cnt.Uint)
}

// cellID compresses an OLC cell into the UInt key the contract map uses.
func cellID(code string) uint64 {
	h := polcrypto.Hash([]byte("geofence-cell:" + code))
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(h[i])
	}
	return v
}
