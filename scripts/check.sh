#!/bin/sh
# Full repository check: build, vet, tests (with race detector), examples,
# and a single pass of every benchmark. This is what CI would run.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== vet =="
go vet ./...

echo "== tests (race, shuffled) =="
go test -race -shuffle=on ./...

echo "== examples =="
for ex in quickstart crowdsensing geofence badgehunt greentoken; do
    echo "-- examples/$ex"
    go run "./examples/$ex" > /dev/null
done

echo "== tools =="
go run ./cmd/polc > /dev/null
go run ./cmd/polc -v2 > /dev/null
go run ./cmd/polsim -chain algorand > /dev/null

echo "== parallel matrix =="
# Exercises the worker-pool engine (sequential baseline + 4 workers,
# determinism checked inside) and leaves BENCH_parallel.json for CI to
# upload as an artifact.
go run ./cmd/polbench -matrix -parallel 4 -reps 2 -benchout BENCH_parallel.json > /dev/null

echo "== fault sweep =="
# Reliability smoke: the full pipeline under the default fault profile
# (sequential baseline + parallel re-run, determinism checked inside);
# leaves FAULTS_report.json for CI to upload as an artifact.
go run ./cmd/polbench -faults default -faultrate 0.2 -reps 2 -parallel 4 -faultsout FAULTS_report.json > /dev/null

echo "== sharded soak =="
# Throughput smoke: serial baseline + 4-shard run over the same workload
# (bit-identity checked inside); leaves BENCH_throughput.json for CI to
# gate against the committed baseline and upload as an artifact.
go run ./cmd/polbench -soak -areas 8 -soakusers 32 -soakrounds 15 -shards 4 -benchout BENCH_throughput.json > /dev/null
# State gate on the smoke record: serial and sharded runs must agree on
# the world-state Merkle root. The memory bound is loose here because at
# 32 users fixed process heap dominates bytes/user; the default 8192
# bound applies to the committed full-scale soak record.
go run ./cmd/benchgate -kind state -fresh BENCH_throughput.json -maxbytesperuser 2000000

echo "== cross-chain soak =="
# Agnosticism smoke: one soak spread over goerli + polygon + algorand at
# once (concurrent and sequential interleavings compared inside the run),
# executed twice to check the whole record's per-backend digests are
# bit-identical across processes, then the crosschain gate against the
# committed baseline.
cc_tmp="$(mktemp -d)"
go run ./cmd/polbench -soak -soakchain all -areas 6 -soakusers 24 -soakrounds 10 -shards 2 \
    -benchout "$cc_tmp/run1.json" > /dev/null
go run ./cmd/polbench -soak -soakchain all -areas 6 -soakusers 24 -soakrounds 10 -shards 2 \
    -benchout "$cc_tmp/run2.json" > /dev/null
cc_digests1="$(grep -E '"(digest|digest_sequential|state_root)"' "$cc_tmp/run1.json")"
cc_digests2="$(grep -E '"(digest|digest_sequential|state_root)"' "$cc_tmp/run2.json")"
if [ -z "$cc_digests1" ] || [ "$cc_digests1" != "$cc_digests2" ]; then
    echo "cross-chain smoke: per-backend digests diverge across re-runs" >&2
    exit 1
fi
go run ./cmd/benchgate -kind crosschain -fresh "$cc_tmp/run1.json" -baseline ci/baseline/BENCH_throughput.json
rm -rf "$cc_tmp"

echo "== persistence (kill-and-resume) =="
# Crash-safety smoke: an uninterrupted reference soak, then the identical
# workload checkpointing into a state dir and killed with SIGKILL
# mid-flight, then resumed from whatever manifest survived the kill. The
# resumed run must land on the reference digest — restart-from-root is
# bit-exact. The harness is built to a real binary first: SIGKILLing a
# `go run` pid would orphan the child instead of killing the harness. If
# the kill happens to land after the run finished, the resume degrades to
# a digest-preserving no-op and the comparison still holds.
persist_tmp="$(mktemp -d)"
go build -o "$persist_tmp/polbench" ./cmd/polbench
"$persist_tmp/polbench" -soak -areas 4 -soakusers 48 -soakrounds 300 -shards 2 \
    -statedir "$persist_tmp/ref" -checkpoint 20 \
    -benchout "$persist_tmp/ref.json" > /dev/null
"$persist_tmp/polbench" -soak -areas 4 -soakusers 48 -soakrounds 300 -shards 2 \
    -statedir "$persist_tmp/killed" -checkpoint 20 \
    -benchout "$persist_tmp/killed.json" > /dev/null &
kill_pid=$!
tries=0
while [ ! -f "$persist_tmp/killed/MANIFEST" ] && [ $tries -lt 400 ]; do
    tries=$((tries + 1))
    sleep 0.05
done
# The setup checkpoint writes the first manifest right after deployment;
# a short grace period lets the load phase commit a few more before the
# kill lands mid-run.
sleep 0.5
kill -9 "$kill_pid" 2>/dev/null || true
wait "$kill_pid" 2>/dev/null || true
"$persist_tmp/polbench" -soak -statedir "$persist_tmp/killed" -resume \
    -benchout "$persist_tmp/resumed.json" > /dev/null
ref_digest="$(grep '"digest"' "$persist_tmp/ref.json")"
res_digest="$(grep '"digest"' "$persist_tmp/resumed.json")"
if [ -z "$ref_digest" ] || [ "$ref_digest" != "$res_digest" ]; then
    echo "persistence smoke: resumed digest diverges from the uninterrupted reference" >&2
    echo "  reference: $ref_digest" >&2
    echo "  resumed:   $res_digest" >&2
    exit 1
fi
rm -rf "$persist_tmp"

echo "== persistence benchmark =="
# Stop-at-checkpoint + resume vs uninterrupted, on both chain families,
# inside one process (the SIGKILL variant above covers the hard-crash
# path); leaves BENCH_persist.json for CI to gate and upload.
go run ./cmd/polbench -persist -areas 4 -soakusers 12 -soakrounds 10 -shards 2 \
    -benchout BENCH_persist.json > /dev/null
go run ./cmd/benchgate -kind persist -fresh BENCH_persist.json

echo "== serve smoke =="
# Live-telemetry smoke: a soak with the HTTP exposition server attached,
# scraped from outside the process while it is up, then shut down via
# POST /quitquitquit. Leaves HEALTH_report.json for the health gate and
# for CI to upload as an artifact. The throughput record goes to a
# scratch path so this small run cannot clobber the gated
# BENCH_throughput.json written by the sharded-soak section above.
serve_addr="127.0.0.1:19464"
smoke_bench="$(mktemp)"
go run ./cmd/polbench -soak -areas 4 -soakusers 16 -soakrounds 10 \
    -serve "$serve_addr" -servehold 60s -healthout HEALTH_report.json \
    -benchout "$smoke_bench" > /dev/null &
serve_pid=$!
metrics=""
tries=0
while [ $tries -lt 150 ]; do
    if metrics="$(curl -fsS "http://$serve_addr/metrics" 2>/dev/null)" && [ -n "$metrics" ]; then
        break
    fi
    tries=$((tries + 1))
    sleep 0.2
done
if [ -z "$metrics" ]; then
    echo "serve smoke: /metrics never answered" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
health="$(curl -fsS "http://$serve_addr/health")"
if [ -z "$health" ]; then
    echo "serve smoke: /health answered empty" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
curl -fsS -X POST "http://$serve_addr/quitquitquit" > /dev/null
wait "$serve_pid"
rm -f "$smoke_bench"
if [ ! -s HEALTH_report.json ]; then
    echo "serve smoke: HEALTH_report.json was not written" >&2
    exit 1
fi
go run ./cmd/benchgate -kind health -fresh HEALTH_report.json

echo "== vm microbenchmarks =="
# Sanity-checks the u256 fast path against the big.Int reference on the
# deploy+attach workload and leaves BENCH_vm.json for CI to upload as an
# artifact. 1s per engine so the ns/op numbers are comparable to the
# committed ci/baseline/BENCH_vm.json (a 1x run is measurement noise).
go run ./cmd/polbench -vmbench -vmbenchtime 1s -benchout BENCH_vm.json > /dev/null

echo "== precompile smoke =="
# The proof-verification workloads only (-vmfilter), then the vm gate's
# precompile-speedup floor on the fresh record. The record serves as its
# own baseline here: ns/op numbers are not portable across machines, so
# locally the machine-independent precompiled-vs-interpreted ratio is the
# signal; CI gates ns/op regression against the committed baseline.
smoke_vm="$(mktemp)"
go run ./cmd/polbench -vmbench -vmfilter proof_verify -vmbenchtime 1s -benchout "$smoke_vm" > /dev/null
go run ./cmd/benchgate -kind vm -fresh "$smoke_vm" -baseline "$smoke_vm" -minprecompilespeedup 2
rm -f "$smoke_vm"

echo "== benchmarks (1 iteration) =="
go test -bench=. -benchmem -benchtime=1x ./... > /dev/null

echo "ALL CHECKS PASSED"
