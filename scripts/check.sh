#!/bin/sh
# Full repository check: build, vet, tests (with race detector), examples,
# and a single pass of every benchmark. This is what CI would run.
set -eu
cd "$(dirname "$0")/.."

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests (race, shuffled) =="
go test -race -shuffle=on ./...

echo "== examples =="
for ex in quickstart crowdsensing geofence badgehunt greentoken; do
    echo "-- examples/$ex"
    go run "./examples/$ex" > /dev/null
done

echo "== tools =="
go run ./cmd/polc > /dev/null
go run ./cmd/polc -v2 > /dev/null
go run ./cmd/polsim -chain algorand > /dev/null

echo "== parallel matrix =="
# Exercises the worker-pool engine (sequential baseline + 4 workers,
# determinism checked inside) and leaves BENCH_parallel.json for CI to
# upload as an artifact.
go run ./cmd/polbench -matrix -parallel 4 -reps 2 -benchout BENCH_parallel.json > /dev/null

echo "== fault sweep =="
# Reliability smoke: the full pipeline under the default fault profile
# (sequential baseline + parallel re-run, determinism checked inside);
# leaves FAULTS_report.json for CI to upload as an artifact.
go run ./cmd/polbench -faults default -faultrate 0.2 -reps 2 -parallel 4 -faultsout FAULTS_report.json > /dev/null

echo "== vm microbenchmarks =="
# One iteration per engine: sanity-checks the u256 fast path against the
# big.Int reference on the deploy+attach workload and leaves BENCH_vm.json
# for CI to upload as an artifact.
go run ./cmd/polbench -vmbench -vmbenchtime 1x -benchout BENCH_vm.json > /dev/null

echo "== benchmarks (1 iteration) =="
go test -bench=. -benchmem -benchtime=1x ./... > /dev/null

echo "ALL CHECKS PASSED"
