// Command polsim runs the §4.5-style scripted execution: a contract with a
// creator, attachers, and a verifier validating both provers — narrated
// step by step on the chain of your choice.
//
//	polsim -chain algorand
//	polsim -chain goerli -users 4
package main

import (
	"flag"
	"fmt"
	"os"

	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/geo"
	"agnopol/internal/sim"
)

func main() {
	var (
		chainName = flag.String("chain", "algorand", "ropsten | goerli | polygon | algorand")
		users     = flag.Int("users", 4, "provers on the contract (max 4 per the thesis contract)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		explorer  = flag.Bool("explorer", false, "print the Fig 3.1 EtherScan-style contract history (EVM chains)")
	)
	flag.Parse()
	if *users < 1 || *users > core.MaxUsers {
		fatal(fmt.Errorf("users must be 1..%d", core.MaxUsers))
	}

	conn, err := sim.NewConnector(sim.ChainName(*chainName), *seed)
	if err != nil {
		fatal(err)
	}
	sys, err := core.NewSystem(*seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("chain: %s (%s)\n", conn.Name(), conn.Unit().Name)
	fmt.Print(sys.Compiled.Report)

	spot := geo.LatLng{Lat: 44.4949, Lng: 11.3426}
	witness, err := core.NewWitness(sys, spot)
	if err != nil {
		fatal(err)
	}
	verifier, err := core.NewVerifier(sys)
	if err != nil {
		fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 100); err != nil {
		fatal(err)
	}
	reward := uint64(1e15)
	if conn.Unit().Name == "ALGO" {
		reward = 100_000
	}

	var handle *core.Handle
	var provers []*core.Prover
	for u := 0; u < *users; u++ {
		p, err := core.NewProver(sys, spot)
		if err != nil {
			fatal(err)
		}
		acct, err := p.EnsureAccount(conn, 10)
		if err != nil {
			fatal(err)
		}
		cid, err := p.UploadReport(core.Report{
			Title:       fmt.Sprintf("report by user %d", u),
			Description: "environment issue",
			Category:    "environment",
		})
		if err != nil {
			fatal(err)
		}
		proof, err := p.RequestProof(witness, cid, acct.Address())
		if err != nil {
			fatal(err)
		}
		sub, err := p.SubmitProof(conn, proof, reward)
		if err != nil {
			fatal(err)
		}
		role := "attach"
		if sub.Deployed {
			role = "DEPLOY"
			handle = sub.Handle
			fmt.Printf("\nThe contract is deployed as %s\n", sub.Handle.ID())
		}
		fmt.Printf("user %d  %-6s  %6.2fs  fees %v  (hypercube lookup: %d hops)\n",
			u, role, sub.Op.Latency.Seconds(), sub.Op.Fee, sub.Hops)
		provers = append(provers, p)
	}

	sits, err := conn.View(handle, "getAvailableSits")
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\navailable sits after inserts (free view): %d\n", sits.Uint)

	fund := uint64(len(provers)) * reward
	if _, err := verifier.FundContract(conn, handle, fund); err != nil {
		fatal(err)
	}
	fmt.Printf("verifier funded the contract with %d base units\n", fund)

	for u, p := range provers {
		ver, err := verifier.VerifyProver(conn, handle, p.DID)
		if err != nil {
			fatal(err)
		}
		if ver.Accepted {
			fmt.Printf("DID %d has been verified by Verifier %s\n", p.DID.Uint64(), verifier.DID[:24])
		} else {
			fmt.Printf("DID %d has NOT been verified: %s\n", p.DID.Uint64(), ver.Reason)
		}
		_ = u
	}
	fmt.Printf("contract balance after verification: %d\n", conn.ContractBalance(handle))
	fmt.Printf("simulated time elapsed: %.1fs\n", conn.Now().Seconds())

	if *explorer {
		evmConn, ok := conn.(*core.EVMConnector)
		if !ok {
			fmt.Println("\n(-explorer is only available on EVM chains)")
			return
		}
		fmt.Println("\n== contract history (Fig 3.1, read bottom-up) ==")
		records := evmConn.Chain().HistoryOf(handle.EVMAddr)
		fmt.Print(eth.FormatHistory(handle.EVMAddr, records, conn.Unit()))
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "polsim: %v\n", err)
	os.Exit(1)
}
