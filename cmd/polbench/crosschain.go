package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"agnopol/internal/obs"
	"agnopol/internal/sim"
)

// crossChainBackendJSON is one backend's share of the cross-chain soak.
// Digest comes from the concurrent pass and DigestSequential from the
// serial pass; the two must be byte-equal — that pair is what benchgate
// re-compares, so the record carries both instead of a pre-computed
// verdict it would have to trust.
type crossChainBackendJSON struct {
	Chain            string  `json:"chain"`
	Areas            int     `json:"areas"`
	Users            int     `json:"users"`
	Seed             uint64  `json:"seed"`
	TxsIncluded      uint64  `json:"txs_included"`
	Blocks           uint64  `json:"blocks"`
	WallSeconds      float64 `json:"wall_seconds"`
	TxsPerSecWall    float64 `json:"txs_per_sec_wall"`
	FeesPaid         string  `json:"fees_paid"`
	MeanFeeEuro      float64 `json:"mean_fee_euro"`
	Digest           string  `json:"digest"`
	DigestSequential string  `json:"digest_sequential"`
	StateRoot        string  `json:"state_root"`
}

// crossChainDiscoveryJSON summarizes the DHT discovery phase of the
// concurrent pass.
type crossChainDiscoveryJSON struct {
	Shards          int      `json:"shards"`
	R               int      `json:"r"`
	Lookups         uint64   `json:"lookups"`
	PerShardLookups []uint64 `json:"per_shard_lookups"`
	MaxHops         int      `json:"max_hops"`
	FlatEquivalent  bool     `json:"flat_equivalent"`
}

// crossChainJSON is the cross_chain section of BENCH_throughput.json: one
// soak spread over every backend simultaneously, plus the sequential
// re-run that proves scheduling never reached chain state.
type crossChainJSON struct {
	Chains     []string `json:"chains"`
	Areas      int      `json:"areas"`
	Users      int      `json:"users"`
	Rounds     int      `json:"rounds"`
	Shards     int      `json:"shards"`
	Seed       uint64   `json:"seed"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	NumCPU     int      `json:"num_cpu"`
	// WallSeconds is the concurrent pass; SequentialWallSeconds the serial
	// re-run over the identical workload.
	WallSeconds           float64 `json:"wall_seconds"`
	SequentialWallSeconds float64 `json:"sequential_wall_seconds"`
	// AggregateTps is all backends' included transactions per concurrent
	// wall second; SlowestTps the slowest backend's own throughput;
	// SpeedupVsSlowest their ratio.
	AggregateTps     float64 `json:"aggregate_txs_per_sec_wall"`
	SlowestTps       float64 `json:"slowest_backend_txs_per_sec_wall"`
	SpeedupVsSlowest float64 `json:"speedup_vs_slowest"`
	// SpeedupValid is false when GOMAXPROCS < 2: one scheduler thread
	// cannot overlap the backends, so the ratio is not a concurrency
	// measurement.
	SpeedupValid bool `json:"speedup_valid"`
	// Deterministic records that every backend's concurrent digest and
	// state root matched the sequential re-run's.
	Deterministic bool                    `json:"deterministic"`
	Backends      []crossChainBackendJSON `json:"backends"`
	Discovery     crossChainDiscoveryJSON `json:"discovery"`
}

// runCrossChainMode drives one soak across every backend preset at once,
// re-runs it with the backends serialized, checks the per-backend digests
// and state roots are bit-identical across the two interleavings, and
// merges the cross_chain section into the throughput record at out —
// preserving an existing single-chain record's runs when the file already
// holds one, so one BENCH_throughput.json carries both bodies of evidence.
func runCrossChainMode(areas, users, rounds, shards int, seed uint64, out string, o *obs.Obs, tel *obs.Telemetry, jsonOut bool) error {
	spec := sim.MultiSoakSpec{
		Chains: sim.AllChains, Areas: areas, Users: users, Rounds: rounds,
		Shards: shards, Seed: seed, Obs: o, Telemetry: tel,
	}
	conc, err := sim.RunMultiSoak(spec)
	if err != nil {
		return fmt.Errorf("cross-chain soak (concurrent): %w", err)
	}
	spec.Sequential = true
	seq, err := sim.RunMultiSoak(spec)
	if err != nil {
		return fmt.Errorf("cross-chain soak (sequential baseline): %w", err)
	}

	rec := crossChainJSON{
		Areas: areas, Users: users, Rounds: rounds, Shards: conc.Shards, Seed: seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		WallSeconds:           conc.Wall.Seconds(),
		SequentialWallSeconds: seq.Wall.Seconds(),
		AggregateTps:          conc.AggregateTps,
		SlowestTps:            conc.SlowestTps,
		SpeedupVsSlowest:      conc.SpeedupVsSlowest,
		SpeedupValid:          runtime.GOMAXPROCS(0) >= 2,
		Deterministic:         true,
		Discovery: crossChainDiscoveryJSON{
			Shards:          conc.Discovery.Shards,
			R:               conc.Discovery.R,
			Lookups:         conc.Discovery.Lookups,
			PerShardLookups: conc.Discovery.PerShardLookups,
			MaxHops:         conc.Discovery.MaxHops,
			FlatEquivalent:  conc.Discovery.FlatEquivalent,
		},
	}
	for b := range conc.Backends {
		cb, sb := conc.Backends[b], seq.Backends[b]
		if cb.Soak.Digest != sb.Soak.Digest || cb.Soak.StateRoot != sb.Soak.StateRoot {
			return fmt.Errorf("cross-chain soak is not deterministic: backend %s diverges between the concurrent and sequential interleavings", cb.Chain)
		}
		rec.Chains = append(rec.Chains, string(cb.Chain))
		rec.Backends = append(rec.Backends, crossChainBackendJSON{
			Chain: string(cb.Chain), Areas: cb.Areas, Users: cb.Users, Seed: cb.Seed,
			TxsIncluded: cb.Soak.Included, Blocks: cb.Soak.Blocks,
			WallSeconds:   cb.Soak.Wall.Seconds(),
			TxsPerSecWall: cb.Soak.TxsPerSecWall(),
			FeesPaid:      cb.Soak.FeesPaid.String(), MeanFeeEuro: cb.Soak.MeanFeeEuro,
			Digest:           fmt.Sprintf("%x", cb.Soak.Digest[:]),
			DigestSequential: fmt.Sprintf("%x", sb.Soak.Digest[:]),
			StateRoot:        fmt.Sprintf("%x", cb.Soak.StateRoot[:]),
		})
	}
	if !rec.SpeedupValid {
		fmt.Fprintf(os.Stderr, "polbench: warning: GOMAXPROCS=%d — the backends cannot actually overlap; recording speedup_valid=false\n",
			runtime.GOMAXPROCS(0))
	}
	if !jsonOut {
		fmt.Printf("Cross-chain soak — %d areas × %d users × %d rounds over %v\n",
			areas, users, rounds, rec.Chains)
		for _, b := range rec.Backends {
			fmt.Printf("  %-9s %3d areas %4d users: %7.0f txs/sec wall, mean fee %.6f €, digest %s\n",
				b.Chain, b.Areas, b.Users, b.TxsPerSecWall, b.MeanFeeEuro, b.Digest[:16])
		}
		fmt.Printf("  aggregate: %7.0f txs/sec wall (%.2fx vs slowest backend), concurrent %v vs sequential %v\n",
			rec.AggregateTps, rec.SpeedupVsSlowest,
			conc.Wall.Round(time.Millisecond), seq.Wall.Round(time.Millisecond))
		fmt.Printf("  discovery: %d lookups over %d shards (cube r=%d, max %d hops), flat-equivalent %v\n\n",
			rec.Discovery.Lookups, rec.Discovery.Shards, rec.Discovery.R,
			rec.Discovery.MaxHops, rec.Discovery.FlatEquivalent)
	}
	return mergeCrossChainRecord(out, rec)
}

// mergeCrossChainRecord writes the cross_chain section into the throughput
// record at path. When the file already holds a parseable record with runs
// (the single-chain sharding evidence), only the section is replaced;
// otherwise a fresh record is created whose top-level determinism fields
// reflect the cross-chain passes.
func mergeCrossChainRecord(path string, cc crossChainJSON) error {
	rec := benchThroughputJSON{
		Chain: "all", Areas: cc.Areas, Users: cc.Users, Rounds: cc.Rounds,
		Seed: cc.Seed, GOMAXPROCS: cc.GOMAXPROCS, NumCPU: cc.NumCPU,
		SpeedupValid: false, Deterministic: cc.Deterministic, RootsMatch: cc.Deterministic,
		Runs: []soakRunJSON{},
	}
	if data, err := os.ReadFile(path); err == nil {
		var existing benchThroughputJSON
		if json.Unmarshal(data, &existing) == nil && len(existing.Runs) > 0 {
			rec = existing
		}
	}
	rec.CrossChain = &cc
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: cross-chain section merged into %s\n", path)
	return nil
}
