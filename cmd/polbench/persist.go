package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"agnopol/internal/obs"
	"agnopol/internal/sim"
)

// persistedSoakFlags carries the -soak -statedir flag values into
// runSoakPersisted. ShardsSet distinguishes an explicit -shards from the
// default: a resume without one inherits the shard count recorded in the
// manifest (the digest is shard-invariant, so overriding is also legal).
type persistedSoakFlags struct {
	Chain           string
	Areas           int
	Users           int
	Rounds          int
	Shards          int
	ShardsSet       bool
	Seed            uint64
	StateDir        string
	CheckpointEvery int
	Resume          bool
}

// soakStateJSON is the machine-readable SOAK_state.json record of one
// persisted soak run — the digest and state root a kill-and-resume smoke
// compares between a reference run and a resumed run.
type soakStateJSON struct {
	Chain           string  `json:"chain"`
	Areas           int     `json:"areas"`
	Users           int     `json:"users"`
	Rounds          int     `json:"rounds"`
	Shards          int     `json:"shards"`
	Seed            uint64  `json:"seed"`
	CheckpointEvery int     `json:"checkpoint_every"`
	Resumed         bool    `json:"resumed"`
	Stopped         bool    `json:"stopped"`
	Blocks          uint64  `json:"blocks"`
	TxsSubmitted    uint64  `json:"txs_submitted"`
	TxsIncluded     uint64  `json:"txs_included"`
	WallSeconds     float64 `json:"wall_seconds"`
	ReopenSeconds   float64 `json:"reopen_seconds"`
	Digest          string  `json:"digest"`
	StateRoot       string  `json:"state_root"`
}

// runSoakPersisted runs a single persisted soak — fresh into -statedir, or
// resumed from the manifest committed there — and writes the state record.
// Unlike the plain -soak mode there is no serial-vs-sharded pair: the
// crash-safety property is checked across processes (reference run vs
// kill-and-resume), not within one.
func runSoakPersisted(f persistedSoakFlags, out string, o *obs.Obs, tel *obs.Telemetry, jsonOut bool) error {
	var spec sim.SoakSpec
	if f.Resume {
		// The manifest is authoritative for the workload shape; flag
		// hygiene already rejected explicit shape flags, so everything but
		// the shard count stays zero here.
		spec = sim.SoakSpec{
			StateDir: f.StateDir, Resume: true, CheckpointEvery: f.CheckpointEvery,
			Obs: o, Telemetry: tel,
		}
		if f.ShardsSet {
			spec.Shards = f.Shards
		}
	} else {
		spec = sim.SoakSpec{
			Chain: sim.ChainName(f.Chain), Areas: f.Areas, Users: f.Users,
			Rounds: f.Rounds, Shards: f.Shards, Seed: f.Seed,
			StateDir: f.StateDir, CheckpointEvery: f.CheckpointEvery,
			Obs: o, Telemetry: tel,
		}
	}
	res, err := sim.RunSoak(spec)
	if err != nil {
		return fmt.Errorf("soak (persisted): %w", err)
	}
	if !jsonOut {
		verb := "fresh"
		if res.Resumed {
			verb = fmt.Sprintf("resumed (reopen %v)", res.ReopenWall.Round(time.Millisecond))
		}
		fmt.Printf("Persisted soak — %s, %d areas × %d users × %d rounds, checkpoint every %d, %s\n",
			res.Chain, res.Areas, res.Users, res.Rounds, f.CheckpointEvery, verb)
		if res.Stopped {
			fmt.Printf("  stopped early by StopAfterRounds; state committed to %s\n", f.StateDir)
		}
		fmt.Printf("  %d shards: %d txs submitted, %d included, %d blocks in %v\n",
			res.Shards, res.Submitted, res.Included, res.Blocks, res.Wall.Round(time.Millisecond))
		fmt.Printf("  digest %x, state root %x\n\n", res.Digest[:8], res.StateRoot[:8])
	}
	rec := soakStateJSON{
		Chain: string(res.Chain), Areas: res.Areas, Users: res.Users,
		Rounds: res.Rounds, Shards: res.Shards, Seed: res.Seed,
		CheckpointEvery: f.CheckpointEvery,
		Resumed:         res.Resumed, Stopped: res.Stopped,
		Blocks:       res.Blocks,
		TxsSubmitted: res.Submitted, TxsIncluded: res.Included,
		WallSeconds: res.Wall.Seconds(), ReopenSeconds: res.ReopenWall.Seconds(),
		Digest:    fmt.Sprintf("%x", res.Digest[:]),
		StateRoot: fmt.Sprintf("%x", res.StateRoot[:]),
	}
	if err := writeRecord(out, rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: soak state record written to %s\n", out)
	return nil
}

// persistRunJSON is one chain family's kill-and-resume comparison in the
// persistence record.
type persistRunJSON struct {
	Chain            string  `json:"chain"`
	DigestFull       string  `json:"digest_full"`
	DigestResumed    string  `json:"digest_resumed"`
	StateRootFull    string  `json:"state_root_full"`
	StateRootResumed string  `json:"state_root_resumed"`
	BlocksFull       uint64  `json:"blocks_full"`
	BlocksResumed    uint64  `json:"blocks_resumed"`
	Match            bool    `json:"match"`
	ReopenSeconds    float64 `json:"reopen_seconds"`
}

// benchPersistJSON is the machine-readable BENCH_persist.json record: for
// each chain family, an uninterrupted soak against a stop-at-checkpoint +
// resume pair over the identical workload, and whether they landed on the
// same digest, state root and block count.
type benchPersistJSON struct {
	Areas           int              `json:"areas"`
	Users           int              `json:"users"`
	Rounds          int              `json:"rounds"`
	Shards          int              `json:"shards"`
	Seed            uint64           `json:"seed"`
	CheckpointEvery int              `json:"checkpoint_every"`
	StopAfterRounds int              `json:"stop_after_rounds"`
	GOMAXPROCS      int              `json:"gomaxprocs"`
	NumCPU          int              `json:"num_cpu"`
	AllMatch        bool             `json:"all_match"`
	Runs            []persistRunJSON `json:"runs"`
}

// runPersistMode is the crash-safety benchmark: on each chain family it
// runs the soak uninterrupted, then again into a temporary state dir
// stopping mid-run at a checkpoint, then resumes from that checkpoint —
// and records whether the resumed run is bit-identical to the
// uninterrupted one. The record is written before any mismatch becomes an
// error, so CI always has the artifact to upload.
func runPersistMode(areas, users, rounds, shards int, seed uint64, checkpointEvery int, out string, o *obs.Obs, tel *obs.Telemetry, jsonOut bool) error {
	stopAfter := rounds / 2
	if stopAfter < 1 {
		stopAfter = 1
	}
	rec := benchPersistJSON{
		Areas: areas, Users: users, Rounds: rounds, Shards: shards, Seed: seed,
		CheckpointEvery: checkpointEvery, StopAfterRounds: stopAfter,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		AllMatch: true,
	}
	for _, chain := range []sim.ChainName{sim.ChainGoerli, sim.ChainAlgorand} {
		spec := sim.SoakSpec{
			Chain: chain, Areas: areas, Users: users, Rounds: rounds,
			Shards: shards, Seed: seed, Obs: o, Telemetry: tel,
		}
		full, err := sim.RunSoak(spec)
		if err != nil {
			return fmt.Errorf("persist (%s, uninterrupted): %w", chain, err)
		}
		dir, err := os.MkdirTemp("", "polbench-persist-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		stoppedSpec := spec
		stoppedSpec.StateDir = dir
		stoppedSpec.CheckpointEvery = checkpointEvery
		stoppedSpec.StopAfterRounds = stopAfter
		if _, err := sim.RunSoak(stoppedSpec); err != nil {
			return fmt.Errorf("persist (%s, stopped): %w", chain, err)
		}
		resumed, err := sim.RunSoak(sim.SoakSpec{
			StateDir: dir, Resume: true, CheckpointEvery: checkpointEvery,
			Obs: o, Telemetry: tel,
		})
		if err != nil {
			return fmt.Errorf("persist (%s, resumed): %w", chain, err)
		}
		match := resumed.Digest == full.Digest &&
			resumed.StateRoot == full.StateRoot &&
			resumed.Blocks == full.Blocks
		rec.AllMatch = rec.AllMatch && match
		rec.Runs = append(rec.Runs, persistRunJSON{
			Chain:            string(chain),
			DigestFull:       fmt.Sprintf("%x", full.Digest[:]),
			DigestResumed:    fmt.Sprintf("%x", resumed.Digest[:]),
			StateRootFull:    fmt.Sprintf("%x", full.StateRoot[:]),
			StateRootResumed: fmt.Sprintf("%x", resumed.StateRoot[:]),
			BlocksFull:       full.Blocks, BlocksResumed: resumed.Blocks,
			Match: match, ReopenSeconds: resumed.ReopenWall.Seconds(),
		})
		if !jsonOut {
			verdict := "MATCH"
			if !match {
				verdict = "DIVERGED"
			}
			fmt.Printf("Persistence — %s, %d areas × %d users × %d rounds, stop after %d, checkpoint every %d\n",
				chain, areas, users, rounds, stopAfter, checkpointEvery)
			fmt.Printf("  %s: digest %x vs %x, reopen %v\n\n",
				verdict, full.Digest[:8], resumed.Digest[:8],
				resumed.ReopenWall.Round(time.Millisecond))
		}
	}
	if err := writeRecord(out, rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: persistence record written to %s\n", out)
	if !rec.AllMatch {
		return fmt.Errorf("persist: a resumed run diverged from its uninterrupted reference (see %s)", out)
	}
	return nil
}

// writeRecord writes an indented JSON benchmark record.
func writeRecord(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
