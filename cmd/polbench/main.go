// Command polbench regenerates the evaluation chapter: Tables 5.1–5.4 and
// Figures 5.1–5.5, rendered as text tables and ASCII bar charts.
//
//	polbench -tables          # Tables 5.1–5.4
//	polbench -figures         # Figures 5.2–5.5 (a–d)
//	polbench -fig 5.3b        # one figure
//	polbench -seed 7          # change the experiment seed
//	polbench -fig 5.2 -metrics            # dump the metrics registry
//	polbench -fig 5.2 -trace trace.json   # chrome://tracing span export
//	polbench -tables -json                # machine-readable results
//	polbench -matrix -parallel 4 -reps 5  # parallel cross-seed matrix run
//	polbench -faults default -faultrate 0.2  # reliability sweep + recovery report
//	polbench -vmbench                     # VM interpreter micro-benchmarks -> BENCH_vm.json
//	polbench -soak -areas 8 -shards 4     # sharded soak/load harness -> BENCH_throughput.json
//	polbench -soak -soakchain all         # cross-chain soak over every backend at once -> cross_chain section
//	polbench -soak -statedir state/       # persisted soak: checkpoint every -checkpoint rounds -> SOAK_state.json
//	polbench -soak -statedir state/ -resume  # continue a killed persisted soak from its manifest
//	polbench -persist                     # kill-and-resume bit-identity benchmark -> BENCH_persist.json
//	polbench -tables -cpuprofile cpu.out  # profile any run with pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"agnopol/internal/core"
	"agnopol/internal/faults"
	"agnopol/internal/obs"
	"agnopol/internal/sim"
	"agnopol/internal/stats"
	"agnopol/internal/vmbench"
)

func main() {
	var (
		tables    = flag.Bool("tables", false, "regenerate Tables 5.1–5.4")
		figures   = flag.Bool("figures", false, "regenerate Figures 5.2–5.5")
		analysis  = flag.Bool("analysis", false, "regenerate Fig 5.1 (conservative analysis)")
		fig       = flag.String("fig", "", "regenerate one figure, e.g. 5.3b")
		seed      = flag.Uint64("seed", 7, "experiment seed")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text format) after the runs")
		tracePath = flag.String("trace", "", "write a chrome://tracing JSON export of the runs to this file")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON results instead of tables and charts")
		matrix    = flag.Bool("matrix", false, "run the Table 5.1–5.4 grid through the parallel matrix engine")
		parallel  = flag.Int("parallel", 0, "matrix worker count (0 = GOMAXPROCS)")
		reps      = flag.Int("reps", 1, "seed-varied repetitions per matrix cell")
		benchOut  = flag.String("benchout", "", "where -matrix (default BENCH_parallel.json) or -vmbench (default BENCH_vm.json) writes its record")
		faultsPro = flag.String("faults", "", fmt.Sprintf("run a reliability sweep under a fault profile (%s)", strings.Join(faults.ProfileNames(), ", ")))
		faultRate = flag.Float64("faultrate", 0.1, "per-draw fault probability for -faults, in [0,1]")
		faultsOut = flag.String("faultsout", "FAULTS_report.json", "where -faults writes the recovery-rate report")
		vmbenchF  = flag.Bool("vmbench", false, "run the VM interpreter micro-benchmarks (u256 fast path vs big.Int reference)")
		vmbenchT  = flag.String("vmbenchtime", "1s", "testing -benchtime for -vmbench (e.g. 1s, 100x; 1x = CI smoke)")
		vmFilter  = flag.String("vmfilter", "", "only run -vmbench workloads whose name contains this substring (e.g. proof_verify)")
		soak      = flag.Bool("soak", false, "run the sharded soak/load harness -> BENCH_throughput.json")
		soakChain = flag.String("soakchain", "goerli", "network preset for -soak (goerli, polygon, algorand), or all for one cross-chain soak over every backend")
		areas     = flag.Int("areas", 8, "soak areas (M): one check-in contract each")
		soakUsers = flag.Int("soakusers", 32, "soak users (K) issuing check-ins every round")
		soakRound = flag.Int("soakrounds", 20, "soak rounds (T) of sustained load")
		shards    = flag.Int("shards", 4, "execution shard count for the sharded soak run (vs the serial baseline)")
		stateDir  = flag.String("statedir", "", "persist the -soak run's state to this directory (crash-safe checkpoints; single run, no serial baseline)")
		checkEver = flag.Int("checkpoint", 5, "checkpoint every N rounds for -statedir and -persist runs")
		resumeF   = flag.Bool("resume", false, "resume the -soak run from the committed checkpoint in -statedir")
		persistF  = flag.Bool("persist", false, "run the kill-and-resume persistence benchmark on both chain families -> BENCH_persist.json")
		serveAddr = flag.String("serve", "", "serve live telemetry (/metrics, /timeseries, /trace, /health, /debug/pprof) on this address during the run")
		sampleInt = flag.Duration("sampleinterval", 250*time.Millisecond, "wall-clock background sampling interval for -serve")
		serveHold = flag.Duration("servehold", 0, "keep the -serve endpoint up this long after the runs (POST /quitquitquit releases it early)")
		healthOut = flag.String("healthout", "", "write the health monitor's flight-recorder report (JSON) to this file; requires -serve or -soak")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	// Flag hygiene: incoherent combinations are an error, not a silent
	// no-op — a sweep that quietly ignored -reps would report misleading
	// recovery statistics.
	setFlags := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if flag.NArg() > 0 {
		usageErr(fmt.Sprintf("unexpected arguments: %s", strings.Join(flag.Args(), " ")))
	}
	if msg := hygieneProblem(setFlags, hygieneFlags{
		Tables: *tables, Figures: *figures, Analysis: *analysis, Fig: *fig,
		Matrix: *matrix, FaultsProfile: *faultsPro, VMBench: *vmbenchF, VMFilter: *vmFilter, Soak: *soak,
		SoakChain: *soakChain,
		FaultRate: *faultRate, SampleInterval: *sampleInt,
		Serve: *serveAddr, HealthOut: *healthOut,
		StateDir: *stateDir, Checkpoint: *checkEver, Resume: *resumeF, Persist: *persistF,
	}); msg != "" {
		usageErr(msg)
	}
	var faultPlan *faults.Plan
	if *faultsPro != "" {
		var err error
		if faultPlan, err = faults.Profile(*faultsPro, *faultRate); err != nil {
			usageErr(err.Error())
		}
	}

	if !*tables && !*figures && !*analysis && *fig == "" && !*matrix && *faultsPro == "" && !*vmbenchF && !*soak && !*persistF {
		*tables, *figures, *analysis = true, true, true
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(os.Stderr, "polbench: CPU profile written to %s\n", *cpuProf)
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fatal(err)
			}
			runtime.GC() // settle live heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "polbench: heap profile written to %s\n", *memProf)
		}()
	}

	var o *obs.Obs
	if *metrics || *tracePath != "" || *serveAddr != "" || *healthOut != "" {
		o = obs.New()
	}
	var tel *obs.Telemetry
	if *serveAddr != "" || *healthOut != "" {
		tel = obs.NewTelemetry(o, 0, sim.DefaultSLORules())
	}
	var server *obs.Server
	if *serveAddr != "" {
		var err error
		if server, err = obs.Serve(*serveAddr, tel); err != nil {
			fatal(err)
		}
		tel.Sampler.Start(*sampleInt)
		fmt.Fprintf(os.Stderr, "polbench: telemetry on http://%s (/metrics /timeseries /trace /health /debug/pprof)\n", server.Addr())
	}
	var experiments []experimentJSON

	if *analysis && !*jsonOut {
		compiled, err := core.CompilePoL()
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Fig 5.1 — conservative analysis of the smart contract ==")
		fmt.Print(compiled.Report)
		fmt.Println()
		fmt.Print(compiled.Analysis)
		fmt.Println()
	}

	if *fig != "" {
		found := false
		for _, spec := range sim.FigureSpecs {
			if strings.Contains(spec.ID, "Fig "+*fig+" ") {
				experiments = append(experiments, runFigure(spec, *seed, o, *jsonOut))
				found = true
				break
			}
		}
		if !found {
			usageErr(fmt.Sprintf("unknown figure %q", *fig))
		}
	}

	if *fig == "" && *figures {
		for _, spec := range sim.FigureSpecs {
			experiments = append(experiments, runFigure(spec, *seed, o, *jsonOut))
		}
	}

	if *matrix {
		out := *benchOut
		if out == "" {
			out = "BENCH_parallel.json"
		}
		if err := runMatrixMode(*seed, *reps, *parallel, out, o, tel, *jsonOut); err != nil {
			fatal(err)
		}
	}

	if *vmbenchF {
		out := *benchOut
		if out == "" {
			out = "BENCH_vm.json"
		}
		if err := runVMBench(*vmbenchT, *vmFilter, out, *jsonOut); err != nil {
			fatal(err)
		}
	}

	if *soak {
		out := *benchOut
		if *soakChain == "all" {
			if out == "" {
				out = "BENCH_throughput.json"
			}
			if err := runCrossChainMode(*areas, *soakUsers, *soakRound, *shards, *seed, out, o, tel, *jsonOut); err != nil {
				fatal(err)
			}
		} else if *stateDir != "" {
			if out == "" {
				out = "SOAK_state.json"
			}
			spec := persistedSoakFlags{
				Chain: *soakChain, Areas: *areas, Users: *soakUsers, Rounds: *soakRound,
				Shards: *shards, ShardsSet: setFlags["shards"], Seed: *seed,
				StateDir: *stateDir, CheckpointEvery: *checkEver, Resume: *resumeF,
			}
			if err := runSoakPersisted(spec, out, o, tel, *jsonOut); err != nil {
				fatal(err)
			}
		} else {
			if out == "" {
				out = "BENCH_throughput.json"
			}
			if err := runSoakMode(*soakChain, *areas, *soakUsers, *soakRound, *shards, *seed, out, o, tel, *jsonOut); err != nil {
				fatal(err)
			}
		}
	}

	if *persistF {
		out := *benchOut
		if out == "" {
			out = "BENCH_persist.json"
		}
		if err := runPersistMode(*areas, *soakUsers, *soakRound, *shards, *seed, *checkEver, out, o, tel, *jsonOut); err != nil {
			fatal(err)
		}
	}

	if faultPlan != nil {
		if err := runFaultSweep(*faultsPro, *faultRate, faultPlan, *seed, *reps, *parallel, *faultsOut, *jsonOut); err != nil {
			fatal(err)
		}
	}

	if *fig == "" && *tables {
		ts, byUsers, err := sim.RunTablesObserved(*seed, o)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			for _, users := range []int{16, 32} {
				for _, c := range sim.AllChains {
					if r, ok := byUsers[users][c]; ok {
						experiments = append(experiments, resultJSON("", r))
					}
				}
			}
		} else {
			for _, t := range ts {
				fmt.Println(t)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(experiments); err != nil {
			fatal(err)
		}
	}
	if o != nil {
		o.ExportProfiles()
	}
	if tel != nil {
		// Stop the wall-clock ticker, then take one final deterministic
		// sample + rule evaluation so even sub-interval runs record state.
		tel.Sampler.Stop()
		tel.Tick()
	}
	if *healthOut != "" {
		if err := tel.Health.WriteReportFile(*healthOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "polbench: health report written to %s\n", *healthOut)
	}
	if *metrics {
		fmt.Print(o.Registry.Text())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := o.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "polbench: trace written to %s\n", *tracePath)
	}
	if server != nil {
		if *serveHold > 0 {
			// Scripted smokes scrape the endpoints after the (possibly
			// sub-second) runs finish, then release the hold explicitly.
			fmt.Fprintf(os.Stderr, "polbench: holding telemetry endpoint for %v (POST /quitquitquit to release)\n", *serveHold)
			select {
			case <-server.QuitRequested():
			case <-time.After(*serveHold):
			}
		}
		server.Close()
	}
}

// opJSON is the machine-readable aggregate of one operation series.
type opJSON struct {
	MeanSeconds   float64 `json:"mean_seconds"`
	MaxSeconds    float64 `json:"max_seconds"`
	MinSeconds    float64 `json:"min_seconds"`
	StdDevSeconds float64 `json:"stddev_seconds"`
	Fees          string  `json:"fees"`
	FeesEuro      float64 `json:"fees_euro"`
	Gas           uint64  `json:"gas"`
	N             int     `json:"n"`
}

// experimentJSON is one experiment in -json output.
type experimentJSON struct {
	ID     string `json:"id,omitempty"`
	Chain  string `json:"chain"`
	Users  int    `json:"users"`
	Deploy opJSON `json:"deploy"`
	Attach opJSON `json:"attach"`
}

func opJSONOf(s stats.Summary, fees string, euro float64, gas uint64) opJSON {
	return opJSON{
		MeanSeconds: s.Mean, MaxSeconds: s.Max, MinSeconds: s.Min,
		StdDevSeconds: s.StdDev, Fees: fees, FeesEuro: euro, Gas: gas, N: s.N,
	}
}

func resultJSON(id string, r *sim.Result) experimentJSON {
	return experimentJSON{
		ID:     id,
		Chain:  string(r.Chain),
		Users:  r.Users,
		Deploy: opJSONOf(r.DeploySummary, r.DeployFees.String(), r.DeployFees.Euros(), r.DeployGas),
		Attach: opJSONOf(r.AttachSummary, r.AttachFees.String(), r.AttachFees.Euros(), r.AttachGas),
	}
}

func runFigure(spec sim.FigureSpec, seed uint64, o *obs.Obs, jsonOut bool) experimentJSON {
	f, r, err := sim.RunFigureObserved(spec, seed, o)
	if err != nil {
		fatal(err)
	}
	if !jsonOut {
		fmt.Println(f)
	}
	return resultJSON(spec.ID, r)
}

// cellSummaryJSON is one cross-seed aggregate of the speedup record.
type cellSummaryJSON struct {
	Chain          string  `json:"chain"`
	Users          int     `json:"users"`
	Reps           int     `json:"reps"`
	DeployMean     float64 `json:"deploy_mean_seconds"`
	DeployStdDev   float64 `json:"deploy_stddev_seconds"`
	DeployMin      float64 `json:"deploy_min_seconds"`
	DeployMax      float64 `json:"deploy_max_seconds"`
	AttachMean     float64 `json:"attach_mean_seconds"`
	AttachStdDev   float64 `json:"attach_stddev_seconds"`
	AttachMin      float64 `json:"attach_min_seconds"`
	AttachMax      float64 `json:"attach_max_seconds"`
	DeployFeesEuro float64 `json:"deploy_fees_euro"`
	AttachFeesEuro float64 `json:"attach_fees_euro"`
}

// benchParallelJSON is the machine-readable BENCH_parallel.json record:
// sequential vs parallel wall time over the identical grid, plus the
// cross-seed summaries (taken from the parallel run — the determinism
// check asserts the sequential ones are equal).
type benchParallelJSON struct {
	Grid              string  `json:"grid"`
	Cells             int     `json:"cells"`
	Reps              int     `json:"reps"`
	RunsTotal         int     `json:"runs_total"`
	Seed              uint64  `json:"seed"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	NumCPU            int     `json:"num_cpu"`
	Parallel          int     `json:"parallel"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	Speedup           float64 `json:"speedup"`
	// SpeedupValid is false when GOMAXPROCS < 2: with a single scheduler
	// thread the "parallel" run cannot actually overlap work, so the
	// speedup number measures goroutine overhead, not parallelism.
	SpeedupValid  bool              `json:"speedup_valid"`
	Deterministic bool              `json:"deterministic"`
	Summaries     []cellSummaryJSON `json:"summaries"`
}

// runMatrixMode fans the Table 5.1–5.4 grid out over the matrix engine:
// first sequentially (the baseline), then with the requested worker
// count, checks the two produce identical cross-seed summaries, prints
// the aggregate table and writes the speedup record.
func runMatrixMode(seed uint64, reps, parallel int, benchOut string, o *obs.Obs, tel *obs.Telemetry, jsonOut bool) error {
	spec := sim.MatrixSpec{Reps: reps, Seed: seed, Parallel: 1, Telemetry: tel}
	seq, err := sim.RunMatrix(spec, o)
	if err != nil {
		return err
	}
	spec.Parallel = parallel
	par, err := sim.RunMatrix(spec, o)
	if err != nil {
		return err
	}
	deterministic := reflect.DeepEqual(seq.Summaries, par.Summaries)
	if !deterministic {
		return fmt.Errorf("matrix is not deterministic: parallel=%d summaries diverge from the sequential baseline", par.Parallel)
	}
	speedupValid := runtime.GOMAXPROCS(0) >= 2
	if !speedupValid {
		fmt.Fprintf(os.Stderr, "polbench: warning: GOMAXPROCS=%d — the sequential-vs-parallel speedup is not a parallelism measurement; recording speedup_valid=false\n",
			runtime.GOMAXPROCS(0))
	}
	if !jsonOut {
		fmt.Println(par)
		fmt.Printf("speedup: sequential %v, parallel(%d) %v — %.2fx\n\n",
			seq.Elapsed, par.Parallel, par.Elapsed,
			seq.Elapsed.Seconds()/par.Elapsed.Seconds())
	}

	rec := benchParallelJSON{
		Grid:              "tables-5.1-5.4",
		Cells:             len(par.Cells),
		Reps:              par.Reps,
		RunsTotal:         len(par.Runs),
		Seed:              seed,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		NumCPU:            runtime.NumCPU(),
		Parallel:          par.Parallel,
		SequentialSeconds: seq.Elapsed.Seconds(),
		ParallelSeconds:   par.Elapsed.Seconds(),
		Speedup:           seq.Elapsed.Seconds() / par.Elapsed.Seconds(),
		SpeedupValid:      speedupValid,
		Deterministic:     deterministic,
	}
	for _, s := range par.Summaries {
		rec.Summaries = append(rec.Summaries, cellSummaryJSON{
			Chain: string(s.Cell.Chain), Users: s.Cell.Users, Reps: s.Reps,
			DeployMean: s.Deploy.Mean, DeployStdDev: s.Deploy.StdDev,
			DeployMin: s.Deploy.Min, DeployMax: s.Deploy.Max,
			AttachMean: s.Attach.Mean, AttachStdDev: s.Attach.StdDev,
			AttachMin: s.Attach.Min, AttachMax: s.Attach.Max,
			DeployFeesEuro: s.DeployFeesEuro, AttachFeesEuro: s.AttachFeesEuro,
		})
	}
	f, err := os.Create(benchOut)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: speedup record written to %s\n", benchOut)
	return nil
}

// runVMBench runs the interpreter micro-benchmarks and writes the
// BENCH_vm.json before/after record (u256 fast path vs big.Int reference).
func runVMBench(benchtime, filter, out string, jsonOut bool) error {
	rep, err := vmbench.Run(benchtime, filter)
	if err != nil {
		return err
	}
	if len(rep.Workloads) == 0 {
		// A filter that matches nothing would write a record every gate
		// rejects; fail loudly at the source instead.
		return fmt.Errorf("-vmfilter %q matched no vmbench workloads", filter)
	}
	if !jsonOut {
		fmt.Print(rep)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: VM benchmark record written to %s\n", out)
	return nil
}

// soakRunJSON is one shard configuration's measurements in the throughput
// record.
type soakRunJSON struct {
	Shards          int       `json:"shards"`
	TxsSubmitted    uint64    `json:"txs_submitted"`
	TxsIncluded     uint64    `json:"txs_included"`
	Blocks          uint64    `json:"blocks"`
	WallSeconds     float64   `json:"wall_seconds"`
	SimSeconds      float64   `json:"simulated_seconds"`
	TxsPerSecWall   float64   `json:"txs_per_sec_wall"`
	TxsPerSecSim    float64   `json:"txs_per_sec_simulated"`
	Utilization     []float64 `json:"per_shard_utilization"`
	ShardTxs        []uint64  `json:"per_shard_txs"`
	ParallelBatches uint64    `json:"parallel_batches"`
	Digest          string    `json:"digest"`
	StateRoot       string    `json:"state_root"`
	HeapBytes       uint64    `json:"heap_bytes"`
	BytesPerUser    float64   `json:"bytes_per_user"`
}

// benchThroughputJSON is the machine-readable BENCH_throughput.json record:
// the soak grid, the serial baseline and the sharded run, and the speedup
// between them.
type benchThroughputJSON struct {
	Chain      string `json:"chain"`
	Areas      int    `json:"areas"`
	Users      int    `json:"users"`
	Rounds     int    `json:"rounds"`
	Seed       uint64 `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Speedup is sharded wall txs/sec over the serial baseline's.
	Speedup float64 `json:"speedup"`
	// SpeedupValid is false when GOMAXPROCS < 2: with one scheduler thread
	// the shard workers cannot overlap, so the ratio measures goroutine
	// overhead, not parallelism.
	SpeedupValid bool `json:"speedup_valid"`
	// Deterministic records that every run landed on the same chain digest.
	Deterministic bool `json:"deterministic"`
	// RootsMatch records that every run landed on the same world-state
	// Merkle root (implied by Deterministic; recorded separately so the
	// state gate does not depend on digest internals).
	RootsMatch bool          `json:"roots_match"`
	Runs       []soakRunJSON `json:"runs"`
	// CrossChain is the -soakchain all section: one soak spread over every
	// backend at once, with per-backend digests from both the concurrent
	// and the sequential pass. It merges into an existing single-chain
	// record so one file carries both the sharding and the cross-chain
	// evidence.
	CrossChain *crossChainJSON `json:"cross_chain,omitempty"`
}

func soakRunJSONOf(r *sim.SoakResult) soakRunJSON {
	return soakRunJSON{
		Shards:       r.Shards,
		TxsSubmitted: r.Submitted, TxsIncluded: r.Included, Blocks: r.Blocks,
		WallSeconds: r.Wall.Seconds(), SimSeconds: r.Simulated.Seconds(),
		TxsPerSecWall: r.TxsPerSecWall(), TxsPerSecSim: r.TxsPerSecSimulated(),
		Utilization: r.Utilization, ShardTxs: r.ShardTxs,
		ParallelBatches: r.ParallelBatches,
		Digest:          fmt.Sprintf("%x", r.Digest[:]),
		StateRoot:       fmt.Sprintf("%x", r.StateRoot[:]),
		HeapBytes:       r.HeapBytes,
		BytesPerUser:    r.BytesPerUser,
	}
}

// runSoakMode runs the soak harness twice — the serial baseline, then the
// requested shard count — checks the two chains are bit-identical, prints
// the throughput comparison and writes the BENCH_throughput.json record.
func runSoakMode(chainName string, areas, users, rounds, shards int, seed uint64, out string, o *obs.Obs, tel *obs.Telemetry, jsonOut bool) error {
	spec := sim.SoakSpec{
		Chain: sim.ChainName(chainName), Areas: areas, Users: users,
		Rounds: rounds, Shards: 1, Seed: seed, Obs: o, Telemetry: tel,
	}
	base, err := sim.RunSoak(spec)
	if err != nil {
		return fmt.Errorf("soak (serial baseline): %w", err)
	}
	spec.Shards = shards
	sharded, err := sim.RunSoak(spec)
	if err != nil {
		return fmt.Errorf("soak: %w", err)
	}
	deterministic := base.Digest == sharded.Digest
	if !deterministic {
		return fmt.Errorf("soak is not deterministic: shards=%d digest diverges from the serial baseline", shards)
	}
	rootsMatch := base.StateRoot == sharded.StateRoot
	if !rootsMatch {
		return fmt.Errorf("soak is not deterministic: shards=%d state root diverges from the serial baseline", shards)
	}
	speedupValid := runtime.GOMAXPROCS(0) >= 2 && shards >= 2
	if !speedupValid {
		fmt.Fprintf(os.Stderr, "polbench: warning: GOMAXPROCS=%d, shards=%d — the serial-vs-sharded speedup is not a parallelism measurement; recording speedup_valid=false\n",
			runtime.GOMAXPROCS(0), shards)
	}
	speedup := 0.0
	if base.TxsPerSecWall() > 0 {
		speedup = sharded.TxsPerSecWall() / base.TxsPerSecWall()
	}
	if !jsonOut {
		fmt.Printf("Soak — %s, %d areas × %d users × %d rounds\n", chainName, areas, users, rounds)
		fmt.Printf("  serial:    %7.0f txs/sec wall (%d txs in %v)\n",
			base.TxsPerSecWall(), base.Included, base.Wall.Round(time.Millisecond))
		fmt.Printf("  %d shards:  %7.0f txs/sec wall (%d txs in %v) — %.2fx, utilization %v\n",
			shards, sharded.TxsPerSecWall(), sharded.Included,
			sharded.Wall.Round(time.Millisecond), speedup, sharded.Utilization)
		fmt.Printf("  deterministic: %v (digest %x, state root %x)\n", deterministic, sharded.Digest[:8], sharded.StateRoot[:8])
		fmt.Printf("  memory: %.1f MiB heap, %.0f bytes/user\n\n",
			float64(sharded.HeapBytes)/(1<<20), sharded.BytesPerUser)
	}

	rec := benchThroughputJSON{
		Chain: chainName, Areas: areas, Users: users, Rounds: rounds, Seed: seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		Speedup: speedup, SpeedupValid: speedupValid, Deterministic: deterministic,
		RootsMatch: rootsMatch,
		Runs:       []soakRunJSON{soakRunJSONOf(base), soakRunJSONOf(sharded)},
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: throughput record written to %s\n", out)
	return nil
}

// faultClassJSON is one fault class's tally in the recovery-rate report.
type faultClassJSON struct {
	Class        string  `json:"class"`
	Injected     uint64  `json:"injected"`
	Recovered    uint64  `json:"recovered"`
	RecoveryRate float64 `json:"recovery_rate"`
}

// faultsReportJSON is the machine-readable FAULTS_report.json record: the
// sweep's grid parameters plus the per-class injected/recovered tallies
// read back from the obs registry.
type faultsReportJSON struct {
	Profile        string           `json:"profile"`
	Rate           float64          `json:"rate"`
	Seed           uint64           `json:"seed"`
	Cells          int              `json:"cells"`
	Reps           int              `json:"reps"`
	RunsTotal      int              `json:"runs_total"`
	Parallel       int              `json:"parallel"`
	Deterministic  bool             `json:"deterministic"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	Classes        []faultClassJSON `json:"classes"`
}

// runFaultSweep drives the reliability sweep: every evaluation chain at 8
// users under the requested fault plan, first sequentially (the baseline),
// then with the requested worker count. The two must agree bit-for-bit —
// fault streams are pure functions of (seed, site, sequence), so worker
// scheduling cannot shift a draw — and the recovery-rate report is read
// back from the parallel run's obs registry.
func runFaultSweep(profile string, rate float64, plan *faults.Plan, seed uint64, reps, parallel int, out string, jsonOut bool) error {
	cells := make([]sim.Cell, 0, len(sim.AllChains))
	for _, c := range sim.AllChains {
		cells = append(cells, sim.Cell{Chain: c, Users: 8})
	}
	// Verify on: the full pipeline — deploy, attach, fund, verify — so
	// every fault class (the report fetch included) gets exercised.
	spec := sim.MatrixSpec{Cells: cells, Reps: reps, Seed: seed, Parallel: 1, Faults: plan, Verify: true}
	seq, err := sim.RunMatrix(spec, obs.New())
	if err != nil {
		return fmt.Errorf("fault sweep (sequential baseline): %w", err)
	}
	// A fresh bundle for the counted run, so the report tallies exactly
	// one traversal of the grid.
	fo := obs.New()
	spec.Parallel = parallel
	par, err := sim.RunMatrix(spec, fo)
	if err != nil {
		return fmt.Errorf("fault sweep: %w", err)
	}
	deterministic := reflect.DeepEqual(seq.Summaries, par.Summaries)
	if !deterministic {
		return fmt.Errorf("fault sweep is not deterministic: parallel=%d summaries diverge from the sequential baseline", par.Parallel)
	}

	rec := faultsReportJSON{
		Profile: profile, Rate: rate, Seed: seed,
		Cells: len(par.Cells), Reps: par.Reps, RunsTotal: len(par.Runs),
		Parallel: par.Parallel, Deterministic: deterministic,
		ElapsedSeconds: par.Elapsed.Seconds(),
	}
	rows := make([][]string, 0, len(faults.Classes()))
	for _, cls := range faults.Classes() {
		if _, active := plan.Rates[cls]; !active {
			continue
		}
		inj := fo.Registry.Counter("faults_injected_total", obs.L("class", cls)).Value()
		rec2 := fo.Registry.Counter("faults_recovered_total", obs.L("class", cls)).Value()
		rr := 0.0
		if inj > 0 {
			rr = float64(rec2) / float64(inj)
		}
		rec.Classes = append(rec.Classes, faultClassJSON{
			Class: cls, Injected: inj, Recovered: rec2, RecoveryRate: rr,
		})
		rows = append(rows, []string{
			cls, fmt.Sprint(inj), fmt.Sprint(rec2), fmt.Sprintf("%.1f%%", rr*100),
		})
	}
	if !jsonOut {
		fmt.Printf("Reliability sweep — profile %q, rate %.2f, %d runs, %d workers, %v wall\n%s\n",
			profile, rate, len(par.Runs), par.Parallel, par.Elapsed.Round(time.Millisecond),
			stats.Table([]string{"Fault Class", "Injected", "Recovered", "Recovery"}, rows))
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "polbench: recovery-rate report written to %s\n", out)
	return nil
}

// boolCount counts the set flags among mutually exclusive modes.
func boolCount(bs ...bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// usageErr rejects an incoherent flag combination: message, usage, exit 2.
func usageErr(msg string) {
	fmt.Fprintf(os.Stderr, "polbench: %s\n", msg)
	flag.Usage()
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "polbench: %v\n", err)
	os.Exit(1)
}
