// Command polbench regenerates the evaluation chapter: Tables 5.1–5.4 and
// Figures 5.1–5.5, rendered as text tables and ASCII bar charts.
//
//	polbench -tables          # Tables 5.1–5.4
//	polbench -figures         # Figures 5.2–5.5 (a–d)
//	polbench -fig 5.3b        # one figure
//	polbench -seed 7          # change the experiment seed
//	polbench -fig 5.2 -metrics            # dump the metrics registry
//	polbench -fig 5.2 -trace trace.json   # chrome://tracing span export
//	polbench -tables -json                # machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"agnopol/internal/core"
	"agnopol/internal/obs"
	"agnopol/internal/sim"
	"agnopol/internal/stats"
)

func main() {
	var (
		tables    = flag.Bool("tables", false, "regenerate Tables 5.1–5.4")
		figures   = flag.Bool("figures", false, "regenerate Figures 5.2–5.5")
		analysis  = flag.Bool("analysis", false, "regenerate Fig 5.1 (conservative analysis)")
		fig       = flag.String("fig", "", "regenerate one figure, e.g. 5.3b")
		seed      = flag.Uint64("seed", 7, "experiment seed")
		metrics   = flag.Bool("metrics", false, "dump the metrics registry (Prometheus text format) after the runs")
		tracePath = flag.String("trace", "", "write a chrome://tracing JSON export of the runs to this file")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON results instead of tables and charts")
	)
	flag.Parse()
	if !*tables && !*figures && !*analysis && *fig == "" {
		*tables, *figures, *analysis = true, true, true
	}

	var o *obs.Obs
	if *metrics || *tracePath != "" {
		o = obs.New()
	}
	var experiments []experimentJSON

	if *analysis && !*jsonOut {
		compiled, err := core.CompilePoL()
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Fig 5.1 — conservative analysis of the smart contract ==")
		fmt.Print(compiled.Report)
		fmt.Println()
		fmt.Print(compiled.Analysis)
		fmt.Println()
	}

	if *fig != "" {
		found := false
		for _, spec := range sim.FigureSpecs {
			if strings.Contains(spec.ID, "Fig "+*fig+" ") {
				experiments = append(experiments, runFigure(spec, *seed, o, *jsonOut))
				found = true
				break
			}
		}
		if !found {
			fatal(fmt.Errorf("unknown figure %q", *fig))
		}
	}

	if *fig == "" && *figures {
		for _, spec := range sim.FigureSpecs {
			experiments = append(experiments, runFigure(spec, *seed, o, *jsonOut))
		}
	}

	if *fig == "" && *tables {
		ts, byUsers, err := sim.RunTablesObserved(*seed, o)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			for _, users := range []int{16, 32} {
				for _, c := range sim.AllChains {
					if r, ok := byUsers[users][c]; ok {
						experiments = append(experiments, resultJSON("", r))
					}
				}
			}
		} else {
			for _, t := range ts {
				fmt.Println(t)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(experiments); err != nil {
			fatal(err)
		}
	}
	if o != nil {
		o.ExportProfiles()
	}
	if *metrics {
		fmt.Print(o.Registry.Text())
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := o.Tracer.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "polbench: trace written to %s\n", *tracePath)
	}
}

// opJSON is the machine-readable aggregate of one operation series.
type opJSON struct {
	MeanSeconds   float64 `json:"mean_seconds"`
	MaxSeconds    float64 `json:"max_seconds"`
	MinSeconds    float64 `json:"min_seconds"`
	StdDevSeconds float64 `json:"stddev_seconds"`
	Fees          string  `json:"fees"`
	FeesEuro      float64 `json:"fees_euro"`
	Gas           uint64  `json:"gas"`
	N             int     `json:"n"`
}

// experimentJSON is one experiment in -json output.
type experimentJSON struct {
	ID     string `json:"id,omitempty"`
	Chain  string `json:"chain"`
	Users  int    `json:"users"`
	Deploy opJSON `json:"deploy"`
	Attach opJSON `json:"attach"`
}

func opJSONOf(s stats.Summary, fees string, euro float64, gas uint64) opJSON {
	return opJSON{
		MeanSeconds: s.Mean, MaxSeconds: s.Max, MinSeconds: s.Min,
		StdDevSeconds: s.StdDev, Fees: fees, FeesEuro: euro, Gas: gas, N: s.N,
	}
}

func resultJSON(id string, r *sim.Result) experimentJSON {
	return experimentJSON{
		ID:     id,
		Chain:  string(r.Chain),
		Users:  r.Users,
		Deploy: opJSONOf(r.DeploySummary, r.DeployFees.String(), r.DeployFees.Euros(), r.DeployGas),
		Attach: opJSONOf(r.AttachSummary, r.AttachFees.String(), r.AttachFees.Euros(), r.AttachGas),
	}
}

func runFigure(spec sim.FigureSpec, seed uint64, o *obs.Obs, jsonOut bool) experimentJSON {
	f, r, err := sim.RunFigureObserved(spec, seed, o)
	if err != nil {
		fatal(err)
	}
	if !jsonOut {
		fmt.Println(f)
	}
	return resultJSON(spec.ID, r)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "polbench: %v\n", err)
	os.Exit(1)
}
