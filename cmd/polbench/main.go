// Command polbench regenerates the evaluation chapter: Tables 5.1–5.4 and
// Figures 5.1–5.5, rendered as text tables and ASCII bar charts.
//
//	polbench -tables          # Tables 5.1–5.4
//	polbench -figures         # Figures 5.2–5.5 (a–d)
//	polbench -fig 5.3b        # one figure
//	polbench -seed 7          # change the experiment seed
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"agnopol/internal/core"
	"agnopol/internal/sim"
)

func main() {
	var (
		tables   = flag.Bool("tables", false, "regenerate Tables 5.1–5.4")
		figures  = flag.Bool("figures", false, "regenerate Figures 5.2–5.5")
		analysis = flag.Bool("analysis", false, "regenerate Fig 5.1 (conservative analysis)")
		fig      = flag.String("fig", "", "regenerate one figure, e.g. 5.3b")
		seed     = flag.Uint64("seed", 7, "experiment seed")
	)
	flag.Parse()
	if !*tables && !*figures && !*analysis && *fig == "" {
		*tables, *figures, *analysis = true, true, true
	}

	if *analysis {
		compiled, err := core.CompilePoL()
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Fig 5.1 — conservative analysis of the smart contract ==")
		fmt.Print(compiled.Report)
		fmt.Println()
		fmt.Print(compiled.Analysis)
		fmt.Println()
	}

	if *fig != "" {
		for _, spec := range sim.FigureSpecs {
			if strings.Contains(spec.ID, "Fig "+*fig+" ") {
				runFigure(spec, *seed)
				return
			}
		}
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}

	if *figures {
		for _, spec := range sim.FigureSpecs {
			runFigure(spec, *seed)
		}
	}

	if *tables {
		ts, _, err := sim.RunTables(*seed)
		if err != nil {
			fatal(err)
		}
		for _, t := range ts {
			fmt.Println(t)
		}
	}
}

func runFigure(spec sim.FigureSpec, seed uint64) {
	f, _, err := sim.RunFigure(spec, seed)
	if err != nil {
		fatal(err)
	}
	fmt.Println(f)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "polbench: %v\n", err)
	os.Exit(1)
}
