package main

import (
	"strings"
	"testing"
	"time"
)

func TestHygieneProblem(t *testing.T) {
	set := func(names ...string) map[string]bool {
		m := map[string]bool{}
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	cases := []struct {
		name string
		set  map[string]bool
		f    hygieneFlags
		want string // substring of the problem message, "" = coherent
	}{
		{"bare run is coherent", set(), hygieneFlags{FaultRate: 0.1}, ""},
		{"soak with soak flags", set("soak", "areas", "shards"), hygieneFlags{Soak: true, FaultRate: 0.1}, ""},
		{"reps without matrix or faults", set("reps"), hygieneFlags{FaultRate: 0.1}, "-reps and -parallel"},
		{"faultrate without faults", set("faultrate"), hygieneFlags{FaultRate: 0.5}, "require -faults"},
		{"vmbenchtime without vmbench", set("vmbenchtime"), hygieneFlags{FaultRate: 0.1}, "requires -vmbench"},
		{"vmfilter without vmbench", set("vmfilter"), hygieneFlags{VMFilter: "proof_verify", FaultRate: 0.1}, "-vmfilter requires -vmbench"},
		{"vmfilter with vmbench", set("vmbench", "vmfilter"), hygieneFlags{VMBench: true, VMFilter: "proof_verify", FaultRate: 0.1}, ""},
		{"empty vmfilter", set("vmbench", "vmfilter"), hygieneFlags{VMBench: true, VMFilter: "", FaultRate: 0.1}, "must not be empty"},
		{"areas without soak", set("areas"), hygieneFlags{FaultRate: 0.1}, "-areas requires -soak"},
		{"benchout without a bench mode", set("benchout"), hygieneFlags{FaultRate: 0.1}, "-benchout only applies"},
		{"benchout ambiguous", set("benchout"), hygieneFlags{Matrix: true, Soak: true, FaultRate: 0.1}, "ambiguous"},
		{"faultrate out of range", set("faults", "faultrate"), hygieneFlags{FaultsProfile: "default", FaultRate: 1.5}, "outside [0,1]"},

		{"serve without a run mode", set("serve"), hygieneFlags{Serve: ":0", FaultRate: 0.1}, "-serve requires a run mode"},
		{"serve with soak", set("serve", "soak"), hygieneFlags{Serve: ":0", Soak: true, FaultRate: 0.1}, ""},
		{"serve with tables", set("serve", "tables"), hygieneFlags{Serve: ":0", Tables: true, FaultRate: 0.1}, ""},
		{"serve with fig", set("serve", "fig"), hygieneFlags{Serve: ":0", Fig: "5.2", FaultRate: 0.1}, ""},
		{"sampleinterval without serve", set("sampleinterval", "soak"),
			hygieneFlags{Soak: true, SampleInterval: time.Second, FaultRate: 0.1}, "-sampleinterval requires -serve"},
		{"sampleinterval zero", set("serve", "soak", "sampleinterval"),
			hygieneFlags{Serve: ":0", Soak: true, SampleInterval: 0, FaultRate: 0.1}, "must be positive"},
		{"sampleinterval negative", set("serve", "soak", "sampleinterval"),
			hygieneFlags{Serve: ":0", Soak: true, SampleInterval: -time.Second, FaultRate: 0.1}, "must be positive"},
		{"sampleinterval valid", set("serve", "soak", "sampleinterval"),
			hygieneFlags{Serve: ":0", Soak: true, SampleInterval: time.Second, FaultRate: 0.1}, ""},
		{"servehold without serve", set("servehold", "soak"), hygieneFlags{Soak: true, FaultRate: 0.1}, "-servehold requires -serve"},
		{"servehold with serve", set("servehold", "serve", "soak"),
			hygieneFlags{Serve: ":0", Soak: true, FaultRate: 0.1}, ""},
		{"healthout alone", set("healthout"), hygieneFlags{HealthOut: "h.json", FaultRate: 0.1}, "-healthout requires -serve or -soak"},
		{"healthout with tables only", set("healthout", "tables"),
			hygieneFlags{HealthOut: "h.json", Tables: true, FaultRate: 0.1}, "-healthout requires -serve or -soak"},
		{"healthout with soak", set("healthout", "soak"), hygieneFlags{HealthOut: "h.json", Soak: true, FaultRate: 0.1}, ""},
		{"healthout with serve+matrix", set("healthout", "serve", "matrix"),
			hygieneFlags{HealthOut: "h.json", Serve: ":0", Matrix: true, FaultRate: 0.1}, ""},

		{"statedir without soak", set("statedir"),
			hygieneFlags{StateDir: "s", FaultRate: 0.1}, "-statedir requires -soak"},
		{"statedir with persist only", set("persist", "statedir"),
			hygieneFlags{Persist: true, StateDir: "s", FaultRate: 0.1}, "-statedir requires -soak"},
		{"statedir with soak", set("soak", "statedir"),
			hygieneFlags{Soak: true, StateDir: "s", FaultRate: 0.1}, ""},
		{"checkpoint without statedir or persist", set("soak", "checkpoint"),
			hygieneFlags{Soak: true, Checkpoint: 5, FaultRate: 0.1}, "-checkpoint requires -statedir or -persist"},
		{"checkpoint with statedir", set("soak", "statedir", "checkpoint"),
			hygieneFlags{Soak: true, StateDir: "s", Checkpoint: 5, FaultRate: 0.1}, ""},
		{"checkpoint with persist", set("persist", "checkpoint"),
			hygieneFlags{Persist: true, Checkpoint: 5, FaultRate: 0.1}, ""},
		{"checkpoint below one", set("soak", "statedir", "checkpoint"),
			hygieneFlags{Soak: true, StateDir: "s", Checkpoint: 0, FaultRate: 0.1}, "must be >= 1"},
		{"resume without statedir", set("soak", "resume"),
			hygieneFlags{Soak: true, Resume: true, FaultRate: 0.1}, "-resume requires -statedir"},
		{"resume with statedir", set("soak", "statedir", "resume"),
			hygieneFlags{Soak: true, StateDir: "s", Resume: true, FaultRate: 0.1}, ""},
		{"resume with explicit areas", set("soak", "statedir", "resume", "areas"),
			hygieneFlags{Soak: true, StateDir: "s", Resume: true, FaultRate: 0.1}, "-areas conflicts with -resume"},
		{"resume with explicit seed", set("soak", "statedir", "resume", "seed"),
			hygieneFlags{Soak: true, StateDir: "s", Resume: true, FaultRate: 0.1}, "-seed conflicts with -resume"},
		{"resume with explicit shards is allowed", set("soak", "statedir", "resume", "shards"),
			hygieneFlags{Soak: true, StateDir: "s", Resume: true, FaultRate: 0.1}, ""},
		{"persist is a run mode for serve", set("serve", "persist"),
			hygieneFlags{Serve: ":0", Persist: true, FaultRate: 0.1}, ""},
		{"persist with grid flags", set("persist", "areas", "soakrounds"),
			hygieneFlags{Persist: true, FaultRate: 0.1}, ""},
		{"soakchain with persist only", set("persist", "soakchain"),
			hygieneFlags{Persist: true, FaultRate: 0.1}, "-soakchain requires -soak"},
		{"benchout with persist", set("persist", "benchout"),
			hygieneFlags{Persist: true, FaultRate: 0.1}, ""},
		{"benchout ambiguous with soak+persist", set("soak", "persist", "benchout"),
			hygieneFlags{Soak: true, Persist: true, FaultRate: 0.1}, "ambiguous"},

		{"cross-chain soak is coherent", set("soak", "soakchain"),
			hygieneFlags{Soak: true, SoakChain: "all", FaultRate: 0.1}, ""},
		{"cross-chain soak with benchout", set("soak", "soakchain", "benchout"),
			hygieneFlags{Soak: true, SoakChain: "all", FaultRate: 0.1}, ""},
		{"cross-chain soak rejects statedir", set("soak", "soakchain", "statedir"),
			hygieneFlags{Soak: true, SoakChain: "all", StateDir: "s", FaultRate: 0.1}, "-soakchain all does not support -statedir"},
		{"cross-chain soak rejects resume", set("soak", "soakchain", "statedir", "resume"),
			hygieneFlags{Soak: true, SoakChain: "all", StateDir: "s", Resume: true, FaultRate: 0.1}, "does not support -statedir/-resume"},
		{"single-chain soak keeps statedir", set("soak", "soakchain", "statedir"),
			hygieneFlags{Soak: true, SoakChain: "algorand", StateDir: "s", FaultRate: 0.1}, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := hygieneProblem(c.set, c.f)
			if c.want == "" && got != "" {
				t.Fatalf("hygieneProblem = %q, want coherent", got)
			}
			if c.want != "" && !strings.Contains(got, c.want) {
				t.Fatalf("hygieneProblem = %q, want a message containing %q", got, c.want)
			}
		})
	}
}
