package main

import (
	"fmt"
	"time"
)

// hygieneFlags carries the parsed flag values the coherence checks need.
// The set map (which flags were explicitly passed) travels separately,
// because several rules care about "was set at all", not the value.
type hygieneFlags struct {
	Tables, Figures, Analysis bool
	Fig                       string
	Matrix                    bool
	FaultsProfile             string
	VMBench, Soak             bool
	VMFilter                  string
	SoakChain                 string
	FaultRate                 float64
	SampleInterval            time.Duration
	Serve, HealthOut          string
	StateDir                  string
	Checkpoint                int
	Resume, Persist           bool
}

// runMode reports whether any run-producing mode is selected. -serve and
// -healthout attach to a run; with nothing to run they would sample an
// empty registry forever.
func (f hygieneFlags) runMode() bool {
	return f.Tables || f.Figures || f.Analysis || f.Fig != "" ||
		f.Matrix || f.FaultsProfile != "" || f.VMBench || f.Soak || f.Persist
}

// hygieneProblem returns the first incoherent-flag-combination message, or
// "" when the combination is coherent. Split out of main so the rules are
// table-testable without exec'ing the binary.
func hygieneProblem(set map[string]bool, f hygieneFlags) string {
	if (set["reps"] || set["parallel"]) && !f.Matrix && f.FaultsProfile == "" {
		return "-reps and -parallel only apply to -matrix or -faults runs"
	}
	if (set["faultrate"] || set["faultsout"]) && f.FaultsProfile == "" {
		return "-faultrate and -faultsout require -faults <profile>"
	}
	if set["vmbenchtime"] && !f.VMBench {
		return "-vmbenchtime requires -vmbench"
	}
	if set["vmfilter"] && !f.VMBench {
		return "-vmfilter requires -vmbench"
	}
	if set["vmfilter"] && f.VMFilter == "" {
		return "-vmfilter must not be empty (omit it to run every workload)"
	}
	if set["soakchain"] && !f.Soak {
		return "-soakchain requires -soak (-persist always runs both chain families)"
	}
	for _, name := range []string{"areas", "soakusers", "soakrounds", "shards"} {
		if set[name] && !f.Soak && !f.Persist {
			return fmt.Sprintf("-%s requires -soak or -persist", name)
		}
	}
	if f.StateDir != "" && !f.Soak {
		return "-statedir requires -soak (-persist manages its own temporary state dirs)"
	}
	if f.SoakChain == "all" && (f.StateDir != "" || f.Resume) {
		// The cross-chain soak drives several backends in one process; a
		// single manifest cannot describe per-backend checkpoints, so the
		// combination is rejected rather than silently persisting one
		// backend's slice of the run.
		return "-soakchain all does not support -statedir/-resume; persist per-chain soaks separately"
	}
	if set["checkpoint"] && f.StateDir == "" && !f.Persist {
		return "-checkpoint requires -statedir or -persist"
	}
	if set["checkpoint"] && f.Checkpoint < 1 {
		return fmt.Sprintf("-checkpoint %d must be >= 1", f.Checkpoint)
	}
	if f.Resume && f.StateDir == "" {
		return "-resume requires -statedir"
	}
	if f.Resume {
		// The manifest is authoritative for the workload shape; an explicit
		// flag would either be redundant or a silently different workload.
		for _, name := range []string{"soakchain", "areas", "soakusers", "soakrounds", "seed"} {
			if set[name] {
				return fmt.Sprintf("-%s conflicts with -resume: the workload shape comes from the state dir's manifest", name)
			}
		}
	}
	if set["benchout"] && !f.Matrix && !f.VMBench && !f.Soak && !f.Persist {
		return "-benchout only applies to -matrix, -vmbench, -soak or -persist runs"
	}
	if set["benchout"] && boolCount(f.Matrix, f.VMBench, f.Soak, f.Persist) > 1 {
		return "-benchout is ambiguous when more than one of -matrix, -vmbench, -soak and -persist run; invoke them separately"
	}
	if f.FaultRate < 0 || f.FaultRate > 1 {
		return fmt.Sprintf("-faultrate %v is outside [0,1]", f.FaultRate)
	}
	if f.Serve != "" && !f.runMode() {
		return "-serve requires a run mode (-tables, -figures, -fig, -matrix, -faults, -vmbench, -soak or -persist)"
	}
	if set["sampleinterval"] && f.Serve == "" {
		return "-sampleinterval requires -serve"
	}
	if set["sampleinterval"] && f.SampleInterval <= 0 {
		return fmt.Sprintf("-sampleinterval %v must be positive", f.SampleInterval)
	}
	if set["servehold"] && f.Serve == "" {
		return "-servehold requires -serve"
	}
	if f.HealthOut != "" && f.Serve == "" && !f.Soak {
		return "-healthout requires -serve or -soak"
	}
	return ""
}
