// Command benchgate is the CI benchmark-regression gate: it compares a
// freshly generated benchmark record against the committed baseline and
// fails (exit 1) when performance regressed beyond the tolerance.
//
//	benchgate -kind vm -fresh BENCH_vm.json -baseline ci/baseline/BENCH_vm.json
//	benchgate -kind throughput -fresh BENCH_throughput.json -baseline ci/baseline/BENCH_throughput.json
//	benchgate -kind health -fresh HEALTH_report.json
//	benchgate -kind state -fresh BENCH_throughput.json
//	benchgate -kind persist -fresh BENCH_persist.json
//	benchgate -kind crosschain -fresh BENCH_throughput.json -baseline ci/baseline/BENCH_throughput.json
//
// For -kind vm every workload's u256 ns/op may regress at most -tolerance
// (default 25%) against the baseline. For -kind throughput the record must
// be deterministic, and — when the measurement is valid (GOMAXPROCS >= 2)
// on both sides — the sharded run's txs/sec may not regress beyond the
// tolerance; a valid fresh record at >= -minshards shards must additionally
// reach -minspeedup over its own serial baseline. For -kind health the
// flight-recorder report must come from a monitored run (samples > 0,
// rules attached) with a healthy verdict; -baseline is not used. For
// -kind state the record's runs must agree on the world-state Merkle root
// and stay within -maxbytesperuser of live heap per simulated user;
// -baseline is not used. For -kind persist every chain family's resumed
// run must be bit-identical (digest, state root, blocks) to its
// uninterrupted reference and reopen within -maxreopenseconds; -baseline
// is not used. For -kind crosschain the record's cross_chain section must
// exist, span at least two backends with bit-identical concurrent and
// sequential digests (re-compared here, never trusted as a flag), carry an
// equivalent flat/sharded DHT discovery report within the hypercube hop
// bound, and — when both records' concurrency measurements are valid — no
// backend's txs/sec may regress beyond the tolerance against the same
// backend in the baseline; -mincrossspeedup additionally floors the
// aggregate speedup over the slowest backend (0 disables).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

func main() {
	var (
		kind       = flag.String("kind", "", "record kind: vm, throughput, health, state, persist or crosschain")
		fresh      = flag.String("fresh", "", "freshly generated benchmark record")
		baseline   = flag.String("baseline", "", "committed baseline record")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed fractional regression against the baseline")
		minSpeedup = flag.Float64("minspeedup", 1.8, "required sharded-vs-serial speedup when the measurement is valid")
		minShards  = flag.Int("minshards", 4, "shard count from which -minspeedup is enforced")
		maxBPU     = flag.Float64("maxbytesperuser", 8192, "allowed live-heap bytes per user for -kind state")
		minPre     = flag.Float64("minprecompilespeedup", 2.0, "required EVM precompile-vs-interpreted speedup for -kind vm (0 disables)")
		maxReopen  = flag.Float64("maxreopenseconds", 30, "allowed restart-from-root wall time for -kind persist")
		minCross   = flag.Float64("mincrossspeedup", 1.0, "required aggregate-vs-slowest-backend speedup for -kind crosschain when the measurement is valid (0 disables)")
	)
	flag.Parse()
	baselineFree := map[string]bool{"health": true, "state": true, "persist": true}
	if *kind == "" || *fresh == "" || (*baseline == "" && !baselineFree[*kind]) {
		fmt.Fprintln(os.Stderr, "benchgate: -kind and -fresh are required (-baseline too, except for -kind health, state and persist)")
		flag.Usage()
		os.Exit(2)
	}
	if *tolerance < 0 {
		fmt.Fprintf(os.Stderr, "benchgate: -tolerance %v must be >= 0\n", *tolerance)
		os.Exit(2)
	}

	var (
		problems []string
		err      error
	)
	switch *kind {
	case "vm":
		problems, err = gateVM(*fresh, *baseline, *tolerance, *minPre)
	case "throughput":
		problems, err = gateThroughput(*fresh, *baseline, *tolerance, *minSpeedup, *minShards)
	case "health":
		problems, err = gateHealth(*fresh)
	case "state":
		problems, err = gateState(*fresh, *maxBPU)
	case "persist":
		problems, err = gatePersist(*fresh, *maxReopen)
	case "crosschain":
		problems, err = gateCrossChain(*fresh, *baseline, *tolerance, *minCross)
	default:
		fmt.Fprintf(os.Stderr, "benchgate: unknown -kind %q (want vm, throughput, health, state, persist or crosschain)\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL: %s\n", p)
		}
		os.Exit(1)
	}
	if *baseline == "" {
		fmt.Printf("benchgate: %s gate passed (%s)\n", *kind, *fresh)
	} else {
		fmt.Printf("benchgate: %s gate passed (%s vs %s)\n", *kind, *fresh, *baseline)
	}
}

// vmSeries mirrors the per-engine block of BENCH_vm.json.
type vmSeries struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// vmWorkload mirrors one workloads[] entry of BENCH_vm.json.
type vmWorkload struct {
	Name string    `json:"name"`
	U256 *vmSeries `json:"u256"`
}

// vmRecord mirrors the fields of BENCH_vm.json the gate reads. The
// precompile headline is a pointer so a record predating the proof-verify
// workload is distinguishable from a measured 0x.
type vmRecord struct {
	GOMAXPROCS           int          `json:"gomaxprocs"`
	Workloads            []vmWorkload `json:"workloads"`
	EVMPrecompileSpeedup *float64     `json:"evm_proof_verify_precompile_ns_improvement"`
}

// throughputRun mirrors one runs[] entry of BENCH_throughput.json.
type throughputRun struct {
	Shards        int     `json:"shards"`
	TxsPerSecWall float64 `json:"txs_per_sec_wall"`
	StateRoot     string  `json:"state_root"`
	HeapBytes     uint64  `json:"heap_bytes"`
	BytesPerUser  float64 `json:"bytes_per_user"`
}

// throughputRecord mirrors the fields of BENCH_throughput.json the gate
// reads.
type throughputRecord struct {
	Users         int             `json:"users"`
	Speedup       float64         `json:"speedup"`
	SpeedupValid  bool            `json:"speedup_valid"`
	Deterministic bool            `json:"deterministic"`
	RootsMatch    bool            `json:"roots_match"`
	Runs          []throughputRun `json:"runs"`
	CrossChain    *crossChainSec  `json:"cross_chain"`
}

// crossChainBackend mirrors one cross_chain.backends[] entry.
type crossChainBackend struct {
	Chain            string  `json:"chain"`
	TxsIncluded      uint64  `json:"txs_included"`
	TxsPerSecWall    float64 `json:"txs_per_sec_wall"`
	Digest           string  `json:"digest"`
	DigestSequential string  `json:"digest_sequential"`
	StateRoot        string  `json:"state_root"`
}

// crossChainDiscovery mirrors the cross_chain.discovery object.
type crossChainDiscovery struct {
	Shards          int      `json:"shards"`
	R               int      `json:"r"`
	Lookups         uint64   `json:"lookups"`
	PerShardLookups []uint64 `json:"per_shard_lookups"`
	MaxHops         int      `json:"max_hops"`
	FlatEquivalent  bool     `json:"flat_equivalent"`
}

// crossChainSec mirrors the fields of the cross_chain section the gate
// reads.
type crossChainSec struct {
	SpeedupVsSlowest float64             `json:"speedup_vs_slowest"`
	SpeedupValid     bool                `json:"speedup_valid"`
	Backends         []crossChainBackend `json:"backends"`
	Discovery        crossChainDiscovery `json:"discovery"`
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

// regressed reports whether fresh exceeds base by more than tol (for
// costs, where bigger is worse).
func regressed(fresh, base, tol float64) bool {
	return base > 0 && fresh > base*(1+tol)
}

// gateVM checks every baseline workload's u256 ns/op against the fresh
// record. A workload missing from the fresh record is itself a failure —
// a silently dropped benchmark must not pass the gate. When minPre > 0
// the fresh record must additionally carry the proof-verification
// precompile headline and clear that floor: the native hot path staying
// at least that much faster than the interpreted lowering is an
// acceptance criterion, and a record without the measurement is the gate
// silently disarming itself.
func gateVM(freshPath, basePath string, tol, minPre float64) ([]string, error) {
	var fresh, base vmRecord
	if err := readJSON(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := readJSON(basePath, &base); err != nil {
		return nil, err
	}
	freshBy := make(map[string]vmWorkload, len(fresh.Workloads))
	for _, w := range fresh.Workloads {
		freshBy[w.Name] = w
	}
	var problems []string
	for _, bw := range base.Workloads {
		if bw.U256 == nil {
			continue
		}
		fw, ok := freshBy[bw.Name]
		if !ok || fw.U256 == nil {
			problems = append(problems, fmt.Sprintf(
				"workload %q present in baseline but missing from fresh record", bw.Name))
			continue
		}
		if regressed(fw.U256.NsPerOp, bw.U256.NsPerOp, tol) {
			problems = append(problems, fmt.Sprintf(
				"workload %q ns/op regressed %.1f%% (fresh %.0f vs baseline %.0f, tolerance %.0f%%)",
				bw.Name, 100*(fw.U256.NsPerOp/bw.U256.NsPerOp-1),
				fw.U256.NsPerOp, bw.U256.NsPerOp, 100*tol))
		}
	}
	if minPre > 0 {
		switch {
		case fresh.EVMPrecompileSpeedup == nil:
			problems = append(problems, fmt.Sprintf(
				"fresh record carries no evm_proof_verify_precompile_ns_improvement headline "+
					"(required floor %.2fx): the precompile speedup was never measured", minPre))
		case *fresh.EVMPrecompileSpeedup < minPre:
			problems = append(problems, fmt.Sprintf(
				"EVM precompile speedup %.2fx is below the required %.2fx floor",
				*fresh.EVMPrecompileSpeedup, minPre))
		}
	}
	return problems, nil
}

// healthRuleName mirrors the nested rule object of HEALTH_report.json.
type healthRuleName struct {
	Name string `json:"name"`
}

// healthEval mirrors one rules[] entry of HEALTH_report.json.
type healthEval struct {
	Rule     healthRuleName `json:"rule"`
	Breached bool           `json:"breached"`
}

// healthAnomaly mirrors one anomalies[] entry of HEALTH_report.json.
type healthAnomaly struct {
	Rule healthRuleName `json:"rule"`
}

// healthReport mirrors the fields of HEALTH_report.json the gate reads.
type healthReport struct {
	Healthy       bool            `json:"healthy"`
	Samples       uint64          `json:"samples"`
	TotalBreaches uint64          `json:"total_breaches"`
	Rules         []healthEval    `json:"rules"`
	Anomalies     []healthAnomaly `json:"anomalies"`
}

// gateHealth checks the soak's flight-recorder verdict. A report from a
// run the monitor never actually watched (no samples, or no rules
// attached) must not pass: that is the gate silently disarming itself,
// not a healthy run.
func gateHealth(freshPath string) ([]string, error) {
	var rep healthReport
	if err := readJSON(freshPath, &rep); err != nil {
		return nil, err
	}
	var problems []string
	if rep.Samples == 0 {
		problems = append(problems, "report has zero samples: the monitor never ticked, so the verdict is vacuous")
	}
	if len(rep.Rules) == 0 {
		problems = append(problems, "report has no SLO rules attached: nothing was being checked")
	}
	if !rep.Healthy {
		// The verdict is sticky, so the breaching rule may no longer show
		// breached in its latest evaluation — collect names from both the
		// anomaly bundles and the final evaluations.
		names := map[string]bool{}
		var order []string
		add := func(n string) {
			if n != "" && !names[n] {
				names[n] = true
				order = append(order, n)
			}
		}
		for _, a := range rep.Anomalies {
			add(a.Rule.Name)
		}
		for _, e := range rep.Rules {
			if e.Breached {
				add(e.Rule.Name)
			}
		}
		problems = append(problems, fmt.Sprintf(
			"run is unhealthy: %d SLO breach(es) across rules %v", rep.TotalBreaches, order))
	}
	return problems, nil
}

// shardedRun picks the highest-shard-count run of a record.
func shardedRun(r throughputRecord) (throughputRun, bool) {
	var best throughputRun
	found := false
	for _, run := range r.Runs {
		if !found || run.Shards > best.Shards {
			best, found = run, true
		}
	}
	return best, found
}

// gateThroughput checks the soak record: determinism always; throughput
// and speedup only when the measurements are parallelism-valid, because a
// single-threaded runner's numbers measure goroutine overhead, not the
// sharded pipeline.
func gateThroughput(freshPath, basePath string, tol, minSpeedup float64, minShards int) ([]string, error) {
	var fresh, base throughputRecord
	if err := readJSON(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := readJSON(basePath, &base); err != nil {
		return nil, err
	}
	var problems []string
	if !fresh.Deterministic {
		problems = append(problems, "fresh record is not deterministic: sharded digest diverged from the serial baseline")
	}
	freshRun, okFresh := shardedRun(fresh)
	if !okFresh {
		problems = append(problems, "fresh record has no runs")
		return problems, nil
	}
	if fresh.SpeedupValid && freshRun.Shards >= minShards && fresh.Speedup < minSpeedup {
		problems = append(problems, fmt.Sprintf(
			"speedup %.2fx at %d shards is below the required %.2fx",
			fresh.Speedup, freshRun.Shards, minSpeedup))
	}
	baseRun, okBase := shardedRun(base)
	if fresh.SpeedupValid && base.SpeedupValid && okBase &&
		baseRun.TxsPerSecWall > 0 && freshRun.TxsPerSecWall > 0 {
		// Throughput is an inverse cost: gate on per-tx wall time.
		if regressed(1/freshRun.TxsPerSecWall, 1/baseRun.TxsPerSecWall, tol) {
			problems = append(problems, fmt.Sprintf(
				"sharded throughput regressed %.1f%% (fresh %.0f txs/sec vs baseline %.0f, tolerance %.0f%%)",
				100*(baseRun.TxsPerSecWall/freshRun.TxsPerSecWall-1),
				freshRun.TxsPerSecWall, baseRun.TxsPerSecWall, 100*tol))
		}
	}
	return problems, nil
}

// persistRun mirrors one runs[] entry of BENCH_persist.json.
type persistRun struct {
	Chain            string  `json:"chain"`
	DigestFull       string  `json:"digest_full"`
	DigestResumed    string  `json:"digest_resumed"`
	StateRootFull    string  `json:"state_root_full"`
	StateRootResumed string  `json:"state_root_resumed"`
	Match            bool    `json:"match"`
	ReopenSeconds    float64 `json:"reopen_seconds"`
}

// persistRecord mirrors the fields of BENCH_persist.json the gate reads.
type persistRecord struct {
	AllMatch bool         `json:"all_match"`
	Runs     []persistRun `json:"runs"`
}

// gatePersist checks the kill-and-resume record: every chain family's
// resumed run must be bit-identical to its uninterrupted reference, and
// the restart-from-root reopen must stay within the wall-time bound. The
// digests are re-compared here rather than trusting the match flag alone —
// a record whose flag contradicts its own digests must not pass.
func gatePersist(freshPath string, maxReopen float64) ([]string, error) {
	var rec persistRecord
	if err := readJSON(freshPath, &rec); err != nil {
		return nil, err
	}
	var problems []string
	if len(rec.Runs) == 0 {
		return append(problems, "record has no runs"), nil
	}
	if !rec.AllMatch {
		problems = append(problems, "all_match is false: at least one resumed run diverged from its reference")
	}
	for _, run := range rec.Runs {
		if run.DigestFull == "" || run.DigestResumed == "" {
			problems = append(problems, fmt.Sprintf(
				"%s: record carries no digest pair: bit-identity was never checked", run.Chain))
			continue
		}
		if run.DigestFull != run.DigestResumed {
			problems = append(problems, fmt.Sprintf(
				"%s: resumed digest %.16s... diverges from uninterrupted %.16s...",
				run.Chain, run.DigestResumed, run.DigestFull))
		}
		if run.StateRootFull != run.StateRootResumed {
			problems = append(problems, fmt.Sprintf(
				"%s: resumed state root %.16s... diverges from uninterrupted %.16s...",
				run.Chain, run.StateRootResumed, run.StateRootFull))
		}
		if !run.Match {
			problems = append(problems, fmt.Sprintf(
				"%s: match is false: the resumed run is not bit-identical to its reference", run.Chain))
		}
		if run.ReopenSeconds > maxReopen {
			problems = append(problems, fmt.Sprintf(
				"%s: restart-from-root took %.1fs, above the %.0fs bound",
				run.Chain, run.ReopenSeconds, maxReopen))
		}
	}
	return problems, nil
}

// gateState checks the state layer's soak record: every run must report a
// world-state Merkle root, all runs must agree on it (root determinism
// across shard counts), and live heap must stay within maxBPU bytes per
// simulated user — the bounded-memory claim. A record without memory
// measurements (old format) must not pass: that is the gate silently
// disarming itself.
func gateState(freshPath string, maxBPU float64) ([]string, error) {
	var rec throughputRecord
	if err := readJSON(freshPath, &rec); err != nil {
		return nil, err
	}
	var problems []string
	if len(rec.Runs) == 0 {
		return append(problems, "record has no runs"), nil
	}
	if !rec.Deterministic {
		problems = append(problems, "record is not deterministic: sharded digest diverged from the serial baseline")
	}
	if !rec.RootsMatch {
		problems = append(problems, "roots_match is false: the record predates the state layer or the roots diverged")
	}
	root := ""
	for i, run := range rec.Runs {
		if run.StateRoot == "" {
			problems = append(problems, fmt.Sprintf("run %d (shards=%d) reports no state root", i, run.Shards))
			continue
		}
		if root == "" {
			root = run.StateRoot
		} else if run.StateRoot != root {
			problems = append(problems, fmt.Sprintf(
				"run %d (shards=%d) state root %.16s... diverges from %.16s...",
				i, run.Shards, run.StateRoot, root))
		}
		if run.HeapBytes == 0 {
			problems = append(problems, fmt.Sprintf(
				"run %d (shards=%d) has no heap measurement: the memory bound was never checked", i, run.Shards))
		} else if run.BytesPerUser > maxBPU {
			problems = append(problems, fmt.Sprintf(
				"run %d (shards=%d) uses %.0f live-heap bytes per user, above the %.0f bound",
				i, run.Shards, run.BytesPerUser, maxBPU))
		}
	}
	return problems, nil
}

// gateCrossChain checks the cross-chain soak section: per-backend
// determinism across interleavings (digest pairs re-compared, never
// trusted as a flag), DHT discovery equivalence within the hypercube hop
// bound, and — when both sides' concurrency measurements are valid —
// per-backend throughput against the same backend in the baseline. A
// record or baseline without the section must not pass: that is the gate
// silently disarming itself.
func gateCrossChain(freshPath, basePath string, tol, minCross float64) ([]string, error) {
	var fresh, base throughputRecord
	if err := readJSON(freshPath, &fresh); err != nil {
		return nil, err
	}
	if err := readJSON(basePath, &base); err != nil {
		return nil, err
	}
	var problems []string
	cc := fresh.CrossChain
	if cc == nil {
		return append(problems, "fresh record carries no cross_chain section: the cross-chain soak never ran"), nil
	}
	if len(cc.Backends) < 2 {
		problems = append(problems, fmt.Sprintf(
			"cross_chain spans %d backend(s): agnosticism needs at least 2", len(cc.Backends)))
	}
	seen := map[string]crossChainBackend{}
	for _, b := range cc.Backends {
		seen[b.Chain] = b
		if b.Digest == "" || b.DigestSequential == "" {
			problems = append(problems, fmt.Sprintf(
				"%s: record carries no digest pair: interleaving-invariance was never checked", b.Chain))
			continue
		}
		if b.Digest != b.DigestSequential {
			problems = append(problems, fmt.Sprintf(
				"%s: concurrent digest %.16s... diverges from sequential %.16s...",
				b.Chain, b.Digest, b.DigestSequential))
		}
		if b.StateRoot == "" {
			problems = append(problems, fmt.Sprintf("%s: record carries no state root", b.Chain))
		}
		if b.TxsIncluded == 0 {
			problems = append(problems, fmt.Sprintf("%s: zero transactions included: the backend carried no load", b.Chain))
		}
	}
	d := cc.Discovery
	if !d.FlatEquivalent {
		problems = append(problems, "DHT discovery: sharded routing resolved different handles than flat routing")
	}
	if d.Lookups == 0 {
		problems = append(problems, "DHT discovery: zero lookups: discovery never ran")
	}
	var perShard uint64
	for _, n := range d.PerShardLookups {
		perShard += n
	}
	if perShard != d.Lookups {
		problems = append(problems, fmt.Sprintf(
			"DHT discovery: per-shard lookups sum to %d but %d lookups ran", perShard, d.Lookups))
	}
	if d.MaxHops > d.R {
		problems = append(problems, fmt.Sprintf(
			"DHT discovery: max route length %d exceeds the hypercube r=%d bound", d.MaxHops, d.R))
	}
	if cc.SpeedupValid && minCross > 0 && cc.SpeedupVsSlowest < minCross {
		problems = append(problems, fmt.Sprintf(
			"aggregate speedup %.2fx over the slowest backend is below the required %.2fx",
			cc.SpeedupVsSlowest, minCross))
	}
	bcc := base.CrossChain
	if bcc == nil {
		problems = append(problems, "baseline carries no cross_chain section: regenerate ci/baseline")
		return problems, nil
	}
	for _, bb := range bcc.Backends {
		fb, ok := seen[bb.Chain]
		if !ok {
			problems = append(problems, fmt.Sprintf(
				"backend %s present in baseline but missing from fresh record", bb.Chain))
			continue
		}
		if cc.SpeedupValid && bcc.SpeedupValid && bb.TxsPerSecWall > 0 && fb.TxsPerSecWall > 0 {
			// Throughput is an inverse cost: gate on per-tx wall time.
			if regressed(1/fb.TxsPerSecWall, 1/bb.TxsPerSecWall, tol) {
				problems = append(problems, fmt.Sprintf(
					"%s throughput regressed %.1f%% (fresh %.0f txs/sec vs baseline %.0f, tolerance %.0f%%)",
					bb.Chain, 100*(bb.TxsPerSecWall/fb.TxsPerSecWall-1),
					fb.TxsPerSecWall, bb.TxsPerSecWall, 100*tol))
			}
		}
	}
	return problems, nil
}
