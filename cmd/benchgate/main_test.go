package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"agnopol/internal/obs"
)

func writeJSON(t *testing.T, dir, name string, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func vmRec(names []string, nsPerOp []float64) vmRecord {
	r := vmRecord{GOMAXPROCS: 1}
	for i, n := range names {
		r.Workloads = append(r.Workloads, vmWorkload{
			Name: n, U256: &vmSeries{NsPerOp: nsPerOp[i]},
		})
	}
	return r
}

func TestGateVM(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json",
		vmRec([]string{"evm", "avm"}, []float64{1000, 500}))

	cases := []struct {
		name  string
		fresh vmRecord
		want  int
		match string
	}{
		{
			name:  "within tolerance passes",
			fresh: vmRec([]string{"evm", "avm"}, []float64{1200, 600}),
			want:  0,
		},
		{
			name:  "regression beyond tolerance fails",
			fresh: vmRec([]string{"evm", "avm"}, []float64{1300, 500}),
			want:  1, match: "ns/op regressed",
		},
		{
			name:  "improvement passes",
			fresh: vmRec([]string{"evm", "avm"}, []float64{400, 200}),
			want:  0,
		},
		{
			name:  "dropped workload fails",
			fresh: vmRec([]string{"evm"}, []float64{1000}),
			want:  1, match: "missing from fresh",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "fresh.json", tc.fresh)
			problems, err := gateVM(fresh, base, 0.25, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

func TestGateVMPrecompileFloor(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", vmRec([]string{"evm"}, []float64{1000}))
	withHeadline := func(speedup float64) vmRecord {
		r := vmRec([]string{"evm"}, []float64{1000})
		r.EVMPrecompileSpeedup = &speedup
		return r
	}

	cases := []struct {
		name   string
		fresh  vmRecord
		minPre float64
		want   int
		match  string
	}{
		{
			name:  "speedup above the floor passes",
			fresh: withHeadline(2.2), minPre: 2.0,
			want: 0,
		},
		{
			name:  "speedup below the floor fails",
			fresh: withHeadline(1.4), minPre: 2.0,
			want: 1, match: "below the required 2.00x floor",
		},
		{
			name:  "missing headline fails when the floor is armed",
			fresh: vmRec([]string{"evm"}, []float64{1000}), minPre: 2.0,
			want: 1, match: "never measured",
		},
		{
			name:  "zero floor disables the check",
			fresh: vmRec([]string{"evm"}, []float64{1000}), minPre: 0,
			want: 0,
		},
		{
			name:  "measured zero is a failure, not a missing field",
			fresh: withHeadline(0), minPre: 2.0,
			want: 1, match: "below the required",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "fresh.json", tc.fresh)
			problems, err := gateVM(fresh, base, 0.25, tc.minPre)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

func throughputRec(valid, deterministic bool, speedup float64, shards int, tps float64) throughputRecord {
	return throughputRecord{
		Speedup: speedup, SpeedupValid: valid, Deterministic: deterministic,
		Runs: []throughputRun{
			{Shards: 1, TxsPerSecWall: tps / speedup},
			{Shards: shards, TxsPerSecWall: tps},
		},
	}
}

func TestGateThroughput(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", throughputRec(true, true, 2.5, 4, 10000))

	cases := []struct {
		name  string
		fresh throughputRecord
		want  int
		match string
	}{
		{
			name:  "healthy record passes",
			fresh: throughputRec(true, true, 2.4, 4, 9500),
			want:  0,
		},
		{
			name:  "non-deterministic fails",
			fresh: throughputRec(true, false, 2.4, 4, 9500),
			want:  1, match: "not deterministic",
		},
		{
			name:  "speedup below floor fails",
			fresh: throughputRec(true, true, 1.2, 4, 9500),
			want:  1, match: "below the required",
		},
		{
			name: "invalid measurement skips speedup and throughput gates",
			// A GOMAXPROCS=1 runner: speedup 0.9 would fail the floor and
			// the throughput comparison, but speedup_valid=false means
			// neither gate applies; determinism still must hold.
			fresh: throughputRec(false, true, 0.9, 4, 200),
			want:  0,
		},
		{
			name:  "speedup floor not enforced below minshards",
			fresh: throughputRec(true, true, 1.2, 2, 9500),
			want:  0,
		},
		{
			name:  "throughput regression beyond tolerance fails",
			fresh: throughputRec(true, true, 2.4, 4, 6000),
			want:  1, match: "throughput regressed",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "fresh.json", tc.fresh)
			problems, err := gateThroughput(fresh, base, 0.25, 1.8, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

func healthRec(healthy bool, samples, breaches uint64, ruleNames, breachedNames []string) healthReport {
	rep := healthReport{
		Healthy: healthy, Samples: samples, TotalBreaches: breaches,
	}
	for _, n := range ruleNames {
		rep.Rules = append(rep.Rules, healthEval{Rule: healthRuleName{Name: n}})
	}
	for _, n := range breachedNames {
		rep.Anomalies = append(rep.Anomalies, healthAnomaly{Rule: healthRuleName{Name: n}})
	}
	return rep
}

func TestGateHealth(t *testing.T) {
	dir := t.TempDir()
	rules := []string{"eth_throughput_floor", "rejection_ceiling"}
	cases := []struct {
		name  string
		rep   healthReport
		want  int
		match string
	}{
		{
			name: "healthy monitored run passes",
			rep:  healthRec(true, 40, 0, rules, nil),
			want: 0,
		},
		{
			name:  "unhealthy run fails naming the breaching rule",
			rep:   healthRec(false, 40, 3, rules, []string{"rejection_ceiling"}),
			want:  1,
			match: "rejection_ceiling",
		},
		{
			name:  "zero samples is a vacuous verdict",
			rep:   healthRec(true, 0, 0, rules, nil),
			want:  1,
			match: "zero samples",
		},
		{
			name:  "no rules means nothing was checked",
			rep:   healthRec(true, 40, 0, nil, nil),
			want:  1,
			match: "no SLO rules",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "health.json", tc.rep)
			problems, err := gateHealth(fresh)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

func stateRec(deterministic, rootsMatch bool, roots []string, bytesPerUser []float64) throughputRecord {
	rec := throughputRecord{
		Users: 1000, Deterministic: deterministic, RootsMatch: rootsMatch,
	}
	for i, root := range roots {
		run := throughputRun{Shards: 1 << i, StateRoot: root}
		if bytesPerUser[i] > 0 {
			run.BytesPerUser = bytesPerUser[i]
			run.HeapBytes = uint64(bytesPerUser[i] * 1000)
		}
		rec.Runs = append(rec.Runs, run)
	}
	return rec
}

func TestGateState(t *testing.T) {
	dir := t.TempDir()
	root := "abc123"
	cases := []struct {
		name  string
		rec   throughputRecord
		want  int
		match string
	}{
		{
			name: "bounded deterministic record passes",
			rec:  stateRec(true, true, []string{root, root}, []float64{900, 950}),
			want: 0,
		},
		{
			name:  "non-deterministic fails",
			rec:   stateRec(false, true, []string{root, root}, []float64{900, 950}),
			want:  1,
			match: "not deterministic",
		},
		{
			name:  "roots_match false fails",
			rec:   stateRec(true, false, []string{root, root}, []float64{900, 950}),
			want:  1,
			match: "roots_match",
		},
		{
			name:  "diverging roots fail",
			rec:   stateRec(true, true, []string{root, "def456"}, []float64{900, 950}),
			want:  1,
			match: "diverges",
		},
		{
			name:  "missing root fails",
			rec:   stateRec(true, true, []string{root, ""}, []float64{900, 950}),
			want:  1,
			match: "no state root",
		},
		{
			name:  "memory over the bound fails",
			rec:   stateRec(true, true, []string{root, root}, []float64{900, 9000}),
			want:  1,
			match: "bytes per user",
		},
		{
			name:  "missing heap measurement fails",
			rec:   stateRec(true, true, []string{root, root}, []float64{900, 0}),
			want:  1,
			match: "no heap measurement",
		},
		{
			name:  "empty record fails",
			rec:   throughputRecord{Deterministic: true, RootsMatch: true},
			want:  1,
			match: "no runs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "state.json", tc.rec)
			problems, err := gateState(fresh, 8192)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

func persistRec(allMatch bool, runs ...persistRun) persistRecord {
	return persistRecord{AllMatch: allMatch, Runs: runs}
}

func persistOK(chain string, reopen float64) persistRun {
	return persistRun{
		Chain: chain, Match: true, ReopenSeconds: reopen,
		DigestFull: "d1", DigestResumed: "d1",
		StateRootFull: "r1", StateRootResumed: "r1",
	}
}

func TestGatePersist(t *testing.T) {
	dir := t.TempDir()
	diverged := persistOK("goerli", 0.1)
	diverged.DigestResumed = "d2"
	diverged.Match = false
	rootOnly := persistOK("goerli", 0.1)
	rootOnly.StateRootResumed = "r2"
	lyingFlag := persistOK("goerli", 0.1)
	lyingFlag.Match = false
	noDigest := persistOK("goerli", 0.1)
	noDigest.DigestFull, noDigest.DigestResumed = "", ""
	cases := []struct {
		name  string
		rec   persistRecord
		want  int
		match string
	}{
		{
			name: "bit-identical record passes",
			rec:  persistRec(true, persistOK("goerli", 0.2), persistOK("algorand", 0.3)),
			want: 0,
		},
		{
			name:  "empty record fails",
			rec:   persistRec(true),
			want:  1,
			match: "no runs",
		},
		{
			name: "diverged digest fails",
			// all_match false + digest divergence + match=false: three
			// problems, the first naming the flag.
			rec:   persistRec(false, diverged, persistOK("algorand", 0.3)),
			want:  3,
			match: "all_match is false",
		},
		{
			name:  "diverged state root alone fails",
			rec:   persistRec(true, rootOnly),
			want:  1,
			match: "state root",
		},
		{
			name:  "match flag contradicting identical digests fails",
			rec:   persistRec(true, lyingFlag),
			want:  1,
			match: "match is false",
		},
		{
			name:  "missing digest pair fails",
			rec:   persistRec(true, noDigest),
			want:  1,
			match: "no digest",
		},
		{
			name:  "slow reopen fails",
			rec:   persistRec(true, persistOK("goerli", 45)),
			want:  1,
			match: "above the 30s bound",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "persist.json", tc.rec)
			problems, err := gatePersist(fresh, 30)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

func ccBackend(chain string, tps float64) crossChainBackend {
	return crossChainBackend{
		Chain: chain, TxsIncluded: 100, TxsPerSecWall: tps,
		Digest: "d-" + chain, DigestSequential: "d-" + chain, StateRoot: "r-" + chain,
	}
}

func ccRec(valid bool, speedup float64, backends ...crossChainBackend) throughputRecord {
	return throughputRecord{
		Deterministic: true, RootsMatch: true,
		Runs: []throughputRun{{Shards: 1, TxsPerSecWall: 1000, StateRoot: "root"}},
		CrossChain: &crossChainSec{
			SpeedupVsSlowest: speedup, SpeedupValid: valid,
			Backends: backends,
			Discovery: crossChainDiscovery{
				Shards: 2, R: 6, Lookups: 12, PerShardLookups: []uint64{7, 5},
				MaxHops: 6, FlatEquivalent: true,
			},
		},
	}
}

func TestGateCrossChain(t *testing.T) {
	dir := t.TempDir()
	healthy := func() throughputRecord {
		return ccRec(true, 2.1,
			ccBackend("goerli", 2000), ccBackend("polygon", 2500), ccBackend("algorand", 900))
	}
	base := writeJSON(t, dir, "base.json", healthy())

	divergent := healthy()
	divergent.CrossChain.Backends[1].DigestSequential = "other"
	noDigest := healthy()
	noDigest.CrossChain.Backends[0].Digest = ""
	noDigest.CrossChain.Backends[0].DigestSequential = ""
	noSection := healthy()
	noSection.CrossChain = nil
	oneBackend := ccRec(true, 2.1, ccBackend("goerli", 2000))
	dropped := ccRec(true, 2.1, ccBackend("goerli", 2000), ccBackend("algorand", 900))
	regressedRec := healthy()
	regressedRec.CrossChain.Backends[2].TxsPerSecWall = 500
	invalidRegressed := regressedRec
	invalidRegressed.CrossChain = &crossChainSec{}
	*invalidRegressed.CrossChain = *regressedRec.CrossChain
	invalidRegressed.CrossChain.SpeedupValid = false
	notEquivalent := healthy()
	notEquivalent.CrossChain.Discovery.FlatEquivalent = false
	hopOverflow := healthy()
	hopOverflow.CrossChain.Discovery.MaxHops = 7
	shortCount := healthy()
	shortCount.CrossChain.Discovery.PerShardLookups = []uint64{7, 4}
	noLookups := healthy()
	noLookups.CrossChain.Discovery.Lookups = 0
	noLookups.CrossChain.Discovery.PerShardLookups = nil
	slowAggregate := healthy()
	slowAggregate.CrossChain.SpeedupVsSlowest = 0.8
	unloaded := healthy()
	unloaded.CrossChain.Backends[0].TxsIncluded = 0

	cases := []struct {
		name     string
		fresh    throughputRecord
		minCross float64
		want     int
		match    string
	}{
		{"healthy record passes", healthy(), 1.0, 0, ""},
		{"missing section fails", noSection, 1.0, 1, "no cross_chain section"},
		// One backend also leaves the baseline's other two unmatched: the
		// cardinality problem plus two dropped-backend problems.
		{"single backend fails", oneBackend, 1.0, 3, "at least 2"},
		{"interleaving divergence fails", divergent, 1.0, 1, "diverges from sequential"},
		{"missing digest pair fails", noDigest, 1.0, 1, "no digest pair"},
		{"unloaded backend fails", unloaded, 1.0, 1, "zero transactions"},
		{"dropped backend fails", dropped, 1.0, 1, "missing from fresh"},
		{"throughput regression fails", regressedRec, 1.0, 1, "throughput regressed"},
		{"invalid measurement skips regression and speedup", invalidRegressed, 1.0, 0, ""},
		{"discovery divergence fails", notEquivalent, 1.0, 1, "different handles"},
		{"hop bound overflow fails", hopOverflow, 1.0, 1, "exceeds the hypercube"},
		{"per-shard undercount fails", shortCount, 1.0, 1, "per-shard lookups sum"},
		{"zero lookups fails", noLookups, 1.0, 1, "discovery never ran"},
		{"aggregate below floor fails", slowAggregate, 1.0, 1, "below the required"},
		{"zero floor disables the aggregate check", slowAggregate, 0, 0, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := writeJSON(t, dir, "fresh.json", tc.fresh)
			problems, err := gateCrossChain(fresh, base, 0.25, tc.minCross)
			if err != nil {
				t.Fatal(err)
			}
			if len(problems) != tc.want {
				t.Fatalf("problems = %v, want %d", problems, tc.want)
			}
			if tc.match != "" && !strings.Contains(problems[0], tc.match) {
				t.Fatalf("problem %q does not mention %q", problems[0], tc.match)
			}
		})
	}
}

// TestGateCrossChainBaselineWithoutSection pins the disarm rule on the
// other side: a baseline predating the section must regenerate, not pass.
func TestGateCrossChainBaselineWithoutSection(t *testing.T) {
	dir := t.TempDir()
	rec := ccRec(true, 2.1, ccBackend("goerli", 2000), ccBackend("algorand", 900))
	fresh := writeJSON(t, dir, "fresh.json", rec)
	rec.CrossChain = nil
	base := writeJSON(t, dir, "base.json", rec)
	problems, err := gateCrossChain(fresh, base, 0.25, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "baseline carries no cross_chain") {
		t.Fatalf("problems = %v, want one naming the sectionless baseline", problems)
	}
}

// TestGateHealthRoundTrip feeds the gate a report produced by the real
// flight recorder, not a hand-built mirror, so the two JSON shapes
// cannot drift apart silently.
func TestGateHealthRoundTrip(t *testing.T) {
	o := obs.New()
	tel := obs.NewTelemetry(o, 0, []obs.Rule{{
		Name: "floor", Kind: obs.RuleRateMin, Series: "work_total", Threshold: 1,
	}})
	o.Registry.Counter("work_total").Add(5)
	tel.Tick()
	tel.Tick() // flatline: second sample has zero delta, breaching the floor
	path := filepath.Join(t.TempDir(), "HEALTH_report.json")
	if err := tel.Health.WriteReportFile(path); err != nil {
		t.Fatal(err)
	}
	problems, err := gateHealth(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0], "floor") {
		t.Fatalf("problems = %v, want one naming the breached floor rule", problems)
	}
}

func TestGateVMReadErrors(t *testing.T) {
	if _, err := gateVM("does-not-exist.json", "also-missing.json", 0.25, 0); err == nil {
		t.Fatal("missing files must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := gateVM(bad, bad, 0.25, 0); err == nil {
		t.Fatal("malformed JSON must error")
	}
}
