// Command polc compiles the proof-of-location contract with the
// blockchain-agnostic compiler and prints what the Reach toolchain printed
// in the thesis: the verification report (Fig. 2.11), the conservative
// resource analysis (Fig. 5.1), and optionally the generated backends
// (EVM disassembly, TEAL source — the index.main.mjs analogue).
package main

import (
	"flag"
	"fmt"
	"os"

	"agnopol/internal/core"
	"agnopol/internal/evm"
	"agnopol/internal/lang"
)

func main() {
	var (
		showEVM  = flag.Bool("evm", false, "print the EVM disassembly")
		showTEAL = flag.Bool("teal", false, "print the generated TEAL source")
		analyze  = flag.Bool("analyze", true, "print the conservative analysis (Fig 5.1)")
		v2       = flag.Bool("v2", false, "compile the extended contract (deadline + witness rewards)")
		src      = flag.String("src", "", "compile a .pol source file instead of the built-in contract")
	)
	flag.Parse()

	var compiled *lang.Compiled
	var err error
	switch {
	case *src != "":
		data, rerr := os.ReadFile(*src)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "polc: %v\n", rerr)
			os.Exit(1)
		}
		var prog *lang.Program
		prog, err = lang.ParseSource(string(data))
		if err == nil {
			compiled, err = lang.Compile(prog, lang.Options{MaxBytesLen: 512, Precompiles: true})
		}
	case *v2:
		compiled, err = core.CompilePoLV2()
	default:
		compiled, err = core.CompilePoL()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "polc: %v\n", err)
		os.Exit(1)
	}

	fmt.Print(compiled.Report)
	fmt.Println()

	if *analyze {
		fmt.Print(compiled.Analysis)
		fmt.Println()
	}
	if *showEVM {
		fmt.Println("=== EVM backend ===")
		fmt.Print(evm.Disassemble(compiled.EVMCode))
		fmt.Println()
	}
	if *showTEAL {
		fmt.Println("=== TEAL backend ===")
		fmt.Print(compiled.TEALSource)
	}
}
