package agnopol

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation chapter (plus ablations for the design choices DESIGN.md calls
// out). Latency metrics are simulated seconds reported via b.ReportMetric;
// `go test -bench=.` therefore prints the same series the paper's tables
// and figures do. cmd/polbench renders the pretty versions.

import (
	"errors"
	"fmt"
	"math/big"
	"testing"

	"agnopol/internal/baseline"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/eth"
	"agnopol/internal/evm"
	"agnopol/internal/geo"
	"agnopol/internal/hypercube"
	"agnopol/internal/lang"
	"agnopol/internal/olc"
	"agnopol/internal/sim"
)

// BenchmarkFig5_1_ConservativeAnalysis reproduces Fig. 5.1: the compiler's
// static verification and conservative resource analysis of the PoL
// contract.
func BenchmarkFig5_1_ConservativeAnalysis(b *testing.B) {
	var compiled *lang.Compiled
	for i := 0; i < b.N; i++ {
		c, err := core.CompilePoL()
		if err != nil {
			b.Fatal(err)
		}
		compiled = c
	}
	b.ReportMetric(float64(compiled.Report.Checked), "theorems")
	b.ReportMetric(float64(compiled.Report.Failures), "failures")
	b.ReportMetric(float64(compiled.Analysis.EVMDeployGas), "deploy_gas_worst")
	for _, m := range compiled.Analysis.Methods {
		if m.Name == "insert_data" {
			b.ReportMetric(float64(m.TotalEVMGas()), "attach_gas_worst")
		}
	}
}

func benchFigure(b *testing.B, chainName sim.ChainName, users int) {
	b.Helper()
	var res *sim.Result
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(chainName, users, uint64(0x5eed+i))
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.DeploySummary.Mean, "deploy_mean_s")
	b.ReportMetric(res.DeploySummary.StdDev, "deploy_std_s")
	b.ReportMetric(res.AttachSummary.Mean, "attach_mean_s")
	b.ReportMetric(res.AttachSummary.StdDev, "attach_std_s")
	b.ReportMetric(res.DeployFees.Euros()+res.AttachFees.Euros(), "total_fees_eur")
}

// BenchmarkFig5_2_Ropsten8Users reproduces Fig. 5.2 (8 transactions on the
// erratic Ropsten testnet).
func BenchmarkFig5_2_Ropsten8Users(b *testing.B) {
	benchFigure(b, sim.ChainRopsten, 8)
}

// BenchmarkFig5_3_Goerli reproduces Fig. 5.3 a–d.
func BenchmarkFig5_3_Goerli(b *testing.B) {
	for _, users := range []int{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			benchFigure(b, sim.ChainGoerli, users)
		})
	}
}

// BenchmarkFig5_4_Polygon reproduces Fig. 5.4 a–d.
func BenchmarkFig5_4_Polygon(b *testing.B) {
	for _, users := range []int{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			benchFigure(b, sim.ChainPolygon, users)
		})
	}
}

// BenchmarkFig5_5_Algorand reproduces Fig. 5.5 a–d.
func BenchmarkFig5_5_Algorand(b *testing.B) {
	for _, users := range []int{8, 16, 24, 32} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			benchFigure(b, sim.ChainAlgorand, users)
		})
	}
}

func benchTable(b *testing.B, op string, users int) {
	b.Helper()
	results := make(map[sim.ChainName]*sim.Result)
	for i := 0; i < b.N; i++ {
		for _, c := range sim.AllChains {
			r, err := sim.Run(c, users, uint64(0xab1e+i))
			if err != nil {
				b.Fatal(err)
			}
			results[c] = r
		}
	}
	t := sim.BuildTable(op, users, results)
	for _, row := range t.Rows {
		prefix := row.Testnet + "_"
		b.ReportMetric(row.Mean, prefix+"mean_s")
		b.ReportMetric(row.StdDev, prefix+"std_s")
		b.ReportMetric(row.Euro, prefix+"eur")
	}
}

// benchMatrix measures the experiment-matrix engine over the full Table
// 5.1–5.4 grid. The sequential/parallel pair gives the wall-clock
// speedup `polbench -matrix` records into BENCH_parallel.json.
func benchMatrix(b *testing.B, parallel int) {
	b.Helper()
	var res *sim.MatrixResult
	for i := 0; i < b.N; i++ {
		r, err := sim.RunMatrix(sim.MatrixSpec{Seed: uint64(0xab1e + i), Parallel: parallel}, nil)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Elapsed.Seconds(), "wall_s")
	b.ReportMetric(float64(len(res.Runs)), "cells")
}

// BenchmarkMatrix_Sequential is the single-worker baseline.
func BenchmarkMatrix_Sequential(b *testing.B) { benchMatrix(b, 1) }

// BenchmarkMatrix_Parallel fans the grid out over GOMAXPROCS workers.
func BenchmarkMatrix_Parallel(b *testing.B) { benchMatrix(b, 0) }

// BenchmarkTable5_1_Deploy16 reproduces Table 5.1.
func BenchmarkTable5_1_Deploy16(b *testing.B) { benchTable(b, "deploy", 16) }

// BenchmarkTable5_2_Deploy32 reproduces Table 5.2.
func BenchmarkTable5_2_Deploy32(b *testing.B) { benchTable(b, "deploy", 32) }

// BenchmarkTable5_3_Attach16 reproduces Table 5.3.
func BenchmarkTable5_3_Attach16(b *testing.B) { benchTable(b, "attach", 16) }

// BenchmarkTable5_4_Attach32 reproduces Table 5.4.
func BenchmarkTable5_4_Attach32(b *testing.B) { benchTable(b, "attach", 32) }

// BenchmarkAblation_GeofenceGas reproduces the Victor-et-al related-work
// numbers (§1.7.1): storing a 100-grid-cell geofence in one transaction
// costs ≈20,000 gas per cell, ≈2.1M gas total (their 2,088,102). Our EVM
// applies the Fig. 1.4 schedule including the EIP-2929 cold-slot surcharge
// the 2018 measurement predates, so the per-cell figure lands at
// 20,000 + 2,100 + loop overhead.
func BenchmarkAblation_GeofenceGas(b *testing.B) {
	code, err := buildGeofenceStore(100)
	if err != nil {
		b.Fatal(err)
	}
	var total uint64
	for i := 0; i < b.N; i++ {
		st := evm.NewMemState()
		res := evm.Execute(evm.Context{State: st, GasLimit: 5_000_000, Value: new(big.Int)}, code)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		total = res.GasUsed + evm.IntrinsicGas(nil, false)
	}
	b.ReportMetric(float64(total), "geofence100_gas")
	b.ReportMetric(float64(total-evm.GasTransaction)/100, "gas_per_cell")
}

// buildGeofenceStore emits a bytecode loop SSTOREing n grid cells.
func buildGeofenceStore(n uint64) ([]byte, error) {
	a := evm.NewAssembler()
	a.PushUint(0) // [i]
	a.Label("loop")
	a.Op(evm.DUP1).PushUint(n).Op(evm.SWAP1, evm.LT, evm.ISZERO) // i >= n ?
	a.PushLabel("end").Op(evm.JUMPI)
	a.PushUint(1).Op(evm.DUP2, evm.SSTORE) // cells[i] = 1
	a.PushUint(1).Op(evm.ADD)
	a.Jump("loop")
	a.Label("end").Op(evm.STOP)
	return a.Assemble()
}

// BenchmarkAblation_HypercubeDimension sweeps the DHT dimension r and
// reports the average lookup hops — the design-choice trade-off behind
// §2.5 (larger r: finer-grained areas, more hops).
func BenchmarkAblation_HypercubeDimension(b *testing.B) {
	for _, r := range []int{4, 6, 8, 10, 12} {
		b.Run(fmt.Sprintf("r=%d", r), func(b *testing.B) {
			var avg float64
			for i := 0; i < b.N; i++ {
				net := hypercube.MustNew(r)
				rng := chain.NewRand(uint64(7 + i))
				for q := 0; q < 500; q++ {
					via := rng.Uint64n(uint64(net.Size()))
					lat := 44 + rng.Float64()
					lng := 11 + rng.Float64()
					code := olc.MustEncode(lat, lng, olc.DefaultCodeLength)
					bs, err := olc.ToBitString(code, r)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := net.Put(via, bs.Uint64(), code, &hypercube.Entry{OLC: code}); err != nil {
						b.Fatal(err)
					}
				}
				avg = net.Stats().AvgHops
			}
			b.ReportMetric(avg, "avg_hops")
			b.ReportMetric(float64(r), "max_hops")
		})
	}
}

// BenchmarkAblation_WarmColdStorage measures the EVM warm/cold access gap
// the fee analysis depends on (Fig. 1.4's EIP-2929 rows).
func BenchmarkAblation_WarmColdStorage(b *testing.B) {
	// SLOAD same slot twice: first cold (2100), second warm (100).
	code, err := buildSloadTwice()
	if err != nil {
		b.Fatal(err)
	}
	var gas uint64
	for i := 0; i < b.N; i++ {
		st := evm.NewMemState()
		res := evm.Execute(evm.Context{State: st, GasLimit: 100000, Value: new(big.Int)}, code)
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		gas = res.GasUsed
	}
	b.ReportMetric(float64(gas), "cold_plus_warm_gas")
}

func buildSloadTwice() ([]byte, error) {
	a := evm.NewAssembler()
	a.PushUint(7).Op(evm.SLOAD, evm.POP)
	a.PushUint(7).Op(evm.SLOAD, evm.POP)
	a.Op(evm.STOP)
	return a.Assemble()
}

// BenchmarkAblation_CongestionSweep sweeps the Goerli background-demand
// level and reports the attach confirmation latency — the mechanism behind
// the unstable Figs. 5.2–5.3.
func BenchmarkAblation_CongestionSweep(b *testing.B) {
	// Towards ~40M mean demand the outbid share approaches the block gas
	// limit and low-tip transactions start to drown entirely — the
	// saturation of the May-2022 episode in §1.4.1.3. Timed-out
	// transactions are reported as a saturation count, not a failure:
	// they ARE the phenomenon.
	for _, mean := range []float64{8e6, 24e6, 32e6, 40e6} {
		b.Run(fmt.Sprintf("demand=%.0fM", mean/1e6), func(b *testing.B) {
			var lat float64
			var saturated int
			for i := 0; i < b.N; i++ {
				cfg := eth.Goerli()
				cfg.CongestionMeanGas = mean
				// Fix demand (no fee-elasticity equilibration): the sweep
				// isolates the inclusion mechanism.
				cfg.CongestionElasticity = 0
				cfg.APIExtraDelayMean = 0
				cfg.APIExtraDelayJitter = 0
				c := eth.NewChain(cfg, uint64(3+i))
				cl := eth.NewClient(c)
				acct := c.NewAccount(big.NewInt(1e18))
				var sum float64
				confirmed := 0
				const n = 20
				saturated = 0
				for t := 0; t < n; t++ {
					to := chain.AddressFromBytes([]byte{byte(t)})
					tx := cl.NewTx(acct, &to, big.NewInt(1), nil, 21000)
					rcpt, err := cl.SubmitAndWait(tx)
					if errors.Is(err, eth.ErrTimeout) || errors.Is(err, eth.ErrInsufficientEth) {
						// Past saturation the base fee diverges (inelastic
						// demand above capacity is EIP-1559's runaway
						// regime): transactions either never confirm or
						// cost more than a whole ETH. Either way the rest
						// of the run is unusable.
						saturated += n - t
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					sum += rcpt.Latency().Seconds()
					confirmed++
				}
				if confirmed > 0 {
					lat = sum / float64(confirmed)
				}
			}
			b.ReportMetric(lat, "tx_latency_s")
			b.ReportMetric(float64(saturated), "timed_out_txs")
		})
	}
}

// BenchmarkAblation_CentralizedVsDecentralized contrasts APPLAUS-style
// verification throughput (with its single point of failure) against the
// thesis pipeline's verification — the architectural trade-off of §1.7.
func BenchmarkAblation_CentralizedVsDecentralized(b *testing.B) {
	b.Run("applaus-centralized", func(b *testing.B) {
		rng := chain.NewRand(5)
		ca := baseline.NewCentralAuthority()
		server := baseline.NewAPPLAUSServer()
		at := geo.LatLng{Lat: 44.49, Lng: 11.34}
		prover, err := baseline.NewAPPLAUSUser("alice", at, 3, rng)
		if err != nil {
			b.Fatal(err)
		}
		witness, err := baseline.NewAPPLAUSUser("bob", geo.Offset(at, 2, 2), 3, rng)
		if err != nil {
			b.Fatal(err)
		}
		ca.RegisterUser(prover)
		ca.RegisterUser(witness)
		proof, err := baseline.GenerateProof(prover, witness, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := server.Upload(proof); err != nil {
			b.Fatal(err)
		}
		v := &baseline.APPLAUSVerifier{CA: ca, Server: server}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := v.VerifyVisit("alice", at, 50)
			if err != nil || !ok {
				b.Fatalf("verify: ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("agnopol-decentralized", func(b *testing.B) {
		var mean float64
		for i := 0; i < b.N; i++ {
			r, err := sim.Run(sim.ChainAlgorand, 8, uint64(77+i))
			if err != nil {
				b.Fatal(err)
			}
			mean = r.AttachSummary.Mean
		}
		b.ReportMetric(mean, "attach_latency_s")
	})
}

// BenchmarkAblation_QuorumSize sweeps the multi-witness quorum (the
// collusion-mitigation extension) and reports bundle size and verification
// cost: the security/overhead trade-off a deployment would tune.
func BenchmarkAblation_QuorumSize(b *testing.B) {
	for _, q := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("q=%d", q), func(b *testing.B) {
			var bundleBytes int
			for i := 0; i < b.N; i++ {
				sys, err := core.NewSystem(uint64(50 + i))
				if err != nil {
					b.Fatal(err)
				}
				conn := core.NewEVMConnector(eth.NewChain(eth.PolygonMumbai(), uint64(50+i)))
				spot := geo.LatLng{Lat: 44.4949, Lng: 11.3426}
				prover, err := core.NewProver(sys, spot)
				if err != nil {
					b.Fatal(err)
				}
				acct, err := prover.EnsureAccount(conn, 10)
				if err != nil {
					b.Fatal(err)
				}
				verifier, err := core.NewVerifier(sys)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := verifier.EnsureAccount(conn, 10); err != nil {
					b.Fatal(err)
				}
				var witnesses []*core.Witness
				for w := 0; w < q; w++ {
					wit, err := core.NewWitness(sys, geo.Offset(spot, float64(w), 0))
					if err != nil {
						b.Fatal(err)
					}
					witnesses = append(witnesses, wit)
				}
				cid, err := prover.UploadReport(core.Report{Title: "q", Category: "env"})
				if err != nil {
					b.Fatal(err)
				}
				bundle, err := prover.RequestProofQuorum(witnesses, cid, acct.Address())
				if err != nil {
					b.Fatal(err)
				}
				sub, err := prover.SubmitProofQuorum(conn, bundle, 1000)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := verifier.FundContract(conn, sub.Handle, 1000); err != nil {
					b.Fatal(err)
				}
				ver, err := verifier.VerifyProverQuorum(conn, sub.Handle, prover.DID, q)
				if err != nil || !ver.Accepted {
					b.Fatalf("quorum verify failed: %v %+v", err, ver)
				}
				bundleBytes = len(bundle.Proofs)
			}
			b.ReportMetric(float64(bundleBytes), "proofs_per_bundle")
		})
	}
}

// BenchmarkAblation_UserScaling sweeps beyond the paper's 32 users on
// Algorand (the chain whose stability makes the sweep meaningful) to show
// per-user latency stays flat — the scalability argument of §2.4.
func BenchmarkAblation_UserScaling(b *testing.B) {
	for _, users := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("users=%d", users), func(b *testing.B) {
			var attach float64
			for i := 0; i < b.N; i++ {
				r, err := sim.Run(sim.ChainAlgorand, users, uint64(60+i))
				if err != nil {
					b.Fatal(err)
				}
				attach = r.AttachSummary.Mean
			}
			b.ReportMetric(attach, "attach_mean_s")
		})
	}
}

// BenchmarkAblation_VerifyOperation measures the verification phase the
// paper excluded from its tables, supporting its justification ("the verify
// operation is similar to the attachment", §5.1) with numbers.
func BenchmarkAblation_VerifyOperation(b *testing.B) {
	for _, c := range []sim.ChainName{sim.ChainGoerli, sim.ChainPolygon, sim.ChainAlgorand} {
		b.Run(string(c), func(b *testing.B) {
			var r *sim.VerifyResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = sim.RunWithVerify(c, 8, uint64(70+i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.VerifySummary.Mean, "verify_mean_s")
			b.ReportMetric(r.AttachSummary.Mean, "attach_mean_s")
			b.ReportMetric(r.VerifyFees.Euros(), "verify_fees_eur")
		})
	}
}

// BenchmarkCompile measures end-to-end compilation (check + verify + both
// backends + analysis).
func BenchmarkCompile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.CompilePoL(); err != nil {
			b.Fatal(err)
		}
	}
}
