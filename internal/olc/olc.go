// Package olc implements Google's Open Location Code ("plus codes") —
// encode, decode and validation — together with the paper's dual encoding
// that maps an OLC to the r-bit identifier of the hypercube node responsible
// for that area (Fig. 1.3 of the thesis; Zichichi et al., IET Networks 2022).
package olc

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Alphabet is the 20-character OLC digit set. It deliberately omits vowels
// and easily-confused characters.
const Alphabet = "23456789CFGHJMPQRVWX"

const (
	// Separator splits the code after the 8th digit.
	Separator = '+'
	// SeparatorPosition is the number of digits before the separator in a
	// full code.
	SeparatorPosition = 8
	// Padding fills shortened codes up to the separator.
	Padding = '0'
	// PairCodeLength is the number of digits encoded as lat/lng pairs.
	PairCodeLength = 10
	// MaxDigitCount is the longest supported code.
	MaxDigitCount = 15
	// DefaultCodeLength is the 10-digit default the paper uses (≈14 m area).
	DefaultCodeLength = 10

	encodingBase = 20
	gridColumns  = 4
	gridRows     = 5
	latMax       = 90
	lngMax       = 180

	// Integer precision of the final (15th) digit, per the reference
	// implementation: pairs give 1/8000 degree, grid refinement divides
	// latitude by 5^5 and longitude by 4^5 on top of that.
	finalLatPrecision = 8000 * 3125 // 25_000_000 per degree
	finalLngPrecision = 8000 * 1024 // 8_192_000 per degree
	gridCodeLength    = MaxDigitCount - PairCodeLength
)

var digitValue = func() map[byte]int {
	m := make(map[byte]int, len(Alphabet))
	for i := 0; i < len(Alphabet); i++ {
		m[Alphabet[i]] = i
	}
	return m
}()

// CodeArea is the rectangle a decoded code designates.
type CodeArea struct {
	LatLo, LngLo, LatHi, LngHi float64
	CodeLength                 int
}

// Center returns the midpoint of the area, the canonical coordinate for a
// code.
func (a CodeArea) Center() (lat, lng float64) {
	return math.Min((a.LatLo+a.LatHi)/2, latMax),
		math.Min((a.LngLo+a.LngHi)/2, lngMax)
}

// Contains reports whether the coordinate lies inside the area.
func (a CodeArea) Contains(lat, lng float64) bool {
	return lat >= a.LatLo && lat < a.LatHi && lng >= a.LngLo && lng < a.LngHi
}

var (
	// ErrInvalidCode reports a malformed code string.
	ErrInvalidCode = errors.New("olc: invalid code")
	// ErrNotFull reports a short (padded or separator-less) code where a
	// full code was required.
	ErrNotFull = errors.New("olc: not a full code")
	// ErrBadLength reports an unsupported requested code length.
	ErrBadLength = errors.New("olc: invalid code length")
)

// Encode converts a coordinate to an Open Location Code of codeLen digits.
// codeLen must be at least 2, even if below the pair length 10, and at most
// 15. Latitude is clipped to [-90,90]; longitude is normalized to
// [-180,180).
func Encode(lat, lng float64, codeLen int) (string, error) {
	if codeLen < 2 || (codeLen < PairCodeLength && codeLen%2 == 1) || codeLen > MaxDigitCount {
		return "", fmt.Errorf("%w: %d", ErrBadLength, codeLen)
	}
	lat = clipLatitude(lat)
	lng = normalizeLongitude(lng)
	// The area of a code excludes its upper latitude bound; nudge the pole
	// down so 90°N encodes to a valid area.
	if lat == latMax {
		lat -= precisionByLength(codeLen)
	}

	// Work in integer units of the finest supported precision to avoid
	// floating-point drift, mirroring the reference implementation.
	latVal := int64(math.Round((lat + latMax) * finalLatPrecision))
	lngVal := int64(math.Round((lng + lngMax) * finalLngPrecision))
	if latVal < 0 {
		latVal = 0
	}
	if maxLat := int64(2*latMax*finalLatPrecision) - 1; latVal > maxLat {
		latVal = maxLat
	}

	var buf [MaxDigitCount]byte
	if codeLen > PairCodeLength {
		for i := 0; i < gridCodeLength; i++ {
			latDigit := latVal % gridRows
			lngDigit := lngVal % gridColumns
			buf[MaxDigitCount-1-i] = Alphabet[latDigit*gridColumns+lngDigit]
			latVal /= gridRows
			lngVal /= gridColumns
		}
	} else {
		latVal /= 3125 // 5^gridCodeLength
		lngVal /= 1024 // 4^gridCodeLength
	}
	for i := 0; i < PairCodeLength/2; i++ {
		buf[PairCodeLength-1-2*i] = Alphabet[lngVal%encodingBase]
		buf[PairCodeLength-2-2*i] = Alphabet[latVal%encodingBase]
		latVal /= encodingBase
		lngVal /= encodingBase
	}

	var sb strings.Builder
	if codeLen < SeparatorPosition {
		sb.Write(buf[:codeLen])
		for i := codeLen; i < SeparatorPosition; i++ {
			sb.WriteByte(Padding)
		}
		sb.WriteByte(Separator)
		return sb.String(), nil
	}
	sb.Write(buf[:SeparatorPosition])
	sb.WriteByte(Separator)
	sb.Write(buf[SeparatorPosition:codeLen])
	return sb.String(), nil
}

// MustEncode is Encode that panics on invalid input; for literals in tests
// and simulations.
func MustEncode(lat, lng float64, codeLen int) string {
	code, err := Encode(lat, lng, codeLen)
	if err != nil {
		panic(err)
	}
	return code
}

// Decode converts a full code back to the area it designates.
func Decode(code string) (CodeArea, error) {
	if err := CheckFull(code); err != nil {
		return CodeArea{}, err
	}
	digits := stripped(code)
	if len(digits) > MaxDigitCount {
		digits = digits[:MaxDigitCount]
	}

	// Accumulate digits in integer units of the finest precision, keeping
	// latitude and longitude in their distinct denominators
	// (finalLatPrecision vs finalLngPrecision).
	latUnits := int64(-latMax * finalLatPrecision)
	lngUnits := int64(-lngMax * finalLngPrecision)

	pairDigits := len(digits)
	if pairDigits > PairCodeLength {
		pairDigits = PairCodeLength
	}
	latStep := int64(finalLatPrecision) * encodingBase * encodingBase // first pair digit = 20°
	lngStep := int64(finalLngPrecision) * encodingBase * encodingBase
	for i := 0; i < pairDigits; i += 2 {
		latStep /= encodingBase
		lngStep /= encodingBase
		latUnits += int64(digitValue[digits[i]]) * latStep
		lngUnits += int64(digitValue[digits[i+1]]) * lngStep
	}
	if len(digits) > PairCodeLength {
		// After 10 pair digits the cell is 3125×1024 final-precision units;
		// each grid digit refines it by a 5×4 subdivision.
		latStep = 3125
		lngStep = 1024
		for i := PairCodeLength; i < len(digits); i++ {
			latStep /= gridRows
			lngStep /= gridColumns
			d := digitValue[digits[i]]
			latUnits += int64(d/gridColumns) * latStep
			lngUnits += int64(d%gridColumns) * lngStep
		}
	}

	latLo := float64(latUnits) / finalLatPrecision
	lngLo := float64(lngUnits) / finalLngPrecision
	latHi := float64(latUnits+latStep) / finalLatPrecision
	lngHi := float64(lngUnits+lngStep) / finalLngPrecision
	return CodeArea{
		LatLo: latLo, LngLo: lngLo, LatHi: latHi, LngHi: lngHi,
		CodeLength: len(digits),
	}, nil
}

// Check validates the syntax of a full or short code.
func Check(code string) error {
	if code == "" {
		return fmt.Errorf("%w: empty", ErrInvalidCode)
	}
	sep := strings.IndexByte(code, Separator)
	if sep == -1 {
		return fmt.Errorf("%w: missing separator", ErrInvalidCode)
	}
	if sep != strings.LastIndexByte(code, Separator) {
		return fmt.Errorf("%w: multiple separators", ErrInvalidCode)
	}
	if sep > SeparatorPosition || sep%2 == 1 {
		return fmt.Errorf("%w: separator at position %d", ErrInvalidCode, sep)
	}
	if len(code) == sep+2 {
		return fmt.Errorf("%w: single digit after separator", ErrInvalidCode)
	}
	padStart := strings.IndexByte(code, Padding)
	if padStart != -1 {
		if sep < SeparatorPosition {
			return fmt.Errorf("%w: short code with padding", ErrInvalidCode)
		}
		if padStart == 0 {
			return fmt.Errorf("%w: padded from start", ErrInvalidCode)
		}
		pads := code[padStart:sep]
		if strings.Count(pads, string(Padding)) != len(pads) || len(pads)%2 == 1 {
			return fmt.Errorf("%w: malformed padding", ErrInvalidCode)
		}
		if sep != len(code)-1 {
			return fmt.Errorf("%w: digits after padded separator", ErrInvalidCode)
		}
	}
	digits := 0
	for i := 0; i < len(code); i++ {
		c := upperByte(code[i])
		if c == Separator || c == Padding {
			continue
		}
		if _, ok := digitValue[c]; !ok {
			return fmt.Errorf("%w: character %q", ErrInvalidCode, code[i])
		}
		digits++
	}
	if digits == 0 {
		return fmt.Errorf("%w: no digits", ErrInvalidCode)
	}
	return nil
}

// CheckFull validates that code is a full (non-short) code with in-range
// first digits.
func CheckFull(code string) error {
	if err := Check(code); err != nil {
		return err
	}
	if strings.IndexByte(code, Separator) != SeparatorPosition {
		return ErrNotFull
	}
	if digitValue[upperByte(code[0])] >= latMax*2/encodingBase {
		return fmt.Errorf("%w: latitude out of range", ErrInvalidCode)
	}
	if len(code) > 1 && digitValue[upperByte(code[1])] >= lngMax*2/encodingBase {
		return fmt.Errorf("%w: longitude out of range", ErrInvalidCode)
	}
	return nil
}

// IsValid reports whether the code passes syntax checks.
func IsValid(code string) bool { return Check(code) == nil }

// IsFull reports whether the code is a valid full code.
func IsFull(code string) bool { return CheckFull(code) == nil }

// stripped returns the upper-cased digits of the code without separator and
// padding.
func stripped(code string) string {
	var sb strings.Builder
	for i := 0; i < len(code); i++ {
		c := upperByte(code[i])
		if c == Separator || c == Padding {
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

func upperByte(c byte) byte {
	if c >= 'a' && c <= 'z' {
		return c - 'a' + 'A'
	}
	return c
}

func clipLatitude(lat float64) float64 {
	return math.Min(latMax, math.Max(-latMax, lat))
}

func normalizeLongitude(lng float64) float64 {
	for lng < -lngMax {
		lng += 2 * lngMax
	}
	for lng >= lngMax {
		lng -= 2 * lngMax
	}
	return lng
}

// precisionByLength returns the latitude height in degrees of a code of the
// given digit count.
func precisionByLength(codeLen int) float64 {
	if codeLen <= PairCodeLength {
		return math.Pow(encodingBase, math.Floor(float64(codeLen)/-2+2))
	}
	return math.Pow(encodingBase, -3) / math.Pow(gridRows, float64(codeLen-PairCodeLength))
}
