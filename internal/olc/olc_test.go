package olc

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// Reference vectors from the Open Location Code repository's test data.
func TestEncodeKnownVectors(t *testing.T) {
	cases := []struct {
		lat, lng float64
		length   int
		want     string
	}{
		{20.375, 2.775, 6, "7FG49Q00+"},
		{20.3700625, 2.7821875, 10, "7FG49QCJ+2V"},
		{20.3701125, 2.782234375, 11, "7FG49QCJ+2VX"},
		{47.0000625, 8.0000625, 10, "8FVC2222+22"},
		{-41.2730625, 174.7859375, 10, "4VCPPQGP+Q9"},
		{0.5, -179.5, 4, "62G20000+"},
		{-89.5, -179.5, 4, "22220000+"},
		{20.5, 2.5, 4, "7FG40000+"},
		{-89.9999375, -179.9999375, 10, "22222222+22"},
		{0.5, 179.5, 4, "6VGX0000+"},
		{1, 1, 11, "6FH32222+222"},
		// Latitude clipping at the poles.
		{90, 1, 4, "CFX30000+"},
		{92, 1, 4, "CFX30000+"},
		// Longitude normalization.
		{1, 180, 4, "62H20000+"},
		{1, 181, 4, "62H30000+"},
	}
	for _, c := range cases {
		got, err := Encode(c.lat, c.lng, c.length)
		if err != nil {
			t.Errorf("Encode(%v,%v,%d): %v", c.lat, c.lng, c.length, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v,%v,%d) = %q, want %q", c.lat, c.lng, c.length, got, c.want)
		}
	}
}

func TestDecodeContainsOriginal(t *testing.T) {
	err := quick.Check(func(latRaw, lngRaw float64) bool {
		lat := math.Mod(math.Abs(latRaw), 180) - 90
		lng := math.Mod(math.Abs(lngRaw), 360) - 180
		if math.IsNaN(lat) || math.IsNaN(lng) || lat >= 89.999 {
			return true
		}
		code, err := Encode(lat, lng, DefaultCodeLength)
		if err != nil {
			return false
		}
		area, err := Decode(code)
		if err != nil {
			return false
		}
		return area.Contains(lat, lng)
	}, &quick.Config{MaxCount: 400})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTripCenter(t *testing.T) {
	// Encoding the center of a decoded area must reproduce the code.
	err := quick.Check(func(latRaw, lngRaw float64) bool {
		lat := math.Mod(math.Abs(latRaw), 170) - 85
		lng := math.Mod(math.Abs(lngRaw), 360) - 180
		if math.IsNaN(lat) || math.IsNaN(lng) {
			return true
		}
		code := MustEncode(lat, lng, DefaultCodeLength)
		area, err := Decode(code)
		if err != nil {
			return false
		}
		cLat, cLng := area.Center()
		return MustEncode(cLat, cLng, DefaultCodeLength) == code
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDecodeCellSize(t *testing.T) {
	// A 10-digit code designates a ~14 m × 14 m cell (§2.6).
	area, err := Decode("8FPHF8VV+X2")
	if err != nil {
		t.Fatal(err)
	}
	latMeters := (area.LatHi - area.LatLo) * 111_320
	if latMeters < 12 || latMeters > 16 {
		t.Fatalf("10-digit cell height %.1f m, want ≈13.9", latMeters)
	}
}

func TestValidation(t *testing.T) {
	valid := []string{
		"8FWC2345+G6", "8FWC2345+G6G", "8fwc2345+", "8FWCX400+", "8FWC0000+",
		// Valid *short* codes (full=false but syntactically fine).
		"WC2345+G6G", "2345+G6",
	}
	for _, c := range valid {
		if !IsValid(c) {
			t.Errorf("IsValid(%q) = false, want true", c)
		}
	}
	invalid := []string{
		"", "8FWC2345+G", "8FWC2_45+G6", "8FWC2η45+G6", "8FWC2345+G6+",
		"8FWC2300+G6", "2300+", "+", "0000+",
	}
	for _, c := range invalid {
		if IsValid(c) {
			t.Errorf("IsValid(%q) = true, want false", c)
		}
	}
}

func TestIsFull(t *testing.T) {
	if !IsFull("8FWC2345+G6") {
		t.Error("full code rejected")
	}
	for _, c := range []string{"2345+G6", "WC2345+G6", "X2GG8FWC+"} {
		if IsFull(c) {
			t.Errorf("IsFull(%q) = true, want false", c)
		}
	}
}

func TestEncodeRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, 1, 3, 5, 7, 9, 16} {
		if _, err := Encode(1, 1, n); err == nil {
			t.Errorf("Encode length %d accepted", n)
		}
	}
	for _, n := range []int{2, 4, 6, 8, 10, 11, 15} {
		if _, err := Encode(1, 1, n); err != nil {
			t.Errorf("Encode length %d rejected: %v", n, err)
		}
	}
}

func TestAlphabetExcludesConfusables(t *testing.T) {
	for _, c := range "AILO01" {
		if strings.ContainsRune(Alphabet, c) {
			t.Errorf("alphabet contains confusable %q", c)
		}
	}
	if len(Alphabet) != 20 {
		t.Fatalf("alphabet size %d, want 20", len(Alphabet))
	}
}

func TestGridRefinementMonotonicPrecision(t *testing.T) {
	// Longer codes designate strictly smaller areas containing the point.
	lat, lng := 47.365590, 8.524997
	prev := math.Inf(1)
	for _, n := range []int{10, 11, 12, 13, 14, 15} {
		code := MustEncode(lat, lng, n)
		area, err := Decode(code)
		if err != nil {
			t.Fatalf("Decode(%q): %v", code, err)
		}
		size := (area.LatHi - area.LatLo) * (area.LngHi - area.LngLo)
		if size >= prev {
			t.Fatalf("length %d area %.3g not smaller than previous %.3g", n, size, prev)
		}
		if !area.Contains(lat, lng) {
			t.Fatalf("length-%d area does not contain the point", n)
		}
		prev = size
	}
}
