package olc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentsThesisExample(t *testing.T) {
	// Fig. 1.3: "6PH57VP3+PR" splits into zero-padded pairs.
	segs, err := Segments("6PH57VP3+PR")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"6P00000000", "00H5000000", "00007V0000", "000000P300", "00000000PR",
	}
	if len(segs) != len(want) {
		t.Fatalf("got %d segments, want %d", len(segs), len(want))
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Errorf("segment %d = %q, want %q", i, segs[i], want[i])
		}
	}
}

func TestToBitStringDeterministicAndBounded(t *testing.T) {
	bs1, err := ToBitString("6PH57VP3+PR", 6)
	if err != nil {
		t.Fatal(err)
	}
	bs2, err := ToBitString("6PH57VP3+PR", 6)
	if err != nil {
		t.Fatal(err)
	}
	if bs1.String() != bs2.String() {
		t.Fatal("dual encoding not deterministic")
	}
	if len(bs1.Bits) != 6 {
		t.Fatalf("bit string length %d, want 6", len(bs1.Bits))
	}
	if bs1.Uint64() >= 64 {
		t.Fatalf("node ID %d out of range for r=6", bs1.Uint64())
	}
}

func TestToBitStringRange(t *testing.T) {
	err := quick.Check(func(latRaw, lngRaw float64, rRaw uint8) bool {
		lat := math.Mod(math.Abs(latRaw), 170) - 85
		lng := math.Mod(math.Abs(lngRaw), 360) - 180
		if math.IsNaN(lat) || math.IsNaN(lng) {
			return true
		}
		r := int(rRaw)%16 + 1
		id, err := NodeID(lat, lng, r)
		if err != nil {
			return false
		}
		return id < uint64(1)<<uint(r)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestToBitStringRejectsBadInput(t *testing.T) {
	if _, err := ToBitString("8FPHF8VV+X2", 0); err == nil {
		t.Fatal("r=0 accepted")
	}
	if _, err := ToBitString("8FPHF8VV+X2", 65); err == nil {
		t.Fatal("r=65 accepted")
	}
	if _, err := ToBitString("not-a-code", 6); err == nil {
		t.Fatal("invalid code accepted")
	}
	if _, err := ToBitString("2345+G6", 6); err == nil {
		t.Fatal("short code accepted")
	}
}

func TestBitStringUint64MSBFirst(t *testing.T) {
	bs := BitString{Bits: []bool{true, false, true, false}}
	// The thesis convention: "1010" is node 10.
	if got := bs.Uint64(); got != 10 {
		t.Fatalf("1010 -> %d, want 10", got)
	}
	if bs.String() != "1010" {
		t.Fatalf("String() = %q, want 1010", bs.String())
	}
}

func TestNearbyCodesSpreadAcrossNodes(t *testing.T) {
	// The dual encoding should not collapse a whole neighbourhood onto a
	// single node: over a 20×20 cell grid expect several distinct IDs.
	seen := make(map[uint64]bool)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			lat := 44.49 + float64(i)*0.000125
			lng := 11.34 + float64(j)*0.000125
			id, err := NodeID(lat, lng, 6)
			if err != nil {
				t.Fatal(err)
			}
			seen[id] = true
		}
	}
	if len(seen) < 4 {
		t.Fatalf("400 nearby cells mapped to only %d node(s)", len(seen))
	}
}
