package olc

import (
	"fmt"
	"strings"

	"agnopol/internal/polcrypto"
)

// BitString is the result of the paper's dual encoding: the r-bit identifier
// of the hypercube node responsible for an Open Location Code.
type BitString struct {
	Bits []bool
}

// Uint64 packs the bit string into an integer node ID, most significant bit
// first, matching the thesis convention where 1010 → node 10.
func (b BitString) Uint64() uint64 {
	var v uint64
	for _, bit := range b.Bits {
		v <<= 1
		if bit {
			v |= 1
		}
	}
	return v
}

// String renders the bits as a binary string, e.g. "110100".
func (b BitString) String() string {
	var sb strings.Builder
	for _, bit := range b.Bits {
		if bit {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Segments splits a full code into the zero-padded pieces the dual encoding
// hashes (Fig. 1.3): for "6PH57VP3+PR" it returns
// ["6P00000000" "00H5000000" "00007V0000" "000000P300" "00000000PR"].
// Per the OLC guidelines, zeros act as padding symbols and each segment keeps
// its pair at the pair's original offset.
func Segments(code string) ([]string, error) {
	if err := CheckFull(code); err != nil {
		return nil, err
	}
	digits := stripped(code)
	if len(digits) > PairCodeLength {
		digits = digits[:PairCodeLength]
	}
	segs := make([]string, 0, len(digits)/2)
	for i := 0; i+1 < len(digits); i += 2 {
		seg := strings.Repeat("0", i) + digits[i:i+2] + strings.Repeat("0", PairCodeLength-i-2)
		segs = append(segs, seg)
	}
	return segs, nil
}

// ToBitString applies the dual encoding from the thesis: split the code into
// padded segments, hash each, take the hash modulo r to pick a bit to "turn
// on", and XOR the per-segment bit strings together. The result identifies
// the hypercube node responsible for the area.
func ToBitString(code string, r int) (BitString, error) {
	if r <= 0 || r > 64 {
		return BitString{}, fmt.Errorf("olc: dimension r=%d out of range (1..64)", r)
	}
	segs, err := Segments(code)
	if err != nil {
		return BitString{}, err
	}
	bits := make([]bool, r)
	for _, seg := range segs {
		h := polcrypto.Hash([]byte(seg))
		// Interpret the first 8 bytes as a big-endian integer; modulo r
		// selects which bit this segment turns on (counted from the left).
		var v uint64
		for i := 0; i < 8; i++ {
			v = v<<8 | uint64(h[i])
		}
		idx := int(v % uint64(r))
		bits[idx] = !bits[idx] // XOR accumulate
	}
	return BitString{Bits: bits}, nil
}

// NodeID is a convenience wrapper returning the integer hypercube node ID
// for a coordinate at the default code length.
func NodeID(lat, lng float64, r int) (uint64, error) {
	code, err := Encode(lat, lng, DefaultCodeLength)
	if err != nil {
		return 0, err
	}
	bs, err := ToBitString(code, r)
	if err != nil {
		return 0, err
	}
	return bs.Uint64(), nil
}
