package polcrypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

// detRand is a deterministic entropy source for reproducible keys.
type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

func TestSignVerifyRoundTrip(t *testing.T) {
	kp := MustGenerateKeyPair(&detRand{state: 1})
	msg := []byte("proof-of-location")
	sig := kp.Sign(msg)
	if !Verify(kp.Public, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(kp.Public, []byte("tampered"), sig) {
		t.Fatal("signature verified for different message")
	}
	other := MustGenerateKeyPair(&detRand{state: 2})
	if Verify(other.Public, msg, sig) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestVerifyRejectsMalformedKey(t *testing.T) {
	kp := MustGenerateKeyPair(&detRand{state: 3})
	sig := kp.Sign([]byte("m"))
	if Verify(kp.Public[:16], []byte("m"), sig) {
		t.Fatal("short public key accepted")
	}
	if Verify(nil, []byte("m"), sig) {
		t.Fatal("nil public key accepted")
	}
}

func TestDeterministicKeyGeneration(t *testing.T) {
	a := MustGenerateKeyPair(&detRand{state: 42})
	b := MustGenerateKeyPair(&detRand{state: 42})
	if !bytes.Equal(a.Public, b.Public) {
		t.Fatal("same entropy produced different keys")
	}
}

func TestHashMatchesConcatenation(t *testing.T) {
	// Hash over parts must equal hash over the concatenation: callers
	// rely on it when rebuilding proof hashes from parsed fields.
	err := quick.Check(func(a, b, c []byte) bool {
		joined := append(append(append([]byte{}, a...), b...), c...)
		return Hash(a, b, c) == Hash(joined)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHashHexLength(t *testing.T) {
	if got := len(HashHex([]byte("x"))); got != 64 {
		t.Fatalf("hex hash length %d, want 64", got)
	}
}

func TestSignaturesAreDeterministic(t *testing.T) {
	// ed25519 signatures are deterministic — the property the VRF
	// construction depends on.
	kp := MustGenerateKeyPair(&detRand{state: 5})
	if !bytes.Equal(kp.Sign([]byte("m")), kp.Sign([]byte("m"))) {
		t.Fatal("signing the same message twice gave different signatures")
	}
}
