package polcrypto

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVRFVerifyRoundTrip(t *testing.T) {
	kp := MustGenerateKeyPair(&detRand{state: 11})
	seed := []byte("round-42")
	out, proof := VRFEvaluate(kp, seed)
	if !VRFVerify(kp.Public, seed, out, proof) {
		t.Fatal("honest VRF evaluation rejected")
	}
	if VRFVerify(kp.Public, []byte("round-43"), out, proof) {
		t.Fatal("VRF verified under wrong seed")
	}
	other := MustGenerateKeyPair(&detRand{state: 12})
	if VRFVerify(other.Public, seed, out, proof) {
		t.Fatal("VRF verified under wrong key")
	}
	// Forged output with a valid proof must fail (uniqueness).
	var forged VRFOutput
	copy(forged[:], out[:])
	forged[0] ^= 1
	if VRFVerify(kp.Public, seed, forged, proof) {
		t.Fatal("forged output accepted")
	}
}

func TestVRFUniqueness(t *testing.T) {
	kp := MustGenerateKeyPair(&detRand{state: 13})
	a, _ := VRFEvaluate(kp, []byte("s"))
	b, _ := VRFEvaluate(kp, []byte("s"))
	if a != b {
		t.Fatal("VRF output not unique per (key, seed)")
	}
}

func TestVRFFractionInUnitInterval(t *testing.T) {
	err := quick.Check(func(seed []byte) bool {
		kp := MustGenerateKeyPair(&detRand{state: 99})
		out, _ := VRFEvaluate(kp, seed)
		f := out.Fraction()
		return f >= 0 && f < 1
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSortitionZeroCases(t *testing.T) {
	var out VRFOutput
	if Sortition(out, 0, 100, 10) != 0 {
		t.Fatal("zero stake selected")
	}
	if Sortition(out, 10, 0, 10) != 0 {
		t.Fatal("zero total stake selected")
	}
	if Sortition(out, 10, 100, 0) != 0 {
		t.Fatal("zero expected size selected")
	}
}

func TestSortitionNeverExceedsStake(t *testing.T) {
	err := quick.Check(func(seedByte uint8, stake16 uint16) bool {
		stake := uint64(stake16)%1000 + 1
		kp := MustGenerateKeyPair(&detRand{state: uint64(seedByte) + 1})
		out, _ := VRFEvaluate(kp, []byte{seedByte})
		j := Sortition(out, stake, 10000, 50)
		return j <= stake
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestSortitionExpectation draws many evaluations and checks the mean
// selected weight approaches expectedSize·stake/totalStake.
func TestSortitionExpectation(t *testing.T) {
	kp := MustGenerateKeyPair(&detRand{state: 21})
	const (
		stake      = 100
		totalStake = 1000
		expected   = 50.0
		rounds     = 4000
	)
	sum := 0.0
	for i := 0; i < rounds; i++ {
		out, _ := VRFEvaluate(kp, []byte{byte(i), byte(i >> 8)})
		sum += float64(Sortition(out, stake, totalStake, expected))
	}
	mean := sum / rounds
	want := expected * stake / totalStake // 5
	if math.Abs(mean-want) > 0.35 {
		t.Fatalf("sortition mean %.3f, want ≈%.1f", mean, want)
	}
}

// TestSortitionProportionalToStake checks that doubling stake roughly
// doubles expected selections — the weighting PPoS relies on.
func TestSortitionProportionalToStake(t *testing.T) {
	kp := MustGenerateKeyPair(&detRand{state: 22})
	count := func(stake uint64) float64 {
		sum := 0.0
		for i := 0; i < 3000; i++ {
			out, _ := VRFEvaluate(kp, []byte{byte(i), byte(i >> 8), byte(stake)})
			sum += float64(Sortition(out, stake, 10000, 100))
		}
		return sum
	}
	small, large := count(100), count(200)
	ratio := large / small
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("stake 200 selected %.1f× stake 100, want ≈2×", ratio)
	}
}
