// Package polcrypto provides the cryptographic primitives used across the
// proof-of-location stack: ed25519 key pairs, hashing, verifiable random
// functions for Algorand-style sortition, and the binomial sortition
// procedure itself.
//
// Everything is built on the Go standard library. The VRF is a hash-based
// construction (unique signatures over ed25519) that preserves the two
// properties the consensus simulator relies on: the output is unpredictable
// without the private key, and anyone holding the public key can verify the
// (output, proof) pair.
package polcrypto

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"sync"
)

// KeyPair bundles an ed25519 signing key with its public half. It is the
// identity primitive for every actor in the system: provers, witnesses,
// verifiers, chain accounts and consensus participants.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh key pair reading entropy from rand. Pass a
// deterministic reader (for example chain.NewRand) to make tests and
// simulations reproducible.
func GenerateKeyPair(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("generate ed25519 key: %w", err)
	}
	return &KeyPair{Public: pub, private: priv}, nil
}

// MustGenerateKeyPair is GenerateKeyPair for contexts (tests, simulations
// seeded with deterministic readers) where entropy failure is impossible.
func MustGenerateKeyPair(rand io.Reader) *KeyPair {
	kp, err := GenerateKeyPair(rand)
	if err != nil {
		panic(err)
	}
	return kp
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// PublicHex returns the public key as lower-case hex, used as a pseudonym in
// witness lists and DID documents.
func (k *KeyPair) PublicHex() string {
	return hex.EncodeToString(k.Public)
}

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) bool {
	if len(pub) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(pub, msg, sig)
}

// pooledHasher carries the sum buffer alongside the SHA-256 state: Sum
// writes through a hash.Hash interface call, so a stack-local destination
// would be forced to the heap on every Hash — folding it into the pooled
// object keeps the multi-part path allocation-free.
type pooledHasher struct {
	h   hash.Hash
	sum [32]byte
}

// hasherPool recycles SHA-256 state for multi-part hashes so the VM hot
// loops (KECCAK256 handler, AVM sha256, precompiles) never allocate a fresh
// hasher per operation.
var hasherPool = sync.Pool{New: func() any { return &pooledHasher{h: sha256.New()} }}

// Hash1 returns the SHA-256 digest of a single byte slice without touching
// the heap. The VM interpreters call this on every hash opcode.
func Hash1(p []byte) [32]byte {
	return sha256.Sum256(p)
}

// Hash returns the SHA-256 digest of the concatenation of the given parts.
// It is the system-wide one-way hash: proof hashes, CIDs, hypercube keys and
// block hashes all go through it.
func Hash(parts ...[]byte) [32]byte {
	if len(parts) == 1 {
		return sha256.Sum256(parts[0])
	}
	s := hasherPool.Get().(*pooledHasher)
	s.h.Reset()
	for _, p := range parts {
		s.h.Write(p)
	}
	s.h.Sum(s.sum[:0])
	out := s.sum
	hasherPool.Put(s)
	return out
}

// HashHex returns Hash as a lower-case hex string.
func HashHex(parts ...[]byte) string {
	h := Hash(parts...)
	return hex.EncodeToString(h[:])
}

// ErrBadSignature is returned by helpers that verify signatures and need to
// distinguish "invalid signature" from transport errors.
var ErrBadSignature = errors.New("polcrypto: invalid signature")
