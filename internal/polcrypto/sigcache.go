package polcrypto

import (
	"container/list"
	"crypto/ed25519"
	"sync"
)

// DefaultSigCacheSize bounds a signature-verification memo. A quorum run
// re-checks every proof in a bundle at collection, submission and
// verification time; a few thousand entries cover the largest experiment
// matrix while keeping the cache at ~1 MiB worst case.
const DefaultSigCacheSize = 4096

// SigKey is the full verification input. ed25519 keys and signatures have
// fixed sizes and the system only ever signs 32-byte proof hashes, so the
// key is a comparable value type — no per-lookup allocation.
type SigKey struct {
	pub  [ed25519.PublicKeySize]byte
	hash [32]byte
	sig  [ed25519.SignatureSize]byte
}

// SigKeyFor packs a verification input into a cache key. Inputs with a
// non-canonical shape (wrong key or signature length, message that is not a
// 32-byte hash) are not cacheable.
func SigKeyFor(pub ed25519.PublicKey, msg, sig []byte) (SigKey, bool) {
	var k SigKey
	if len(pub) != ed25519.PublicKeySize || len(msg) != 32 || len(sig) != ed25519.SignatureSize {
		return k, false
	}
	copy(k.pub[:], pub)
	copy(k.hash[:], msg)
	copy(k.sig[:], sig)
	return k, true
}

type sigEntry struct {
	key SigKey
	ok  bool
}

// SigCache memoizes (pubkey, hash, signature) → valid under a bounded LRU.
// Both outcomes are cached: a forged signature stays invalid forever, and
// re-rejecting it should be as cheap as re-accepting a genuine one. It is
// safe for concurrent use.
type SigCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	idx map[SigKey]*list.Element
}

// NewSigCache returns an empty cache bounded to capacity entries.
func NewSigCache(capacity int) *SigCache {
	if capacity < 1 {
		capacity = 1
	}
	return &SigCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[SigKey]*list.Element, capacity),
	}
}

// Get returns the memoized verdict and whether it was present.
func (c *SigCache) Get(k SigKey) (ok, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.idx[k]
	if !found {
		return false, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*sigEntry).ok, true
}

// Put records a verdict, evicting the least-recently-used entry at capacity.
func (c *SigCache) Put(k SigKey, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.idx[k]; found {
		el.Value.(*sigEntry).ok = ok
		c.ll.MoveToFront(el)
		return
	}
	c.idx[k] = c.ll.PushFront(&sigEntry{key: k, ok: ok})
	if c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.idx, back.Value.(*sigEntry).key)
	}
}

// Len reports the number of cached verdicts.
func (c *SigCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Verify is Verify memoized through the cache. hit reports whether the
// verdict came from the memo; non-canonical inputs are verified directly and
// never cached.
func (c *SigCache) Verify(pub ed25519.PublicKey, msg, sig []byte) (ok, hit bool) {
	key, cacheable := SigKeyFor(pub, msg, sig)
	if !cacheable {
		return Verify(pub, msg, sig), false
	}
	if ok, hit := c.Get(key); hit {
		return ok, true
	}
	ok = Verify(pub, msg, sig)
	c.Put(key, ok)
	return ok, false
}
