package polcrypto

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"math"
)

// VRFOutput is the pseudorandom output of a VRF evaluation. Algorand's
// cryptographic sortition hashes it into [0,1) to weight committee selection.
type VRFOutput [32]byte

// VRFProof lets third parties verify that a VRFOutput was honestly computed
// from a seed by the holder of a private key.
//
// Construction: proof = Sign(sk, "vrf"||seed); output = SHA-256(proof).
// ed25519 signatures are deterministic ("unique signatures"), which gives the
// uniqueness property a VRF needs: there is exactly one valid output per
// (key, seed) pair.
type VRFProof []byte

var vrfDomain = []byte("agnopol/vrf/v1")

// VRFEvaluate computes the VRF output and proof for seed under the key pair.
func VRFEvaluate(kp *KeyPair, seed []byte) (VRFOutput, VRFProof) {
	msg := append(append([]byte{}, vrfDomain...), seed...)
	proof := kp.Sign(msg)
	out := Hash(proof)
	return VRFOutput(out), VRFProof(proof)
}

// VRFVerify checks that (output, proof) is the unique valid evaluation of
// seed under pub.
func VRFVerify(pub ed25519.PublicKey, seed []byte, output VRFOutput, proof VRFProof) bool {
	msg := append(append([]byte{}, vrfDomain...), seed...)
	if !Verify(pub, msg, proof) {
		return false
	}
	want := Hash(proof)
	return bytes.Equal(want[:], output[:])
}

// Fraction maps the VRF output to a float in [0,1) with 52 bits of the
// digest, the input to the sortition threshold test.
func (o VRFOutput) Fraction() float64 {
	u := binary.BigEndian.Uint64(o[:8])
	return float64(u>>12) / float64(uint64(1)<<52)
}

// Sortition implements Algorand-style cryptographic self-selection: given a
// VRF output, the caller's stake, the total online stake and the expected
// committee size, it returns j — how many "sub-users" of the caller were
// selected. j follows Binomial(stake, expectedSize/totalStake) and is derived
// from the VRF fraction by walking the binomial CDF, exactly as in the
// Algorand paper (Gilad et al., SOSP'17, Algorithm 1).
func Sortition(out VRFOutput, stake, totalStake uint64, expectedSize float64) uint64 {
	if stake == 0 || totalStake == 0 {
		return 0
	}
	p := expectedSize / float64(totalStake)
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return stake
	}
	frac := out.Fraction()
	// Walk the Binomial(stake, p) CDF until it exceeds frac. Stake values in
	// the simulator are small enough (≤ a few million) that iterating with
	// log-space terms is stable; we cap the walk because the tail beyond
	// ~50 selections is astronomically unlikely for our parameters.
	logP := math.Log(p)
	logQ := math.Log1p(-p)
	n := float64(stake)
	// term_0 = q^n
	logTerm := n * logQ
	cdf := math.Exp(logTerm)
	j := uint64(0)
	for cdf < frac && j < stake {
		// term_{j+1} = term_j * (n-j)/(j+1) * p/q
		logTerm += math.Log(n-float64(j)) - math.Log(float64(j)+1) + logP - logQ
		cdf += math.Exp(logTerm)
		j++
		if j > 64 && cdf >= 1-1e-15 {
			break
		}
	}
	return j
}
