package ipfs

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestAddGetRoundTrip(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("alice")
	data := []byte(`{"title":"report"}`)
	cid, err := n.Add("alice", data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Get(cid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("got %q", got)
	}
}

func TestCIDIsContentAddressed(t *testing.T) {
	err := quick.Check(func(a, b []byte) bool {
		ca, cb := ComputeCID(a), ComputeCID(b)
		if string(a) == string(b) {
			return ca == cb
		}
		return ca != cb
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCIDVerify(t *testing.T) {
	data := []byte("content")
	cid := ComputeCID(data)
	if !cid.Verify(data) {
		t.Fatal("honest content rejected")
	}
	if cid.Verify([]byte("tampered")) {
		t.Fatal("tampered content accepted")
	}
}

func TestAddRequiresRegisteredPeer(t *testing.T) {
	n := NewNetwork()
	if _, err := n.Add("ghost", []byte("x")); !errors.Is(err, ErrNoPeer) {
		t.Fatalf("err = %v, want ErrNoPeer", err)
	}
}

func TestSameContentMultipleProviders(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a")
	n.AddPeer("b")
	cid1, err := n.Add("a", []byte("shared"))
	if err != nil {
		t.Fatal(err)
	}
	cid2, err := n.Add("b", []byte("shared"))
	if err != nil {
		t.Fatal(err)
	}
	if cid1 != cid2 {
		t.Fatal("same content produced different CIDs")
	}
	providers := n.Providers(cid1)
	if len(providers) != 2 || providers[0] != "a" || providers[1] != "b" {
		t.Fatalf("providers = %v", providers)
	}
}

func TestGarbageCollectDropsUnpinned(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("alice")
	n.AddPeer("bob")
	pinned, err := n.Add("alice", []byte("keep me"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Pin("alice", pinned); err != nil {
		t.Fatal(err)
	}
	ephemeral, err := n.Add("bob", []byte("lose me"))
	if err != nil {
		t.Fatal(err)
	}
	lost := n.GarbageCollect()
	if len(lost) != 1 || lost[0] != ephemeral {
		t.Fatalf("lost = %v, want [%s]", lost, ephemeral)
	}
	if _, err := n.Get(ephemeral); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unpinned content still available: %v", err)
	}
	if _, err := n.Get(pinned); err != nil {
		t.Fatalf("pinned content lost: %v", err)
	}
}

func TestUnpinThenGC(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("alice")
	cid, err := n.Add("alice", []byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Pin("alice", cid); err != nil {
		t.Fatal(err)
	}
	n.GarbageCollect()
	if _, err := n.Get(cid); err != nil {
		t.Fatal("pinned content collected")
	}
	if err := n.Unpin("alice", cid); err != nil {
		t.Fatal(err)
	}
	n.GarbageCollect()
	if _, err := n.Get(cid); err == nil {
		t.Fatal("unpinned content survived GC")
	}
}

func TestPinUnknownContent(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("alice")
	if err := n.Pin("alice", "bafy-missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestStats(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a")
	cid, err := n.Add("a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Add("a", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := n.Pin("a", cid); err != nil {
		t.Fatal(err)
	}
	s := n.Stats()
	if s.Peers != 1 || s.Objects != 2 || s.Pinned != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	n := NewNetwork()
	n.AddPeer("a")
	cid, err := n.Add("a", []byte("orig"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := n.Get(cid)
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := n.Get(cid)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != "orig" {
		t.Fatal("stored content mutated through returned slice")
	}
}
