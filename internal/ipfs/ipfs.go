// Package ipfs simulates the InterPlanetary File System as the paper uses
// it: a content-addressed peer-to-peer store. Objects get a CID derived from
// hashing their content (SHA-256, as IPFS does); a DHT maps each CID to the
// peers providing it; and — reproducing the availability caveat in §1.5 —
// content that nobody pins can disappear from the network.
package ipfs

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"agnopol/internal/faults"
	"agnopol/internal/polcrypto"
)

// CID is a content identifier: the multibase-style rendering of the SHA-256
// digest of the content, prefixed with a version tag.
type CID string

// ComputeCID derives the content identifier for data.
func ComputeCID(data []byte) CID {
	return CID("bafy" + polcrypto.HashHex(data))
}

// Verify reports whether data actually hashes to this CID — the integrity
// property that lets the PoL verifier trust report bytes fetched from any
// peer.
func (c CID) Verify(data []byte) bool {
	return ComputeCID(data) == c
}

var (
	// ErrNotFound reports that no reachable peer provides the content.
	ErrNotFound = errors.New("ipfs: content not found")
	// ErrNoPeer reports an operation against an unknown peer.
	ErrNoPeer = errors.New("ipfs: unknown peer")
)

type object struct {
	data   []byte
	pinned map[string]bool // peer -> pinned
	cached map[string]bool // peer -> has a (gc-able) copy
}

// Network is the simulated IPFS swarm.
type Network struct {
	mu      sync.RWMutex
	peers   map[string]bool
	objects map[CID]*object

	// flt injects fetch and pin failures; nil when fault injection is off.
	flt *faults.Injector
}

// SetFaults attaches a fault injector to the swarm's fetch and pin paths.
func (n *Network) SetFaults(inj *faults.Injector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.flt = inj
}

// NewNetwork creates an empty swarm.
func NewNetwork() *Network {
	return &Network{
		peers:   make(map[string]bool),
		objects: make(map[CID]*object),
	}
}

// AddPeer registers a peer by name. Adding an existing peer is a no-op.
func (n *Network) AddPeer(name string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.peers[name] = true
}

// Add stores data from the given peer and returns its CID. The uploading
// peer holds a cached (unpinned) copy; call Pin to make it durable.
func (n *Network) Add(peer string, data []byte) (CID, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.peers[peer] {
		return "", fmt.Errorf("%w: %q", ErrNoPeer, peer)
	}
	cid := ComputeCID(data)
	obj, ok := n.objects[cid]
	if !ok {
		obj = &object{
			data:   append([]byte(nil), data...),
			pinned: make(map[string]bool),
			cached: make(map[string]bool),
		}
		n.objects[cid] = obj
	}
	obj.cached[peer] = true
	return cid, nil
}

// Pin makes the peer a durable provider of the content.
func (n *Network) Pin(peer string, cid CID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.peers[peer] {
		return fmt.Errorf("%w: %q", ErrNoPeer, peer)
	}
	obj, ok := n.objects[cid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cid)
	}
	if err := n.flt.Try(faults.ClassIPFSUnpin, "ipfs.pin"); err != nil {
		// The pin RPC fails, leaving the content at GC risk until the
		// caller re-pins.
		return err
	}
	obj.pinned[peer] = true
	obj.cached[peer] = true
	return nil
}

// Unpin releases the peer's pin; the copy survives as cache until GC.
func (n *Network) Unpin(peer string, cid CID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	obj, ok := n.objects[cid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, cid)
	}
	delete(obj.pinned, peer)
	return nil
}

// Get fetches the content by CID from any provider, verifying integrity
// against the CID before returning.
func (n *Network) Get(cid CID) ([]byte, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if err := n.flt.Try(faults.ClassIPFSFetch, "ipfs.get"); err != nil {
		// No reachable provider answered this request; a later retry can
		// find one.
		return nil, err
	}
	obj, ok := n.objects[cid]
	if !ok || (len(obj.pinned) == 0 && len(obj.cached) == 0) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, cid)
	}
	if !cid.Verify(obj.data) {
		return nil, fmt.Errorf("ipfs: integrity failure for %s", cid)
	}
	return append([]byte(nil), obj.data...), nil
}

// Providers returns the sorted peers currently holding the content.
func (n *Network) Providers(cid CID) []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	obj, ok := n.objects[cid]
	if !ok {
		return nil
	}
	seen := make(map[string]bool)
	for p := range obj.pinned {
		seen[p] = true
	}
	for p := range obj.cached {
		seen[p] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// GarbageCollect drops all unpinned cached copies, the §1.5 failure mode:
// content with no pinning provider disappears from the network. It returns
// the CIDs that became unavailable.
func (n *Network) GarbageCollect() []CID {
	n.mu.Lock()
	defer n.mu.Unlock()
	var lost []CID
	for cid, obj := range n.objects {
		for p := range obj.cached {
			if !obj.pinned[p] {
				delete(obj.cached, p)
			}
		}
		if len(obj.pinned) == 0 && len(obj.cached) == 0 {
			lost = append(lost, cid)
			delete(n.objects, cid)
		}
	}
	sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
	return lost
}

// Stats describes swarm contents.
type Stats struct {
	Peers   int
	Objects int
	Pinned  int
}

// Stats returns current swarm statistics.
func (n *Network) Stats() Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s := Stats{Peers: len(n.peers), Objects: len(n.objects)}
	for _, obj := range n.objects {
		if len(obj.pinned) > 0 {
			s.Pinned++
		}
	}
	return s
}
