package chain

import (
	"fmt"
	"time"
)

// Clock is the discrete-event simulation clock. Each chain owns one; it only
// moves when the simulation advances it (block production, network delays),
// so experiments that span simulated hours run in milliseconds of wall time.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock at simulated time zero (genesis).
func NewClock() *Clock { return &Clock{} }

// Now returns the elapsed simulated time since genesis.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves simulated time forward. Negative advances are a programming
// error and panic.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("chain.Clock: advancing by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to an absolute simulated time, never backwards.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Receipt reports the outcome of a transaction on either chain family, in
// the common shape the Connector interface and the benchmark harness
// consume.
type Receipt struct {
	TxHash      Hash32
	BlockNumber uint64
	// GasUsed is EVM gas for Ethereum-family chains and the AVM opcode
	// budget consumed for Algorand.
	GasUsed uint64
	// Fee actually paid, in the chain's base units.
	Fee Amount
	// Submitted and Included are simulated timestamps; Included-Submitted
	// is the confirmation latency the paper's figures plot.
	Submitted time.Duration
	Included  time.Duration
	Reverted  bool
	RevertMsg string
	// ReturnValue is the ABI-encoded (EVM) or raw (AVM) return of the call.
	ReturnValue []byte
	Logs        []string
}

// Latency is the submit-to-confirmation time of the transaction.
func (r Receipt) Latency() time.Duration { return r.Included - r.Submitted }
