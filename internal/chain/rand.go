package chain

import (
	"encoding/binary"
	"math"

	"agnopol/internal/polcrypto"
)

// Rand is a small deterministic PRNG (SplitMix64) used everywhere the
// simulators need randomness. It also implements io.Reader so it can feed
// ed25519 key generation, making whole experiments reproducible from a
// single seed.
type Rand struct {
	state uint64
}

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Fork derives an independent generator labelled by name, so subsystems
// seeded from one experiment seed do not share streams.
func (r *Rand) Fork(name string) *Rand {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.Uint64())
	h := polcrypto.Hash(buf[:], []byte(name))
	return &Rand{state: binary.BigEndian.Uint64(h[:8])}
}

// State exposes the generator's internal state so a checkpoint can
// capture the stream position; SetState restores it. A restored
// generator continues the exact sequence the captured one would have
// produced.
func (r *Rand) State() uint64 { return r.state }

// SetState repositions the generator. See State.
func (r *Rand) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("chain.Rand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform uint64 in [0, n).
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("chain.Rand: Uint64n with zero n")
	}
	return r.Uint64() % n
}

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(uint64(1)<<53)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Read fills p with random bytes, implementing io.Reader for key
// generation.
func (r *Rand) Read(p []byte) (int, error) {
	for i := 0; i < len(p); i += 8 {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], r.Uint64())
		copy(p[i:], buf[:])
	}
	return len(p), nil
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
