package chain

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestAddressDerivationIsStable(t *testing.T) {
	pub := make([]byte, 32)
	for i := range pub {
		pub[i] = byte(i)
	}
	a := AddressFromPublicKey(pub)
	b := AddressFromPublicKey(pub)
	if a != b {
		t.Fatal("address derivation not deterministic")
	}
	pub[0] ^= 1
	if AddressFromPublicKey(pub) == a {
		t.Fatal("different keys produced the same address")
	}
}

func TestContractAddressDependsOnNonce(t *testing.T) {
	creator := AddressFromBytes([]byte("creator"))
	if ContractAddress(creator, 0) == ContractAddress(creator, 1) {
		t.Fatal("same contract address for different nonces")
	}
	other := AddressFromBytes([]byte("other"))
	if ContractAddress(creator, 0) == ContractAddress(other, 0) {
		t.Fatal("same contract address for different creators")
	}
}

func TestAmountConversions(t *testing.T) {
	// 1 ETH = €1156 (the paper's Nov 17 2022 rate).
	a := AmountFromTokens(1, UnitETH)
	if a.Base.Cmp(big.NewInt(1e18)) != 0 {
		t.Fatalf("1 ETH = %s wei", a.Base)
	}
	if got := a.Euros(); math.Abs(got-1156) > 1e-9 {
		t.Fatalf("1 ETH = €%v, want €1156", got)
	}
	algo := AmountFromTokens(0.5, UnitALGO)
	if algo.Base.Cmp(big.NewInt(500_000)) != 0 {
		t.Fatalf("0.5 ALGO = %s µALGO", algo.Base)
	}
	if got := algo.Euros(); math.Abs(got-0.13) > 1e-9 {
		t.Fatalf("0.5 ALGO = €%v, want €0.13", got)
	}
}

func TestAmountAdd(t *testing.T) {
	a := AmountFromTokens(1, UnitMATIC)
	b := AmountFromTokens(2.5, UnitMATIC)
	sum := a.Add(b)
	if got := sum.Tokens(); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("sum = %v MATIC", got)
	}
	var zero Amount
	if got := zero.Add(a).Tokens(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("zero+1 = %v", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(7)
	a := r.Fork("a")
	b := r.Fork("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams matched %d/64 draws", same)
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(9)
	err := quick.Check(func(n uint16) bool {
		m := int(n)%100 + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v", f)
		}
		if e := r.ExpFloat64(); e < 0 {
			t.Fatalf("ExpFloat64 = %v", e)
		}
	}
}

func TestRandNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 20000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestClock(t *testing.T) {
	c := NewClock()
	c.Advance(5)
	c.AdvanceTo(3) // never backwards
	if c.Now() != 5 {
		t.Fatalf("clock went backwards: %v", c.Now())
	}
	c.AdvanceTo(9)
	if c.Now() != 9 {
		t.Fatalf("now = %v", c.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	c.Advance(-1)
}

func TestReceiptLatency(t *testing.T) {
	r := Receipt{Submitted: 100, Included: 350}
	if r.Latency() != 250 {
		t.Fatalf("latency = %v", r.Latency())
	}
}
