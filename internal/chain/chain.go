// Package chain holds the types shared by the Ethereum-family and Algorand
// simulators: addresses, currency units and arithmetic, receipts, and the
// deterministic randomness every simulation component draws from.
package chain

import (
	"crypto/ed25519"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/big"

	"agnopol/internal/polcrypto"
)

// Address is a 20-byte account or contract address, derived from the
// account's public key exactly as Ethereum does (last 20 bytes of the hash).
type Address [20]byte

// AddressFromPublicKey derives the canonical address of a public key.
func AddressFromPublicKey(pub ed25519.PublicKey) Address {
	h := polcrypto.Hash(pub)
	var a Address
	copy(a[:], h[12:])
	return a
}

// AddressFromBytes builds an address from raw bytes, hashing inputs that are
// not exactly 20 bytes. Used to derive contract addresses from
// (creator, nonce).
func AddressFromBytes(b []byte) Address {
	var a Address
	if len(b) == len(a) {
		copy(a[:], b)
		return a
	}
	h := polcrypto.Hash(b)
	copy(a[:], h[12:])
	return a
}

// ContractAddress derives the address of a contract created by creator with
// the given account nonce.
func ContractAddress(creator Address, nonce uint64) Address {
	var buf [28]byte
	copy(buf[:20], creator[:])
	binary.BigEndian.PutUint64(buf[20:], nonce)
	return AddressFromBytes(buf[:])
}

func (a Address) String() string { return "0x" + hex.EncodeToString(a[:]) }

// IsZero reports whether the address is the zero address.
func (a Address) IsZero() bool { return a == Address{} }

// Hash32 is a 32-byte hash (block hashes, tx hashes, storage keys).
type Hash32 [32]byte

func (h Hash32) String() string { return "0x" + hex.EncodeToString(h[:]) }

// Unit describes the native currency of a chain and its conversion factors,
// matching the constants the paper's tables use (Nov 17 2022 prices:
// 1 ETH = €1156, 1 ALGO = €0.26, 1 MATIC = €0.85).
type Unit struct {
	// Name of the whole token, e.g. "ETH".
	Name string
	// BaseName of the smallest denomination, e.g. "wei".
	BaseName string
	// BasePerToken is how many base units make one token (1e18 for wei,
	// 1e6 for µAlgo).
	BasePerToken *big.Int
	// EuroPerToken is the fiat conversion used in the paper's tables.
	EuroPerToken float64
}

// Paper conversion constants.
var (
	UnitETH   = Unit{Name: "ETH", BaseName: "wei", BasePerToken: big.NewInt(1e18), EuroPerToken: 1156}
	UnitMATIC = Unit{Name: "MATIC", BaseName: "wei", BasePerToken: big.NewInt(1e18), EuroPerToken: 0.85}
	UnitALGO  = Unit{Name: "ALGO", BaseName: "µALGO", BasePerToken: big.NewInt(1e6), EuroPerToken: 0.26}
)

// Amount is a currency amount in base units (wei / µAlgo) with its unit
// attached so fees from different chains can be rendered side by side.
type Amount struct {
	Base *big.Int
	Unit Unit
}

// NewAmount wraps base units in an Amount.
func NewAmount(base *big.Int, unit Unit) Amount {
	return Amount{Base: new(big.Int).Set(base), Unit: unit}
}

// AmountFromTokens converts whole tokens (possibly fractional) to an Amount.
func AmountFromTokens(tokens float64, unit Unit) Amount {
	f := new(big.Float).Mul(big.NewFloat(tokens), new(big.Float).SetInt(unit.BasePerToken))
	base, _ := f.Int(nil)
	return Amount{Base: base, Unit: unit}
}

// Tokens returns the amount in whole tokens.
func (a Amount) Tokens() float64 {
	if a.Base == nil {
		return 0
	}
	f := new(big.Float).SetInt(a.Base)
	f.Quo(f, new(big.Float).SetInt(a.Unit.BasePerToken))
	v, _ := f.Float64()
	return v
}

// Euros converts the amount with the paper's fixed rates.
func (a Amount) Euros() float64 { return a.Tokens() * a.Unit.EuroPerToken }

// Add returns a + b; both must share a unit.
func (a Amount) Add(b Amount) Amount {
	if a.Base == nil {
		return b
	}
	return Amount{Base: new(big.Int).Add(a.Base, b.Base), Unit: a.Unit}
}

func (a Amount) String() string {
	return fmt.Sprintf("%g %s", a.Tokens(), a.Unit.Name)
}
