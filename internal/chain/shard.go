package chain

// Sharded block building: pending transactions are partitioned into
// conflict components (transactions that may read or write the same state),
// components are packed onto N shards, and each shard executes its
// components serially while shards run concurrently. Because components on
// different shards touch disjoint state, the merged block is bit-identical
// to a serial execution in canonical order — regardless of GOMAXPROCS or
// the shard count. Both chain simulators (internal/eth, internal/algorand)
// build on the key/partition/assign machinery here.

// ConflictKind namespaces conflict keys so that, e.g., an account key and a
// contract key for the same 20-byte value stay distinct resources.
type ConflictKind uint8

// Conflict-key namespaces.
const (
	// ConflictAccount is a balance/nonce-bearing account (sender or
	// value receiver).
	ConflictAccount ConflictKind = iota
	// ConflictContract is a contract's code and storage, keyed by address.
	ConflictContract
	// ConflictApp is an Algorand application, keyed by ID.
	ConflictApp
	// ConflictAsset is an Algorand standard asset, keyed by ID.
	ConflictAsset
	// ConflictGlobal is chain-global state (creation sequence counters);
	// any transaction carrying it conflicts with every other one that does.
	ConflictGlobal
)

// ConflictKey names one state resource a transaction may touch. Two
// transactions sharing any key must execute serially in canonical order;
// transactions sharing no key commute and may run on different shards.
type ConflictKey struct {
	Kind ConflictKind
	Addr Address // set for account/contract keys
	ID   uint64  // set for app/asset keys
}

// AccountKey is the conflict key of an account's balance and nonce.
func AccountKey(a Address) ConflictKey { return ConflictKey{Kind: ConflictAccount, Addr: a} }

// ContractKey is the conflict key of a contract's code and storage.
func ContractKey(a Address) ConflictKey { return ConflictKey{Kind: ConflictContract, Addr: a} }

// AppKey is the conflict key of an Algorand application's state.
func AppKey(id uint64) ConflictKey { return ConflictKey{Kind: ConflictApp, ID: id} }

// AssetKey is the conflict key of an Algorand standard asset.
func AssetKey(id uint64) ConflictKey { return ConflictKey{Kind: ConflictAsset, ID: id} }

// GlobalKey is the conflict key of chain-global sequences.
func GlobalKey() ConflictKey { return ConflictKey{Kind: ConflictGlobal} }

// Partition groups n items (canonically ordered transactions) into conflict
// components: the connected components of the graph whose edges join items
// sharing a conflict key. Components are returned ordered by their smallest
// member index, and each component lists its members in ascending index
// order — so executing components in slice order, members in order,
// reproduces the canonical serial order within every component.
func Partition(n int, keysOf func(i int) []ConflictKey) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Keep the smaller index as root so roots are canonical.
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	owner := make(map[ConflictKey]int)
	for i := 0; i < n; i++ {
		for _, k := range keysOf(i) {
			if first, ok := owner[k]; ok {
				union(i, first)
			} else {
				owner[k] = i
			}
		}
	}
	members := make(map[int][]int, n)
	var roots []int
	for i := 0; i < n; i++ {
		r := find(i)
		if _, seen := members[r]; !seen {
			roots = append(roots, r)
		}
		members[r] = append(members[r], i)
	}
	// Roots are the smallest index of their component, and were appended in
	// ascending order of first appearance, so the result is ordered by
	// smallest member already.
	out := make([][]int, 0, len(roots))
	for _, r := range roots {
		out = append(out, members[r])
	}
	return out
}

// Assign packs conflict components onto at most shards bins, balancing the
// total weight per bin. Components are placed in descending-weight order
// (ties broken by smaller first-member index) onto the currently lightest
// bin (ties broken by lower bin index) — the classic LPT heuristic, made
// deterministic by the tie-breaks. The returned slice has exactly shards
// entries; a bin holds its components in the order assigned.
func Assign(components [][]int, shards int, weight func(i int) uint64) [][][]int {
	if shards < 1 {
		shards = 1
	}
	type comp struct {
		idx int // position in components, the tie-break
		w   uint64
	}
	order := make([]comp, len(components))
	for ci, members := range components {
		var w uint64
		for _, i := range members {
			w += weight(i)
		}
		order[ci] = comp{idx: ci, w: w}
	}
	// Insertion sort by descending weight, ascending idx on ties: component
	// counts per block are small, and stability plus explicit tie-breaks
	// keep the assignment independent of sort internals.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && (order[j].w > order[j-1].w ||
			(order[j].w == order[j-1].w && order[j].idx < order[j-1].idx)); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	bins := make([][][]int, shards)
	loads := make([]uint64, shards)
	for _, c := range order {
		best := 0
		for b := 1; b < shards; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		bins[best] = append(bins[best], components[c.idx])
		loads[best] += c.w
	}
	return bins
}

// ShardStats accumulates per-shard execution tallies across blocks, the raw
// material of the utilization figures in BENCH_throughput.json.
type ShardStats struct {
	Txs []uint64 // transactions (or tx groups) executed per shard
	Gas []uint64 // execution gas (or opcode cost) per shard
	// ParallelBatches counts block applications that actually fanned out
	// to more than one shard; serial blocks bypass the worker pool.
	ParallelBatches uint64
}

// NewShardStats sizes the tallies for n shards.
func NewShardStats(n int) *ShardStats {
	if n < 1 {
		n = 1
	}
	return &ShardStats{Txs: make([]uint64, n), Gas: make([]uint64, n)}
}

// Record adds one shard's tallies for a block.
func (s *ShardStats) Record(shard int, txs, gas uint64) {
	if s == nil || shard < 0 || shard >= len(s.Txs) {
		return
	}
	s.Txs[shard] += txs
	s.Gas[shard] += gas
}

// Utilization returns each shard's share of the total executed
// transactions, or all zeros when nothing executed.
func (s *ShardStats) Utilization() []float64 {
	out := make([]float64, len(s.Txs))
	var total uint64
	for _, t := range s.Txs {
		total += t
	}
	if total == 0 {
		return out
	}
	for i, t := range s.Txs {
		out[i] = float64(t) / float64(total)
	}
	return out
}
