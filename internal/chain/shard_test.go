package chain

import (
	"reflect"
	"testing"
)

func addr(b byte) Address {
	var a Address
	a[0] = b
	return a
}

func TestPartitionTable(t *testing.T) {
	// Each case lists per-item key sets and the expected components.
	cases := []struct {
		name string
		keys [][]ConflictKey
		want [][]int
	}{
		{
			name: "disjoint items stay alone",
			keys: [][]ConflictKey{
				{AccountKey(addr(1)), ContractKey(addr(10))},
				{AccountKey(addr(2)), ContractKey(addr(11))},
				{AccountKey(addr(3)), ContractKey(addr(12))},
			},
			want: [][]int{{0}, {1}, {2}},
		},
		{
			name: "same sender across areas serializes",
			// One user checking in to three different area contracts: the
			// shared sender account chains all three together.
			keys: [][]ConflictKey{
				{AccountKey(addr(1)), ContractKey(addr(10))},
				{AccountKey(addr(1)), ContractKey(addr(11))},
				{AccountKey(addr(1)), ContractKey(addr(12))},
			},
			want: [][]int{{0, 1, 2}},
		},
		{
			name: "same contract from many senders serializes",
			// Three users hitting one area contract form one component;
			// a fourth user on another contract stays apart.
			keys: [][]ConflictKey{
				{AccountKey(addr(1)), ContractKey(addr(10))},
				{AccountKey(addr(2)), ContractKey(addr(10))},
				{AccountKey(addr(3)), ContractKey(addr(10))},
				{AccountKey(addr(4)), ContractKey(addr(11))},
			},
			want: [][]int{{0, 1, 2}, {3}},
		},
		{
			name: "zero address account and contract keys stay distinct",
			// The zero address as an account and as a contract are
			// different resources: kinds differ, so no false conflict.
			keys: [][]ConflictKey{
				{AccountKey(Address{})},
				{ContractKey(Address{})},
			},
			want: [][]int{{0}, {1}},
		},
		{
			name: "zero address shared as same kind conflicts",
			keys: [][]ConflictKey{
				{AccountKey(Address{})},
				{AccountKey(Address{})},
			},
			want: [][]int{{0, 1}},
		},
		{
			name: "global key joins everything carrying it",
			keys: [][]ConflictKey{
				{AccountKey(addr(1)), GlobalKey()},
				{AccountKey(addr(2))},
				{AccountKey(addr(3)), GlobalKey()},
			},
			want: [][]int{{0, 2}, {1}},
		},
		{
			name: "transitive chain merges into one component",
			// 0-1 share a contract, 1-2 share a sender: all three join.
			keys: [][]ConflictKey{
				{AccountKey(addr(1)), ContractKey(addr(10))},
				{AccountKey(addr(2)), ContractKey(addr(10))},
				{AccountKey(addr(2)), ContractKey(addr(11))},
			},
			want: [][]int{{0, 1, 2}},
		},
		{
			name: "app and asset keys with equal IDs stay distinct",
			keys: [][]ConflictKey{
				{AppKey(7)},
				{AssetKey(7)},
			},
			want: [][]int{{0}, {1}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Partition(len(tc.keys), func(i int) []ConflictKey { return tc.keys[i] })
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("Partition = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPartitionEmpty(t *testing.T) {
	if got := Partition(0, func(int) []ConflictKey { return nil }); len(got) != 0 {
		t.Fatalf("Partition(0) = %v, want empty", got)
	}
}

func TestAssignBalancesAndIsDeterministic(t *testing.T) {
	comps := [][]int{{0}, {1}, {2}, {3}, {4}, {5}}
	weights := []uint64{100, 90, 10, 10, 10, 10}
	w := func(i int) uint64 { return weights[i] }

	bins := Assign(comps, 2, w)
	if len(bins) != 2 {
		t.Fatalf("got %d bins, want 2", len(bins))
	}
	load := func(b [][]int) uint64 {
		var sum uint64
		for _, comp := range b {
			for _, i := range comp {
				sum += w(i)
			}
		}
		return sum
	}
	// LPT on these weights: {100, 10, 10} vs {90, 10, 10}.
	if load(bins[0]) != 120 || load(bins[1]) != 110 {
		t.Fatalf("loads = %d/%d, want 120/110", load(bins[0]), load(bins[1]))
	}
	for i := 0; i < 10; i++ {
		again := Assign(comps, 2, w)
		if !reflect.DeepEqual(bins, again) {
			t.Fatalf("Assign not deterministic: %v vs %v", bins, again)
		}
	}
}

func TestAssignFewerComponentsThanShards(t *testing.T) {
	comps := [][]int{{0, 1}}
	bins := Assign(comps, 4, func(int) uint64 { return 1 })
	if len(bins) != 4 {
		t.Fatalf("got %d bins, want 4", len(bins))
	}
	nonEmpty := 0
	for _, b := range bins {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("one component must land in exactly one bin, got %d", nonEmpty)
	}
}

func TestShardStatsUtilization(t *testing.T) {
	s := NewShardStats(4)
	s.Record(0, 30, 300)
	s.Record(1, 10, 100)
	s.Record(1, 0, 0)
	u := s.Utilization()
	if u[0] != 0.75 || u[1] != 0.25 || u[2] != 0 || u[3] != 0 {
		t.Fatalf("utilization = %v", u)
	}
	// Out-of-range and nil receivers are no-ops, not panics.
	s.Record(9, 1, 1)
	var nilStats *ShardStats
	nilStats.Record(0, 1, 1)
	empty := NewShardStats(2).Utilization()
	if empty[0] != 0 || empty[1] != 0 {
		t.Fatalf("empty utilization = %v", empty)
	}
}
