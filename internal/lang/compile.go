package lang

import (
	"errors"
	"fmt"

	"agnopol/internal/avm"
)

// Compiled is the output of compiling one program for every connector: the
// single-source / many-backends artifact that makes the language
// blockchain-agnostic (the index.main.mjs analogue of §2.9.3).
type Compiled struct {
	Program *Program

	// EVMCode is the runtime bytecode deployed on Ethereum-family chains.
	EVMCode []byte
	// TEALSource and TEALProgram are the Algorand artifact.
	TEALSource  string
	TEALProgram *avm.Program

	// Report is the static verification result.
	Report *Report
	// Analysis is the conservative cost analysis (Fig. 5.1).
	Analysis *Analysis
}

// ErrVerification reports failed theorems at compile time.
var ErrVerification = errors.New("lang: verification failed")

// Options tune compilation.
type Options struct {
	// MaxBytesLen bounds Bytes values for the conservative analysis
	// (default 512, the thesis contract's largest Bytes annotation).
	MaxBytesLen int
	// SkipVerify compiles even when theorems fail; for tests that
	// deliberately compile broken programs.
	SkipVerify bool
	// Precompiles lowers the verification builtins (digest over
	// concatenations, bytes equality, contains, sigok) to the native VM
	// precompiles (DESIGN.md §14) instead of interpreted bytecode. The
	// interpreted lowering remains the differential oracle
	// (differential_test.go); production contracts compile with this on.
	Precompiles bool
}

// Compile type-checks, verifies and compiles a program for both backends.
func Compile(p *Program, opts Options) (*Compiled, error) {
	if err := Check(p); err != nil {
		return nil, fmt.Errorf("lang: %w", err)
	}
	report := Verify(p)
	if report.Failures > 0 && !opts.SkipVerify {
		return nil, fmt.Errorf("%w:\n%s", ErrVerification, report)
	}
	evmCode, err := CompileEVM(p, opts)
	if err != nil {
		return nil, err
	}
	tealSrc, tealProg, err := CompileTEAL(p, opts)
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Program:     p,
		EVMCode:     evmCode,
		TEALSource:  tealSrc,
		TEALProgram: tealProg,
		Report:      report,
		Analysis:    Analyze(p, evmCode, tealSrc, opts.MaxBytesLen),
	}, nil
}
