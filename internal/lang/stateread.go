package lang

import (
	"fmt"
	"math/big"
	"strconv"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/polcrypto"
)

// Off-chain state reads. Reach frontends read contract state directly
// through the node (filtering the Map by DID, §2.2); these helpers decode
// the storage layouts the two backends emit so connectors can offer the
// same facility without paid transactions.

// EVMGlobalSlot returns the storage slot of the i-th global.
func EVMGlobalSlot(i int) chain.Hash32 {
	var h chain.Hash32
	new(big.Int).SetUint64(uint64(1 + i)).FillBytes(h[:])
	return h
}

// EVMMapSlot returns the marker slot of a map entry: keccak(key ‖ tag).
func EVMMapSlot(mapIndex int, key uint64) chain.Hash32 {
	var kw, tw [32]byte
	new(big.Int).SetUint64(key).FillBytes(kw[:])
	new(big.Int).SetUint64(uint64(mapTagBase + mapIndex)).FillBytes(tw[:])
	return chain.Hash32(polcrypto.Hash(kw[:], tw[:]))
}

// evmDataBase returns the first chunk slot for a bytes value whose marker
// lives at slot.
func evmDataBase(slot chain.Hash32) *big.Int {
	h := polcrypto.Hash(slot[:])
	return new(big.Int).SetBytes(h[:])
}

// StorageGetter reads one raw storage word of a contract.
type StorageGetter func(key chain.Hash32) chain.Hash32

// word reads a storage slot as a big integer.
func word(get StorageGetter, slot chain.Hash32) *big.Int {
	v := get(slot)
	return new(big.Int).SetBytes(v[:])
}

// readEVMBytesAt decodes the marker+chunks encoding at slot.
func readEVMBytesAt(get StorageGetter, slot chain.Hash32) ([]byte, bool) {
	marker := word(get, slot)
	if marker.Sign() == 0 {
		return nil, false
	}
	length := new(big.Int).Rsh(marker, 1).Uint64()
	base := evmDataBase(slot)
	out := make([]byte, 0, length)
	for off := uint64(0); off < length; off += 32 {
		var cs chain.Hash32
		new(big.Int).Add(base, new(big.Int).SetUint64(off/32)).FillBytes(cs[:])
		chunk := get(cs)
		out = append(out, chunk[:]...)
	}
	return out[:length], true
}

// ReadMapEVM reads Map[key] from raw EVM storage.
func ReadMapEVM(get StorageGetter, p *Program, mapName string, key uint64) (Value, bool, error) {
	mi, err := p.mapIndex(mapName)
	if err != nil {
		return Value{}, false, err
	}
	slot := EVMMapSlot(mi, key)
	if p.Maps[mi].Value == TBytes {
		b, ok := readEVMBytesAt(get, slot)
		if !ok {
			return Value{}, false, nil
		}
		return BytesValue(b), true, nil
	}
	marker := word(get, slot)
	if marker.Sign() == 0 {
		return Value{}, false, nil
	}
	return Uint64Value(new(big.Int).Rsh(marker, 1).Uint64()), true, nil
}

// ReadGlobalEVM reads a global from raw EVM storage.
func ReadGlobalEVM(get StorageGetter, p *Program, name string) (Value, error) {
	gi, err := p.globalIndex(name)
	if err != nil {
		return Value{}, err
	}
	slot := EVMGlobalSlot(gi)
	switch p.Globals[gi].Type {
	case TBytes:
		b, _ := readEVMBytesAt(get, slot)
		return BytesValue(b), nil
	case TAddress:
		w := get(slot)
		var a [20]byte
		copy(a[:], w[12:])
		return AddressValue(a), nil
	default:
		return Uint64Value(word(get, slot).Uint64()), nil
	}
}

// TEALGlobalKey is the application global-state key of a global.
func TEALGlobalKey(name string) string { return "g:" + name }

// TEALMapKey is the application global-state key of a map entry.
func TEALMapKey(p *Program, mapName string, key uint64) (string, error) {
	mi, err := p.mapIndex(mapName)
	if err != nil {
		return "", err
	}
	return "m:" + strconv.Itoa(mi) + ":" + string(avm.Itob(key)), nil
}

// DecodeTEALValue converts an AVM state value to a language Value of the
// declared type.
func DecodeTEALValue(t Type, v avm.Value) (Value, error) {
	switch t {
	case TUInt:
		u, err := v.AsUint()
		if err != nil {
			return Value{}, err
		}
		return Uint64Value(u), nil
	case TBool:
		u, err := v.AsUint()
		if err != nil {
			return Value{}, err
		}
		return BoolValue(u != 0), nil
	case TBytes:
		b, err := v.AsBytes()
		if err != nil {
			return Value{}, err
		}
		return BytesValue(append([]byte(nil), b...)), nil
	case TAddress:
		b, err := v.AsBytes()
		if err != nil {
			return Value{}, err
		}
		if len(b) != 20 {
			return Value{}, fmt.Errorf("lang: address state value of %d bytes", len(b))
		}
		var a [20]byte
		copy(a[:], b)
		return AddressValue(a), nil
	default:
		return Value{}, fmt.Errorf("lang: unsupported state type %s", t)
	}
}
