package lang

import (
	"fmt"
)

// ParseSource parses the textual contract syntax into a Program (see
// lexer.go for the grammar sketch). The result is the same AST the embedded
// builder produces, so Check/Verify/Compile apply unchanged.
func ParseSource(src string) (*Program, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.contract()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParseSource panics on error; for source literals in tests and
// examples.
func MustParseSource(src string) *Program {
	p, err := ParseSource(src)
	if err != nil {
		panic(err)
	}
	return p
}

type parser struct {
	toks []token
	pos  int
	prog *Program
	// params of the declaration being parsed; nil outside bodies.
	params []Param
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", t.line, t.col, fmt.Sprintf(format, args...))
}

// expectPunct consumes the given punctuation or fails.
func (p *parser) expectPunct(text string) error {
	t := p.advance()
	if t.kind != tokPunct || t.text != text {
		return p.errf(t, "expected %q, got %s", text, t)
	}
	return nil
}

// expectKeyword consumes the given identifier keyword.
func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if t.kind != tokIdent || t.text != kw {
		return p.errf(t, "expected %q, got %s", kw, t)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return "", p.errf(t, "expected identifier, got %s", t)
	}
	return t.text, nil
}

func (p *parser) isPunct(text string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == text
}

func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) parseType() (Type, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TInvalid, err
	}
	switch name {
	case "UInt":
		return TUInt, nil
	case "Bytes":
		return TBytes, nil
	case "Bool":
		return TBool, nil
	case "Address":
		return TAddress, nil
	default:
		return TInvalid, p.errf(p.toks[p.pos-1], "unknown type %q", name)
	}
}

func (p *parser) contract() (*Program, error) {
	if err := p.expectKeyword("contract"); err != nil {
		return nil, err
	}
	name := p.advance()
	if name.kind != tokString {
		return nil, p.errf(name, "expected contract name string, got %s", name)
	}
	p.prog = NewProgram(name.str)
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	sawCtor := false
	for !p.isPunct("}") {
		t := p.peek()
		if t.kind == tokEOF {
			return nil, p.errf(t, "unterminated contract body")
		}
		switch {
		case p.isKeyword("global"):
			if err := p.globalDecl(); err != nil {
				return nil, err
			}
		case p.isKeyword("map"):
			if err := p.mapDecl(); err != nil {
				return nil, err
			}
		case p.isKeyword("ctor"):
			if sawCtor {
				return nil, p.errf(t, "duplicate ctor")
			}
			sawCtor = true
			if err := p.ctorDecl(); err != nil {
				return nil, err
			}
		case p.isKeyword("api"):
			if err := p.apiDecl(); err != nil {
				return nil, err
			}
		case p.isKeyword("view"):
			if err := p.viewDecl(); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf(t, "expected a declaration, got %s", t)
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if end := p.peek(); end.kind != tokEOF {
		return nil, p.errf(end, "trailing input after contract: %s", end)
	}
	return p.prog, nil
}

func (p *parser) globalDecl() error {
	if err := p.expectKeyword("global"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	p.prog.DeclareGlobal(name, t)
	return nil
}

func (p *parser) mapDecl() error {
	if err := p.expectKeyword("map"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	key, err := p.parseType()
	if err != nil {
		return err
	}
	if err := p.expectPunct("->"); err != nil {
		return err
	}
	val, err := p.parseType()
	if err != nil {
		return err
	}
	p.prog.DeclareMap(name, key, val)
	return nil
}

func (p *parser) paramList() ([]Param, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var out []Param
	for !p.isPunct(")") {
		if len(out) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		out = append(out, Param{Name: name, Type: t})
	}
	return out, p.expectPunct(")")
}

func (p *parser) ctorDecl() error {
	if err := p.expectKeyword("ctor"); err != nil {
		return err
	}
	params, err := p.paramList()
	if err != nil {
		return err
	}
	p.params = params
	body, err := p.block()
	p.params = nil
	if err != nil {
		return err
	}
	p.prog.SetConstructor(params, body...)
	return nil
}

func (p *parser) apiDecl() error {
	if err := p.expectKeyword("api"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	params, err := p.paramList()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	p.params = params
	defer func() { p.params = nil }()
	var pay Expr
	if p.isKeyword("pay") {
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return err
		}
		pay, err = p.expr()
		if err != nil {
			return err
		}
		if err := p.expectPunct(")"); err != nil {
			return err
		}
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	p.prog.AddAPI(&API{Name: name, Params: params, Returns: ret, Pay: pay, Body: body})
	return nil
}

func (p *parser) viewDecl() error {
	if err := p.expectKeyword("view"); err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if err := p.expectPunct(":"); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	if err := p.expectPunct("="); err != nil {
		return err
	}
	e, err := p.expr()
	if err != nil {
		return err
	}
	p.prog.AddView(name, t, e)
	return nil
}

func (p *parser) block() ([]Stmt, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []Stmt
	for !p.isPunct("}") {
		if p.peek().kind == tokEOF {
			return nil, p.errf(p.peek(), "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, p.expectPunct("}")
}

//nolint:gocyclo // one case per statement form.
func (p *parser) stmt() (Stmt, error) {
	t := p.peek()
	switch {
	case p.isKeyword("assume"), p.isKeyword("require"):
		kw := p.advance().text
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		msg := ""
		if p.isPunct(",") {
			p.advance()
			mt := p.advance()
			if mt.kind != tokString {
				return nil, p.errf(mt, "expected message string, got %s", mt)
			}
			msg = mt.str
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if kw == "assume" {
			return &Assume{Cond: cond, Msg: msg}, nil
		}
		return &Require{Cond: cond, Msg: msg}, nil

	case p.isKeyword("set"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if p.paramIndex(name) >= 0 {
			return nil, p.errf(t, "cannot assign parameter %q (set targets globals)", name)
		}
		if _, err := p.prog.globalIndex(name); err != nil {
			return nil, p.errf(t, "set: %v", err)
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &SetGlobal{Name: name, Value: v}, nil

	case p.isKeyword("delete"):
		p.advance()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("["); err != nil {
			return nil, err
		}
		key, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return &MapDel{Map: name, Key: key}, nil

	case p.isKeyword("transfer"):
		p.advance()
		amount, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("to"); err != nil {
			return nil, err
		}
		to, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Transfer{Amount: amount, To: to}, nil

	case p.isKeyword("if"):
		p.advance()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		then, err := p.block()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.isKeyword("else") {
			p.advance()
			if p.isKeyword("if") {
				// else-if chains: the nested if becomes the else block.
				nested, err := p.stmt()
				if err != nil {
					return nil, err
				}
				els = []Stmt{nested}
			} else {
				els, err = p.block()
				if err != nil {
					return nil, err
				}
			}
		}
		return &If{Cond: cond, Then: then, Else: els}, nil

	case p.isKeyword("emit"):
		p.advance()
		event, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &Emit{Event: event, Value: v}, nil

	case p.isKeyword("return"):
		p.advance()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Return{Value: v}, nil

	case t.kind == tokIdent:
		// Map assignment: name[key] = value.
		name := p.advance().text
		if err := p.expectPunct("["); err != nil {
			return nil, p.errf(t, "expected a statement; %q starts none (map writes are name[key] = value)", name)
		}
		key, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &MapSet{Map: name, Key: key, Value: v}, nil

	default:
		return nil, p.errf(t, "expected a statement, got %s", t)
	}
}

func (p *parser) paramIndex(name string) int {
	for i, pr := range p.params {
		if pr.Name == name {
			return i
		}
	}
	return -1
}

// Expression parsing, precedence climbing.

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("||") {
		p.advance()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		left = Or(left, right)
	}
	return left, nil
}

func (p *parser) andExpr() (Expr, error) {
	left, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("&&") {
		p.advance()
		right, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		left = And(left, right)
	}
	return left, nil
}

var cmpOps = map[string]BinOp{
	"==": OpEq, "!=": OpNe, "<": OpLt, ">": OpGt, "<=": OpLe, ">=": OpGe,
}

func (p *parser) cmpExpr() (Expr, error) {
	left, err := p.concatExpr()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokPunct {
		if op, ok := cmpOps[t.text]; ok {
			p.advance()
			right, err := p.concatExpr()
			if err != nil {
				return nil, err
			}
			return &Bin{Op: op, A: left, B: right}, nil
		}
	}
	return left, nil
}

func (p *parser) concatExpr() (Expr, error) {
	left, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("++") {
		p.advance()
		right, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		left = Concat(left, right)
	}
	return left, nil
}

func (p *parser) addExpr() (Expr, error) {
	left, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("+") || p.isPunct("-") {
		op := p.advance().text
		right, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		if op == "+" {
			left = Add(left, right)
		} else {
			left = Sub(left, right)
		}
	}
	return left, nil
}

func (p *parser) mulExpr() (Expr, error) {
	left, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.isPunct("*") || p.isPunct("/") || p.isPunct("%") {
		op := p.advance().text
		right, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		switch op {
		case "*":
			left = Mul(left, right)
		case "/":
			left = Div(left, right)
		default:
			left = Mod(left, right)
		}
	}
	return left, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.isPunct("!") {
		p.advance()
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Not{A: inner}, nil
	}
	return p.primary()
}

//nolint:gocyclo // one case per primary form.
func (p *parser) primary() (Expr, error) {
	t := p.advance()
	switch {
	case t.kind == tokNumber:
		return U(t.num), nil
	case t.kind == tokString:
		return Bs(t.str), nil
	case t.kind == tokPunct && t.text == "(":
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")

	case t.kind == tokIdent:
		switch t.text {
		case "true":
			return True, nil
		case "false":
			return False, nil
		case "balance":
			if err := p.emptyCall(); err != nil {
				return nil, err
			}
			return &Balance{}, nil
		case "caller":
			if err := p.emptyCall(); err != nil {
				return nil, err
			}
			return &Caller{}, nil
		case "paid":
			if err := p.emptyCall(); err != nil {
				return nil, err
			}
			return &Paid{}, nil
		case "now":
			if err := p.emptyCall(); err != nil {
				return nil, err
			}
			return &Now{}, nil
		case "digest":
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &Digest{A: e}, nil
		case "sigok":
			args, err := p.callArgs(3)
			if err != nil {
				return nil, err
			}
			return &SigVerify{Pub: args[0], Msg: args[1], Sig: args[2]}, nil
		case "contains":
			args, err := p.callArgs(2)
			if err != nil {
				return nil, err
			}
			return &CellContains{Cell: args[0], Code: args[1]}, nil
		case "has":
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return &MapHas{Map: name, Key: key}, nil
		}
		// Map get: name[key].
		if p.isPunct("[") {
			p.advance()
			key, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return &MapGet{Map: t.text, Key: key}, nil
		}
		// Parameter (shadows globals) or global.
		if i := p.paramIndex(t.text); i >= 0 {
			return A(i), nil
		}
		if _, err := p.prog.globalIndex(t.text); err == nil {
			return G(t.text), nil
		}
		return nil, p.errf(t, "undefined name %q", t.text)

	default:
		return nil, p.errf(t, "expected an expression, got %s", t)
	}
}

func (p *parser) emptyCall() error {
	if err := p.expectPunct("("); err != nil {
		return err
	}
	return p.expectPunct(")")
}

// callArgs parses a parenthesized, comma-separated list of exactly n
// expression arguments.
func (p *parser) callArgs(n int) ([]Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	args := make([]Expr, 0, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return args, p.expectPunct(")")
}
