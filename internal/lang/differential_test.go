package lang

import (
	"fmt"
	"math/big"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

// Differential testing of the two backends: randomly generated expression
// trees are compiled to EVM and TEAL and must either fail identically
// (division by zero, uint64 overflow semantics differ — see below) or
// produce the same value. This is the strongest check that "blockchain
// agnostic" means agnostic.
//
// One semantic divergence is real and excluded by construction: the EVM
// computes modulo 2^256 while the AVM faults on uint64 overflow. The
// generator therefore keeps intermediate values small, mirroring the type
// checker's implicit UInt contract (the verifier's overflow theorems exist
// for exactly this reason).

type exprGen struct {
	rng  *chain.Rand
	args []uint64
}

// gen produces a random TUInt expression with values bounded to avoid the
// overflow divergence; depth limits recursion.
func (g *exprGen) gen(depth int) Expr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return U(uint64(g.rng.Intn(1000)))
		case 1:
			return A(g.rng.Intn(len(g.args)))
		default:
			return U(uint64(g.rng.Intn(7))) // small constants hit div/mod paths
		}
	}
	a, b := g.gen(depth-1), g.gen(depth-1)
	switch g.rng.Intn(8) {
	case 0:
		return Add(a, b)
	case 1:
		// Subtraction guarded to stay non-negative: max(a,b) - min via
		// conditional is unavailable; instead (a+b) - b which is safe.
		return Sub(Add(a, b), b)
	case 2:
		return Mul(&Bin{Op: OpMod, A: a, B: U(97)}, &Bin{Op: OpMod, A: b, B: U(89)})
	case 3:
		return Div(a, Add(b, U(1)))
	case 4:
		return Mod(a, Add(b, U(1)))
	case 5:
		return &condExpr{cond: Lt(a, b), then: a, els: b}
	case 6:
		return Add(Mul(boolToUint(Ge(a, b)), U(10)), Mod(b, U(13)))
	default:
		return Add(a, Mod(b, U(31)))
	}
}

// condExpr and boolToUint do not exist in the language; lower them into
// statements at program build time instead.
type condExpr struct {
	cond, then, els Expr
}

func (*condExpr) exprNode() {}

func boolToUint(cond Expr) Expr { return &b2uExpr{cond} }

type b2uExpr struct{ cond Expr }

func (*b2uExpr) exprNode() {}

// lower rewrites the pseudo-expressions into pure language constructs:
// cond ? x : y and bool→uint both become arithmetic over a 0/1 value
// computed via If statements feeding temporaries. To stay expression-only,
// rewrite them algebraically instead: b2u(c) and select aren't directly
// expressible, so we lower by substituting the equivalent program shape.
func lower(e Expr, p *Program, body *[]Stmt, tmpSeq *int) Expr {
	switch e := e.(type) {
	case *condExpr:
		cond := lower(e.cond, p, body, tmpSeq)
		then := lower(e.then, p, body, tmpSeq)
		els := lower(e.els, p, body, tmpSeq)
		*tmpSeq++
		name := fmt.Sprintf("tmp%d", *tmpSeq)
		p.DeclareGlobal(name, TUInt)
		*body = append(*body, &If{
			Cond: cond,
			Then: []Stmt{&SetGlobal{Name: name, Value: then}},
			Else: []Stmt{&SetGlobal{Name: name, Value: els}},
		})
		return G(name)
	case *b2uExpr:
		cond := lower(e.cond, p, body, tmpSeq)
		*tmpSeq++
		name := fmt.Sprintf("tmp%d", *tmpSeq)
		p.DeclareGlobal(name, TUInt)
		*body = append(*body, &If{
			Cond: cond,
			Then: []Stmt{&SetGlobal{Name: name, Value: U(1)}},
			Else: []Stmt{&SetGlobal{Name: name, Value: U(0)}},
		})
		return G(name)
	case *Bin:
		return &Bin{Op: e.Op, A: lower(e.A, p, body, tmpSeq), B: lower(e.B, p, body, tmpSeq)}
	case *Not:
		return &Not{A: lower(e.A, p, body, tmpSeq)}
	default:
		return e
	}
}

func TestBackendsAgreeOnRandomPrograms(t *testing.T) {
	rng := chain.NewRand(0xd1ff)
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		g := &exprGen{rng: rng.Fork(fmt.Sprintf("t%d", trial)), args: []uint64{
			uint64(rng.Intn(500)), uint64(rng.Intn(500)), uint64(rng.Intn(10)),
		}}
		p := NewProgram(fmt.Sprintf("diff%d", trial))
		p.SetConstructor(nil)
		var body []Stmt
		tmp := 0
		expr := lower(g.gen(4), p, &body, &tmp)
		body = append(body, &Return{Value: expr})
		p.AddAPI(&API{
			Name: "f",
			Params: []Param{
				{Name: "a", Type: TUInt}, {Name: "b", Type: TUInt}, {Name: "c", Type: TUInt},
			},
			Returns: TUInt,
			Body:    body,
		})
		if err := Check(p); err != nil {
			t.Fatalf("trial %d: generated program does not check: %v", trial, err)
		}
		// Division theorems may legitimately fail verification (divisors
		// are Add(x,1) so they are actually safe, but the verifier cannot
		// see that) — compile with SkipVerify; the comparison below is
		// the oracle.
		c, err := Compile(p, Options{SkipVerify: true, MaxBytesLen: 64})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}

		args := []Value{Uint64Value(g.args[0]), Uint64Value(g.args[1]), Uint64Value(g.args[2])}

		// EVM run.
		st := evm.NewMemState()
		self := chain.AddressFromBytes([]byte("c"))
		ctorData, err := EncodeArgsEVM(CtorMethodName, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := evm.Execute(evm.Context{State: st, Address: self, Value: new(big.Int), CallData: ctorData, GasLimit: 5_000_000}, c.EVMCode)
		if res.Err != nil || res.Reverted {
			t.Fatalf("trial %d: EVM ctor failed: %+v", trial, res)
		}
		callData, err := EncodeArgsEVM("f", p.APIs[0].Params, args)
		if err != nil {
			t.Fatal(err)
		}
		evmRes := evm.Execute(evm.Context{State: st, Address: self, Value: new(big.Int), CallData: callData, GasLimit: 5_000_000}, c.EVMCode)
		evmFailed := evmRes.Err != nil || evmRes.Reverted
		var evmVal uint64
		if !evmFailed {
			v, err := DecodeReturnEVM(TUInt, evmRes.ReturnData)
			if err != nil {
				t.Fatalf("trial %d: decode EVM return: %v", trial, err)
			}
			evmVal = v.Uint
		}

		// TEAL run.
		led := avm.NewMemLedger()
		sender := chain.AddressFromBytes([]byte("s"))
		ctorArgs, err := EncodeArgsTEAL("", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		tres := avm.Execute(c.TEALProgram, led, avm.TxContext{Sender: sender, AppID: 3, CreateMode: true, Args: ctorArgs, BudgetTxns: 8})
		if !tres.Approved {
			t.Fatalf("trial %d: TEAL ctor rejected: %v", trial, tres.Err)
		}
		tealArgs, err := EncodeArgsTEAL("f", p.APIs[0].Params, args)
		if err != nil {
			t.Fatal(err)
		}
		tealRes := avm.Execute(c.TEALProgram, led, avm.TxContext{Sender: sender, AppID: 3, Args: tealArgs, BudgetTxns: 8})
		tealFailed := !tealRes.Approved
		var tealVal uint64
		if !tealFailed {
			v, err := DecodeReturnTEAL(TUInt, tealRes.Return)
			if err != nil {
				t.Fatalf("trial %d: decode TEAL return: %v", trial, err)
			}
			tealVal = v.Uint
		}

		if evmFailed != tealFailed {
			t.Fatalf("trial %d: EVM failed=%v but TEAL failed=%v (args %v)",
				trial, evmFailed, tealFailed, g.args)
		}
		if !evmFailed && evmVal != tealVal {
			t.Fatalf("trial %d: EVM=%d TEAL=%d (args %v)", trial, evmVal, tealVal, g.args)
		}
	}
}
