package lang

import (
	"bytes"
	"fmt"
	"math/big"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/evm"
	"agnopol/internal/polcrypto"
)

// Differential testing of the two backends: randomly generated expression
// trees are compiled to EVM and TEAL and must either fail identically
// (division by zero, uint64 overflow semantics differ — see below) or
// produce the same value. This is the strongest check that "blockchain
// agnostic" means agnostic.
//
// One semantic divergence is real and excluded by construction: the EVM
// computes modulo 2^256 while the AVM faults on uint64 overflow. The
// generator therefore keeps intermediate values small, mirroring the type
// checker's implicit UInt contract (the verifier's overflow theorems exist
// for exactly this reason).

type exprGen struct {
	rng  *chain.Rand
	args []uint64
}

// gen produces a random TUInt expression with values bounded to avoid the
// overflow divergence; depth limits recursion.
func (g *exprGen) gen(depth int) Expr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			return U(uint64(g.rng.Intn(1000)))
		case 1:
			return A(g.rng.Intn(len(g.args)))
		default:
			return U(uint64(g.rng.Intn(7))) // small constants hit div/mod paths
		}
	}
	a, b := g.gen(depth-1), g.gen(depth-1)
	switch g.rng.Intn(8) {
	case 0:
		return Add(a, b)
	case 1:
		// Subtraction guarded to stay non-negative: max(a,b) - min via
		// conditional is unavailable; instead (a+b) - b which is safe.
		return Sub(Add(a, b), b)
	case 2:
		return Mul(&Bin{Op: OpMod, A: a, B: U(97)}, &Bin{Op: OpMod, A: b, B: U(89)})
	case 3:
		return Div(a, Add(b, U(1)))
	case 4:
		return Mod(a, Add(b, U(1)))
	case 5:
		return &condExpr{cond: Lt(a, b), then: a, els: b}
	case 6:
		return Add(Mul(boolToUint(Ge(a, b)), U(10)), Mod(b, U(13)))
	default:
		return Add(a, Mod(b, U(31)))
	}
}

// condExpr and boolToUint do not exist in the language; lower them into
// statements at program build time instead.
type condExpr struct {
	cond, then, els Expr
}

func (*condExpr) exprNode() {}

func boolToUint(cond Expr) Expr { return &b2uExpr{cond} }

type b2uExpr struct{ cond Expr }

func (*b2uExpr) exprNode() {}

// lower rewrites the pseudo-expressions into pure language constructs:
// cond ? x : y and bool→uint both become arithmetic over a 0/1 value
// computed via If statements feeding temporaries. To stay expression-only,
// rewrite them algebraically instead: b2u(c) and select aren't directly
// expressible, so we lower by substituting the equivalent program shape.
func lower(e Expr, p *Program, body *[]Stmt, tmpSeq *int) Expr {
	switch e := e.(type) {
	case *condExpr:
		cond := lower(e.cond, p, body, tmpSeq)
		then := lower(e.then, p, body, tmpSeq)
		els := lower(e.els, p, body, tmpSeq)
		*tmpSeq++
		name := fmt.Sprintf("tmp%d", *tmpSeq)
		p.DeclareGlobal(name, TUInt)
		*body = append(*body, &If{
			Cond: cond,
			Then: []Stmt{&SetGlobal{Name: name, Value: then}},
			Else: []Stmt{&SetGlobal{Name: name, Value: els}},
		})
		return G(name)
	case *b2uExpr:
		cond := lower(e.cond, p, body, tmpSeq)
		*tmpSeq++
		name := fmt.Sprintf("tmp%d", *tmpSeq)
		p.DeclareGlobal(name, TUInt)
		*body = append(*body, &If{
			Cond: cond,
			Then: []Stmt{&SetGlobal{Name: name, Value: U(1)}},
			Else: []Stmt{&SetGlobal{Name: name, Value: U(0)}},
		})
		return G(name)
	case *Bin:
		return &Bin{Op: e.Op, A: lower(e.A, p, body, tmpSeq), B: lower(e.B, p, body, tmpSeq)}
	case *Not:
		return &Not{A: lower(e.A, p, body, tmpSeq)}
	default:
		return e
	}
}

func TestBackendsAgreeOnRandomPrograms(t *testing.T) {
	rng := chain.NewRand(0xd1ff)
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		g := &exprGen{rng: rng.Fork(fmt.Sprintf("t%d", trial)), args: []uint64{
			uint64(rng.Intn(500)), uint64(rng.Intn(500)), uint64(rng.Intn(10)),
		}}
		p := NewProgram(fmt.Sprintf("diff%d", trial))
		p.SetConstructor(nil)
		var body []Stmt
		tmp := 0
		expr := lower(g.gen(4), p, &body, &tmp)
		body = append(body, &Return{Value: expr})
		p.AddAPI(&API{
			Name: "f",
			Params: []Param{
				{Name: "a", Type: TUInt}, {Name: "b", Type: TUInt}, {Name: "c", Type: TUInt},
			},
			Returns: TUInt,
			Body:    body,
		})
		if err := Check(p); err != nil {
			t.Fatalf("trial %d: generated program does not check: %v", trial, err)
		}
		// Division theorems may legitimately fail verification (divisors
		// are Add(x,1) so they are actually safe, but the verifier cannot
		// see that) — compile with SkipVerify; the comparison below is
		// the oracle.
		c, err := Compile(p, Options{SkipVerify: true, MaxBytesLen: 64})
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}

		args := []Value{Uint64Value(g.args[0]), Uint64Value(g.args[1]), Uint64Value(g.args[2])}

		// EVM run.
		st := evm.NewMemState()
		self := chain.AddressFromBytes([]byte("c"))
		ctorData, err := EncodeArgsEVM(CtorMethodName, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		res := evm.Execute(evm.Context{State: st, Address: self, Value: new(big.Int), CallData: ctorData, GasLimit: 5_000_000}, c.EVMCode)
		if res.Err != nil || res.Reverted {
			t.Fatalf("trial %d: EVM ctor failed: %+v", trial, res)
		}
		callData, err := EncodeArgsEVM("f", p.APIs[0].Params, args)
		if err != nil {
			t.Fatal(err)
		}
		evmRes := evm.Execute(evm.Context{State: st, Address: self, Value: new(big.Int), CallData: callData, GasLimit: 5_000_000}, c.EVMCode)
		evmFailed := evmRes.Err != nil || evmRes.Reverted
		var evmVal uint64
		if !evmFailed {
			v, err := DecodeReturnEVM(TUInt, evmRes.ReturnData)
			if err != nil {
				t.Fatalf("trial %d: decode EVM return: %v", trial, err)
			}
			evmVal = v.Uint
		}

		// TEAL run.
		led := avm.NewMemLedger()
		sender := chain.AddressFromBytes([]byte("s"))
		ctorArgs, err := EncodeArgsTEAL("", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		tres := avm.Execute(c.TEALProgram, led, avm.TxContext{Sender: sender, AppID: 3, CreateMode: true, Args: ctorArgs, BudgetTxns: 8})
		if !tres.Approved {
			t.Fatalf("trial %d: TEAL ctor rejected: %v", trial, tres.Err)
		}
		tealArgs, err := EncodeArgsTEAL("f", p.APIs[0].Params, args)
		if err != nil {
			t.Fatal(err)
		}
		tealRes := avm.Execute(c.TEALProgram, led, avm.TxContext{Sender: sender, AppID: 3, Args: tealArgs, BudgetTxns: 8})
		tealFailed := !tealRes.Approved
		var tealVal uint64
		if !tealFailed {
			v, err := DecodeReturnTEAL(TUInt, tealRes.Return)
			if err != nil {
				t.Fatalf("trial %d: decode TEAL return: %v", trial, err)
			}
			tealVal = v.Uint
		}

		if evmFailed != tealFailed {
			t.Fatalf("trial %d: EVM failed=%v but TEAL failed=%v (args %v)",
				trial, evmFailed, tealFailed, g.args)
		}
		if !evmFailed && evmVal != tealVal {
			t.Fatalf("trial %d: EVM=%d TEAL=%d (args %v)", trial, evmVal, tealVal, g.args)
		}
	}
}

// ---------------------------------------------------------------------------
// Interpreted vs precompiled lowering (DESIGN.md §14).
//
// Every shipped contracts/*.pol program is compiled twice — once with the
// interpreted lowering (the oracle) and once with Precompiles — and driven
// through a scripted happy path plus randomized calls on BOTH backends. The
// two compilations must produce bit-identical results, revert messages,
// logs and final state; the precompiled EVM code additionally runs under
// the big.Int reference engine, which must agree with the u256 engine on
// the intercepted CALLs.

// diffStep is one transaction of a differential script.
type diffStep struct {
	method   string // CtorMethodName for deployment
	pay      uint64
	ts       uint64 // block timestamp (0 = default 1000)
	args     []Value
	mustPass bool // scripted happy-path steps must not revert
}

// diffEVM holds one EVM-side execution universe (one compilation, one
// engine, its own state).
type diffEVM struct {
	code  []byte
	state *evm.MemState
	ref   bool // run under ExecuteRef instead of Execute
}

func newDiffEVM(code []byte, ref bool) *diffEVM {
	st := evm.NewMemState()
	st.AddBalance(chain.AddressFromBytes([]byte("alice")), big.NewInt(1_000_000))
	return &diffEVM{code: code, state: st, ref: ref}
}

func (d *diffEVM) run(t *testing.T, c *Compiled, step diffStep) evm.Result {
	t.Helper()
	params := c.Program.Ctor.Params
	if step.method != CtorMethodName {
		api := c.Program.FindAPI(step.method)
		if api == nil {
			t.Fatalf("no API %q", step.method)
		}
		params = api.Params
	}
	data, err := EncodeArgsEVM(step.method, params, step.args)
	if err != nil {
		t.Fatalf("encode %s: %v", step.method, err)
	}
	self := chain.AddressFromBytes([]byte("contract"))
	from := chain.AddressFromBytes([]byte("alice"))
	v := new(big.Int).SetUint64(step.pay)
	if step.pay > 0 {
		d.state.SubBalance(from, v)
		d.state.AddBalance(self, v)
	}
	ts := step.ts
	if ts == 0 {
		ts = 1000
	}
	ctx := evm.Context{
		State: d.state, Caller: from, Address: self, Value: v,
		CallData: data, GasLimit: 10_000_000, BlockNumber: 1, Timestamp: ts,
	}
	var res evm.Result
	if d.ref {
		res = evm.ExecuteRef(ctx, d.code)
	} else {
		res = evm.Execute(ctx, d.code)
	}
	if (res.Err != nil || res.Reverted) && step.pay > 0 {
		d.state.AddBalance(from, v)
		d.state.SubBalance(self, v)
	}
	return res
}

func (d *diffEVM) view(t *testing.T, name string) evm.Result {
	t.Helper()
	data, err := EncodeArgsEVM(name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := evm.Context{
		State: d.state, Caller: chain.AddressFromBytes([]byte("alice")),
		Address: chain.AddressFromBytes([]byte("contract")), Value: new(big.Int),
		CallData: data, GasLimit: 10_000_000, BlockNumber: 1, Timestamp: 1000,
	}
	if d.ref {
		return evm.ExecuteRef(ctx, d.code)
	}
	return evm.Execute(ctx, d.code)
}

// diffAVM is the TEAL-side execution universe.
type diffAVM struct {
	prog   *avm.Program
	ledger *avm.MemLedger
	appID  uint64
	sender chain.Address
}

func newDiffAVM(prog *avm.Program) *diffAVM {
	d := &diffAVM{
		prog:   prog,
		ledger: avm.NewMemLedger(),
		appID:  7,
		sender: chain.AddressFromBytes([]byte("alice")),
	}
	d.ledger.Balances[d.sender] = 1_000_000
	d.ledger.Balances[d.ledger.AppAddress(d.appID)] = avm.MinBalanceValue
	return d
}

func (d *diffAVM) run(t *testing.T, c *Compiled, step diffStep) avm.Result {
	t.Helper()
	params := c.Program.Ctor.Params
	method := step.method
	create := false
	if method == CtorMethodName {
		method, create = "", true
	} else {
		api := c.Program.FindAPI(method)
		if api == nil {
			t.Fatalf("no API %q", method)
		}
		params = api.Params
	}
	appArgs, err := EncodeArgsTEAL(method, params, step.args)
	if err != nil {
		t.Fatalf("encode %s: %v", step.method, err)
	}
	ts := step.ts
	if ts == 0 {
		ts = 1000
	}
	d.ledger.Timestamp = ts
	if step.pay > 0 {
		if err := d.ledger.Pay(d.sender, d.ledger.AppAddress(d.appID), step.pay); err != nil {
			t.Fatalf("group payment: %v", err)
		}
	}
	res := avm.Execute(d.prog, d.ledger, avm.TxContext{
		Sender: d.sender, AppID: d.appID, CreateMode: create,
		Args: appArgs, PayAmount: step.pay, BudgetTxns: 8,
	})
	if (!res.Approved) && step.pay > 0 {
		// Rejected app call voids the whole group, payment included.
		if err := d.ledger.Pay(d.ledger.AppAddress(d.appID), d.sender, step.pay); err != nil {
			t.Fatalf("unwind payment: %v", err)
		}
	}
	return res
}

func (d *diffAVM) view(t *testing.T, name string) avm.Result {
	t.Helper()
	appArgs, err := EncodeArgsTEAL(name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return avm.Execute(d.prog, d.ledger, avm.TxContext{
		Sender: d.sender, AppID: d.appID, Args: appArgs, BudgetTxns: 8,
	})
}

func sameEVMResult(t *testing.T, label string, a, b evm.Result) {
	t.Helper()
	if (a.Err != nil) != (b.Err != nil) || a.Reverted != b.Reverted {
		t.Fatalf("%s: outcome differs: interp err=%v reverted=%v, precompiled err=%v reverted=%v",
			label, a.Err, a.Reverted, b.Err, b.Reverted)
	}
	if a.RevertMsg != b.RevertMsg {
		t.Fatalf("%s: revert message differs: %q vs %q", label, a.RevertMsg, b.RevertMsg)
	}
	if !bytes.Equal(a.ReturnData, b.ReturnData) {
		t.Fatalf("%s: return data differs: %x vs %x", label, a.ReturnData, b.ReturnData)
	}
	if len(a.Logs) != len(b.Logs) {
		t.Fatalf("%s: log count differs: %d vs %d", label, len(a.Logs), len(b.Logs))
	}
	for i := range a.Logs {
		if !reflect.DeepEqual(a.Logs[i].Topics, b.Logs[i].Topics) || !bytes.Equal(a.Logs[i].Data, b.Logs[i].Data) {
			t.Fatalf("%s: log %d differs: %+v vs %+v", label, i, a.Logs[i], b.Logs[i])
		}
	}
}

func sameAVMResult(t *testing.T, label string, a, b avm.Result) {
	t.Helper()
	if a.Approved != b.Approved || (a.Err != nil) != (b.Err != nil) {
		t.Fatalf("%s: outcome differs: interp approved=%v err=%v, precompiled approved=%v err=%v",
			label, a.Approved, a.Err, b.Approved, b.Err)
	}
	if !bytes.Equal(a.Return, b.Return) {
		t.Fatalf("%s: return differs: %x vs %x", label, a.Return, b.Return)
	}
	if !reflect.DeepEqual(a.Logs, b.Logs) {
		t.Fatalf("%s: logs differ: %v vs %v", label, a.Logs, b.Logs)
	}
}

func sameEVMState(t *testing.T, a, b *evm.MemState) {
	t.Helper()
	if !reflect.DeepEqual(a.Storage, b.Storage) {
		t.Fatalf("final EVM storage differs:\ninterp:      %v\nprecompiled: %v", a.Storage, b.Storage)
	}
	keys := map[chain.Address]bool{}
	for k := range a.Balances {
		keys[k] = true
	}
	for k := range b.Balances {
		keys[k] = true
	}
	for k := range keys {
		if a.GetBalance(k).Cmp(b.GetBalance(k)) != 0 {
			t.Fatalf("balance of %x differs: %v vs %v", k, a.GetBalance(k), b.GetBalance(k))
		}
	}
}

func sameAVMState(t *testing.T, a, b *avm.MemLedger) {
	t.Helper()
	if !reflect.DeepEqual(a.Globals, b.Globals) {
		t.Fatalf("final AVM globals differ:\ninterp:      %v\nprecompiled: %v", a.Globals, b.Globals)
	}
	if !reflect.DeepEqual(a.Balances, b.Balances) {
		t.Fatalf("final AVM balances differ: %v vs %v", a.Balances, b.Balances)
	}
}

// randValue generates a deterministic random argument of the given type.
func randValue(rng *chain.Rand, ty Type) Value {
	switch ty {
	case TUInt:
		return Uint64Value(uint64(rng.Intn(12)))
	case TBytes:
		n := rng.Intn(48)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return BytesValue(b)
	case TAddress:
		var a [8]byte
		for i := range a {
			a[i] = byte(rng.Intn(256))
		}
		return AddressValue(chain.AddressFromBytes(a[:]))
	default:
		panic("unsupported arg type " + ty.String())
	}
}

// diffScript returns the scripted happy path for a shipped contract; the
// sequence must exercise every API's success branch at least once so the
// precompiled lowering actually executes (randomized calls mostly revert).
func diffScript(t *testing.T, name string) []diffStep {
	t.Helper()
	pos := BytesValue([]byte("8FQFCXGV+"))
	data := BytesValue([]byte("did:pol:prover#loc"))
	wallet := AddressValue(chain.AddressFromBytes([]byte("wallet")))
	witness := AddressValue(chain.AddressFromBytes([]byte("witness")))
	switch name {
	case "pol-report":
		return []diffStep{
			{method: CtorMethodName, args: []Value{pos, Uint64Value(1), Uint64Value(10)}, mustPass: true},
			{method: "insert_data", args: []Value{data, Uint64Value(2)}, mustPass: true},
			{method: "insert_data", args: []Value{data, Uint64Value(2)}},              // duplicate DID
			{method: "verify", args: []Value{Uint64Value(2), wallet}, mustPass: true}, // unfunded branch
			{method: "insert_money", pay: 50, args: []Value{Uint64Value(50)}, mustPass: true},
			{method: "verify", args: []Value{Uint64Value(2), wallet}, mustPass: true}, // funded branch
			{method: "verify", args: []Value{Uint64Value(9), wallet}},                 // unknown DID
			{method: "close", mustPass: true},
		}
	case "pol-report-v2":
		return []diffStep{
			{method: CtorMethodName, args: []Value{pos, Uint64Value(1), Uint64Value(10), Uint64Value(5), Uint64Value(2000)}, mustPass: true},
			{method: "insert_data", args: []Value{data, Uint64Value(2)}, mustPass: true},
			{method: "insert_money", pay: 60, args: []Value{Uint64Value(60)}, mustPass: true},
			{method: "verify_with_witness", args: []Value{Uint64Value(2), wallet, witness}, mustPass: true},
			{method: "close_timeout"},                           // not expired yet
			{method: "close_timeout", ts: 3000, mustPass: true}, // past deadline
		}
	case "pol-verify":
		loc := []byte("8FQFCXGV+XX:48.8583,2.2944")
		nonce := []byte("nonce-0123456789abcdef")
		cid := []byte("bafybeigdyrztx6ufesvz2rqfgw4qy5ajn2jbjrl7yvnw3zqvqz6e2xlldi")
		h := polcrypto.Hash(loc, nonce, cid)
		return []diffStep{
			{method: CtorMethodName, args: []Value{BytesValue([]byte("8FQFCX"))}, mustPass: true},
			{method: "register", args: []Value{Uint64Value(7), BytesValue(h[:])}, mustPass: true},
			{method: "register", args: []Value{Uint64Value(7), BytesValue(h[:])}}, // duplicate DID
			{method: "check_in", args: []Value{Uint64Value(7), BytesValue(loc), BytesValue(nonce), BytesValue(cid), BytesValue([]byte("8FQFCXGV+XX"))}, mustPass: true},
			{method: "check_in", args: []Value{Uint64Value(7), BytesValue(loc), BytesValue([]byte("wrong")), BytesValue(cid), BytesValue([]byte("8FQFCXGV+XX"))}}, // commitment mismatch
			{method: "check_in", args: []Value{Uint64Value(7), BytesValue(loc), BytesValue(nonce), BytesValue(cid), BytesValue([]byte("9FXXXXXX+XX"))}},           // outside area
			{method: "check_in", args: []Value{Uint64Value(8), BytesValue(loc), BytesValue(nonce), BytesValue(cid), BytesValue([]byte("8FQFCXGV+XX"))}},           // unknown DID
		}
	default:
		t.Fatalf("no differential script for contract %q — add one when shipping a new .pol file", name)
		return nil
	}
}

// TestPrecompiledLoweringBitIdentical is the PR's proof obligation: for
// every shipped .pol contract the precompiled lowering is observationally
// identical to the interpreted one on both backends, and the two EVM
// engines agree on the precompiled code.
func TestPrecompiledLoweringBitIdentical(t *testing.T) {
	files, err := filepath.Glob("../../contracts/*.pol")
	if err != nil || len(files) == 0 {
		t.Fatalf("no contracts found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := ParseSource(string(src))
			if err != nil {
				t.Fatal(err)
			}
			interp, err := Compile(prog, Options{MaxBytesLen: 512})
			if err != nil {
				t.Fatalf("interpreted compile: %v", err)
			}
			// Re-parse: compilation must not depend on shared AST state.
			prog2, err := ParseSource(string(src))
			if err != nil {
				t.Fatal(err)
			}
			pre, err := Compile(prog2, Options{MaxBytesLen: 512, Precompiles: true})
			if err != nil {
				t.Fatalf("precompiled compile: %v", err)
			}

			steps := diffScript(t, prog.Name)
			rng := chain.NewRand(0x9c07)
			for _, api := range prog.APIs {
				for trial := 0; trial < 6; trial++ {
					args := make([]Value, len(api.Params))
					for i, p := range api.Params {
						args[i] = randValue(rng, p.Type)
					}
					var pay uint64
					if api.Pay != nil {
						pay = uint64(rng.Intn(40))
					}
					steps = append(steps, diffStep{method: api.Name, pay: pay, args: args})
				}
			}

			ei := newDiffEVM(interp.EVMCode, false)
			ep := newDiffEVM(pre.EVMCode, false)
			er := newDiffEVM(pre.EVMCode, true) // big.Int reference engine
			ai := newDiffAVM(interp.TEALProgram)
			ap := newDiffAVM(pre.TEALProgram)

			for i, step := range steps {
				label := fmt.Sprintf("step %d (%s)", i, step.method)
				ri := ei.run(t, interp, step)
				rp := ep.run(t, pre, step)
				rr := er.run(t, pre, step)
				if step.mustPass && (ri.Err != nil || ri.Reverted) {
					t.Fatalf("%s: scripted step reverted on interpreted EVM: %+v", label, ri)
				}
				sameEVMResult(t, label+" [evm interp vs pre]", ri, rp)
				sameEVMResult(t, label+" [evm pre vs ref]", rp, rr)

				ti := ai.run(t, interp, step)
				tp := ap.run(t, pre, step)
				if step.mustPass && !ti.Approved {
					t.Fatalf("%s: scripted step rejected on interpreted AVM: %v", label, ti.Err)
				}
				sameAVMResult(t, label+" [avm interp vs pre]", ti, tp)
			}

			for _, v := range prog.Views {
				label := fmt.Sprintf("view %s", v.Name)
				sameEVMResult(t, label, ei.view(t, v.Name), ep.view(t, v.Name))
				sameAVMResult(t, label, ai.view(t, v.Name), ap.view(t, v.Name))
			}

			sameEVMState(t, ei.state, ep.state)
			sameEVMState(t, ep.state, er.state)
			sameAVMState(t, ai.ledger, ap.ledger)
		})
	}
}
