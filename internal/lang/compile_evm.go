package lang

import (
	"fmt"
	"math/big"

	"agnopol/internal/evm"
	"agnopol/internal/polcrypto"
	"agnopol/internal/precompile"
)

// EVM backend.
//
// Memory layout of generated code:
//
//	0x00–0x3f  hash scratch (map-slot derivation, digests)
//	0x40       free-memory pointer
//	0x60–0x11f loop scratch: src(0x60) dst(0x80) len(0xa0) i(0xc0) tmp(0xe0,0x100)
//	0x120–     bump-allocated heap for bytes values
//
// Storage layout:
//
//	slot 0            deployed flag
//	slot 1+i          global i (bytes globals store 2·len+1; chunks at keccak(slot)+j)
//	keccak(key‖tag)   map entry marker for map with tag 0x100+index
//	                  (TUInt values store 2·v+1; TBytes store 2·len+1 with
//	                  chunks at keccak(marker-slot)+j)
//
// Bytes values live on the stack as an (offset, length) pair with length on
// top. The ABI is 4-byte selector (first 4 bytes of the method-name hash)
// followed by 32-byte head words; bytes arguments put a tail offset in the
// head and length+data in the tail, as in Solidity's ABI.

const (
	heapStart    = 0x120
	scratchSrc   = 0x60
	scratchDst   = 0x80
	scratchLen   = 0xa0
	scratchI     = 0xc0
	deployedSlot = 0
	mapTagBase   = 0x100
)

// Selector returns the 4-byte method selector for a name.
func Selector(name string) [4]byte {
	h := polcrypto.Hash([]byte("method:" + name))
	var s [4]byte
	copy(s[:], h[:4])
	return s
}

// CtorMethodName is the pseudo-method the chain invokes at deployment.
const CtorMethodName = "ctor"

type evmCompiler struct {
	p      *Program
	asm    *evm.Assembler
	params []Param
	seq    int
	err    error
	// pre lowers digest/equality/contains/sigok to precompile CALLs
	// (Options.Precompiles).
	pre bool
}

// CompileEVM lowers a checked program to EVM bytecode.
func CompileEVM(p *Program, opts Options) ([]byte, error) {
	c := &evmCompiler{p: p, asm: evm.NewAssembler(), pre: opts.Precompiles}
	c.emitEntry()
	c.emitCtor()
	for _, a := range p.APIs {
		c.emitAPI(a)
	}
	for _, v := range p.Views {
		c.emitView(v)
	}
	c.emitRevertSite()
	if c.err != nil {
		return nil, c.err
	}
	return c.asm.Assemble()
}

func (c *evmCompiler) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf("lang/evm: "+format, args...)
	}
}

func (c *evmCompiler) label(prefix string) string {
	c.seq++
	return fmt.Sprintf("%s_%d", prefix, c.seq)
}

func (c *evmCompiler) globalSlot(name string) uint64 {
	gi, err := c.p.globalIndex(name)
	if err != nil {
		c.fail("%v", err)
		return 0
	}
	return uint64(1 + gi)
}

func (c *evmCompiler) typeOf(e Expr) Type {
	ch := &checker{p: c.p, params: c.params}
	t := ch.typeOf(e, "codegen")
	if len(ch.errs) > 0 {
		c.fail("%v", ch.errs[0])
	}
	return t
}

// emitEntry sets up the free pointer and dispatches on the selector.
func (c *evmCompiler) emitEntry() {
	a := c.asm
	a.PushUint(heapStart).PushUint(0x40).Op(evm.MSTORE)
	// selector = calldata[0] >> 224
	a.PushUint(0).Op(evm.CALLDATALOAD).PushUint(224).Op(evm.SHR)
	dispatch := func(name, label string) {
		sel := Selector(name)
		a.Op(evm.DUP1).PushBytes(sel[:]).Op(evm.EQ).PushLabel(label).Op(evm.JUMPI)
	}
	dispatch(CtorMethodName, "m_ctor")
	for _, api := range c.p.APIs {
		dispatch(api.Name, "m_api_"+api.Name)
	}
	for _, v := range c.p.Views {
		dispatch(v.Name, "m_view_"+v.Name)
	}
	a.Jump("revert0")
}

func (c *evmCompiler) emitCtor() {
	a := c.asm
	c.params = c.p.Ctor.Params
	a.Label("m_ctor").Op(evm.POP)
	// Deploy-once guard.
	a.PushUint(deployedSlot).Op(evm.SLOAD).PushLabel("revert0").Op(evm.JUMPI)
	a.PushUint(1).PushUint(deployedSlot).Op(evm.SSTORE)
	// The constructor does not accept value.
	a.Op(evm.CALLVALUE).PushLabel("revert0").Op(evm.JUMPI)
	c.stmts(c.p.Ctor.Body)
	a.Op(evm.STOP)
}

func (c *evmCompiler) emitAPI(api *API) {
	a := c.asm
	c.params = api.Params
	a.Label("m_api_" + api.Name).Op(evm.POP)
	c.emitDeployedGuard()
	if api.Pay == nil {
		a.Op(evm.CALLVALUE).PushLabel("revert0").Op(evm.JUMPI)
	} else {
		c.expr(api.Pay)
		a.Op(evm.CALLVALUE, evm.EQ, evm.ISZERO).PushLabel("revert0").Op(evm.JUMPI)
	}
	c.stmts(api.Body)
	// Type checker guarantees every path returned; a trailing STOP is
	// unreachable but keeps the method well-terminated.
	a.Op(evm.STOP)
}

func (c *evmCompiler) emitView(v View) {
	a := c.asm
	c.params = nil
	a.Label("m_view_" + v.Name).Op(evm.POP)
	c.emitDeployedGuard()
	c.expr(v.Expr)
	c.emitReturnValue(c.typeOf(v.Expr))
}

func (c *evmCompiler) emitDeployedGuard() {
	c.asm.PushUint(deployedSlot).Op(evm.SLOAD, evm.ISZERO).PushLabel("revert0").Op(evm.JUMPI)
}

func (c *evmCompiler) emitRevertSite() {
	c.asm.Label("revert0").PushUint(0).PushUint(0).Op(evm.REVERT)
}

func (c *evmCompiler) stmts(body []Stmt) {
	for _, s := range body {
		c.stmt(s)
	}
}

//nolint:gocyclo // statement-by-statement code generation.
func (c *evmCompiler) stmt(s Stmt) {
	a := c.asm
	switch s := s.(type) {
	case *Assume, *Require:
		var cond Expr
		if as, ok := s.(*Assume); ok {
			cond = as.Cond
		} else {
			cond = s.(*Require).Cond
		}
		c.expr(cond)
		a.Op(evm.ISZERO).PushLabel("revert0").Op(evm.JUMPI)

	case *SetGlobal:
		slot := c.globalSlot(s.Name)
		if c.typeOf(s.Value) == TBytes {
			c.expr(s.Value) // [off, len]
			a.PushUint(slot)
			c.emitStoreBytesAtMarkerSlot() // consumes [off, len, slot]
		} else {
			c.expr(s.Value)
			a.PushUint(slot).Op(evm.SSTORE)
		}

	case *MapSet:
		mi, err := c.p.mapIndex(s.Map)
		if err != nil {
			c.fail("%v", err)
			return
		}
		vt := c.p.Maps[mi].Value
		c.expr(s.Key)
		c.emitMapBase(mi) // [base]
		if vt == TBytes {
			c.expr(s.Value) // [base, off, len]
			// Reorder to [off, len, base]: SWAP1 gives [base, len, off],
			// SWAP2 swaps off with base.
			a.Op(evm.SWAP1, evm.SWAP2)
			c.emitStoreBytesAtMarkerSlot()
		} else {
			c.expr(s.Value)                                  // [base, v]
			a.PushUint(1).Op(evm.SHL).PushUint(1).Op(evm.OR) // marker = v<<1|1
			a.Op(evm.SWAP1, evm.SSTORE)                      // SSTORE(key=base, value=marker)
		}

	case *MapDel:
		mi, err := c.p.mapIndex(s.Map)
		if err != nil {
			c.fail("%v", err)
			return
		}
		c.expr(s.Key)
		c.emitMapBase(mi) // [base]
		if c.p.Maps[mi].Value == TBytes {
			// len -> scratchLen, dataBase -> scratchDst, zero chunks.
			a.Op(evm.DUP1, evm.SLOAD).PushUint(1).Op(evm.SHR).PushUint(scratchLen).Op(evm.MSTORE)
			a.Op(evm.DUP1).PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.KECCAK256).PushUint(scratchDst).Op(evm.MSTORE)
			a.PushUint(0).Op(evm.SWAP1, evm.SSTORE) // zero the marker
			c.emitLoopZeroStorage()
		} else {
			a.PushUint(0).Op(evm.SWAP1, evm.SSTORE)
		}

	case *Transfer:
		// CALL pops gas, to, value, inOff, inSize, outOff, outSize.
		// Expressions are pure, so build the stack bottom-up: the four
		// zero memory args first, then value, to, and a zero gas stipend.
		a.PushUint(0).PushUint(0).PushUint(0).PushUint(0) // outSize outOff inSize inOff
		c.expr(s.Amount)                                  // [.., value]
		c.expr(s.To)                                      // [.., value, to]
		a.PushUint(0).Op(evm.CALL)                        // [success]
		a.Op(evm.ISZERO).PushLabel("revert0").Op(evm.JUMPI)

	case *If:
		elseL := c.label("else")
		endL := c.label("endif")
		c.expr(s.Cond)
		a.Op(evm.ISZERO).PushLabel(elseL).Op(evm.JUMPI)
		c.stmts(s.Then)
		if !terminates(s.Then) {
			a.Jump(endL)
		}
		a.Label(elseL)
		c.stmts(s.Else)
		a.Label(endL)

	case *Emit:
		topic := polcrypto.Hash([]byte("event:" + s.Event))
		if c.typeOf(s.Value) == TBytes {
			c.expr(s.Value) // [off, len]
			a.PushBytes(topic[:])
			a.Op(evm.SWAP2) // [topic, len, off]
			a.Op(evm.LOG1)
		} else {
			c.expr(s.Value)
			a.PushUint(0).Op(evm.MSTORE)
			a.PushBytes(topic[:]).PushUint(32).PushUint(0).Op(evm.LOG1)
		}

	case *Return:
		t := c.typeOf(s.Value)
		c.expr(s.Value)
		c.emitReturnValue(t)

	default:
		c.fail("unknown statement %T", s)
	}
}

// terminates reports whether every path of the block ends in Return.
func terminates(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *Return:
			return true
		case *If:
			if terminates(s.Then) && terminates(s.Else) {
				return true
			}
		}
	}
	return false
}

func (c *evmCompiler) emitReturnValue(t Type) {
	a := c.asm
	if t == TBytes {
		a.Op(evm.SWAP1, evm.RETURN) // RETURN(off, len)
		return
	}
	a.PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.RETURN)
}

// emitMapBase consumes [key] and leaves [base] = keccak(key ‖ tag).
func (c *evmCompiler) emitMapBase(mapIndex int) {
	a := c.asm
	a.PushUint(0).Op(evm.MSTORE)
	a.PushUint(uint64(mapTagBase + mapIndex)).PushUint(0x20).Op(evm.MSTORE)
	a.PushUint(0x40).PushUint(0).Op(evm.KECCAK256)
}

// emitStoreBytesAtMarkerSlot consumes [off, len, slot]: writes marker
// 2·len+1 at slot and the chunks at keccak(slot)+j.
func (c *evmCompiler) emitStoreBytesAtMarkerSlot() {
	a := c.asm
	// [off, len, slot]
	a.Op(evm.DUP2).PushUint(1).Op(evm.SHL).PushUint(1).Op(evm.OR) // [off,len,slot,marker]
	a.Op(evm.DUP2, evm.SSTORE)                                    // SSTORE(key=slot,value=marker); [off,len,slot]
	a.PushUint(0).Op(evm.MSTORE)                                  // mem[0]=slot; [off,len]
	a.PushUint(32).PushUint(0).Op(evm.KECCAK256)                  // [off,len,dataBase]
	a.PushUint(scratchDst).Op(evm.MSTORE)                         // [off,len]
	a.PushUint(scratchLen).Op(evm.MSTORE)                         // [off]
	a.PushUint(scratchSrc).Op(evm.MSTORE)                         // []
	c.emitLoopMemToStorage()
}

// emitLoadBytesAtMarkerSlot consumes [slot] and leaves [off, len].
func (c *evmCompiler) emitLoadBytesAtMarkerSlot() {
	a := c.asm
	// [slot]
	a.Op(evm.DUP1, evm.SLOAD).PushUint(1).Op(evm.SHR) // [slot, len]
	a.Op(evm.DUP1).PushUint(scratchLen).Op(evm.MSTORE)
	a.Op(evm.DUP1)
	c.emitAlloc()                                      // [slot, len, ptr]
	a.Op(evm.DUP1).PushUint(scratchDst).Op(evm.MSTORE) // dst = ptr
	a.Op(evm.DUP3).PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.KECCAK256)
	a.PushUint(scratchSrc).Op(evm.MSTORE) // src = dataBase slot
	a.Op(evm.SWAP2, evm.POP)              // [ptr, len]
	c.emitLoopStorageToMem()
}

// emitAlloc consumes [len] and leaves [ptr], bumping the free pointer by
// len rounded up to 32.
func (c *evmCompiler) emitAlloc() {
	a := c.asm
	a.PushUint(31).Op(evm.ADD).PushUint(32).Op(evm.SWAP1, evm.DIV).PushUint(32).Op(evm.MUL) // [rounded]
	a.PushUint(0x40).Op(evm.MLOAD)                                                          // [rounded, ptr]
	a.Op(evm.SWAP1)                                                                         // [ptr, rounded]
	a.Op(evm.DUP2, evm.ADD)                                                                 // [ptr, newFree]
	a.PushUint(0x40).Op(evm.MSTORE)
}

// loop emitters: all read src/dst/len from scratch and clobber scratchI.

func (c *evmCompiler) emitLoopHeader() (loop, end string) {
	a := c.asm
	loop, end = c.label("loop"), c.label("endloop")
	a.PushUint(0).PushUint(scratchI).Op(evm.MSTORE)
	a.Label(loop)
	// if i >= len: goto end
	a.PushUint(scratchLen).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD) // [len, i]
	a.Op(evm.LT, evm.ISZERO)                                              // i < len? LT(a=i,b=len)
	a.PushLabel(end).Op(evm.JUMPI)
	return loop, end
}

func (c *evmCompiler) emitLoopFooter(loop, end string) {
	a := c.asm
	a.PushUint(scratchI).Op(evm.MLOAD).PushUint(32).Op(evm.ADD).PushUint(scratchI).Op(evm.MSTORE)
	a.Jump(loop)
	a.Label(end)
}

// emitLoopMemToMem copies len bytes from mem[src] to mem[dst].
func (c *evmCompiler) emitLoopMemToMem() {
	a := c.asm
	loop, end := c.emitLoopHeader()
	a.PushUint(scratchSrc).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD).Op(evm.ADD, evm.MLOAD)
	a.PushUint(scratchDst).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD).Op(evm.ADD, evm.MSTORE)
	c.emitLoopFooter(loop, end)
}

// emitLoopMemToStorage writes mem[src..src+len) to slots dst + i/32.
func (c *evmCompiler) emitLoopMemToStorage() {
	a := c.asm
	loop, end := c.emitLoopHeader()
	a.PushUint(scratchSrc).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD).Op(evm.ADD, evm.MLOAD) // [value]
	a.PushUint(scratchDst).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD)
	a.PushUint(32).Op(evm.SWAP1, evm.DIV, evm.ADD) // [value, slot]
	a.Op(evm.SSTORE)
	c.emitLoopFooter(loop, end)
}

// emitLoopStorageToMem reads slots src + i/32 into mem[dst..dst+len).
func (c *evmCompiler) emitLoopStorageToMem() {
	a := c.asm
	loop, end := c.emitLoopHeader()
	a.PushUint(scratchSrc).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD)
	a.PushUint(32).Op(evm.SWAP1, evm.DIV, evm.ADD, evm.SLOAD) // [value]
	a.PushUint(scratchDst).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD).Op(evm.ADD, evm.MSTORE)
	c.emitLoopFooter(loop, end)
}

// emitLoopZeroStorage zeroes slots dst + i/32 for i in [0,len).
func (c *evmCompiler) emitLoopZeroStorage() {
	a := c.asm
	loop, end := c.emitLoopHeader()
	a.PushUint(0)
	a.PushUint(scratchDst).Op(evm.MLOAD).PushUint(scratchI).Op(evm.MLOAD)
	a.PushUint(32).Op(evm.SWAP1, evm.DIV, evm.ADD) // [0, slot]
	a.Op(evm.SSTORE)
	c.emitLoopFooter(loop, end)
}

//nolint:gocyclo // expression code generation dispatch.
func (c *evmCompiler) expr(e Expr) {
	a := c.asm
	switch e := e.(type) {
	case *Const:
		switch e.Type {
		case TUInt:
			a.PushUint(e.Uint)
		case TBool:
			if e.Bool {
				a.PushUint(1)
			} else {
				a.PushUint(0)
			}
		case TBytes:
			c.emitConstBytes(e.Bytes)
		default:
			c.fail("unsupported const type %s", e.Type)
		}

	case *Arg:
		if e.Index < 0 || e.Index >= len(c.params) {
			c.fail("arg index %d out of range", e.Index)
			return
		}
		head := uint64(4 + 32*e.Index)
		if c.params[e.Index].Type == TBytes {
			a.PushUint(head).Op(evm.CALLDATALOAD).PushUint(4).Op(evm.ADD) // [tailAbs]
			a.Op(evm.DUP1, evm.CALLDATALOAD)                              // [tailAbs, len]
			a.Op(evm.DUP1)
			c.emitAlloc()              // [tailAbs, len, ptr]
			a.Op(evm.SWAP2)            // [ptr, len, tailAbs]
			a.PushUint(32).Op(evm.ADD) // [ptr, len, src]
			a.Op(evm.DUP2, evm.SWAP1)  // [ptr, len, len, src]
			a.Op(evm.DUP4)             // [ptr, len, len, src, ptr]
			a.Op(evm.CALLDATACOPY)     // [ptr, len]
		} else {
			a.PushUint(head).Op(evm.CALLDATALOAD)
		}

	case *GlobalRef:
		slot := c.globalSlot(e.Name)
		gi, _ := c.p.globalIndex(e.Name)
		if c.p.Globals[gi].Type == TBytes {
			a.PushUint(slot)
			c.emitLoadBytesAtMarkerSlot()
		} else {
			a.PushUint(slot).Op(evm.SLOAD)
		}

	case *MapGet:
		mi, err := c.p.mapIndex(e.Map)
		if err != nil {
			c.fail("%v", err)
			return
		}
		c.expr(e.Key)
		c.emitMapBase(mi)
		if c.p.Maps[mi].Value == TBytes {
			c.emitLoadBytesAtMarkerSlot()
		} else {
			a.Op(evm.SLOAD).PushUint(1).Op(evm.SHR)
		}

	case *MapHas:
		mi, err := c.p.mapIndex(e.Map)
		if err != nil {
			c.fail("%v", err)
			return
		}
		c.expr(e.Key)
		c.emitMapBase(mi)
		a.Op(evm.SLOAD, evm.ISZERO, evm.ISZERO)

	case *Bin:
		c.emitBin(e)

	case *Not:
		c.expr(e.A)
		a.Op(evm.ISZERO)

	case *Balance:
		a.Op(evm.SELFBALANCE)
	case *Caller:
		a.Op(evm.CALLER)
	case *Paid:
		a.Op(evm.CALLVALUE)
	case *Now:
		a.Op(evm.TIMESTAMP)

	case *Digest:
		t := c.typeOf(e.A)
		if parts := c.digestParts(e, t); parts != nil {
			// Precompiled lowering with digest-over-concat fusion: hash the
			// concatenation's operands as one multi-range sha256 descriptor
			// CALL, skipping the concat allocations and word-copy loops
			// entirely. polcrypto.Hash is variadic over concatenation, so
			// the result is bit-identical to hashing the joined buffer.
			for _, part := range parts {
				c.expr(part) // [off_i, len_i] per part
			}
			c.emitPrecompileCall(precompile.IDSha256, len(parts), true) // [ptr, 32]
			return
		}
		c.expr(e.A)
		if t == TBytes {
			a.Op(evm.SWAP1, evm.KECCAK256) // [hash]
		} else {
			a.PushUint(0).Op(evm.MSTORE).PushUint(32).PushUint(0).Op(evm.KECCAK256)
		}
		// Box the hash into fresh memory as a 32-byte value.
		a.PushUint(32)
		c.emitAlloc()    // [hash, ptr]
		a.Op(evm.SWAP1)  // [ptr, hash]
		a.Op(evm.DUP2)   // [ptr, hash, ptr]
		a.Op(evm.MSTORE) // [ptr]
		a.PushUint(32)   // [ptr, 32]

	case *SigVerify:
		// Precompile-only: signature math has no interpreted lowering.
		if !c.pre {
			c.fail("sigok requires precompile lowering (Options.Precompiles)")
			return
		}
		c.expr(e.Pub)
		c.expr(e.Msg)
		c.expr(e.Sig) // [offP,lenP, offM,lenM, offS,lenS]
		c.emitPrecompileCall(precompile.IDEd25519Verify, 3, false)

	case *CellContains:
		if c.pre {
			c.expr(e.Cell)
			c.expr(e.Code) // [offC,lenC, offD,lenD]
			c.emitPrecompileCall(precompile.IDOLCContains, 2, false)
			return
		}
		// Interpreted lowering: cell ⊆ code[:len(cell)] via the same
		// hash-compare trick as bytes equality, guarded by a length check
		// (a too-short code reads zero-padded memory, but the guard ANDs
		// the comparison away).
		c.expr(e.Cell)                 // [cOff, cLen]
		a.Op(evm.DUP2, evm.DUP2)       // [cOff, cLen, cOff, cLen]
		a.Op(evm.SWAP1, evm.KECCAK256) // [cOff, cLen, hCell]
		a.Op(evm.SWAP2, evm.POP)       // [hCell, cLen]
		c.expr(e.Code)                 // [hCell, cLen, dOff, dLen]
		a.Op(evm.DUP3, evm.DUP2)       // [hCell, cLen, dOff, dLen, cLen, dLen]
		a.Op(evm.LT, evm.ISZERO)       // [hCell, cLen, dOff, dLen, le]  le = cLen<=dLen
		a.Op(evm.SWAP1, evm.POP)       // [hCell, cLen, dOff, le]
		a.Op(evm.SWAP2)                // [hCell, le, dOff, cLen]
		a.Op(evm.SWAP1)                // [hCell, le, cLen, dOff]
		a.Op(evm.KECCAK256)            // [hCell, le, hPrefix]
		a.Op(evm.SWAP1, evm.SWAP2)     // [le, hPrefix, hCell]
		a.Op(evm.EQ, evm.AND)          // [contains]

	default:
		c.fail("unknown expression %T", e)
	}
}

// digestParts returns the flattened ++ operands of a Digest argument when
// the precompiled sha256 lowering applies (bytes argument, precompiles on,
// fan-in within the descriptor bound), or nil to use the interpreted path.
func (c *evmCompiler) digestParts(e *Digest, t Type) []Expr {
	if !c.pre || t != TBytes {
		return nil
	}
	parts := flattenConcat(e.A)
	if len(parts) > maxDescriptorRanges {
		return nil
	}
	return parts
}

// maxDescriptorRanges mirrors the EVM interception's descriptor bound.
const maxDescriptorRanges = 16

// flattenConcat returns the leaves of a ++ tree in evaluation order.
func flattenConcat(e Expr) []Expr {
	if b, ok := e.(*Bin); ok && b.Op == OpConcat {
		return append(flattenConcat(b.A), flattenConcat(b.B)...)
	}
	return []Expr{e}
}

// emitPrecompileCall lowers a CALL to reserved precompile address id over k
// (offset, length) pairs already on the stack (oldest pair first, each with
// length on top). It allocates a 64k-byte descriptor block, stores the
// pairs, issues the CALL with the result written over the descriptor base,
// and jumps to the revert site if the CALL reports failure. Leaves
// [ptr, 32] when bytesResult (a bytes value like every other), else the
// result word itself.
func (c *evmCompiler) emitPrecompileCall(id byte, k int, bytesResult bool) {
	a := c.asm
	a.PushUint(uint64(64 * k))
	c.emitAlloc() // [o1,l1,…,ok,lk, D]
	for j := k - 1; j >= 0; j-- {
		// Stack: […, oj, lj, D] → […, D] with the pair stored at D+64j.
		a.Op(evm.SWAP1)                           // […, oj, D, lj]
		a.Op(evm.DUP2)                            // […, oj, D, lj, D]
		a.PushUint(uint64(64*j + 32)).Op(evm.ADD) // […, oj, D, lj, D+64j+32]
		a.Op(evm.MSTORE)                          // […, oj, D]
		a.Op(evm.SWAP1)                           // […, D, oj]
		a.Op(evm.DUP2)                            // […, D, oj, D]
		a.PushUint(uint64(64 * j)).Op(evm.ADD)    // […, D, oj, D+64j]
		a.Op(evm.MSTORE)                          // […, D]
	}
	a.PushUint(32)                                      // [D, outSize]
	a.Op(evm.DUP2)                                      // [D, 32, outOff=D]
	a.PushUint(uint64(64 * k))                          // [D, 32, D, inSize]
	a.Op(evm.DUP4)                                      // [D, 32, D, 64k, inOff=D]
	a.PushUint(0)                                       // value
	a.PushUint(uint64(id))                              // to: reserved low address
	a.PushUint(0)                                       // gas (the interception charges its own)
	a.Op(evm.CALL)                                      // [D, ok]
	a.Op(evm.ISZERO).PushLabel("revert0").Op(evm.JUMPI) // [D]
	if bytesResult {
		a.PushUint(32) // [ptr, 32]
	} else {
		a.Op(evm.MLOAD) // [word]
	}
}

func (c *evmCompiler) emitConstBytes(b []byte) {
	a := c.asm
	a.PushUint(uint64(len(b)))
	c.emitAlloc() // [ptr]
	for i := 0; i < len(b); i += 32 {
		chunk := make([]byte, 32)
		copy(chunk, b[i:])
		a.PushBytes(chunk)                             // [ptr, chunk]
		a.Op(evm.DUP2).PushUint(uint64(i)).Op(evm.ADD) // [ptr, chunk, off]
		a.Op(evm.MSTORE)
	}
	a.PushUint(uint64(len(b))) // [ptr, len]
}

//nolint:gocyclo // operator dispatch.
func (c *evmCompiler) emitBin(e *Bin) {
	a := c.asm
	ta := c.typeOf(e.A)
	if e.Op == OpConcat {
		c.emitConcat(e)
		return
	}
	if (e.Op == OpEq || e.Op == OpNe) && ta == TBytes {
		if c.pre {
			c.expr(e.A)
			c.expr(e.B) // [offA,lenA, offB,lenB]
			c.emitPrecompileCall(precompile.IDBytesEqual, 2, false)
			if e.Op == OpNe {
				a.Op(evm.ISZERO)
			}
			return
		}
		c.expr(e.A)                    // [offA, lenA]
		c.expr(e.B)                    // [offA, lenA, offB, lenB]
		a.Op(evm.SWAP1, evm.KECCAK256) // [offA, lenA, hB]
		a.Op(evm.SWAP2)                // [hB, lenA, offA]
		a.Op(evm.KECCAK256)            // [hB, hA]
		a.Op(evm.EQ)
		if e.Op == OpNe {
			a.Op(evm.ISZERO)
		}
		return
	}
	// Compile B first, then A, so noncommutative opcodes see A on top
	// (EVM SUB/DIV/LT/GT compute top-op-second).
	c.expr(e.B)
	c.expr(e.A)
	switch e.Op {
	case OpAdd:
		a.Op(evm.ADD)
	case OpSub:
		a.Op(evm.SUB)
	case OpMul:
		a.Op(evm.MUL)
	case OpDiv:
		a.Op(evm.DIV)
	case OpMod:
		a.Op(evm.MOD)
	case OpLt:
		a.Op(evm.LT)
	case OpGt:
		a.Op(evm.GT)
	case OpLe:
		a.Op(evm.GT, evm.ISZERO)
	case OpGe:
		a.Op(evm.LT, evm.ISZERO)
	case OpEq:
		a.Op(evm.EQ)
	case OpNe:
		a.Op(evm.EQ, evm.ISZERO)
	case OpAnd:
		a.Op(evm.AND)
	case OpOr:
		a.Op(evm.OR)
	default:
		c.fail("unsupported operator %s", e.Op)
	}
}

func (c *evmCompiler) emitConcat(e *Bin) {
	a := c.asm
	c.expr(e.A)                       // [offA, lenA]
	c.expr(e.B)                       // [offA, lenA, offB, lenB]
	a.Op(evm.DUP3, evm.DUP2, evm.ADD) // [offA, lenA, offB, lenB, total]
	a.Op(evm.DUP1)
	c.emitAlloc() // [offA, lenA, offB, lenB, total, ptr]
	// Copy A: src=offA dst=ptr len=lenA.
	a.Op(evm.DUP1).PushUint(scratchDst).Op(evm.MSTORE)
	a.Op(evm.DUP5).PushUint(scratchLen).Op(evm.MSTORE)
	a.Op(evm.DUP6).PushUint(scratchSrc).Op(evm.MSTORE)
	c.emitLoopMemToMem()
	// Copy B: src=offB dst=ptr+lenA len=lenB.
	a.Op(evm.DUP1, evm.DUP6, evm.ADD).PushUint(scratchDst).Op(evm.MSTORE)
	a.Op(evm.DUP3).PushUint(scratchLen).Op(evm.MSTORE)
	a.Op(evm.DUP4).PushUint(scratchSrc).Op(evm.MSTORE)
	c.emitLoopMemToMem()
	// Collapse [offA, lenA, offB, lenB, total, ptr] to [ptr, total]:
	// SWAP5 puts ptr at the bottom (dropping offA via POP), SWAP3 lifts
	// total into second position, then drop the rest.
	a.Op(evm.SWAP5, evm.POP) // [ptr, lenA, offB, lenB, total]
	a.Op(evm.SWAP3, evm.POP) // [ptr, total, offB, lenB]
	a.Op(evm.POP, evm.POP)   // [ptr, total]
}

// EncodeArgsEVM builds the calldata for a method call: 4-byte selector +
// head/tail ABI encoding of args.
func EncodeArgsEVM(method string, params []Param, args []Value) ([]byte, error) {
	if len(args) != len(params) {
		return nil, fmt.Errorf("lang: %s wants %d args, got %d", method, len(params), len(args))
	}
	sel := Selector(method)
	head := make([]byte, 0, 32*len(args))
	var tail []byte
	tailStart := 32 * len(args)
	for i, arg := range args {
		if arg.Type != params[i].Type {
			return nil, fmt.Errorf("lang: %s arg %d: want %s, got %s", method, i, params[i].Type, arg.Type)
		}
		var w [32]byte
		switch arg.Type {
		case TUInt:
			new(big.Int).SetUint64(arg.Uint).FillBytes(w[:])
		case TBool:
			if arg.Bool {
				w[31] = 1
			}
		case TAddress:
			copy(w[12:], arg.Addr[:])
		case TBytes:
			new(big.Int).SetUint64(uint64(tailStart + len(tail))).FillBytes(w[:])
			var lw [32]byte
			new(big.Int).SetUint64(uint64(len(arg.Bytes))).FillBytes(lw[:])
			tail = append(tail, lw[:]...)
			padded := len(arg.Bytes)
			if rem := padded % 32; rem != 0 {
				padded += 32 - rem
			}
			data := make([]byte, padded)
			copy(data, arg.Bytes)
			tail = append(tail, data...)
		default:
			return nil, fmt.Errorf("lang: unsupported arg type %s", arg.Type)
		}
		head = append(head, w[:]...)
	}
	out := append([]byte{}, sel[:]...)
	out = append(out, head...)
	out = append(out, tail...)
	return out, nil
}

// DecodeReturnEVM parses the return data of a call according to the
// declared return type.
func DecodeReturnEVM(t Type, data []byte) (Value, error) {
	switch t {
	case TUInt:
		if len(data) < 32 {
			return Value{}, fmt.Errorf("lang: short return data (%d bytes)", len(data))
		}
		return Uint64Value(new(big.Int).SetBytes(data[:32]).Uint64()), nil
	case TBool:
		if len(data) < 32 {
			return Value{}, fmt.Errorf("lang: short return data (%d bytes)", len(data))
		}
		return BoolValue(data[31] != 0), nil
	case TAddress:
		if len(data) < 32 {
			return Value{}, fmt.Errorf("lang: short return data (%d bytes)", len(data))
		}
		var a [20]byte
		copy(a[:], data[12:32])
		return AddressValue(a), nil
	case TBytes:
		return BytesValue(append([]byte(nil), data...)), nil
	default:
		return Value{}, fmt.Errorf("lang: unsupported return type %s", t)
	}
}
