package lang

import (
	"math/big"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

// counterProgram is a small contract exercising globals, maps (uint and
// bytes values), assumes, transfers, emits and views on both backends.
func counterProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("counter")
	p.DeclareGlobal("count", TUInt)
	p.DeclareGlobal("note", TBytes)
	p.DeclareMap("data", TUInt, TBytes)
	p.DeclareMap("scores", TUInt, TUInt)
	p.SetConstructor(
		[]Param{{Name: "start", Type: TUInt}, {Name: "note", Type: TBytes}},
		&SetGlobal{Name: "count", Value: A(0)},
		&SetGlobal{Name: "note", Value: A(1)},
	)
	p.AddAPI(&API{
		Name:    "bump",
		Params:  []Param{{Name: "by", Type: TUInt}},
		Returns: TUInt,
		Body: []Stmt{
			&Assume{Cond: Gt(A(0), U(0)), Msg: "by > 0"},
			&SetGlobal{Name: "count", Value: Add(G("count"), A(0))},
			&Return{Value: G("count")},
		},
	})
	p.AddAPI(&API{
		Name:    "put",
		Params:  []Param{{Name: "k", Type: TUInt}, {Name: "v", Type: TBytes}},
		Returns: TBool,
		Body: []Stmt{
			&Assume{Cond: &Not{A: &MapHas{Map: "data", Key: A(0)}}, Msg: "fresh key"},
			&MapSet{Map: "data", Key: A(0), Value: A(1)},
			&MapSet{Map: "scores", Key: A(0), Value: U(7)},
			&Return{Value: True},
		},
	})
	p.AddAPI(&API{
		Name:    "get",
		Params:  []Param{{Name: "k", Type: TUInt}},
		Returns: TBytes,
		Body: []Stmt{
			&Assume{Cond: &MapHas{Map: "data", Key: A(0)}, Msg: "key present"},
			&Return{Value: Concat(Bs("v="), &MapGet{Map: "data", Key: A(0)})},
		},
	})
	p.AddAPI(&API{
		Name:    "fund",
		Params:  []Param{{Name: "amount", Type: TUInt}},
		Returns: TUInt,
		Pay:     A(0),
		Body: []Stmt{
			&Assume{Cond: Gt(A(0), U(0)), Msg: "positive deposit"},
			&Return{Value: &Balance{}},
		},
	})
	p.AddAPI(&API{
		Name:    "payout",
		Params:  []Param{{Name: "to", Type: TAddress}},
		Returns: TUInt,
		Body: []Stmt{
			&If{
				Cond: Ge(&Balance{}, U(10)),
				Then: []Stmt{
					&Transfer{Amount: U(10), To: A(0)},
					&Emit{Event: "paid", Value: U(10)},
					&Return{Value: U(10)},
				},
				Else: []Stmt{&Return{Value: U(0)}},
			},
		},
	})
	p.AddAPI(&API{
		Name:    "close",
		Params:  []Param{{Name: "to", Type: TAddress}},
		Returns: TUInt,
		Body: []Stmt{
			&Transfer{Amount: &Balance{}, To: A(0)},
			&Return{Value: U(1)},
		},
	})
	p.AddView("getCount", TUInt, G("count"))
	p.AddView("getNote", TBytes, G("note"))
	return p
}

func compileCounter(t *testing.T) *Compiled {
	t.Helper()
	c, err := Compile(counterProgram(t), Options{})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

// evmHarness drives compiled EVM code the way the chain simulator will.
type evmHarness struct {
	t     *testing.T
	code  []byte
	state *evm.MemState
	self  chain.Address
	from  chain.Address
}

func newEVMHarness(t *testing.T, c *Compiled) *evmHarness {
	t.Helper()
	h := &evmHarness{
		t:     t,
		code:  c.EVMCode,
		state: evm.NewMemState(),
		self:  chain.AddressFromBytes([]byte("contract")),
		from:  chain.AddressFromBytes([]byte("alice")),
	}
	h.state.AddBalance(h.from, big.NewInt(1_000_000))
	return h
}

func (h *evmHarness) call(method string, params []Param, value uint64, args ...Value) evm.Result {
	h.t.Helper()
	data, err := EncodeArgsEVM(method, params, args)
	if err != nil {
		h.t.Fatalf("encode %s: %v", method, err)
	}
	v := new(big.Int).SetUint64(value)
	if value > 0 {
		h.state.SubBalance(h.from, v)
		h.state.AddBalance(h.self, v)
	}
	res := evm.Execute(evm.Context{
		State: h.state, Caller: h.from, Address: h.self,
		Value: v, CallData: data, GasLimit: 10_000_000,
		BlockNumber: 1, Timestamp: 1000,
	}, h.code)
	if (res.Err != nil || res.Reverted) && value > 0 {
		h.state.AddBalance(h.from, v)
		h.state.SubBalance(h.self, v)
	}
	return res
}

func TestEVMBackendEndToEnd(t *testing.T) {
	c := compileCounter(t)
	h := newEVMHarness(t, c)
	ctorParams := c.Program.Ctor.Params

	res := h.call(CtorMethodName, ctorParams, 0, Uint64Value(5), BytesValue([]byte("hello world, this is a longer note spanning multiple words")))
	if res.Err != nil || res.Reverted {
		t.Fatalf("ctor failed: %+v", res)
	}
	deployGas := res.GasUsed
	if deployGas == 0 {
		t.Fatal("ctor consumed no gas")
	}

	// Second deploy must be rejected.
	res = h.call(CtorMethodName, ctorParams, 0, Uint64Value(5), BytesValue([]byte("x")))
	if !res.Reverted && res.Err == nil {
		t.Fatal("second ctor should revert")
	}

	bump := c.Program.FindAPI("bump")
	res = h.call("bump", bump.Params, 0, Uint64Value(3))
	if res.Err != nil || res.Reverted {
		t.Fatalf("bump failed: %+v", res)
	}
	got, err := DecodeReturnEVM(TUInt, res.ReturnData)
	if err != nil || got.Uint != 8 {
		t.Fatalf("bump returned %v (err %v), want 8", got, err)
	}

	// Assume violation reverts.
	res = h.call("bump", bump.Params, 0, Uint64Value(0))
	if !res.Reverted && res.Err == nil {
		t.Fatal("bump(0) should revert on assume")
	}

	put := c.Program.FindAPI("put")
	payload := []byte("proofHash-signedProof-0xwallet-nonce42-bafyCID0123456789")
	res = h.call("put", put.Params, 0, Uint64Value(99), BytesValue(payload))
	if res.Err != nil || res.Reverted {
		t.Fatalf("put failed: %+v", res)
	}
	// Duplicate key rejected.
	res = h.call("put", put.Params, 0, Uint64Value(99), BytesValue(payload))
	if !res.Reverted && res.Err == nil {
		t.Fatal("duplicate put should revert")
	}

	get := c.Program.FindAPI("get")
	res = h.call("get", get.Params, 0, Uint64Value(99))
	if res.Err != nil || res.Reverted {
		t.Fatalf("get failed: %+v", res)
	}
	want := "v=" + string(payload)
	if string(res.ReturnData) != want {
		t.Fatalf("get returned %q, want %q", res.ReturnData, want)
	}

	fund := c.Program.FindAPI("fund")
	res = h.call("fund", fund.Params, 25, Uint64Value(25))
	if res.Err != nil || res.Reverted {
		t.Fatalf("fund failed: %+v", res)
	}
	bal, err := DecodeReturnEVM(TUInt, res.ReturnData)
	if err != nil || bal.Uint != 25 {
		t.Fatalf("fund returned balance %v, want 25", bal)
	}
	// Paying a different amount than declared reverts.
	res = h.call("fund", fund.Params, 7, Uint64Value(25))
	if !res.Reverted && res.Err == nil {
		t.Fatal("fund with mismatched value should revert")
	}

	payout := c.Program.FindAPI("payout")
	var bob [20]byte
	copy(bob[:], []byte("bob-0000000000000000"))
	res = h.call("payout", payout.Params, 0, AddressValue(bob))
	if res.Err != nil || res.Reverted {
		t.Fatalf("payout failed: %+v", res)
	}
	v, _ := DecodeReturnEVM(TUInt, res.ReturnData)
	if v.Uint != 10 {
		t.Fatalf("payout returned %d, want 10", v.Uint)
	}
	if got := h.state.GetBalance(chain.Address(bob)).Uint64(); got != 10 {
		t.Fatalf("bob balance %d, want 10", got)
	}
	if len(res.Logs) != 1 {
		t.Fatalf("payout should emit 1 log, got %d", len(res.Logs))
	}

	closeAPI := c.Program.FindAPI("close")
	res = h.call("close", closeAPI.Params, 0, AddressValue(bob))
	if res.Err != nil || res.Reverted {
		t.Fatalf("close failed: %+v", res)
	}
	if got := h.state.GetBalance(h.self).Uint64(); got != 0 {
		t.Fatalf("contract balance %d after close, want 0", got)
	}

	// Views.
	viewData, _ := EncodeArgsEVM("getCount", nil, nil)
	vres := evm.Execute(evm.Context{
		State: h.state, Caller: h.from, Address: h.self,
		Value: new(big.Int), CallData: viewData, GasLimit: 1_000_000,
	}, h.code)
	if vres.Err != nil || vres.Reverted {
		t.Fatalf("view failed: %+v", vres)
	}
	cv, _ := DecodeReturnEVM(TUInt, vres.ReturnData)
	if cv.Uint != 8 {
		t.Fatalf("getCount view = %d, want 8", cv.Uint)
	}
}

// tealHarness drives the compiled TEAL the way the Algorand simulator will.
type tealHarness struct {
	t      *testing.T
	c      *Compiled
	ledger *avm.MemLedger
	appID  uint64
	sender chain.Address
}

func newTEALHarness(t *testing.T, c *Compiled) *tealHarness {
	t.Helper()
	h := &tealHarness{
		t: t, c: c,
		ledger: avm.NewMemLedger(),
		appID:  7,
		sender: chain.AddressFromBytes([]byte("alice")),
	}
	h.ledger.Balances[h.sender] = 1_000_000
	// The app escrow keeps the network minimum balance, which the
	// compiled balance() reads net of (the connector funds this at
	// deployment).
	h.ledger.Balances[h.ledger.AppAddress(h.appID)] = avm.MinBalanceValue
	return h
}

func (h *tealHarness) call(method string, params []Param, pay uint64, args ...Value) avm.Result {
	h.t.Helper()
	var appArgs [][]byte
	var err error
	if method == CtorMethodName {
		appArgs, err = EncodeArgsTEAL("", params, args)
	} else {
		appArgs, err = EncodeArgsTEAL(method, params, args)
	}
	if err != nil {
		h.t.Fatalf("encode %s: %v", method, err)
	}
	appID := h.appID
	if method == CtorMethodName {
		appID = 0 // creation call
	}
	if pay > 0 {
		if err := h.ledger.Pay(h.sender, h.ledger.AppAddress(h.appID), pay); err != nil {
			h.t.Fatalf("group payment: %v", err)
		}
	}
	res := avm.Execute(h.c.TEALProgram, h.ledger, avm.TxContext{
		Sender: h.sender, AppID: appID, Args: appArgs,
		PayAmount: pay, BudgetTxns: 2,
	})
	// Creation executes under AppID 0 in `txn ApplicationID` but state
	// writes must target the real app; our generated constructor only
	// writes via app_global_put with AppID from context, so re-run is not
	// needed — the simulator passes the allocated ID. Mirror that here.
	return res
}

func TestTEALBackendEndToEnd(t *testing.T) {
	c := compileCounter(t)
	h := newTEALHarness(t, c)

	// Creation: AppID must be 0 for the create path but writes must land
	// on the allocated app. The real simulator allocates the ID before
	// executing; emulate by running creation with the allocated ID but
	// OnCompletion create semantics. Our generated code branches on
	// ApplicationID==0, so run it with AppID 0 and then move the state.
	ctorArgs, err := EncodeArgsTEAL("", c.Program.Ctor.Params,
		[]Value{Uint64Value(5), BytesValue([]byte("note"))})
	if err != nil {
		t.Fatal(err)
	}
	res := avm.Execute(c.TEALProgram, h.ledger, avm.TxContext{
		Sender: h.sender, AppID: 0, Args: ctorArgs, BudgetTxns: 2,
	})
	if !res.Approved {
		t.Fatalf("creation rejected: %v", res.Err)
	}
	// Move creation-time state from app 0 to the allocated ID, as the
	// chain simulator does.
	h.ledger.Globals[h.appID] = h.ledger.Globals[0]
	delete(h.ledger.Globals, 0)

	bump := c.Program.FindAPI("bump")
	r := h.call("bump", bump.Params, 0, Uint64Value(3))
	if !r.Approved {
		t.Fatalf("bump rejected: %v", r.Err)
	}
	got, err := DecodeReturnTEAL(TUInt, r.Return)
	if err != nil || got.Uint != 8 {
		t.Fatalf("bump returned %v (err %v), want 8", got, err)
	}

	r = h.call("bump", bump.Params, 0, Uint64Value(0))
	if r.Approved {
		t.Fatal("bump(0) should be rejected")
	}

	put := c.Program.FindAPI("put")
	payload := []byte("proof-data")
	r = h.call("put", put.Params, 0, Uint64Value(99), BytesValue(payload))
	if !r.Approved {
		t.Fatalf("put rejected: %v", r.Err)
	}
	r = h.call("put", put.Params, 0, Uint64Value(99), BytesValue(payload))
	if r.Approved {
		t.Fatal("duplicate put should be rejected")
	}

	get := c.Program.FindAPI("get")
	r = h.call("get", get.Params, 0, Uint64Value(99))
	if !r.Approved {
		t.Fatalf("get rejected: %v", r.Err)
	}
	if string(r.Return) != "v="+string(payload) {
		t.Fatalf("get returned %q", r.Return)
	}

	fund := c.Program.FindAPI("fund")
	r = h.call("fund", fund.Params, 25, Uint64Value(25))
	if !r.Approved {
		t.Fatalf("fund rejected: %v", r.Err)
	}
	bal, _ := DecodeReturnTEAL(TUInt, r.Return)
	if bal.Uint != 25 {
		t.Fatalf("fund returned balance %d, want 25", bal.Uint)
	}
	r = h.call("fund", fund.Params, 7, Uint64Value(25))
	if r.Approved {
		t.Fatal("mismatched payment should be rejected")
	}

	payout := c.Program.FindAPI("payout")
	var bob [20]byte
	copy(bob[:], []byte("bob"))
	r = h.call("payout", payout.Params, 0, AddressValue(bob))
	if !r.Approved {
		t.Fatalf("payout rejected: %v", r.Err)
	}
	if got := h.ledger.Balances[chain.Address(bob)]; got != 10 {
		t.Fatalf("bob balance %d, want 10", got)
	}

	closeAPI := c.Program.FindAPI("close")
	r = h.call("close", closeAPI.Params, 0, AddressValue(bob))
	if !r.Approved {
		t.Fatalf("close rejected: %v", r.Err)
	}
	if got := h.ledger.Balances[h.ledger.AppAddress(h.appID)]; got != avm.MinBalanceValue {
		t.Fatalf("app balance %d after close, want the locked minimum %d", got, avm.MinBalanceValue)
	}

	// View via simulation.
	viewArgs, _ := EncodeArgsTEAL("view:getCount", nil, nil)
	r = avm.Execute(c.TEALProgram, h.ledger, avm.TxContext{
		Sender: h.sender, AppID: h.appID, Args: viewArgs, BudgetTxns: 2,
	})
	if !r.Approved {
		t.Fatalf("view rejected: %v", r.Err)
	}
	cv, _ := DecodeReturnTEAL(TUInt, r.Return)
	if cv.Uint != 8 {
		t.Fatalf("getCount view = %d, want 8", cv.Uint)
	}
}
