package lang

import (
	"math/big"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/evm"
)

// TestAnalysisIsUpperBoundEVM: the conservative analysis must dominate the
// gas actually consumed by executions within the declared Bytes bound —
// that is what "conservative" means in Fig. 5.1.
func TestAnalysisIsUpperBoundEVM(t *testing.T) {
	c, err := Compile(counterProgram(t), Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MethodCost{}
	for _, m := range c.Analysis.Methods {
		byName[m.Name] = m
	}

	h := newEVMHarness(t, c)
	big512 := make([]byte, 512)
	for i := range big512 {
		big512[i] = byte(i%250) + 1
	}

	type call struct {
		method string
		params []Param
		value  uint64
		args   []Value
	}
	ctor := call{CtorMethodName, c.Program.Ctor.Params, 0, []Value{Uint64Value(5), BytesValue(big512)}}
	calls := []call{
		{"bump", c.Program.FindAPI("bump").Params, 0, []Value{Uint64Value(3)}},
		{"put", c.Program.FindAPI("put").Params, 0, []Value{Uint64Value(9), BytesValue(big512)}},
		{"get", c.Program.FindAPI("get").Params, 0, []Value{Uint64Value(9)}},
		{"fund", c.Program.FindAPI("fund").Params, 25, []Value{Uint64Value(25)}},
	}

	res := h.call(ctor.method, ctor.params, ctor.value, ctor.args...)
	if res.Err != nil || res.Reverted {
		t.Fatalf("ctor failed: %+v", res)
	}
	ctorCost := byName["ctor"]
	if res.GasUsed > ctorCost.EVMGas {
		t.Fatalf("ctor used %d gas, analysis bound %d", res.GasUsed, ctorCost.EVMGas)
	}

	for _, cl := range calls {
		res := h.call(cl.method, cl.params, cl.value, cl.args...)
		if res.Err != nil || res.Reverted {
			t.Fatalf("%s failed: %+v", cl.method, res)
		}
		bound := byName[cl.method].EVMGas
		if res.GasUsed > bound {
			t.Fatalf("%s used %d gas, analysis bound %d", cl.method, res.GasUsed, bound)
		}
	}
}

// TestAnalysisIsUpperBoundAVM: same property for the TEAL backend's opcode
// budget.
func TestAnalysisIsUpperBoundAVM(t *testing.T) {
	c, err := Compile(counterProgram(t), Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MethodCost{}
	for _, m := range c.Analysis.Methods {
		byName[m.Name] = m
	}
	led := avm.NewMemLedger()
	sender := chain.AddressFromBytes([]byte("s"))
	led.Balances[sender] = 1_000_000
	led.Balances[led.AppAddress(7)] = avm.MinBalanceValue

	ctorArgs, err := EncodeArgsTEAL("", c.Program.Ctor.Params, []Value{Uint64Value(5), BytesValue([]byte("note"))})
	if err != nil {
		t.Fatal(err)
	}
	res := avm.Execute(c.TEALProgram, led, avm.TxContext{Sender: sender, AppID: 7, CreateMode: true, Args: ctorArgs, BudgetTxns: 4})
	if !res.Approved {
		t.Fatalf("ctor rejected: %v", res.Err)
	}
	if res.Cost > byName["ctor"].AVMCost {
		t.Fatalf("ctor cost %d, bound %d", res.Cost, byName["ctor"].AVMCost)
	}

	bump := c.Program.FindAPI("bump")
	args, err := EncodeArgsTEAL("bump", bump.Params, []Value{Uint64Value(3)})
	if err != nil {
		t.Fatal(err)
	}
	res = avm.Execute(c.TEALProgram, led, avm.TxContext{Sender: sender, AppID: 7, Args: args, BudgetTxns: 4})
	if !res.Approved {
		t.Fatalf("bump rejected: %v", res.Err)
	}
	if res.Cost > byName["bump"].AVMCost {
		t.Fatalf("bump cost %d, bound %d", res.Cost, byName["bump"].AVMCost)
	}
}

func TestAnalysisDeployGasCoversActualDeployment(t *testing.T) {
	c, err := Compile(counterProgram(t), Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct what the chain charges: intrinsic over code+ctor
	// calldata, deposit, plus ctor execution.
	ctorData, err := EncodeArgsEVM(CtorMethodName, c.Program.Ctor.Params,
		[]Value{Uint64Value(5), BytesValue(make([]byte, 512))})
	if err != nil {
		t.Fatal(err)
	}
	payload := append(append([]byte{0, 0, 0, 0}, c.EVMCode...), ctorData...)
	intrinsic := evm.IntrinsicGas(payload, true)
	deposit := uint64(len(c.EVMCode)) * evm.GasCodeDeposit

	st := evm.NewMemState()
	res := evm.Execute(evm.Context{
		State: st, Caller: chain.AddressFromBytes([]byte("d")),
		Address: chain.AddressFromBytes([]byte("c")),
		Value:   new(big.Int), CallData: ctorData, GasLimit: 10_000_000,
	}, c.EVMCode)
	if res.Err != nil || res.Reverted {
		t.Fatalf("ctor exec failed: %+v", res)
	}
	actual := intrinsic + deposit + res.GasUsed
	if actual > c.Analysis.EVMDeployGas {
		t.Fatalf("actual deploy gas %d exceeds analysis %d", actual, c.Analysis.EVMDeployGas)
	}
}

func TestAnalysisStringOutput(t *testing.T) {
	c, err := Compile(counterProgram(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := c.Analysis.String()
	for _, want := range []string{"Conservative analysis", "ctor", "bump", "view"} {
		if !containsStr(s, want) {
			t.Fatalf("analysis output missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
