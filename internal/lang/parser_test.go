package lang

import (
	"bytes"
	"testing"
)

// polSource is the thesis contract in the textual syntax — the index.rsh
// analogue. It must compile to exactly the artifacts the embedded builder
// produces (asserted below against internal/core's program shape).
const polSource = `
// The proof-of-location report contract (§4.1).
contract "pol-report" {
  global position: Bytes
  global creator: Address
  global creatorDid: UInt
  global availableSits: UInt
  global reward: UInt
  map easy_map: UInt -> Bytes

  ctor(position_: Bytes, did: UInt, rewardPerProver: UInt) {
    set position = position_
    set creator = caller()
    set creatorDid = did
    set reward = rewardPerProver
    set availableSits = 4
  }

  api insert_data(data: Bytes, did: UInt): UInt {
    assume(availableSits > 0, "contract is full")
    assume(!has(easy_map, did), "DID already attached")
    easy_map[did] = data
    set availableSits = availableSits - 1
    emit reportData(did)
    return availableSits
  }

  api insert_money(money: UInt): UInt pay(money) {
    assume(money > 0, "deposit must be positive")
    return balance()
  }

  api verify(did: UInt, walletAddress: Address): Address {
    assume(has(easy_map, did), "no data for DID")
    if balance() >= reward {
      transfer reward to walletAddress
      delete easy_map[did]
      emit reportVerification(did)
      return walletAddress
    } else {
      emit issueDuringVerification(did)
      return walletAddress
    }
  }

  api close(): UInt {
    assume(caller() == creator, "only creator closes")
    transfer balance() to creator
    return 1
  }

  view getCtcBalance: UInt = balance()
  view getReward: UInt = reward
  view getAvailableSits: UInt = availableSits
  view getPosition: Bytes = position
}
`

func TestParsePoLSourceCompiles(t *testing.T) {
	prog, err := ParseSource(polSource)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "pol-report" {
		t.Fatalf("name %q", prog.Name)
	}
	c, err := Compile(prog, Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	if c.Report.Failures != 0 {
		t.Fatalf("verification failures:\n%s", c.Report)
	}
	if len(prog.APIs) != 4 || len(prog.Views) != 4 || len(prog.Globals) != 5 {
		t.Fatalf("shape: %d APIs %d views %d globals", len(prog.APIs), len(prog.Views), len(prog.Globals))
	}
}

// TestParsedSourceMatchesBuilder: the textual contract and the
// builder-built twin (core.BuildPoLProgram's shape, reconstructed here)
// must compile to byte-identical backends.
func TestParsedSourceMatchesBuilder(t *testing.T) {
	parsed, err := ParseSource(polSource)
	if err != nil {
		t.Fatal(err)
	}
	built := builderTwin()
	cp, err := Compile(parsed, Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Compile(built, Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp.EVMCode, cb.EVMCode) {
		t.Fatalf("EVM bytecode differs: %d vs %d bytes", len(cp.EVMCode), len(cb.EVMCode))
	}
	if cp.TEALSource != cb.TEALSource {
		t.Fatal("TEAL source differs")
	}
	if cp.Report.Checked != cb.Report.Checked {
		t.Fatalf("theorem counts differ: %d vs %d", cp.Report.Checked, cb.Report.Checked)
	}
}

// builderTwin reconstructs the same program with the embedded builder.
func builderTwin() *Program {
	p := NewProgram("pol-report")
	p.DeclareGlobal("position", TBytes)
	p.DeclareGlobal("creator", TAddress)
	p.DeclareGlobal("creatorDid", TUInt)
	p.DeclareGlobal("availableSits", TUInt)
	p.DeclareGlobal("reward", TUInt)
	p.DeclareMap("easy_map", TUInt, TBytes)
	p.SetConstructor(
		[]Param{
			{Name: "position_", Type: TBytes},
			{Name: "did", Type: TUInt},
			{Name: "rewardPerProver", Type: TUInt},
		},
		&SetGlobal{Name: "position", Value: A(0)},
		&SetGlobal{Name: "creator", Value: &Caller{}},
		&SetGlobal{Name: "creatorDid", Value: A(1)},
		&SetGlobal{Name: "reward", Value: A(2)},
		&SetGlobal{Name: "availableSits", Value: U(4)},
	)
	p.AddAPI(&API{
		Name:    "insert_data",
		Params:  []Param{{Name: "data", Type: TBytes}, {Name: "did", Type: TUInt}},
		Returns: TUInt,
		Body: []Stmt{
			&Assume{Cond: Gt(G("availableSits"), U(0)), Msg: "contract is full"},
			&Assume{Cond: &Not{A: &MapHas{Map: "easy_map", Key: A(1)}}, Msg: "DID already attached"},
			&MapSet{Map: "easy_map", Key: A(1), Value: A(0)},
			&SetGlobal{Name: "availableSits", Value: Sub(G("availableSits"), U(1))},
			&Emit{Event: "reportData", Value: A(1)},
			&Return{Value: G("availableSits")},
		},
	})
	p.AddAPI(&API{
		Name:    "insert_money",
		Params:  []Param{{Name: "money", Type: TUInt}},
		Returns: TUInt,
		Pay:     A(0),
		Body: []Stmt{
			&Assume{Cond: Gt(A(0), U(0)), Msg: "deposit must be positive"},
			&Return{Value: &Balance{}},
		},
	})
	p.AddAPI(&API{
		Name:    "verify",
		Params:  []Param{{Name: "did", Type: TUInt}, {Name: "walletAddress", Type: TAddress}},
		Returns: TAddress,
		Body: []Stmt{
			&Assume{Cond: &MapHas{Map: "easy_map", Key: A(0)}, Msg: "no data for DID"},
			&If{
				Cond: Ge(&Balance{}, G("reward")),
				Then: []Stmt{
					&Transfer{Amount: G("reward"), To: A(1)},
					&MapDel{Map: "easy_map", Key: A(0)},
					&Emit{Event: "reportVerification", Value: A(0)},
					&Return{Value: A(1)},
				},
				Else: []Stmt{
					&Emit{Event: "issueDuringVerification", Value: A(0)},
					&Return{Value: A(1)},
				},
			},
		},
	})
	p.AddAPI(&API{
		Name:    "close",
		Params:  []Param{},
		Returns: TUInt,
		Body: []Stmt{
			&Assume{Cond: Eq(&Caller{}, G("creator")), Msg: "only creator closes"},
			&Transfer{Amount: &Balance{}, To: G("creator")},
			&Return{Value: U(1)},
		},
	})
	p.AddView("getCtcBalance", TUInt, &Balance{})
	p.AddView("getReward", TUInt, G("reward"))
	p.AddView("getAvailableSits", TUInt, G("availableSits"))
	p.AddView("getPosition", TBytes, G("position"))
	return p
}

func TestParsePrecedence(t *testing.T) {
	src := `
contract "prec" {
  api f(a: UInt, b: UInt, c: UInt): Bool {
    return a + b * c == a + (b * c) && !(a > b)
  }
  ctor() {}
}
`
	prog, err := ParseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	// a + b * c must parse as a + (b*c): the two sides of == are
	// structurally identical.
	ret := prog.APIs[0].Body[0].(*Return)
	and := ret.Value.(*Bin)
	if and.Op != OpAnd {
		t.Fatalf("top operator %v", and.Op)
	}
	eq := and.A.(*Bin)
	if eq.Op != OpEq || !exprEqual(eq.A, eq.B) {
		t.Fatalf("precedence broken: %s vs %s", exprString(eq.A), exprString(eq.B))
	}
}

func TestParseErrorsSurface(t *testing.T) {
	cases := map[string]string{
		"missing contract":  `global x: UInt`,
		"bad type":          `contract "x" { global g: Float ctor() {} }`,
		"undefined name":    `contract "x" { ctor() {} api f(): UInt { return zzz } }`,
		"assign param":      `contract "x" { ctor(a: UInt) { set a = 1 } }`,
		"unterminated":      `contract "x" { ctor() {`,
		"duplicate ctor":    `contract "x" { ctor() {} ctor() {} }`,
		"trailing garbage":  `contract "x" { ctor() {} } extra`,
		"unknown statement": `contract "x" { ctor() { frobnicate } }`,
		"set unknown":       `contract "x" { ctor() { set ghost = 1 } }`,
		"bad string":        `contract "x { ctor() {} }`,
	}
	for name, src := range cases {
		if _, err := ParseSource(src); err == nil {
			t.Errorf("%s: accepted:\n%s", name, src)
		}
	}
}

func TestParsedContractExecutes(t *testing.T) {
	// End to end: parse, compile, run on the EVM harness.
	prog, err := ParseSource(polSource)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	h := newEVMHarness(t, c)
	res := h.call(CtorMethodName, prog.Ctor.Params, 0,
		BytesValue([]byte("8FPHF8VV+X2")), Uint64Value(7), Uint64Value(100))
	if res.Err != nil || res.Reverted {
		t.Fatalf("ctor: %+v", res)
	}
	insert := prog.FindAPI("insert_data")
	res = h.call("insert_data", insert.Params, 0, BytesValue([]byte("proof")), Uint64Value(7))
	if res.Err != nil || res.Reverted {
		t.Fatalf("insert: %+v", res)
	}
	v, err := DecodeReturnEVM(TUInt, res.ReturnData)
	if err != nil || v.Uint != 3 {
		t.Fatalf("sits after insert = %v", v)
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := lexAll(`foo 12_3 "s\"x" -> == // comment
bar`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokIdent, tokNumber, tokString, tokPunct, tokPunct, tokIdent, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d kind %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[1].num != 123 {
		t.Fatalf("number = %d", toks[1].num)
	}
	if toks[2].str != `s"x` {
		t.Fatalf("string = %q", toks[2].str)
	}
	if toks[5].line != 2 {
		t.Fatalf("line tracking: %d", toks[5].line)
	}
	if _, err := lexAll("@"); err == nil {
		t.Fatal("bad character accepted")
	}
	if _, err := lexAll(`"open`); err == nil {
		t.Fatal("unterminated string accepted")
	}
}

func TestParseElseIfChain(t *testing.T) {
	src := `
contract "chain" {
  ctor() {}
  api grade(x: UInt): UInt {
    if x >= 90 {
      return 1
    } else if x >= 60 {
      return 2
    } else {
      return 3
    }
  }
}
`
	prog, err := ParseSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(prog); err != nil {
		t.Fatal(err)
	}
	c, err := Compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := newEVMHarness(t, c)
	if res := h.call(CtorMethodName, nil, 0); res.Err != nil || res.Reverted {
		t.Fatalf("ctor: %+v", res)
	}
	api := prog.FindAPI("grade")
	for _, tc := range []struct{ in, want uint64 }{{95, 1}, {75, 2}, {10, 3}} {
		res := h.call("grade", api.Params, 0, Uint64Value(tc.in))
		if res.Err != nil || res.Reverted {
			t.Fatalf("grade(%d): %+v", tc.in, res)
		}
		v, err := DecodeReturnEVM(TUInt, res.ReturnData)
		if err != nil || v.Uint != tc.want {
			t.Fatalf("grade(%d) = %v, want %d", tc.in, v, tc.want)
		}
	}
}
