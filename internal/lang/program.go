package lang

import "fmt"

// GlobalDef declares a global state variable.
type GlobalDef struct {
	Name string
	Type Type
}

// MapDef declares a Map. Following the thesis contract (and the Algorand
// limitation it records in §2.4), map keys are TUInt — the prover's DID
// compressed to a UInt — and values are TBytes.
type MapDef struct {
	Name  string
	Key   Type
	Value Type
}

// Param is a named, typed parameter of an API or the constructor.
type Param struct {
	Name string
	Type Type
}

// API is a function the frontend can call asynchronously (the mechanism a
// Reach ParallelReduce exposes to attachers and verifiers).
type API struct {
	Name    string
	Params  []Param
	Returns Type
	// Pay, when non-nil, is the amount of native currency the caller must
	// attach (Reach's payExpression). APIs with nil Pay must receive zero.
	Pay Expr
	// Body is the consensus code; it must end in Return on every path.
	Body []Stmt
}

// View is a read-only accessor evaluated without a transaction (and hence
// without fees, §4.1.2).
type View struct {
	Name string
	Expr Expr
	Type Type
}

// Constructor is the deployment step: the Creator participant publishes its
// interact values and initializes state.
type Constructor struct {
	Params []Param
	Body   []Stmt
}

// Program is a complete contract in the agnostic language.
type Program struct {
	Name    string
	Globals []GlobalDef
	Maps    []MapDef
	Ctor    Constructor
	APIs    []*API
	Views   []View
}

// NewProgram starts an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name}
}

// DeclareGlobal adds a global and returns a reference expression for it.
func (p *Program) DeclareGlobal(name string, t Type) *GlobalRef {
	p.Globals = append(p.Globals, GlobalDef{Name: name, Type: t})
	return &GlobalRef{Name: name}
}

// DeclareMap adds a map.
func (p *Program) DeclareMap(name string, key, value Type) MapDef {
	d := MapDef{Name: name, Key: key, Value: value}
	p.Maps = append(p.Maps, d)
	return d
}

// SetConstructor installs the deployment step.
func (p *Program) SetConstructor(params []Param, body ...Stmt) {
	p.Ctor = Constructor{Params: params, Body: body}
}

// AddAPI registers an API.
func (p *Program) AddAPI(a *API) *API {
	p.APIs = append(p.APIs, a)
	return a
}

// AddView registers a view.
func (p *Program) AddView(name string, t Type, e Expr) {
	p.Views = append(p.Views, View{Name: name, Expr: e, Type: t})
}

// FindAPI returns the named API or nil.
func (p *Program) FindAPI(name string) *API {
	for _, a := range p.APIs {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// FindView returns the named view.
func (p *Program) FindView(name string) (View, bool) {
	for _, v := range p.Views {
		if v.Name == name {
			return v, true
		}
	}
	return View{}, false
}

func (p *Program) globalIndex(name string) (int, error) {
	for i, g := range p.Globals {
		if g.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("lang: undefined global %q", name)
}

func (p *Program) mapIndex(name string) (int, error) {
	for i, m := range p.Maps {
		if m.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("lang: undefined map %q", name)
}

// Expression shorthands used by programs built in Go source.

// U is a TUInt literal.
func U(v uint64) *Const { return &Const{Type: TUInt, Uint: v} }

// B is a TBytes literal.
func B(b []byte) *Const { return &Const{Type: TBytes, Bytes: b} }

// Bs is a TBytes literal from a string.
func Bs(s string) *Const { return &Const{Type: TBytes, Bytes: []byte(s)} }

// True and False are TBool literals.
var (
	True  = &Const{Type: TBool, Bool: true}
	False = &Const{Type: TBool, Bool: false}
)

// A references API/constructor argument i.
func A(i int) *Arg { return &Arg{Index: i} }

// G references a global.
func G(name string) *GlobalRef { return &GlobalRef{Name: name} }

// Add, Sub, Mul, Div, Mod build arithmetic nodes.
func Add(a, b Expr) *Bin { return &Bin{Op: OpAdd, A: a, B: b} }
func Sub(a, b Expr) *Bin { return &Bin{Op: OpSub, A: a, B: b} }
func Mul(a, b Expr) *Bin { return &Bin{Op: OpMul, A: a, B: b} }
func Div(a, b Expr) *Bin { return &Bin{Op: OpDiv, A: a, B: b} }
func Mod(a, b Expr) *Bin { return &Bin{Op: OpMod, A: a, B: b} }

// Lt, Gt, Le, Ge, Eq, Ne build comparisons.
func Lt(a, b Expr) *Bin { return &Bin{Op: OpLt, A: a, B: b} }
func Gt(a, b Expr) *Bin { return &Bin{Op: OpGt, A: a, B: b} }
func Le(a, b Expr) *Bin { return &Bin{Op: OpLe, A: a, B: b} }
func Ge(a, b Expr) *Bin { return &Bin{Op: OpGe, A: a, B: b} }
func Eq(a, b Expr) *Bin { return &Bin{Op: OpEq, A: a, B: b} }
func Ne(a, b Expr) *Bin { return &Bin{Op: OpNe, A: a, B: b} }

// And and Or build boolean connectives.
func And(a, b Expr) *Bin { return &Bin{Op: OpAnd, A: a, B: b} }
func Or(a, b Expr) *Bin  { return &Bin{Op: OpOr, A: a, B: b} }

// Concat joins byte strings.
func Concat(a, b Expr) *Bin { return &Bin{Op: OpConcat, A: a, B: b} }
