package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Surface syntax for the agnostic language — the .pol analogue of Reach's
// index.rsh (§2.9.3). The grammar is small and LL(1):
//
//	contract "pol-report" {
//	  global position: Bytes
//	  map easy_map: UInt -> Bytes
//
//	  ctor(position: Bytes, did: UInt, reward: UInt) {
//	    set position = position
//	    easy_map[did] = "init"
//	  }
//
//	  api insert_data(data: Bytes, did: UInt): UInt {
//	    assume(availableSits > 0, "contract is full")
//	    easy_map[did] = data
//	    return availableSits
//	  }
//
//	  api insert_money(money: UInt): UInt pay(money) { ... }
//
//	  view getReward: UInt = reward
//	}
//
// See ParseSource for the entry point.

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // single/multi-char operators and delimiters
)

type token struct {
	kind tokenKind
	text string
	num  uint64
	str  string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.str)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer splits source into tokens. `//` starts a line comment.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

var multiCharOps = []string{"->", "==", "!=", "<=", ">=", "&&", "||", "++"}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("lang: %d:%d: %s", l.line, l.col, fmt.Sprintf(format, args...))
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.pos++
			l.line++
			l.col = 1
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
			l.col++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto tokenStart
		}
	}
	return token{kind: tokEOF, line: l.line, col: l.col}, nil

tokenStart:
	startLine, startCol := l.line, l.col
	c := l.src[l.pos]

	if unicode.IsLetter(rune(c)) || c == '_' {
		start := l.pos
		for l.pos < len(l.src) {
			r := rune(l.src[l.pos])
			if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
				break
			}
			l.pos++
			l.col++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], line: startLine, col: startCol}, nil
	}

	if unicode.IsDigit(rune(c)) {
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
			l.pos++
			l.col++
		}
		text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
		n, err := strconv.ParseUint(text, 10, 64)
		if err != nil {
			return token{}, l.errf("bad number %q: %v", text, err)
		}
		return token{kind: tokNumber, text: text, num: n, line: startLine, col: startCol}, nil
	}

	if c == '"' {
		end := l.pos + 1
		for end < len(l.src) {
			if l.src[end] == '\\' {
				end += 2
				continue
			}
			if l.src[end] == '"' {
				break
			}
			if l.src[end] == '\n' {
				return token{}, l.errf("unterminated string")
			}
			end++
		}
		if end >= len(l.src) {
			return token{}, l.errf("unterminated string")
		}
		raw := l.src[l.pos : end+1]
		s, err := strconv.Unquote(raw)
		if err != nil {
			return token{}, l.errf("bad string literal %s: %v", raw, err)
		}
		l.col += end + 1 - l.pos
		l.pos = end + 1
		return token{kind: tokString, text: raw, str: s, line: startLine, col: startCol}, nil
	}

	for _, op := range multiCharOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += len(op)
			l.col += len(op)
			return token{kind: tokPunct, text: op, line: startLine, col: startCol}, nil
		}
	}
	if strings.ContainsRune("(){}[]:,=<>+-*/%!", rune(c)) {
		l.pos++
		l.col++
		return token{kind: tokPunct, text: string(c), line: startLine, col: startCol}, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
