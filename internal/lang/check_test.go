package lang

import (
	"strings"
	"testing"
)

func expectCheckError(t *testing.T, p *Program, substr string) {
	t.Helper()
	err := Check(p)
	if err == nil {
		t.Fatalf("Check accepted a broken program (want error containing %q)", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("Check error %q does not mention %q", err, substr)
	}
}

func TestCheckRejectsTypeErrors(t *testing.T) {
	t.Run("arith-on-bytes", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Params: []Param{{Name: "b", Type: TBytes}}, Returns: TUInt,
			Body: []Stmt{&Return{Value: Add(A(0), U(1))}},
		})
		expectCheckError(t, p, "needs UInt operands")
	})
	t.Run("eq-mismatched", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Params: []Param{{Name: "b", Type: TBytes}}, Returns: TBool,
			Body: []Stmt{&Return{Value: Eq(A(0), U(1))}},
		})
		expectCheckError(t, p, "matching operand types")
	})
	t.Run("missing-return", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Returns: TUInt,
			Body: []Stmt{&Emit{Event: "e", Value: U(1)}},
		})
		expectCheckError(t, p, "does not Return")
	})
	t.Run("partial-return-in-if", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Params: []Param{{Name: "a", Type: TUInt}}, Returns: TUInt,
			Body: []Stmt{&If{
				Cond: Gt(A(0), U(0)),
				Then: []Stmt{&Return{Value: U(1)}},
				// else falls through without Return
			}},
		})
		expectCheckError(t, p, "does not Return")
	})
	t.Run("unreachable-after-return", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Returns: TUInt,
			Body: []Stmt{
				&Return{Value: U(1)},
				&Emit{Event: "dead", Value: U(2)},
			},
		})
		expectCheckError(t, p, "unreachable")
	})
	t.Run("undefined-global", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Returns: TUInt,
			Body: []Stmt{&SetGlobal{Name: "ghost", Value: U(1)}, &Return{Value: U(1)}},
		})
		expectCheckError(t, p, "undefined global")
	})
	t.Run("bad-arg-index", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Returns: TUInt,
			Body: []Stmt{&Return{Value: A(3)}},
		})
		expectCheckError(t, p, "out of range")
	})
	t.Run("map-key-must-be-uint", func(t *testing.T) {
		p := NewProgram("t")
		p.DeclareMap("m", TBytes, TBytes)
		p.SetConstructor(nil)
		expectCheckError(t, p, "key must be UInt")
	})
	t.Run("duplicate-api", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{Name: "f", Returns: TUInt, Body: []Stmt{&Return{Value: U(1)}}})
		p.AddAPI(&API{Name: "f", Returns: TUInt, Body: []Stmt{&Return{Value: U(1)}}})
		expectCheckError(t, p, "duplicate API")
	})
	t.Run("return-in-constructor", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil, &Return{Value: U(1)})
		expectCheckError(t, p, "Return not allowed")
	})
	t.Run("transfer-to-uint", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddAPI(&API{
			Name: "f", Returns: TUInt,
			Body: []Stmt{
				&Transfer{Amount: U(1), To: U(5)},
				&Return{Value: U(1)},
			},
		})
		expectCheckError(t, p, "transfer to")
	})
	t.Run("view-type-mismatch", func(t *testing.T) {
		p := NewProgram("t")
		p.SetConstructor(nil)
		p.AddView("v", TBytes, U(1))
		expectCheckError(t, p, "want Bytes")
	})
}

func TestCheckAcceptsWellTyped(t *testing.T) {
	p := counterProgram(t)
	if err := Check(p); err != nil {
		t.Fatalf("well-typed program rejected: %v", err)
	}
}
