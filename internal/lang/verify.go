package lang

import (
	"fmt"
	"strings"
)

// Theorem is one verification condition the static verifier discharges (or
// fails to). The language mirrors Reach's compile-time verification
// (Fig. 2.11): balance sufficiency before transfers, map-access safety,
// arithmetic safety, and token linearity.
type Theorem struct {
	Kind  string // "transfer-funded", "map-get-guarded", "sub-underflow", "div-nonzero", "token-linearity", "assume-enforced"
	Where string // "API verify", "constructor", …
	Desc  string
	OK    bool
	Note  string
}

// Mode is a verification pass, matching the three passes Reach prints.
type Mode string

// Verification passes.
const (
	ModeGeneric    Mode = "generic connector"
	ModeAllHonest  Mode = "ALL participants are honest"
	ModeNoneHonest Mode = "NO participants are honest"
)

// Report aggregates the theorems of all passes.
type Report struct {
	Passes   map[Mode][]Theorem
	Checked  int
	Failures int
}

// Failed returns every failed theorem across passes.
func (r *Report) Failed() []Theorem {
	var out []Theorem
	for _, mode := range []Mode{ModeGeneric, ModeAllHonest, ModeNoneHonest} {
		for _, t := range r.Passes[mode] {
			if !t.OK {
				out = append(out, t)
			}
		}
	}
	return out
}

// String renders the report in the Reach compiler's output style.
func (r *Report) String() string {
	var sb strings.Builder
	sb.WriteString("Verifying knowledge assertions\n")
	sb.WriteString("Verifying for generic connector\n")
	sb.WriteString("  Verifying when ALL participants are honest\n")
	sb.WriteString("  Verifying when NO participants are honest\n")
	if r.Failures == 0 {
		fmt.Fprintf(&sb, "Checked %d theorems; No failures!\n", r.Checked)
	} else {
		fmt.Fprintf(&sb, "Checked %d theorems; %d FAILURES:\n", r.Checked, r.Failures)
		for _, t := range r.Failed() {
			fmt.Fprintf(&sb, "  FAIL [%s] %s: %s (%s)\n", t.Kind, t.Where, t.Desc, t.Note)
		}
	}
	return sb.String()
}

// Verify runs the static verification passes over a type-correct program.
func Verify(p *Program) *Report {
	r := &Report{Passes: make(map[Mode][]Theorem)}
	for _, mode := range []Mode{ModeGeneric, ModeAllHonest, ModeNoneHonest} {
		v := &verifier{p: p, mode: mode}
		v.program()
		r.Passes[mode] = v.theorems
		for _, t := range v.theorems {
			r.Checked++
			if !t.OK {
				r.Failures++
			}
		}
	}
	return r
}

type verifier struct {
	p        *Program
	mode     Mode
	theorems []Theorem
}

func (v *verifier) add(t Theorem) { v.theorems = append(v.theorems, t) }

func (v *verifier) program() {
	v.walk(v.p.Ctor.Body, nil, "constructor")
	receivesFunds := false
	sweeps := false
	for _, a := range v.p.APIs {
		where := "API " + a.Name
		var facts []Expr
		if a.Pay != nil {
			receivesFunds = true
			// The attached payment is credited before the body runs, so
			// balance() >= pay holds on entry.
			facts = append(facts, Ge(&Balance{}, a.Pay))
			if _, isPaid := a.Pay.(*Paid); !isPaid {
				facts = append(facts, Eq(&Paid{}, a.Pay))
			}
		}
		v.walk(a.Body, facts, where)
		if apiSweeps(a.Body) {
			sweeps = true
		}
	}
	// Token linearity: a contract that can receive funds must have a path
	// that empties its balance, otherwise tokens are stranded forever —
	// the property Reach's "token linearity" theorem enforces at program
	// exit (§2.9.3).
	if receivesFunds {
		v.add(Theorem{
			Kind:  "token-linearity",
			Where: "program",
			Desc:  "a full-balance sweep path exists",
			OK:    sweeps,
			Note:  "an API must transfer balance() so the contract can exit empty",
		})
	}
}

// apiSweeps reports whether some path transfers the full balance.
func apiSweeps(body []Stmt) bool {
	for _, s := range body {
		switch s := s.(type) {
		case *Transfer:
			if _, ok := s.Amount.(*Balance); ok {
				return true
			}
		case *If:
			if apiSweeps(s.Then) || apiSweeps(s.Else) {
				return true
			}
		}
	}
	return false
}

//nolint:gocyclo // path-sensitive walk over every statement kind.
func (v *verifier) walk(body []Stmt, facts []Expr, where string) {
	for _, s := range body {
		switch s := s.(type) {
		case *Assume:
			// Assumes compile to on-chain checks in every backend, so the
			// condition holds downstream even against dishonest frontends.
			v.add(Theorem{
				Kind: "assume-enforced", Where: where,
				Desc: "assume(" + exprString(s.Cond) + ") is enforced on-chain",
				OK:   true,
			})
			facts = append(facts, s.Cond)
		case *Require:
			facts = append(facts, s.Cond)
		case *SetGlobal:
			v.exprTheorems(s.Value, facts, where)
			facts = dropFactsMentioningGlobal(facts, s.Name)
		case *MapSet:
			v.exprTheorems(s.Key, facts, where)
			v.exprTheorems(s.Value, facts, where)
			facts = dropFactsMentioningMap(facts, s.Map)
		case *MapDel:
			v.exprTheorems(s.Key, facts, where)
			facts = dropFactsMentioningMap(facts, s.Map)
		case *Transfer:
			v.exprTheorems(s.Amount, facts, where)
			v.exprTheorems(s.To, facts, where)
			ok, note := transferFunded(s.Amount, facts)
			v.add(Theorem{
				Kind: "transfer-funded", Where: where,
				Desc: "balance() covers transfer of " + exprString(s.Amount),
				OK:   ok, Note: note,
			})
			// The transfer changes the balance: facts about balance() no
			// longer hold.
			facts = dropFactsMentioningBalance(facts)
		case *If:
			v.exprTheorems(s.Cond, facts, where)
			v.walk(s.Then, append(append([]Expr{}, facts...), s.Cond), where)
			v.walk(s.Else, append(append([]Expr{}, facts...), negate(s.Cond)), where)
		case *Emit:
			v.exprTheorems(s.Value, facts, where)
		case *Return:
			v.exprTheorems(s.Value, facts, where)
		}
	}
}

// exprTheorems emits verification conditions for the sub-expressions of e:
// map gets must be guarded, subtraction must not underflow, division must
// not divide by zero.
func (v *verifier) exprTheorems(e Expr, facts []Expr, where string) {
	switch e := e.(type) {
	case *MapGet:
		v.exprTheorems(e.Key, facts, where)
		ok := implied(&MapHas{Map: e.Map, Key: e.Key}, facts)
		v.add(Theorem{
			Kind: "map-get-guarded", Where: where,
			Desc: "Map " + e.Map + "[" + exprString(e.Key) + "] is present",
			OK:   ok, Note: noteUnless(ok, "guard the read with a MapHas check"),
		})
	case *MapHas:
		v.exprTheorems(e.Key, facts, where)
	case *Bin:
		v.exprTheorems(e.A, facts, where)
		v.exprTheorems(e.B, facts, where)
		switch e.Op {
		case OpSub:
			ok := subSafe(e.A, e.B, facts)
			v.add(Theorem{
				Kind: "sub-underflow", Where: where,
				Desc: exprString(e.A) + " - " + exprString(e.B) + " does not underflow",
				OK:   ok, Note: noteUnless(ok, "dominate the subtraction with a >= comparison"),
			})
		case OpDiv, OpMod:
			ok := nonZero(e.B, facts)
			v.add(Theorem{
				Kind: "div-nonzero", Where: where,
				Desc: "divisor " + exprString(e.B) + " is non-zero",
				OK:   ok, Note: noteUnless(ok, "guard the division against a zero divisor"),
			})
		}
	case *Not:
		v.exprTheorems(e.A, facts, where)
	case *Digest:
		v.exprTheorems(e.A, facts, where)
	case *SigVerify:
		v.exprTheorems(e.Pub, facts, where)
		v.exprTheorems(e.Msg, facts, where)
		v.exprTheorems(e.Sig, facts, where)
	case *CellContains:
		v.exprTheorems(e.Cell, facts, where)
		v.exprTheorems(e.Code, facts, where)
	}
}

func noteUnless(ok bool, note string) string {
	if ok {
		return ""
	}
	return note
}

// transferFunded checks that the facts imply balance() >= amount.
func transferFunded(amount Expr, facts []Expr) (bool, string) {
	if c, ok := amount.(*Const); ok && c.Uint == 0 {
		return true, "zero transfer"
	}
	if _, ok := amount.(*Balance); ok {
		return true, "full-balance sweep"
	}
	if _, ok := amount.(*Paid); ok {
		return true, "refunding the attached payment"
	}
	if implied(Ge(&Balance{}, amount), facts) {
		return true, ""
	}
	return false, "no dominating balance() >= " + exprString(amount) + " check"
}

// subSafe checks that the facts imply a >= b.
func subSafe(a, b Expr, facts []Expr) bool {
	if ca, ok := a.(*Const); ok {
		if cb, ok := b.(*Const); ok {
			return ca.Uint >= cb.Uint
		}
	}
	// balance() - x is safe when balance() >= x is implied (same rule as
	// transfers).
	if implied(Ge(a, b), facts) {
		return true
	}
	// a - 1 is safe when a > 0 is implied.
	if cb, ok := b.(*Const); ok && cb.Uint == 1 && implied(Gt(a, U(0)), facts) {
		return true
	}
	return false
}

func nonZero(e Expr, facts []Expr) bool {
	if c, ok := e.(*Const); ok {
		return c.Uint != 0
	}
	return implied(Gt(e, U(0)), facts) || implied(Ne(e, U(0)), facts)
}

// implied reports whether goal follows from the fact set by the verifier's
// (deliberately simple, structural) entailment: a fact implies the goal if
// it is structurally equal, or by a small set of ordering rules
// (a > b ⇒ a >= b; a >= c ⇒ a >= b for constants c >= b; symmetry of =).
func implied(goal Expr, facts []Expr) bool {
	for _, f := range facts {
		if entails(f, goal) {
			return true
		}
	}
	return false
}

//nolint:gocyclo // rule-by-rule entailment table.
func entails(fact, goal Expr) bool {
	if exprEqual(fact, goal) {
		return true
	}
	fb, fok := fact.(*Bin)
	gb, gok := goal.(*Bin)
	if fok && gok {
		// a > b ⇒ a >= b, a != b; a >= b+? constants.
		if exprEqual(fb.A, gb.A) && exprEqual(fb.B, gb.B) {
			switch {
			case fb.Op == OpGt && (gb.Op == OpGe || gb.Op == OpNe):
				return true
			case fb.Op == OpLt && (gb.Op == OpLe || gb.Op == OpNe):
				return true
			case fb.Op == OpEq && (gb.Op == OpGe || gb.Op == OpLe):
				return true
			}
		}
		// Swapped comparisons: a > b ⇔ b < a, etc.
		if exprEqual(fb.A, gb.B) && exprEqual(fb.B, gb.A) {
			switch {
			case fb.Op == OpGt && (gb.Op == OpLt || gb.Op == OpLe || gb.Op == OpNe):
				return true
			case fb.Op == OpLt && (gb.Op == OpGt || gb.Op == OpGe || gb.Op == OpNe):
				return true
			case fb.Op == OpGe && gb.Op == OpLe:
				return true
			case fb.Op == OpLe && gb.Op == OpGe:
				return true
			case (fb.Op == OpEq || fb.Op == OpNe) && fb.Op == gb.Op:
				return true
			}
		}
		// Constant strengthening: fact a >= c, goal a >= b with consts
		// c >= b.
		if exprEqual(fb.A, gb.A) && (fb.Op == OpGe || fb.Op == OpGt) && (gb.Op == OpGe || gb.Op == OpGt) {
			fc, fcOK := fb.B.(*Const)
			gc, gcOK := gb.B.(*Const)
			if fcOK && gcOK && fc.Uint >= gc.Uint {
				if !(fb.Op == OpGe && gb.Op == OpGt && fc.Uint == gc.Uint) {
					return true
				}
			}
		}
		// Conjunction: (x && y) entails what either conjunct entails.
		if fb.Op == OpAnd {
			return entails(fb.A, goal) || entails(fb.B, goal)
		}
	}
	if fok && fb.Op == OpAnd {
		return entails(fb.A, goal) || entails(fb.B, goal)
	}
	return false
}

// negate returns the logical negation of a condition in normalized form.
func negate(e Expr) Expr {
	if n, ok := e.(*Not); ok {
		return n.A
	}
	if b, ok := e.(*Bin); ok {
		switch b.Op {
		case OpLt:
			return Ge(b.A, b.B)
		case OpGt:
			return Le(b.A, b.B)
		case OpLe:
			return Gt(b.A, b.B)
		case OpGe:
			return Lt(b.A, b.B)
		case OpEq:
			return Ne(b.A, b.B)
		case OpNe:
			return Eq(b.A, b.B)
		}
	}
	return &Not{A: e}
}

//nolint:gocyclo // structural equality over every node kind.
func exprEqual(a, b Expr) bool {
	switch a := a.(type) {
	case *Const:
		bb, ok := b.(*Const)
		return ok && a.Type == bb.Type && a.Uint == bb.Uint && a.Bool == bb.Bool && string(a.Bytes) == string(bb.Bytes)
	case *Arg:
		bb, ok := b.(*Arg)
		return ok && a.Index == bb.Index
	case *GlobalRef:
		bb, ok := b.(*GlobalRef)
		return ok && a.Name == bb.Name
	case *MapGet:
		bb, ok := b.(*MapGet)
		return ok && a.Map == bb.Map && exprEqual(a.Key, bb.Key)
	case *MapHas:
		bb, ok := b.(*MapHas)
		return ok && a.Map == bb.Map && exprEqual(a.Key, bb.Key)
	case *Bin:
		bb, ok := b.(*Bin)
		return ok && a.Op == bb.Op && exprEqual(a.A, bb.A) && exprEqual(a.B, bb.B)
	case *Not:
		bb, ok := b.(*Not)
		return ok && exprEqual(a.A, bb.A)
	case *Balance:
		_, ok := b.(*Balance)
		return ok
	case *Caller:
		_, ok := b.(*Caller)
		return ok
	case *Paid:
		_, ok := b.(*Paid)
		return ok
	case *Now:
		_, ok := b.(*Now)
		return ok
	case *Digest:
		bb, ok := b.(*Digest)
		return ok && exprEqual(a.A, bb.A)
	case *SigVerify:
		bb, ok := b.(*SigVerify)
		return ok && exprEqual(a.Pub, bb.Pub) && exprEqual(a.Msg, bb.Msg) && exprEqual(a.Sig, bb.Sig)
	case *CellContains:
		bb, ok := b.(*CellContains)
		return ok && exprEqual(a.Cell, bb.Cell) && exprEqual(a.Code, bb.Code)
	default:
		return false
	}
}

func mentionsBalance(e Expr) bool {
	switch e := e.(type) {
	case *Balance:
		return true
	case *Bin:
		return mentionsBalance(e.A) || mentionsBalance(e.B)
	case *Not:
		return mentionsBalance(e.A)
	case *MapGet:
		return mentionsBalance(e.Key)
	case *MapHas:
		return mentionsBalance(e.Key)
	case *Digest:
		return mentionsBalance(e.A)
	case *SigVerify:
		return mentionsBalance(e.Pub) || mentionsBalance(e.Msg) || mentionsBalance(e.Sig)
	case *CellContains:
		return mentionsBalance(e.Cell) || mentionsBalance(e.Code)
	default:
		return false
	}
}

func mentionsGlobal(e Expr, name string) bool {
	switch e := e.(type) {
	case *GlobalRef:
		return e.Name == name
	case *Bin:
		return mentionsGlobal(e.A, name) || mentionsGlobal(e.B, name)
	case *Not:
		return mentionsGlobal(e.A, name)
	case *MapGet:
		return mentionsGlobal(e.Key, name)
	case *MapHas:
		return mentionsGlobal(e.Key, name)
	case *Digest:
		return mentionsGlobal(e.A, name)
	case *SigVerify:
		return mentionsGlobal(e.Pub, name) || mentionsGlobal(e.Msg, name) || mentionsGlobal(e.Sig, name)
	case *CellContains:
		return mentionsGlobal(e.Cell, name) || mentionsGlobal(e.Code, name)
	default:
		return false
	}
}

func mentionsMap(e Expr, name string) bool {
	switch e := e.(type) {
	case *MapGet:
		return e.Map == name || mentionsMap(e.Key, name)
	case *MapHas:
		return e.Map == name || mentionsMap(e.Key, name)
	case *Bin:
		return mentionsMap(e.A, name) || mentionsMap(e.B, name)
	case *Not:
		return mentionsMap(e.A, name)
	case *Digest:
		return mentionsMap(e.A, name)
	case *SigVerify:
		return mentionsMap(e.Pub, name) || mentionsMap(e.Msg, name) || mentionsMap(e.Sig, name)
	case *CellContains:
		return mentionsMap(e.Cell, name) || mentionsMap(e.Code, name)
	default:
		return false
	}
}

func dropFactsMentioningBalance(facts []Expr) []Expr {
	out := facts[:0:0]
	for _, f := range facts {
		if !mentionsBalance(f) {
			out = append(out, f)
		}
	}
	return out
}

func dropFactsMentioningGlobal(facts []Expr, name string) []Expr {
	out := facts[:0:0]
	for _, f := range facts {
		if !mentionsGlobal(f, name) {
			out = append(out, f)
		}
	}
	return out
}

func dropFactsMentioningMap(facts []Expr, name string) []Expr {
	out := facts[:0:0]
	for _, f := range facts {
		if !mentionsMap(f, name) {
			out = append(out, f)
		}
	}
	return out
}

//nolint:gocyclo // printer over every node kind.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *Const:
		switch e.Type {
		case TUInt:
			return fmt.Sprintf("%d", e.Uint)
		case TBool:
			return fmt.Sprintf("%t", e.Bool)
		case TBytes:
			return fmt.Sprintf("%q", e.Bytes)
		default:
			return "<const>"
		}
	case *Arg:
		return fmt.Sprintf("arg%d", e.Index)
	case *GlobalRef:
		return e.Name
	case *MapGet:
		return e.Map + "[" + exprString(e.Key) + "]"
	case *MapHas:
		return "has(" + e.Map + "," + exprString(e.Key) + ")"
	case *Bin:
		return "(" + exprString(e.A) + " " + e.Op.String() + " " + exprString(e.B) + ")"
	case *Not:
		return "!" + exprString(e.A)
	case *Balance:
		return "balance()"
	case *Caller:
		return "this"
	case *Paid:
		return "paid()"
	case *Now:
		return "now()"
	case *Digest:
		return "digest(" + exprString(e.A) + ")"
	case *SigVerify:
		return "sigok(" + exprString(e.Pub) + "," + exprString(e.Msg) + "," + exprString(e.Sig) + ")"
	case *CellContains:
		return "contains(" + exprString(e.Cell) + "," + exprString(e.Code) + ")"
	default:
		return "<expr>"
	}
}
