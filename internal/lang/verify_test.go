package lang

import (
	"strings"
	"testing"
)

// makeAPI wraps a body into a minimal program with one API.
func makeAPI(t *testing.T, pay Expr, body ...Stmt) *Program {
	t.Helper()
	p := NewProgram("test")
	p.DeclareGlobal("owner", TAddress)
	p.DeclareGlobal("x", TUInt)
	p.DeclareMap("m", TUInt, TBytes)
	p.SetConstructor(nil)
	p.AddAPI(&API{
		Name:    "f",
		Params:  []Param{{Name: "a", Type: TUInt}, {Name: "to", Type: TAddress}},
		Returns: TUInt,
		Pay:     pay,
		Body:    body,
	})
	if err := Check(p); err != nil {
		t.Fatalf("program does not type check: %v", err)
	}
	return p
}

func failuresOfKind(r *Report, kind string) int {
	n := 0
	for _, th := range r.Failed() {
		if th.Kind == kind {
			n++
		}
	}
	return n
}

func TestVerifyUnguardedTransferFails(t *testing.T) {
	p := makeAPI(t, nil,
		&Transfer{Amount: U(100), To: A(1)},
		&Return{Value: U(0)},
	)
	r := Verify(p)
	if failuresOfKind(r, "transfer-funded") == 0 {
		t.Fatalf("unguarded transfer not flagged:\n%s", r)
	}
	// And Compile refuses it.
	if _, err := Compile(p, Options{}); err == nil {
		t.Fatal("Compile accepted a program with failed theorems")
	}
	if _, err := Compile(p, Options{SkipVerify: true}); err != nil {
		t.Fatalf("SkipVerify should compile anyway: %v", err)
	}
}

func TestVerifyGuardedTransferPasses(t *testing.T) {
	p := makeAPI(t, nil,
		&If{
			Cond: Ge(&Balance{}, U(100)),
			Then: []Stmt{
				&Transfer{Amount: U(100), To: A(1)},
				&Return{Value: U(1)},
			},
			Else: []Stmt{&Return{Value: U(0)}},
		},
	)
	if r := Verify(p); failuresOfKind(r, "transfer-funded") != 0 {
		t.Fatalf("guarded transfer flagged:\n%s", r)
	}
}

func TestVerifyAssumeGuardsTransfer(t *testing.T) {
	p := makeAPI(t, nil,
		&Assume{Cond: Ge(&Balance{}, U(100)), Msg: "funded"},
		&Transfer{Amount: U(100), To: A(1)},
		&Return{Value: U(1)},
	)
	if r := Verify(p); failuresOfKind(r, "transfer-funded") != 0 {
		t.Fatalf("assume-guarded transfer flagged:\n%s", r)
	}
}

func TestVerifyBalanceFactInvalidatedByTransfer(t *testing.T) {
	// After one transfer the balance check is stale; a second transfer
	// must be re-guarded.
	p := makeAPI(t, nil,
		&Assume{Cond: Ge(&Balance{}, U(100)), Msg: "funded once"},
		&Transfer{Amount: U(100), To: A(1)},
		&Transfer{Amount: U(100), To: A(1)},
		&Return{Value: U(1)},
	)
	if r := Verify(p); failuresOfKind(r, "transfer-funded") == 0 {
		t.Fatal("stale balance fact reused for a second transfer")
	}
}

func TestVerifySweepAlwaysFunded(t *testing.T) {
	p := makeAPI(t, nil,
		&Transfer{Amount: &Balance{}, To: A(1)},
		&Return{Value: U(1)},
	)
	if r := Verify(p); failuresOfKind(r, "transfer-funded") != 0 {
		t.Fatal("balance() sweep flagged as unfunded")
	}
}

func TestVerifyTokenLinearity(t *testing.T) {
	// A program that accepts money but can never empty itself strands
	// funds.
	p := NewProgram("stranded")
	p.SetConstructor(nil)
	p.AddAPI(&API{
		Name: "depositOnly", Params: []Param{{Name: "amt", Type: TUInt}},
		Returns: TUInt, Pay: A(0),
		Body: []Stmt{&Return{Value: &Balance{}}},
	})
	if err := Check(p); err != nil {
		t.Fatal(err)
	}
	if r := Verify(p); failuresOfKind(r, "token-linearity") == 0 {
		t.Fatal("stranded-funds program passed token linearity")
	}

	// Adding a sweep API fixes it.
	p.AddAPI(&API{
		Name: "close", Params: []Param{{Name: "to", Type: TAddress}},
		Returns: TUInt,
		Body: []Stmt{
			&Transfer{Amount: &Balance{}, To: A(0)},
			&Return{Value: U(1)},
		},
	})
	if r := Verify(p); failuresOfKind(r, "token-linearity") != 0 {
		t.Fatal("sweep API did not satisfy token linearity")
	}
}

func TestVerifyMapGetGuard(t *testing.T) {
	unguarded := makeAPI(t, nil,
		&Emit{Event: "e", Value: &MapGet{Map: "m", Key: A(0)}},
		&Return{Value: U(1)},
	)
	if r := Verify(unguarded); failuresOfKind(r, "map-get-guarded") == 0 {
		t.Fatal("unguarded MapGet not flagged")
	}
	guarded := makeAPI(t, nil,
		&Assume{Cond: &MapHas{Map: "m", Key: A(0)}, Msg: "present"},
		&Emit{Event: "e", Value: &MapGet{Map: "m", Key: A(0)}},
		&Return{Value: U(1)},
	)
	if r := Verify(guarded); failuresOfKind(r, "map-get-guarded") != 0 {
		t.Fatal("guarded MapGet flagged")
	}
}

func TestVerifySubUnderflow(t *testing.T) {
	bad := makeAPI(t, nil,
		&SetGlobal{Name: "x", Value: Sub(G("x"), U(1))},
		&Return{Value: G("x")},
	)
	if r := Verify(bad); failuresOfKind(r, "sub-underflow") == 0 {
		t.Fatal("possible underflow not flagged")
	}
	good := makeAPI(t, nil,
		&Assume{Cond: Gt(G("x"), U(0)), Msg: "positive"},
		&SetGlobal{Name: "x", Value: Sub(G("x"), U(1))},
		&Return{Value: G("x")},
	)
	if r := Verify(good); failuresOfKind(r, "sub-underflow") != 0 {
		t.Fatal("guarded decrement flagged")
	}
}

func TestVerifyGlobalFactInvalidatedByWrite(t *testing.T) {
	// x > 0 is asserted, then x is overwritten; the stale fact must not
	// justify x-1.
	p := makeAPI(t, nil,
		&Assume{Cond: Gt(G("x"), U(0)), Msg: "positive"},
		&SetGlobal{Name: "x", Value: U(0)},
		&SetGlobal{Name: "x", Value: Sub(G("x"), U(1))},
		&Return{Value: G("x")},
	)
	if r := Verify(p); failuresOfKind(r, "sub-underflow") == 0 {
		t.Fatal("stale global fact survived a write")
	}
}

func TestVerifyDivNonzero(t *testing.T) {
	bad := makeAPI(t, nil,
		&Return{Value: Div(U(10), A(0))},
	)
	if r := Verify(bad); failuresOfKind(r, "div-nonzero") == 0 {
		t.Fatal("possible division by zero not flagged")
	}
	good := makeAPI(t, nil,
		&Assume{Cond: Gt(A(0), U(0)), Msg: "nonzero"},
		&Return{Value: Div(U(10), A(0))},
	)
	if r := Verify(good); failuresOfKind(r, "div-nonzero") != 0 {
		t.Fatal("guarded division flagged")
	}
}

func TestVerifyElseBranchFacts(t *testing.T) {
	// In the else branch of `if x < 1`, x >= 1 holds, so x-1 is safe.
	p := makeAPI(t, nil,
		&If{
			Cond: Lt(G("x"), U(1)),
			Then: []Stmt{&Return{Value: U(0)}},
			Else: []Stmt{
				&SetGlobal{Name: "x", Value: Sub(G("x"), U(1))},
				&Return{Value: G("x")},
			},
		},
	)
	if r := Verify(p); failuresOfKind(r, "sub-underflow") != 0 {
		t.Fatalf("negated-condition fact not derived:\n%s", Verify(p))
	}
}

func TestReportRendering(t *testing.T) {
	p := makeAPI(t, nil, &Return{Value: U(1)})
	r := Verify(p)
	s := r.String()
	if !strings.Contains(s, "Checked") || !strings.Contains(s, "No failures!") {
		t.Fatalf("report format:\n%s", s)
	}
	bad := makeAPI(t, nil, &Transfer{Amount: U(5), To: A(1)}, &Return{Value: U(1)})
	rb := Verify(bad)
	if !strings.Contains(rb.String(), "FAILURES") {
		t.Fatalf("failure report format:\n%s", rb)
	}
}
