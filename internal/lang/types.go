// Package lang is the blockchain-agnostic smart-contract language at the
// heart of the paper: the same program — Participants, APIs, Views, Maps and
// a ParallelReduce-style interaction loop, mirroring Reach's model (§2.9.3,
// §4.1) — is compiled from a single source to two backends, Ethereum
// (EVM bytecode, package evm) and Algorand (TEAL assembly, package avm).
//
// Like Reach, compilation runs a static verification pass over the program
// (token linearity, guarded transfers, assertion theorems; Fig. 2.11) and a
// conservative cost analysis (Fig. 5.1) before emitting code.
package lang

import "fmt"

// Type is a value type of the language.
type Type int

// The language's types. TAddress values are chain account addresses; TBytes
// are arbitrary byte strings (Reach's Bytes(N)); TUInt is the 64-bit
// unsigned integer Reach maps to UInt.
const (
	TInvalid Type = iota
	TUInt
	TBool
	TBytes
	TAddress
)

func (t Type) String() string {
	switch t {
	case TUInt:
		return "UInt"
	case TBool:
		return "Bool"
	case TBytes:
		return "Bytes"
	case TAddress:
		return "Address"
	default:
		return "Invalid"
	}
}

// Value is a runtime value crossing the frontend/backend boundary: API
// arguments and returns, view results and constructor parameters.
type Value struct {
	Type  Type
	Uint  uint64
	Bytes []byte
	Addr  [20]byte
	Bool  bool
}

// Uint64Value wraps a TUInt.
func Uint64Value(v uint64) Value { return Value{Type: TUInt, Uint: v} }

// BytesValue wraps a TBytes.
func BytesValue(b []byte) Value { return Value{Type: TBytes, Bytes: b} }

// AddressValue wraps a TAddress.
func AddressValue(a [20]byte) Value { return Value{Type: TAddress, Addr: a} }

// BoolValue wraps a TBool.
func BoolValue(b bool) Value { return Value{Type: TBool, Bool: b} }

func (v Value) String() string {
	switch v.Type {
	case TUInt:
		return fmt.Sprintf("%d", v.Uint)
	case TBool:
		return fmt.Sprintf("%t", v.Bool)
	case TBytes:
		return fmt.Sprintf("%q", v.Bytes)
	case TAddress:
		return fmt.Sprintf("0x%x", v.Addr)
	default:
		return "<invalid>"
	}
}
