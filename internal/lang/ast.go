package lang

// Expr is a typed expression node. Expressions are pure: all effects live in
// statements, which keeps the verifier's path analysis simple.
type Expr interface {
	exprNode()
}

// Const is a literal.
type Const struct {
	Type  Type
	Uint  uint64
	Bytes []byte
	Bool  bool
}

// Arg references the i-th parameter of the enclosing API or constructor.
type Arg struct {
	Index int
}

// GlobalRef reads a global state variable.
type GlobalRef struct {
	Name string
}

// MapGet reads Map[key]; reading an absent key is a runtime failure, so
// bodies guard it with MapHas (the verifier checks this).
type MapGet struct {
	Map string
	Key Expr
}

// MapHas tests key presence.
type MapHas struct {
	Map string
	Key Expr
}

// BinOp is a binary operator.
type BinOp int

// Binary operators. Concat applies to TBytes; the comparisons yield TBool.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
	OpAnd
	OpOr
	OpConcat
)

func (op BinOp) String() string {
	return [...]string{"+", "-", "*", "/", "%", "<", ">", "<=", ">=", "==", "!=", "&&", "||", "++"}[op]
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	A, B Expr
}

// Not negates a TBool.
type Not struct {
	A Expr
}

// Balance reads the contract's native-token balance (Reach's balance()).
type Balance struct{}

// Caller is the address invoking the current API (Reach's `this`).
type Caller struct{}

// Paid is the native-token amount attached to the current call.
type Paid struct{}

// Now is the consensus timestamp (seconds).
type Now struct{}

// Digest hashes the argument (Reach's digest). Result is TBytes.
type Digest struct {
	A Expr
}

// SigVerify checks an ed25519 signature (sigok(pub, msg, sig)). All three
// operands are TBytes; the result is TBool. It lowers only to the VM
// precompiles (Options.Precompiles) — there is no interpreted bytecode
// equivalent, signature math does not belong in a contract loop.
type SigVerify struct {
	Pub, Msg, Sig Expr
}

// CellContains tests open-location-code containment
// (contains(cell, code)): whether code lies in the area cell, with the
// cell stored as a stripped even-length OLC prefix so containment is a raw
// byte-prefix check. Both operands are TBytes; the result is TBool.
type CellContains struct {
	Cell, Code Expr
}

func (*Const) exprNode()        {}
func (*Arg) exprNode()          {}
func (*GlobalRef) exprNode()    {}
func (*MapGet) exprNode()       {}
func (*MapHas) exprNode()       {}
func (*Bin) exprNode()          {}
func (*Not) exprNode()          {}
func (*Balance) exprNode()      {}
func (*Caller) exprNode()       {}
func (*Paid) exprNode()         {}
func (*Now) exprNode()          {}
func (*Digest) exprNode()       {}
func (*SigVerify) exprNode()    {}
func (*CellContains) exprNode() {}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
}

// Assume rejects the call when cond is false, attributing the failure to the
// caller's inputs (Reach's assume: checked when participants may be
// dishonest).
type Assume struct {
	Cond Expr
	Msg  string
}

// Require rejects the call when cond is false and is additionally a theorem
// the static verifier must discharge for honest participants (Reach's
// require).
type Require struct {
	Cond Expr
	Msg  string
}

// SetGlobal assigns a global.
type SetGlobal struct {
	Name  string
	Value Expr
}

// MapSet writes Map[key] = value.
type MapSet struct {
	Map   string
	Key   Expr
	Value Expr
}

// MapDel deletes Map[key].
type MapDel struct {
	Map string
	Key Expr
}

// Transfer moves amount of the contract's balance to an address (Reach's
// transfer(amount).to(addr)).
type Transfer struct {
	Amount Expr
	To     Expr
}

// If branches.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// Emit publishes an event with a payload (surfaces as an EVM log / AVM log).
type Emit struct {
	Event string
	Value Expr
}

// Return ends the API with a result value. Every API path must end in a
// Return; the type checker enforces it.
type Return struct {
	Value Expr
}

func (*Assume) stmtNode()    {}
func (*Require) stmtNode()   {}
func (*SetGlobal) stmtNode() {}
func (*MapSet) stmtNode()    {}
func (*MapDel) stmtNode()    {}
func (*Transfer) stmtNode()  {}
func (*If) stmtNode()        {}
func (*Emit) stmtNode()      {}
func (*Return) stmtNode()    {}
