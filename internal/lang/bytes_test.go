package lang

import (
	"bytes"
	"strings"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

// bytesProgram exercises the byte-string machinery both backends must get
// right: long constants (> one EVM word), empty strings, concatenation,
// digests, equality, storage round trips.
func bytesProgram(t *testing.T) *Program {
	t.Helper()
	p := NewProgram("bytes")
	p.DeclareGlobal("blob", TBytes)
	p.DeclareMap("m", TUInt, TBytes)
	p.SetConstructor(nil)
	p.AddAPI(&API{
		Name: "store", Params: []Param{{Name: "k", Type: TUInt}, {Name: "v", Type: TBytes}},
		Returns: TUInt,
		Body: []Stmt{
			&MapSet{Map: "m", Key: A(0), Value: A(1)},
			&SetGlobal{Name: "blob", Value: Concat(Bs("hdr:"), A(1))},
			&Return{Value: U(1)},
		},
	})
	p.AddAPI(&API{
		Name: "load", Params: []Param{{Name: "k", Type: TUInt}}, Returns: TBytes,
		Body: []Stmt{
			&Assume{Cond: &MapHas{Map: "m", Key: A(0)}, Msg: "present"},
			&Return{Value: &MapGet{Map: "m", Key: A(0)}},
		},
	})
	p.AddAPI(&API{
		Name: "longconst", Params: []Param{}, Returns: TBytes,
		Body: []Stmt{
			&Return{Value: Bs(strings.Repeat("agnopol!", 13))}, // 104 bytes
		},
	})
	p.AddAPI(&API{
		Name: "empty", Params: []Param{}, Returns: TBytes,
		Body: []Stmt{
			&Return{Value: Concat(Bs(""), Bs(""))},
		},
	})
	p.AddAPI(&API{
		Name: "eqcheck", Params: []Param{{Name: "a", Type: TBytes}, {Name: "b", Type: TBytes}},
		Returns: TBool,
		Body: []Stmt{
			&Return{Value: Eq(A(0), A(1))},
		},
	})
	p.AddAPI(&API{
		Name: "digest", Params: []Param{{Name: "a", Type: TBytes}}, Returns: TBytes,
		Body: []Stmt{
			&Return{Value: &Digest{A: A(0)}},
		},
	})
	p.AddView("getBlob", TBytes, G("blob"))
	return p
}

// backendRunner abstracts the two execution paths for this test.
type backendRunner interface {
	call(t *testing.T, method string, args ...Value) (Value, bool)
	view(t *testing.T, name string) Value
}

type evmRunner struct {
	h *evmHarness
	c *Compiled
}

func (r *evmRunner) call(t *testing.T, method string, args ...Value) (Value, bool) {
	t.Helper()
	var params []Param
	if method == CtorMethodName {
		params = r.c.Program.Ctor.Params
	} else {
		params = r.c.Program.FindAPI(method).Params
	}
	res := r.h.call(method, params, 0, args...)
	if res.Err != nil || res.Reverted {
		return Value{}, false
	}
	if method == CtorMethodName {
		return Value{}, true
	}
	out, err := DecodeReturnEVM(r.c.Program.FindAPI(method).Returns, res.ReturnData)
	if err != nil {
		t.Fatalf("decode %s: %v", method, err)
	}
	return out, true
}

func (r *evmRunner) view(t *testing.T, name string) Value {
	t.Helper()
	data, err := EncodeArgsEVM(name, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Reuse the harness state through a read-only execution.
	res := r.h.call(name, nil, 0)
	_ = data
	if res.Err != nil || res.Reverted {
		t.Fatalf("view %s failed: %+v", name, res)
	}
	v, ok := r.c.Program.FindView(name)
	if !ok {
		t.Fatalf("no view %s", name)
	}
	out, err := DecodeReturnEVM(v.Type, res.ReturnData)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

type tealRunner struct {
	c      *Compiled
	ledger *avm.MemLedger
	appID  uint64
	sender chain.Address
}

func (r *tealRunner) exec(t *testing.T, method string, create bool, args ...Value) (Value, bool) {
	t.Helper()
	var params []Param
	var retType Type
	name := method
	switch {
	case create:
		params = r.c.Program.Ctor.Params
		name = ""
	case strings.HasPrefix(method, "view:"):
		v, ok := r.c.Program.FindView(strings.TrimPrefix(method, "view:"))
		if !ok {
			t.Fatalf("no view %s", method)
		}
		retType = v.Type
	default:
		api := r.c.Program.FindAPI(method)
		params = api.Params
		retType = api.Returns
	}
	appArgs, err := EncodeArgsTEAL(name, params, args)
	if err != nil {
		t.Fatal(err)
	}
	res := avm.Execute(r.c.TEALProgram, r.ledger, avm.TxContext{
		Sender: r.sender, AppID: r.appID, CreateMode: create, Args: appArgs, BudgetTxns: 8,
	})
	if !res.Approved {
		return Value{}, false
	}
	if create {
		return Value{}, true
	}
	out, err := DecodeReturnTEAL(retType, res.Return)
	if err != nil {
		t.Fatalf("decode %s: %v", method, err)
	}
	return out, true
}

func (r *tealRunner) call(t *testing.T, method string, args ...Value) (Value, bool) {
	return r.exec(t, method, method == CtorMethodName, args...)
}

func (r *tealRunner) view(t *testing.T, name string) Value {
	v, ok := r.exec(t, "view:"+name, false)
	if !ok {
		t.Fatalf("view %s rejected", name)
	}
	return v
}

func TestBytesSemanticsBothBackends(t *testing.T) {
	compiled, err := Compile(bytesProgram(t), Options{MaxBytesLen: 256})
	if err != nil {
		t.Fatal(err)
	}
	long := []byte(strings.Repeat("agnopol!", 13))
	payload := bytes.Repeat([]byte{0x41, 0x42, 0x43}, 50) // 150 bytes

	runners := map[string]backendRunner{}
	evmH := newEVMHarness(t, compiled)
	runners["evm"] = &evmRunner{h: evmH, c: compiled}
	led := avm.NewMemLedger()
	sender := chain.AddressFromBytes([]byte("s"))
	led.Balances[sender] = 1e6
	runners["teal"] = &tealRunner{c: compiled, ledger: led, appID: 7, sender: sender}

	for name, r := range runners {
		t.Run(name, func(t *testing.T) {
			if _, ok := r.call(t, CtorMethodName); !ok {
				t.Fatal("ctor failed")
			}
			if _, ok := r.call(t, "store", Uint64Value(1), BytesValue(payload)); !ok {
				t.Fatal("store failed")
			}
			got, ok := r.call(t, "load", Uint64Value(1))
			if !ok || !bytes.Equal(got.Bytes, payload) {
				t.Fatalf("load = %d bytes, ok=%v", len(got.Bytes), ok)
			}
			blob := r.view(t, "getBlob")
			if want := append([]byte("hdr:"), payload...); !bytes.Equal(blob.Bytes, want) {
				t.Fatalf("blob = %.20q… (%d bytes), want %d bytes", blob.Bytes, len(blob.Bytes), len(want))
			}
			lc, ok := r.call(t, "longconst")
			if !ok || !bytes.Equal(lc.Bytes, long) {
				t.Fatalf("longconst = %d bytes", len(lc.Bytes))
			}
			empty, ok := r.call(t, "empty")
			if !ok || len(empty.Bytes) != 0 {
				t.Fatalf("empty = %q", empty.Bytes)
			}
			eq, ok := r.call(t, "eqcheck", BytesValue([]byte("same")), BytesValue([]byte("same")))
			if !ok || !eq.Bool {
				t.Fatal("equal bytes compared unequal")
			}
			ne, ok := r.call(t, "eqcheck", BytesValue([]byte("same")), BytesValue([]byte("diff")))
			if !ok || ne.Bool {
				t.Fatal("different bytes compared equal")
			}
			d, ok := r.call(t, "digest", BytesValue([]byte("hash me")))
			if !ok || len(d.Bytes) != 32 {
				t.Fatalf("digest = %d bytes", len(d.Bytes))
			}
		})
	}

	// Digests agree across backends (same hash function on both).
	evmD, _ := runners["evm"].call(t, "digest", BytesValue([]byte("cross")))
	tealD, _ := runners["teal"].call(t, "digest", BytesValue([]byte("cross")))
	if !bytes.Equal(evmD.Bytes, tealD.Bytes) {
		t.Fatal("digest differs between backends")
	}
}
