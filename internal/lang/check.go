package lang

import (
	"errors"
	"fmt"
)

// ErrType reports a type error in a program.
var ErrType = errors.New("lang: type error")

type checker struct {
	p      *Program
	params []Param
	errs   []error
}

// Check type-checks the whole program: constructor, every API and view. It
// returns all errors found.
func Check(p *Program) error {
	seen := map[string]bool{}
	var errs []error
	for _, g := range p.Globals {
		if seen["g:"+g.Name] {
			errs = append(errs, fmt.Errorf("%w: duplicate global %q", ErrType, g.Name))
		}
		seen["g:"+g.Name] = true
		if g.Type != TUInt && g.Type != TBytes && g.Type != TAddress {
			errs = append(errs, fmt.Errorf("%w: global %q has unsupported type %s", ErrType, g.Name, g.Type))
		}
	}
	for _, m := range p.Maps {
		if seen["m:"+m.Name] {
			errs = append(errs, fmt.Errorf("%w: duplicate map %q", ErrType, m.Name))
		}
		seen["m:"+m.Name] = true
		if m.Key != TUInt {
			errs = append(errs, fmt.Errorf("%w: map %q key must be UInt (the connector-portable key type, §2.4)", ErrType, m.Name))
		}
		if m.Value != TBytes && m.Value != TUInt {
			errs = append(errs, fmt.Errorf("%w: map %q value must be Bytes or UInt", ErrType, m.Name))
		}
	}

	c := &checker{p: p, params: p.Ctor.Params}
	c.stmts(p.Ctor.Body, TInvalid, "constructor")
	errs = append(errs, c.errs...)

	apiNames := map[string]bool{}
	for _, a := range p.APIs {
		if apiNames[a.Name] {
			errs = append(errs, fmt.Errorf("%w: duplicate API %q", ErrType, a.Name))
		}
		apiNames[a.Name] = true
		c := &checker{p: p, params: a.Params}
		if a.Pay != nil {
			c.expect(a.Pay, TUInt, "API "+a.Name+" pay")
		}
		if a.Returns == TInvalid {
			errs = append(errs, fmt.Errorf("%w: API %q must declare a return type", ErrType, a.Name))
		}
		if !c.stmts(a.Body, a.Returns, "API "+a.Name) {
			errs = append(errs, fmt.Errorf("%w: API %q has a path that does not Return", ErrType, a.Name))
		}
		errs = append(errs, c.errs...)
	}

	for _, v := range p.Views {
		c := &checker{p: p}
		c.expect(v.Expr, v.Type, "view "+v.Name)
		errs = append(errs, c.errs...)
	}
	return errors.Join(errs...)
}

func (c *checker) fail(where string, format string, args ...any) Type {
	c.errs = append(c.errs, fmt.Errorf("%w: %s: %s", ErrType, where, fmt.Sprintf(format, args...)))
	return TInvalid
}

func (c *checker) expect(e Expr, want Type, where string) {
	got := c.typeOf(e, where)
	if got != TInvalid && got != want {
		c.fail(where, "want %s, got %s", want, got)
	}
}

// stmts checks a statement list; it returns true when every control path
// ends in Return (always true for the constructor, which takes TInvalid as
// returns-type and ignores termination).
func (c *checker) stmts(body []Stmt, returns Type, where string) bool {
	terminated := false
	for i, s := range body {
		if terminated {
			c.fail(where, "unreachable statement %d after Return", i)
		}
		switch s := s.(type) {
		case *Assume:
			c.expect(s.Cond, TBool, where+" assume")
		case *Require:
			c.expect(s.Cond, TBool, where+" require")
		case *SetGlobal:
			gi, err := c.p.globalIndex(s.Name)
			if err != nil {
				c.fail(where, "%v", err)
				continue
			}
			c.expect(s.Value, c.p.Globals[gi].Type, where+" set "+s.Name)
		case *MapSet:
			mi, err := c.p.mapIndex(s.Map)
			if err != nil {
				c.fail(where, "%v", err)
				continue
			}
			c.expect(s.Key, c.p.Maps[mi].Key, where+" map key")
			c.expect(s.Value, c.p.Maps[mi].Value, where+" map value")
		case *MapDel:
			mi, err := c.p.mapIndex(s.Map)
			if err != nil {
				c.fail(where, "%v", err)
				continue
			}
			c.expect(s.Key, c.p.Maps[mi].Key, where+" map key")
		case *Transfer:
			c.expect(s.Amount, TUInt, where+" transfer amount")
			c.expect(s.To, TAddress, where+" transfer to")
		case *If:
			c.expect(s.Cond, TBool, where+" if cond")
			thenRet := c.stmts(s.Then, returns, where+" then")
			elseRet := c.stmts(s.Else, returns, where+" else")
			if thenRet && elseRet {
				terminated = true
			}
		case *Emit:
			c.typeOf(s.Value, where+" emit")
		case *Return:
			if returns == TInvalid {
				c.fail(where, "Return not allowed in constructor")
				continue
			}
			c.expect(s.Value, returns, where+" return")
			terminated = true
		default:
			c.fail(where, "unknown statement %T", s)
		}
	}
	return terminated || returns == TInvalid
}

//nolint:gocyclo // exhaustive type dispatch.
func (c *checker) typeOf(e Expr, where string) Type {
	switch e := e.(type) {
	case *Const:
		return e.Type
	case *Arg:
		if e.Index < 0 || e.Index >= len(c.params) {
			return c.fail(where, "argument index %d out of range (%d params)", e.Index, len(c.params))
		}
		return c.params[e.Index].Type
	case *GlobalRef:
		gi, err := c.p.globalIndex(e.Name)
		if err != nil {
			return c.fail(where, "%v", err)
		}
		return c.p.Globals[gi].Type
	case *MapGet:
		mi, err := c.p.mapIndex(e.Map)
		if err != nil {
			return c.fail(where, "%v", err)
		}
		c.expect(e.Key, c.p.Maps[mi].Key, where+" map key")
		return c.p.Maps[mi].Value
	case *MapHas:
		mi, err := c.p.mapIndex(e.Map)
		if err != nil {
			return c.fail(where, "%v", err)
		}
		c.expect(e.Key, c.p.Maps[mi].Key, where+" map key")
		return TBool
	case *Bin:
		a := c.typeOf(e.A, where)
		b := c.typeOf(e.B, where)
		if a == TInvalid || b == TInvalid {
			return TInvalid
		}
		switch e.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMod:
			if a != TUInt || b != TUInt {
				return c.fail(where, "%s needs UInt operands, got %s, %s", e.Op, a, b)
			}
			return TUInt
		case OpLt, OpGt, OpLe, OpGe:
			if a != TUInt || b != TUInt {
				return c.fail(where, "%s needs UInt operands, got %s, %s", e.Op, a, b)
			}
			return TBool
		case OpEq, OpNe:
			if a != b {
				return c.fail(where, "%s needs matching operand types, got %s, %s", e.Op, a, b)
			}
			return TBool
		case OpAnd, OpOr:
			if a != TBool || b != TBool {
				return c.fail(where, "%s needs Bool operands, got %s, %s", e.Op, a, b)
			}
			return TBool
		case OpConcat:
			if a != TBytes || b != TBytes {
				return c.fail(where, "++ needs Bytes operands, got %s, %s", a, b)
			}
			return TBytes
		default:
			return c.fail(where, "unknown operator %d", e.Op)
		}
	case *Not:
		c.expect(e.A, TBool, where)
		return TBool
	case *Balance, *Paid, *Now:
		return TUInt
	case *Caller:
		return TAddress
	case *Digest:
		c.typeOf(e.A, where)
		return TBytes

	case *SigVerify:
		for i, sub := range []Expr{e.Pub, e.Msg, e.Sig} {
			if t := c.typeOf(sub, where); t != TBytes {
				return c.fail(where, "sigok argument %d is %s, want Bytes", i+1, t)
			}
		}
		return TBool

	case *CellContains:
		if t := c.typeOf(e.Cell, where); t != TBytes {
			return c.fail(where, "contains cell is %s, want Bytes", t)
		}
		if t := c.typeOf(e.Code, where); t != TBytes {
			return c.fail(where, "contains code is %s, want Bytes", t)
		}
		return TBool

	default:
		return c.fail(where, "unknown expression %T", e)
	}
}
