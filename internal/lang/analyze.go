package lang

import (
	"fmt"
	"strings"

	"agnopol/internal/evm"
)

// Analysis is the compiler's conservative (worst-case) resource analysis,
// the counterpart of the Reach output shown in Fig. 5.1 of the thesis. The
// estimates are upper bounds under the stated assumption on byte-string
// sizes; a property test checks they dominate the gas actually measured on
// the simulated chains.
type Analysis struct {
	Program string
	// MaxBytesLen is the assumed upper bound on every Bytes value
	// (mirrors Reach's Bytes(N) annotations; the thesis contract uses
	// Bytes(128) for positions and Bytes(512) for the concatenated data).
	MaxBytesLen int

	// EVM deployment: code size drives the Gcodedeposit term.
	EVMCodeBytes  int
	EVMDeployGas  uint64 // intrinsic create + code deposit + worst ctor execution
	TEALSourceLen int

	Methods []MethodCost
}

// MethodCost is the per-method worst case.
type MethodCost struct {
	Name         string
	Kind         string // "constructor", "api", "view"
	EVMGas       uint64 // execution gas, excluding intrinsic
	EVMIntrinsic uint64 // 21000 + worst-case calldata
	AVMCost      uint64 // opcode budget
	AVMBudget    int    // grouped transactions needed (ceil cost/700)
	StorageSlots int    // worst-case storage slots written
}

// TotalEVMGas is the number the paper quotes per operation (e.g. attach =
// 82,437 gas): intrinsic plus execution.
func (m MethodCost) TotalEVMGas() uint64 { return m.EVMGas + m.EVMIntrinsic }

// String renders the analysis in the style of Fig. 5.1.
func (a *Analysis) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Conservative analysis of %q (Bytes ≤ %d)\n", a.Program, a.MaxBytesLen)
	fmt.Fprintf(&sb, "  EVM code size: %d bytes; worst-case deploy gas: %d\n", a.EVMCodeBytes, a.EVMDeployGas)
	fmt.Fprintf(&sb, "  TEAL source: %d bytes\n", a.TEALSourceLen)
	fmt.Fprintf(&sb, "  %-16s %-12s %12s %12s %10s %8s\n", "method", "kind", "EVM gas", "intrinsic", "AVM cost", "slots")
	for _, m := range a.Methods {
		fmt.Fprintf(&sb, "  %-16s %-12s %12d %12d %10d %8d\n",
			m.Name, m.Kind, m.EVMGas, m.EVMIntrinsic, m.AVMCost, m.StorageSlots)
	}
	return sb.String()
}

type analyzer struct {
	p        *Program
	maxBytes uint64
	params   []Param
}

// Analyze computes the conservative analysis of a checked program.
// evmCode is the compiled EVM bytecode (for the code-deposit term);
// tealSrc the TEAL source.
func Analyze(p *Program, evmCode []byte, tealSrc string, maxBytesLen int) *Analysis {
	if maxBytesLen <= 0 {
		maxBytesLen = 512
	}
	an := &analyzer{p: p, maxBytes: uint64(maxBytesLen)}
	a := &Analysis{
		Program:       p.Name,
		MaxBytesLen:   maxBytesLen,
		EVMCodeBytes:  len(evmCode),
		TEALSourceLen: len(tealSrc),
	}

	ctorGas, ctorCost, ctorSlots := an.method(p.Ctor.Params, p.Ctor.Body, nil)
	// The constructor additionally writes the deploy-once flag (one cold
	// zero→non-zero SSTORE).
	ctorGas += evm.GasColdSLoad + evm.GasSSet + 30
	ctorIntrinsic := an.intrinsic(p.Ctor.Params, true)
	a.Methods = append(a.Methods, MethodCost{
		Name: "ctor", Kind: "constructor",
		EVMGas: ctorGas, EVMIntrinsic: ctorIntrinsic,
		AVMCost: ctorCost, AVMBudget: budgetTxns(ctorCost), StorageSlots: ctorSlots + 1,
	})
	// Deployment: intrinsic (with create surcharge), the calldata cost of
	// shipping the runtime code itself, the per-byte code deposit, and
	// the constructor execution.
	a.EVMDeployGas = ctorIntrinsic +
		uint64(len(evmCode)+8)*evm.GasTxDataNonZero +
		uint64(len(evmCode))*evm.GasCodeDeposit +
		ctorGas

	for _, api := range p.APIs {
		gas, cost, slots := an.method(api.Params, api.Body, api.Pay)
		a.Methods = append(a.Methods, MethodCost{
			Name: api.Name, Kind: "api",
			EVMGas: gas, EVMIntrinsic: an.intrinsic(api.Params, false),
			AVMCost: cost, AVMBudget: budgetTxns(cost), StorageSlots: slots,
		})
	}
	for _, v := range p.Views {
		gas := an.dispatchGas() + an.exprGas(v.Expr) + 20
		cost := an.dispatchCost() + an.exprCost(v.Expr) + 8
		a.Methods = append(a.Methods, MethodCost{
			Name: v.Name, Kind: "view",
			EVMGas: gas, EVMIntrinsic: 0, // views are free (§4.1.2)
			AVMCost: cost, AVMBudget: budgetTxns(cost),
		})
	}
	return a
}

func budgetTxns(cost uint64) int {
	n := int((cost + 699) / 700)
	if n < 1 {
		n = 1
	}
	return n
}

// intrinsic is the worst-case intrinsic transaction gas: base cost plus
// all-non-zero calldata.
func (an *analyzer) intrinsic(params []Param, create bool) uint64 {
	bytes := uint64(4) // selector
	for _, p := range params {
		bytes += 32
		if p.Type == TBytes {
			bytes += 32 + roundUp32(an.maxBytes)
		}
	}
	gas := uint64(evm.GasTransaction) + bytes*evm.GasTxDataNonZero
	if create {
		gas += evm.GasTxCreate
	}
	return gas
}

func roundUp32(n uint64) uint64 { return (n + 31) / 32 * 32 }

func (an *analyzer) chunks() uint64 { return (an.maxBytes + 31) / 32 }

// dispatchGas is the selector-dispatch and deploy-guard overhead.
func (an *analyzer) dispatchGas() uint64 {
	// free-pointer init, selector load/shift, one comparison per method,
	// cold SLOAD of the deployed flag, value check.
	return 30 + uint64(len(an.p.APIs)+len(an.p.Views)+1)*15 + evm.GasColdSLoad + 30
}

func (an *analyzer) dispatchCost() uint64 {
	return 3 + uint64(len(an.p.APIs)+len(an.p.Views))*4 + 4
}

func (an *analyzer) method(params []Param, body []Stmt, pay Expr) (evmGas, avmCost uint64, slots int) {
	an.params = params
	evmGas = an.dispatchGas()
	avmCost = an.dispatchCost()
	if pay != nil {
		evmGas += an.exprGas(pay) + 10
		avmCost += an.exprCost(pay) + 3
	} else {
		evmGas += 15
		avmCost += 3
	}
	g, c, s := an.stmtsGas(body)
	return evmGas + g, avmCost + c, s
}

// stmtsGas returns worst-case (EVM gas, AVM cost, storage slots) of a body,
// taking the max over If branches.
func (an *analyzer) stmtsGas(body []Stmt) (uint64, uint64, int) {
	var gas, cost uint64
	slots := 0
	for _, s := range body {
		g, c, sl := an.stmtGas(s)
		gas += g
		cost += c
		slots += sl
	}
	return gas, cost, slots
}

//nolint:gocyclo // cost model mirrors the statement forms.
func (an *analyzer) stmtGas(s Stmt) (uint64, uint64, int) {
	const sstoreWorst = evm.GasColdSLoad + evm.GasSSet // cold + zero→non-zero
	switch s := s.(type) {
	case *Assume:
		return an.exprGas(s.Cond) + 15, an.exprCost(s.Cond) + 1, 0
	case *Require:
		return an.exprGas(s.Cond) + 15, an.exprCost(s.Cond) + 1, 0
	case *SetGlobal:
		gi, _ := an.p.globalIndex(s.Name)
		if an.p.Globals[gi].Type == TBytes {
			g := an.exprGas(s.Value) + 60 + sstoreWorst + an.chunks()*(sstoreWorst+70)
			return g, an.exprCost(s.Value) + 3, 1 + int(an.chunks())
		}
		return an.exprGas(s.Value) + 6 + sstoreWorst, an.exprCost(s.Value) + 3, 1
	case *MapSet:
		mi, _ := an.p.mapIndex(s.Map)
		base := an.exprGas(s.Key) + 60 + 36 // key + keccak
		if an.p.Maps[mi].Value == TBytes {
			g := base + an.exprGas(s.Value) + 60 + sstoreWorst + an.chunks()*(sstoreWorst+70)
			return g, an.exprCost(s.Key) + an.exprCost(s.Value) + 6, 1 + int(an.chunks())
		}
		return base + an.exprGas(s.Value) + 15 + sstoreWorst, an.exprCost(s.Key) + an.exprCost(s.Value) + 6, 1
	case *MapDel:
		mi, _ := an.p.mapIndex(s.Map)
		base := an.exprGas(s.Key) + 60 + 36
		if an.p.Maps[mi].Value == TBytes {
			// Deleting reads the length then zeroes marker and chunks
			// (refunds accrue separately).
			g := base + evm.GasColdSLoad + 100 + (an.chunks()+1)*(evm.GasSReset+70)
			return g, an.exprCost(s.Key) + 5, 0
		}
		return base + evm.GasSReset + 10, an.exprCost(s.Key) + 5, 0
	case *Transfer:
		g := an.exprGas(s.Amount) + an.exprGas(s.To) + 30 +
			evm.GasColdAccount + evm.GasCallValue + evm.GasNewAccount
		return g, an.exprCost(s.Amount) + an.exprCost(s.To) + 7, 0
	case *If:
		tg, tc, ts := an.stmtsGas(s.Then)
		eg, ec, es := an.stmtsGas(s.Else)
		g := an.exprGas(s.Cond) + 25 + maxU64(tg, eg)
		c := an.exprCost(s.Cond) + 2 + maxU64(tc, ec)
		return g, c, maxInt(ts, es)
	case *Emit:
		g := an.exprGas(s.Value) + evm.GasLog + evm.GasLogTopic + evm.GasLogData*an.maxBytes + 20
		return g, an.exprCost(s.Value) + 4, 0
	case *Return:
		return an.exprGas(s.Value) + 20, an.exprCost(s.Value) + 8, 0
	default:
		return 0, 0, 0
	}
}

//nolint:gocyclo // cost model mirrors the expression forms.
func (an *analyzer) exprGas(e Expr) uint64 {
	switch e := e.(type) {
	case *Const:
		if e.Type == TBytes {
			return 45 + uint64((len(e.Bytes)+31)/32)*9
		}
		return 3
	case *Arg:
		if e.Index >= 0 && e.Index < len(an.params) && an.params[e.Index].Type == TBytes {
			return 80 + an.chunks()*70
		}
		return 6
	case *GlobalRef:
		gi, _ := an.p.globalIndex(e.Name)
		if an.p.Globals[gi].Type == TBytes {
			return 80 + evm.GasColdSLoad + an.chunks()*(evm.GasColdSLoad+70)
		}
		return 3 + evm.GasColdSLoad
	case *MapGet:
		mi, _ := an.p.mapIndex(e.Map)
		base := an.exprGas(e.Key) + 60 + 36
		if an.p.Maps[mi].Value == TBytes {
			return base + 80 + evm.GasColdSLoad + an.chunks()*(evm.GasColdSLoad+70)
		}
		return base + evm.GasColdSLoad + 6
	case *MapHas:
		return an.exprGas(e.Key) + 60 + 36 + evm.GasColdSLoad + 6
	case *Bin:
		g := an.exprGas(e.A) + an.exprGas(e.B)
		switch e.Op {
		case OpConcat:
			return g + 100 + 2*an.chunks()*70
		case OpEq, OpNe:
			// Bytes equality hashes both sides; uint equality is cheap.
			return g + 2*(evm.GasKeccak256+evm.GasKeccak256Word*an.chunks()) + 10
		default:
			return g + 10
		}
	case *Not:
		return an.exprGas(e.A) + 3
	case *Balance:
		return evm.GasLow
	case *Caller, *Paid, *Now:
		return evm.GasBase
	case *Digest:
		return an.exprGas(e.A) + evm.GasKeccak256 + evm.GasKeccak256Word*an.chunks() + 60
	case *SigVerify:
		// Precompiled ed25519 verification: flat base plus the CALL's warm
		// access and descriptor plumbing.
		return an.exprGas(e.Pub) + an.exprGas(e.Msg) + an.exprGas(e.Sig) + 3000 + evm.GasWarmAccess + 200
	case *CellContains:
		// Worst of the two lowerings: the interpreted path hashes both
		// operands like a bytes equality.
		return an.exprGas(e.Cell) + an.exprGas(e.Code) + 2*(evm.GasKeccak256+evm.GasKeccak256Word*an.chunks()) + 30
	default:
		return 0
	}
}

//nolint:gocyclo // cost model mirrors the expression forms.
func (an *analyzer) exprCost(e Expr) uint64 {
	switch e := e.(type) {
	case *Const:
		return 1
	case *Arg:
		return 2
	case *GlobalRef:
		return 2
	case *MapGet:
		return an.exprCost(e.Key) + 5
	case *MapHas:
		return an.exprCost(e.Key) + 8
	case *Bin:
		return an.exprCost(e.A) + an.exprCost(e.B) + 1
	case *Not:
		return an.exprCost(e.A) + 1
	case *Balance:
		return 2
	case *Caller, *Paid, *Now:
		return 1
	case *Digest:
		return an.exprCost(e.A) + 36
	case *SigVerify:
		return an.exprCost(e.Pub) + an.exprCost(e.Msg) + an.exprCost(e.Sig) + 1900
	case *CellContains:
		return an.exprCost(e.Cell) + an.exprCost(e.Code) + 25
	default:
		return 0
	}
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
