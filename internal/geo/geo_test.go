package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	bologna := LatLng{Lat: 44.4949, Lng: 11.3426}
	milan := LatLng{Lat: 45.4642, Lng: 9.19}
	got := DistanceMeters(bologna, milan)
	// Great-circle Bologna–Milan is ≈ 201 km.
	if got < 195_000 || got > 210_000 {
		t.Fatalf("Bologna–Milan distance %.0f m, want ≈201 km", got)
	}
	if d := DistanceMeters(bologna, bologna); d != 0 {
		t.Fatalf("self-distance %f, want 0", d)
	}
}

func TestDistanceSymmetry(t *testing.T) {
	err := quick.Check(func(lat1, lng1, lat2, lng2 float64) bool {
		a := LatLng{Lat: math.Mod(lat1, 90), Lng: math.Mod(lng1, 180)}
		b := LatLng{Lat: math.Mod(lat2, 90), Lng: math.Mod(lng2, 180)}
		d1, d2 := DistanceMeters(a, b), DistanceMeters(b, a)
		return math.Abs(d1-d2) < 1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffsetDistance(t *testing.T) {
	p := LatLng{Lat: 44.5, Lng: 11.3}
	q := Offset(p, 30, 40) // 3-4-5 triangle: 50 m
	if d := DistanceMeters(p, q); math.Abs(d-50) > 0.5 {
		t.Fatalf("offset(30,40) distance %.2f m, want ≈50", d)
	}
}

func TestBluetoothRange(t *testing.T) {
	p := LatLng{Lat: 44.5, Lng: 11.3}
	if !WithinBluetoothRange(p, Offset(p, 5, 5)) {
		t.Fatal("7 m apart should be in range")
	}
	if WithinBluetoothRange(p, Offset(p, 10, 10)) {
		t.Fatal("14 m apart should be out of range")
	}
}

func TestSpoofDoesNotMoveDevice(t *testing.T) {
	shop := LatLng{Lat: 44.49, Lng: 11.34}
	home := Offset(shop, 5000, 0)
	d := NewDevice(home)
	d.Spoof(shop)
	if d.TruePosition != home {
		t.Fatal("spoofing moved the physical device")
	}
	if d.ClaimedPosition != shop {
		t.Fatal("spoofed claim not recorded")
	}
	// Bluetooth reachability uses the true position.
	other := NewDevice(shop)
	if d.CanReach(other) {
		t.Fatal("spoofed device must not be reachable at the claimed spot")
	}
}

func TestMoveToKeepsHonestyInvariant(t *testing.T) {
	a := LatLng{Lat: 44, Lng: 11}
	b := LatLng{Lat: 45, Lng: 12}
	honest := NewDevice(a)
	honest.MoveTo(b)
	if honest.ClaimedPosition != b {
		t.Fatal("honest device should update its claim on move")
	}
	liar := NewDevice(a)
	liar.Spoof(LatLng{Lat: 50, Lng: 1})
	liar.MoveTo(b)
	if liar.ClaimedPosition == b {
		t.Fatal("spoofing device must keep its fake claim after moving")
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		p  LatLng
		ok bool
	}{
		{LatLng{0, 0}, true},
		{LatLng{90, 180}, true},
		{LatLng{-90, -180}, true},
		{LatLng{91, 0}, false},
		{LatLng{0, 181}, false},
		{LatLng{-90.01, 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.ok {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.ok)
		}
	}
}
