// Package geo models the physical-world substrate of the proof-of-location
// system: positions, distances and short-range ("Bluetooth") proximity.
//
// The paper assumes mobile devices with GPS (spoofable — a device may *claim*
// any coordinates) and Bluetooth (not spoofable at protocol level — two
// devices can only complete a Bluetooth exchange when they are physically
// within radio range). Device captures both: TruePosition drives proximity,
// ClaimedPosition drives what the device reports, and an honest device keeps
// the two equal.
package geo

import (
	"fmt"
	"math"
)

// LatLng is a WGS84 coordinate pair in degrees.
type LatLng struct {
	Lat float64
	Lng float64
}

func (p LatLng) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lng)
}

// Valid reports whether the coordinates are inside the WGS84 domain.
func (p LatLng) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180
}

const earthRadiusMeters = 6371008.8

// DistanceMeters returns the great-circle (haversine) distance between two
// coordinates in meters.
func DistanceMeters(a, b LatLng) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLng := (b.Lng - a.Lng) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * earthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// BluetoothRangeMeters is the class-2 Bluetooth range the paper's
// witness-proximity argument relies on.
const BluetoothRangeMeters = 10.0

// WithinBluetoothRange reports whether two positions could complete a
// Bluetooth exchange.
func WithinBluetoothRange(a, b LatLng) bool {
	return DistanceMeters(a, b) <= BluetoothRangeMeters
}

// Offset returns the coordinate displaced by the given meters north and east.
// It uses the local-tangent-plane approximation, accurate to well under a
// meter for the few-hundred-meter offsets the simulations use.
func Offset(p LatLng, northMeters, eastMeters float64) LatLng {
	dLat := northMeters / earthRadiusMeters * 180 / math.Pi
	dLng := eastMeters / (earthRadiusMeters * math.Cos(p.Lat*math.Pi/180)) * 180 / math.Pi
	return LatLng{Lat: p.Lat + dLat, Lng: p.Lng + dLng}
}

// Device is a simulated mobile device. TruePosition is where the hardware
// physically is (what Bluetooth proximity sees); ClaimedPosition is what the
// device reports upstream (what a GPS spoofing attacker manipulates).
type Device struct {
	TruePosition    LatLng
	ClaimedPosition LatLng
}

// NewDevice returns an honest device whose claimed position matches reality.
func NewDevice(at LatLng) *Device {
	return &Device{TruePosition: at, ClaimedPosition: at}
}

// Spoof makes the device claim a position different from its true one,
// modelling the Uber/Foursquare attacks from the paper's introduction.
func (d *Device) Spoof(claimed LatLng) {
	d.ClaimedPosition = claimed
}

// MoveTo physically relocates the device; an honest device also updates its
// claim.
func (d *Device) MoveTo(at LatLng) {
	honest := d.TruePosition == d.ClaimedPosition
	d.TruePosition = at
	if honest {
		d.ClaimedPosition = at
	}
}

// CanReach reports whether this device can complete a Bluetooth exchange with
// other, based on true physical positions only.
func (d *Device) CanReach(other *Device) bool {
	return WithinBluetoothRange(d.TruePosition, other.TruePosition)
}
