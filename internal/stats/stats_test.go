package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std dev of this classic set is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.StdDev-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, want)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 || s.StdDev != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.Mean != 42 || s.StdDev != 0 || s.Min != 42 || s.Max != 42 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestSummarizeSkipsNonFinite(t *testing.T) {
	s := Summarize([]float64{math.NaN(), 1, math.Inf(1), 3, math.Inf(-1)})
	if s.N != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary with non-finite values = %+v", s)
	}
	all := Summarize([]float64{math.NaN(), math.Inf(1)})
	if all.N != 0 || all.Min != 0 || all.Max != 0 || all.Mean != 0 {
		t.Fatalf("all-non-finite summary = %+v, want zero", all)
	}
}

func TestSummarizeStdDevNeverNaN(t *testing.T) {
	// Identical large values make Welford's m2 vulnerable to epsilon-scale
	// negative rounding; StdDev must stay a real number.
	s := Summarize([]float64{1e15 + 0.1, 1e15 + 0.1, 1e15 + 0.1})
	if math.IsNaN(s.StdDev) || s.StdDev < 0 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeInvariants(t *testing.T) {
	err := quick.Check(func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolMatchesFlatSummarize is the defining property of pooling: the
// pooled aggregate of per-group summaries must equal (up to float error)
// summarizing the concatenated samples directly.
func TestPoolMatchesFlatSummarize(t *testing.T) {
	groups := [][]float64{
		{2, 4, 4, 4, 5, 5, 7, 9},
		{10, 12, 11, 13, 9, 14, 10, 11},
		{1, 1, 2, 3, 5, 8, 13, 21},
	}
	var flat []float64
	var parts []Summary
	for _, g := range groups {
		flat = append(flat, g...)
		parts = append(parts, Summarize(g))
	}
	pooled := Pool(parts)
	direct := Summarize(flat)
	if pooled.N != direct.N || pooled.Min != direct.Min || pooled.Max != direct.Max {
		t.Fatalf("pooled %+v vs direct %+v", pooled, direct)
	}
	if math.Abs(pooled.Mean-direct.Mean) > 1e-12 {
		t.Errorf("pooled mean %v, direct %v", pooled.Mean, direct.Mean)
	}
	if math.Abs(pooled.StdDev-direct.StdDev) > 1e-9 {
		t.Errorf("pooled stddev %v, direct %v", pooled.StdDev, direct.StdDev)
	}
	// Equal group sizes: grand mean == mean of group means.
	meanOfMeans := (parts[0].Mean + parts[1].Mean + parts[2].Mean) / 3
	if math.Abs(pooled.Mean-meanOfMeans) > 1e-12 {
		t.Errorf("pooled mean %v != mean-of-means %v", pooled.Mean, meanOfMeans)
	}
}

func TestPoolEdgeCases(t *testing.T) {
	if got := Pool(nil); got != (Summary{}) {
		t.Errorf("Pool(nil) = %+v, want zero", got)
	}
	if got := Pool([]Summary{{}, {}}); got != (Summary{}) {
		t.Errorf("Pool of empty groups = %+v, want zero", got)
	}
	one := Summarize([]float64{3})
	pooled := Pool([]Summary{one, {}})
	if pooled.N != 1 || pooled.Mean != 3 || pooled.StdDev != 0 {
		t.Errorf("single-sample pool = %+v", pooled)
	}
	// Identical degenerate groups: between-group spread is zero, the
	// within-group term carries everything.
	g := Summarize([]float64{1, 2, 3})
	p := Pool([]Summary{g, g})
	d := Summarize([]float64{1, 2, 3, 1, 2, 3})
	if math.Abs(p.StdDev-d.StdDev) > 1e-12 {
		t.Errorf("pooled stddev %v, direct %v", p.StdDev, d.StdDev)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Second, 3 * time.Second})
	if s.Mean != 2 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"Testnet", "Mean"}, [][]string{
		{"Goerli", "56.15s"},
		{"Algorand", "28.53s"},
	})
	for _, want := range []string{"Testnet", "Goerli", "28.53s", "|--"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Fig X", []string{"user 0", "user 1"}, []float64{10, 20}, "s")
	if !strings.Contains(out, "Fig X") || !strings.Contains(out, "user 1") {
		t.Fatalf("chart:\n%s", out)
	}
	// The larger value must render a longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "█") >= strings.Count(lines[2], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
}

func TestBarChartZeroValues(t *testing.T) {
	out := BarChart("Z", []string{"a"}, []float64{0}, "s")
	if !strings.Contains(out, "0.00 s") {
		t.Fatalf("chart:\n%s", out)
	}
}
