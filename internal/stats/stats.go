// Package stats provides the summary statistics and plain-text renderings
// (tables, bar charts) the evaluation harness uses to regenerate the
// paper's Tables 5.1–5.4 and Figures 5.2–5.5.
package stats

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Summary is the per-series aggregate the paper's tables report.
type Summary struct {
	N      int
	Mean   float64
	Max    float64
	Min    float64
	StdDev float64
	Sum    float64
}

// Summarize computes the aggregate of a sample. Non-finite values (NaN,
// ±Inf) are skipped so one corrupt measurement cannot poison a whole
// table; N counts only the finite samples. An empty or all-skipped input
// yields the zero Summary, and a single sample has StdDev 0.
func Summarize(xs []float64) Summary {
	var s Summary
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	// Welford's online algorithm keeps the variance numerically stable.
	mean, m2 := 0.0, 0.0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		s.N++
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		delta := x - mean
		mean += delta / float64(s.N)
		m2 += delta * (x - mean)
	}
	if s.N == 0 {
		return Summary{}
	}
	s.Mean = mean
	if s.N > 1 {
		// Floating-point cancellation can drive m2 epsilon-negative;
		// clamp so StdDev never becomes NaN.
		if m2 < 0 {
			m2 = 0
		}
		s.StdDev = math.Sqrt(m2 / float64(s.N-1))
	}
	return s
}

// Pool combines per-group summaries (one per repetition of an
// experiment) into one aggregate over all underlying samples: the grand
// mean — which, with equal-size groups, is exactly the mean of the group
// means — the pooled standard deviation (within-group variance plus the
// between-group spread of the means), and the min/max envelope over the
// groups. Empty groups are skipped; pooling nothing yields the zero
// Summary.
func Pool(parts []Summary) Summary {
	var out Summary
	out.Min = math.Inf(1)
	out.Max = math.Inf(-1)
	for _, p := range parts {
		if p.N == 0 {
			continue
		}
		out.N += p.N
		out.Sum += p.Sum
		if p.Min < out.Min {
			out.Min = p.Min
		}
		if p.Max > out.Max {
			out.Max = p.Max
		}
	}
	if out.N == 0 {
		return Summary{}
	}
	out.Mean = out.Sum / float64(out.N)
	if out.N > 1 {
		m2 := 0.0
		for _, p := range parts {
			if p.N == 0 {
				continue
			}
			d := p.Mean - out.Mean
			m2 += float64(p.N-1)*p.StdDev*p.StdDev + float64(p.N)*d*d
		}
		// The same epsilon-negative clamp Summarize applies.
		if m2 < 0 {
			m2 = 0
		}
		out.StdDev = math.Sqrt(m2 / float64(out.N-1))
	}
	return out
}

// SummarizeDurations converts to seconds and summarizes.
func SummarizeDurations(ds []time.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Seconds()
	}
	return Summarize(xs)
}

// Table renders a fixed-width text table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for i, c := range cells {
			fmt.Fprintf(&sb, " %-*s |", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	sb.WriteString("|")
	for _, w := range widths {
		sb.WriteString(strings.Repeat("-", w+2))
		sb.WriteString("|")
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// BarChart renders a horizontal ASCII bar chart, one bar per labelled
// value — the textual stand-in for the paper's per-user bar figures.
func BarChart(title string, labels []string, values []float64, unit string) string {
	const width = 50
	maxV := 0.0
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for i, v := range values {
		n := int(v / maxV * width)
		if n < 1 && v > 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "  %-*s |%s %.2f %s\n", labelW, labels[i], strings.Repeat("█", n), v, unit)
	}
	return sb.String()
}

// FormatSeconds renders a seconds value the way the tables do ("56.15s").
func FormatSeconds(v float64) string { return fmt.Sprintf("%.2fs", v) }
