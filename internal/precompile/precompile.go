// Package precompile is the shared registry of native contract functions
// reachable from both VMs: fixed-cost implementations of the proof-of-
// location verification hot path (ed25519 signature checks, keccak/sha256
// digests, bytes equality, OLC cell containment) that the language backends
// can target instead of interpreted bytecode.
//
// The EVM exposes each entry as a CALL to a reserved low address (the
// production-EVM precompiled-contract pattern; DESIGN.md §14): the
// interpreter intercepts the address before dispatch, resolves a descriptor
// of (offset, length) memory ranges zero-copy, charges the entry's gas
// schedule and writes a 32-byte result word. The AVM exposes the same
// natives as pseudo-ops with fixed Instr.Cost. Both routes funnel through
// (*Precompiled).Native so the per-precompile obs counters (calls, gas,
// cache hits) see every invocation regardless of VM.
package precompile

import (
	"bytes"

	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

// Reserved precompile IDs. The EVM address of entry id is the 20-byte
// address whose last byte is id (0x0000…01 … 0x0000…05), mirroring the
// Ethereum convention of precompiles at low addresses.
const (
	IDEd25519Verify = 0x01
	IDKeccak256     = 0x02
	IDSha256        = 0x03
	IDBytesEqual    = 0x04
	IDOLCContains   = 0x05
)

// maxID bounds the reserved address range: addresses 0x…01 through 0x…05.
const maxID = IDOLCContains

// Variadic marks an entry that accepts any number of descriptor ranges.
const Variadic = 0

// Precompiled is one native contract function. Run receives the resolved
// input ranges in declaration order and returns the 32-byte result word;
// ok=false reports malformed input (the VM pushes 0, the calling contract
// sees a failed CALL).
type Precompiled struct {
	ID    byte
	Name  string
	Arity int // required descriptor ranges; Variadic accepts any count

	// EVM gas schedule: GasBase + GasWord × ⌈inputBytes/32⌉, charged on top
	// of the warm-access cost of the intercepted CALL.
	GasBase uint64
	GasWord uint64

	// AVM exposure: pseudo-op mnemonic and its fixed Instr.Cost. Empty when
	// the AVM already covers the function natively (bytes equality is `==`).
	AVMOp   string
	AVMCost uint64

	run func(p *Precompiled, args [][]byte) ([32]byte, bool)

	// Telemetry: every Native invocation counts one call and its gas/cost;
	// the ed25519 entry additionally counts signature-cache hits.
	calls     obs.Counter
	gasUsed   obs.Counter
	cacheHits obs.Counter
}

// Native runs the precompile over already-resolved arguments, counting the
// invocation and cost against the entry's counters. Both VM engines and the
// AVM pseudo-ops route through here.
func (p *Precompiled) Native(cost uint64, args ...[]byte) ([32]byte, bool) {
	p.calls.Inc()
	p.gasUsed.Add(cost)
	return p.run(p, args)
}

// Gas returns the EVM gas charge for inputBytes of referenced input.
func (p *Precompiled) Gas(inputBytes uint64) uint64 {
	return p.GasBase + p.GasWord*((inputBytes+31)/32)
}

// Stats is a point-in-time snapshot of one entry's counters.
type Stats struct {
	Calls     uint64
	Gas       uint64
	CacheHits uint64
}

// StatsOf snapshots the entry's telemetry.
func (p *Precompiled) StatsOf() Stats {
	return Stats{Calls: p.calls.Value(), Gas: p.gasUsed.Value(), CacheHits: p.cacheHits.Value()}
}

// sigs memoizes ed25519 verdicts for the precompile path. It shares the
// implementation (and the bounded-LRU semantics) with core's system cache
// but is a separate instance: contract-visible verification and off-chain
// quorum checks have disjoint working sets.
var sigs = polcrypto.NewSigCache(polcrypto.DefaultSigCacheSize)

func boolWord(b bool) [32]byte {
	var w [32]byte
	if b {
		w[31] = 1
	}
	return w
}

func runEd25519(p *Precompiled, args [][]byte) ([32]byte, bool) {
	if len(args) != 3 {
		return [32]byte{}, false
	}
	ok, hit := sigs.Verify(args[0], args[1], args[2])
	if hit {
		p.cacheHits.Inc()
	}
	return boolWord(ok), true
}

func runHash(_ *Precompiled, args [][]byte) ([32]byte, bool) {
	return polcrypto.Hash(args...), true
}

func runBytesEqual(_ *Precompiled, args [][]byte) ([32]byte, bool) {
	if len(args) != 2 {
		return [32]byte{}, false
	}
	return boolWord(bytes.Equal(args[0], args[1])), true
}

// runOLCContains reports whether the open-location code in args[1] lies in
// the area cell args[0]. Cells are stored as stripped even-length OLC
// prefixes (e.g. "8FQFCX" for the 6-char cell), so containment of a full
// code ("8FQFCXGV+XX") is exactly a byte-prefix test — the same raw
// comparison the interpreted lowering performs, keeping the two paths
// bit-identical.
func runOLCContains(_ *Precompiled, args [][]byte) ([32]byte, bool) {
	if len(args) != 2 {
		return [32]byte{}, false
	}
	return boolWord(bytes.HasPrefix(args[1], args[0])), true
}

// registry indexes entries by ID. Gas schedules follow the Ethereum
// precompile precedents where one exists (sha256 at 60+12/word per EIP-2,
// signature verification flat like ECRECOVER's 3000); keccak matches the
// KECCAK256 opcode so the precompiled path never costs more gas than the
// interpreted one; the comparison entries are priced like cheap linear
// scans.
var registry = [maxID + 1]*Precompiled{
	IDEd25519Verify: {
		ID: IDEd25519Verify, Name: "ed25519_verify", Arity: 3,
		GasBase: 3000, GasWord: 0,
		AVMOp: "ed25519verify", AVMCost: 1900,
		run: runEd25519,
	},
	IDKeccak256: {
		ID: IDKeccak256, Name: "keccak256", Arity: Variadic,
		GasBase: 30, GasWord: 6,
		AVMOp: "keccak256", AVMCost: 130,
		run: runHash,
	},
	IDSha256: {
		ID: IDSha256, Name: "sha256", Arity: Variadic,
		GasBase: 60, GasWord: 12,
		AVMOp: "sha256_parts", AVMCost: 35,
		run: runHash,
	},
	IDBytesEqual: {
		ID: IDBytesEqual, Name: "bytes_equal", Arity: 2,
		GasBase: 15, GasWord: 3,
		run: runBytesEqual,
	},
	IDOLCContains: {
		ID: IDOLCContains, Name: "olc_contains", Arity: 2,
		GasBase: 30, GasWord: 3,
		AVMOp: "olc_contains", AVMCost: 20,
		run: runOLCContains,
	},
}

// avmOps indexes entries by pseudo-op mnemonic.
var avmOps = func() map[string]*Precompiled {
	m := make(map[string]*Precompiled)
	for _, p := range registry {
		if p != nil && p.AVMOp != "" {
			m[p.AVMOp] = p
		}
	}
	return m
}()

// Address returns the reserved 20-byte EVM address of entry id.
func Address(id byte) [20]byte {
	var a [20]byte
	a[19] = id
	return a
}

// ByID returns the entry with the given ID, or nil.
func ByID(id byte) *Precompiled {
	if int(id) >= len(registry) {
		return nil
	}
	return registry[id]
}

// ByAddress returns the entry at a reserved EVM address, or nil for every
// non-reserved address.
func ByAddress(a [20]byte) *Precompiled {
	for _, b := range a[:19] {
		if b != 0 {
			return nil
		}
	}
	return ByID(a[19])
}

// ByAVMOp returns the entry behind an AVM pseudo-op mnemonic, or nil.
func ByAVMOp(op string) *Precompiled { return avmOps[op] }

// All returns the registered entries in ID order.
func All() []*Precompiled {
	out := make([]*Precompiled, 0, maxID)
	for _, p := range registry {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// SigCacheLen reports the precompile signature memo's size (tests).
func SigCacheLen() int { return sigs.Len() }
