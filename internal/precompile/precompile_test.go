package precompile

import (
	"bytes"
	"crypto/rand"
	"crypto/sha256"
	"testing"

	"agnopol/internal/polcrypto"
)

func TestAddressRoundTrip(t *testing.T) {
	for _, p := range All() {
		a := Address(p.ID)
		if got := ByAddress(a); got != p {
			t.Fatalf("ByAddress(Address(%#x)) = %v, want %s", p.ID, got, p.Name)
		}
		if ByID(p.ID) != p {
			t.Fatalf("ByID(%#x) != entry %s", p.ID, p.Name)
		}
	}
	// Non-reserved addresses never resolve.
	var a [20]byte
	a[19] = IDEd25519Verify
	a[0] = 1 // any non-zero prefix byte disqualifies
	if ByAddress(a) != nil {
		t.Fatal("address with non-zero prefix must not resolve")
	}
	if ByAddress([20]byte{}) != nil {
		t.Fatal("address zero is not a precompile")
	}
	if ByID(maxID+1) != nil || ByID(0) != nil {
		t.Fatal("out-of-range IDs must not resolve")
	}
}

func TestByAVMOp(t *testing.T) {
	for _, p := range All() {
		if p.AVMOp == "" {
			continue
		}
		if ByAVMOp(p.AVMOp) != p {
			t.Fatalf("ByAVMOp(%q) != entry %s", p.AVMOp, p.Name)
		}
	}
	if ByAVMOp("bytes_equal") != nil {
		t.Fatal("bytes_equal has no AVM pseudo-op (native == covers it)")
	}
	if ByAVMOp("no-such-op") != nil {
		t.Fatal("unknown mnemonic must not resolve")
	}
}

func TestGasSchedule(t *testing.T) {
	p := ByID(IDSha256)
	cases := []struct{ in, want uint64 }{
		{0, 60}, {1, 72}, {32, 72}, {33, 84}, {64, 84}, {96, 96},
	}
	for _, c := range cases {
		if got := p.Gas(c.in); got != c.want {
			t.Fatalf("sha256.Gas(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	if got := ByID(IDEd25519Verify).Gas(1 << 20); got != 3000 {
		t.Fatalf("ed25519 gas must be flat 3000, got %d", got)
	}
}

func TestHashNatives(t *testing.T) {
	a, b := []byte("proof-of-"), []byte("location")
	want := sha256.Sum256([]byte("proof-of-location"))
	for _, id := range []byte{IDKeccak256, IDSha256} {
		p := ByID(id)
		got, ok := p.Native(0, a, b)
		if !ok || got != want {
			t.Fatalf("%s over split input = %x ok=%v, want %x", p.Name, got, ok, want)
		}
		// Zero ranges hash the empty string, like the underlying opcode.
		empty, ok := p.Native(0)
		if !ok || empty != sha256.Sum256(nil) {
			t.Fatalf("%s() = %x ok=%v, want empty-string digest", p.Name, empty, ok)
		}
	}
}

func TestBytesEqual(t *testing.T) {
	p := ByID(IDBytesEqual)
	if w, ok := p.Native(0, []byte("x"), []byte("x")); !ok || w[31] != 1 {
		t.Fatalf("equal bytes: %x ok=%v", w, ok)
	}
	if w, ok := p.Native(0, []byte("x"), []byte("y")); !ok || w != ([32]byte{}) {
		t.Fatalf("unequal bytes: %x ok=%v", w, ok)
	}
	if _, ok := p.Native(0, []byte("x")); ok {
		t.Fatal("arity violation must be rejected by the native")
	}
}

func TestOLCContains(t *testing.T) {
	p := ByID(IDOLCContains)
	cases := []struct {
		cell, code string
		want       byte
	}{
		{"8FQFCX", "8FQFCXGV+XX", 1}, // code inside the 6-char cell
		{"8FQFCX", "8FQFCX", 1},      // cell contains itself
		{"8FQFCX", "9FQFCXGV+XX", 0}, // different area
		{"8FQFCXGV+XX", "8FQFCX", 0}, // cell longer than code
		{"", "8FQFCXGV+XX", 1},       // the whole planet
	}
	for _, c := range cases {
		w, ok := p.Native(0, []byte(c.cell), []byte(c.code))
		if !ok || w[31] != c.want {
			t.Fatalf("contains(%q, %q) = %d ok=%v, want %d", c.cell, c.code, w[31], ok, c.want)
		}
	}
}

func TestEd25519VerifyAndCache(t *testing.T) {
	p := ByID(IDEd25519Verify)
	kp := polcrypto.MustGenerateKeyPair(rand.Reader)
	// The cache memoizes canonical shapes only: 32-byte hashes, as the
	// protocol signs. Sign a digest, like every on-chain caller does.
	h := polcrypto.Hash([]byte("check-in at 8FQFCXGV+XX"))
	msg := h[:]
	sig := kp.Sign(msg)

	before := p.StatsOf()
	w, ok := p.Native(10, kp.Public, msg, sig)
	if !ok || w[31] != 1 {
		t.Fatalf("valid signature rejected: %x ok=%v", w, ok)
	}
	// Same triple again: the LRU must answer and the hit counter move.
	w, ok = p.Native(10, kp.Public, msg, sig)
	if !ok || w[31] != 1 {
		t.Fatalf("cached verdict differs: %x ok=%v", w, ok)
	}
	after := p.StatsOf()
	if after.Calls != before.Calls+2 {
		t.Fatalf("calls counter moved by %d, want 2", after.Calls-before.Calls)
	}
	if after.Gas != before.Gas+20 {
		t.Fatalf("gas counter moved by %d, want 20", after.Gas-before.Gas)
	}
	if after.CacheHits != before.CacheHits+1 {
		t.Fatalf("cache hits moved by %d, want 1", after.CacheHits-before.CacheHits)
	}
	if SigCacheLen() == 0 {
		t.Fatal("precompile sigcache must hold the memoized verdict")
	}

	sig[0] ^= 1
	w, ok = p.Native(10, kp.Public, msg, sig)
	if !ok || w != ([32]byte{}) {
		t.Fatalf("corrupted signature accepted: %x ok=%v", w, ok)
	}
	if _, ok := p.Native(0, kp.Public, msg); ok {
		t.Fatal("arity violation must be rejected by the native")
	}
	// Malformed shapes (wrong pubkey length) verify false but still count.
	if w, ok := p.Native(0, []byte("short"), msg, sig); !ok || w != ([32]byte{}) {
		t.Fatalf("short pubkey must verify false: %x ok=%v", w, ok)
	}
}

func TestAllOrderedAndComplete(t *testing.T) {
	all := All()
	if len(all) != maxID {
		t.Fatalf("registry has %d entries, want %d", len(all), maxID)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatal("All() must be ID-ordered")
		}
	}
	seen := map[string]bool{}
	for _, p := range all {
		if p.Name == "" || seen[p.Name] {
			t.Fatalf("bad or duplicate name %q", p.Name)
		}
		seen[p.Name] = true
		addr := Address(p.ID)
		if !bytes.Equal(addr[:19], make([]byte, 19)) {
			t.Fatal("reserved addresses must have a zero prefix")
		}
	}
}
