package did

import (
	"errors"
	"testing"

	"agnopol/internal/polcrypto"
)

type detRand struct{ state uint64 }

func (r *detRand) Read(p []byte) (int, error) {
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 56)
	}
	return len(p), nil
}

func newKP(t *testing.T, seed uint64) *polcrypto.KeyPair {
	t.Helper()
	return polcrypto.MustGenerateKeyPair(&detRand{state: seed})
}

func TestRegisterAndResolve(t *testing.T) {
	reg := NewRegistry()
	kp := newKP(t, 1)
	d, err := reg.Register(kp.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Valid() {
		t.Fatalf("generated DID %q is not valid", d)
	}
	doc, err := reg.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	if doc.ID != d || doc.Controller != d {
		t.Fatalf("doc = %+v", doc)
	}
	key, err := doc.AuthenticationKey()
	if err != nil {
		t.Fatal(err)
	}
	if string(key) != string(kp.Public) {
		t.Fatal("authentication key does not match controller key")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	reg := NewRegistry()
	kp := newKP(t, 2)
	if _, err := reg.Register(kp.Public, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Register(kp.Public, 0); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestResolveUnknown(t *testing.T) {
	reg := NewRegistry()
	if _, err := reg.Resolve("did:agno:" + "ab"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDIDValidation(t *testing.T) {
	kp := newKP(t, 3)
	if d := New(kp.Public); !d.Valid() {
		t.Fatalf("New produced invalid DID %q", d)
	}
	bad := []DID{"", "did:agno", "did:other:" + New(kp.Public)[9:], "did:agno:xyz", "did:agno:zz" + New(kp.Public)[11:]}
	for _, d := range bad {
		if d.Valid() {
			t.Errorf("Valid(%q) = true", d)
		}
	}
}

func TestUint64IsStable(t *testing.T) {
	kp := newKP(t, 4)
	d := New(kp.Public)
	if d.Uint64() != d.Uint64() {
		t.Fatal("Uint64 not deterministic")
	}
	other := New(newKP(t, 5).Public)
	if d.Uint64() == other.Uint64() {
		t.Fatal("two DIDs compressed to the same UInt")
	}
}

func TestRotateRequiresControl(t *testing.T) {
	reg := NewRegistry()
	owner := newKP(t, 6)
	attacker := newKP(t, 7)
	newKey := newKP(t, 8)
	d, err := reg.Register(owner.Public, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Attacker-signed rotation must fail.
	sig := attacker.Sign(RotateMessage(d, newKey.Public))
	if err := reg.Rotate(d, newKey.Public, sig, 1); !errors.Is(err, ErrNotController) {
		t.Fatalf("attacker rotation: err = %v, want ErrNotController", err)
	}

	// Owner-signed rotation succeeds and switches the auth key.
	sig = owner.Sign(RotateMessage(d, newKey.Public))
	if err := reg.Rotate(d, newKey.Public, sig, 1); err != nil {
		t.Fatal(err)
	}
	doc, err := reg.Resolve(d)
	if err != nil {
		t.Fatal(err)
	}
	key, err := doc.AuthenticationKey()
	if err != nil {
		t.Fatal(err)
	}
	if string(key) != string(newKey.Public) {
		t.Fatal("rotation did not switch the authentication key")
	}
	if len(doc.VerificationMethod) != 2 {
		t.Fatalf("verification methods = %d, want 2 (history kept)", len(doc.VerificationMethod))
	}
}

func TestChallengeResponseFlow(t *testing.T) {
	reg := NewRegistry()
	rng := &detRand{state: 9}
	auth := NewAuthenticator(reg, rng)
	holder := newKP(t, 10)
	d, err := reg.Register(holder.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := auth.NewChallenge(d)
	if err != nil {
		t.Fatal(err)
	}
	resp := SignChallenge(holder, ch)
	if err := auth.VerifyResponse(resp); err != nil {
		t.Fatalf("honest response rejected: %v", err)
	}

	// A different key cannot answer.
	imposter := newKP(t, 11)
	forged := SignChallenge(imposter, ch)
	if err := auth.VerifyResponse(forged); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("imposter response: err = %v, want ErrAuthFailed", err)
	}

	// Challenges for unregistered DIDs fail fast.
	unregistered := New(newKP(t, 999).Public)
	if _, err := auth.NewChallenge(unregistered); err == nil {
		t.Fatal("challenge for unregistered DID accepted")
	}
}

func TestChallengeResponseBoundToDID(t *testing.T) {
	reg := NewRegistry()
	auth := NewAuthenticator(reg, &detRand{state: 12})
	alice := newKP(t, 13)
	bob := newKP(t, 14)
	aliceDID, err := reg.Register(alice.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	bobDID, err := reg.Register(bob.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := auth.NewChallenge(aliceDID)
	if err != nil {
		t.Fatal(err)
	}
	// Bob answers Alice's challenge with his own key but swaps the DID —
	// the response must not verify for Bob's DID either.
	resp := SignChallenge(bob, Challenge{DID: bobDID, Nonce: ch.Nonce})
	if err := auth.VerifyResponse(resp); err != nil {
		// Bob signing his own challenge-shaped message is fine for HIS
		// DID; the protocol binding happens at the witness which
		// matches challenge.DID against the request DID — covered in
		// core. Here we assert the signature itself verifies only under
		// the right DID.
		t.Fatalf("response under bob's own DID should verify: %v", err)
	}
	cross := ChallengeResponse{Challenge: ch, Signature: resp.Signature}
	if err := auth.VerifyResponse(cross); err == nil {
		t.Fatal("bob's signature accepted for alice's challenge")
	}
}
