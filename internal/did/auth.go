package did

import (
	"errors"
	"fmt"

	"agnopol/internal/polcrypto"
)

// Challenge is the random value a witness sends to a prover to check DID
// control (Fig. 2.4, steps 1–2).
type Challenge struct {
	DID   DID
	Nonce [32]byte
}

// ChallengeResponse is the prover's answer: a signature over the challenge
// with the DID's authentication key (Fig. 2.4, step 3).
type ChallengeResponse struct {
	Challenge Challenge
	Signature []byte
}

// Authenticator drives DID challenge–response on the witness side.
type Authenticator struct {
	registry *Registry
	rand     interface{ Read([]byte) (int, error) }
}

// NewAuthenticator builds an authenticator resolving against registry and
// drawing challenge nonces from rand.
func NewAuthenticator(registry *Registry, rand interface{ Read([]byte) (int, error) }) *Authenticator {
	return &Authenticator{registry: registry, rand: rand}
}

// NewChallenge issues a fresh challenge for the subject DID. The DID must
// resolve; challenging an unregistered DID fails immediately.
func (a *Authenticator) NewChallenge(subject DID) (Challenge, error) {
	if _, err := a.registry.Resolve(subject); err != nil {
		return Challenge{}, err
	}
	var c Challenge
	c.DID = subject
	if _, err := a.rand.Read(c.Nonce[:]); err != nil {
		return Challenge{}, fmt.Errorf("did: challenge nonce: %w", err)
	}
	return c, nil
}

// SignChallenge is the holder-side response. kp must be the key pair whose
// public half the DID document designates for authentication.
func SignChallenge(kp *polcrypto.KeyPair, c Challenge) ChallengeResponse {
	return ChallengeResponse{Challenge: c, Signature: kp.Sign(challengeMessage(c))}
}

// ErrAuthFailed reports a challenge response that does not verify under the
// DID's authentication key.
var ErrAuthFailed = errors.New("did: authentication failed")

// VerifyResponse checks the response against the DID document resolved from
// the registry. A nil error means the responder controls the DID.
func (a *Authenticator) VerifyResponse(resp ChallengeResponse) error {
	doc, err := a.registry.Resolve(resp.Challenge.DID)
	if err != nil {
		return err
	}
	key, err := doc.AuthenticationKey()
	if err != nil {
		return err
	}
	if !polcrypto.Verify(key, challengeMessage(resp.Challenge), resp.Signature) {
		return fmt.Errorf("%w: %s", ErrAuthFailed, resp.Challenge.DID)
	}
	return nil
}

func challengeMessage(c Challenge) []byte {
	msg := []byte("did-auth:" + string(c.DID) + ":")
	return append(msg, c.Nonce[:]...)
}
