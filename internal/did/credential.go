package did

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"agnopol/internal/polcrypto"
)

// Verifiable Credentials — the SSI building block the thesis plans on top
// of DIDs ("In a new version of this project, they will issue Verifiable
// Credentials to the users that have a DID", §2.1; §1.6). A credential is a
// set of claims about a subject DID, signed by an issuer DID; anyone can
// verify it against the issuer's DID document without contacting the
// issuer.

// Credential is a W3C-style verifiable credential.
type Credential struct {
	ID      string            `json:"id"`
	Type    string            `json:"type"`
	Issuer  DID               `json:"issuer"`
	Subject DID               `json:"credentialSubject"`
	Claims  map[string]string `json:"claims"`
	// Issued and Expires are simulated timestamps; Expires zero means no
	// expiry.
	Issued  time.Duration `json:"issued"`
	Expires time.Duration `json:"expires"`
	Proof   []byte        `json:"proof"` // issuer signature
}

// signingInput is the canonical byte string the issuer signs. Claims are
// serialized through encoding/json, which orders map keys, so the input is
// canonical.
func (c *Credential) signingInput() ([]byte, error) {
	cp := *c
	cp.Proof = nil
	data, err := json.Marshal(&cp)
	if err != nil {
		return nil, fmt.Errorf("did: credential canonicalization: %w", err)
	}
	return data, nil
}

// Credential errors.
var (
	ErrCredentialExpired = errors.New("did: credential expired")
	ErrCredentialForged  = errors.New("did: credential signature invalid")
	ErrWrongSubject      = errors.New("did: credential subject mismatch")
)

// IssueCredential creates and signs a credential as issuer. issuerKey must
// be the key the issuer's DID document designates for authentication.
func IssueCredential(issuerKey *polcrypto.KeyPair, issuer, subject DID, credType string,
	claims map[string]string, now, expires time.Duration) (*Credential, error) {
	c := &Credential{
		ID:      "urn:credential:" + polcrypto.HashHex([]byte(string(issuer) + string(subject) + credType))[:16],
		Type:    credType,
		Issuer:  issuer,
		Subject: subject,
		Claims:  claims,
		Issued:  now,
		Expires: expires,
	}
	input, err := c.signingInput()
	if err != nil {
		return nil, err
	}
	c.Proof = issuerKey.Sign(input)
	return c, nil
}

// VerifyCredential checks a credential against the registry: the issuer's
// DID resolves, its authentication key opens the proof, and the credential
// has not expired at `now`.
func VerifyCredential(reg *Registry, c *Credential, now time.Duration) error {
	doc, err := reg.Resolve(c.Issuer)
	if err != nil {
		return fmt.Errorf("did: credential issuer: %w", err)
	}
	key, err := doc.AuthenticationKey()
	if err != nil {
		return err
	}
	input, err := c.signingInput()
	if err != nil {
		return err
	}
	if !polcrypto.Verify(key, input, c.Proof) {
		return ErrCredentialForged
	}
	if c.Expires != 0 && now >= c.Expires {
		return fmt.Errorf("%w at %v", ErrCredentialExpired, c.Expires)
	}
	return nil
}

// Presentation is a credential presented by its holder with a proof of DID
// control bound to a verifier-chosen nonce (prevents replaying someone
// else's presentation).
type Presentation struct {
	Credential *Credential
	Nonce      [32]byte
	// HolderSig signs (credential id ‖ nonce) with the subject's key.
	HolderSig []byte
}

// Present builds a presentation of a credential for a challenge nonce.
func Present(holderKey *polcrypto.KeyPair, c *Credential, nonce [32]byte) *Presentation {
	return &Presentation{
		Credential: c,
		Nonce:      nonce,
		HolderSig:  holderKey.Sign(presentationInput(c, nonce)),
	}
}

func presentationInput(c *Credential, nonce [32]byte) []byte {
	return append([]byte("vp:"+c.ID+":"), nonce[:]...)
}

// VerifyPresentation checks the credential itself and that the presenter
// controls the subject DID.
func VerifyPresentation(reg *Registry, p *Presentation, now time.Duration) error {
	if err := VerifyCredential(reg, p.Credential, now); err != nil {
		return err
	}
	doc, err := reg.Resolve(p.Credential.Subject)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWrongSubject, err)
	}
	key, err := doc.AuthenticationKey()
	if err != nil {
		return err
	}
	if !polcrypto.Verify(key, presentationInput(p.Credential, p.Nonce), p.HolderSig) {
		return fmt.Errorf("%w: holder proof invalid", ErrWrongSubject)
	}
	return nil
}
