// Package did implements the W3C Decentralized IDentifier pieces the paper
// uses (§1.6, §2.2): DIDs, DID documents, a verifiable data registry with
// resolution, and the challenge–response authentication of Fig. 2.4 by which
// a prover demonstrates control of a DID to a witness.
//
// The thesis sketches the challenge as "encrypt a random value with the
// public key in the DID document". ed25519 keys do not encrypt; we implement
// the equivalent — and standard DID-Auth — mechanism: the verifier sends a
// random challenge and the holder returns a signature over it. Both variants
// have the same security content: only the private-key holder can answer.
package did

import (
	"crypto/ed25519"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"agnopol/internal/polcrypto"
)

// Method is the DID method of this system's registry.
const Method = "agno"

// DID is a decentralized identifier string, e.g.
// "did:agno:3f41…". Its method-specific ID is the hex hash of the initial
// controller key, which makes DIDs globally unique by construction.
type DID string

// New derives a fresh DID from the controller's public key.
func New(pub ed25519.PublicKey) DID {
	return DID(fmt.Sprintf("did:%s:%s", Method, polcrypto.HashHex(pub)))
}

// Valid reports whether the string has the did:agno:<64 hex> shape.
func (d DID) Valid() bool {
	parts := strings.SplitN(string(d), ":", 3)
	if len(parts) != 3 || parts[0] != "did" || parts[1] != Method {
		return false
	}
	if len(parts[2]) != 64 {
		return false
	}
	_, err := hex.DecodeString(parts[2])
	return err == nil
}

// Uint64 compresses the DID into the UInt the thesis contract uses as the
// map key ("at the writing time it is not possible to use Bytes as a key
// type for the Map" — §2.4, footnote 13). Collision-free for the population
// sizes the experiments use; the full DID stays in the concatenated value.
func (d DID) Uint64() uint64 {
	h := polcrypto.Hash([]byte(d))
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(h[i])
	}
	return v
}

// VerificationMethod is the public key material in a document.
type VerificationMethod struct {
	ID         string
	Type       string
	Controller DID
	PublicKey  ed25519.PublicKey
}

// Document is a DID document (Fig. 1.8): it names the subject, its
// controller, and the verification methods used to authenticate it.
type Document struct {
	ID                 DID
	Controller         DID
	VerificationMethod []VerificationMethod
	Authentication     []string // references into VerificationMethod by ID
	Updated            time.Duration
}

// AuthenticationKey returns the public key designated for authentication.
func (doc *Document) AuthenticationKey() (ed25519.PublicKey, error) {
	if len(doc.Authentication) == 0 {
		return nil, errors.New("did: document has no authentication method")
	}
	want := doc.Authentication[0]
	for _, vm := range doc.VerificationMethod {
		if vm.ID == want {
			return vm.PublicKey, nil
		}
	}
	return nil, fmt.Errorf("did: authentication method %q not found", want)
}

var (
	// ErrNotFound reports a DID with no document in the registry.
	ErrNotFound = errors.New("did: not found")
	// ErrNotController rejects updates signed by a key that does not
	// control the document.
	ErrNotController = errors.New("did: caller does not control document")
	// ErrDuplicate rejects re-registration of an existing DID.
	ErrDuplicate = errors.New("did: already registered")
)

// Registry is the verifiable data registry DID resolution reads from. The
// paper stores it on a blockchain; the in-memory registry preserves the two
// interface properties the protocol uses: anyone can resolve, and only the
// controller can update.
type Registry struct {
	mu   sync.RWMutex
	docs map[DID]*Document
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{docs: make(map[DID]*Document)}
}

// Register creates the DID and document for a controller key and returns the
// new DID. This is the "request for a DID generation" interaction of §2.1.
func (r *Registry) Register(pub ed25519.PublicKey, now time.Duration) (DID, error) {
	d := New(pub)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.docs[d]; exists {
		return "", fmt.Errorf("%w: %s", ErrDuplicate, d)
	}
	vmID := string(d) + "#key-1"
	r.docs[d] = &Document{
		ID:         d,
		Controller: d,
		VerificationMethod: []VerificationMethod{{
			ID:         vmID,
			Type:       "Ed25519VerificationKey2020",
			Controller: d,
			PublicKey:  append(ed25519.PublicKey(nil), pub...),
		}},
		Authentication: []string{vmID},
		Updated:        now,
	}
	return d, nil
}

// Resolve performs DID resolution: DID → document.
func (r *Registry) Resolve(d DID) (*Document, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	doc, ok := r.docs[d]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, d)
	}
	cp := *doc
	cp.VerificationMethod = append([]VerificationMethod(nil), doc.VerificationMethod...)
	cp.Authentication = append([]string(nil), doc.Authentication...)
	return &cp, nil
}

// Rotate replaces the authentication key. The request must be signed by the
// current authentication key (proof of control), otherwise ErrNotController.
func (r *Registry) Rotate(d DID, newPub ed25519.PublicKey, sig []byte, now time.Duration) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	doc, ok := r.docs[d]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, d)
	}
	curKey, err := doc.AuthenticationKey()
	if err != nil {
		return err
	}
	msg := rotateMessage(d, newPub)
	if !polcrypto.Verify(curKey, msg, sig) {
		return ErrNotController
	}
	vmID := fmt.Sprintf("%s#key-%d", d, len(doc.VerificationMethod)+1)
	doc.VerificationMethod = append(doc.VerificationMethod, VerificationMethod{
		ID:         vmID,
		Type:       "Ed25519VerificationKey2020",
		Controller: d,
		PublicKey:  append(ed25519.PublicKey(nil), newPub...),
	})
	doc.Authentication = []string{vmID}
	doc.Updated = now
	return nil
}

// RotateMessage returns the canonical bytes a controller signs to authorize
// a key rotation.
func RotateMessage(d DID, newPub ed25519.PublicKey) []byte {
	return rotateMessage(d, newPub)
}

func rotateMessage(d DID, newPub ed25519.PublicKey) []byte {
	return append([]byte("did-rotate:"+string(d)+":"), newPub...)
}
