package did

import (
	"errors"
	"testing"

	"agnopol/internal/polcrypto"
)

func credentialFixture(t *testing.T) (*Registry, *Credential, DID, DID, issuerHolderKeys) {
	t.Helper()
	reg := NewRegistry()
	issuerKey := newKP(t, 100)
	holderKey := newKP(t, 101)
	issuer, err := reg.Register(issuerKey.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	holder, err := reg.Register(holderKey.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	cred, err := IssueCredential(issuerKey, issuer, holder, "WitnessCredential",
		map[string]string{"role": "witness", "area": "8FPHF8VV+X2"}, 10, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return reg, cred, issuer, holder, issuerHolderKeys{issuerKey, holderKey}
}

type issuerHolderKeys struct {
	issuer, holder *polcrypto.KeyPair
}

func TestCredentialIssueAndVerify(t *testing.T) {
	reg, cred, issuer, holder, _ := credentialFixture(t)
	if err := VerifyCredential(reg, cred, 500); err != nil {
		t.Fatalf("honest credential rejected: %v", err)
	}
	if cred.Issuer != issuer || cred.Subject != holder {
		t.Fatal("credential parties wrong")
	}
}

func TestCredentialExpiry(t *testing.T) {
	reg, cred, _, _, _ := credentialFixture(t)
	if err := VerifyCredential(reg, cred, 1000); !errors.Is(err, ErrCredentialExpired) {
		t.Fatalf("err = %v, want expired", err)
	}
}

func TestCredentialTamperDetected(t *testing.T) {
	reg, cred, _, _, _ := credentialFixture(t)
	cred.Claims["role"] = "verifier" // privilege escalation attempt
	if err := VerifyCredential(reg, cred, 500); !errors.Is(err, ErrCredentialForged) {
		t.Fatalf("err = %v, want forged", err)
	}
}

func TestCredentialFromUnregisteredIssuer(t *testing.T) {
	reg := NewRegistry()
	rogueKey := newKP(t, 102)
	holderKey := newKP(t, 103)
	holder, err := reg.Register(holderKey.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	rogue := New(rogueKey.Public) // never registered
	cred, err := IssueCredential(rogueKey, rogue, holder, "X", nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCredential(reg, cred, 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want issuer not found", err)
	}
}

func TestPresentationBindsHolder(t *testing.T) {
	reg, cred, _, _, keys := credentialFixture(t)
	var nonce [32]byte
	nonce[0] = 7

	p := Present(keys.holder, cred, nonce)
	if err := VerifyPresentation(reg, p, 500); err != nil {
		t.Fatalf("honest presentation rejected: %v", err)
	}

	// A thief presenting a stolen credential cannot produce the holder
	// proof.
	thiefKey := newKP(t, 104)
	stolen := Present(thiefKey, cred, nonce)
	if err := VerifyPresentation(reg, stolen, 500); !errors.Is(err, ErrWrongSubject) {
		t.Fatalf("err = %v, want wrong subject", err)
	}

	// Replaying a presentation under a different nonce fails.
	var nonce2 [32]byte
	nonce2[0] = 8
	replay := &Presentation{Credential: cred, Nonce: nonce2, HolderSig: p.HolderSig}
	if err := VerifyPresentation(reg, replay, 500); err == nil {
		t.Fatal("nonce-replayed presentation accepted")
	}
}

func TestCredentialSurvivesKeyRotationOfIssuerFails(t *testing.T) {
	// After the issuer rotates its key, old credentials no longer verify
	// under the new authentication key — the registry reflects current
	// control, and re-issuance is the upgrade path.
	reg, cred, issuer, _, keys := credentialFixture(t)
	newKey := newKP(t, 105)
	sig := keys.issuer.Sign(RotateMessage(issuer, newKey.Public))
	if err := reg.Rotate(issuer, newKey.Public, sig, 20); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCredential(reg, cred, 500); !errors.Is(err, ErrCredentialForged) {
		t.Fatalf("err = %v, want forged after rotation", err)
	}
}
