package algorand

import (
	"strings"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

func newTestChain(t *testing.T) *Chain {
	t.Helper()
	return NewChain(Testnet(), 1)
}

const approveAll = "int 1\nreturn"

const counterApp = `
txn ApplicationID
bz create
txna ApplicationArgs 0
byte "bump"
==
bnz bump
err
create:
byte "count"
int 0
app_global_put
int 1
return
bump:
byte "count"
byte "count"
app_global_get
int 1
+
app_global_put
byte "count"
app_global_get
itob
byte "return:"
swap
concat
log
int 1
return`

func TestPaymentFlow(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(5_000_000)
	bob := chain.AddressFromBytes([]byte("bob"))
	rcpt, err := cl.Pay(alice, bob, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if rcpt.Latency() <= 0 {
		t.Fatal("latency must be positive")
	}
	if got := c.Balance(bob).Base.Uint64(); got != 1_000_000 {
		t.Fatalf("bob balance %d", got)
	}
	// Alice paid the amount plus the flat min fee.
	if got := c.Balance(alice.Address).Base.Uint64(); got != 5_000_000-1_000_000-MinFee {
		t.Fatalf("alice balance %d", got)
	}
	if rcpt.Fee.Base.Uint64() != MinFee {
		t.Fatalf("fee %s, want flat %d µALGO", rcpt.Fee.Base, MinFee)
	}
}

func TestFlatFeesIndependentOfLoad(t *testing.T) {
	// Unlike EIP-1559 chains, fees never move with congestion.
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(50_000_000)
	for i := 0; i < 10; i++ {
		to := chain.AddressFromBytes([]byte{byte(i)})
		rcpt, err := cl.Pay(alice, to, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if rcpt.Fee.Base.Uint64() != MinFee {
			t.Fatalf("tx %d fee %s", i, rcpt.Fee.Base)
		}
	}
}

func TestAppCreateAndCall(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(10_000_000)
	rcpt, appID, err := cl.CreateApp(alice, counterApp, nil)
	if err != nil {
		t.Fatal(err)
	}
	if appID == 0 {
		t.Fatal("no app ID allocated")
	}
	if rcpt.Reverted {
		t.Fatal("creation reverted")
	}
	v, ok := c.AppGlobal(appID, "count")
	if !ok || v.Uint != 0 {
		t.Fatalf("count after create = %v (ok=%v)", v, ok)
	}
	for i := 1; i <= 3; i++ {
		rcpt, err := cl.CallApp(alice, appID, [][]byte{[]byte("bump")}, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := avm.Btoi(rcpt.ReturnValue)
		if err != nil || got != uint64(i) {
			t.Fatalf("bump %d returned %d (err %v)", i, got, err)
		}
	}
}

func TestRejectedCallRollsBackAtomically(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(10_000_000)
	_, appID, err := cl.CreateApp(alice, `
txn ApplicationID
bz create
byte "touched"
int 1
app_global_put
err
create:
int 1
return`, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Balance(alice.Address).Base.Uint64()
	rcpt, err := cl.CallApp(alice, appID, [][]byte{[]byte("x")}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Reverted {
		t.Fatal("call should be rejected")
	}
	if _, ok := c.AppGlobal(appID, "touched"); ok {
		t.Fatal("state write survived a rejected call")
	}
	// The fee is charged anyway.
	after := c.Balance(alice.Address).Base.Uint64()
	if before-after != MinFee {
		t.Fatalf("fee charged %d, want %d", before-after, MinFee)
	}
}

func TestGroupPaymentRollsBackWithRejectedCall(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(10_000_000)
	_, appID, err := cl.CreateApp(alice, `
txn ApplicationID
bz create
err
create:
int 1
return`, nil)
	if err != nil {
		t.Fatal(err)
	}
	appAddr := c.AppAddress(appID)
	rcpt, err := cl.CallApp(alice, appID, [][]byte{[]byte("x")}, 500_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Reverted {
		t.Fatal("group should be rejected")
	}
	if got := c.Balance(appAddr).Base.Uint64(); got != 0 {
		t.Fatalf("grouped payment survived rejection: app holds %d", got)
	}
}

func TestInsufficientFee(t *testing.T) {
	c := newTestChain(t)
	alice := c.NewAccount(10_000_000)
	tx := &Tx{Type: TxPay, Sender: alice.Address, Fee: 10, Receiver: chain.Address{1}, Amount: 1}
	tx.Sign(alice)
	if _, err := c.Submit(Group{tx}); err == nil {
		t.Fatal("below-min fee accepted")
	}
}

func TestSignatureValidation(t *testing.T) {
	c := newTestChain(t)
	alice := c.NewAccount(10_000_000)
	mallory := c.NewAccount(10_000_000)
	tx := &Tx{Type: TxPay, Sender: alice.Address, Fee: MinFee, Receiver: chain.Address{1}, Amount: 1}
	tx.Sign(mallory) // wrong key
	if _, err := c.Submit(Group{tx}); err == nil {
		t.Fatal("wrong-key signature accepted")
	}
}

func TestImmediateFinalityNoForks(t *testing.T) {
	// Every certified block's certificate verifies, and block N's parent
	// seed matches block N-1: a single, final chain.
	c := newTestChain(t)
	for i := 0; i < 20; i++ {
		c.Step()
	}
	for i := 1; i < len(c.blocks); i++ {
		blk := c.blocks[i]
		if blk.PrevSeed != c.blocks[i-1].Seed {
			t.Fatalf("block %d not chained to parent", i)
		}
		if err := c.VerifyCertificate(blk.Round, blk.PrevSeed, blk.Cert); err != nil {
			t.Fatalf("block %d certificate: %v", i, err)
		}
	}
}

func TestCertificateRejectsForgery(t *testing.T) {
	c := newTestChain(t)
	blk := c.Step()
	// Tamper with a vote's credential weight.
	forged := &Certificate{BlockHash: blk.Cert.BlockHash}
	for _, v := range blk.Cert.Votes {
		v.Credential.SubUsers++ // claim more weight than sortition gave
		forged.Votes = append(forged.Votes, v)
	}
	if err := c.VerifyCertificate(blk.Round, blk.PrevSeed, forged); err == nil {
		t.Fatal("inflated sortition weight accepted")
	}
	// Certificate from a non-participant.
	outsider := c.NewAccount(0)
	forged2 := &Certificate{BlockHash: blk.Cert.BlockHash}
	for _, v := range blk.Cert.Votes {
		v.Credential.Participant = outsider.Address
		forged2.Votes = append(forged2.Votes, v)
		break
	}
	if err := c.VerifyCertificate(blk.Round, blk.PrevSeed, forged2); err == nil {
		t.Fatal("outsider vote accepted")
	}
}

func TestLeaderHasValidCredential(t *testing.T) {
	c := newTestChain(t)
	for i := 0; i < 10; i++ {
		blk := c.Step()
		seed := sortitionSeed(blk.PrevSeed, blk.Round, "propose")
		if err := VerifyCredential(blk.Proposer, c.partsByAddr, c.totalStake, seed, c.cfg.ExpectedProposers); err != nil {
			// A fallback proposer (no one selected at the nominal
			// expected size) verifies at full expectation instead.
			if err2 := VerifyCredential(blk.Proposer, c.partsByAddr, c.totalStake, seed,
				float64(len(c.participants))); err2 != nil {
				t.Fatalf("round %d: leader credential invalid: %v / %v", blk.Round, err, err2)
			}
		}
	}
}

func TestRoundsAreRegular(t *testing.T) {
	c := newTestChain(t)
	var prev = c.Head().Time
	for i := 0; i < 10; i++ {
		blk := c.Step()
		if blk.Time-prev != c.cfg.RoundDuration {
			t.Fatalf("round interval %v, want %v", blk.Time-prev, c.cfg.RoundDuration)
		}
		prev = blk.Time
	}
}

func TestSimulateDoesNotMutate(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(10_000_000)
	_, appID, err := cl.CreateApp(alice, counterApp, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Simulate(appID, alice.Address, [][]byte{[]byte("bump")})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approved {
		t.Fatalf("simulation rejected: %v", res.Err)
	}
	if v, _ := c.AppGlobal(appID, "count"); v.Uint != 0 {
		t.Fatalf("simulation mutated state: count = %d", v.Uint)
	}
}

func TestBadProgramRejectedAtCreation(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(10_000_000)
	_, _, err := cl.CreateApp(alice, "byte \"unterminated", nil)
	if err == nil || !strings.Contains(err.Error(), "creation failed") {
		t.Fatalf("err = %v", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []float64 {
		c := NewChain(Testnet(), 42)
		cl := NewClient(c)
		alice := c.NewAccount(50_000_000)
		var out []float64
		for i := 0; i < 5; i++ {
			to := chain.AddressFromBytes([]byte{byte(i)})
			rcpt, err := cl.Pay(alice, to, 1000)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rcpt.Latency().Seconds())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at tx %d", i)
		}
	}
}

func TestApproveAllSmoke(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(10_000_000)
	if _, _, err := cl.CreateApp(alice, approveAll, nil); err != nil {
		t.Fatal(err)
	}
}
