package algorand

import (
	"errors"
	"fmt"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

// Algorand Standard Assets — the §2.8 extension: "in the future will be
// possible to create a new token and transfer it, using the Algorand
// Standard Assets (ASAs), instead of using the native cryptocurrency."
// The crowdsensing application can mint its own reward token (e.g. GREEN)
// and pay provers in it.
//
// Asset descriptions and holdings live in the state trie (see ledger.go:
// assetMetaKey / holdKey); the ledger keeps a description cache so hot
// reads do not re-decode.

// Asset is an ASA's immutable configuration.
type Asset struct {
	ID       uint64
	Creator  chain.Address
	Name     string
	UnitName string
	Total    uint64
	Decimals uint32
	CreateAt uint64 // round
}

// ASA errors.
var (
	ErrAssetNotFound  = errors.New("algorand: asset not found")
	ErrNotOptedIn     = errors.New("algorand: receiver not opted in to asset")
	ErrAssetShort     = errors.New("algorand: insufficient asset balance")
	ErrAlreadyOptedIn = errors.New("algorand: already opted in")
)

// Asset returns an asset's configuration.
func (c *Chain) Asset(id uint64) (*Asset, bool) {
	a := c.led.asset(id)
	return a, a != nil
}

// AssetBalance returns an account's holding of an asset (0 when not opted
// in; use OptedInAsset to distinguish).
func (c *Chain) AssetBalance(addr chain.Address, assetID uint64) uint64 {
	return c.led.holding(addr, assetID)
}

// OptedInAsset reports whether an account holds (possibly zero of) the
// asset.
func (c *Chain) OptedInAsset(addr chain.Address, assetID uint64) bool {
	return c.led.assetOptedIn(addr, assetID)
}

// CreateAsset submits an asset-creation transaction and returns the new
// asset ID.
func (cl *Client) CreateAsset(acct *Account, name, unit string, total uint64, decimals uint32) (*chain.Receipt, uint64, error) {
	tx := &Tx{
		Type: TxAssetCreate, Sender: acct.Address, Fee: MinFee,
		AssetName: name, AssetUnit: unit, Amount: total, AssetDecimals: decimals,
	}
	tx.Sign(acct)
	rcpt, err := cl.SubmitAndWait(Group{tx})
	if err != nil {
		return nil, 0, err
	}
	if rcpt.Reverted {
		return rcpt, 0, fmt.Errorf("algorand: asset creation failed: %s", rcpt.RevertMsg)
	}
	id, err := avm.Btoi(rcpt.ReturnValue)
	if err != nil {
		return rcpt, 0, err
	}
	return rcpt, id, nil
}

// OptInAsset opts the account in to an asset (a zero self-transfer on the
// real network).
func (cl *Client) OptInAsset(acct *Account, assetID uint64) (*chain.Receipt, error) {
	tx := &Tx{Type: TxAssetOptIn, Sender: acct.Address, Fee: MinFee, AssetID: assetID}
	tx.Sign(acct)
	rcpt, err := cl.SubmitAndWait(Group{tx})
	if err != nil {
		return nil, err
	}
	if rcpt.Reverted {
		return rcpt, fmt.Errorf("algorand: opt-in failed: %s", rcpt.RevertMsg)
	}
	return rcpt, nil
}

// TransferAsset moves ASA units.
func (cl *Client) TransferAsset(acct *Account, assetID uint64, to chain.Address, amount uint64) (*chain.Receipt, error) {
	tx := &Tx{
		Type: TxAssetTransfer, Sender: acct.Address, Fee: MinFee,
		AssetID: assetID, Receiver: to, Amount: amount,
	}
	tx.Sign(acct)
	rcpt, err := cl.SubmitAndWait(Group{tx})
	if err != nil {
		return nil, err
	}
	if rcpt.Reverted {
		return rcpt, fmt.Errorf("algorand: asset transfer failed: %s", rcpt.RevertMsg)
	}
	return rcpt, nil
}
