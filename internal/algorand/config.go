// Package algorand is a discrete-event simulator of the Algorand network as
// the paper uses it: pure proof-of-stake rounds with VRF-based cryptographic
// sortition for leader and committee selection (Gilad et al., SOSP'17),
// BA-style certification with immediate finality, flat 1000-µAlgo fees, and
// stateful applications executed by the AVM (package avm).
package algorand

import (
	"time"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

// MinFee is the flat minimum fee per transaction, in µAlgos.
const MinFee = 1000

// MinBalance is the minimum balance an account (including an application
// escrow account) must hold, in µAlgos. It matches the value the AVM's
// `global MinBalance` reports.
const MinBalance = avm.MinBalanceValue

// Config parameterizes the simulated network.
type Config struct {
	Name string
	Unit chain.Unit

	// RoundDuration is the block interval; Algorand testnet runs ~4.4 s
	// rounds in the paper's period.
	RoundDuration time.Duration
	// ParticipantCount and stake shape the sortition population.
	ParticipantCount int
	// ExpectedProposers and ExpectedCommittee are the sortition target
	// sizes (the real protocol uses 20 and ~2990; scaled down with the
	// same ratios).
	ExpectedProposers float64
	ExpectedCommittee float64
	// CertThreshold is the weighted-vote fraction of ExpectedCommittee
	// required to certify (the real soft-vote threshold is ~0.685).
	CertThreshold float64

	// IndexerSyncRounds is how many rounds behind the indexer the client
	// reads confirmed effects from (the Reach/PureStake pipeline the
	// paper used polls the indexer, which lags the ledger).
	IndexerSyncRounds int
	// RPCLatencyMean/Jitter model the PureStake API hop.
	RPCLatencyMean   time.Duration
	RPCLatencyJitter time.Duration
}

// Testnet is the preset matching the paper's Algorand testnet runs.
func Testnet() Config {
	return Config{
		Name:              "algorand-testnet",
		Unit:              chain.UnitALGO,
		RoundDuration:     4850 * time.Millisecond,
		ParticipantCount:  60,
		ExpectedProposers: 5,
		ExpectedCommittee: 30,
		CertThreshold:     0.685,
		IndexerSyncRounds: 2,
		RPCLatencyMean:    500 * time.Millisecond,
		RPCLatencyJitter:  600 * time.Millisecond,
	}
}
