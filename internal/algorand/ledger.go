package algorand

import (
	"fmt"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/polcrypto"
)

// Account is an Algorand account with its signing key.
type Account struct {
	Key     *polcrypto.KeyPair
	Address chain.Address
}

// App is a deployed stateful application.
type App struct {
	ID       uint64
	Creator  chain.Address
	Program  *avm.Program
	Source   string
	Globals  map[string]avm.Value
	Locals   map[chain.Address]map[string]avm.Value
	Deleted  bool
	CreateAt uint64 // round
}

// ledger is the on-chain state; it implements avm.Ledger.
type ledger struct {
	balances map[chain.Address]uint64
	apps     map[uint64]*App
	asa      *assetState
	appSeq   uint64
	round    uint64
	time     uint64
}

func newLedger() *ledger {
	return &ledger{
		balances: make(map[chain.Address]uint64),
		apps:     make(map[uint64]*App),
		asa:      newAssetState(),
	}
}

var _ avm.Ledger = (*ledger)(nil)

func (l *ledger) app(id uint64) *App {
	a, ok := l.apps[id]
	if !ok || a.Deleted {
		return nil
	}
	return a
}

// GlobalGet implements avm.Ledger.
func (l *ledger) GlobalGet(appID uint64, key string) (avm.Value, bool) {
	a := l.app(appID)
	if a == nil {
		return avm.Value{}, false
	}
	v, ok := a.Globals[key]
	return v, ok
}

// GlobalPut implements avm.Ledger.
func (l *ledger) GlobalPut(appID uint64, key string, v avm.Value) {
	if a := l.app(appID); a != nil {
		a.Globals[key] = v
	}
}

// GlobalDel implements avm.Ledger.
func (l *ledger) GlobalDel(appID uint64, key string) {
	if a := l.app(appID); a != nil {
		delete(a.Globals, key)
	}
}

// LocalGet implements avm.Ledger.
func (l *ledger) LocalGet(appID uint64, addr chain.Address, key string) (avm.Value, bool) {
	a := l.app(appID)
	if a == nil {
		return avm.Value{}, false
	}
	v, ok := a.Locals[addr][key]
	return v, ok
}

// LocalPut implements avm.Ledger.
func (l *ledger) LocalPut(appID uint64, addr chain.Address, key string, v avm.Value) {
	a := l.app(appID)
	if a == nil {
		return
	}
	if a.Locals == nil {
		a.Locals = make(map[chain.Address]map[string]avm.Value)
	}
	m, ok := a.Locals[addr]
	if !ok {
		m = make(map[string]avm.Value)
		a.Locals[addr] = m
	}
	m[key] = v
}

// LocalDel implements avm.Ledger.
func (l *ledger) LocalDel(appID uint64, addr chain.Address, key string) {
	if a := l.app(appID); a != nil {
		delete(a.Locals[addr], key)
	}
}

// OptedIn implements avm.Ledger.
func (l *ledger) OptedIn(appID uint64, addr chain.Address) bool {
	a := l.app(appID)
	if a == nil {
		return false
	}
	_, ok := a.Locals[addr]
	return ok
}

// Balance implements avm.Ledger.
func (l *ledger) Balance(addr chain.Address) uint64 { return l.balances[addr] }

// Pay implements avm.Ledger (used for inner transactions and payments).
func (l *ledger) Pay(from, to chain.Address, amount uint64) error {
	if l.balances[from] < amount {
		return fmt.Errorf("%w: %s has %d µALGO, needs %d",
			avm.ErrInsufficientBalance, from, l.balances[from], amount)
	}
	l.balances[from] -= amount
	l.balances[to] += amount
	return nil
}

// appEscrowAddress derives the escrow address of an application — a pure
// function of the ID, shared by the ledger and its shard overlays.
func appEscrowAddress(appID uint64) chain.Address {
	h := polcrypto.Hash([]byte(fmt.Sprintf("appID:%d", appID)))
	return chain.AddressFromBytes(h[:])
}

// AppAddress implements avm.Ledger: the application escrow address.
func (l *ledger) AppAddress(appID uint64) chain.Address {
	return appEscrowAddress(appID)
}

// setBalance implements ledgerView for overlay commits.
func (l *ledger) setBalance(addr chain.Address, v uint64) { l.balances[addr] = v }

// putApp implements ledgerView for overlay commits.
func (l *ledger) putApp(a *App) { l.apps[a.ID] = a }

// Round implements avm.Ledger.
func (l *ledger) Round() uint64 { return l.round }

// LatestTimestamp implements avm.Ledger.
func (l *ledger) LatestTimestamp() uint64 { return l.time }

// snapshot captures the mutable ledger state so a failed group can roll
// back atomically.
type snapshot struct {
	balances map[chain.Address]uint64
	apps     map[uint64]*App
	asa      *assetState
	appSeq   uint64
}

func (l *ledger) snapshot() snapshot {
	s := snapshot{
		balances: make(map[chain.Address]uint64, len(l.balances)),
		apps:     make(map[uint64]*App, len(l.apps)),
		asa:      l.asa.clone(),
		appSeq:   l.appSeq,
	}
	for k, v := range l.balances {
		s.balances[k] = v
	}
	for id, a := range l.apps {
		cp := &App{
			ID: a.ID, Creator: a.Creator, Program: a.Program, Source: a.Source,
			Deleted: a.Deleted, CreateAt: a.CreateAt,
			Globals: make(map[string]avm.Value, len(a.Globals)),
		}
		for k, v := range a.Globals {
			cp.Globals[k] = v
		}
		if a.Locals != nil {
			cp.Locals = make(map[chain.Address]map[string]avm.Value, len(a.Locals))
			for addr, m := range a.Locals {
				mm := make(map[string]avm.Value, len(m))
				for k, v := range m {
					mm[k] = v
				}
				cp.Locals[addr] = mm
			}
		}
		s.apps[id] = cp
	}
	return s
}

func (l *ledger) restore(s snapshot) {
	l.balances = s.balances
	l.apps = s.apps
	l.asa = s.asa
	l.appSeq = s.appSeq
}
