package algorand

import (
	"encoding/binary"
	"fmt"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/mstate"
	"agnopol/internal/polcrypto"
)

// Account is an Algorand account with its signing key.
type Account struct {
	Key     *polcrypto.KeyPair
	Address chain.Address
}

// App is a deployed stateful application's static description. Its
// key/value state — globals, locals, opt-in markers — lives in the state
// trie; the parsed Program is cached ledger-side so calls do not
// re-parse TEAL.
type App struct {
	ID       uint64
	Creator  chain.Address
	Program  *avm.Program
	Source   string
	Deleted  bool
	CreateAt uint64 // round
}

// Trie key derivation. Every logical ledger entry — a balance, an app's
// metadata, one global, one local, an opt-in marker, an asset holding —
// is one key in the Merkle trie, tagged by column family.
func u64b(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

func balKey(addr chain.Address) mstate.Key { return mstate.KeyOf("algo/bal", addr[:]) }
func appMetaKey(id uint64) mstate.Key      { return mstate.KeyOf("algo/app", u64b(id)) }
func globalKey(id uint64, key string) mstate.Key {
	return mstate.KeyOf("algo/g", u64b(id), []byte(key))
}
func localKey(id uint64, addr chain.Address, key string) mstate.Key {
	return mstate.KeyOf("algo/l", u64b(id), addr[:], []byte(key))
}
func optinKey(id uint64, addr chain.Address) mstate.Key {
	return mstate.KeyOf("algo/optin", u64b(id), addr[:])
}
func assetMetaKey(id uint64) mstate.Key { return mstate.KeyOf("algo/asset", u64b(id)) }
func holdKey(addr chain.Address, id uint64) mstate.Key {
	return mstate.KeyOf("algo/hold", u64b(id), addr[:])
}

// encodeValue / decodeValue render an avm.Value as a trie entry.
func encodeValue(v avm.Value) []byte {
	if v.IsBytes {
		return append([]byte{1}, v.Bytes...)
	}
	return append([]byte{0}, u64b(v.Uint)...)
}

func decodeValue(enc []byte) avm.Value {
	if len(enc) == 0 {
		return avm.Value{}
	}
	if enc[0] == 1 {
		return avm.Value{IsBytes: true, Bytes: append([]byte(nil), enc[1:]...)}
	}
	return avm.Value{Uint: binary.BigEndian.Uint64(enc[1:])}
}

// encodeAppMeta renders an app's static description. The deleted flag
// leads so existence checks read one byte.
func encodeAppMeta(a *App) []byte {
	enc := make([]byte, 0, 1+20+8+len(a.Source))
	del := byte(0)
	if a.Deleted {
		del = 1
	}
	enc = append(enc, del)
	enc = append(enc, a.Creator[:]...)
	enc = append(enc, u64b(a.CreateAt)...)
	return append(enc, a.Source...)
}

func decodeAppMeta(id uint64, enc []byte) *App {
	a := &App{ID: id, Deleted: enc[0] == 1}
	copy(a.Creator[:], enc[1:21])
	a.CreateAt = binary.BigEndian.Uint64(enc[21:29])
	a.Source = string(enc[29:])
	return a
}

func encodeAssetMeta(a *Asset) []byte {
	enc := make([]byte, 0, 20+8+4+8+4+len(a.Name)+len(a.UnitName))
	enc = append(enc, a.Creator[:]...)
	enc = append(enc, u64b(a.Total)...)
	var dec [4]byte
	binary.BigEndian.PutUint32(dec[:], a.Decimals)
	enc = append(enc, dec[:]...)
	enc = append(enc, u64b(a.CreateAt)...)
	var nl [4]byte
	binary.BigEndian.PutUint32(nl[:], uint32(len(a.Name)))
	enc = append(enc, nl[:]...)
	enc = append(enc, a.Name...)
	return append(enc, a.UnitName...)
}

func decodeAssetMeta(id uint64, enc []byte) *Asset {
	a := &Asset{ID: id}
	copy(a.Creator[:], enc[:20])
	a.Total = binary.BigEndian.Uint64(enc[20:28])
	a.Decimals = binary.BigEndian.Uint32(enc[28:32])
	a.CreateAt = binary.BigEndian.Uint64(enc[32:40])
	nl := binary.BigEndian.Uint32(enc[40:44])
	a.Name = string(enc[44 : 44+nl])
	a.UnitName = string(enc[44+nl:])
	return a
}

// stateKV is the key/value surface the accessor layer runs on — the
// canonical trie and shard overlays both implement it, so the ledger
// semantics below exist exactly once.
type stateKV interface {
	Get(mstate.Key) ([]byte, bool)
	Put(mstate.Key, []byte)
	Delete(mstate.Key)
	Has(mstate.Key) bool
}

// ledgerKV implements the avm.Ledger surface (plus app and asset
// accessors) over any stateKV. The back-pointer to the canonical ledger
// serves the program/asset caches and the round clock — all of which
// shard workers only read during concurrent execution.
type ledgerKV struct {
	kv  stateKV
	led *ledger
}

// appExists reports whether the app is present and not deleted, without
// materializing the metadata.
func (v *ledgerKV) appExists(id uint64) bool {
	enc, ok := v.kv.Get(appMetaKey(id))
	return ok && enc[0] == 0
}

func (v *ledgerKV) app(id uint64) *App {
	enc, ok := v.kv.Get(appMetaKey(id))
	if !ok || enc[0] == 1 {
		return nil
	}
	if a, ok := v.led.progs[id]; ok {
		return a
	}
	// Cache miss: rebuild from the trie. Shard workers may run this
	// concurrently, so parse without touching the shared cache.
	a := decodeAppMeta(id, enc)
	prog, err := avm.Parse(a.Source)
	if err != nil {
		return nil
	}
	a.Program = prog
	return a
}

// GlobalGet implements avm.Ledger.
func (v *ledgerKV) GlobalGet(appID uint64, key string) (avm.Value, bool) {
	if !v.appExists(appID) {
		return avm.Value{}, false
	}
	enc, ok := v.kv.Get(globalKey(appID, key))
	if !ok {
		return avm.Value{}, false
	}
	return decodeValue(enc), true
}

// GlobalPut implements avm.Ledger.
func (v *ledgerKV) GlobalPut(appID uint64, key string, val avm.Value) {
	if !v.appExists(appID) {
		return
	}
	v.kv.Put(globalKey(appID, key), encodeValue(val))
}

// GlobalDel implements avm.Ledger.
func (v *ledgerKV) GlobalDel(appID uint64, key string) {
	if !v.appExists(appID) {
		return
	}
	v.kv.Delete(globalKey(appID, key))
}

// LocalGet implements avm.Ledger.
func (v *ledgerKV) LocalGet(appID uint64, addr chain.Address, key string) (avm.Value, bool) {
	if !v.appExists(appID) {
		return avm.Value{}, false
	}
	enc, ok := v.kv.Get(localKey(appID, addr, key))
	if !ok {
		return avm.Value{}, false
	}
	return decodeValue(enc), true
}

// LocalPut implements avm.Ledger. The first local write opts the account
// in (mirroring the map backend, where creating the per-address local
// map was what OptedIn tested); the marker survives deletes of
// individual keys.
func (v *ledgerKV) LocalPut(appID uint64, addr chain.Address, key string, val avm.Value) {
	if !v.appExists(appID) {
		return
	}
	mk := optinKey(appID, addr)
	if !v.kv.Has(mk) {
		v.kv.Put(mk, []byte{1})
	}
	v.kv.Put(localKey(appID, addr, key), encodeValue(val))
}

// LocalDel implements avm.Ledger.
func (v *ledgerKV) LocalDel(appID uint64, addr chain.Address, key string) {
	if !v.appExists(appID) {
		return
	}
	v.kv.Delete(localKey(appID, addr, key))
}

// OptedIn implements avm.Ledger.
func (v *ledgerKV) OptedIn(appID uint64, addr chain.Address) bool {
	if !v.appExists(appID) {
		return false
	}
	return v.kv.Has(optinKey(appID, addr))
}

// Balance implements avm.Ledger.
func (v *ledgerKV) Balance(addr chain.Address) uint64 {
	enc, ok := v.kv.Get(balKey(addr))
	if !ok {
		return 0
	}
	return binary.BigEndian.Uint64(enc)
}

// setBalance force-writes a balance; a zero write keeps an explicit
// entry, matching the map backend's semantics.
func (v *ledgerKV) setBalance(addr chain.Address, val uint64) {
	v.kv.Put(balKey(addr), u64b(val))
}

// credit adds to a balance. A zero credit of an absent account is a
// no-op: it must not conjure a phantom zero-balance entry into the
// state root.
func (v *ledgerKV) credit(addr chain.Address, val uint64) {
	if val == 0 {
		return
	}
	v.setBalance(addr, v.Balance(addr)+val)
}

// Pay implements avm.Ledger (used for inner transactions and payments).
func (v *ledgerKV) Pay(from, to chain.Address, amount uint64) error {
	if v.Balance(from) < amount {
		return fmt.Errorf("%w: %s has %d µALGO, needs %d",
			avm.ErrInsufficientBalance, from, v.Balance(from), amount)
	}
	v.setBalance(from, v.Balance(from)-amount)
	v.setBalance(to, v.Balance(to)+amount)
	return nil
}

// appEscrowAddress derives the escrow address of an application — a pure
// function of the ID, shared by the ledger and its shard overlays.
func appEscrowAddress(appID uint64) chain.Address {
	h := polcrypto.Hash([]byte(fmt.Sprintf("appID:%d", appID)))
	return chain.AddressFromBytes(h[:])
}

// AppAddress implements avm.Ledger: the application escrow address.
func (v *ledgerKV) AppAddress(appID uint64) chain.Address {
	return appEscrowAddress(appID)
}

// Round implements avm.Ledger.
func (v *ledgerKV) Round() uint64 { return v.led.round }

// LatestTimestamp implements avm.Ledger.
func (v *ledgerKV) LatestTimestamp() uint64 { return v.led.time }

// asset returns an asset's description, from the cache or the trie.
func (v *ledgerKV) asset(id uint64) *Asset {
	if a, ok := v.led.assets[id]; ok {
		return a
	}
	enc, ok := v.kv.Get(assetMetaKey(id))
	if !ok {
		return nil
	}
	return decodeAssetMeta(id, enc)
}

func (v *ledgerKV) assetExists(id uint64) bool {
	if _, ok := v.led.assets[id]; ok {
		return true
	}
	return v.kv.Has(assetMetaKey(id))
}

// holding returns addr's balance of an asset (0 when not opted in; use
// assetOptedIn to distinguish).
func (v *ledgerKV) holding(addr chain.Address, id uint64) uint64 {
	enc, ok := v.kv.Get(holdKey(addr, id))
	if !ok {
		return 0
	}
	return binary.BigEndian.Uint64(enc)
}

func (v *ledgerKV) setHolding(addr chain.Address, id, val uint64) {
	v.kv.Put(holdKey(addr, id), u64b(val))
}

func (v *ledgerKV) assetOptedIn(addr chain.Address, id uint64) bool {
	return v.kv.Has(holdKey(addr, id))
}

// assetOptIn records a zero holding — the opt-in marker.
func (v *ledgerKV) assetOptIn(addr chain.Address, id uint64) {
	if !v.assetOptedIn(addr, id) {
		v.setHolding(addr, id, 0)
	}
}

// assetTransfer moves ASA units. Error texts are part of the receipt
// stream, so they must stay stable across backends.
func (v *ledgerKV) assetTransfer(id uint64, from, to chain.Address, amount uint64) error {
	if !v.assetExists(id) {
		return fmt.Errorf("%w: %d", ErrAssetNotFound, id)
	}
	if !v.assetOptedIn(to, id) {
		return fmt.Errorf("%w: %s / asset %d", ErrNotOptedIn, to, id)
	}
	if have := v.holding(from, id); have < amount {
		return fmt.Errorf("%w: %s holds %d of asset %d, needs %d",
			ErrAssetShort, from, have, id, amount)
	}
	v.setHolding(from, id, v.holding(from, id)-amount)
	v.setHolding(to, id, v.holding(to, id)+amount)
	return nil
}

// ledger is the on-chain state: a Merkle trie over balances, application
// state and asset holdings, plus ledger-side caches of parsed programs
// and asset descriptions. It implements avm.Ledger.
type ledger struct {
	ledgerKV
	t *mstate.Trie
	// progs caches each live app's parsed Program (the trie metadata
	// stores only the source); assets caches ASA descriptions. Both
	// prune on restore so a rolled-back creation never leaves a stale
	// entry behind.
	progs  map[uint64]*App
	assets map[uint64]*Asset

	appSeq   uint64
	assetSeq uint64
	round    uint64
	time     uint64
}

func newLedger() *ledger {
	l := &ledger{
		t:      mstate.New(),
		progs:  make(map[uint64]*App),
		assets: make(map[uint64]*Asset),
	}
	l.ledgerKV = ledgerKV{kv: l.t, led: l}
	return l
}

var _ avm.Ledger = (*ledger)(nil)

// root is the Merkle root of the ledger state.
func (l *ledger) root() chain.Hash32 { return chain.Hash32(l.t.Root()) }

// createApp registers a new application and returns its ID.
func (l *ledger) createApp(creator chain.Address, source string, prog *avm.Program, round uint64) uint64 {
	l.appSeq++
	a := &App{ID: l.appSeq, Creator: creator, Program: prog, Source: source, CreateAt: round}
	l.kv.Put(appMetaKey(a.ID), encodeAppMeta(a))
	l.progs[a.ID] = a
	return a.ID
}

// assetCreate mints a new asset; the creator holds the entire supply and
// is implicitly opted in.
func (l *ledger) assetCreate(creator chain.Address, name, unit string, total uint64, decimals uint32, round uint64) *Asset {
	l.assetSeq++
	a := &Asset{
		ID: l.assetSeq, Creator: creator, Name: name, UnitName: unit,
		Total: total, Decimals: decimals, CreateAt: round,
	}
	l.kv.Put(assetMetaKey(a.ID), encodeAssetMeta(a))
	l.assets[a.ID] = a
	l.setHolding(creator, a.ID, total)
	return a
}

// snapshot captures the ledger in O(1) — a trie fork plus the sequence
// counters — so a failed group can roll back atomically no matter how
// large the world is.
type snapshot struct {
	t        *mstate.Trie
	appSeq   uint64
	assetSeq uint64
}

func (l *ledger) snapshot() snapshot {
	return snapshot{t: l.t.Snapshot(), appSeq: l.appSeq, assetSeq: l.assetSeq}
}

func (l *ledger) restore(s snapshot) {
	l.t = s.t
	l.kv = l.t
	// Drop cache entries for creations being rolled back; their trie
	// entries vanish with the root swap, and a later re-creation of the
	// same ID may carry different source.
	for id := range l.progs {
		if id > s.appSeq {
			delete(l.progs, id)
		}
	}
	for id := range l.assets {
		if id > s.assetSeq {
			delete(l.assets, id)
		}
	}
	l.appSeq = s.appSeq
	l.assetSeq = s.assetSeq
}
