package algorand

import (
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

func TestGroupConflictKeysTable(t *testing.T) {
	sender := chain.AddressFromBytes([]byte("sender"))
	receiver := chain.AddressFromBytes([]byte("receiver"))
	cases := []struct {
		name string
		g    Group
		want []chain.ConflictKey
	}{
		{
			name: "payment keys sender and receiver accounts",
			g:    Group{{Type: TxPay, Sender: sender, Receiver: receiver}},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AccountKey(receiver),
			},
		},
		{
			name: "app call keys the app and its escrow",
			g:    Group{{Type: TxAppCall, Sender: sender, AppID: 7}},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AppKey(7),
				chain.AccountKey(appEscrowAddress(7)),
			},
		},
		{
			name: "creation carries the global key",
			g:    Group{{Type: TxAppCreate, Sender: sender}},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.GlobalKey(),
			},
		},
		{
			name: "asset transfer keys asset and receiver",
			g:    Group{{Type: TxAssetTransfer, Sender: sender, Receiver: receiver, AssetID: 3}},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AssetKey(3),
				chain.AccountKey(receiver),
			},
		},
		{
			name: "group concatenates member keys",
			g: Group{
				{Type: TxPay, Sender: sender, Receiver: receiver},
				{Type: TxAppCall, Sender: sender, AppID: 2},
			},
			want: []chain.ConflictKey{
				chain.AccountKey(sender),
				chain.AccountKey(receiver),
				chain.AccountKey(sender),
				chain.AppKey(2),
				chain.AccountKey(appEscrowAddress(2)),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.g.ConflictKeys()
			if len(got) != len(tc.want) {
				t.Fatalf("got %d keys, want %d: %+v", len(got), len(tc.want), got)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("key[%d] = %+v, want %+v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestGroupShardable(t *testing.T) {
	pay := &Tx{Type: TxPay}
	call := &Tx{Type: TxAppCall}
	if !(Group{pay, call}).shardable() {
		t.Fatal("pay+call groups are shardable")
	}
	for _, tx := range []*Tx{
		{Type: TxAppCreate}, {Type: TxAssetCreate},
		{Type: TxAssetOptIn}, {Type: TxAssetTransfer},
	} {
		if (Group{pay, tx}).shardable() {
			t.Fatalf("type %d must force the serial path", tx.Type)
		}
	}
}

func TestLedgerOverlayCopyOnWrite(t *testing.T) {
	led := newLedger()
	alice := chain.AddressFromBytes([]byte("alice"))
	led.setBalance(alice, 100)
	led.createApp(chain.Address{}, "int 1", nil, 0)
	led.GlobalPut(1, "k", avm.Uint64Value(5))

	ov := led.fork()
	if ov.Balance(alice) != 100 {
		t.Fatal("overlay must read through")
	}
	ov.setBalance(alice, 60)
	ov.GlobalPut(1, "k", avm.Uint64Value(9))
	ov.LocalPut(1, alice, "seen", avm.Uint64Value(1))
	if led.Balance(alice) != 100 {
		t.Fatal("base balance changed before commit")
	}
	if v, _ := led.GlobalGet(1, "k"); v.Uint != 5 {
		t.Fatal("base app mutated before commit: copy-on-write broken")
	}
	if v, _ := ov.GlobalGet(1, "k"); v.Uint != 9 {
		t.Fatal("overlay must serve its own global write")
	}
	if !ov.OptedIn(1, alice) {
		t.Fatal("overlay local write must imply opt-in")
	}
	if led.OptedIn(1, alice) {
		t.Fatal("base opt-in leaked before commit")
	}

	// Nested overlay: rollback by discarding.
	sub := ov.fork()
	sub.GlobalPut(1, "k", avm.Uint64Value(77))
	sub.setBalance(alice, 1)
	if v, _ := ov.GlobalGet(1, "k"); v.Uint != 9 {
		t.Fatal("discarded nested overlay must not leak")
	}

	led.adopt(ov)
	if led.Balance(alice) != 60 {
		t.Fatal("commit must fold balances")
	}
	if v, _ := led.GlobalGet(1, "k"); v.Uint != 9 {
		t.Fatal("commit must fold app state")
	}
	if !led.OptedIn(1, alice) {
		t.Fatal("commit must fold locals")
	}
}

// runShardedRounds drives per-area app-call traffic plus peer payments and
// returns the chain for digest comparison.
func runShardedRounds(t *testing.T, shards int) *Chain {
	t.Helper()
	c := NewChain(Testnet(), 77)
	c.SetShards(shards)
	cl := NewClient(c)

	deployer := c.NewAccount(50_000_000)
	const areas = 4
	var apps []uint64
	for i := 0; i < areas; i++ {
		_, id, err := cl.CreateApp(deployer, counterApp, nil)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, id)
	}

	const users = 12
	accts := make([]*Account, users)
	for i := range accts {
		accts[i] = c.NewAccount(10_000_000)
	}

	for round := 0; round < 8; round++ {
		var groups []Group
		for ui, u := range accts {
			call := &Tx{
				Type: TxAppCall, Sender: u.Address, Fee: MinFee,
				AppID: apps[ui%areas], Args: [][]byte{[]byte("bump")},
			}
			call.Sign(u)
			groups = append(groups, Group{call})
			if round%2 == 1 {
				pay := &Tx{
					Type: TxPay, Sender: u.Address, Fee: MinFee,
					Receiver: accts[ui^1].Address, Amount: 1000,
				}
				pay.Sign(u)
				groups = append(groups, Group{pay})
			}
		}
		_, errs := c.SubmitBatch(groups)
		for i, err := range errs {
			if err != nil {
				t.Fatalf("round %d group %d: %v", round, i, err)
			}
		}
		c.Step()
	}
	for i := 0; i < 10 && c.PendingCount() > 0; i++ {
		c.Step()
	}
	if c.PendingCount() != 0 {
		t.Fatalf("%d groups never included", c.PendingCount())
	}
	return c
}

func TestShardedRoundBitIdentity(t *testing.T) {
	ref := runShardedRounds(t, 1)
	refDigest := ref.Digest()
	for _, shards := range []int{2, 3, 4, 8} {
		c := runShardedRounds(t, shards)
		if len(c.blocks) != len(ref.blocks) {
			t.Fatalf("shards=%d: %d rounds vs %d serial", shards, len(c.blocks), len(ref.blocks))
		}
		for i := range ref.blocks {
			if c.blocks[i].Hash != ref.blocks[i].Hash {
				t.Fatalf("shards=%d: round %d hash diverges", shards, i)
			}
		}
		if d := c.Digest(); d != refDigest {
			t.Fatalf("shards=%d: ledger digest diverges from serial run", shards)
		}
	}
}

func TestShardedRoundRecordsStats(t *testing.T) {
	c := runShardedRounds(t, 4)
	stats := c.ShardStats()
	if stats == nil || stats.ParallelBatches == 0 {
		t.Fatalf("disjoint-area rounds must fan out (stats=%+v)", stats)
	}
	busy := 0
	for _, n := range stats.Txs {
		if n > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("only %d shards did work (txs=%v)", busy, stats.Txs)
	}
}

func TestCreationRoundFallsBackToSerial(t *testing.T) {
	c := NewChain(Testnet(), 5)
	c.SetShards(4)
	alice := c.NewAccount(10_000_000)
	bob := c.NewAccount(10_000_000)
	create := &Tx{Type: TxAppCreate, Sender: alice.Address, Fee: MinFee, Source: approveAll}
	create.Sign(alice)
	pay := &Tx{Type: TxPay, Sender: bob.Address, Fee: MinFee,
		Receiver: chain.AddressFromBytes([]byte("x")), Amount: 1}
	pay.Sign(bob)
	_, errs := c.SubmitBatch([]Group{{create}, {pay}})
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	c.Step()
	stats := c.ShardStats()
	if stats.ParallelBatches != 0 {
		t.Fatal("a round containing a creation must take the serial path")
	}
	if _, ok := c.App(1); !ok {
		t.Fatal("creation did not execute on the fallback path")
	}
}

func TestRejectedCallInShardedRoundChargesFees(t *testing.T) {
	// A rejected app call must roll back its writes and still charge the
	// fee — on the sharded path exactly as on the serial one.
	run := func(shards int) *Chain {
		c := NewChain(Testnet(), 9)
		c.SetShards(shards)
		cl := NewClient(c)
		deployer := c.NewAccount(50_000_000)
		_, appID, err := cl.CreateApp(deployer, counterApp, nil)
		if err != nil {
			t.Fatal(err)
		}
		alice := c.NewAccount(10_000_000)
		bob := c.NewAccount(10_000_000)
		// "boom" matches no branch, so the program errs and the call rolls
		// back; bob's independent payment keeps the round multi-component.
		bad := &Tx{Type: TxAppCall, Sender: alice.Address, Fee: MinFee,
			AppID: appID, Args: [][]byte{[]byte("boom")}}
		bad.Sign(alice)
		pay := &Tx{Type: TxPay, Sender: bob.Address, Fee: MinFee,
			Receiver: chain.AddressFromBytes([]byte("sink")), Amount: 5}
		pay.Sign(bob)
		_, errs := c.SubmitBatch([]Group{{bad}, {pay}})
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		c.Step()
		return c
	}
	serial := run(1)
	sharded := run(4)
	if sharded.ShardStats().ParallelBatches == 0 {
		t.Fatal("expected the sharded path to engage")
	}
	if serial.Digest() != sharded.Digest() {
		t.Fatal("revert handling diverges between serial and sharded paths")
	}
}
