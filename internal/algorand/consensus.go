package algorand

import (
	"encoding/binary"
	"fmt"

	"agnopol/internal/chain"
	"agnopol/internal/polcrypto"
)

// Participant is an online account taking part in consensus. In pure
// proof-of-stake no minimum stake is required and selection probability is
// proportional to stake (§1.4.2.1).
type Participant struct {
	Key     *polcrypto.KeyPair
	Address chain.Address
	Stake   uint64
}

// Credential proves a participant's role in a round: the VRF output and
// proof anyone can verify (§1.4.2: members learn of their role secretly but
// can prove it).
type Credential struct {
	Participant chain.Address
	Output      polcrypto.VRFOutput
	Proof       polcrypto.VRFProof
	// SubUsers is j — how many of the participant's stake-weighted
	// sub-users the sortition selected.
	SubUsers uint64
}

// Vote is a committee member's certification vote on a block proposal.
// Step is the BA voting step the vote belongs to: when one step's committee
// does not reach the weight threshold, the protocol runs further steps with
// fresh sortition seeds until it does.
type Vote struct {
	Credential Credential
	BlockHash  chain.Hash32
	Step       uint64
	Signature  []byte
}

// Certificate is the set of committee votes that finalizes a block.
type Certificate struct {
	BlockHash chain.Hash32
	Votes     []Vote
}

// sortitionSeed derives the per-round, per-role VRF seed.
func sortitionSeed(prevSeed chain.Hash32, round uint64, role string) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], round)
	h := polcrypto.Hash(prevSeed[:], buf[:], []byte(role))
	return h[:]
}

// runSortition evaluates every participant's VRF for a role and returns the
// credentials with j > 0.
func runSortition(parts []*Participant, totalStake uint64, seed []byte, expected float64) []Credential {
	var out []Credential
	for _, p := range parts {
		vrfOut, proof := polcrypto.VRFEvaluate(p.Key, seed)
		j := polcrypto.Sortition(vrfOut, p.Stake, totalStake, expected)
		if j > 0 {
			out = append(out, Credential{
				Participant: p.Address,
				Output:      vrfOut,
				Proof:       proof,
				SubUsers:    j,
			})
		}
	}
	return out
}

// proposalPriority orders proposer credentials: the lowest hash of
// (output, subUser) across selected sub-users wins, as in the Algorand
// paper.
func proposalPriority(c Credential) [32]byte {
	best := [32]byte{}
	for i := range best {
		best[i] = 0xff
	}
	for j := uint64(0); j < c.SubUsers; j++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], j)
		h := polcrypto.Hash(c.Output[:], buf[:])
		if lessBytes(h[:], best[:]) {
			best = h
		}
	}
	return best
}

func lessBytes(a, b []byte) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// VerifyCredential checks a credential against the registry of
// participants: valid VRF proof and honest sub-user count.
func VerifyCredential(c Credential, byAddr map[chain.Address]*Participant, totalStake uint64, seed []byte, expected float64) error {
	p, ok := byAddr[c.Participant]
	if !ok {
		return fmt.Errorf("algorand: unknown participant %s", c.Participant)
	}
	if !polcrypto.VRFVerify(p.Key.Public, seed, c.Output, c.Proof) {
		return fmt.Errorf("algorand: invalid VRF proof from %s", c.Participant)
	}
	want := polcrypto.Sortition(c.Output, p.Stake, totalStake, expected)
	if want != c.SubUsers {
		return fmt.Errorf("algorand: %s claims %d sub-users, sortition gives %d",
			c.Participant, c.SubUsers, want)
	}
	if want == 0 {
		return fmt.Errorf("algorand: %s was not selected", c.Participant)
	}
	return nil
}

// committeeSeed derives the sortition seed of one BA voting step.
func committeeSeed(prevSeed chain.Hash32, round, step uint64) []byte {
	return sortitionSeed(prevSeed, round, fmt.Sprintf("committee/%d", step))
}

// VerifyCertificate checks a block certificate: every vote carries a valid
// committee credential for its step and a valid signature, and the weighted
// votes reach the threshold.
func (c *Chain) VerifyCertificate(round uint64, prevSeed chain.Hash32, cert *Certificate) error {
	weight := uint64(0)
	for _, v := range cert.Votes {
		seed := committeeSeed(prevSeed, round, v.Step)
		if err := VerifyCredential(v.Credential, c.partsByAddr, c.totalStake, seed, c.cfg.ExpectedCommittee); err != nil {
			return err
		}
		p := c.partsByAddr[v.Credential.Participant]
		msg := append(append([]byte("vote:"), cert.BlockHash[:]...), seed...)
		if !polcrypto.Verify(p.Key.Public, msg, v.Signature) {
			return fmt.Errorf("algorand: bad vote signature from %s", v.Credential.Participant)
		}
		weight += v.Credential.SubUsers
	}
	need := uint64(c.cfg.CertThreshold * c.cfg.ExpectedCommittee)
	if weight < need {
		return fmt.Errorf("algorand: certificate weight %d below threshold %d", weight, need)
	}
	return nil
}
