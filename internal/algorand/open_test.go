package algorand

import (
	"encoding/json"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/faults"
	"agnopol/internal/mstate"
	"agnopol/internal/mstate/diskstore"
	"agnopol/internal/polcrypto"
)

func fundedAccount(c *Chain, rng *chain.Rand, micro uint64) *Account {
	kp := polcrypto.MustGenerateKeyPair(rng)
	addr := chain.AddressFromPublicKey(kp.Public)
	c.Fund(addr, micro)
	return &Account{Key: kp, Address: addr}
}

func submitGroup(t *testing.T, c *Chain, g Group) {
	t.Helper()
	if _, err := c.Submit(g); err != nil {
		t.Fatal(err)
	}
}

func signedPay(from *Account, to chain.Address, amount uint64) *Tx {
	tx := &Tx{Type: TxPay, Sender: from.Address, Fee: MinFee, Receiver: to, Amount: amount}
	tx.Sign(from)
	return tx
}

func signedCall(from *Account, appID uint64, arg string) *Tx {
	tx := &Tx{Type: TxAppCall, Sender: from.Address, Fee: MinFee, AppID: appID, Args: [][]byte{[]byte(arg)}}
	tx.Sign(from)
	return tx
}

// The algorand twin of the eth restart test: run (with a deployed app
// so the program-cache warm path is exercised) → checkpoint with a
// pending group in flight → commit → reopen → continue, digests and
// roots bit-identical to the uninterrupted chain.
func TestOpenContinuesBitIdentically(t *testing.T) {
	for _, backend := range []string{"memstore", "diskstore"} {
		t.Run(backend, func(t *testing.T) {
			var store mstate.NodeStore
			var disk *diskstore.Store
			if backend == "memstore" {
				store = mstate.NewMemStore()
			} else {
				d, err := diskstore.Open(t.TempDir(), diskstore.Options{NoSync: true})
				if err != nil {
					t.Fatal(err)
				}
				disk = d
				store = d
				defer d.Close()
			}

			cfg := Testnet()
			const seed = 99
			ref := NewChain(cfg, seed)
			keyRng := chain.NewRand(seed).Fork("test:keys")
			alice := fundedAccount(ref, keyRng, 50_000_000)
			bob := fundedAccount(ref, keyRng, 50_000_000)

			create := &Tx{Type: TxAppCreate, Sender: alice.Address, Fee: MinFee, Source: counterApp}
			create.Sign(alice)
			submitGroup(t, ref, Group{create})
			ref.Step()
			appID := uint64(1)
			for i := 0; i < 4; i++ {
				submitGroup(t, ref, Group{signedCall(alice, appID, "bump")})
				submitGroup(t, ref, Group{signedPay(bob, alice.Address, 1_000)})
				ref.Step()
			}
			// Leave a group in flight across the checkpoint.
			submitGroup(t, ref, Group{signedCall(bob, appID, "bump")})

			ck, err := ref.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			if len(ck.Pending) == 0 {
				t.Fatal("checkpoint should carry the in-flight group")
			}
			root, err := ref.CommitState(store)
			if err != nil {
				t.Fatal(err)
			}
			blob, err := json.Marshal(ck)
			if err != nil {
				t.Fatal(err)
			}
			if disk != nil {
				if err := disk.Commit(root, blob); err != nil {
					t.Fatal(err)
				}
			}
			var ck2 Checkpoint
			if err := json.Unmarshal(blob, &ck2); err != nil {
				t.Fatal(err)
			}

			resumed, err := Open(Options{Config: cfg, Seed: seed, Store: store, Root: root, Checkpoint: &ck2})
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Digest() != ref.Digest() {
				t.Fatal("digest diverges immediately after restore")
			}
			// The warm cache must hold the app's re-parsed program.
			if a, ok := resumed.App(appID); !ok || a.Program == nil {
				t.Fatal("program cache not warmed on open")
			}

			for i := 0; i < 4; i++ {
				ref.Step()
				resumed.Step()
				submitGroup(t, ref, Group{signedCall(alice, appID, "bump")})
				submitGroup(t, resumed, Group{signedCall(alice, appID, "bump")})
			}
			ref.Step()
			resumed.Step()

			if ref.Digest() != resumed.Digest() {
				t.Fatalf("digest diverged: ref %x, resumed %x", ref.Digest(), resumed.Digest())
			}
			if ref.StateRoot() != resumed.StateRoot() {
				t.Fatal("state root diverged")
			}
			refCount, _ := ref.AppGlobal(appID, "count")
			resCount, _ := resumed.AppGlobal(appID, "count")
			if refCount.Uint != resCount.Uint || refCount.Uint == 0 {
				t.Fatalf("counter diverged: ref %d, resumed %d", refCount.Uint, resCount.Uint)
			}
		})
	}
}

func TestOpenInMemoryMatchesNewChain(t *testing.T) {
	cfg := Testnet()
	a := NewChain(cfg, 5)
	b, err := Open(Options{Config: cfg, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		a.Step()
		b.Step()
	}
	if a.Digest() != b.Digest() {
		t.Fatal("Open without a store must behave exactly like NewChain")
	}
}

func TestOpenRejectsMisuse(t *testing.T) {
	cfg := Testnet()
	if _, err := Open(Options{Config: cfg, Seed: 1, Root: mstate.Hash{9}}); err == nil {
		t.Fatal("root without store must be rejected")
	}
	c := NewChain(cfg, 4)
	c.SetFaults(faults.NewInjector(faults.Uniform(0.1), 4, nil))
	if _, err := c.Checkpoint(); err == nil {
		t.Fatal("checkpoint with fault injection must be refused")
	}
}
