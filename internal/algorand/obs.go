package algorand

import (
	"agnopol/internal/obs"
)

// InclusionLatencyBuckets are the histogram bounds, in simulated seconds,
// for group inclusion latency. Rounds certify every ~4.5 s, so the range
// is tighter than on the EVM chains.
var InclusionLatencyBuckets = []float64{1, 2.5, 5, 7.5, 10, 15, 20, 30, 45, 60}

// chainObs bundles the chain's metric instruments; nil means the chain is
// uninstrumented and hook sites cost one nil check.
type chainObs struct {
	roundsCertified  *obs.Counter
	groupsSubmitted  *obs.Counter
	groupsIncluded   *obs.Counter
	groupsRejected   *obs.Counter
	certVotes        *obs.Counter
	fees             *obs.Counter
	pendingDepth     *obs.Gauge
	inclusionLatency *obs.Histogram
	// inclusionSketch answers tail-latency questions the fixed buckets
	// can't: a mergeable quantile sketch over the same observations.
	inclusionSketch *obs.QuantileSketch
	faultDelay      *obs.QuantileSketch
	prof            obs.Profiler
	log             *obs.Logger
}

// Instrument attaches metric instruments, an AVM opcode profiler and a
// logger to the chain. All metrics carry a chain label with the preset
// name. Passing a nil registry detaches instrumentation.
func (c *Chain) Instrument(reg *obs.Registry, prof obs.Profiler, log *obs.Logger) {
	if reg == nil {
		c.obs = nil
		return
	}
	name := obs.L("chain", c.cfg.Name)
	c.obs = &chainObs{
		roundsCertified:  reg.Counter("algorand_rounds_certified_total", name),
		groupsSubmitted:  reg.Counter("algorand_groups_submitted_total", name),
		groupsIncluded:   reg.Counter("algorand_groups_included_total", name),
		groupsRejected:   reg.Counter("algorand_groups_rejected_total", name),
		certVotes:        reg.Counter("algorand_cert_votes_total", name),
		fees:             reg.Counter("algorand_fees_microalgo_total", name),
		pendingDepth:     reg.Gauge("algorand_pending_depth", name),
		inclusionLatency: reg.Histogram("algorand_inclusion_latency_seconds", InclusionLatencyBuckets, name),
		inclusionSketch:  reg.Sketch("algorand_inclusion_latency", name),
		faultDelay:       reg.Sketch("faults_injected_delay_seconds", name),
		prof:             prof,
		log:              log,
	}
	reg.Help("algorand_rounds_certified_total", "Consensus rounds certified.")
	reg.Help("algorand_groups_submitted_total", "Transaction groups accepted into the pending pool.")
	reg.Help("algorand_groups_included_total", "Transaction groups included in a certified round.")
	reg.Help("algorand_groups_rejected_total", "Included groups whose execution was rejected and rolled back.")
	reg.Help("algorand_cert_votes_total", "Sortition committee votes collected across certificates.")
	reg.Help("algorand_fees_microalgo_total", "Fees charged, in microAlgos.")
	reg.Help("algorand_pending_depth", "Transaction groups currently awaiting a round.")
	reg.Help("algorand_inclusion_latency_seconds", "Simulated submit-to-certification latency.")
	reg.Help("algorand_inclusion_latency", "Quantile sketch of simulated submit-to-certification latency.")
	reg.Help("faults_injected_delay_seconds", "Quantile sketch of injected tx_delay propagation stalls.")
}
