package algorand

import (
	"fmt"
	"math/rand"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

// Regression: crediting zero used to materialize a balance entry for an
// absent account — a phantom that entered the digest.
func TestCreditZeroNoPhantom(t *testing.T) {
	ghost := chain.AddressFromBytes([]byte("ghost"))
	l, ref := newLedger(), newLedger()
	l.credit(ghost, 0)
	if l.root() != ref.root() {
		t.Fatal("zero credit of an absent account must not change the root")
	}
	l.credit(ghost, 7)
	if l.root() == ref.root() {
		t.Fatal("non-zero credit must enter the root")
	}
	if l.Balance(ghost) != 7 {
		t.Fatal("credit lost")
	}
	// setBalance is the explicit-entry path: a forced zero write (e.g. an
	// account drained by Pay) keeps the account resident.
	drained := chain.AddressFromBytes([]byte("drained"))
	l.setBalance(drained, 0)
	if l.root() == ref.root() {
		t.Fatal("explicit zero balance must stay in the root")
	}
}

func TestSnapshotRestorePrunesCaches(t *testing.T) {
	l := newLedger()
	alice := chain.AddressFromBytes([]byte("alice"))
	l.setBalance(alice, 100)

	snap := l.snapshot()
	rootBefore := l.root()

	prog, err := avm.Parse("int 1")
	if err != nil {
		t.Fatal(err)
	}
	id := l.createApp(alice, "int 1", prog, 1)
	l.GlobalPut(id, "k", avm.Uint64Value(9))
	a := l.assetCreate(alice, "GREEN", "GRN", 1000, 2, 1)
	l.setBalance(alice, 40)

	l.restore(snap)
	if l.root() != rootBefore {
		t.Fatal("restore must return to the snapshot root")
	}
	if l.Balance(alice) != 100 {
		t.Fatal("balance not restored")
	}
	if l.appExists(id) || l.app(id) != nil {
		t.Fatal("rolled-back app still visible")
	}
	if _, cached := l.progs[id]; cached {
		t.Fatal("program cache kept a rolled-back app")
	}
	if l.assetExists(a.ID) {
		t.Fatal("rolled-back asset still visible")
	}
	if _, cached := l.assets[a.ID]; cached {
		t.Fatal("asset cache kept a rolled-back asset")
	}
	if l.appSeq != snap.appSeq || l.assetSeq != snap.assetSeq {
		t.Fatal("sequence counters not restored")
	}
}

// TestLedgerDifferentialOverlay drives one randomized op sequence through
// the canonical ledger directly and through fork/adopt overlays (committed
// in batches), and demands identical roots after every batch — the
// serial-vs-sharded state equivalence in miniature.
func TestLedgerDifferentialOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	direct, overlaid := newLedger(), newLedger()
	addrs := make([]chain.Address, 6)
	for i := range addrs {
		addrs[i] = chain.AddressFromBytes([]byte{byte(i + 1)})
		direct.setBalance(addrs[i], 1_000_000)
		overlaid.setBalance(addrs[i], 1_000_000)
	}
	prog, err := avm.Parse("int 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []*ledger{direct, overlaid} {
		l.createApp(addrs[0], "int 1", prog, 0)
		l.assetCreate(addrs[0], "GREEN", "GRN", 10_000, 0, 0)
		for _, a := range addrs[1:] {
			l.assetOptIn(a, 1)
		}
	}

	for batch := 0; batch < 20; batch++ {
		ov := overlaid.fork()
		for step := 0; step < 50; step++ {
			a := addrs[rng.Intn(len(addrs))]
			b := addrs[rng.Intn(len(addrs))]
			key := fmt.Sprintf("k%d", rng.Intn(4))
			amt := uint64(rng.Intn(500))
			ops := []func(v ledgerView){
				func(v ledgerView) {
					if v.Balance(a) >= amt {
						if err := v.Pay(a, b, amt); err != nil {
							t.Fatal(err)
						}
					}
				},
				func(v ledgerView) { v.GlobalPut(1, key, avm.Uint64Value(amt)) },
				func(v ledgerView) { v.GlobalDel(1, key) },
				func(v ledgerView) { v.LocalPut(1, a, key, avm.Uint64Value(amt)) },
				func(v ledgerView) { v.LocalDel(1, a, key) },
			}
			op := rng.Intn(len(ops))
			// Same op through the overlay and against the canonical
			// ledger directly; balances match by induction, so both take
			// the same branch inside op 0.
			ops[op](ov)
			ops[op](direct)
		}
		overlaid.adopt(ov)
		if direct.root() != overlaid.root() {
			t.Fatalf("batch %d: overlay-adopted root diverges from direct root", batch)
		}
	}
	// Reads agree too.
	for _, a := range addrs {
		if direct.Balance(a) != overlaid.Balance(a) {
			t.Fatal("balances diverge")
		}
		if direct.OptedIn(1, a) != overlaid.OptedIn(1, a) {
			t.Fatal("opt-ins diverge")
		}
	}
}
