package algorand

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/mstate"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

// Sharded round application. Groups touching disjoint state — determined by
// conflict keys over senders, payment receivers and called applications —
// execute concurrently on copy-on-write ledger overlays; the per-group
// atomic rollback the serial path gets from whole-ledger snapshots is
// provided by forking a second overlay per group, which is also far
// cheaper than snapshotting the world. Rounds containing application or
// asset creation (which advance chain-global sequence counters) fall back
// to the serial path wholesale, so creation order is always canonical.

// ConflictKeys names the state an atomic group may touch. Application calls
// carry the app's key and its escrow account (inner payments debit it);
// beneficiary wallets named only in call arguments are paid from the
// escrow, which is already in the component, so they need no key of their
// own — the bit-identity tests verify the assumption on the PoL workloads.
func (g Group) ConflictKeys() []chain.ConflictKey {
	keys := make([]chain.ConflictKey, 0, 2*len(g))
	for _, tx := range g {
		keys = append(keys, chain.AccountKey(tx.Sender))
		switch tx.Type {
		case TxPay:
			keys = append(keys, chain.AccountKey(tx.Receiver))
		case TxAppCall:
			keys = append(keys,
				chain.AppKey(tx.AppID),
				chain.AccountKey(appEscrowAddress(tx.AppID)))
		case TxAppCreate, TxAssetCreate:
			keys = append(keys, chain.GlobalKey())
		case TxAssetOptIn:
			keys = append(keys, chain.AssetKey(tx.AssetID))
		case TxAssetTransfer:
			keys = append(keys,
				chain.AssetKey(tx.AssetID),
				chain.AccountKey(tx.Receiver))
		}
	}
	return keys
}

// shardable reports whether a group may run on the concurrent path:
// payments and application calls only. Creation and asset traffic advances
// global sequences, so any such group serializes the whole round.
func (g Group) shardable() bool {
	for _, tx := range g {
		if tx.Type != TxPay && tx.Type != TxAppCall {
			return false
		}
	}
	return true
}

// ledgerView is the surface group execution needs from its backing state:
// the AVM's Ledger plus app lookup, raw balance writes, and overlay
// forking. Both the canonical ledger and overlays implement it, so
// overlays stack — a shard overlay over the ledger, a per-group rollback
// overlay over the shard's.
type ledgerView interface {
	avm.Ledger
	app(id uint64) *App
	setBalance(addr chain.Address, v uint64)
	fork() *ledgerOverlay
	adopt(*ledgerOverlay)
}

var (
	_ ledgerView = (*ledger)(nil)
	_ ledgerView = (*ledgerOverlay)(nil)
)

// ledgerOverlay is a copy-on-write view over the ledger or another
// overlay: an mstate.Overlay absorbs reads and writes against a private
// trie fork, and every ledger semantic — value encodings, opt-in
// markers, pay errors — comes from the shared ledgerKV accessor layer,
// so the overlay cannot drift from the serial path.
type ledgerOverlay struct {
	ledgerKV
	ov *mstate.Overlay
}

// fork opens a copy-on-write overlay over the canonical ledger.
func (l *ledger) fork() *ledgerOverlay {
	ov := mstate.NewOverlay(l.t)
	return &ledgerOverlay{ledgerKV{kv: ov, led: l}, ov}
}

// adopt replays an overlay's journal onto the canonical trie. Overlays
// from different shards hold disjoint key sets, so commit order across
// shards does not matter; within an overlay every key holds its final
// value, so replay order does not matter either.
func (l *ledger) adopt(child *ledgerOverlay) { child.ov.CommitTo(l.t) }

// fork opens a nested overlay (per-group atomic rollback inside a shard).
func (o *ledgerOverlay) fork() *ledgerOverlay {
	ov := o.ov.Fork()
	return &ledgerOverlay{ledgerKV{kv: ov, led: o.led}, ov}
}

// adopt folds a nested overlay's writes into this one.
func (o *ledgerOverlay) adopt(child *ledgerOverlay) { o.ov.Adopt(child.ov) }

// groupEffects carries a group's deferred globals out of the sharded
// executor: the fee-sink credit and the fee-counter increment touch state
// shared by every shard, so Step applies them at merge time in canonical
// order.
type groupEffects struct {
	// feeSink is the µAlgo credit owed to the fee sink (the fees actually
	// collected — on a revert, only from senders who could still pay).
	feeSink uint64
	// fees is the group's total fee for the obs counter; zero when the
	// initial fee debit failed and nothing was charged.
	fees uint64
}

// executeGroupSharded applies one atomic group on top of parent — a shard's
// overlay — mirroring executeGroup exactly for the shardable transaction
// types. Atomic rollback is a forked overlay that is simply discarded on
// failure; fees are then re-charged from a fresh fork, as the serial
// path does after restoring its snapshot.
func (c *Chain) executeGroupSharded(parent ledgerView, g Group, blk *Block) (*chain.Receipt, groupEffects) {
	rcpt := &chain.Receipt{
		TxHash:      g.Hash(),
		BlockNumber: blk.Round,
		Included:    blk.Time,
	}
	var eff groupEffects

	totalFee := uint64(0)
	for _, tx := range g {
		totalFee += tx.Fee
	}

	o := parent.fork()

	// Fees first; insufficient fee balance fails the group outright.
	for _, tx := range g {
		bal := o.Balance(tx.Sender)
		if bal < tx.Fee {
			rcpt.Reverted = true
			rcpt.RevertMsg = "insufficient balance for fee"
			rcpt.Fee = chain.NewAmount(microToBig(0), c.cfg.Unit)
			return rcpt, eff
		}
		o.setBalance(tx.Sender, bal-tx.Fee)
	}
	eff.fees = totalFee

	// The group's payment (if any) feeds `gtxn 0 Amount`.
	payAmount := uint64(0)

	var prof obs.Profiler
	if c.obs != nil {
		prof = c.obs.prof
	}

	err := func() error {
		for _, tx := range g {
			switch tx.Type {
			case TxPay:
				if err := o.Pay(tx.Sender, tx.Receiver, tx.Amount); err != nil {
					return err
				}
				payAmount = tx.Amount
			case TxAppCall:
				app := o.app(tx.AppID)
				if app == nil {
					return fmt.Errorf("algorand: no application %d", tx.AppID)
				}
				res := avm.Execute(app.Program, o, avm.TxContext{
					Sender: tx.Sender, AppID: tx.AppID,
					Args: tx.Args, OnCompletion: tx.OnCompletion,
					PayAmount: payAmount, Fee: tx.Fee,
					BudgetTxns: len(g), Profiler: prof,
				})
				rcpt.GasUsed += res.Cost
				rcpt.Logs = append(rcpt.Logs, res.Logs...)
				if !res.Approved {
					return fmt.Errorf("algorand: call rejected: %w", errOf(res))
				}
				if res.Return != nil {
					rcpt.ReturnValue = res.Return
				}
			default:
				// applyRound never routes other types here.
				return fmt.Errorf("algorand: tx type %d not shardable", tx.Type)
			}
		}
		return nil
	}()

	if err != nil {
		// Discard the group's overlay — everything except the fees rolls
		// back — then re-charge fees where the pre-group balance allows.
		fees := make(map[chain.Address]uint64)
		for _, tx := range g {
			fees[tx.Sender] += tx.Fee
		}
		o = parent.fork()
		for addr, fee := range fees {
			if bal := o.Balance(addr); bal >= fee {
				o.setBalance(addr, bal-fee)
				eff.feeSink += fee
			}
		}
		rcpt.Reverted = true
		rcpt.RevertMsg = err.Error()
	} else {
		eff.feeSink = totalFee
	}
	parent.adopt(o)
	rcpt.Fee = chain.NewAmount(microToBig(totalFee), c.cfg.Unit)
	return rcpt, eff
}

// SetShards configures how many execution shards Step may fan out to; n <= 1
// keeps the serial path. The setting changes scheduling only — round
// contents are identical at every value.
func (c *Chain) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	c.shards = n
	c.shardStats = chain.NewShardStats(n)
}

// Shards returns the configured shard count.
func (c *Chain) Shards() int {
	if c.shards < 1 {
		return 1
	}
	return c.shards
}

// ShardStats returns a copy of the per-shard execution tallies accumulated
// since SetShards, or nil when sharding was never configured.
func (c *Chain) ShardStats() *chain.ShardStats {
	if c.shardStats == nil {
		return nil
	}
	cp := chain.NewShardStats(len(c.shardStats.Txs))
	copy(cp.Txs, c.shardStats.Txs)
	copy(cp.Gas, c.shardStats.Gas)
	cp.ParallelBatches = c.shardStats.ParallelBatches
	return cp
}

// applyRound executes one round's propagated groups and returns their
// receipts plus deferred effects. Rounds of payments and app calls fan out
// across conflict components when sharding is configured; anything else
// runs the serial executeGroup path, which applies its effects inline
// (their effects entries stay zero).
func (c *Chain) applyRound(sel []*pendingGroup, blk *Block) ([]*chain.Receipt, []groupEffects) {
	receipts := make([]*chain.Receipt, len(sel))
	effects := make([]groupEffects, len(sel))
	if len(sel) == 0 {
		return receipts, effects
	}
	serial := func() {
		var gas uint64
		for i, p := range sel {
			receipts[i] = c.executeGroup(p.group, blk)
			gas += receipts[i].GasUsed
		}
		c.shardStats.Record(0, uint64(len(sel)), gas)
	}
	if c.shards <= 1 || len(sel) < 2 {
		serial()
		return receipts, effects
	}
	for _, p := range sel {
		if !p.group.shardable() {
			serial()
			return receipts, effects
		}
	}
	comps := chain.Partition(len(sel), func(i int) []chain.ConflictKey {
		return sel[i].group.ConflictKeys()
	})
	if len(comps) < 2 {
		serial()
		return receipts, effects
	}
	nshards := c.shards
	if nshards > len(comps) {
		nshards = len(comps)
	}
	bins := chain.Assign(comps, nshards, func(i int) uint64 {
		return uint64(len(sel[i].group))
	})
	overlays := make([]*ledgerOverlay, nshards)
	shardTxs := make([]uint64, nshards)
	shardGas := make([]uint64, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		overlays[si] = c.led.fork()
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for _, comp := range bins[si] {
				for _, i := range comp {
					receipts[i], effects[i] = c.executeGroupSharded(overlays[si], sel[i].group, blk)
					shardTxs[si]++
					shardGas[si] += receipts[i].GasUsed
				}
			}
		}(si)
	}
	wg.Wait()
	for si, o := range overlays {
		c.led.adopt(o)
		c.shardStats.Record(si, shardTxs[si], shardGas[si])
	}
	if c.shardStats != nil {
		c.shardStats.ParallelBatches++
	}
	return receipts, effects
}

// SubmitBatch validates and queues a batch of signed groups in one call.
// Signature verification runs concurrently when sharding is configured;
// admission (fee floor, fault draws, pending append) stays serial in slice
// order, so the pending pool and fault streams are identical to len(gs)
// Submit calls. Result slot i is the hash or error for gs[i].
func (c *Chain) SubmitBatch(gs []Group) ([]chain.Hash32, []error) {
	hashes := make([]chain.Hash32, len(gs))
	errs := make([]error, len(gs))
	verr := make([]error, len(gs))
	verify := func(i int) error {
		for _, tx := range gs[i] {
			if err := tx.Verify(); err != nil {
				return err
			}
		}
		return nil
	}
	workers := c.Shards()
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(gs) {
		workers = len(gs)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(gs) {
						return
					}
					verr[i] = verify(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range gs {
			verr[i] = verify(i)
		}
	}
	for i, g := range gs {
		if verr[i] != nil {
			errs[i] = verr[i]
			continue
		}
		hashes[i], errs[i] = c.submitVerified(g)
	}
	return hashes, errs
}

// PendingCount reports the pending-pool depth.
func (c *Chain) PendingCount() int { return len(c.pending) }

// Digest hashes the chain's externally observable end state — head block,
// sequence counters, the ledger's Merkle root and the rolling receipt
// accumulator — into one value. The determinism gates compare digests
// across shard counts and GOMAXPROCS settings: equal digests mean
// bit-identical rounds and state. The whole ledger (balances, app
// key/value state, assets, holdings) enters through the state root, and
// receipts fold into the accumulator at inclusion time in canonical round
// order, so Digest is O(1) instead of a full-world sort-and-hash — which
// also makes it independent of how much pruned history (SetRetention) is
// still held. Algorand amounts are uint64, so no sign encoding is needed
// here (contrast eth's encodeBalance).
func (c *Chain) Digest() chain.Hash32 {
	var buf []byte
	put := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], v)
		buf = append(buf, n[:]...)
	}
	head := c.Head()
	put(head.Hash[:])
	putU64(head.Round)
	putU64(c.led.appSeq)
	putU64(c.led.assetSeq)
	root := c.led.root()
	put(root[:])
	put(c.rcptAcc[:])
	putU64(c.rcptCount)
	return chain.Hash32(polcrypto.Hash(buf))
}

// foldReceipt absorbs one included receipt into the rolling digest
// accumulator. Called from Step's canonical merge loop, so the fold order
// is round order — identical at every shard count. Fees are µAlgo uint64
// amounts and cannot be negative, so the raw magnitude encoding is
// unambiguous.
func (c *Chain) foldReceipt(h chain.Hash32, r *chain.Receipt) {
	var buf []byte
	put := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], v)
		buf = append(buf, n[:]...)
	}
	put(c.rcptAcc[:])
	put(h[:])
	putU64(r.BlockNumber)
	putU64(r.GasUsed)
	putU64(uint64(r.Submitted))
	putU64(uint64(r.Included))
	if r.Reverted {
		putU64(1)
	} else {
		putU64(0)
	}
	put([]byte(r.RevertMsg))
	put(r.ReturnValue)
	if r.Fee.Base != nil {
		put(r.Fee.Base.Bytes())
	}
	c.rcptAcc = chain.Hash32(polcrypto.Hash(buf))
	c.rcptCount++
}
