package algorand

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

// Sharded round application. Groups touching disjoint state — determined by
// conflict keys over senders, payment receivers and called applications —
// execute concurrently on copy-on-write ledger overlays; the per-group
// atomic rollback the serial path gets from whole-ledger snapshots is
// provided by stacking a second overlay per group, which is also far
// cheaper than snapshotting the world. Rounds containing application or
// asset creation (which advance chain-global sequence counters) fall back
// to the serial path wholesale, so creation order is always canonical.

// ConflictKeys names the state an atomic group may touch. Application calls
// carry the app's key and its escrow account (inner payments debit it);
// beneficiary wallets named only in call arguments are paid from the
// escrow, which is already in the component, so they need no key of their
// own — the bit-identity tests verify the assumption on the PoL workloads.
func (g Group) ConflictKeys() []chain.ConflictKey {
	keys := make([]chain.ConflictKey, 0, 2*len(g))
	for _, tx := range g {
		keys = append(keys, chain.AccountKey(tx.Sender))
		switch tx.Type {
		case TxPay:
			keys = append(keys, chain.AccountKey(tx.Receiver))
		case TxAppCall:
			keys = append(keys,
				chain.AppKey(tx.AppID),
				chain.AccountKey(appEscrowAddress(tx.AppID)))
		case TxAppCreate, TxAssetCreate:
			keys = append(keys, chain.GlobalKey())
		case TxAssetOptIn:
			keys = append(keys, chain.AssetKey(tx.AssetID))
		case TxAssetTransfer:
			keys = append(keys,
				chain.AssetKey(tx.AssetID),
				chain.AccountKey(tx.Receiver))
		}
	}
	return keys
}

// shardable reports whether a group may run on the concurrent path:
// payments and application calls only. Creation and asset traffic advances
// global sequences, so any such group serializes the whole round.
func (g Group) shardable() bool {
	for _, tx := range g {
		if tx.Type != TxPay && tx.Type != TxAppCall {
			return false
		}
	}
	return true
}

// ledgerView is the surface group execution needs from its backing state:
// the AVM's Ledger plus app lookup and the raw writes commit uses. Both the
// canonical ledger and overlays implement it, so overlays stack — a shard
// overlay over the ledger, a per-group rollback overlay over the shard's.
type ledgerView interface {
	avm.Ledger
	app(id uint64) *App
	setBalance(addr chain.Address, v uint64)
	putApp(a *App)
}

var (
	_ ledgerView = (*ledger)(nil)
	_ ledgerView = (*ledgerOverlay)(nil)
)

// ledgerOverlay is a copy-on-write view over a ledgerView: reads fall
// through, balance writes stay local, and application mutations clone the
// app (deep-copying its key/value state) on first write.
type ledgerOverlay struct {
	base     ledgerView
	balances map[chain.Address]uint64
	apps     map[uint64]*App
}

func newLedgerOverlay(base ledgerView) *ledgerOverlay {
	return &ledgerOverlay{
		base:     base,
		balances: make(map[chain.Address]uint64),
		apps:     make(map[uint64]*App),
	}
}

func (o *ledgerOverlay) app(id uint64) *App {
	if a, ok := o.apps[id]; ok {
		if a.Deleted {
			return nil
		}
		return a
	}
	return o.base.app(id)
}

// appForWrite returns the overlay's clone of an app, cloning it from the
// base on first write.
func (o *ledgerOverlay) appForWrite(id uint64) *App {
	if a, ok := o.apps[id]; ok {
		if a.Deleted {
			return nil
		}
		return a
	}
	a := o.base.app(id)
	if a == nil {
		return nil
	}
	cp := cloneApp(a)
	o.apps[id] = cp
	return cp
}

func cloneApp(a *App) *App {
	cp := &App{
		ID: a.ID, Creator: a.Creator, Program: a.Program, Source: a.Source,
		Deleted: a.Deleted, CreateAt: a.CreateAt,
		Globals: make(map[string]avm.Value, len(a.Globals)),
	}
	for k, v := range a.Globals {
		cp.Globals[k] = v
	}
	if a.Locals != nil {
		cp.Locals = make(map[chain.Address]map[string]avm.Value, len(a.Locals))
		for addr, m := range a.Locals {
			mm := make(map[string]avm.Value, len(m))
			for k, v := range m {
				mm[k] = v
			}
			cp.Locals[addr] = mm
		}
	}
	return cp
}

// GlobalGet implements avm.Ledger.
func (o *ledgerOverlay) GlobalGet(appID uint64, key string) (avm.Value, bool) {
	a := o.app(appID)
	if a == nil {
		return avm.Value{}, false
	}
	v, ok := a.Globals[key]
	return v, ok
}

// GlobalPut implements avm.Ledger.
func (o *ledgerOverlay) GlobalPut(appID uint64, key string, v avm.Value) {
	if a := o.appForWrite(appID); a != nil {
		a.Globals[key] = v
	}
}

// GlobalDel implements avm.Ledger.
func (o *ledgerOverlay) GlobalDel(appID uint64, key string) {
	if a := o.appForWrite(appID); a != nil {
		delete(a.Globals, key)
	}
}

// LocalGet implements avm.Ledger.
func (o *ledgerOverlay) LocalGet(appID uint64, addr chain.Address, key string) (avm.Value, bool) {
	a := o.app(appID)
	if a == nil {
		return avm.Value{}, false
	}
	v, ok := a.Locals[addr][key]
	return v, ok
}

// LocalPut implements avm.Ledger.
func (o *ledgerOverlay) LocalPut(appID uint64, addr chain.Address, key string, v avm.Value) {
	a := o.appForWrite(appID)
	if a == nil {
		return
	}
	if a.Locals == nil {
		a.Locals = make(map[chain.Address]map[string]avm.Value)
	}
	m, ok := a.Locals[addr]
	if !ok {
		m = make(map[string]avm.Value)
		a.Locals[addr] = m
	}
	m[key] = v
}

// LocalDel implements avm.Ledger.
func (o *ledgerOverlay) LocalDel(appID uint64, addr chain.Address, key string) {
	if a := o.appForWrite(appID); a != nil {
		delete(a.Locals[addr], key)
	}
}

// OptedIn implements avm.Ledger.
func (o *ledgerOverlay) OptedIn(appID uint64, addr chain.Address) bool {
	a := o.app(appID)
	if a == nil {
		return false
	}
	_, ok := a.Locals[addr]
	return ok
}

// Balance implements avm.Ledger.
func (o *ledgerOverlay) Balance(addr chain.Address) uint64 {
	if v, ok := o.balances[addr]; ok {
		return v
	}
	return o.base.Balance(addr)
}

// Pay implements avm.Ledger. The error text matches ledger.Pay so revert
// messages are identical across the serial and sharded paths.
func (o *ledgerOverlay) Pay(from, to chain.Address, amount uint64) error {
	if o.Balance(from) < amount {
		return fmt.Errorf("%w: %s has %d µALGO, needs %d",
			avm.ErrInsufficientBalance, from, o.Balance(from), amount)
	}
	o.setBalance(from, o.Balance(from)-amount)
	o.setBalance(to, o.Balance(to)+amount)
	return nil
}

// AppAddress implements avm.Ledger.
func (o *ledgerOverlay) AppAddress(appID uint64) chain.Address { return appEscrowAddress(appID) }

// Round implements avm.Ledger.
func (o *ledgerOverlay) Round() uint64 { return o.base.Round() }

// LatestTimestamp implements avm.Ledger.
func (o *ledgerOverlay) LatestTimestamp() uint64 { return o.base.LatestTimestamp() }

func (o *ledgerOverlay) setBalance(addr chain.Address, v uint64) { o.balances[addr] = v }

func (o *ledgerOverlay) putApp(a *App) { o.apps[a.ID] = a }

// commit folds the overlay into its base. Overlays from different shards
// write disjoint keys, so commit order does not matter; within an overlay
// every key holds its final value, so map iteration order does not either.
func (o *ledgerOverlay) commit() {
	for addr, v := range o.balances {
		o.base.setBalance(addr, v)
	}
	for _, a := range o.apps {
		o.base.putApp(a)
	}
}

// groupEffects carries a group's deferred globals out of the sharded
// executor: the fee-sink credit and the fee-counter increment touch state
// shared by every shard, so Step applies them at merge time in canonical
// order.
type groupEffects struct {
	// feeSink is the µAlgo credit owed to the fee sink (the fees actually
	// collected — on a revert, only from senders who could still pay).
	feeSink uint64
	// fees is the group's total fee for the obs counter; zero when the
	// initial fee debit failed and nothing was charged.
	fees uint64
}

// executeGroupSharded applies one atomic group on top of parent — a shard's
// overlay — mirroring executeGroup exactly for the shardable transaction
// types. Atomic rollback is a nested overlay that is simply discarded on
// failure; fees are then re-charged from a fresh overlay, as the serial
// path does after restoring its snapshot.
func (c *Chain) executeGroupSharded(parent ledgerView, g Group, blk *Block) (*chain.Receipt, groupEffects) {
	rcpt := &chain.Receipt{
		TxHash:      g.Hash(),
		BlockNumber: blk.Round,
		Included:    blk.Time,
	}
	var eff groupEffects

	totalFee := uint64(0)
	for _, tx := range g {
		totalFee += tx.Fee
	}

	o := newLedgerOverlay(parent)

	// Fees first; insufficient fee balance fails the group outright.
	for _, tx := range g {
		bal := o.Balance(tx.Sender)
		if bal < tx.Fee {
			rcpt.Reverted = true
			rcpt.RevertMsg = "insufficient balance for fee"
			rcpt.Fee = chain.NewAmount(microToBig(0), c.cfg.Unit)
			return rcpt, eff
		}
		o.setBalance(tx.Sender, bal-tx.Fee)
	}
	eff.fees = totalFee

	// The group's payment (if any) feeds `gtxn 0 Amount`.
	payAmount := uint64(0)

	var prof obs.Profiler
	if c.obs != nil {
		prof = c.obs.prof
	}

	err := func() error {
		for _, tx := range g {
			switch tx.Type {
			case TxPay:
				if err := o.Pay(tx.Sender, tx.Receiver, tx.Amount); err != nil {
					return err
				}
				payAmount = tx.Amount
			case TxAppCall:
				app := o.app(tx.AppID)
				if app == nil {
					return fmt.Errorf("algorand: no application %d", tx.AppID)
				}
				res := avm.Execute(app.Program, o, avm.TxContext{
					Sender: tx.Sender, AppID: tx.AppID,
					Args: tx.Args, OnCompletion: tx.OnCompletion,
					PayAmount: payAmount, Fee: tx.Fee,
					BudgetTxns: len(g), Profiler: prof,
				})
				rcpt.GasUsed += res.Cost
				rcpt.Logs = append(rcpt.Logs, res.Logs...)
				if !res.Approved {
					return fmt.Errorf("algorand: call rejected: %w", errOf(res))
				}
				if res.Return != nil {
					rcpt.ReturnValue = res.Return
				}
			default:
				// applyRound never routes other types here.
				return fmt.Errorf("algorand: tx type %d not shardable", tx.Type)
			}
		}
		return nil
	}()

	if err != nil {
		// Discard the group's overlay — everything except the fees rolls
		// back — then re-charge fees where the pre-group balance allows.
		fees := make(map[chain.Address]uint64)
		for _, tx := range g {
			fees[tx.Sender] += tx.Fee
		}
		o = newLedgerOverlay(parent)
		for addr, fee := range fees {
			if bal := o.Balance(addr); bal >= fee {
				o.setBalance(addr, bal-fee)
				eff.feeSink += fee
			}
		}
		rcpt.Reverted = true
		rcpt.RevertMsg = err.Error()
	} else {
		eff.feeSink = totalFee
	}
	o.commit()
	rcpt.Fee = chain.NewAmount(microToBig(totalFee), c.cfg.Unit)
	return rcpt, eff
}

// SetShards configures how many execution shards Step may fan out to; n <= 1
// keeps the serial path. The setting changes scheduling only — round
// contents are identical at every value.
func (c *Chain) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	c.shards = n
	c.shardStats = chain.NewShardStats(n)
}

// Shards returns the configured shard count.
func (c *Chain) Shards() int {
	if c.shards < 1 {
		return 1
	}
	return c.shards
}

// ShardStats returns a copy of the per-shard execution tallies accumulated
// since SetShards, or nil when sharding was never configured.
func (c *Chain) ShardStats() *chain.ShardStats {
	if c.shardStats == nil {
		return nil
	}
	cp := chain.NewShardStats(len(c.shardStats.Txs))
	copy(cp.Txs, c.shardStats.Txs)
	copy(cp.Gas, c.shardStats.Gas)
	cp.ParallelBatches = c.shardStats.ParallelBatches
	return cp
}

// applyRound executes one round's propagated groups and returns their
// receipts plus deferred effects. Rounds of payments and app calls fan out
// across conflict components when sharding is configured; anything else
// runs the serial executeGroup path, which applies its effects inline
// (their effects entries stay zero).
func (c *Chain) applyRound(sel []*pendingGroup, blk *Block) ([]*chain.Receipt, []groupEffects) {
	receipts := make([]*chain.Receipt, len(sel))
	effects := make([]groupEffects, len(sel))
	if len(sel) == 0 {
		return receipts, effects
	}
	serial := func() {
		var gas uint64
		for i, p := range sel {
			receipts[i] = c.executeGroup(p.group, blk)
			gas += receipts[i].GasUsed
		}
		c.shardStats.Record(0, uint64(len(sel)), gas)
	}
	if c.shards <= 1 || len(sel) < 2 {
		serial()
		return receipts, effects
	}
	for _, p := range sel {
		if !p.group.shardable() {
			serial()
			return receipts, effects
		}
	}
	comps := chain.Partition(len(sel), func(i int) []chain.ConflictKey {
		return sel[i].group.ConflictKeys()
	})
	if len(comps) < 2 {
		serial()
		return receipts, effects
	}
	nshards := c.shards
	if nshards > len(comps) {
		nshards = len(comps)
	}
	bins := chain.Assign(comps, nshards, func(i int) uint64 {
		return uint64(len(sel[i].group))
	})
	overlays := make([]*ledgerOverlay, nshards)
	shardTxs := make([]uint64, nshards)
	shardGas := make([]uint64, nshards)
	var wg sync.WaitGroup
	for si := 0; si < nshards; si++ {
		overlays[si] = newLedgerOverlay(c.led)
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			for _, comp := range bins[si] {
				for _, i := range comp {
					receipts[i], effects[i] = c.executeGroupSharded(overlays[si], sel[i].group, blk)
					shardTxs[si]++
					shardGas[si] += receipts[i].GasUsed
				}
			}
		}(si)
	}
	wg.Wait()
	for si, o := range overlays {
		o.commit()
		c.shardStats.Record(si, shardTxs[si], shardGas[si])
	}
	if c.shardStats != nil {
		c.shardStats.ParallelBatches++
	}
	return receipts, effects
}

// SubmitBatch validates and queues a batch of signed groups in one call.
// Signature verification runs concurrently when sharding is configured;
// admission (fee floor, fault draws, pending append) stays serial in slice
// order, so the pending pool and fault streams are identical to len(gs)
// Submit calls. Result slot i is the hash or error for gs[i].
func (c *Chain) SubmitBatch(gs []Group) ([]chain.Hash32, []error) {
	hashes := make([]chain.Hash32, len(gs))
	errs := make([]error, len(gs))
	verr := make([]error, len(gs))
	verify := func(i int) error {
		for _, tx := range gs[i] {
			if err := tx.Verify(); err != nil {
				return err
			}
		}
		return nil
	}
	workers := c.Shards()
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(gs) {
		workers = len(gs)
	}
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(gs) {
						return
					}
					verr[i] = verify(i)
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range gs {
			verr[i] = verify(i)
		}
	}
	for i, g := range gs {
		if verr[i] != nil {
			errs[i] = verr[i]
			continue
		}
		hashes[i], errs[i] = c.submitVerified(g)
	}
	return hashes, errs
}

// PendingCount reports the pending-pool depth.
func (c *Chain) PendingCount() int { return len(c.pending) }

// Digest hashes the chain's externally observable end state — head block,
// full ledger (balances, applications, assets) and every receipt — into one
// value. The determinism gates compare digests across shard counts and
// GOMAXPROCS settings: equal digests mean bit-identical rounds and state.
func (c *Chain) Digest() chain.Hash32 {
	var buf []byte
	put := func(b []byte) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], uint64(len(b)))
		buf = append(buf, n[:]...)
		buf = append(buf, b...)
	}
	putU64 := func(v uint64) {
		var n [8]byte
		binary.BigEndian.PutUint64(n[:], v)
		buf = append(buf, n[:]...)
	}
	putValue := func(v avm.Value) {
		if v.IsBytes {
			putU64(1)
			put(v.Bytes)
		} else {
			putU64(0)
			putU64(v.Uint)
		}
	}
	head := c.Head()
	put(head.Hash[:])
	putU64(head.Round)
	putU64(c.led.appSeq)
	putU64(c.led.asa.assetSeq)

	addrs := sortedAddrs(c.led.balances)
	for _, a := range addrs {
		put(a[:])
		putU64(c.led.balances[a])
	}

	appIDs := make([]uint64, 0, len(c.led.apps))
	for id := range c.led.apps {
		appIDs = append(appIDs, id)
	}
	sort.Slice(appIDs, func(i, j int) bool { return appIDs[i] < appIDs[j] })
	for _, id := range appIDs {
		a := c.led.apps[id]
		putU64(a.ID)
		put(a.Creator[:])
		put([]byte(a.Source))
		putU64(a.CreateAt)
		if a.Deleted {
			putU64(1)
		} else {
			putU64(0)
		}
		keys := make([]string, 0, len(a.Globals))
		for k := range a.Globals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			put([]byte(k))
			putValue(a.Globals[k])
		}
		laddrs := make([]chain.Address, 0, len(a.Locals))
		for addr := range a.Locals {
			laddrs = append(laddrs, addr)
		}
		sort.Slice(laddrs, func(i, j int) bool {
			return bytes.Compare(laddrs[i][:], laddrs[j][:]) < 0
		})
		for _, addr := range laddrs {
			put(addr[:])
			lkeys := make([]string, 0, len(a.Locals[addr]))
			for k := range a.Locals[addr] {
				lkeys = append(lkeys, k)
			}
			sort.Strings(lkeys)
			for _, k := range lkeys {
				put([]byte(k))
				putValue(a.Locals[addr][k])
			}
		}
	}

	assetIDs := make([]uint64, 0, len(c.led.asa.assets))
	for id := range c.led.asa.assets {
		assetIDs = append(assetIDs, id)
	}
	sort.Slice(assetIDs, func(i, j int) bool { return assetIDs[i] < assetIDs[j] })
	for _, id := range assetIDs {
		a := c.led.asa.assets[id]
		putU64(a.ID)
		put(a.Creator[:])
		put([]byte(a.Name))
		put([]byte(a.UnitName))
		putU64(a.Total)
		putU64(uint64(a.Decimals))
		putU64(a.CreateAt)
	}
	holders := make([]chain.Address, 0, len(c.led.asa.holdings))
	for addr := range c.led.asa.holdings {
		holders = append(holders, addr)
	}
	sort.Slice(holders, func(i, j int) bool {
		return bytes.Compare(holders[i][:], holders[j][:]) < 0
	})
	for _, addr := range holders {
		put(addr[:])
		ids := make([]uint64, 0, len(c.led.asa.holdings[addr]))
		for id := range c.led.asa.holdings[addr] {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			putU64(id)
			putU64(c.led.asa.holdings[addr][id])
		}
	}

	rhashes := make([]chain.Hash32, 0, len(c.receipts))
	for h := range c.receipts {
		rhashes = append(rhashes, h)
	}
	sort.Slice(rhashes, func(i, j int) bool {
		return bytes.Compare(rhashes[i][:], rhashes[j][:]) < 0
	})
	for _, h := range rhashes {
		r := c.receipts[h]
		put(h[:])
		putU64(r.BlockNumber)
		putU64(r.GasUsed)
		putU64(uint64(r.Submitted))
		putU64(uint64(r.Included))
		if r.Reverted {
			putU64(1)
		} else {
			putU64(0)
		}
		put([]byte(r.RevertMsg))
		put(r.ReturnValue)
		if r.Fee.Base != nil {
			put(r.Fee.Base.Bytes())
		}
	}
	return chain.Hash32(polcrypto.Hash(buf))
}

func sortedAddrs(m map[chain.Address]uint64) []chain.Address {
	out := make([]chain.Address, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i][:], out[j][:]) < 0
	})
	return out
}
