package algorand

import (
	"fmt"
	"testing"

	"agnopol/internal/polcrypto"
)

// TestSortitionSybilResistance: splitting stake across many pseudonymous
// identities does not increase expected committee weight — the property
// PPoS uses to defeat Sybil attacks (§1.4.2: "it is addressed by selecting
// users considering their amount of stake as weight").
func TestSortitionSybilResistance(t *testing.T) {
	const (
		totalStake = 100_000
		expected   = 50.0
		rounds     = 800
	)
	type detRand struct{ state uint64 }
	read := func(r *detRand, p []byte) {
		for i := range p {
			r.state = r.state*6364136223846793005 + 1442695040888963407
			p[i] = byte(r.state >> 56)
		}
	}
	newKP := func(seed uint64) *polcrypto.KeyPair {
		r := &detRand{state: seed}
		kp, err := polcrypto.GenerateKeyPair(readerFunc(func(p []byte) (int, error) {
			read(r, p)
			return len(p), nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		return kp
	}

	// One whale with 10,000 stake vs. the same stake split over 50 sybils.
	whale := newKP(1)
	sybils := make([]*polcrypto.KeyPair, 50)
	for i := range sybils {
		sybils[i] = newKP(uint64(100 + i))
	}

	whaleWeight, sybilWeight := 0.0, 0.0
	for round := 0; round < rounds; round++ {
		seed := []byte(fmt.Sprintf("round-%d", round))
		out, _ := polcrypto.VRFEvaluate(whale, seed)
		whaleWeight += float64(polcrypto.Sortition(out, 10_000, totalStake, expected))
		for _, s := range sybils {
			out, _ := polcrypto.VRFEvaluate(s, seed)
			sybilWeight += float64(polcrypto.Sortition(out, 200, totalStake, expected))
		}
	}
	ratio := sybilWeight / whaleWeight
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("sybil/whale committee weight ratio %.3f; splitting stake should not change expected weight", ratio)
	}
}

type readerFunc func([]byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }
