package algorand

import (
	"strings"
	"testing"
)

func TestASACreateOptInTransfer(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	issuer := c.NewAccount(10_000_000)
	prover := c.NewAccount(10_000_000)

	// The §2.8 scenario: the crowdsensing app mints a GREEN reward token.
	_, assetID, err := cl.CreateAsset(issuer, "Green Reward", "GREEN", 1_000_000, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := c.Asset(assetID)
	if !ok || a.UnitName != "GREEN" || a.Total != 1_000_000 {
		t.Fatalf("asset = %+v", a)
	}
	if got := c.AssetBalance(issuer.Address, assetID); got != 1_000_000 {
		t.Fatalf("issuer supply %d", got)
	}

	// Transfer before opt-in fails; the whole group is atomic, so nothing
	// moves.
	if _, err := cl.TransferAsset(issuer, assetID, prover.Address, 500); err == nil {
		t.Fatal("transfer to non-opted-in account accepted")
	} else if !strings.Contains(err.Error(), ErrNotOptedIn.Error()) {
		t.Fatalf("err = %v", err)
	}

	if _, err := cl.OptInAsset(prover, assetID); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OptInAsset(prover, assetID); err == nil {
		t.Fatal("double opt-in accepted")
	}

	if _, err := cl.TransferAsset(issuer, assetID, prover.Address, 500); err != nil {
		t.Fatal(err)
	}
	if got := c.AssetBalance(prover.Address, assetID); got != 500 {
		t.Fatalf("prover GREEN balance %d", got)
	}
	if got := c.AssetBalance(issuer.Address, assetID); got != 999_500 {
		t.Fatalf("issuer GREEN balance %d", got)
	}

	// Overdraw rejected, state unchanged.
	if _, err := cl.TransferAsset(prover, assetID, issuer.Address, 501); err == nil {
		t.Fatal("overdraw accepted")
	}
	if got := c.AssetBalance(prover.Address, assetID); got != 500 {
		t.Fatalf("prover balance changed by failed transfer: %d", got)
	}
}

func TestASAUnknownAsset(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	acct := c.NewAccount(10_000_000)
	if _, err := cl.OptInAsset(acct, 42); err == nil {
		t.Fatal("opt-in to unknown asset accepted")
	}
	_, err := cl.TransferAsset(acct, 42, acct.Address, 1)
	if err == nil {
		t.Fatal("transfer of unknown asset accepted")
	}
}

func TestASAFeesAreAlgos(t *testing.T) {
	// Asset operations pay the flat µAlgo fee, not asset units.
	c := newTestChain(t)
	cl := NewClient(c)
	issuer := c.NewAccount(10_000_000)
	algoBefore := c.Balance(issuer.Address).Base.Uint64()
	_, assetID, err := cl.CreateAsset(issuer, "T", "T", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := algoBefore - c.Balance(issuer.Address).Base.Uint64(); got != MinFee {
		t.Fatalf("creation charged %d µALGO, want %d", got, MinFee)
	}
	if got := c.AssetBalance(issuer.Address, assetID); got != 100 {
		t.Fatalf("supply %d", got)
	}
}

func TestASARollbackOnGroupFailure(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	issuer := c.NewAccount(10_000_000)
	receiver := c.NewAccount(10_000_000)
	_, assetID, err := cl.CreateAsset(issuer, "T", "T", 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OptInAsset(receiver, assetID); err != nil {
		t.Fatal(err)
	}
	// Group: valid asset transfer + failing payment. Atomicity must
	// revert the asset movement too.
	xfer := &Tx{Type: TxAssetTransfer, Sender: issuer.Address, Fee: MinFee,
		AssetID: assetID, Receiver: receiver.Address, Amount: 10}
	xfer.Sign(issuer)
	badPay := &Tx{Type: TxPay, Sender: issuer.Address, Fee: MinFee,
		Receiver: receiver.Address, Amount: 1 << 62} // more than the balance
	badPay.Sign(issuer)
	rcpt, err := cl.SubmitAndWait(Group{xfer, badPay})
	if err != nil {
		t.Fatal(err)
	}
	if !rcpt.Reverted {
		t.Fatal("group should fail")
	}
	if got := c.AssetBalance(receiver.Address, assetID); got != 0 {
		t.Fatalf("asset transfer survived group failure: %d", got)
	}
	if !strings.Contains(rcpt.RevertMsg, "balance") {
		t.Fatalf("revert message %q", rcpt.RevertMsg)
	}
}
