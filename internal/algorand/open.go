package algorand

import (
	"errors"
	"fmt"
	"time"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/mstate"
)

// Options configures Open. Config and Seed behave exactly as in
// NewChain; Store/Root/Checkpoint select the restart-from-root path.
type Options struct {
	Config Config
	Seed   uint64
	// Store supplies committed trie nodes (e.g. a diskstore.Store). Nil
	// means the purely in-memory path: Open degenerates to NewChain.
	Store mstate.NodeStore
	// Root is the committed ledger root to load from Store. The zero
	// root loads an empty ledger.
	Root mstate.Hash
	// Checkpoint restores the non-state chain position captured by
	// Chain.Checkpoint. Nil opens a fresh chain over the loaded ledger.
	Checkpoint *Checkpoint
}

// PendingGroup is one pending-pool entry inside a Checkpoint.
type PendingGroup struct {
	Group     Group
	Submitted time.Duration
	Delayed   bool
}

// Checkpoint is everything besides the ledger trie a chain needs to
// continue bit-identically after a restart. JSON-serializable so
// callers can park it in a diskstore manifest's meta blob.
type Checkpoint struct {
	Name      string
	HeadRound uint64
	HeadHash  chain.Hash32
	HeadTime  time.Duration
	// HeadSeed feeds the next round's sortition (Step reads prev.Seed).
	HeadSeed  chain.Hash32
	StateRoot chain.Hash32
	AppSeq    uint64
	AssetSeq  uint64
	RcptAcc   chain.Hash32
	RcptCount uint64
	Clock     time.Duration
	// Rng is the chain PRNG's stream position (chain.Rand.State).
	Rng       uint64
	Retention int
	Pending   []PendingGroup
}

// Checkpoint captures the chain's restart point. The ledger trie is not
// included — commit it separately with CommitState — and the snapshot
// borrows the live pending groups, so serialize it before mutating the
// chain further. Chains with a fault injector attached refuse to
// checkpoint: injector stream positions are not captured, so a resumed
// run could not replay identically.
func (c *Chain) Checkpoint() (*Checkpoint, error) {
	if c.flt != nil {
		return nil, errors.New("algorand: cannot checkpoint with fault injection attached")
	}
	head := c.Head()
	ck := &Checkpoint{
		Name:      c.cfg.Name,
		HeadRound: head.Round,
		HeadHash:  head.Hash,
		HeadTime:  head.Time,
		HeadSeed:  head.Seed,
		StateRoot: c.led.root(),
		AppSeq:    c.led.appSeq,
		AssetSeq:  c.led.assetSeq,
		RcptAcc:   c.rcptAcc,
		RcptCount: c.rcptCount,
		Clock:     c.clock.Now(),
		Rng:       c.rng.State(),
		Retention: c.retention,
	}
	for _, p := range c.pending {
		ck.Pending = append(ck.Pending, PendingGroup{Group: p.group, Submitted: p.submitted, Delayed: p.delayed})
	}
	return ck, nil
}

// CommitState writes the ledger's trie nodes into store and returns the
// state root. Pair it with Checkpoint, then make both durable (e.g.
// diskstore.Store.Commit with the serialized checkpoint as meta).
func (c *Chain) CommitState(store mstate.NodeStore) (mstate.Hash, error) {
	return c.led.t.Commit(store)
}

// Open builds a chain per Options. With no Store it is exactly
// NewChain: a fresh in-memory chain (NewChain itself is a thin wrapper
// over this path). With a Store it reconstructs the ledger from the
// committed Root instead of replaying rounds, and — when a Checkpoint
// is given — repositions the chain so the next Step continues the
// interrupted run bit-identically. Program and asset caches are warmed
// from the loaded trie (the trie stores TEAL source; parsed programs
// are a pure function of it).
func Open(o Options) (*Chain, error) {
	c := newChain(o.Config, o.Seed)
	if o.Store == nil {
		if o.Root != (mstate.Hash{}) || o.Checkpoint != nil {
			return nil, errors.New("algorand: Open with a root or checkpoint requires a store")
		}
		return c, nil
	}
	t, err := mstate.Load(o.Store, o.Root)
	if err != nil {
		return nil, fmt.Errorf("algorand: load state %x: %w", o.Root[:8], err)
	}
	c.led.t = t
	c.led.kv = t
	if o.Checkpoint != nil {
		if err := c.restore(o.Checkpoint); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func (c *Chain) restore(ck *Checkpoint) error {
	if ck.Name != c.cfg.Name {
		return fmt.Errorf("algorand: checkpoint is for chain %q, config says %q", ck.Name, c.cfg.Name)
	}
	if got := c.led.root(); got != ck.StateRoot {
		return fmt.Errorf("algorand: loaded state root %x does not match checkpoint %x", got[:8], ck.StateRoot[:8])
	}
	head := &Block{
		Round:     ck.HeadRound,
		Time:      ck.HeadTime,
		Seed:      ck.HeadSeed,
		Hash:      ck.HeadHash,
		StateRoot: ck.StateRoot,
	}
	c.blocks = []*Block{head}
	c.led.appSeq = ck.AppSeq
	c.led.assetSeq = ck.AssetSeq
	c.led.round = ck.HeadRound
	c.led.time = uint64(ck.HeadTime / time.Second)
	c.rcptAcc = ck.RcptAcc
	c.rcptCount = ck.RcptCount
	c.clock.AdvanceTo(ck.Clock)
	c.rng.SetState(ck.Rng)
	c.retention = ck.Retention
	c.pending = nil
	for i := range ck.Pending {
		p := &ck.Pending[i]
		c.pending = append(c.pending, &pendingGroup{group: p.Group, submitted: p.Submitted, delayed: p.Delayed})
	}
	// Warm the program and asset caches so post-restart app calls do
	// not re-parse TEAL on every execution (ledgerKV.app's fallback is
	// correct but parses per call).
	for id := uint64(1); id <= c.led.appSeq; id++ {
		enc, ok := c.led.kv.Get(appMetaKey(id))
		if !ok || enc[0] == 1 {
			continue
		}
		a := decodeAppMeta(id, enc)
		prog, err := avm.Parse(a.Source)
		if err != nil {
			return fmt.Errorf("algorand: reparse app %d from state: %w", id, err)
		}
		a.Program = prog
		c.led.progs[id] = a
	}
	for id := uint64(1); id <= c.led.assetSeq; id++ {
		enc, ok := c.led.kv.Get(assetMetaKey(id))
		if !ok {
			continue
		}
		c.led.assets[id] = decodeAssetMeta(id, enc)
	}
	return nil
}

// Fund credits addr out of thin air, like a genesis allocation. Soak
// harnesses use it with keys they derive themselves, so account setup
// never consumes the chain's own rng stream — which a resumed run could
// not replay. A zero amount is a no-op (no phantom entries).
func (c *Chain) Fund(addr chain.Address, microAlgos uint64) {
	c.led.credit(addr, microAlgos)
}
