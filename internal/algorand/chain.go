package algorand

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/faults"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

// TxType discriminates transaction kinds.
type TxType int

// Transaction kinds.
const (
	TxPay TxType = iota
	TxAppCreate
	TxAppCall
	TxAssetCreate
	TxAssetOptIn
	TxAssetTransfer
)

// Tx is one Algorand transaction.
type Tx struct {
	Type   TxType
	Sender chain.Address
	Fee    uint64

	// Payment fields.
	Receiver chain.Address
	Amount   uint64

	// Application fields.
	AppID        uint64 // 0 for create
	Source       string // TEAL source, for create
	Args         [][]byte
	OnCompletion uint64

	// Asset fields (ASA extension, §2.8). Amount doubles as the asset
	// amount for transfers and the total supply for creation.
	AssetID       uint64
	AssetName     string
	AssetUnit     string
	AssetDecimals uint32

	PubKey ed25519.PublicKey
	Sig    []byte
}

func (tx *Tx) sigMessage() []byte {
	var buf []byte
	buf = append(buf, byte(tx.Type))
	buf = append(buf, tx.Sender[:]...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], tx.Fee)
	buf = append(buf, n[:]...)
	buf = append(buf, tx.Receiver[:]...)
	binary.BigEndian.PutUint64(n[:], tx.Amount)
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], tx.AppID)
	buf = append(buf, n[:]...)
	binary.BigEndian.PutUint64(n[:], tx.AssetID)
	buf = append(buf, n[:]...)
	buf = append(buf, tx.AssetName...)
	buf = append(buf, tx.AssetUnit...)
	binary.BigEndian.PutUint64(n[:], uint64(tx.AssetDecimals))
	buf = append(buf, n[:]...)
	buf = append(buf, tx.Source...)
	for _, a := range tx.Args {
		buf = append(buf, a...)
	}
	h := polcrypto.Hash(buf)
	return h[:]
}

// Sign attaches the sender's signature.
func (tx *Tx) Sign(acct *Account) {
	tx.PubKey = acct.Key.Public
	tx.Sig = acct.Key.Sign(tx.sigMessage())
}

// Verify checks the signature.
func (tx *Tx) Verify() error {
	if chain.AddressFromPublicKey(tx.PubKey) != tx.Sender {
		return errors.New("algorand: sender does not match public key")
	}
	if !polcrypto.Verify(tx.PubKey, tx.sigMessage(), tx.Sig) {
		return polcrypto.ErrBadSignature
	}
	return nil
}

// Group is an atomic transaction group.
type Group []*Tx

// Hash identifies the group.
func (g Group) Hash() chain.Hash32 {
	var buf []byte
	for _, tx := range g {
		buf = append(buf, tx.sigMessage()...)
		buf = append(buf, tx.Sig...)
	}
	return chain.Hash32(polcrypto.Hash(buf))
}

// Block is one certified round.
type Block struct {
	Round    uint64
	Time     time.Duration
	Seed     chain.Hash32
	PrevSeed chain.Hash32
	Proposer Credential
	Cert     *Certificate
	Groups   []chain.Hash32
	// StateRoot is the ledger's Merkle root after this round executed —
	// part of the block hash, so a single state divergence anywhere in
	// the world makes every subsequent block hash differ.
	StateRoot chain.Hash32
	Hash      chain.Hash32
}

type pendingGroup struct {
	group     Group
	submitted time.Duration
	// delayed marks a group whose propagation was pushed back by an
	// injected tx_delay fault; inclusion counts as the recovery.
	delayed bool
}

// Chain is the simulated Algorand network.
type Chain struct {
	cfg   Config
	clock *chain.Clock
	rng   *chain.Rand
	led   *ledger

	participants []*Participant
	partsByAddr  map[chain.Address]*Participant
	totalStake   uint64

	blocks   []*Block
	pending  []*pendingGroup
	receipts map[chain.Hash32]*chain.Receipt
	feeSink  chain.Address

	// rcptAcc / rcptCount accumulate every included receipt in round
	// order; Digest folds them in so pruned receipts still count.
	rcptAcc   chain.Hash32
	rcptCount uint64
	// retention bounds how many certified rounds (and their receipts)
	// stay resident; <=0 keeps everything.
	retention int

	// obs holds the chain's instrumentation; nil when uninstrumented.
	obs *chainObs

	// flt injects deterministic faults at the pending pool; nil when
	// fault injection is off.
	flt *faults.Injector

	// shards is the execution fan-out Step may use; <=1 means serial.
	// shardStats tallies per-shard work once SetShards configures it.
	shards     int
	shardStats *chain.ShardStats

	// clientRng is the pre-forked stream clients draw their simulated
	// RPC/indexer latencies from; see newChain for why it is not forked
	// lazily. Every client attached to the chain shares it.
	clientRng *chain.Rand
}

// NewChain builds a network from a preset and seed. It is a thin
// wrapper over Open's in-memory path; chains that should restart from a
// committed state root go through Open directly.
func NewChain(cfg Config, seed uint64) *Chain {
	c, err := Open(Options{Config: cfg, Seed: seed})
	if err != nil {
		// Unreachable: the in-memory path has no failure modes.
		panic("algorand: " + err.Error())
	}
	return c
}

func newChain(cfg Config, seed uint64) *Chain {
	c := &Chain{
		cfg:         cfg,
		clock:       chain.NewClock(),
		rng:         chain.NewRand(seed).Fork("algorand:" + cfg.Name),
		led:         newLedger(),
		partsByAddr: make(map[chain.Address]*Participant),
		receipts:    make(map[chain.Hash32]*chain.Receipt),
		feeSink:     chain.AddressFromBytes([]byte("algorand-fee-sink")),
	}
	// Pre-fork the client stream at a fixed point in construction:
	// forking consumes a draw from the chain rng, and a lazy fork in
	// NewClient would make the chain's stream position depend on whether
	// — and when — a client is attached. A chain reopened from a
	// checkpoint re-forks this stream at the same point, so attaching a
	// client never perturbs the restored rng state.
	c.clientRng = c.rng.Fork("client")
	keyRng := c.rng.Fork("participants")
	stakeRng := c.rng.Fork("stakes")
	for i := 0; i < cfg.ParticipantCount; i++ {
		kp := polcrypto.MustGenerateKeyPair(keyRng)
		p := &Participant{
			Key:     kp,
			Address: chain.AddressFromPublicKey(kp.Public),
			// Pure PoS: no minimum stake; spread stakes over an order of
			// magnitude.
			Stake: 1000 + stakeRng.Uint64n(9000),
		}
		c.participants = append(c.participants, p)
		c.partsByAddr[p.Address] = p
		c.totalStake += p.Stake
	}
	genesis := &Block{Round: 0, Time: 0}
	genesis.Seed = chain.Hash32(polcrypto.Hash([]byte("algorand-genesis:" + cfg.Name)))
	genesis.Hash = genesis.Seed
	c.blocks = append(c.blocks, genesis)
	return c
}

// Config returns the network configuration.
func (c *Chain) Config() Config { return c.cfg }

// SetFaults attaches a fault injector to the pending pool.
func (c *Chain) SetFaults(inj *faults.Injector) { c.flt = inj }

// Faults returns the attached fault injector, nil when off.
func (c *Chain) Faults() *faults.Injector { return c.flt }

// Now returns current simulated time.
func (c *Chain) Now() time.Duration { return c.clock.Now() }

// Head returns the latest certified block.
func (c *Chain) Head() *Block { return c.blocks[len(c.blocks)-1] }

// NewAccount creates and funds an account. Funding zero is a no-op —
// it must not create a phantom zero-balance ledger entry.
func (c *Chain) NewAccount(microAlgos uint64) *Account {
	kp := polcrypto.MustGenerateKeyPair(c.rng.Fork("account"))
	addr := chain.AddressFromPublicKey(kp.Public)
	c.led.credit(addr, microAlgos)
	return &Account{Key: kp, Address: addr}
}

// Balance returns an account balance as an Amount.
func (c *Chain) Balance(addr chain.Address) chain.Amount {
	return chain.NewAmount(microToBig(c.led.Balance(addr)), c.cfg.Unit)
}

// StateRoot returns the current Merkle root of the ledger.
func (c *Chain) StateRoot() chain.Hash32 { return c.led.root() }

// SetRetention bounds how many certified rounds (blocks plus their
// receipts) stay resident; n <= 0 keeps everything. Digest is unaffected:
// receipts fold into a rolling accumulator at inclusion time and the
// world state enters through the Merkle root.
func (c *Chain) SetRetention(n int) { c.retention = n }

// AppAddress returns the escrow address of an application.
func (c *Chain) AppAddress(appID uint64) chain.Address { return c.led.AppAddress(appID) }

// AppGlobal reads one global state entry of an application.
func (c *Chain) AppGlobal(appID uint64, key string) (avm.Value, bool) {
	return c.led.GlobalGet(appID, key)
}

// App returns a deployed application.
func (c *Chain) App(appID uint64) (*App, bool) {
	a := c.led.app(appID)
	if a == nil {
		return nil, false
	}
	return a, true
}

// Submit queues a signed group for the next round.
func (c *Chain) Submit(g Group) (chain.Hash32, error) {
	for _, tx := range g {
		if err := tx.Verify(); err != nil {
			return chain.Hash32{}, err
		}
	}
	return c.submitVerified(g)
}

// submitVerified runs the admission checks past signature verification and
// queues the group. SubmitBatch calls it after verifying signatures
// concurrently; the checks and fault draws here must stay serial, in
// submission order, so batched and one-by-one submission build the same
// pending pool and consume the same fault streams.
func (c *Chain) submitVerified(g Group) (chain.Hash32, error) {
	if len(g) == 0 {
		return chain.Hash32{}, errors.New("algorand: empty group")
	}
	for _, tx := range g {
		if tx.Fee < MinFee {
			return chain.Hash32{}, fmt.Errorf("algorand: fee %d below min fee %d", tx.Fee, MinFee)
		}
	}
	if err := c.flt.Try(faults.ClassTxDrop, "algorand.pending"); err != nil {
		// The node accepted the RPC but the group never propagates; the
		// submitter's retry layer recovers by resubmitting.
		return chain.Hash32{}, err
	}
	p := &pendingGroup{group: g, submitted: c.clock.Now()}
	if hit, mag := c.flt.Draw(faults.ClassTxDelay, "algorand.pending"); hit {
		// Propagation stalls for up to three rounds; inclusion is the
		// recovery.
		stall := time.Duration(mag * float64(3*c.cfg.RoundDuration))
		p.submitted += stall
		p.delayed = true
		if c.obs != nil {
			c.obs.faultDelay.ObserveDuration(stall)
		}
	}
	c.pending = append(c.pending, p)
	if c.obs != nil {
		c.obs.groupsSubmitted.Inc()
		c.obs.pendingDepth.Set(float64(len(c.pending)))
	}
	return g.Hash(), nil
}

// Receipt returns the receipt of a processed group.
func (c *Chain) Receipt(h chain.Hash32) (*chain.Receipt, bool) {
	r, ok := c.receipts[h]
	return r, ok
}

// Step runs one consensus round: sortition selects the proposer and
// committee, the proposer assembles the block from all propagated groups
// (capacity is never the bottleneck at our scale), the committee certifies,
// and the block is final immediately.
func (c *Chain) Step() *Block {
	roundNum := c.Head().Round + 1
	roundTime := time.Duration(roundNum) * c.cfg.RoundDuration
	c.clock.AdvanceTo(roundTime)
	prev := c.Head()

	// Leader selection by VRF sortition; lowest sub-user priority wins.
	propSeed := sortitionSeed(prev.Seed, roundNum, "propose")
	candidates := runSortition(c.participants, c.totalStake, propSeed, c.cfg.ExpectedProposers)
	if len(candidates) == 0 {
		// No proposer selected this round (possible with small expected
		// sizes): empty round, seed still advances.
		candidates = runSortition(c.participants, c.totalStake, propSeed, float64(len(c.participants)))
	}
	leader := candidates[0]
	best := proposalPriority(leader)
	for _, cand := range candidates[1:] {
		if p := proposalPriority(cand); lessBytes(p[:], best[:]) {
			leader, best = cand, p
		}
	}

	c.led.round = roundNum
	c.led.time = uint64(roundTime / time.Second)

	blk := &Block{
		Round:    roundNum,
		Time:     roundTime,
		PrevSeed: prev.Seed,
		Proposer: leader,
	}
	blk.Seed = chain.Hash32(polcrypto.Hash(prev.Seed[:], leader.Output[:]))

	// Selection: every propagated group is included (capacity is never the
	// bottleneck at our scale); execution fans out across shards when the
	// round allows it, then the merge applies deferred effects in
	// canonical order.
	var remaining, sel []*pendingGroup
	for _, p := range c.pending {
		if p.submitted >= roundTime {
			remaining = append(remaining, p)
			continue
		}
		sel = append(sel, p)
	}
	c.pending = remaining

	receipts, effects := c.applyRound(sel, blk)
	for i, p := range sel {
		rcpt := receipts[i]
		rcpt.Submitted = p.submitted
		c.receipts[p.group.Hash()] = rcpt
		c.foldReceipt(p.group.Hash(), rcpt)
		blk.Groups = append(blk.Groups, p.group.Hash())
		// Deferred globals from the sharded executor; zero on the serial
		// path, which applies them inline.
		c.led.credit(c.feeSink, effects[i].feeSink)
		if c.obs != nil && effects[i].fees > 0 {
			c.obs.fees.Add(effects[i].fees)
		}
		if p.delayed {
			c.flt.Recover(faults.ClassTxDelay)
		}
		if c.obs != nil {
			c.obs.groupsIncluded.Inc()
			c.obs.inclusionLatency.Observe((blk.Time - p.submitted).Seconds())
			c.obs.inclusionSketch.Observe((blk.Time - p.submitted).Seconds())
			if rcpt.Reverted {
				c.obs.groupsRejected.Inc()
				c.obs.log.Warn("group rejected", "chain", c.cfg.Name,
					"round", blk.Round, "reason", rcpt.RevertMsg)
			}
		}
	}

	blk.StateRoot = c.led.root()
	blk.Hash = chain.Hash32(polcrypto.Hash(blk.Seed[:], hashGroups(blk.Groups), blk.StateRoot[:]))

	// Committee certification: BA voting steps run until the accumulated
	// sortition weight reaches the certification threshold.
	cert := &Certificate{BlockHash: blk.Hash}
	need := uint64(c.cfg.CertThreshold * c.cfg.ExpectedCommittee)
	weight := uint64(0)
	for step := uint64(0); weight < need && step < 16; step++ {
		comSeed := committeeSeed(prev.Seed, roundNum, step)
		committee := runSortition(c.participants, c.totalStake, comSeed, c.cfg.ExpectedCommittee)
		for _, cred := range committee {
			p := c.partsByAddr[cred.Participant]
			msg := append(append([]byte("vote:"), blk.Hash[:]...), comSeed...)
			cert.Votes = append(cert.Votes, Vote{
				Credential: cred,
				BlockHash:  blk.Hash,
				Step:       step,
				Signature:  p.Key.Sign(msg),
			})
			weight += cred.SubUsers
		}
	}
	blk.Cert = cert
	c.blocks = append(c.blocks, blk)
	c.pruneRetention()
	if c.obs != nil {
		c.obs.roundsCertified.Inc()
		c.obs.certVotes.Add(uint64(len(cert.Votes)))
		c.obs.pendingDepth.Set(float64(len(c.pending)))
		if c.obs.log.Enabled(obs.LevelDebug) {
			c.obs.log.Debug("round certified", "chain", c.cfg.Name,
				"round", blk.Round, "groups", len(blk.Groups), "votes", len(cert.Votes))
		}
	}
	return blk
}

// pruneRetention drops certified rounds (and their receipts) beyond the
// retention window. The ledger itself is untouched — live state is in the
// trie — so memory is bounded by live accounts and app state, not by how
// long the chain has run.
func (c *Chain) pruneRetention() {
	if c.retention <= 0 || len(c.blocks) <= c.retention {
		return
	}
	drop := len(c.blocks) - c.retention
	for _, blk := range c.blocks[:drop] {
		for _, h := range blk.Groups {
			delete(c.receipts, h)
		}
	}
	kept := make([]*Block, c.retention)
	copy(kept, c.blocks[drop:])
	c.blocks = kept
}

func hashGroups(hs []chain.Hash32) []byte {
	var buf []byte
	for _, h := range hs {
		buf = append(buf, h[:]...)
	}
	sum := polcrypto.Hash(buf)
	return sum[:]
}

// executeGroup applies one atomic group. On any failure the whole group is
// rolled back; fees are charged regardless (the network did the work).
func (c *Chain) executeGroup(g Group, blk *Block) *chain.Receipt {
	rcpt := &chain.Receipt{
		TxHash:      g.Hash(),
		BlockNumber: blk.Round,
		Included:    blk.Time,
	}
	snap := c.led.snapshot()

	totalFee := uint64(0)
	for _, tx := range g {
		totalFee += tx.Fee
	}

	// Fees first; insufficient fee balance fails the group outright.
	for _, tx := range g {
		bal := c.led.Balance(tx.Sender)
		if bal < tx.Fee {
			c.led.restore(snap)
			rcpt.Reverted = true
			rcpt.RevertMsg = "insufficient balance for fee"
			rcpt.Fee = chain.NewAmount(microToBig(0), c.cfg.Unit)
			return rcpt
		}
		c.led.setBalance(tx.Sender, bal-tx.Fee)
		c.led.credit(c.feeSink, tx.Fee)
	}

	if c.obs != nil {
		c.obs.fees.Add(totalFee)
	}

	// The group's payment (if any) feeds `gtxn 0 Amount`.
	payAmount := uint64(0)

	var prof obs.Profiler
	if c.obs != nil {
		prof = c.obs.prof
	}

	err := func() error {
		for _, tx := range g {
			switch tx.Type {
			case TxPay:
				if err := c.led.Pay(tx.Sender, tx.Receiver, tx.Amount); err != nil {
					return err
				}
				payAmount = tx.Amount
			case TxAppCreate:
				prog, err := avm.Parse(tx.Source)
				if err != nil {
					return fmt.Errorf("algorand: approval program: %w", err)
				}
				id := c.led.createApp(tx.Sender, tx.Source, prog, blk.Round)
				res := avm.Execute(prog, c.led, avm.TxContext{
					Sender: tx.Sender, AppID: id, CreateMode: true,
					Args: tx.Args, PayAmount: payAmount, Fee: tx.Fee,
					BudgetTxns: len(g), Profiler: prof,
				})
				rcpt.GasUsed += res.Cost
				rcpt.Logs = append(rcpt.Logs, res.Logs...)
				if !res.Approved {
					return fmt.Errorf("algorand: creation rejected: %w", errOf(res))
				}
				rcpt.ReturnValue = appIDBytes(id)
			case TxAssetCreate:
				a := c.led.assetCreate(tx.Sender, tx.AssetName, tx.AssetUnit, tx.Amount, tx.AssetDecimals, blk.Round)
				rcpt.ReturnValue = avm.Itob(a.ID)
			case TxAssetOptIn:
				if !c.led.assetExists(tx.AssetID) {
					return fmt.Errorf("%w: %d", ErrAssetNotFound, tx.AssetID)
				}
				if c.led.assetOptedIn(tx.Sender, tx.AssetID) {
					return fmt.Errorf("%w: %s / asset %d", ErrAlreadyOptedIn, tx.Sender, tx.AssetID)
				}
				c.led.assetOptIn(tx.Sender, tx.AssetID)
			case TxAssetTransfer:
				if err := c.led.assetTransfer(tx.AssetID, tx.Sender, tx.Receiver, tx.Amount); err != nil {
					return err
				}
			case TxAppCall:
				app := c.led.app(tx.AppID)
				if app == nil {
					return fmt.Errorf("algorand: no application %d", tx.AppID)
				}
				res := avm.Execute(app.Program, c.led, avm.TxContext{
					Sender: tx.Sender, AppID: tx.AppID,
					Args: tx.Args, OnCompletion: tx.OnCompletion,
					PayAmount: payAmount, Fee: tx.Fee,
					BudgetTxns: len(g), Profiler: prof,
				})
				rcpt.GasUsed += res.Cost
				rcpt.Logs = append(rcpt.Logs, res.Logs...)
				if !res.Approved {
					return fmt.Errorf("algorand: call rejected: %w", errOf(res))
				}
				if res.Return != nil {
					rcpt.ReturnValue = res.Return
				}
			}
		}
		return nil
	}()

	if err != nil {
		// Roll back everything except the fees.
		fees := make(map[chain.Address]uint64)
		for _, tx := range g {
			fees[tx.Sender] += tx.Fee
		}
		c.led.restore(snap)
		for addr, fee := range fees {
			if bal := c.led.Balance(addr); bal >= fee {
				c.led.setBalance(addr, bal-fee)
				c.led.credit(c.feeSink, fee)
			}
		}
		rcpt.Reverted = true
		rcpt.RevertMsg = err.Error()
	}
	rcpt.Fee = chain.NewAmount(microToBig(totalFee), c.cfg.Unit)
	return rcpt
}

func errOf(res avm.Result) error {
	if res.Err != nil {
		return res.Err
	}
	return avm.ErrRejected
}

func appIDBytes(id uint64) []byte {
	return avm.Itob(id)
}

func microToBig(v uint64) *bigInt { return newBigInt(v) }
