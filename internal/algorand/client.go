package algorand

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
)

// bigInt aliases keep chain.go free of math/big noise.
type bigInt = big.Int

func newBigInt(v uint64) *big.Int { return new(big.Int).SetUint64(v) }

// Client is the PureStake-style API view of the chain: it submits groups,
// waits for the round that includes them, then for the indexer to catch up —
// the pipeline whose latency the paper measures on Algorand.
type Client struct {
	chain *Chain
	rng   *chain.Rand
}

// NewClient opens a client. Clients draw their simulated latencies from
// the chain's pre-forked client stream (shared by every client on the
// chain), so attaching one never advances the chain's own rng — a
// restored checkpoint stays bit-exact no matter how many clients wrap
// the chain afterwards.
func NewClient(c *Chain) *Client {
	return &Client{chain: c, rng: c.clientRng}
}

// Chain exposes the underlying chain.
func (cl *Client) Chain() *Chain { return cl.chain }

func (cl *Client) rpcLatency() time.Duration {
	cfg := cl.chain.cfg
	return cfg.RPCLatencyMean + time.Duration(cl.rng.Float64()*float64(cfg.RPCLatencyJitter))
}

// Sleep advances the simulated clock by d — the client-side wait the
// resilience layer's backoff uses between retries.
func (cl *Client) Sleep(d time.Duration) {
	if d > 0 {
		cl.chain.clock.AdvanceTo(cl.chain.clock.Now() + d)
	}
}

// ErrTimeout reports a group not confirmed in the wait budget.
var ErrTimeout = errors.New("algorand: group not confirmed in time")

const maxWaitRounds = 300

// SubmitAndWait submits a signed group, advances rounds until it is
// certified, then waits for the indexer lag before returning the receipt
// with client-observed timestamps.
func (cl *Client) SubmitAndWait(g Group) (*chain.Receipt, error) {
	submitted := cl.chain.clock.Now()
	cl.chain.clock.AdvanceTo(submitted + cl.rpcLatency())
	h, err := cl.chain.Submit(g)
	if err != nil {
		return nil, err
	}
	for i := 0; i < maxWaitRounds; i++ {
		cl.chain.Step()
		rcpt, ok := cl.chain.Receipt(h)
		if !ok {
			continue
		}
		// Blocks are final when certified; the client still reads effects
		// through the indexer, which lags by IndexerSyncRounds.
		for cl.chain.Head().Round < rcpt.BlockNumber+uint64(cl.chain.cfg.IndexerSyncRounds) {
			cl.chain.Step()
		}
		observed := cl.chain.Head().Time + cl.rpcLatency()
		cl.chain.clock.AdvanceTo(observed)
		rcpt.Submitted = submitted
		rcpt.Included = observed
		return rcpt, nil
	}
	return nil, fmt.Errorf("%w after %d rounds", ErrTimeout, maxWaitRounds)
}

// CreateApp deploys an application (TEAL source + creation args) and
// returns its receipt and application ID.
func (cl *Client) CreateApp(acct *Account, source string, args [][]byte) (*chain.Receipt, uint64, error) {
	tx := &Tx{Type: TxAppCreate, Sender: acct.Address, Fee: MinFee, Source: source, Args: args}
	tx.Sign(acct)
	rcpt, err := cl.SubmitAndWait(Group{tx})
	if err != nil {
		return nil, 0, err
	}
	if rcpt.Reverted {
		return rcpt, 0, fmt.Errorf("algorand: app creation failed: %s", rcpt.RevertMsg)
	}
	id, err := avm.Btoi(rcpt.ReturnValue)
	if err != nil {
		return rcpt, 0, err
	}
	return rcpt, id, nil
}

// Pay transfers µAlgos (used to fund application escrow accounts up to
// MinBalance before first use — the extra deployment transaction the paper
// attributes to "the design of the network").
func (cl *Client) Pay(acct *Account, to chain.Address, amount uint64) (*chain.Receipt, error) {
	tx := &Tx{Type: TxPay, Sender: acct.Address, Fee: MinFee, Receiver: to, Amount: amount}
	tx.Sign(acct)
	rcpt, err := cl.SubmitAndWait(Group{tx})
	if err != nil {
		return nil, err
	}
	if rcpt.Reverted {
		return rcpt, fmt.Errorf("algorand: payment failed: %s", rcpt.RevertMsg)
	}
	return rcpt, nil
}

// CallApp invokes an application method. A non-zero pay amount groups a
// payment to the app escrow in front of the call (the `gtxn 0 Amount`
// convention the compiled programs check). A non-zero escrowFund groups a
// further payment *after* the call that tops up the application account
// (MinBalance activation) without counting as the API's payment.
func (cl *Client) CallApp(acct *Account, appID uint64, args [][]byte, pay, escrowFund uint64) (*chain.Receipt, error) {
	var g Group
	if pay > 0 {
		payTx := &Tx{
			Type: TxPay, Sender: acct.Address, Fee: MinFee,
			Receiver: cl.chain.AppAddress(appID), Amount: pay,
		}
		payTx.Sign(acct)
		g = append(g, payTx)
	}
	call := &Tx{Type: TxAppCall, Sender: acct.Address, Fee: MinFee, AppID: appID, Args: args}
	call.Sign(acct)
	g = append(g, call)
	if escrowFund > 0 {
		fundTx := &Tx{
			Type: TxPay, Sender: acct.Address, Fee: MinFee,
			Receiver: cl.chain.AppAddress(appID), Amount: escrowFund,
		}
		fundTx.Sign(acct)
		g = append(g, fundTx)
	}
	return cl.SubmitAndWait(g)
}

// Simulate executes an application call against a snapshot without fees,
// rounds or state effects — how the connector evaluates Views (§4.1.2:
// views read state at no cost).
func (cl *Client) Simulate(appID uint64, sender chain.Address, args [][]byte) (avm.Result, error) {
	app := cl.chain.led.app(appID)
	if app == nil {
		return avm.Result{}, fmt.Errorf("algorand: no application %d", appID)
	}
	snap := cl.chain.led.snapshot()
	res := avm.Execute(app.Program, cl.chain.led, avm.TxContext{
		Sender: sender, AppID: appID, Args: args, BudgetTxns: 4,
	})
	cl.chain.led.restore(snap)
	return res, nil
}
