package mstate

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// NodeStore is the persistence seam: content-addressed node storage,
// keyed by node hash. The in-memory MemStore implements it today; a
// disk backend only needs these two methods because the trie encodes
// nodes into self-contained byte records.
type NodeStore interface {
	// PutNode stores enc under its hash h. Stores are idempotent:
	// equal hashes carry equal encodings.
	PutNode(h Hash, enc []byte)
	// GetNode returns the encoding stored under h.
	GetNode(h Hash) ([]byte, bool)
}

// MemStore is the in-memory NodeStore.
type MemStore struct {
	nodes map[Hash][]byte
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore { return &MemStore{nodes: make(map[Hash][]byte)} }

// PutNode implements NodeStore.
func (m *MemStore) PutNode(h Hash, enc []byte) {
	if _, ok := m.nodes[h]; ok {
		return
	}
	cp := make([]byte, len(enc))
	copy(cp, enc)
	m.nodes[h] = cp
}

// GetNode implements NodeStore.
func (m *MemStore) GetNode(h Hash) ([]byte, bool) {
	enc, ok := m.nodes[h]
	return enc, ok
}

// Len is the number of stored nodes.
func (m *MemStore) Len() int { return len(m.nodes) }

// Commit writes every node reachable from t's root into store and
// returns the root hash. Shared subtrees are written once (the store
// is content-addressed, and already-present hashes short-circuit).
func (t *Trie) Commit(store NodeStore) Hash {
	if t.root == nil {
		return emptyRoot
	}
	commitNode(t.root, store)
	return t.root.hash()
}

func commitNode(n node, store NodeStore) Hash {
	h := n.hash()
	if _, ok := store.GetNode(h); ok {
		return h // whole subtree already persisted
	}
	switch cur := n.(type) {
	case *leaf:
		enc := make([]byte, 0, 1+32+len(cur.val))
		enc = append(enc, tagLeaf)
		enc = append(enc, cur.key[:]...)
		enc = append(enc, cur.val...)
		store.PutNode(h, enc)
	case *branch:
		mask := cur.mask()
		enc := make([]byte, 0, 3+32*bits.OnesCount16(mask))
		enc = append(enc, tagBranch, byte(mask>>8), byte(mask))
		for _, c := range cur.children {
			if c != nil {
				ch := commitNode(c, store)
				enc = append(enc, ch[:]...)
			}
		}
		store.PutNode(h, enc)
	}
	return h
}

// Load reconstructs the trie rooted at root from store. The empty root
// loads as an empty trie.
func Load(store NodeStore, root Hash) (*Trie, error) {
	if root == emptyRoot {
		return New(), nil
	}
	n, count, err := loadNode(store, root)
	if err != nil {
		return nil, err
	}
	return &Trie{root: n, count: count}, nil
}

func loadNode(store NodeStore, h Hash) (node, int, error) {
	enc, ok := store.GetNode(h)
	if !ok {
		return nil, 0, fmt.Errorf("mstate: missing node %x", h[:8])
	}
	if len(enc) == 0 {
		return nil, 0, fmt.Errorf("mstate: empty node encoding for %x", h[:8])
	}
	switch enc[0] {
	case tagLeaf:
		if len(enc) < 1+32 {
			return nil, 0, fmt.Errorf("mstate: short leaf encoding for %x", h[:8])
		}
		l := &leaf{}
		copy(l.key[:], enc[1:33])
		l.val = append([]byte(nil), enc[33:]...)
		return l, 1, nil
	case tagBranch:
		if len(enc) < 3 {
			return nil, 0, fmt.Errorf("mstate: short branch encoding for %x", h[:8])
		}
		mask := binary.BigEndian.Uint16(enc[1:3])
		want := 3 + 32*bits.OnesCount16(mask)
		if len(enc) != want {
			return nil, 0, fmt.Errorf("mstate: branch encoding for %x has %d bytes, want %d", h[:8], len(enc), want)
		}
		b := &branch{}
		off := 3
		count := 0
		for i := 0; i < 16; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			var ch Hash
			copy(ch[:], enc[off:off+32])
			off += 32
			child, n, err := loadNode(store, ch)
			if err != nil {
				return nil, 0, err
			}
			b.children[i] = child
			count += n
		}
		return b, count, nil
	default:
		return nil, 0, fmt.Errorf("mstate: unknown node tag 0x%02x for %x", enc[0], h[:8])
	}
}
