package mstate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
)

// ErrNodeMissing is returned (wrapped) by NodeStore.GetNode when no node
// is stored under the requested hash. Callers distinguish "absent" from
// I/O or corruption failures with errors.Is(err, ErrNodeMissing).
var ErrNodeMissing = errors.New("mstate: node missing")

// Node is one content-addressed trie node ready for persistence: Enc is
// the self-contained encoding and Hash its sha256 content address.
type Node struct {
	Hash Hash
	Enc  []byte
}

// NodeStore is the persistence seam: content-addressed node storage,
// keyed by node hash. Writes are batched so disk backends can append a
// whole commit in one buffered pass and make it durable once; every
// method can fail, because real backends sit on files.
//
// Stores are idempotent: equal hashes carry equal encodings, and
// re-putting a known hash is a no-op.
type NodeStore interface {
	// PutBatch stores every node in the batch. The store must not
	// retain the Enc slices (it copies or writes them out).
	PutBatch(nodes []Node) error
	// GetNode returns the encoding stored under h. The returned slice
	// is owned by the caller. A miss satisfies
	// errors.Is(err, ErrNodeMissing).
	GetNode(h Hash) ([]byte, error)
	// Has reports whether h is stored, without reading the payload.
	Has(h Hash) (bool, error)
	// Flush pushes buffered writes down to the backing medium. It does
	// not guarantee durability (see diskstore.Store.Commit for that).
	Flush() error
	// Close releases the store's resources. The store is unusable
	// afterwards.
	Close() error
}

// MemStore is the in-memory NodeStore.
type MemStore struct {
	nodes map[Hash][]byte
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore { return &MemStore{nodes: make(map[Hash][]byte)} }

// PutBatch implements NodeStore. Encodings are copied.
func (m *MemStore) PutBatch(nodes []Node) error {
	for _, n := range nodes {
		if _, ok := m.nodes[n.Hash]; ok {
			continue
		}
		cp := make([]byte, len(n.Enc))
		copy(cp, n.Enc)
		m.nodes[n.Hash] = cp
	}
	return nil
}

// GetNode implements NodeStore. The result is a defensive copy: callers
// may mutate it freely without corrupting the store.
func (m *MemStore) GetNode(h Hash) ([]byte, error) {
	enc, ok := m.nodes[h]
	if !ok {
		return nil, fmt.Errorf("%w: %x", ErrNodeMissing, h[:8])
	}
	return append([]byte(nil), enc...), nil
}

// Has implements NodeStore. It never allocates.
func (m *MemStore) Has(h Hash) (bool, error) {
	_, ok := m.nodes[h]
	return ok, nil
}

// Flush implements NodeStore; MemStore has nothing buffered.
func (m *MemStore) Flush() error { return nil }

// Close implements NodeStore.
func (m *MemStore) Close() error { return nil }

// Len is the number of stored nodes.
func (m *MemStore) Len() int { return len(m.nodes) }

// commitBatchSize bounds how many nodes a single PutBatch carries, so a
// first-ever commit of a huge trie does not hold every encoding in
// memory at once on top of the trie itself.
const commitBatchSize = 4096

// Commit writes every node reachable from t's root into store, in
// batches, and returns the root hash. Shared subtrees are written once:
// the store is content-addressed and an already-present hash
// short-circuits its whole subtree. Commit flushes the store but does
// not make it durable; disk backends expose a separate durability point
// (diskstore.Store.Commit).
func (t *Trie) Commit(store NodeStore) (Hash, error) {
	if t.root == nil {
		return emptyRoot, nil
	}
	var batch []Node // grows on demand; stays nil for a no-op re-commit
	root, err := commitNode(t.root, store, &batch)
	if err != nil {
		return Hash{}, err
	}
	if len(batch) > 0 {
		if err := store.PutBatch(batch); err != nil {
			return Hash{}, err
		}
	}
	if err := store.Flush(); err != nil {
		return Hash{}, err
	}
	return root, nil
}

func commitNode(n node, store NodeStore, batch *[]Node) (Hash, error) {
	h := n.hash()
	ok, err := store.Has(h)
	if err != nil {
		return Hash{}, err
	}
	if ok {
		return h, nil // whole subtree already persisted
	}
	switch cur := n.(type) {
	case *leaf:
		enc := make([]byte, 0, 1+32+len(cur.val))
		enc = append(enc, tagLeaf)
		enc = append(enc, cur.key[:]...)
		enc = append(enc, cur.val...)
		if err := appendNode(store, batch, Node{Hash: h, Enc: enc}); err != nil {
			return Hash{}, err
		}
	case *branch:
		mask := cur.mask()
		enc := make([]byte, 0, 3+32*bits.OnesCount16(mask))
		enc = append(enc, tagBranch, byte(mask>>8), byte(mask))
		for _, c := range cur.children {
			if c != nil {
				ch, err := commitNode(c, store, batch)
				if err != nil {
					return Hash{}, err
				}
				enc = append(enc, ch[:]...)
			}
		}
		if err := appendNode(store, batch, Node{Hash: h, Enc: enc}); err != nil {
			return Hash{}, err
		}
	}
	return h, nil
}

// appendNode adds n to the pending batch, draining it through PutBatch
// whenever it fills. Children are appended before their parents, so any
// durable prefix of the node stream is closed under reachability once
// its subtrees complete.
func appendNode(store NodeStore, batch *[]Node, n Node) error {
	*batch = append(*batch, n)
	if len(*batch) >= commitBatchSize {
		if err := store.PutBatch(*batch); err != nil {
			return err
		}
		*batch = (*batch)[:0]
	}
	return nil
}

// Load reconstructs the trie rooted at root from store. The empty root
// loads as an empty trie. A node absent from the store surfaces as an
// error wrapping ErrNodeMissing.
func Load(store NodeStore, root Hash) (*Trie, error) {
	if root == emptyRoot {
		return New(), nil
	}
	n, count, err := loadNode(store, root)
	if err != nil {
		return nil, err
	}
	return &Trie{root: n, count: count}, nil
}

func loadNode(store NodeStore, h Hash) (node, int, error) {
	enc, err := store.GetNode(h)
	if err != nil {
		return nil, 0, err
	}
	if len(enc) == 0 {
		return nil, 0, fmt.Errorf("mstate: empty node encoding for %x", h[:8])
	}
	switch enc[0] {
	case tagLeaf:
		if len(enc) < 1+32 {
			return nil, 0, fmt.Errorf("mstate: short leaf encoding for %x", h[:8])
		}
		l := &leaf{}
		copy(l.key[:], enc[1:33])
		l.val = append([]byte(nil), enc[33:]...)
		return l, 1, nil
	case tagBranch:
		if len(enc) < 3 {
			return nil, 0, fmt.Errorf("mstate: short branch encoding for %x", h[:8])
		}
		mask := binary.BigEndian.Uint16(enc[1:3])
		want := 3 + 32*bits.OnesCount16(mask)
		if len(enc) != want {
			return nil, 0, fmt.Errorf("mstate: branch encoding for %x has %d bytes, want %d", h[:8], len(enc), want)
		}
		b := &branch{}
		off := 3
		count := 0
		for i := 0; i < 16; i++ {
			if mask&(1<<uint(i)) == 0 {
				continue
			}
			var ch Hash
			copy(ch[:], enc[off:off+32])
			off += 32
			child, n, err := loadNode(store, ch)
			if err != nil {
				return nil, 0, err
			}
			b.children[i] = child
			count += n
		}
		return b, count, nil
	default:
		return nil, 0, fmt.Errorf("mstate: unknown node tag 0x%02x for %x", enc[0], h[:8])
	}
}
