// Package mstate is the Merkle snapshot state layer: an immutable
// copy-on-write trie over 32-byte hashed keys that gives every chain
// backend O(1) snapshots, an authenticated state root per block, and a
// disk-shaped persistence seam (NodeStore).
//
// The trie is a 16-ary radix tree over the nibbles of the (already
// hashed, uniformly distributed) key. Leaves store the full key and
// value, so lookups terminate as soon as the path is unambiguous;
// interior branch chains exist only along shared key prefixes. Every
// mutation copies the nodes on the touched path and shares the rest,
// which is what makes Snapshot a root-pointer copy and keeps forks
// cheap: two tries diverging by k keys share all but O(k·depth) nodes.
//
// The structure — and therefore the root hash — is a pure function of
// the key/value set, independent of insertion or deletion order:
// deletes collapse single-leaf branches back to the shape a fresh
// insertion of the surviving keys would build.
package mstate

import (
	"crypto/sha256"
	"sync/atomic"
)

// Key is a trie key: the caller hashes its logical key (address, slot,
// app id...) down to 32 uniformly distributed bytes via KeyOf.
type Key [32]byte

// Hash is a node or root hash.
type Hash [32]byte

// KeyOf derives a trie key from a domain tag and the logical key parts.
// The tag keeps different column families (balances, nonces, storage...)
// from colliding even when their raw parts coincide.
func KeyOf(tag string, parts ...[]byte) Key {
	h := sha256.New()
	h.Write([]byte(tag))
	h.Write([]byte{0})
	for _, p := range parts {
		h.Write(p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// node is either a *leaf or a *branch. Nodes are immutable once linked
// into a trie; mutation always copies.
type node interface {
	hash() Hash
}

// leaf holds one key/value pair. The value slice is owned by the trie
// (Put copies), never mutated in place.
type leaf struct {
	key    Key
	val    []byte
	cached atomic.Pointer[Hash]
}

// branch fans out on one nibble of the key. children[i] covers keys
// whose nibble at this depth is i.
type branch struct {
	children [16]node
	cached   atomic.Pointer[Hash]
}

// Node-encoding tags, shared by hashing and persistence so that a
// node's hash is the hash of its stored encoding.
const (
	tagLeaf   = 0x4C // 'L'
	tagBranch = 0x42 // 'B'
)

func (l *leaf) hash() Hash {
	if h := l.cached.Load(); h != nil {
		return *h
	}
	hs := sha256.New()
	hs.Write([]byte{tagLeaf})
	hs.Write(l.key[:])
	hs.Write(l.val)
	var h Hash
	hs.Sum(h[:0])
	l.cached.Store(&h) // idempotent: concurrent stores write the same value
	return h
}

func (b *branch) hash() Hash {
	if h := b.cached.Load(); h != nil {
		return *h
	}
	hs := sha256.New()
	var hdr [3]byte
	hdr[0] = tagBranch
	mask := b.mask()
	hdr[1], hdr[2] = byte(mask>>8), byte(mask)
	hs.Write(hdr[:])
	for _, c := range b.children {
		if c != nil {
			ch := c.hash()
			hs.Write(ch[:])
		}
	}
	var h Hash
	hs.Sum(h[:0])
	b.cached.Store(&h)
	return h
}

// mask is the bitmap of occupied child slots, bit i for children[i].
func (b *branch) mask() uint16 {
	var m uint16
	for i, c := range b.children {
		if c != nil {
			m |= 1 << uint(i)
		}
	}
	return m
}

// clone returns a mutable copy of the branch with an unset hash cache.
func (b *branch) clone() *branch {
	nb := &branch{children: b.children}
	return nb
}

// nibble returns the depth-th nibble of k, high nibble first.
func nibble(k Key, depth int) int {
	by := k[depth/2]
	if depth%2 == 0 {
		return int(by >> 4)
	}
	return int(by & 0x0F)
}

// Trie is one version of the state. The zero value is not usable; call
// New. A Trie is not safe for concurrent mutation, but any number of
// snapshots may be read (and hashed) concurrently because all shared
// nodes are immutable.
type Trie struct {
	root  node
	count int
}

// New returns an empty trie.
func New() *Trie { return &Trie{} }

// Snapshot returns an independent fork sharing all nodes with t. Both
// sides may continue to mutate; neither observes the other. O(1).
func (t *Trie) Snapshot() *Trie { return &Trie{root: t.root, count: t.count} }

// Len is the number of live keys.
func (t *Trie) Len() int { return t.count }

// emptyRoot is the root hash of the empty trie.
var emptyRoot = Hash{}

// Root returns the Merkle root of the current contents. Hashing is
// memoized per node, so after the first call only newly written paths
// cost anything.
func (t *Trie) Root() Hash {
	if t.root == nil {
		return emptyRoot
	}
	return t.root.hash()
}

// Get returns the stored value and whether the key is present. The
// returned slice is owned by the trie: callers must not mutate it.
func (t *Trie) Get(k Key) ([]byte, bool) {
	n := t.root
	depth := 0
	for n != nil {
		switch v := n.(type) {
		case *leaf:
			if v.key == k {
				return v.val, true
			}
			return nil, false
		case *branch:
			n = v.children[nibble(k, depth)]
			depth++
		}
	}
	return nil, false
}

// Has reports whether k is present.
func (t *Trie) Has(k Key) bool {
	_, ok := t.Get(k)
	return ok
}

// Put stores v under k, copying v so later caller-side mutation cannot
// alias into the trie.
func (t *Trie) Put(k Key, v []byte) {
	cp := make([]byte, len(v))
	copy(cp, v)
	var added bool
	t.root, added = insert(t.root, k, 0, cp)
	if added {
		t.count++
	}
}

// insert returns the new subtree root and whether the key was newly
// added (vs overwritten).
func insert(n node, k Key, depth int, v []byte) (node, bool) {
	switch cur := n.(type) {
	case nil:
		return &leaf{key: k, val: v}, true
	case *leaf:
		if cur.key == k {
			return &leaf{key: k, val: v}, false
		}
		// Grow a branch chain down to the first diverging nibble.
		return splitLeaf(cur, &leaf{key: k, val: v}, depth), true
	case *branch:
		nb := cur.clone()
		idx := nibble(k, depth)
		child, added := insert(cur.children[idx], k, depth+1, v)
		nb.children[idx] = child
		return nb, added
	}
	panic("mstate: unknown node type")
}

// splitLeaf builds the branch chain separating two distinct keys that
// share a prefix from depth onward.
func splitLeaf(a, b *leaf, depth int) node {
	ia, ib := nibble(a.key, depth), nibble(b.key, depth)
	br := &branch{}
	if ia == ib {
		br.children[ia] = splitLeaf(a, b, depth+1)
	} else {
		br.children[ia] = a
		br.children[ib] = b
	}
	return br
}

// Delete removes k if present.
func (t *Trie) Delete(k Key) {
	root, removed := remove(t.root, k, 0)
	t.root = root
	if removed {
		t.count--
	}
}

// remove returns the new subtree root and whether a key was removed.
// Branches left with a single leaf child collapse to that leaf so the
// structure stays a pure function of the surviving key set.
func remove(n node, k Key, depth int) (node, bool) {
	switch cur := n.(type) {
	case nil:
		return nil, false
	case *leaf:
		if cur.key == k {
			return nil, true
		}
		return cur, false
	case *branch:
		idx := nibble(k, depth)
		child, removed := remove(cur.children[idx], k, depth+1)
		if !removed {
			return cur, false
		}
		nb := cur.clone()
		nb.children[idx] = child
		// Collapse: count survivors; a lone leaf replaces the branch.
		var only node
		cnt := 0
		for _, c := range nb.children {
			if c != nil {
				only = c
				cnt++
			}
		}
		switch {
		case cnt == 0:
			return nil, true
		case cnt == 1:
			if lf, ok := only.(*leaf); ok {
				return lf, true
			}
		}
		return nb, true
	}
	panic("mstate: unknown node type")
}

// Walk visits every key/value pair in unspecified order and stops early
// if fn returns false. Values are trie-owned; do not mutate.
func (t *Trie) Walk(fn func(Key, []byte) bool) {
	walk(t.root, fn)
}

func walk(n node, fn func(Key, []byte) bool) bool {
	switch cur := n.(type) {
	case nil:
		return true
	case *leaf:
		return fn(cur.key, cur.val)
	case *branch:
		for _, c := range cur.children {
			if !walk(c, fn) {
				return false
			}
		}
		return true
	}
	panic("mstate: unknown node type")
}
