package mstate

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func k(s string) Key { return KeyOf("test", []byte(s)) }

func TestPutGetDelete(t *testing.T) {
	tr := New()
	if _, ok := tr.Get(k("a")); ok {
		t.Fatal("empty trie claims a key")
	}
	tr.Put(k("a"), []byte("1"))
	tr.Put(k("b"), []byte("2"))
	tr.Put(k("a"), []byte("1x"))
	if got, _ := tr.Get(k("a")); !bytes.Equal(got, []byte("1x")) {
		t.Fatalf("a = %q, want 1x", got)
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	tr.Delete(k("a"))
	if tr.Has(k("a")) {
		t.Fatal("deleted key still present")
	}
	if tr.Len() != 1 {
		t.Fatalf("len = %d, want 1", tr.Len())
	}
	tr.Delete(k("missing")) // no-op
	if tr.Len() != 1 {
		t.Fatalf("len after deleting missing key = %d, want 1", tr.Len())
	}
}

func TestEmptyValueVsAbsent(t *testing.T) {
	tr := New()
	tr.Put(k("a"), nil)
	if v, ok := tr.Get(k("a")); !ok || len(v) != 0 {
		t.Fatalf("empty value not stored: %v %v", v, ok)
	}
	r1 := tr.Root()
	tr.Delete(k("a"))
	if tr.Root() == r1 {
		t.Fatal("root unchanged after delete of empty-valued key")
	}
	if tr.Root() != (Hash{}) {
		t.Fatal("empty trie root is not the zero hash")
	}
}

// The root must be a pure function of the key/value set, independent of
// the order of insertions and interleaved deletions.
func TestRootHistoryIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]Key, 64)
	for i := range keys {
		keys[i] = k(fmt.Sprintf("key-%d", i))
	}
	build := func(perm []int) Hash {
		tr := New()
		// Insert everything in permuted order, plus churn: write and
		// delete a disjoint set of scratch keys along the way.
		for j, idx := range perm {
			tr.Put(k(fmt.Sprintf("scratch-%d", j)), []byte("tmp"))
			tr.Put(keys[idx], []byte(fmt.Sprintf("val-%d", idx)))
		}
		for j := range perm {
			tr.Delete(k(fmt.Sprintf("scratch-%d", j)))
		}
		return tr.Root()
	}
	perm := rng.Perm(len(keys))
	want := build(perm)
	for trial := 0; trial < 5; trial++ {
		if got := build(rng.Perm(len(keys))); got != want {
			t.Fatalf("trial %d: root %x != %x under different history", trial, got[:8], want[:8])
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	tr := New()
	tr.Put(k("a"), []byte("1"))
	snap := tr.Snapshot()
	tr.Put(k("a"), []byte("2"))
	tr.Put(k("b"), []byte("3"))
	snap.Delete(k("a"))

	if got, _ := tr.Get(k("a")); !bytes.Equal(got, []byte("2")) {
		t.Fatalf("parent a = %q, want 2", got)
	}
	if snap.Has(k("a")) || snap.Has(k("b")) {
		t.Fatal("snapshot observed parent mutations")
	}
	if tr.Len() != 2 || snap.Len() != 0 {
		t.Fatalf("len parent=%d snap=%d, want 2 and 0", tr.Len(), snap.Len())
	}
}

func TestPutCopiesValue(t *testing.T) {
	tr := New()
	v := []byte("mutable")
	tr.Put(k("a"), v)
	v[0] = 'X'
	if got, _ := tr.Get(k("a")); !bytes.Equal(got, []byte("mutable")) {
		t.Fatalf("trie aliased caller slice: %q", got)
	}
}

func TestOverlay(t *testing.T) {
	base := New()
	base.Put(k("a"), []byte("1"))
	base.Put(k("b"), []byte("2"))

	ov := NewOverlay(base)
	ov.Put(k("a"), []byte("10"))
	ov.Delete(k("b"))
	ov.Put(k("c"), []byte("30"))

	if got, _ := ov.Get(k("a")); !bytes.Equal(got, []byte("10")) {
		t.Fatalf("overlay a = %q", got)
	}
	if ov.Has(k("b")) {
		t.Fatal("overlay sees deleted key")
	}
	// Base untouched until commit.
	if got, _ := base.Get(k("a")); !bytes.Equal(got, []byte("1")) {
		t.Fatalf("base a = %q before commit", got)
	}
	if ov.Touched() != 3 {
		t.Fatalf("touched = %d, want 3", ov.Touched())
	}

	ov.CommitTo(base)
	if got, _ := base.Get(k("a")); !bytes.Equal(got, []byte("10")) {
		t.Fatalf("base a = %q after commit", got)
	}
	if base.Has(k("b")) {
		t.Fatal("base kept deleted key after commit")
	}
	if got, _ := base.Get(k("c")); !bytes.Equal(got, []byte("30")) {
		t.Fatalf("base c = %q after commit", got)
	}
}

func TestOverlayForkAdoptAndDiscard(t *testing.T) {
	base := New()
	base.Put(k("a"), []byte("1"))
	ov := NewOverlay(base)
	ov.Put(k("b"), []byte("2"))

	// A discarded child leaves the parent untouched.
	child := ov.Fork()
	child.Put(k("a"), []byte("bad"))
	child.Delete(k("b"))
	if got, _ := ov.Get(k("a")); !bytes.Equal(got, []byte("1")) {
		t.Fatalf("parent overlay a = %q after child writes", got)
	}

	// An adopted child's writes land in the parent and survive commit.
	child2 := ov.Fork()
	child2.Put(k("a"), []byte("good"))
	ov.Adopt(child2)
	if got, _ := ov.Get(k("a")); !bytes.Equal(got, []byte("good")) {
		t.Fatalf("parent overlay a = %q after adopt", got)
	}
	ov.CommitTo(base)
	if got, _ := base.Get(k("a")); !bytes.Equal(got, []byte("good")) {
		t.Fatalf("base a = %q after commit", got)
	}
	if got, _ := base.Get(k("b")); !bytes.Equal(got, []byte("2")) {
		t.Fatalf("base b = %q after commit", got)
	}
}

func TestCommitLoadRoundTrip(t *testing.T) {
	tr := New()
	for i := 0; i < 300; i++ {
		tr.Put(k(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	tr.Delete(k("k7"))
	store := NewMemStore()
	root, err := tr.Commit(store)
	if err != nil {
		t.Fatal(err)
	}
	if root != tr.Root() {
		t.Fatal("commit returned a different root")
	}

	got, err := Load(store, root)
	if err != nil {
		t.Fatal(err)
	}
	if got.Root() != root {
		t.Fatalf("loaded root %x != committed %x", got.Root(), root)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("loaded len %d != %d", got.Len(), tr.Len())
	}
	if got.Has(k("k7")) {
		t.Fatal("deleted key resurrected by load")
	}
	if v, _ := got.Get(k("k42")); !bytes.Equal(v, []byte("v42")) {
		t.Fatalf("loaded k42 = %q", v)
	}

	// A second commit of a mutated fork only adds the changed paths.
	before := store.Len()
	fork := tr.Snapshot()
	fork.Put(k("k1"), []byte("patched"))
	if _, err := fork.Commit(store); err != nil {
		t.Fatal(err)
	}
	if added := store.Len() - before; added <= 0 || added > 70 {
		t.Fatalf("incremental commit added %d nodes; shared subtrees not reused", added)
	}

	if _, err := Load(NewMemStore(), root); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("load from an empty store: got %v, want ErrNodeMissing", err)
	}
	empty, err := Load(store, Hash{})
	if err != nil || empty.Len() != 0 {
		t.Fatalf("empty-root load: %v len=%d", err, empty.Len())
	}
}

// Randomized model check: the trie must agree with a plain map under
// mixed puts, deletes, snapshots and overlay commits.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := New()
	model := map[Key]string{}
	keys := make([]Key, 200)
	for i := range keys {
		keys[i] = k(fmt.Sprintf("r%d", i))
	}
	check := func(step int) {
		if tr.Len() != len(model) {
			t.Fatalf("step %d: len %d != model %d", step, tr.Len(), len(model))
		}
		for _, kk := range keys {
			got, ok := tr.Get(kk)
			want, wok := model[kk]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("step %d: key %x got %q/%v want %q/%v", step, kk[:4], got, ok, want, wok)
			}
		}
	}
	for step := 0; step < 3000; step++ {
		kk := keys[rng.Intn(len(keys))]
		switch rng.Intn(10) {
		case 0, 1:
			tr.Delete(kk)
			delete(model, kk)
		case 2: // batch via overlay
			ov := NewOverlay(tr)
			for j := 0; j < 5; j++ {
				ok := keys[rng.Intn(len(keys))]
				if rng.Intn(3) == 0 {
					ov.Delete(ok)
					delete(model, ok)
				} else {
					v := fmt.Sprintf("ov%d-%d", step, j)
					ov.Put(ok, []byte(v))
					model[ok] = v
				}
			}
			ov.CommitTo(tr)
		default:
			v := fmt.Sprintf("v%d", step)
			tr.Put(kk, []byte(v))
			model[kk] = v
		}
		if step%500 == 0 {
			check(step)
		}
	}
	check(-1)

	// Rebuild from the model alone: identical root.
	fresh := New()
	for kk, v := range model {
		fresh.Put(kk, []byte(v))
	}
	if fresh.Root() != tr.Root() {
		t.Fatalf("rebuilt root %x != churned root %x", fresh.Root(), tr.Root())
	}
}

// Concurrent Root() on snapshots sharing unhashed nodes must be safe
// (exercised under -race) and agree.
func TestConcurrentRootHashing(t *testing.T) {
	tr := New()
	for i := 0; i < 2000; i++ {
		tr.Put(k(fmt.Sprintf("c%d", i)), []byte{byte(i)})
	}
	snaps := make([]*Trie, 8)
	for i := range snaps {
		snaps[i] = tr.Snapshot()
	}
	roots := make([]Hash, len(snaps))
	var wg sync.WaitGroup
	for i, s := range snaps {
		wg.Add(1)
		go func(i int, s *Trie) {
			defer wg.Done()
			roots[i] = s.Root()
		}(i, s)
	}
	wg.Wait()
	for i := 1; i < len(roots); i++ {
		if roots[i] != roots[0] {
			t.Fatalf("snapshot %d root diverged", i)
		}
	}
}
