package mstate

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// Regression: MemStore.GetNode used to return its internal slice, so a
// caller mutating the returned encoding corrupted the store (same bug
// class as the PR 7 SetCode aliasing fix).
func TestMemStoreGetNodeDefensiveCopy(t *testing.T) {
	tr := New()
	tr.Put(k("alias"), []byte("payload"))
	store := NewMemStore()
	root, err := tr.Commit(store)
	if err != nil {
		t.Fatal(err)
	}

	enc, err := store.GetNode(root)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), enc...)
	for i := range enc {
		enc[i] = 0xFF
	}
	again, err := store.GetNode(root)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("mutating GetNode's result corrupted the store")
	}
	if _, err := Load(store, root); err != nil {
		t.Fatalf("load after caller-side mutation: %v", err)
	}
}

func TestMemStoreMissReturnsTypedError(t *testing.T) {
	store := NewMemStore()
	if _, err := store.GetNode(Hash{1}); !errors.Is(err, ErrNodeMissing) {
		t.Fatalf("got %v, want ErrNodeMissing", err)
	}
	if ok, err := store.Has(Hash{1}); ok || err != nil {
		t.Fatalf("Has on empty store = %v, %v", ok, err)
	}
}

// The commit hot path — Has probes and re-puts of already-present
// nodes — must not allocate on MemStore. Enforced here (not just
// benchmarked) so a regression fails CI.
func TestMemStoreHotPathNoAllocs(t *testing.T) {
	tr := New()
	for i := 0; i < 64; i++ {
		tr.Put(k(fmt.Sprintf("n%d", i)), []byte{byte(i)})
	}
	store := NewMemStore()
	root, err := tr.Commit(store)
	if err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(200, func() {
		if ok, err := store.Has(root); !ok || err != nil {
			t.Fatal("Has lost the root")
		}
	}); allocs != 0 {
		t.Fatalf("Has allocates %.1f objects per call", allocs)
	}

	enc, err := store.GetNode(root)
	if err != nil {
		t.Fatal(err)
	}
	batch := []Node{{Hash: root, Enc: enc}}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := store.PutBatch(batch); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("idempotent PutBatch allocates %.1f objects per call", allocs)
	}
}

// BenchmarkTrieCommitMemStore measures the full commit path (encode +
// batch + store) and the no-op re-commit where every subtree
// short-circuits through Has.
func BenchmarkTrieCommitMemStore(b *testing.B) {
	tr := New()
	for i := 0; i < 2000; i++ {
		tr.Put(k(fmt.Sprintf("bench%d", i)), []byte(fmt.Sprintf("value-%d", i)))
	}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store := NewMemStore()
			if _, err := tr.Commit(store); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("nochange", func(b *testing.B) {
		store := NewMemStore()
		if _, err := tr.Commit(store); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := tr.Commit(store); err != nil {
				b.Fatal(err)
			}
		}
	})
}
