package diskstore

import (
	"container/list"

	"agnopol/internal/mstate"
)

// lruCache keeps hot node encodings in memory so trie loads and repeat
// reads stay off disk. Bounded by entry count; the caller sizes it
// (Options.CacheNodes) against expected node size — mstate nodes are a
// few hundred bytes (leaves: 33 bytes + value; branches: ≤ 515 bytes),
// so the default 4096 entries is roughly a couple of MiB.
//
// Not itself synchronized: the Store's mutex guards it.
type lruCache struct {
	cap int
	ll  *list.List // front = most recent
	m   map[mstate.Hash]*list.Element
}

type lruEntry struct {
	h   mstate.Hash
	enc []byte
}

func newLRUCache(capacity int) *lruCache {
	if capacity < 0 {
		capacity = 0
	}
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[mstate.Hash]*list.Element)}
}

// get returns the cached encoding. The caller must not mutate it.
func (c *lruCache) get(h mstate.Hash) ([]byte, bool) {
	el, ok := c.m[h]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).enc, true
}

// put inserts enc (which the cache takes ownership of), evicting the
// least recently used entry past capacity.
func (c *lruCache) put(h mstate.Hash, enc []byte) {
	if c.cap == 0 {
		return
	}
	if el, ok := c.m[h]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.m[h] = c.ll.PushFront(&lruEntry{h: h, enc: enc})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*lruEntry).h)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
