package diskstore

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"agnopol/internal/mstate"
)

const manifestMagic = "POLMAN1"

// manifest is the commit record: the committed root, how far into
// which segment the durable log extends, and an opaque caller blob
// (chains store their checkpoint here). It is only ever replaced
// atomically, after the bytes it points at are fsynced.
type manifest struct {
	Root    mstate.Hash
	Segment int
	Offset  int64
	Nodes   int
	Meta    []byte
}

// manifestJSON is the on-disk form: hex root for readability, plus a
// CRC over the canonical field string so a torn or hand-edited
// manifest is detected as corruption rather than trusted.
type manifestJSON struct {
	Magic   string `json:"magic"`
	Root    string `json:"root"`
	Segment int    `json:"segment"`
	Offset  int64  `json:"offset"`
	Nodes   int    `json:"nodes"`
	Meta    []byte `json:"meta,omitempty"`
	CRC     uint32 `json:"crc"`
}

func (m *manifest) checksum() uint32 {
	s := fmt.Sprintf("%s|%x|%d|%d|%d|%x", manifestMagic, m.Root[:], m.Segment, m.Offset, m.Nodes, m.Meta)
	return crc32.ChecksumIEEE([]byte(s))
}

// readManifest loads and validates path. os.ErrNotExist passes through
// so Open can distinguish "fresh store" from corruption.
func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return nil, fmt.Errorf("diskstore: read manifest: %w", err)
	}
	var mj manifestJSON
	if err := json.Unmarshal(data, &mj); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptManifest, err)
	}
	if mj.Magic != manifestMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrCorruptManifest, mj.Magic)
	}
	rootBytes, err := hex.DecodeString(mj.Root)
	if err != nil || len(rootBytes) != len(mstate.Hash{}) {
		return nil, fmt.Errorf("%w: bad root %q", ErrCorruptManifest, mj.Root)
	}
	m := &manifest{Segment: mj.Segment, Offset: mj.Offset, Nodes: mj.Nodes, Meta: mj.Meta}
	copy(m.Root[:], rootBytes)
	if mj.CRC != m.checksum() {
		return nil, fmt.Errorf("%w: crc %08x, want %08x", ErrCorruptManifest, mj.CRC, m.checksum())
	}
	if m.Segment < 1 || m.Offset < segHeaderLen {
		return nil, fmt.Errorf("%w: impossible position seg=%d off=%d", ErrCorruptManifest, m.Segment, m.Offset)
	}
	return m, nil
}

// writeManifest atomically replaces dir/MANIFEST: write a temp file,
// fsync it, rename over the old manifest, fsync the directory.
func writeManifest(dir string, m *manifest, noSync bool) error {
	mj := manifestJSON{
		Magic:   manifestMagic,
		Root:    hex.EncodeToString(m.Root[:]),
		Segment: m.Segment,
		Offset:  m.Offset,
		Nodes:   m.Nodes,
		Meta:    m.Meta,
		CRC:     m.checksum(),
	}
	data, err := json.Marshal(&mj)
	if err != nil {
		return fmt.Errorf("diskstore: encode manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: create manifest temp: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: write manifest temp: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("diskstore: fsync manifest temp: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("diskstore: close manifest temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("diskstore: publish manifest: %w", err)
	}
	if !noSync {
		d, err := os.Open(dir)
		if err != nil {
			return fmt.Errorf("diskstore: open dir for fsync: %w", err)
		}
		err = d.Sync()
		d.Close()
		if err != nil {
			return fmt.Errorf("diskstore: fsync dir: %w", err)
		}
	}
	return nil
}
