package diskstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"agnopol/internal/mstate"
)

func tk(s string) mstate.Key { return mstate.KeyOf("disktest", []byte(s)) }

func buildTrie(n int, salt string) *mstate.Trie {
	tr := mstate.New()
	for i := 0; i < n; i++ {
		tr.Put(tk(fmt.Sprintf("%s-%d", salt, i)), []byte(fmt.Sprintf("val-%s-%d", salt, i)))
	}
	return tr
}

// commit writes tr into s and publishes its root with meta.
func commit(t *testing.T, tr *mstate.Trie, s *Store, meta []byte) mstate.Hash {
	t.Helper()
	root, err := tr.Commit(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(root, meta); err != nil {
		t.Fatal(err)
	}
	return root
}

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	opts.NoSync = true // logic tests; durability fsyncs just slow them down
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFreshCommitReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if _, ok := s.Root(); ok {
		t.Fatal("fresh store claims a committed root")
	}
	tr := buildTrie(500, "a")
	root := commit(t, tr, s, []byte("checkpoint-1"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	got, ok := s2.Root()
	if !ok || got != root {
		t.Fatalf("reopened root %x ok=%v, want %x", got[:8], ok, root[:8])
	}
	if !bytes.Equal(s2.Meta(), []byte("checkpoint-1")) {
		t.Fatalf("meta = %q", s2.Meta())
	}
	loaded, err := mstate.Load(s2, root)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Root() != tr.Root() || loaded.Len() != tr.Len() {
		t.Fatalf("loaded root/len %x/%d, want %x/%d", loaded.Root(), loaded.Len(), tr.Root(), tr.Len())
	}
	if v, _ := loaded.Get(tk("a-123")); !bytes.Equal(v, []byte("val-a-123")) {
		t.Fatalf("loaded value %q", v)
	}
}

func TestIncrementalCommitsAcrossSegments(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force many rolls; reopen must scan them all.
	s := openT(t, dir, Options{SegmentBytes: 2048, CacheNodes: 8})
	tr := buildTrie(200, "s")
	var root mstate.Hash
	for step := 0; step < 5; step++ {
		tr.Put(tk(fmt.Sprintf("step-%d", step)), []byte{byte(step)})
		root = commit(t, tr, s, []byte{byte(step)})
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %v", segs)
	}
	s.Close()

	s2 := openT(t, dir, Options{SegmentBytes: 2048, CacheNodes: 8})
	defer s2.Close()
	got, _ := s2.Root()
	if got != root {
		t.Fatalf("root after multi-segment reopen: %x, want %x", got[:8], root[:8])
	}
	loaded, err := mstate.Load(s2, root)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Root() != tr.Root() {
		t.Fatal("multi-segment load diverged from the source trie")
	}
}

func TestStagedButUncommittedTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	tr := buildTrie(100, "base")
	root1 := commit(t, tr, s, nil)

	// Stage more nodes, flush them to the OS, but never Commit — as if
	// the process died between Trie.Commit and Store.Commit.
	tr2 := tr.Snapshot()
	tr2.Put(tk("uncommitted"), []byte("lost"))
	root2, err := tr2.Commit(s)
	if err != nil {
		t.Fatal(err)
	}
	if root2 == root1 {
		t.Fatal("mutation did not change the root")
	}
	s.Close()

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	got, _ := s2.Root()
	if got != root1 {
		t.Fatalf("recovered root %x, want last durable %x", got[:8], root1[:8])
	}
	if _, err := s2.GetNode(root2); !errors.Is(err, mstate.ErrNodeMissing) {
		t.Fatalf("uncommitted root readable after reopen: %v", err)
	}
	if _, err := mstate.Load(s2, root1); err != nil {
		t.Fatalf("durable root unloadable: %v", err)
	}
}

// Randomized crash-point test: kill a commit mid-batch by truncating
// the log at an arbitrary byte within the uncommitted tail (including
// mid-record cuts), then verify reopen recovers the last durable root
// and a full trie load from it.
func TestRandomizedCrashPointRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 25; iter++ {
		dir := t.TempDir()
		segBytes := int64(1 << 20)
		if iter%3 == 0 {
			segBytes = 4096 // also exercise crashes right after a roll
		}
		s := openT(t, dir, Options{SegmentBytes: segBytes})
		tr := buildTrie(60+rng.Intn(60), fmt.Sprintf("c%d", iter))
		root1 := commit(t, tr, s, []byte("durable"))
		activeSeg := s.active
		durable := s.curOff

		tr2 := tr.Snapshot()
		for j := 0; j < 30+rng.Intn(50); j++ {
			tr2.Put(tk(fmt.Sprintf("crash-%d-%d", iter, j)), []byte("staged"))
		}
		if _, err := tr2.Commit(s); err != nil {
			t.Fatal(err)
		}
		s.Close()

		// The "kill": chop the active segment at a random point at or
		// past the durable offset. (A crash can also leave later,
		// never-committed segments; those must be dropped wholesale.)
		path := filepath.Join(dir, segName(activeSeg))
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() > durable {
			cut := durable + rng.Int63n(st.Size()-durable+1)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatal(err)
			}
		}

		s2, err := Open(dir, Options{SegmentBytes: segBytes, NoSync: true})
		if err != nil {
			t.Fatalf("iter %d: reopen after crash: %v", iter, err)
		}
		got, ok := s2.Root()
		if !ok || got != root1 {
			t.Fatalf("iter %d: recovered root %x ok=%v, want %x", iter, got[:8], ok, root1[:8])
		}
		loaded, err := mstate.Load(s2, root1)
		if err != nil {
			t.Fatalf("iter %d: load recovered root: %v", iter, err)
		}
		if loaded.Root() != root1 {
			t.Fatalf("iter %d: recovered trie root mismatch", iter)
		}
		// Recovery must leave a store that keeps working.
		tr3 := loaded.Snapshot()
		tr3.Put(tk("after-recovery"), []byte("ok"))
		root3 := commit(t, tr3, s2, nil)
		s2.Close()
		s3 := openT(t, dir, Options{SegmentBytes: segBytes})
		if got, _ := s3.Root(); got != root3 {
			t.Fatalf("iter %d: post-recovery commit lost", iter)
		}
		s3.Close()
	}
}

func TestMissingManifestIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	commit(t, buildTrie(20, "m"), s, nil)
	s.Close()
	if err := os.Remove(filepath.Join(dir, manifestName)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrMissingManifest) {
		t.Fatalf("got %v, want ErrMissingManifest", err)
	}
}

func TestCorruptManifestIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	commit(t, buildTrie(20, "cm"), s, nil)
	s.Close()
	path := filepath.Join(dir, manifestName)

	// Torn JSON.
	if err := os.WriteFile(path, []byte(`{"magic":"POLMAN1","root":"ab`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("torn manifest: got %v, want ErrCorruptManifest", err)
	}

	// Valid JSON, wrong checksum (a hand-edited offset).
	if err := os.WriteFile(path, []byte(`{"magic":"POLMAN1","root":"`+fmt.Sprintf("%064x", 0)+`","segment":1,"offset":999,"nodes":1,"crc":12345}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrCorruptManifest) {
		t.Fatalf("bad-crc manifest: got %v, want ErrCorruptManifest", err)
	}
}

func TestTruncatedDurableTailIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	commit(t, buildTrie(40, "tt"), s, nil)
	durable := s.curOff
	s.Close()

	// The manifest promises bytes the segment no longer has.
	if err := os.Truncate(filepath.Join(dir, segName(1)), durable-5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("got %v, want ErrTruncatedRecord", err)
	}
}

func TestPartialFinalRecordIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	commit(t, buildTrie(40, "pf"), s, nil)
	s.Close()

	// Rewrite the manifest so its durable region ends mid-record: the
	// file still has the bytes, but the record structure cannot close
	// at that offset — a partially-written final record.
	man, err := readManifest(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	man.Offset -= 3
	if err := writeManifest(dir, man, true); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrTruncatedRecord) {
		t.Fatalf("got %v, want ErrTruncatedRecord", err)
	}
}

func TestBitFlippedPayloadIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	tr := buildTrie(30, "bf")
	root := commit(t, tr, s, nil)
	// Locate the root's record so the flip is inside a payload we will
	// definitely read back.
	r := s.index[root]
	s.Close()

	path := filepath.Join(dir, segName(r.seg))
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	flipAt := r.off + recHeaderLen + int64(r.ln)/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], flipAt); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], flipAt); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openT(t, dir, Options{})
	defer s2.Close()
	if _, err := s2.GetNode(root); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
	// The same corruption must fail a trie load, never produce state.
	if _, err := mstate.Load(s2, root); !errors.Is(err, ErrChecksum) {
		t.Fatalf("load over corrupt record: got %v, want ErrChecksum", err)
	}
}

func TestMissingSegmentIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{SegmentBytes: 2048})
	tr := buildTrie(300, "ms")
	commit(t, tr, s, nil)
	if s.active < 2 {
		t.Fatalf("test needs multiple segments, active = %d", s.active)
	}
	s.Close()
	if err := os.Remove(filepath.Join(dir, segName(1))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{NoSync: true}); !errors.Is(err, ErrMissingSegment) {
		t.Fatalf("got %v, want ErrMissingSegment", err)
	}
}

func TestClosedStoreIsTyped(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	root := commit(t, buildTrie(5, "cl"), s, nil)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.GetNode(root); !errors.Is(err, ErrClosed) {
		t.Fatalf("GetNode after close: %v", err)
	}
	if err := s.PutBatch([]mstate.Node{{}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("PutBatch after close: %v", err)
	}
	if err := s.Commit(root, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Commit after close: %v", err)
	}
}

func TestReadThroughTinyCache(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{CacheNodes: 2})
	tr := buildTrie(120, "lru")
	root := commit(t, tr, s, nil)
	s.Close()

	s2 := openT(t, dir, Options{CacheNodes: 2})
	defer s2.Close()
	loaded, err := mstate.Load(s2, root) // every read a near-miss
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Root() != tr.Root() {
		t.Fatal("tiny-cache load diverged")
	}
	if s2.cache.len() > 2 {
		t.Fatalf("cache grew to %d entries past its bound", s2.cache.len())
	}
}

func TestGetNodeSeesUnflushedAppends(t *testing.T) {
	dir := t.TempDir()
	// Cache disabled so the read must go through the file, exercising
	// the flush-before-ReadAt path.
	s := openT(t, dir, Options{CacheNodes: -1})
	defer s.Close()
	tr := buildTrie(10, "uf")
	root, err := tr.Commit(s)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := s.GetNode(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) == 0 {
		t.Fatal("empty encoding")
	}
}

func TestGetNodeReturnsOwnedSlice(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	defer s.Close()
	root := commit(t, buildTrie(10, "own"), s, nil)
	enc, err := s.GetNode(root)
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xAA
	}
	again, err := s.GetNode(root)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(again, enc) {
		t.Fatal("caller mutation leaked into the store")
	}
}

func TestCommitOfUnknownRootRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	defer s.Close()
	if err := s.Commit(mstate.Hash{1, 2, 3}, nil); err == nil {
		t.Fatal("commit of a root the log never saw must fail")
	}
	// The empty root is always committable (an empty trie).
	if err := s.Commit(mstate.Hash{}, []byte("empty")); err != nil {
		t.Fatal(err)
	}
}
