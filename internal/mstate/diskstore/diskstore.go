// Package diskstore is the disk-backed mstate.NodeStore: an append-only,
// content-addressed node log with crash-safe commits.
//
// Layout of a store directory:
//
//	seg-000001.log   append-only segment: 8-byte magic, then records
//	seg-000002.log   ... (a new segment starts once the previous one
//	                 crosses Options.SegmentBytes)
//	MANIFEST         commit manifest: (root, segment, offset, meta),
//	                 written atomically (temp + fsync + rename) only
//	                 after the nodes it references are durable
//
// Each record is
//
//	len(payload) uint32 BE | hash [32]byte | payload | crc32 uint32 BE
//
// with the CRC (IEEE) taken over len‖hash‖payload. Records are never
// rewritten; the hash is the content address (sha256 of the payload per
// the mstate node encoding), so equal nodes are stored once.
//
// Durability protocol: PutBatch appends records to the active segment
// through a buffered writer; Commit flushes, fsyncs the segment, and
// only then replaces MANIFEST with one pointing at (root, segment,
// offset). A crash between those steps leaves a torn tail past the
// manifest offset, which Open truncates away; the store always reopens
// at the last committed root, never a partial one.
package diskstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"agnopol/internal/mstate"
)

// Typed failure classes, so callers can tell corruption apart from
// absence and from ordinary I/O errors (all wrapped with context).
var (
	// ErrMissingManifest: segment files exist but no MANIFEST does.
	// The log alone cannot say which prefix is committed, so this is
	// corruption (a deleted manifest), not a fresh store.
	ErrMissingManifest = errors.New("diskstore: segments present but manifest missing")
	// ErrCorruptManifest: MANIFEST exists but fails parsing, its
	// checksum, or its magic.
	ErrCorruptManifest = errors.New("diskstore: corrupt manifest")
	// ErrMissingSegment: the manifest references a segment that is not
	// on disk (or the numbering has a gap below it).
	ErrMissingSegment = errors.New("diskstore: missing segment")
	// ErrTruncatedRecord: the durable region promised by the manifest
	// ends mid-record, or a sealed segment does.
	ErrTruncatedRecord = errors.New("diskstore: truncated record inside durable region")
	// ErrChecksum: a record failed its CRC on read.
	ErrChecksum = errors.New("diskstore: record checksum mismatch")
	// ErrClosed: the store has been closed.
	ErrClosed = errors.New("diskstore: store is closed")
)

const (
	segMagic      = "POLSEG1\n"
	segHeaderLen  = int64(len(segMagic))
	recHeaderLen  = 4 + 32 // len + hash
	recTrailerLen = 4      // crc
	manifestName  = "MANIFEST"
)

// Options tunes a Store. The zero value picks sensible defaults.
type Options struct {
	// SegmentBytes rolls the active segment once it crosses this size.
	// Default 64 MiB.
	SegmentBytes int64
	// CacheNodes bounds the LRU node cache (entries). Default 4096;
	// negative disables caching.
	CacheNodes int
	// NoSync skips every fsync. Only for tests that measure logic, not
	// durability.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.CacheNodes == 0 {
		o.CacheNodes = 4096
	}
	return o
}

// ref locates one record inside the log.
type ref struct {
	seg int
	off int64 // record start (length field)
	ln  int   // payload length
}

// Store is a disk-backed mstate.NodeStore. All methods are safe for
// concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	opts Options

	index map[mstate.Hash]ref
	cache *lruCache

	files      map[int]*os.File // open segment files, keyed by number
	active     int              // active (append) segment number
	w          *bufio.Writer    // buffers appends to files[active]
	curOff     int64            // logical end of the active segment
	flushedOff int64            // bytes of the active segment visible to ReadAt

	root    mstate.Hash
	hasRoot bool
	meta    []byte

	closed bool
}

// Open opens (or creates) the store in dir, recovering to the last
// committed manifest: the index is rebuilt by scanning segments up to
// the manifest's (segment, offset), any torn tail past it is truncated,
// and uncommitted newer segments are removed. An empty or absent dir
// initialises a fresh store; segments without a manifest are corruption
// (ErrMissingManifest).
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: create dir: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	man, manErr := readManifest(filepath.Join(dir, manifestName))
	if manErr != nil && !errors.Is(manErr, os.ErrNotExist) {
		return nil, manErr
	}

	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[mstate.Hash]ref),
		cache: newLRUCache(opts.CacheNodes),
		files: make(map[int]*os.File),
	}

	if man == nil {
		if len(segs) > 0 {
			return nil, fmt.Errorf("%w: found %s without %s in %s",
				ErrMissingManifest, segName(segs[0]), manifestName, dir)
		}
		if err := s.startSegment(1); err != nil {
			return nil, err
		}
		return s, nil
	}

	// Committed state exists: every segment 1..man.Segment must be
	// present; anything newer was never committed and is dropped.
	present := make(map[int]bool, len(segs))
	for _, n := range segs {
		present[n] = true
	}
	for n := 1; n <= man.Segment; n++ {
		if !present[n] {
			return nil, fmt.Errorf("%w: %s referenced by manifest", ErrMissingSegment, segName(n))
		}
	}
	for _, n := range segs {
		if n > man.Segment {
			if err := os.Remove(filepath.Join(dir, segName(n))); err != nil {
				return nil, fmt.Errorf("diskstore: drop uncommitted %s: %w", segName(n), err)
			}
		}
	}

	for n := 1; n <= man.Segment; n++ {
		f, err := os.OpenFile(filepath.Join(dir, segName(n)), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("diskstore: open %s: %w", segName(n), err)
		}
		s.files[n] = f
		limit := int64(-1) // sealed segments scan to their full size
		if n == man.Segment {
			limit = man.Offset
		}
		end, err := s.scanSegment(n, f, limit)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		if n == man.Segment {
			// Torn tail from a crash after flush but before commit:
			// drop everything past the durable offset.
			if err := f.Truncate(end); err != nil {
				s.closeFiles()
				return nil, fmt.Errorf("diskstore: truncate torn tail of %s: %w", segName(n), err)
			}
			if _, err := f.Seek(end, 0); err != nil {
				s.closeFiles()
				return nil, fmt.Errorf("diskstore: seek %s: %w", segName(n), err)
			}
			s.active = n
			s.curOff = end
			s.flushedOff = end
			s.w = bufio.NewWriterSize(f, 1<<20)
		}
	}
	s.root = man.Root
	s.hasRoot = true
	s.meta = man.Meta
	return s, nil
}

// scanSegment validates the header and walks records up to limit (or
// the file size when limit < 0), adding each to the index. It returns
// the byte offset where the durable region ends.
func (s *Store) scanSegment(n int, f *os.File, limit int64) (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("diskstore: stat %s: %w", segName(n), err)
	}
	size := st.Size()
	if limit < 0 {
		limit = size
	}
	if size < limit {
		return 0, fmt.Errorf("%w: %s is %d bytes but the manifest requires %d",
			ErrTruncatedRecord, segName(n), size, limit)
	}
	if limit < segHeaderLen {
		return 0, fmt.Errorf("%w: %s shorter than its header", ErrTruncatedRecord, segName(n))
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return 0, fmt.Errorf("diskstore: read %s header: %w", segName(n), err)
	}
	if string(magic[:]) != segMagic {
		return 0, fmt.Errorf("%w: %s has bad magic %q", ErrChecksum, segName(n), magic[:])
	}
	off := segHeaderLen
	var hdr [recHeaderLen]byte
	for off < limit {
		if off+recHeaderLen+recTrailerLen > limit {
			return 0, fmt.Errorf("%w: %s record header at %d runs past %d",
				ErrTruncatedRecord, segName(n), off, limit)
		}
		if _, err := f.ReadAt(hdr[:], off); err != nil {
			return 0, fmt.Errorf("diskstore: read %s at %d: %w", segName(n), off, err)
		}
		ln := int64(binary.BigEndian.Uint32(hdr[:4]))
		recEnd := off + recHeaderLen + ln + recTrailerLen
		if recEnd > limit {
			return 0, fmt.Errorf("%w: %s record at %d ends at %d, past %d",
				ErrTruncatedRecord, segName(n), off, recEnd, limit)
		}
		var h mstate.Hash
		copy(h[:], hdr[4:])
		if _, ok := s.index[h]; !ok {
			s.index[h] = ref{seg: n, off: off, ln: int(ln)}
		}
		off = recEnd
	}
	return off, nil
}

// startSegment creates segment n with its header and makes it active.
func (s *Store) startSegment(n int) error {
	f, err := os.OpenFile(filepath.Join(s.dir, segName(n)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("diskstore: create %s: %w", segName(n), err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: write %s header: %w", segName(n), err)
	}
	s.files[n] = f
	s.active = n
	s.w = bufio.NewWriterSize(f, 1<<20)
	s.curOff = segHeaderLen
	s.flushedOff = segHeaderLen
	return nil
}

// roll seals the active segment (flush + fsync) and starts the next.
func (s *Store) roll() error {
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.syncFile(s.files[s.active]); err != nil {
		return err
	}
	return s.startSegment(s.active + 1)
}

// PutBatch implements mstate.NodeStore: appends every unknown node to
// the active segment, rolling segments as they fill. Records become
// durable only at the next Commit.
func (s *Store) PutBatch(nodes []mstate.Node) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	var hdr [recHeaderLen]byte
	var tail [recTrailerLen]byte
	for _, n := range nodes {
		if _, ok := s.index[n.Hash]; ok {
			continue
		}
		if s.curOff >= s.opts.SegmentBytes {
			if err := s.roll(); err != nil {
				return err
			}
		}
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(n.Enc)))
		copy(hdr[4:], n.Hash[:])
		crc := crc32.ChecksumIEEE(hdr[:])
		crc = crc32.Update(crc, crc32.IEEETable, n.Enc)
		binary.BigEndian.PutUint32(tail[:], crc)
		if _, err := s.w.Write(hdr[:]); err != nil {
			return fmt.Errorf("diskstore: append: %w", err)
		}
		if _, err := s.w.Write(n.Enc); err != nil {
			return fmt.Errorf("diskstore: append: %w", err)
		}
		if _, err := s.w.Write(tail[:]); err != nil {
			return fmt.Errorf("diskstore: append: %w", err)
		}
		s.index[n.Hash] = ref{seg: s.active, off: s.curOff, ln: len(n.Enc)}
		s.curOff += recHeaderLen + int64(len(n.Enc)) + recTrailerLen
		s.cache.put(n.Hash, append([]byte(nil), n.Enc...))
	}
	return nil
}

// GetNode implements mstate.NodeStore: LRU cache first, then a CRC-
// checked read from the segment the index points at. The returned slice
// is owned by the caller.
func (s *Store) GetNode(h mstate.Hash) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if enc, ok := s.cache.get(h); ok {
		return append([]byte(nil), enc...), nil
	}
	r, ok := s.index[h]
	if !ok {
		return nil, fmt.Errorf("%w: %x", mstate.ErrNodeMissing, h[:8])
	}
	// Reads hit the file through ReadAt, which cannot see bytes still
	// sitting in the append buffer — push them down first.
	if r.seg == s.active && r.off+recHeaderLen+int64(r.ln)+recTrailerLen > s.flushedOff {
		if err := s.flushLocked(); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, recHeaderLen+r.ln+recTrailerLen)
	if _, err := s.files[r.seg].ReadAt(buf, r.off); err != nil {
		return nil, fmt.Errorf("diskstore: read %s at %d: %w", segName(r.seg), r.off, err)
	}
	if got := binary.BigEndian.Uint32(buf[:4]); int(got) != r.ln {
		return nil, fmt.Errorf("%w: %s at %d: length %d, index says %d",
			ErrChecksum, segName(r.seg), r.off, got, r.ln)
	}
	want := binary.BigEndian.Uint32(buf[len(buf)-recTrailerLen:])
	if crc := crc32.ChecksumIEEE(buf[:len(buf)-recTrailerLen]); crc != want {
		return nil, fmt.Errorf("%w: %s at %d: crc %08x, stored %08x",
			ErrChecksum, segName(r.seg), r.off, crc, want)
	}
	var stored mstate.Hash
	copy(stored[:], buf[4:recHeaderLen])
	if stored != h {
		return nil, fmt.Errorf("%w: %s at %d: stored hash %x, want %x",
			ErrChecksum, segName(r.seg), r.off, stored[:8], h[:8])
	}
	enc := append([]byte(nil), buf[recHeaderLen:len(buf)-recTrailerLen]...)
	s.cache.put(h, append([]byte(nil), enc...))
	return enc, nil
}

// Has implements mstate.NodeStore.
func (s *Store) Has(h mstate.Hash) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, ErrClosed
	}
	_, ok := s.index[h]
	return ok, nil
}

// Flush implements mstate.NodeStore: pushes buffered appends to the OS.
// Durability still requires Commit.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("diskstore: flush %s: %w", segName(s.active), err)
	}
	s.flushedOff = s.curOff
	return nil
}

// Commit makes every node written so far durable and atomically
// publishes root (with an opaque meta blob, e.g. a chain checkpoint) as
// the store's committed state: flush, fsync the active segment, then
// replace MANIFEST via temp-file + rename. On reopen the store recovers
// exactly to this point.
func (s *Store) Commit(root mstate.Hash, meta []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if root != (mstate.Hash{}) {
		if _, ok := s.index[root]; !ok {
			return fmt.Errorf("diskstore: commit of root %x not present in the log", root[:8])
		}
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.syncFile(s.files[s.active]); err != nil {
		return err
	}
	man := &manifest{
		Root:    root,
		Segment: s.active,
		Offset:  s.curOff,
		Nodes:   len(s.index),
		Meta:    meta,
	}
	if err := writeManifest(s.dir, man, s.opts.NoSync); err != nil {
		return err
	}
	s.root = root
	s.hasRoot = true
	s.meta = append([]byte(nil), meta...)
	return nil
}

// Root returns the last committed root, and whether one exists.
func (s *Store) Root() (mstate.Hash, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.root, s.hasRoot
}

// Meta returns a copy of the meta blob from the last commit.
func (s *Store) Meta() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.meta...)
}

// Len is the number of indexed nodes (committed or staged).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Close implements mstate.NodeStore: flushes buffered appends and
// closes every segment file. Staged-but-uncommitted records are not
// made durable — reopen recovers the last Commit.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	err := s.flushLocked()
	s.closeFiles()
	s.closed = true
	return err
}

func (s *Store) closeFiles() {
	for _, f := range s.files {
		f.Close()
	}
}

func (s *Store) syncFile(f *os.File) error {
	if s.opts.NoSync {
		return nil
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("diskstore: fsync: %w", err)
	}
	return nil
}

func segName(n int) string { return fmt.Sprintf("seg-%06d.log", n) }

// listSegments returns the sorted segment numbers present in dir.
func listSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("diskstore: read dir: %w", err)
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "seg-%06d.log", &n); err == nil && segName(n) == e.Name() {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}
