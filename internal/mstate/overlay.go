package mstate

// Overlay is a speculative write set over a base trie: a private fork
// that absorbs reads and writes, plus a journal of the final value of
// every touched key so the whole overlay can be replayed onto the base
// (or an ancestor overlay) in one pass at commit time. Discarding an
// overlay is dropping the pointer — the base never saw it.
//
// Overlays nest: Fork() opens a child whose writes fold into the parent
// via Adopt(), which is how a per-group transaction rolls back inside a
// per-shard overlay without disturbing the shard's other groups.
type Overlay struct {
	fork   *Trie
	writes map[Key]write
}

// write is the journaled final state of one key: a value, or a delete.
type write struct {
	val []byte
	del bool
}

// NewOverlay opens an overlay over base. The base must not be mutated
// while the overlay is live (snapshot it first if needed).
func NewOverlay(base *Trie) *Overlay {
	return &Overlay{fork: base.Snapshot(), writes: make(map[Key]write)}
}

// Get reads through the overlay (own writes shadow the base).
func (o *Overlay) Get(k Key) ([]byte, bool) { return o.fork.Get(k) }

// Has reads through the overlay.
func (o *Overlay) Has(k Key) bool { return o.fork.Has(k) }

// Len is the number of live keys seen through the overlay.
func (o *Overlay) Len() int { return o.fork.Len() }

// Put writes k=v into the overlay only.
func (o *Overlay) Put(k Key, v []byte) {
	o.fork.Put(k, v)
	stored, _ := o.fork.Get(k) // journal the trie-owned copy
	o.writes[k] = write{val: stored}
}

// Delete removes k in the overlay only.
func (o *Overlay) Delete(k Key) {
	o.fork.Delete(k)
	o.writes[k] = write{del: true}
}

// Fork opens a child overlay whose writes are invisible to o until
// Adopt.
func (o *Overlay) Fork() *Overlay { return NewOverlay(o.fork) }

// Adopt folds a committed child overlay's writes into o. The child must
// have been created by o.Fork and must not be used afterwards.
func (o *Overlay) Adopt(child *Overlay) {
	o.fork = child.fork.Snapshot()
	for k, w := range child.writes {
		o.writes[k] = w
	}
}

// CommitTo replays the journal onto dst, which is normally the base the
// overlay was opened on (after any sibling overlays were checked for
// disjointness). Replay order does not matter: the journal holds final
// values, one entry per key.
func (o *Overlay) CommitTo(dst *Trie) {
	for k, w := range o.writes {
		if w.del {
			dst.Delete(k)
		} else {
			dst.Put(k, w.val)
		}
	}
}

// Touched returns the number of distinct keys written or deleted.
func (o *Overlay) Touched() int { return len(o.writes) }
