package core

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"strconv"

	"agnopol/internal/hypercube"
	"agnopol/internal/obs"
)

// DHT-sharded contract discovery — the sharding vocabulary of the block
// executor extended to the hypercube. Flat discovery routes every area's
// lookup to the node the OLC dual encoding designates; under per-area
// contract traffic that concentrates discovery load on whatever nodes the
// encoding happens to pick, with no relation to how the chains shard
// execution. Sharded discovery instead derives the target from
// AreaRegistry.ShardOf — the same area→shard affinity the block builder
// partitions by — and spreads each shard's areas over a small neighborhood
// of hypercube nodes anchored at a shard-specific vertex. Lookup load then
// balances across the cube the way block execution already balances across
// shards, and the per-shard counters make the balance observable.

// DHTDiscovery routes per-area contract discovery through the hypercube in
// one of two modes. Flat (Sharded=false) is the paper's scheme: the target
// node is the OLC dual encoding of the area code. Sharded (Sharded=true)
// derives the target from the registry's shard affinity: areas of shard s
// land in the neighborhood of s's anchor vertex, one member per area. Both
// modes resolve the same area to the same contract handle — only the
// placement inside the cube differs — which is what the flat-vs-sharded
// equivalence tests pin down.
type DHTDiscovery struct {
	Sys *System
	Reg *AreaRegistry
	// Sharded selects ShardOf-affine placement instead of the flat OLC
	// dual encoding.
	Sharded bool

	// reg receives the per-shard discovery-load counters; nil when
	// unobserved.
	reg *obs.Registry
}

// NewDHTDiscovery builds a discovery router over the system's hypercube.
// o may be nil; when set, every lookup bumps
// core_dht_discovery_total{mode,shard}.
func NewDHTDiscovery(sys *System, reg *AreaRegistry, sharded bool, o *obs.Obs) *DHTDiscovery {
	d := &DHTDiscovery{Sys: sys, Reg: reg, Sharded: sharded}
	if o != nil {
		d.reg = o.Registry
		d.reg.Help("core_dht_discovery_total",
			"Contract-discovery lookups routed through the hypercube, by shard.")
	}
	return d
}

// ShardAnchor is the hypercube vertex anchoring discovery shard s of an
// r-dimensional cube: the shard index bit-reversed within r bits, so
// consecutive shards land at maximally separated vertices instead of
// clustering in one corner. Shard counts above 2^r wrap.
func ShardAnchor(s, r int) uint64 {
	return bits.Reverse64(uint64(s)%(1<<uint(r))) >> (64 - uint(r))
}

// neighborIndex picks which member of a shard's (r+1)-node neighborhood —
// the anchor and its r direct neighbours — serves an area. A second,
// domain-tagged FNV hash keeps the choice independent of the ShardOf hash,
// so a shard's areas spread over the whole neighborhood rather than
// re-colliding on one member.
func neighborIndex(area string, r int) int {
	h := fnv.New64a()
	h.Write([]byte("dht-nbr:"))
	h.Write([]byte(area))
	return int(h.Sum64() % uint64(r+1))
}

// Target returns the hypercube node responsible for an area's discovery
// entry in this router's mode. Sharded targets are a pure function of
// (area, shard count, r) — every process routes an area the same way.
func (d *DHTDiscovery) Target(area string) (uint64, error) {
	if !d.Sharded {
		return d.Sys.NodeIDForOLC(area)
	}
	anchor := ShardAnchor(d.Reg.ShardOf(area), d.Sys.R)
	m := neighborIndex(area, d.Sys.R)
	if m == 0 {
		return anchor, nil
	}
	return anchor ^ (1 << uint(m-1)), nil
}

// Publish stores an area's contract ID at the mode's target node and
// registers the handle for ID resolution. via is the publisher's entry
// node.
func (d *DHTDiscovery) Publish(via uint64, area string, h *Handle) (int, error) {
	target, err := d.Target(area)
	if err != nil {
		return 0, err
	}
	d.Sys.RegisterHandle(h)
	return d.Sys.Cube.Put(via, target, area, &hypercube.Entry{ContractID: h.ID(), OLC: area})
}

// Lookup resolves an area to its contract handle through the cube,
// returning the handle, the hop count the route took, and whether the area
// was found. via is the querying user's entry node.
func (d *DHTDiscovery) Lookup(via uint64, area string) (*Handle, int, bool, error) {
	target, err := d.Target(area)
	if err != nil {
		return nil, 0, false, err
	}
	d.count(area)
	entry, hops, ok, err := d.Sys.Cube.Get(via, target, area)
	if err != nil || !ok {
		return nil, hops, false, err
	}
	h, ok := d.Sys.HandleByID(entry.ContractID)
	if !ok {
		return nil, hops, false, fmt.Errorf("core: hypercube references unknown contract %q", entry.ContractID)
	}
	return h, hops, true, nil
}

// count bumps the per-shard discovery-load counter.
func (d *DHTDiscovery) count(area string) {
	if d.reg == nil {
		return
	}
	mode := "flat"
	if d.Sharded {
		mode = "sharded"
	}
	d.reg.Counter("core_dht_discovery_total",
		obs.L("mode", mode),
		obs.L("shard", strconv.Itoa(d.Reg.ShardOf(area)))).Inc()
}
