package core

import (
	"strings"
	"testing"

	"agnopol/internal/algorand"
	"agnopol/internal/did"
	"agnopol/internal/eth"
	"agnopol/internal/geo"
	"agnopol/internal/ipfs"
)

// bologna is the reference location of the thesis' examples.
var bologna = geo.LatLng{Lat: 44.4949, Lng: 11.3426}

func newTestSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(42)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func connectors(t *testing.T) []Connector {
	t.Helper()
	return []Connector{
		NewEVMConnector(eth.NewChain(eth.Goerli(), 7)),
		NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), 7)),
	}
}

// rewardFor keeps rewards meaningful but affordable in each unit.
func rewardFor(c Connector) uint64 {
	if c.Unit().Name == "ALGO" {
		return 10_000 // 0.01 ALGO
	}
	return 1e15 // 0.001 ETH/MATIC
}

func TestFullPipelineBothChains(t *testing.T) {
	for _, conn := range connectors(t) {
		conn := conn
		t.Run(conn.Name(), func(t *testing.T) {
			sys := newTestSystem(t)
			witness, err := NewWitness(sys, geo.Offset(bologna, 3, 2))
			if err != nil {
				t.Fatal(err)
			}
			verifier, err := NewVerifier(sys)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := verifier.EnsureAccount(conn, 10); err != nil {
				t.Fatal(err)
			}

			reward := rewardFor(conn)

			// Creator prover deploys; a second prover attaches.
			creator, err := NewProver(sys, bologna)
			if err != nil {
				t.Fatal(err)
			}
			creatorAcct, err := creator.EnsureAccount(conn, 10)
			if err != nil {
				t.Fatal(err)
			}
			// The attacher stands at the same spot so both claims encode
			// to the same 10-digit OLC cell (the thesis simulation groups
			// four users per location for exactly this reason).
			attacher, err := NewProver(sys, bologna)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := attacher.EnsureAccount(conn, 10); err != nil {
				t.Fatal(err)
			}

			submit := func(p *Prover, title string) *SubmissionResult {
				t.Helper()
				cid, err := p.UploadReport(Report{
					Title:       title,
					Description: "oily spots on the river Reno",
					Category:    "water-pollution",
				})
				if err != nil {
					t.Fatal(err)
				}
				acct, _ := p.Account(conn)
				proof, err := p.RequestProof(witness, cid, acct.Address())
				if err != nil {
					t.Fatalf("RequestProof: %v", err)
				}
				res, err := p.SubmitProof(conn, proof, reward)
				if err != nil {
					t.Fatalf("SubmitProof: %v", err)
				}
				return res
			}

			res1 := submit(creator, "report-1")
			if !res1.Deployed {
				t.Fatal("first submission should deploy the contract")
			}
			if res1.Op.Latency <= 0 {
				t.Fatal("deploy latency must be positive")
			}
			res2 := submit(attacher, "report-2")
			if res2.Deployed {
				t.Fatal("second submission should attach, not deploy")
			}
			if res2.Handle.ID() != res1.Handle.ID() {
				t.Fatalf("attacher used %s, want %s", res2.Handle.ID(), res1.Handle.ID())
			}

			h := res1.Handle

			// Fund rewards for both provers.
			if _, err := verifier.FundContract(conn, h, 2*reward); err != nil {
				t.Fatalf("FundContract: %v", err)
			}
			if got := conn.ContractBalance(h); got != 2*reward {
				t.Fatalf("contract balance %d, want %d", got, 2*reward)
			}

			// Verify both provers; rewards must arrive; hypercube must
			// contain both CIDs afterwards.
			for _, p := range []*Prover{creator, attacher} {
				acct, _ := p.Account(conn)
				before := conn.Balance(acct).Base.Uint64()
				ver, err := verifier.VerifyProver(conn, h, p.DID)
				if err != nil {
					t.Fatalf("VerifyProver(%s): %v", p.DID, err)
				}
				if !ver.Accepted {
					t.Fatalf("verification of %s rejected: %s", p.DID, ver.Reason)
				}
				after := conn.Balance(acct).Base.Uint64()
				if after != before+reward {
					t.Fatalf("prover balance %d -> %d, want +%d reward", before, after, reward)
				}
				if ver.Report.Category != "water-pollution" {
					t.Fatalf("verified report category %q", ver.Report.Category)
				}
			}
			if got := conn.ContractBalance(h); got != 0 {
				t.Fatalf("contract balance after verifications %d, want 0", got)
			}

			// Double verification must fail: the map entry is gone.
			if _, err := verifier.VerifyProver(conn, h, creator.DID); err == nil {
				t.Fatal("verifying an already-verified prover should fail")
			}

			// The hypercube now serves both validated reports.
			code, _ := creator.ClaimedOLC()
			target, err := sys.NodeIDForOLC(code)
			if err != nil {
				t.Fatal(err)
			}
			entry, _, ok, err := sys.Cube.Get(0, target, code)
			if err != nil || !ok {
				t.Fatalf("hypercube entry missing: %v", err)
			}
			if len(entry.CIDs) != 2 {
				t.Fatalf("hypercube holds %d CIDs, want 2", len(entry.CIDs))
			}

			// Creator closes the (already empty) contract; a third party
			// cannot.
			if _, _, err := conn.Call(creatorAcct, h, "close", 0); err != nil {
				t.Fatalf("creator close: %v", err)
			}
		})
	}
}

func TestSpoofedLocationRejectedByWitness(t *testing.T) {
	sys := newTestSystem(t)
	witness, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(sys, geo.Offset(bologna, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	// The attacker claims to be in Milan while standing in Bologna — the
	// Foursquare/Uber attack of §1.1.
	prover.Device.Spoof(geo.LatLng{Lat: 45.4642, Lng: 9.19})
	cid, err := prover.UploadReport(Report{Title: "fake", Category: "spam"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = prover.RequestProof(witness, cid, [20]byte{1})
	if err == nil {
		t.Fatal("witness must refuse to certify a spoofed location")
	}
	if !strings.Contains(err.Error(), ErrLocationClaim.Error()) {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestOutOfRangeProverRejected(t *testing.T) {
	sys := newTestSystem(t)
	witness, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	// 500 m away: the claimed position is honest, but Bluetooth cannot
	// reach, so no proof exchange can even happen.
	prover, err := NewProver(sys, geo.Offset(bologna, 500, 0))
	if err != nil {
		t.Fatal(err)
	}
	cid, err := prover.UploadReport(Report{Title: "far", Category: "noise"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = prover.RequestProof(witness, cid, [20]byte{1})
	if err == nil || !strings.Contains(err.Error(), ErrNotInRange.Error()) {
		t.Fatalf("want Bluetooth range rejection, got %v", err)
	}
}

func TestReplayNonceRejected(t *testing.T) {
	sys := newTestSystem(t)
	witness, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(sys, geo.Offset(bologna, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	cid, err := prover.UploadReport(Report{Title: "r", Category: "c"})
	if err != nil {
		t.Fatal(err)
	}
	code, _ := prover.ClaimedOLC()
	ch, err := witness.BeginAuth(prover.DID)
	if err != nil {
		t.Fatal(err)
	}
	resp := did.SignChallenge(prover.Key, ch)
	nonce := witness.IssueNonce(prover.DID)
	req := ProofRequest{DID: prover.DID, OLC: code, Nonce: nonce, CID: cid, Wallet: [20]byte{1}}
	if _, err := witness.HandleProofRequest(prover.Device, resp, req); err != nil {
		t.Fatalf("first request should pass: %v", err)
	}
	// Replaying the same nonce must fail.
	if _, err := witness.HandleProofRequest(prover.Device, resp, req); err == nil {
		t.Fatal("replayed nonce must be rejected")
	}
}

func TestSelfSignedProofRejectedByVerifier(t *testing.T) {
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 9))
	verifier, err := NewVerifier(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 10); err != nil {
		t.Fatal(err)
	}
	// The malicious prover registers as a witness too, then signs its own
	// proof.
	prover, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := prover.EnsureAccount(conn, 10)
	if err != nil {
		t.Fatal(err)
	}
	sys.CA.RegisterWitness(prover.Key.Public)

	cid, err := prover.UploadReport(Report{Title: "self", Category: "fraud"})
	if err != nil {
		t.Fatal(err)
	}
	code, _ := prover.ClaimedOLC()
	req := ProofRequest{DID: prover.DID, OLC: code, Nonce: 99, CID: cid, Wallet: acct.Address()}
	h := req.Hash()
	proof := &LocationProof{
		Request:    req,
		Hash:       h,
		Signature:  prover.Key.Sign(h[:]),
		WitnessPub: prover.Key.Public,
	}
	res, err := prover.SubmitProof(conn, proof, rewardFor(conn))
	if err != nil {
		t.Fatalf("staging the forged proof on-chain should succeed: %v", err)
	}
	ver, err := verifier.VerifyProver(conn, res.Handle, prover.DID)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("self-signed proof must be rejected")
	}
	if ver.Reason != ErrSelfSigned.Error() {
		t.Fatalf("rejection reason %q, want self-signed", ver.Reason)
	}
	// Garbage-in: the rejected CID must not be in the hypercube.
	target, err := sys.NodeIDForOLC(code)
	if err != nil {
		t.Fatal(err)
	}
	entry, _, ok, err := sys.Cube.Get(0, target, code)
	if err != nil {
		t.Fatal(err)
	}
	if ok && len(entry.CIDs) > 0 {
		t.Fatal("rejected report leaked into the hypercube")
	}
}

func TestCIDSubstitutionDetected(t *testing.T) {
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 10))
	verifier, err := NewVerifier(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 10); err != nil {
		t.Fatal(err)
	}
	witness, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(sys, geo.Offset(bologna, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	acct, err := prover.EnsureAccount(conn, 10)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := prover.UploadReport(Report{Title: "honest", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := prover.RequestProof(witness, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	// After obtaining the proof the prover swaps in different content — a
	// new CID the witness never attested (§2.3.1.1).
	evil, err := sys.IPFS.Add(string(prover.DID), []byte(`{"title":"propaganda"}`))
	if err != nil {
		t.Fatal(err)
	}
	proof.Request.CID = evil
	res, err := prover.SubmitProof(conn, proof, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := verifier.VerifyProver(conn, res.Handle, prover.DID)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("CID substitution must be rejected")
	}
	if ver.Reason != ErrHashMismatch.Error() {
		t.Fatalf("rejection reason %q, want hash mismatch", ver.Reason)
	}
}

func TestUnpinnedReportDisappearsBeforeVerification(t *testing.T) {
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 11))
	verifier, err := NewVerifier(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 10); err != nil {
		t.Fatal(err)
	}
	witness, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(sys, geo.Offset(bologna, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	acct, err := prover.EnsureAccount(conn, 10)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := prover.UploadReport(Report{Title: "ephemeral", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := prover.RequestProof(witness, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prover.SubmitProof(conn, proof, rewardFor(conn)); err != nil {
		t.Fatal(err)
	}
	// The prover unpins; garbage collection drops the only copy (§1.5's
	// availability caveat) before the verifier gets to it.
	if err := sys.IPFS.Unpin(string(prover.DID), cid); err != nil {
		t.Fatal(err)
	}
	sys.IPFS.GarbageCollect()
	h, _, _, err := sys.LookupContract(0, proof.Request.OLC)
	if err != nil || h == nil {
		t.Fatalf("contract lookup failed: %v", err)
	}
	ver, err := verifier.VerifyProver(conn, h, prover.DID)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("verification must fail when the report content is gone")
	}
	if !strings.Contains(ver.Reason, ipfs.ErrNotFound.Error()) {
		t.Fatalf("rejection reason %q, want content-not-found", ver.Reason)
	}
}
