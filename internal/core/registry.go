package core

import (
	"fmt"
	"hash/fnv"
	"sync"

	"agnopol/internal/chain"
	"agnopol/internal/lang"
)

// AreaRegistry is the factory-pattern directory of per-area contracts: one
// deployed contract per Open Location Code area, as §4.1 prescribes, with a
// stable area→shard affinity so load harnesses and connectors can route and
// attribute traffic per execution shard. The registry is safe for
// concurrent use — soak workers look up handles while new areas deploy.
type AreaRegistry struct {
	shards int

	mu    sync.RWMutex
	areas map[string]*Handle
	order []string
}

// NewAreaRegistry creates a registry routing areas across the given number
// of execution shards (clamped to at least 1).
func NewAreaRegistry(shards int) *AreaRegistry {
	if shards < 1 {
		shards = 1
	}
	return &AreaRegistry{
		shards: shards,
		areas:  make(map[string]*Handle),
	}
}

// Shards returns the registry's shard count.
func (r *AreaRegistry) Shards() int { return r.shards }

// Register binds an area code to its deployed contract handle. Registering
// the same area twice is an error — the factory deploys one contract per
// area.
func (r *AreaRegistry) Register(area string, h *Handle) error {
	if area == "" {
		return fmt.Errorf("core: empty area code")
	}
	if h == nil {
		return fmt.Errorf("core: nil handle for area %s", area)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.areas[area]; dup {
		return fmt.Errorf("core: area %s already registered", area)
	}
	r.areas[area] = h
	r.order = append(r.order, area)
	return nil
}

// Lookup returns the handle deployed for an area.
func (r *AreaRegistry) Lookup(area string) (*Handle, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.areas[area]
	return h, ok
}

// Areas lists the registered area codes in registration order.
func (r *AreaRegistry) Areas() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Len is the number of registered areas.
func (r *AreaRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.areas)
}

// ShardOf is the stable shard affinity of an area: an FNV-1a hash of the
// code modulo the shard count. It does not depend on registration order, so
// every run (and every process) routes an area the same way.
func (r *AreaRegistry) ShardOf(area string) int {
	h := fnv.New64a()
	h.Write([]byte(area))
	return int(h.Sum64() % uint64(r.shards))
}

// ConflictKey derives the execution-conflict key of an area's contract —
// the key the chains' partitioners would assign traffic targeting it. False
// when the area is unknown.
func (r *AreaRegistry) ConflictKey(area string) (chain.ConflictKey, bool) {
	h, ok := r.Lookup(area)
	if !ok {
		return chain.ConflictKey{}, false
	}
	if h.AppID != 0 {
		return chain.AppKey(h.AppID), true
	}
	return chain.ContractKey(h.EVMAddr), true
}

// BuildCheckinProgram is the soak-harness workload contract: a minimal
// per-area check-in counter. Unlike the full PoL contract it has no seat
// cap, so M areas × K users can hammer it for T simulated time without
// business-rule rejections — the measured cost is almost purely the
// submit→execute→block pipeline under test.
//
//   - the constructor stores the area code;
//   - checkin(uid, round) records the user's latest round and bumps the
//     per-area counter;
//   - getCheckins / getArea expose state for cheap off-chain assertions.
func BuildCheckinProgram() *lang.Program {
	p := lang.NewProgram("area-checkin")

	p.DeclareGlobal("area", lang.TBytes)
	p.DeclareGlobal("checkins", lang.TUInt)
	p.DeclareMap("last_seen", lang.TUInt, lang.TUInt)

	p.SetConstructor(
		[]lang.Param{{Name: "area", Type: lang.TBytes}},
		&lang.SetGlobal{Name: "area", Value: lang.A(0)},
		&lang.SetGlobal{Name: "checkins", Value: lang.U(0)},
	)

	p.AddAPI(&lang.API{
		Name: "checkin",
		Params: []lang.Param{
			{Name: "uid", Type: lang.TUInt},
			{Name: "round", Type: lang.TUInt},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.MapSet{Map: "last_seen", Key: lang.A(0), Value: lang.A(1)},
			&lang.SetGlobal{Name: "checkins", Value: lang.Add(lang.G("checkins"), lang.U(1))},
			&lang.Return{Value: lang.G("checkins")},
		},
	})

	p.AddView("getCheckins", lang.TUInt, lang.G("checkins"))
	p.AddView("getArea", lang.TBytes, lang.G("area"))
	return p
}

// CompileCheckin compiles the check-in contract for both backends.
func CompileCheckin() (*lang.Compiled, error) {
	c, err := lang.Compile(BuildCheckinProgram(), lang.Options{MaxBytesLen: 512, Precompiles: true})
	if err != nil {
		return nil, fmt.Errorf("core: compile checkin contract: %w", err)
	}
	return c, nil
}
