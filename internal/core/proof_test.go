package core

import (
	"strings"
	"testing"
	"testing/quick"

	"agnopol/internal/did"
	"agnopol/internal/geo"
	"agnopol/internal/ipfs"
	"agnopol/internal/olc"
)

func TestConcatDataRoundTrip(t *testing.T) {
	err := quick.Check(func(hash [32]byte, sig []byte, wallet [20]byte, nonce uint64) bool {
		p := &LocationProof{
			Request: ProofRequest{
				DID: "did:agno:x", OLC: "8FPHF8VV+X2", Nonce: nonce,
				CID: "bafy123", Wallet: wallet,
			},
			Hash:      hash,
			Signature: sig,
		}
		parsed, err := ParseConcatData(p.ConcatData())
		if err != nil {
			return false
		}
		return parsed.Hash == hash &&
			string(parsed.Signature) == string(sig) &&
			parsed.Wallet == wallet &&
			parsed.Nonce == nonce &&
			parsed.CID == "bafy123"
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseConcatDataRejectsMalformed(t *testing.T) {
	cases := []string{
		"",
		"a-b-c",           // too few fields
		"zz-11-22-3-bafy", // bad hash hex
		strings.Repeat("ab", 32) + "-zz-" + strings.Repeat("cd", 20) + "-1-bafy", // bad sig hex
		strings.Repeat("ab", 32) + "-11-" + "aabb" + "-1-bafy",                   // short wallet
		strings.Repeat("ab", 32) + "-11-" + strings.Repeat("cd", 20) + "-x-bafy", // bad nonce
	}
	for _, c := range cases {
		if _, err := ParseConcatData([]byte(c)); err == nil {
			t.Errorf("ParseConcatData(%.30q) accepted", c)
		}
	}
}

func TestProofHashBindsEveryField(t *testing.T) {
	base := ProofRequest{DID: "did:agno:a", OLC: "8FPHF8VV+X2", Nonce: 7, CID: "bafyX", Wallet: [20]byte{1}}
	h := base.Hash()
	variants := []ProofRequest{base, base, base, base}
	variants[0].DID = "did:agno:b"
	variants[1].OLC = "8FPHF8VV+X3"
	variants[2].Nonce = 8
	variants[3].CID = "bafyY"
	for i, v := range variants {
		if v.Hash() == h {
			t.Errorf("variant %d did not change the proof hash", i)
		}
	}
	// The wallet travels outside the hash input in the thesis design; the
	// verifier cross-checks it against the on-chain record instead.
}

func TestWitnessAcceptsCellBorderSlack(t *testing.T) {
	sys := newTestSystem(t)
	// The witness stands just outside the prover's OLC cell (cells are
	// ~14 m; Bluetooth reaches 10 m across a border).
	area, err := olc.Decode(olc.MustEncode(bologna.Lat, bologna.Lng, olc.DefaultCodeLength))
	if err != nil {
		t.Fatal(err)
	}
	// Prover at the cell's east edge, witness 4 m further east (next cell).
	proverPos := geo.LatLng{Lat: (area.LatLo + area.LatHi) / 2, Lng: area.LngHi - 0.00001}
	witnessPos := geo.Offset(proverPos, 0, 4)
	w, err := NewWitness(sys, witnessPos)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(sys, proverPos)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := p.UploadReport(Report{Title: "edge", Category: "env"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.RequestProof(w, cid, [20]byte{1}); err != nil {
		t.Fatalf("border-adjacent witness refused: %v", err)
	}
}

func TestWitnessRejectsAuthForDifferentDID(t *testing.T) {
	sys := newTestSystem(t)
	w, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	honest, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	mallory, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	// Mallory authenticates as herself but submits a request claiming the
	// honest prover's DID.
	ch, err := w.BeginAuth(mallory.DID)
	if err != nil {
		t.Fatal(err)
	}
	resp := did.SignChallenge(mallory.Key, ch)
	nonce := w.IssueNonce(honest.DID)
	req := ProofRequest{DID: honest.DID, OLC: mustOLC(t, mallory), Nonce: nonce, CID: "bafy", Wallet: [20]byte{1}}
	if _, err := w.HandleProofRequest(mallory.Device, resp, req); err == nil {
		t.Fatal("witness certified a DID the requester did not authenticate as")
	}
}

func mustOLC(t *testing.T, p *Prover) string {
	t.Helper()
	code, err := p.ClaimedOLC()
	if err != nil {
		t.Fatal(err)
	}
	return code
}

func TestWitnessRejectsBadOLCClaim(t *testing.T) {
	sys := newTestSystem(t)
	w, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := w.BeginAuth(p.DID)
	if err != nil {
		t.Fatal(err)
	}
	resp := did.SignChallenge(p.Key, ch)
	nonce := w.IssueNonce(p.DID)
	req := ProofRequest{DID: p.DID, OLC: "garbage", Nonce: nonce, CID: "bafy", Wallet: [20]byte{1}}
	if _, err := w.HandleProofRequest(p.Device, resp, req); err == nil {
		t.Fatal("malformed OLC accepted")
	}
}

func TestDIDByUint(t *testing.T) {
	sys := newTestSystem(t)
	p, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := sys.DIDByUint(p.DID.Uint64())
	if !ok || got != p.DID {
		t.Fatalf("DIDByUint = %q (ok=%v)", got, ok)
	}
	if _, ok := sys.DIDByUint(12345); ok {
		t.Fatal("unknown key resolved")
	}
}

func TestProofVerifyDetectsTampering(t *testing.T) {
	sys := newTestSystem(t)
	w, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := p.UploadReport(Report{Title: "x", Category: "env"})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := p.RequestProof(w, cid, [20]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := proof.Verify(); err != nil {
		t.Fatal(err)
	}
	tampered := *proof
	tampered.Request.CID = ipfs.CID("bafy-other")
	if err := tampered.Verify(); err == nil {
		t.Fatal("hash/request mismatch not detected")
	}
	tampered2 := *proof
	tampered2.Signature = append([]byte(nil), proof.Signature...)
	tampered2.Signature[0] ^= 1
	if err := tampered2.Verify(); err == nil {
		t.Fatal("signature tampering not detected")
	}
}
