package core

import (
	"errors"
	"testing"

	"agnopol/internal/algorand"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
)

// TestConnectorEquivalence drives the SAME compiled contract through the
// same sequence of calls on both connector families and checks that every
// observable — return values, view results, map/global state reads,
// contract balances, acceptance/rejection of each call — agrees. This is
// the "blockchain agnostic" property the paper's single-source contract
// rests on.
func TestConnectorEquivalence(t *testing.T) {
	compiled, err := CompilePoL()
	if err != nil {
		t.Fatal(err)
	}

	type obs struct {
		kind  string
		value string
		fail  bool
	}

	drive := func(conn Connector) []obs {
		var out []obs
		record := func(kind string, v lang.Value, err error) {
			out = append(out, obs{kind: kind, value: v.String(), fail: err != nil})
		}
		alice, err := conn.NewAccount(10)
		if err != nil {
			t.Fatal(err)
		}
		bob, err := conn.NewAccount(10)
		if err != nil {
			t.Fatal(err)
		}
		verifier, err := conn.NewAccount(10)
		if err != nil {
			t.Fatal(err)
		}

		const reward = 1000
		h, _, err := conn.Deploy(alice, compiled, []lang.Value{
			lang.BytesValue([]byte("8FPHF8VV+X2")),
			lang.Uint64Value(111),
			lang.Uint64Value(reward),
		})
		if err != nil {
			t.Fatalf("%s deploy: %v", conn.Name(), err)
		}

		// Creator inserts (with escrow funding where the chain needs it).
		v, _, err := conn.CallWithEscrowFunding(alice, h, "insert_data", 0,
			lang.BytesValue([]byte("data-alice")), lang.Uint64Value(111))
		record("creator insert", v, err)

		// Attacher inserts.
		v, _, err = conn.Call(bob, h, "insert_data", 0,
			lang.BytesValue([]byte("data-bob")), lang.Uint64Value(222))
		record("attach", v, err)

		// Duplicate DID rejected.
		v, _, err = conn.Call(bob, h, "insert_data", 0,
			lang.BytesValue([]byte("dup")), lang.Uint64Value(222))
		record("duplicate attach", v, err)

		// Views and state reads.
		v, err = conn.View(h, "getAvailableSits")
		record("view sits", v, err)
		v, err = conn.View(h, "getReward")
		record("view reward", v, err)
		v, err = conn.ReadGlobal(h, PositionGlobal)
		record("read position", v, err)
		v, err = conn.ReadGlobal(h, CreatorDidGlobal)
		record("read creatorDid", v, err)
		mv, ok, err := conn.ReadMap(h, EasyMapName, 222)
		record("read map bob", mv, err)
		out = append(out, obs{kind: "map bob present", value: boolStr(ok)})
		_, ok, err = conn.ReadMap(h, EasyMapName, 999)
		if err != nil {
			t.Fatalf("%s read missing map key: %v", conn.Name(), err)
		}
		out = append(out, obs{kind: "map missing", value: boolStr(ok)})

		// Verify without funds: accepted on-chain but no reward branch.
		// The API returns the wallet address — account keys differ per
		// chain, so record whether it equals bob's address instead.
		v, _, err = conn.Call(verifier, h, "verify", 0,
			lang.Uint64Value(222), lang.AddressValue(bob.Address()))
		out = append(out, obs{kind: "verify unfunded returns wallet",
			value: boolStr(err == nil && v.Addr == bob.Address()), fail: err != nil})
		mv, ok, err = conn.ReadMap(h, EasyMapName, 222)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, obs{kind: "map bob after unfunded verify", value: boolStr(ok)})

		// Fund, then verify for real.
		v, _, err = conn.Call(verifier, h, "insert_money", 2*reward, lang.Uint64Value(2*reward))
		record("fund", v, err)
		out = append(out, obs{kind: "contract balance", value: uintStr(conn.ContractBalance(h))})

		bobBefore := conn.Balance(bob).Base.Uint64()
		v, _, err = conn.Call(verifier, h, "verify", 0,
			lang.Uint64Value(222), lang.AddressValue(bob.Address()))
		out = append(out, obs{kind: "verify funded returns wallet",
			value: boolStr(err == nil && v.Addr == bob.Address()), fail: err != nil})
		bobAfter := conn.Balance(bob).Base.Uint64()
		out = append(out, obs{kind: "bob reward delta", value: uintStr(bobAfter - bobBefore)})
		_, ok, err = conn.ReadMap(h, EasyMapName, 222)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, obs{kind: "map bob after funded verify", value: boolStr(ok)})

		// Non-creator cannot close; creator can, sweeping the rest.
		_, _, err = conn.Call(bob, h, "close", 0)
		out = append(out, obs{kind: "close by stranger", fail: err != nil})
		v, _, err = conn.Call(alice, h, "close", 0)
		record("close by creator", v, err)
		out = append(out, obs{kind: "final balance", value: uintStr(conn.ContractBalance(h))})
		return out
	}

	evmObs := drive(NewEVMConnector(eth.NewChain(eth.Goerli(), 21)))
	algoObs := drive(NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), 21)))

	if len(evmObs) != len(algoObs) {
		t.Fatalf("observation counts differ: %d vs %d", len(evmObs), len(algoObs))
	}
	for i := range evmObs {
		e, a := evmObs[i], algoObs[i]
		if e.kind != a.kind {
			t.Fatalf("observation %d kinds diverged: %q vs %q", i, e.kind, a.kind)
		}
		if e.fail != a.fail {
			t.Errorf("%q: EVM fail=%v, Algorand fail=%v", e.kind, e.fail, a.fail)
			continue
		}
		if !e.fail && e.value != a.value {
			t.Errorf("%q: EVM %q, Algorand %q", e.kind, e.value, a.value)
		}
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func uintStr(v uint64) string {
	return lang.Uint64Value(v).String()
}

func TestConnectorRejectsUnknownAPIAndView(t *testing.T) {
	compiled, err := CompilePoL()
	if err != nil {
		t.Fatal(err)
	}
	for _, conn := range connectors(t) {
		acct, err := conn.NewAccount(10)
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := conn.Deploy(acct, compiled, []lang.Value{
			lang.BytesValue([]byte("8FPHF8VV+X2")), lang.Uint64Value(1), lang.Uint64Value(10),
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := conn.Call(acct, h, "nonexistent", 0); err == nil {
			t.Errorf("%s: unknown API accepted", conn.Name())
		}
		if _, err := conn.View(h, "nonexistent"); err == nil {
			t.Errorf("%s: unknown view accepted", conn.Name())
		}
	}
}

func TestAPIRejectionIsTyped(t *testing.T) {
	compiled, err := CompilePoL()
	if err != nil {
		t.Fatal(err)
	}
	for _, conn := range connectors(t) {
		acct, err := conn.NewAccount(10)
		if err != nil {
			t.Fatal(err)
		}
		h, _, err := conn.Deploy(acct, compiled, []lang.Value{
			lang.BytesValue([]byte("8FPHF8VV+X2")), lang.Uint64Value(1), lang.Uint64Value(10),
		})
		if err != nil {
			t.Fatal(err)
		}
		// insert_money with zero amount violates the API's assume.
		_, _, err = conn.Call(acct, h, "insert_money", 0, lang.Uint64Value(0))
		if !errors.Is(err, ErrAPIRejected) {
			t.Errorf("%s: err = %v, want ErrAPIRejected", conn.Name(), err)
		}
	}
}

func TestHandleID(t *testing.T) {
	h := &Handle{Connector: "goerli", EVMAddr: [20]byte{0xab}}
	if h.ID() != "goerli/0xab00000000000000000000000000000000000000" {
		t.Fatalf("EVM handle ID %q", h.ID())
	}
	h2 := &Handle{Connector: "algorand-testnet", AppID: 7}
	if h2.ID() != "algorand-testnet/app/7" {
		t.Fatalf("Algorand handle ID %q", h2.ID())
	}
}
