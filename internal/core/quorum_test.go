package core

import (
	"strings"
	"testing"

	"agnopol/internal/eth"
	"agnopol/internal/geo"
)

// quorumSetup builds a system with one prover and n witnesses around the
// same spot.
func quorumSetup(t *testing.T, n int) (*System, Connector, *Prover, *Verifier, []*Witness) {
	t.Helper()
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 41))
	prover, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prover.EnsureAccount(conn, 10); err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.EnsureAccount(conn, 10); err != nil {
		t.Fatal(err)
	}
	var witnesses []*Witness
	for i := 0; i < n; i++ {
		w, err := NewWitness(sys, geo.Offset(bologna, float64(i), float64(-i)))
		if err != nil {
			t.Fatal(err)
		}
		witnesses = append(witnesses, w)
	}
	return sys, conn, prover, verifier, witnesses
}

func TestQuorumHappyPath(t *testing.T) {
	sys, conn, prover, verifier, witnesses := quorumSetup(t, 3)
	cid, err := prover.UploadReport(Report{Title: "q", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	acct, _ := prover.Account(conn)
	bundle, err := prover.RequestProofQuorum(witnesses, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Proofs) != 3 {
		t.Fatalf("bundle size %d", len(bundle.Proofs))
	}
	sub, err := prover.SubmitProofQuorum(conn, bundle, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := verifier.FundContract(conn, sub.Handle, rewardFor(conn)); err != nil {
		t.Fatal(err)
	}
	before := conn.Balance(acct).Base.Uint64()
	ver, err := verifier.VerifyProverQuorum(conn, sub.Handle, prover.DID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ver.Accepted {
		t.Fatalf("quorum verification rejected: %s", ver.Reason)
	}
	if got := conn.Balance(acct).Base.Uint64() - before; got != rewardFor(conn) {
		t.Fatalf("reward %d", got)
	}
	// The report CID reached the hypercube.
	code, _ := prover.ClaimedOLC()
	target, err := sys.NodeIDForOLC(code)
	if err != nil {
		t.Fatal(err)
	}
	entry, _, ok, err := sys.Cube.Get(0, target, code)
	if err != nil || !ok || len(entry.CIDs) != 1 {
		t.Fatalf("hypercube entry: ok=%v err=%v", ok, err)
	}
}

func TestQuorumTooFewWitnesses(t *testing.T) {
	_, conn, prover, verifier, witnesses := quorumSetup(t, 2)
	cid, err := prover.UploadReport(Report{Title: "q", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	acct, _ := prover.Account(conn)
	bundle, err := prover.RequestProofQuorum(witnesses, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := prover.SubmitProofQuorum(conn, bundle, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := verifier.VerifyProverQuorum(conn, sub.Handle, prover.DID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("2 witnesses satisfied a 3-quorum")
	}
	if !strings.Contains(ver.Reason, ErrQuorumTooSmall.Error()) {
		t.Fatalf("reason %q", ver.Reason)
	}
}

func TestQuorumDuplicateWitnessCountsOnce(t *testing.T) {
	_, conn, prover, verifier, witnesses := quorumSetup(t, 1)
	w := witnesses[0]
	cid, err := prover.UploadReport(Report{Title: "q", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	acct, _ := prover.Account(conn)
	// Three proofs from the SAME witness (fresh nonce each time).
	bundle, err := prover.RequestProofQuorum([]*Witness{w, w, w}, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := prover.SubmitProofQuorum(conn, bundle, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := verifier.VerifyProverQuorum(conn, sub.Handle, prover.DID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("one witness repeated three times satisfied a 2-quorum")
	}
}

func TestQuorumSelfSignedEntriesExcluded(t *testing.T) {
	sys, conn, prover, verifier, witnesses := quorumSetup(t, 1)
	// The prover registers as a witness and pads its bundle with
	// self-signed proofs; only the genuine witness may count.
	sys.CA.RegisterWitness(prover.Key.Public)
	cid, err := prover.UploadReport(Report{Title: "q", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	acct, _ := prover.Account(conn)
	bundle, err := prover.RequestProofQuorum(witnesses, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		req := bundle.Proofs[0].Request
		req.Nonce += uint64(100 + i)
		h := req.Hash()
		bundle.Proofs = append(bundle.Proofs, &LocationProof{
			Request:    req,
			Hash:       h,
			Signature:  prover.Key.Sign(h[:]),
			WitnessPub: prover.Key.Public,
		})
	}
	sub, err := prover.SubmitProofQuorum(conn, bundle, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := verifier.VerifyProverQuorum(conn, sub.Handle, prover.DID, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("self-signed padding satisfied the quorum")
	}
}

func TestQuorumBundleTamperDetected(t *testing.T) {
	sys, conn, prover, verifier, witnesses := quorumSetup(t, 3)
	cid, err := prover.UploadReport(Report{Title: "q", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	acct, _ := prover.Account(conn)
	bundle, err := prover.RequestProofQuorum(witnesses, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := prover.SubmitProofQuorum(conn, bundle, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	// Swap the bundle content on IPFS after submission: a different
	// bundle under a different CID cannot match the on-chain hash, and
	// the original stays content-addressed — so simulate tampering by
	// garbage-collecting the original after unpinning.
	_, _, err = parseQuorumConcat(quorumConcat("bafyX", [32]byte{1}))
	if err != nil {
		t.Fatal(err)
	}
	raw, ok, err := conn.ReadMap(sub.Handle, EasyMapName, prover.DID.Uint64())
	if err != nil || !ok {
		t.Fatal("record missing")
	}
	bundleCID, _, err := parseQuorumConcat(raw.Bytes)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.IPFS.Unpin(string(prover.DID), bundleCID); err != nil {
		t.Fatal(err)
	}
	sys.IPFS.GarbageCollect()
	ver, err := verifier.VerifyProverQuorum(conn, sub.Handle, prover.DID, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("verification accepted with the bundle gone")
	}
}

func TestQuorumRecordRejectedByPlainVerifier(t *testing.T) {
	// A plain (v1) verification of a quorum record must fail cleanly: the
	// record does not parse as a 5-field concatenation.
	_, conn, prover, verifier, witnesses := quorumSetup(t, 2)
	cid, err := prover.UploadReport(Report{Title: "q", Category: "waste"})
	if err != nil {
		t.Fatal(err)
	}
	acct, _ := prover.Account(conn)
	bundle, err := prover.RequestProofQuorum(witnesses, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := prover.SubmitProofQuorum(conn, bundle, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}
	ver, err := verifier.VerifyProver(conn, sub.Handle, prover.DID)
	if err != nil {
		t.Fatal(err)
	}
	if ver.Accepted {
		t.Fatal("plain verifier accepted a quorum record")
	}
}

func TestDiscovery(t *testing.T) {
	sys := newTestSystem(t)
	near1, err := NewWitness(sys, geo.Offset(bologna, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	near2, err := NewWitness(sys, geo.Offset(bologna, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWitness(sys, geo.Offset(bologna, 400, 0)); err != nil {
		t.Fatal(err)
	}
	prover, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	got := prover.DiscoverWitnesses()
	if len(got) != 2 {
		t.Fatalf("discovered %d witnesses, want 2", len(got))
	}
	// Sorted closest first.
	if got[0] != near1 || got[1] != near2 {
		t.Fatal("discovery not distance-ordered")
	}
	// A spoofing prover scans from where it really is.
	prover.Device.Spoof(geo.Offset(bologna, 5000, 0))
	if len(prover.DiscoverWitnesses()) != 2 {
		t.Fatal("spoofed claim changed the physical scan result")
	}
}
