package core

import (
	"sort"
	"sync"

	"agnopol/internal/geo"
)

// Witness discovery — the "View users nearby" interaction the thesis's use
// case diagram lists and its simulation script implements as
// find_neighbours() (§4.3). Witnesses announce themselves; provers scan for
// the ones inside Bluetooth range of their physical position.

// witnessDirectory tracks announced witnesses. Discovery is a physical-
// layer operation (a Bluetooth scan), so lookups go by true device
// position, not claims.
type witnessDirectory struct {
	mu        sync.Mutex
	witnesses []*Witness
}

// AnnounceWitness registers a witness as discoverable. NewWitness calls
// this automatically.
func (s *System) AnnounceWitness(w *Witness) {
	s.dir.mu.Lock()
	defer s.dir.mu.Unlock()
	s.dir.witnesses = append(s.dir.witnesses, w)
}

// NearbyWitnesses returns the announced witnesses within Bluetooth range of
// the device, sorted by distance (closest first) — what a prover's scan
// shows before it picks a witness to ask.
func (s *System) NearbyWitnesses(dev *geo.Device) []*Witness {
	s.dir.mu.Lock()
	defer s.dir.mu.Unlock()
	type cand struct {
		w *Witness
		d float64
	}
	var found []cand
	for _, w := range s.dir.witnesses {
		if w.Device.CanReach(dev) {
			found = append(found, cand{w, geo.DistanceMeters(w.Device.TruePosition, dev.TruePosition)})
		}
	}
	sort.SliceStable(found, func(i, j int) bool { return found[i].d < found[j].d })
	out := make([]*Witness, len(found))
	for i, c := range found {
		out[i] = c.w
	}
	return out
}

// DiscoverWitnesses is the prover-side Bluetooth scan.
func (p *Prover) DiscoverWitnesses() []*Witness {
	return p.sys.NearbyWitnesses(p.Device)
}
