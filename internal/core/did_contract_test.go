package core

import (
	"strings"
	"testing"

	"agnopol/internal/did"
)

func TestDIDAnchorBothChains(t *testing.T) {
	for _, conn := range connectors(t) {
		conn := conn
		t.Run(conn.Name(), func(t *testing.T) {
			sys := newTestSystem(t)
			payer, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}
			anchor, err := DeployDIDAnchor(sys, conn, payer)
			if err != nil {
				t.Fatal(err)
			}
			prover, err := NewProver(sys, bologna)
			if err != nil {
				t.Fatal(err)
			}

			// Before anchoring: verification fails (no anchor).
			if err := anchor.Verify(prover.DID); err == nil {
				t.Fatal("unanchored DID verified")
			}
			if _, err := anchor.Anchor(payer, prover.DID); err != nil {
				t.Fatal(err)
			}
			if err := anchor.Verify(prover.DID); err != nil {
				t.Fatalf("anchored DID rejected: %v", err)
			}
			n, err := anchor.anchoredCount()
			if err != nil || n != 1 {
				t.Fatalf("count = %d (err %v)", n, err)
			}

			// Double anchoring the same DID is rejected on-chain.
			if _, err := anchor.Anchor(payer, prover.DID); err == nil {
				t.Fatal("double anchor accepted")
			}

			// After a key rotation the stale anchor no longer matches —
			// exactly the tamper-evidence the contract provides.
			newKey := prover.Key // rotate to a fresh key
			fresh, err := NewProver(sys, bologna)
			if err != nil {
				t.Fatal(err)
			}
			sig := newKey.Sign(did.RotateMessage(prover.DID, fresh.Key.Public))
			if err := sys.Registry.Rotate(prover.DID, fresh.Key.Public, sig, 1); err != nil {
				t.Fatal(err)
			}
			err = anchor.Verify(prover.DID)
			if err == nil || !strings.Contains(err.Error(), "anchor") {
				t.Fatalf("rotated document still matches the old anchor: %v", err)
			}
		})
	}
}
