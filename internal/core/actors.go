package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"agnopol/internal/did"
	"agnopol/internal/faults"
	"agnopol/internal/geo"
	"agnopol/internal/ipfs"
	"agnopol/internal/lang"
	"agnopol/internal/obs"
	"agnopol/internal/olc"
	"agnopol/internal/polcrypto"
)

// Protocol errors.
var (
	ErrNotInRange      = errors.New("core: peer not within Bluetooth range")
	ErrLocationClaim   = errors.New("core: claimed area is not where the witness is")
	ErrBadNonce        = errors.New("core: nonce was not issued to this prover or was already used")
	ErrUnknownWitness  = errors.New("core: proof not signed by any known witness")
	ErrSelfSigned      = errors.New("core: proof signed by the prover itself")
	ErrHashMismatch    = errors.New("core: on-chain hash does not match recomputed proof hash")
	ErrNotVerifier     = errors.New("core: caller is not a designated verifier")
	ErrReportCorrupted = errors.New("core: report bytes do not match CID")
)

// Witness issues location proofs to provers physically nearby (§2.3.1.1).
// Witnesses are untrusted by the system; their accountability comes from
// the CA-registered public key their signatures are checked against.
type Witness struct {
	sys    *System
	Key    *polcrypto.KeyPair
	DID    did.DID
	Device *geo.Device

	mu     sync.Mutex
	nonces map[did.DID]uint64
	used   map[uint64]bool
	seq    uint64
}

// NewWitness creates a witness at a position, registers its DID and
// communicates its public key to the Certification Authority.
func NewWitness(sys *System, at geo.LatLng) (*Witness, error) {
	kp, err := polcrypto.GenerateKeyPair(sys.Rand.Fork("witness-key"))
	if err != nil {
		return nil, err
	}
	d, err := sys.RegisterDID(kp.Public)
	if err != nil {
		return nil, err
	}
	sys.CA.RegisterWitness(kp.Public)
	w := &Witness{
		sys:    sys,
		Key:    kp,
		DID:    d,
		Device: geo.NewDevice(at),
		nonces: make(map[did.DID]uint64),
		used:   make(map[uint64]bool),
	}
	sys.AnnounceWitness(w)
	return w, nil
}

// BeginAuth starts the DID challenge–response with a prover (Fig. 2.4).
func (w *Witness) BeginAuth(prover did.DID) (did.Challenge, error) {
	return w.sys.Auth.NewChallenge(prover)
}

// IssueNonce hands the prover the nonce to embed in its request — the
// replay protection of §2.3.1.1.
func (w *Witness) IssueNonce(prover did.DID) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.seq++
	n := w.seq<<16 | uint64(w.sys.Rand.Uint64n(1<<16))
	w.nonces[prover] = n
	return n
}

// maxAreaSlackMeters tolerates provers standing near an OLC cell border:
// the witness accepts a claimed area whose center is within this distance,
// on top of direct containment. A 10-digit OLC cell is ~14 m, so the slack
// stays within Bluetooth scale.
const maxAreaSlackMeters = 30

// HandleProofRequest performs the witness-side checks and — when they all
// pass — computes and signs the location proof:
//
//  1. physical proximity: the Bluetooth exchange only completes when the
//     two devices are in radio range (true positions, not claims);
//  2. identity: the prover proved control of its DID via challenge–response;
//  3. freshness: the request carries the nonce this witness issued to this
//     prover, unused;
//  4. location consistency: the claimed OLC area is where the witness
//     itself is.
func (w *Witness) HandleProofRequest(proverDev *geo.Device, auth did.ChallengeResponse, req ProofRequest) (*LocationProof, error) {
	if !w.Device.CanReach(proverDev) {
		w.sys.rejectProof("out_of_range")
		return nil, fmt.Errorf("%w: %.0f m apart", ErrNotInRange,
			geo.DistanceMeters(w.Device.TruePosition, proverDev.TruePosition))
	}
	if auth.Challenge.DID != req.DID {
		w.sys.rejectProof("auth")
		return nil, fmt.Errorf("%w: challenge for %s, request from %s", did.ErrAuthFailed, auth.Challenge.DID, req.DID)
	}
	if err := w.sys.Auth.VerifyResponse(auth); err != nil {
		w.sys.rejectProof("auth")
		return nil, err
	}
	w.mu.Lock()
	issued, ok := w.nonces[req.DID]
	if !ok || issued != req.Nonce || w.used[req.Nonce] {
		w.mu.Unlock()
		w.sys.rejectProof("bad_nonce")
		return nil, ErrBadNonce
	}
	w.used[req.Nonce] = true
	delete(w.nonces, req.DID)
	w.mu.Unlock()

	area, err := olc.Decode(req.OLC)
	if err != nil {
		w.sys.rejectProof("bad_olc")
		return nil, fmt.Errorf("core: claimed OLC: %w", err)
	}
	wp := w.Device.TruePosition
	if !area.Contains(wp.Lat, wp.Lng) {
		cLat, cLng := area.Center()
		if geo.DistanceMeters(wp, geo.LatLng{Lat: cLat, Lng: cLng}) > maxAreaSlackMeters {
			w.sys.rejectProof("location_claim")
			return nil, fmt.Errorf("%w: claimed %s", ErrLocationClaim, req.OLC)
		}
	}

	if w.sys.obs != nil {
		w.sys.obs.proofsIssued.Inc()
		if w.sys.logger().Enabled(obs.LevelDebug) {
			w.sys.logger().Debug("proof issued", "witness", string(w.DID),
				"prover", string(req.DID), "olc", req.OLC)
		}
	}
	h := req.Hash()
	return &LocationProof{
		Request:    req,
		Hash:       h,
		Signature:  w.Key.Sign(h[:]),
		WitnessPub: w.Key.Public,
		IssuedAt:   0,
	}, nil
}

// Prover is a mobile user who wants its reports accepted (§2.1).
type Prover struct {
	sys    *System
	Key    *polcrypto.KeyPair
	DID    did.DID
	Device *geo.Device
	// Accounts per connector name.
	accounts map[string]*Account
}

// NewProver creates a prover at a position with a fresh DID, and registers
// it as an IPFS peer.
func NewProver(sys *System, at geo.LatLng) (*Prover, error) {
	kp, err := polcrypto.GenerateKeyPair(sys.Rand.Fork("prover-key"))
	if err != nil {
		return nil, err
	}
	d, err := sys.RegisterDID(kp.Public)
	if err != nil {
		return nil, err
	}
	sys.IPFS.AddPeer(string(d))
	return &Prover{
		sys:      sys,
		Key:      kp,
		DID:      d,
		Device:   geo.NewDevice(at),
		accounts: make(map[string]*Account),
	}, nil
}

// EnsureAccount creates (once) and returns the prover's wallet on a
// connector, funded with the given token amount.
func (p *Prover) EnsureAccount(conn Connector, tokens float64) (*Account, error) {
	if a, ok := p.accounts[conn.Name()]; ok {
		return a, nil
	}
	a, err := conn.NewAccount(tokens)
	if err != nil {
		return nil, err
	}
	p.accounts[conn.Name()] = a
	return a, nil
}

// Account returns the prover's wallet on a connector, if created.
func (p *Prover) Account(conn Connector) (*Account, bool) {
	a, ok := p.accounts[conn.Name()]
	return a, ok
}

// ClaimedOLC encodes the device's claimed position at the default
// precision (§2.6: the OLC, not raw GPS, is what leaves the device).
func (p *Prover) ClaimedOLC() (string, error) {
	pos := p.Device.ClaimedPosition
	return olc.Encode(pos.Lat, pos.Lng, olc.DefaultCodeLength)
}

// UploadReport serializes the report, stores it on IPFS and pins it. Pin
// failures (the ipfs_unpin fault class) are retried immediately up to the
// system's attempt budget: an unpinned report would be lost to the next
// garbage collection, so the device keeps re-pinning until durable.
func (p *Prover) UploadReport(r Report) (ipfs.CID, error) {
	r.Author = string(p.DID)
	data, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	cid, err := p.sys.IPFS.Add(string(p.DID), data)
	if err != nil {
		return "", err
	}
	for attempt := 1; ; attempt++ {
		err = p.sys.IPFS.Pin(string(p.DID), cid)
		if err == nil {
			p.sys.flt.RecoverN(faults.ClassIPFSUnpin, attempt-1)
			return cid, nil
		}
		if !faults.Transient(err) || attempt >= p.sys.retry.Attempts() {
			return "", fmt.Errorf("core: pin report: %w", err)
		}
	}
}

// RequestProof runs the full Bluetooth exchange with a witness: DID
// challenge–response, nonce issuance, proof request, proof verification on
// receipt.
func (p *Prover) RequestProof(w *Witness, cid ipfs.CID, wallet [20]byte) (*LocationProof, error) {
	sp := p.sys.span("pol.request_proof", obs.L("prover", string(p.DID)))
	defer sp.End()
	code, err := p.ClaimedOLC()
	if err != nil {
		return nil, err
	}
	chSp := p.sys.span("pol.did_challenge")
	ch, err := w.BeginAuth(p.DID)
	if err != nil {
		chSp.End()
		return nil, err
	}
	resp := did.SignChallenge(p.Key, ch)
	p.sys.endPhase(chSp, PhaseChallenge)

	signSp := p.sys.span("pol.witness_sign")
	nonce := w.IssueNonce(p.DID)
	req := ProofRequest{DID: p.DID, OLC: code, Nonce: nonce, CID: cid, Wallet: wallet}
	proof, err := w.HandleProofRequest(p.Device, resp, req)
	p.sys.endPhase(signSp, PhaseSign)
	if err != nil {
		return nil, err
	}
	// The prover checks the certificate before spending fees on it.
	vSp := p.sys.span("pol.cert_verify")
	err = p.sys.verifyProof(proof)
	vSp.End()
	if err != nil {
		return nil, err
	}
	return proof, nil
}

// RequestProofResilient is RequestProof under the system's resilience
// policy: when a witness does not answer the Bluetooth exchange (the
// witness_unavailable fault class — churn, the witness walked away or shut
// down), the prover backs off on the connector's simulated clock,
// re-scans for nearby witnesses and asks the closest responder again.
// With no fault plan attached it reduces exactly to RequestProof.
func (p *Prover) RequestProofResilient(conn Connector, w *Witness, cid ipfs.CID, wallet [20]byte) (*LocationProof, error) {
	overcome := 0
	for attempt := 1; ; attempt++ {
		if err := p.sys.flt.Try(faults.ClassWitnessDown, "core.witness"); err != nil {
			if attempt >= p.sys.retry.Attempts() {
				return nil, fmt.Errorf("core: witness exchange: %w", err)
			}
			// Graceful degradation: wait out the churn, then re-discover.
			// The scan is sorted by distance, so the prover converges on
			// whichever witness answers next.
			conn.Sleep(p.sys.retry.Backoff(attempt))
			if nearby := p.DiscoverWitnesses(); len(nearby) > 0 {
				w = nearby[0]
			}
			overcome++
			continue
		}
		proof, err := p.RequestProof(w, cid, wallet)
		if err != nil {
			return nil, err
		}
		p.sys.flt.RecoverN(faults.ClassWitnessDown, overcome)
		if overcome > 0 && p.sys.obs != nil {
			p.sys.logger().Debug("witness exchange recovered", "prover", string(p.DID),
				"retries", overcome)
		}
		return proof, nil
	}
}

// SubmissionResult reports how a proof landed on-chain.
type SubmissionResult struct {
	Handle   *Handle
	Deployed bool
	Op       *OpResult
	Hops     int
}

// SubmitProof implements the §3.1.2 insertion flow: look the area's
// contract up in the hypercube; deploy a new one (becoming its creator)
// when absent, otherwise attach with insert_data.
func (p *Prover) SubmitProof(conn Connector, proof *LocationProof, rewardPerProver uint64) (*SubmissionResult, error) {
	acct, ok := p.accounts[conn.Name()]
	if !ok {
		return nil, fmt.Errorf("core: prover %s has no account on %s", p.DID, conn.Name())
	}
	code := proof.Request.OLC
	sp := p.sys.span("pol.submit_proof", obs.L("olc", code), obs.L("chain", conn.Name()))
	defer sp.End()
	via := p.sys.EntryNode(p.DID)
	dSp := p.sys.span("pol.discover")
	h, hops, found, err := p.sys.LookupContract(via, code)
	p.sys.endPhase(dSp, PhaseDiscover)
	if p.sys.obs != nil {
		p.sys.obs.hops.Observe(float64(hops))
	}
	if err != nil {
		return nil, err
	}
	if !found {
		// Deployment is two chained operations (Fig. 3.1): the creation
		// transaction, then the creator's own insert_data — which also
		// carries the escrow activation deposit on connectors that need
		// one.
		depSp := p.sys.span("pol.deploy")
		handle, deployOp, err := conn.Deploy(acct, p.sys.Compiled, []lang.Value{
			lang.BytesValue([]byte(code)),
			lang.Uint64Value(p.DID.Uint64()),
			lang.Uint64Value(rewardPerProver),
		})
		if err != nil {
			p.sys.endPhase(depSp, PhaseSubmit)
			return nil, fmt.Errorf("core: deploy: %w", err)
		}
		_, insertOp, err := conn.Invoke(acct, handle, "insert_data",
			CallOpts{EscrowFund: true, Retry: p.sys.retry},
			lang.BytesValue(proof.ConcatData()),
			lang.Uint64Value(p.DID.Uint64()),
		)
		p.sys.endPhase(depSp, PhaseSubmit)
		if err != nil {
			return nil, fmt.Errorf("core: creator insert: %w", err)
		}
		pubSp := p.sys.span("pol.publish")
		_, err = p.sys.PublishContract(via, code, handle)
		p.sys.endPhase(pubSp, PhasePublish)
		if err != nil {
			return nil, err
		}
		op := &OpResult{
			Latency:  deployOp.Latency + insertOp.Latency,
			Fee:      deployOp.Fee.Add(insertOp.Fee),
			GasUsed:  deployOp.GasUsed + insertOp.GasUsed,
			Receipts: append(deployOp.Receipts, insertOp.Receipts...),
			Retries:  deployOp.Retries + insertOp.Retries,
		}
		if op.Retries > 0 {
			sp.Label("retries", fmt.Sprint(op.Retries))
		}
		if p.sys.obs != nil {
			p.sys.obs.contractsDeployed.Inc()
			p.sys.observeChainOp("deploy", op.Latency)
			p.sys.logger().Info("contract deployed", "olc", code,
				"chain", conn.Name(), "hops", hops, "gas", op.GasUsed)
		}
		return &SubmissionResult{Handle: handle, Deployed: true, Op: op, Hops: hops}, nil
	}
	aSp := p.sys.span("pol.attach")
	_, op, err := conn.Invoke(acct, h, "insert_data", CallOpts{Retry: p.sys.retry},
		lang.BytesValue(proof.ConcatData()),
		lang.Uint64Value(p.DID.Uint64()),
	)
	p.sys.endPhase(aSp, PhaseSubmit)
	if err != nil {
		return nil, fmt.Errorf("core: attach: %w", err)
	}
	if op.Retries > 0 {
		sp.Label("retries", fmt.Sprint(op.Retries))
	}
	if p.sys.obs != nil {
		p.sys.obs.proofsAttached.Inc()
		p.sys.observeChainOp("attach", op.Latency)
	}
	return &SubmissionResult{Handle: h, Deployed: false, Op: op, Hops: hops}, nil
}

// Verifier validates staged proofs and moves accepted reports into the
// hypercube — the garbage-in gate (§2.3.1.2).
type Verifier struct {
	sys      *System
	Key      *polcrypto.KeyPair
	DID      did.DID
	accounts map[string]*Account
}

// NewVerifier creates a verifier and has the CA designate it.
func NewVerifier(sys *System) (*Verifier, error) {
	kp, err := polcrypto.GenerateKeyPair(sys.Rand.Fork("verifier-key"))
	if err != nil {
		return nil, err
	}
	d, err := sys.RegisterDID(kp.Public)
	if err != nil {
		return nil, err
	}
	sys.CA.DesignateVerifier(d)
	sys.IPFS.AddPeer(string(d))
	return &Verifier{sys: sys, Key: kp, DID: d, accounts: make(map[string]*Account)}, nil
}

// EnsureAccount creates (once) and returns the verifier's wallet on a
// connector.
func (v *Verifier) EnsureAccount(conn Connector, tokens float64) (*Account, error) {
	if a, ok := v.accounts[conn.Name()]; ok {
		return a, nil
	}
	a, err := conn.NewAccount(tokens)
	if err != nil {
		return nil, err
	}
	v.accounts[conn.Name()] = a
	return a, nil
}

// FundContract deposits reward money via insert_money.
func (v *Verifier) FundContract(conn Connector, h *Handle, amount uint64) (*OpResult, error) {
	if !v.sys.CA.IsVerifier(v.DID) {
		return nil, ErrNotVerifier
	}
	acct := v.accounts[conn.Name()]
	if acct == nil {
		return nil, fmt.Errorf("core: verifier has no account on %s", conn.Name())
	}
	_, op, err := conn.Invoke(acct, h, "insert_money",
		CallOpts{Pay: amount, Retry: v.sys.retry}, lang.Uint64Value(amount))
	return op, err
}

// fetchReport retrieves report bytes from IPFS under the system's
// resilience policy: transient fetch faults back off on the connector's
// simulated clock and retry. After a recovered fetch the verifier re-pins
// the content under its own peer — the §1.5 degradation rule: content that
// was hard to find once should gain a provider, not stay fragile.
func (v *Verifier) fetchReport(conn Connector, cid ipfs.CID) ([]byte, error) {
	overcome := 0
	for attempt := 1; ; attempt++ {
		data, err := v.sys.IPFS.Get(cid)
		if err == nil {
			v.sys.flt.RecoverN(faults.ClassIPFSFetch, overcome)
			if overcome > 0 {
				// Ignore pin errors here: the fetch succeeded and re-pinning
				// is best-effort hardening, itself subject to injection.
				_ = v.sys.IPFS.Pin(string(v.DID), cid)
			}
			return data, nil
		}
		if !faults.Transient(err) || attempt >= v.sys.retry.Attempts() {
			return nil, err
		}
		conn.Sleep(v.sys.retry.Backoff(attempt))
		overcome++
	}
}

// Verification is the outcome of checking one prover.
type Verification struct {
	Prover   did.DID
	Report   Report
	CID      ipfs.CID
	Accepted bool
	Reason   string
	Op       *OpResult
}

// rejected builds a failed Verification and counts the rejection.
func (v *Verifier) rejected(prover did.DID, reason string) *Verification {
	if v.sys.obs != nil {
		v.sys.obs.verifRejected.Inc()
		v.sys.logger().Warn("verification rejected", "prover", string(prover), "reason", reason)
	}
	return &Verification{Prover: prover, Accepted: false, Reason: reason}
}

// VerifyProver runs the §2.3.1.2 procedure for one DID:
//
//  1. read the concatenated values from the contract map;
//  2. recompute Hash(DID‖OLC‖nonce‖CID) with the contract's area and check
//     it equals the stored hash (catches location or CID substitution);
//  3. check the signature opens under some CA-registered witness key —
//     and not under the prover's own key (self-signing);
//  4. fetch the report from IPFS and check its integrity against the CID;
//  5. call the verify API (pays the reward, deletes the map entry);
//  6. insert the CID into the hypercube (garbage-in).
func (v *Verifier) VerifyProver(conn Connector, h *Handle, prover did.DID) (*Verification, error) {
	if !v.sys.CA.IsVerifier(v.DID) {
		return nil, ErrNotVerifier
	}
	acct := v.accounts[conn.Name()]
	if acct == nil {
		return nil, fmt.Errorf("core: verifier has no account on %s", conn.Name())
	}
	sp := v.sys.span("pol.verify", obs.L("prover", string(prover)), obs.L("chain", conn.Name()))
	defer v.sys.endPhase(sp, PhaseVerify)
	key := prover.Uint64()
	raw, ok, err := conn.ReadMap(h, EasyMapName, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: no staged data for %s", prover)
	}
	parsed, err := ParseConcatData(raw.Bytes)
	if err != nil {
		return v.rejected(prover, err.Error()), nil
	}
	posVal, err := conn.ReadGlobal(h, PositionGlobal)
	if err != nil {
		return nil, err
	}
	code := string(posVal.Bytes)

	req := ProofRequest{DID: prover, OLC: code, Nonce: parsed.Nonce, CID: parsed.CID, Wallet: parsed.Wallet}
	if req.Hash() != parsed.Hash {
		return v.rejected(prover, ErrHashMismatch.Error()), nil
	}

	// Locate the signing witness among the CA-registered keys; reject a
	// proof the prover signed for itself (§2.3.1.2, footnote 12).
	doc, err := v.sys.Registry.Resolve(prover)
	if err != nil {
		return nil, err
	}
	proverKey, err := doc.AuthenticationKey()
	if err != nil {
		return nil, err
	}
	if v.sys.verifySig(proverKey, parsed.Hash[:], parsed.Signature) {
		return v.rejected(prover, ErrSelfSigned.Error()), nil
	}
	signed := false
	for _, pub := range v.sys.CA.WitnessList() {
		if bytes.Equal(pub, proverKey) {
			continue
		}
		if v.sys.verifySig(pub, parsed.Hash[:], parsed.Signature) {
			signed = true
			break
		}
	}
	if !signed {
		return v.rejected(prover, ErrUnknownWitness.Error()), nil
	}

	// Retrieve and integrity-check the report content.
	fSp := v.sys.span("pol.ipfs_fetch")
	data, err := v.fetchReport(conn, parsed.CID)
	fSp.End()
	if err != nil {
		return v.rejected(prover, err.Error()), nil
	}
	if !parsed.CID.Verify(data) {
		return v.rejected(prover, ErrReportCorrupted.Error()), nil
	}
	var report Report
	if err := json.Unmarshal(data, &report); err != nil {
		return v.rejected(prover, "malformed report: "+err.Error()), nil
	}

	// On-chain verification: pays the reward and clears the map entry.
	cSp := v.sys.span("pol.chain_verify")
	_, op, err := conn.Invoke(acct, h, "verify", CallOpts{Retry: v.sys.retry},
		lang.Uint64Value(key),
		lang.AddressValue(parsed.Wallet),
	)
	cSp.End()
	if err != nil {
		return nil, err
	}
	if op.Retries > 0 {
		sp.Label("retries", fmt.Sprint(op.Retries))
	}

	// Garbage-in: only now does the report reach the hypercube.
	pSp := v.sys.span("pol.publish")
	target, err := v.sys.NodeIDForOLC(code)
	if err != nil {
		pSp.End()
		return nil, err
	}
	_, err = v.sys.Cube.AppendCID(v.sys.EntryNode(v.DID), target, code, h.ID(), string(parsed.CID))
	v.sys.endPhase(pSp, PhasePublish)
	if err != nil {
		return nil, err
	}
	if v.sys.obs != nil {
		v.sys.obs.verifAccepted.Inc()
		v.sys.observeChainOp("verify", op.Latency)
	}
	return &Verification{
		Prover: prover, Report: report, CID: parsed.CID,
		Accepted: true, Op: op,
	}, nil
}
