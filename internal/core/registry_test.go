package core

import (
	"testing"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
)

func TestAreaRegistryRegisterAndLookup(t *testing.T) {
	r := NewAreaRegistry(4)
	if r.Shards() != 4 {
		t.Fatalf("shards = %d, want 4", r.Shards())
	}
	h1 := &Handle{Connector: "evm", EVMAddr: chain.AddressFromBytes([]byte("a"))}
	h2 := &Handle{Connector: "algorand", AppID: 7}
	if err := r.Register("8FPHF8VV+X2", h1); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("8FPHF9WW+Y3", h2); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("8FPHF8VV+X2", h1); err == nil {
		t.Fatal("duplicate registration must fail")
	}
	if err := r.Register("", h1); err == nil {
		t.Fatal("empty area code must fail")
	}
	if err := r.Register("8FPHF0XX+Z4", nil); err == nil {
		t.Fatal("nil handle must fail")
	}
	if got, ok := r.Lookup("8FPHF8VV+X2"); !ok || got != h1 {
		t.Fatal("lookup must return the registered handle")
	}
	if _, ok := r.Lookup("nowhere"); ok {
		t.Fatal("unknown area must miss")
	}
	areas := r.Areas()
	if len(areas) != 2 || areas[0] != "8FPHF8VV+X2" || areas[1] != "8FPHF9WW+Y3" {
		t.Fatalf("Areas() = %v, want registration order", areas)
	}
	if r.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", r.Len())
	}
}

func TestAreaRegistryShardOf(t *testing.T) {
	r := NewAreaRegistry(4)
	// Stable across calls and independent of registration.
	for _, area := range []string{"A", "B", "C", "8FPHF8VV+X2"} {
		s := r.ShardOf(area)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%q) = %d out of range", area, s)
		}
		for i := 0; i < 5; i++ {
			if r.ShardOf(area) != s {
				t.Fatalf("ShardOf(%q) not stable", area)
			}
		}
	}
	// A clamped registry routes everything to shard 0.
	one := NewAreaRegistry(0)
	if one.Shards() != 1 || one.ShardOf("anything") != 0 {
		t.Fatal("shards must clamp to 1")
	}
}

func TestAreaRegistryConflictKey(t *testing.T) {
	r := NewAreaRegistry(2)
	evmAddr := chain.AddressFromBytes([]byte("contract"))
	if err := r.Register("evm-area", &Handle{Connector: "evm", EVMAddr: evmAddr}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("algo-area", &Handle{Connector: "algorand", AppID: 9}); err != nil {
		t.Fatal(err)
	}
	if k, ok := r.ConflictKey("evm-area"); !ok || k != chain.ContractKey(evmAddr) {
		t.Fatalf("evm key = %+v", k)
	}
	if k, ok := r.ConflictKey("algo-area"); !ok || k != chain.AppKey(9) {
		t.Fatalf("algorand key = %+v", k)
	}
	if _, ok := r.ConflictKey("nowhere"); ok {
		t.Fatal("unknown area must not yield a key")
	}
}

func TestCheckinContractBothChains(t *testing.T) {
	compiled, err := CompileCheckin()
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Report.Failures != 0 {
		t.Fatalf("checkin verification failures:\n%s", compiled.Report)
	}
	conns := []Connector{
		NewEVMConnector(eth.NewChain(eth.Goerli(), 51)),
		NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), 51)),
	}
	for _, conn := range conns {
		conn := conn
		t.Run(conn.Name(), func(t *testing.T) {
			reg := NewAreaRegistry(4)
			creator, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}
			user, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}
			area := "8FPHF8VV+X2"
			h, _, err := conn.Deploy(creator, compiled, []lang.Value{
				lang.BytesValue([]byte(area)),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := reg.Register(area, h); err != nil {
				t.Fatal(err)
			}

			v, _, err := conn.Invoke(user, h, "checkin",
				CallOpts{EscrowFund: true},
				lang.Uint64Value(42), lang.Uint64Value(3))
			if err != nil {
				t.Fatalf("checkin: %v", err)
			}
			if v.Uint != 1 {
				t.Fatalf("first checkin returned %d, want 1", v.Uint)
			}
			v, _, err = conn.Invoke(user, h, "checkin", CallOpts{},
				lang.Uint64Value(42), lang.Uint64Value(4))
			if err != nil {
				t.Fatal(err)
			}
			if v.Uint != 2 {
				t.Fatalf("second checkin returned %d, want 2", v.Uint)
			}

			if got, err := conn.View(h, "getCheckins"); err != nil || got.Uint != 2 {
				t.Fatalf("getCheckins = %+v (%v), want 2", got, err)
			}
			if got, _, err := conn.ReadMap(h, "last_seen", 42); err != nil || got.Uint != 4 {
				t.Fatalf("last_seen[42] = %+v (%v), want 4", got, err)
			}

			// The registry resolves the handle back and derives the same
			// conflict key the chains' partitioners would use.
			if k, ok := reg.ConflictKey(area); !ok {
				t.Fatal("registered area must yield a conflict key")
			} else if h.AppID != 0 && k != chain.AppKey(h.AppID) {
				t.Fatalf("key = %+v, want app key", k)
			} else if h.AppID == 0 && k != chain.ContractKey(h.EVMAddr) {
				t.Fatalf("key = %+v, want contract key", k)
			}
		})
	}
}
