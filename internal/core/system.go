package core

import (
	"crypto/ed25519"
	"fmt"
	"sync"

	"agnopol/internal/chain"
	"agnopol/internal/did"
	"agnopol/internal/faults"
	"agnopol/internal/hypercube"
	"agnopol/internal/ipfs"
	"agnopol/internal/lang"
	"agnopol/internal/olc"
	"agnopol/internal/polcrypto"
)

// DefaultHypercubeDimension is r for the DHT; the thesis example (Fig. 1.3)
// uses r = 6.
const DefaultHypercubeDimension = 6

// System bundles the off-chain substrates every actor shares: the DID
// registry (verifiable data registry), the IPFS swarm, the hypercube DHT,
// the Certification Authority and the compiled PoL contract.
type System struct {
	Rand     *chain.Rand
	Registry *did.Registry
	Auth     *did.Authenticator
	IPFS     *ipfs.Network
	Cube     *hypercube.Network
	CA       *CertificationAuthority
	Compiled *lang.Compiled
	// R is the hypercube dimension.
	R int

	mu       sync.Mutex
	handles  map[string]*Handle
	didIndex map[uint64]did.DID
	dir      witnessDirectory

	// sigs memoizes ed25519 signature verifications (see sigcache.go);
	// quorum paths re-check the same proof several times per claim.
	sigs *polcrypto.SigCache

	// obs holds the proof-pipeline instrumentation (see obs.go); nil when
	// uninstrumented. Set once via Instrument before actors run.
	obs *sysObs

	// flt injects the off-chain fault classes (witness churn, IPFS,
	// hypercube); nil when fault injection is off. retry is the policy
	// actors apply to recover; the zero policy means single attempts.
	flt   *faults.Injector
	retry faults.RetryPolicy
}

// NewSystem builds the shared substrate with a deterministic seed.
func NewSystem(seed uint64) (*System, error) {
	compiled, err := CompilePoL()
	if err != nil {
		return nil, err
	}
	rng := chain.NewRand(seed).Fork("core")
	reg := did.NewRegistry()
	s := &System{
		Rand:     rng,
		Registry: reg,
		Auth:     did.NewAuthenticator(reg, rng.Fork("did-auth")),
		IPFS:     ipfs.NewNetwork(),
		Cube:     hypercube.MustNew(DefaultHypercubeDimension),
		CA:       NewCertificationAuthority(),
		Compiled: compiled,
		R:        DefaultHypercubeDimension,
		handles:  make(map[string]*Handle),
		didIndex: make(map[uint64]did.DID),
		sigs:     polcrypto.NewSigCache(defaultSigCacheSize),
	}
	return s, nil
}

// SetResilience attaches the fault injector and retry policy to the
// system's off-chain substrates: the IPFS swarm and the hypercube consult
// the injector directly, and the actors drive recovery under pol.
func (s *System) SetResilience(inj *faults.Injector, pol faults.RetryPolicy) {
	s.flt = inj
	s.retry = pol
	s.IPFS.SetFaults(inj)
	s.Cube.SetFaults(inj)
}

// Faults returns the system's fault injector, nil when off.
func (s *System) Faults() *faults.Injector { return s.flt }

// RegisterDID creates a DID for a public key and indexes its UInt
// compression, mirroring the thesis' DID-generation smart contract (§2.1)
// plus the CA's pseudonym mapping.
func (s *System) RegisterDID(pub ed25519.PublicKey) (did.DID, error) {
	d, err := s.Registry.Register(pub, 0)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.didIndex[d.Uint64()] = d
	s.mu.Unlock()
	return d, nil
}

// DIDByUint resolves the UInt map key back to the full DID (the CA knows
// the pseudonym mapping, §2.1).
func (s *System) DIDByUint(key uint64) (did.DID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.didIndex[key]
	return d, ok
}

// RegisterHandle publishes a deployed contract handle under its ID so peers
// that find the ID in the hypercube can attach to it.
func (s *System) RegisterHandle(h *Handle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handles[h.ID()] = h
}

// HandleByID resolves a contract ID from the hypercube to a handle.
func (s *System) HandleByID(id string) (*Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handles[id]
	return h, ok
}

// NodeIDForOLC computes the hypercube node responsible for an area via the
// dual encoding.
func (s *System) NodeIDForOLC(code string) (uint64, error) {
	bs, err := olc.ToBitString(code, s.R)
	if err != nil {
		return 0, err
	}
	return bs.Uint64(), nil
}

// EntryNode maps an actor's DID to the hypercube node its device enters
// the DHT through (Fig. 2.3: the querying user contacts the network via
// their own node, then the query routes to the area's responsible node —
// entering via the target itself would make every route zero hops).
func (s *System) EntryNode(d did.DID) uint64 {
	return d.Uint64() & (1<<uint(s.R) - 1)
}

// LookupContract queries the hypercube for the contract of an area
// (Fig. 2.3 initial phase). via is the node the querying user enters the
// DHT through.
func (s *System) LookupContract(via uint64, code string) (*Handle, int, bool, error) {
	target, err := s.NodeIDForOLC(code)
	if err != nil {
		return nil, 0, false, err
	}
	entry, hops, ok, err := s.Cube.Get(via, target, code)
	if err != nil || !ok {
		return nil, hops, false, err
	}
	h, ok := s.HandleByID(entry.ContractID)
	if !ok {
		return nil, hops, false, fmt.Errorf("core: hypercube references unknown contract %q", entry.ContractID)
	}
	return h, hops, true, nil
}

// PublishContract stores a freshly deployed contract ID in the hypercube.
func (s *System) PublishContract(via uint64, code string, h *Handle) (int, error) {
	s.RegisterHandle(h)
	target, err := s.NodeIDForOLC(code)
	if err != nil {
		return 0, err
	}
	return s.Cube.Put(via, target, code, &hypercube.Entry{ContractID: h.ID(), OLC: code})
}

// CertificationAuthority keeps the witness public-key list delivered to
// verifiers (§2.1) and designates who may act as a verifier.
type CertificationAuthority struct {
	mu        sync.Mutex
	witnesses map[string]ed25519.PublicKey
	verifiers map[did.DID]bool
}

// NewCertificationAuthority returns an empty CA.
func NewCertificationAuthority() *CertificationAuthority {
	return &CertificationAuthority{
		witnesses: make(map[string]ed25519.PublicKey),
		verifiers: make(map[did.DID]bool),
	}
}

// RegisterWitness records a witness public key; every new witness
// communicates its key to the CA.
func (ca *CertificationAuthority) RegisterWitness(pub ed25519.PublicKey) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.witnesses[string(pub)] = append(ed25519.PublicKey(nil), pub...)
}

// WitnessList delivers the current witness keys (what verifiers iterate
// during signature checks).
func (ca *CertificationAuthority) WitnessList() []ed25519.PublicKey {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	out := make([]ed25519.PublicKey, 0, len(ca.witnesses))
	for _, pub := range ca.witnesses {
		out = append(out, pub)
	}
	return out
}

// IsKnownWitness reports whether a key belongs to a registered witness.
func (ca *CertificationAuthority) IsKnownWitness(pub ed25519.PublicKey) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	_, ok := ca.witnesses[string(pub)]
	return ok
}

// DesignateVerifier marks a DID as a trusted verifier ("permissioned
// verification": not everyone can verify, §2).
func (ca *CertificationAuthority) DesignateVerifier(d did.DID) {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	ca.verifiers[d] = true
}

// IsVerifier reports whether the DID may verify.
func (ca *CertificationAuthority) IsVerifier(d did.DID) bool {
	ca.mu.Lock()
	defer ca.mu.Unlock()
	return ca.verifiers[d]
}
