package core

import (
	"fmt"

	"agnopol/internal/lang"
)

// BuildPoLProgramV2 is the thesis contract extended with the features its
// future-work sections sketch:
//
//   - a deadline: after `deadline` (consensus time, seconds) anyone can
//     trigger close_timeout, returning the remaining balance to the creator
//     ("a timeout function will be called in order to close the contract
//     after a specific amount of time", §4.1.5 — e.g. "at the end of the
//     day", §4.1.4 fn 3);
//   - witness rewards: verify_with_witness additionally pays the witness
//     whose signature certified the proof ("a new strategy could consist in
//     send the reward to the witness after that verifier has to check his
//     signature placed on the proof", §2.8).
//
// The v1 program (BuildPoLProgram) remains the faithful reproduction of the
// artifact the paper evaluated; v2 is the implemented future work.
func BuildPoLProgramV2() *lang.Program {
	p := lang.NewProgram("pol-report-v2")

	p.DeclareGlobal("position", lang.TBytes)
	p.DeclareGlobal("creator", lang.TAddress)
	p.DeclareGlobal("creatorDid", lang.TUInt)
	p.DeclareGlobal("availableSits", lang.TUInt)
	p.DeclareGlobal("reward", lang.TUInt)
	p.DeclareGlobal("witnessReward", lang.TUInt)
	p.DeclareGlobal("deadline", lang.TUInt)
	p.DeclareMap("easy_map", lang.TUInt, lang.TBytes)

	p.SetConstructor(
		[]lang.Param{
			{Name: "position", Type: lang.TBytes},
			{Name: "did", Type: lang.TUInt},
			{Name: "rewardPerProver", Type: lang.TUInt},
			{Name: "rewardPerWitness", Type: lang.TUInt},
			{Name: "deadline", Type: lang.TUInt},
		},
		&lang.Require{Cond: lang.Gt(lang.A(4), &lang.Now{}), Msg: "deadline must be in the future"},
		&lang.SetGlobal{Name: "position", Value: lang.A(0)},
		&lang.SetGlobal{Name: "creator", Value: &lang.Caller{}},
		&lang.SetGlobal{Name: "creatorDid", Value: lang.A(1)},
		&lang.SetGlobal{Name: "reward", Value: lang.A(2)},
		&lang.SetGlobal{Name: "witnessReward", Value: lang.A(3)},
		&lang.SetGlobal{Name: "deadline", Value: lang.A(4)},
		&lang.SetGlobal{Name: "availableSits", Value: lang.U(MaxUsers)},
	)

	p.AddAPI(&lang.API{
		Name: "insert_data",
		Params: []lang.Param{
			{Name: "data", Type: lang.TBytes},
			{Name: "did", Type: lang.TUInt},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: lang.Lt(&lang.Now{}, lang.G("deadline")), Msg: "contract expired"},
			&lang.Assume{Cond: lang.Gt(lang.G("availableSits"), lang.U(0)), Msg: "contract is full"},
			&lang.Assume{Cond: &lang.Not{A: &lang.MapHas{Map: "easy_map", Key: lang.A(1)}}, Msg: "DID already attached"},
			&lang.MapSet{Map: "easy_map", Key: lang.A(1), Value: lang.A(0)},
			&lang.SetGlobal{Name: "availableSits", Value: lang.Sub(lang.G("availableSits"), lang.U(1))},
			&lang.Emit{Event: "reportData", Value: lang.A(1)},
			&lang.Return{Value: lang.G("availableSits")},
		},
	})

	p.AddAPI(&lang.API{
		Name:    "insert_money",
		Params:  []lang.Param{{Name: "money", Type: lang.TUInt}},
		Returns: lang.TUInt,
		Pay:     lang.A(0),
		Body: []lang.Stmt{
			&lang.Assume{Cond: lang.Gt(lang.A(0), lang.U(0)), Msg: "deposit must be positive"},
			&lang.Return{Value: &lang.Balance{}},
		},
	})

	// verify_with_witness pays prover AND witness when the pool covers
	// both. The total needed is reward + witnessReward; the balance guard
	// covers the sum, so the two transfers are individually funded.
	p.AddAPI(&lang.API{
		Name: "verify_with_witness",
		Params: []lang.Param{
			{Name: "did", Type: lang.TUInt},
			{Name: "proverWallet", Type: lang.TAddress},
			{Name: "witnessWallet", Type: lang.TAddress},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: &lang.MapHas{Map: "easy_map", Key: lang.A(0)}, Msg: "no data for DID"},
			&lang.If{
				Cond: lang.Ge(&lang.Balance{}, lang.Add(lang.G("reward"), lang.G("witnessReward"))),
				Then: []lang.Stmt{
					&lang.Require{Cond: lang.Ge(&lang.Balance{}, lang.G("reward")), Msg: "pool covers prover"},
					&lang.Transfer{Amount: lang.G("reward"), To: lang.A(1)},
					&lang.Require{Cond: lang.Ge(&lang.Balance{}, lang.G("witnessReward")), Msg: "pool covers witness"},
					&lang.Transfer{Amount: lang.G("witnessReward"), To: lang.A(2)},
					&lang.MapDel{Map: "easy_map", Key: lang.A(0)},
					&lang.Emit{Event: "reportVerification", Value: lang.A(0)},
					&lang.Return{Value: lang.U(1)},
				},
				Else: []lang.Stmt{
					&lang.Emit{Event: "issueDuringVerification", Value: lang.A(0)},
					&lang.Return{Value: lang.U(0)},
				},
			},
		},
	})

	// close_timeout: once expired, ANYONE can sweep the remainder to the
	// creator — so funds cannot be stranded by an absent creator.
	p.AddAPI(&lang.API{
		Name:    "close_timeout",
		Params:  []lang.Param{},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: lang.Ge(&lang.Now{}, lang.G("deadline")), Msg: "not expired yet"},
			&lang.Transfer{Amount: &lang.Balance{}, To: lang.G("creator")},
			&lang.Return{Value: lang.U(1)},
		},
	})

	p.AddView("getCtcBalance", lang.TUInt, &lang.Balance{})
	p.AddView("getReward", lang.TUInt, lang.G("reward"))
	p.AddView("getWitnessReward", lang.TUInt, lang.G("witnessReward"))
	p.AddView("getDeadline", lang.TUInt, lang.G("deadline"))
	p.AddView("getAvailableSits", lang.TUInt, lang.G("availableSits"))
	return p
}

// CompilePoLV2 compiles the extended contract.
func CompilePoLV2() (*lang.Compiled, error) {
	c, err := lang.Compile(BuildPoLProgramV2(), lang.Options{MaxBytesLen: 512, Precompiles: true})
	if err != nil {
		return nil, fmt.Errorf("core: compile PoL v2 contract: %w", err)
	}
	return c, nil
}
