package core

import (
	"fmt"

	"agnopol/internal/lang"
)

// BuildVerifyProgram is the proof-verification hot-path contract
// (contracts/pol-verify.pol): the on-chain half of the prover/verifier
// protocol reduced to its two cryptographic assumes so the precompiled
// lowering (DESIGN.md §14) carries the whole API cost.
//
//   - register(did, commitment) stores the prover's commitment
//     digest(loc ++ nonce ++ cid) under its DID;
//   - check_in(did, loc, nonce, cid, code) reveals the preimage, recomputes
//     the digest on-chain (one fused multi-range sha256 when compiled with
//     Precompiles), checks the stripped OLC area cell is a prefix of the
//     prover's full code, and bumps the verified counter;
//   - getVerified / getArea expose state for off-chain assertions.
func BuildVerifyProgram() *lang.Program {
	p := lang.NewProgram("pol-verify")

	p.DeclareGlobal("area", lang.TBytes)
	p.DeclareGlobal("verified", lang.TUInt)
	p.DeclareMap("proofs", lang.TUInt, lang.TBytes)

	p.SetConstructor(
		[]lang.Param{{Name: "area_", Type: lang.TBytes}},
		&lang.SetGlobal{Name: "area", Value: lang.A(0)},
		&lang.SetGlobal{Name: "verified", Value: lang.U(0)},
	)

	p.AddAPI(&lang.API{
		Name: "register",
		Params: []lang.Param{
			{Name: "did", Type: lang.TUInt},
			{Name: "commitment", Type: lang.TBytes},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: &lang.Not{A: &lang.MapHas{Map: "proofs", Key: lang.A(0)}}, Msg: "DID already registered"},
			&lang.MapSet{Map: "proofs", Key: lang.A(0), Value: lang.A(1)},
			&lang.Emit{Event: "reportRegister", Value: lang.A(0)},
			&lang.Return{Value: lang.A(0)},
		},
	})

	p.AddAPI(&lang.API{
		Name: "check_in",
		Params: []lang.Param{
			{Name: "did", Type: lang.TUInt},
			{Name: "loc", Type: lang.TBytes},
			{Name: "nonce", Type: lang.TBytes},
			{Name: "cid", Type: lang.TBytes},
			{Name: "code", Type: lang.TBytes},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: &lang.MapHas{Map: "proofs", Key: lang.A(0)}, Msg: "unknown DID"},
			&lang.Assume{
				Cond: lang.Eq(
					&lang.Digest{A: lang.Concat(lang.Concat(lang.A(1), lang.A(2)), lang.A(3))},
					&lang.MapGet{Map: "proofs", Key: lang.A(0)},
				),
				Msg: "commitment mismatch",
			},
			&lang.Assume{Cond: &lang.CellContains{Cell: lang.G("area"), Code: lang.A(4)}, Msg: "outside area"},
			&lang.SetGlobal{Name: "verified", Value: lang.Add(lang.G("verified"), lang.U(1))},
			&lang.Emit{Event: "reportCheckIn", Value: lang.A(0)},
			&lang.Return{Value: lang.G("verified")},
		},
	})

	p.AddView("getVerified", lang.TUInt, lang.G("verified"))
	p.AddView("getArea", lang.TBytes, lang.G("area"))
	return p
}

// CompileVerify compiles the proof-verification contract for both backends
// on the precompiled path.
func CompileVerify() (*lang.Compiled, error) {
	c, err := lang.Compile(BuildVerifyProgram(), lang.Options{MaxBytesLen: 512, Precompiles: true})
	if err != nil {
		return nil, fmt.Errorf("core: compile verify contract: %w", err)
	}
	return c, nil
}
