package core

import (
	"strings"
	"testing"
	"time"

	"agnopol/internal/eth"
	"agnopol/internal/faults"
	"agnopol/internal/lang"
)

// compilePing builds the smallest contract with a paid API, so the retry
// tests exercise the full submit path without PoL-contract ceremony.
func compilePing(t *testing.T) *lang.Compiled {
	t.Helper()
	p := lang.NewProgram("ping")
	p.DeclareGlobal("count", lang.TUInt)
	p.SetConstructor(nil)
	p.AddAPI(&lang.API{
		Name:    "ping",
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.SetGlobal{Name: "count", Value: lang.Add(lang.G("count"), lang.U(1))},
			&lang.Return{Value: lang.G("count")},
		},
	})
	c, err := lang.Compile(p, lang.Options{MaxBytesLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// newPingWorld deploys the ping contract on a clean Goerli chain; faults
// are attached only after deployment so the deploy itself never retries.
func newPingWorld(t *testing.T, seed uint64) (*eth.Chain, *EVMConnector, *Account, *Handle) {
	t.Helper()
	ch := eth.NewChain(eth.Goerli(), seed)
	conn := NewEVMConnector(ch)
	acct, err := conn.NewAccount(50)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := conn.Deploy(acct, compilePing(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ch, conn, acct, h
}

// TestInvokeRetriesThroughTxDrop drives Invoke into a certain-drop
// mempool with a two-fault budget: the call must succeed on the third
// attempt, report both retries, advance the simulated clock by the
// capped-exponential backoffs, and account both faults as recovered.
func TestInvokeRetriesThroughTxDrop(t *testing.T) {
	ch, conn, acct, h := newPingWorld(t, 1)
	inj := faults.NewInjector(&faults.Plan{
		Rates: map[string]float64{faults.ClassTxDrop: 1}, Burst: 2,
	}, 7, nil)
	ch.SetFaults(inj)
	conn.SetResilience(faults.DefaultRetry)

	before := conn.Now()
	v, op, err := conn.Invoke(acct, h, "ping", CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint != 1 {
		t.Fatalf("ping returned %d, want 1", v.Uint)
	}
	if op.Retries != 2 {
		t.Fatalf("retries = %d, want 2", op.Retries)
	}
	// DefaultRetry backs off 2s then 4s before the winning attempt.
	if waited := conn.Now() - before; waited < 6*time.Second {
		t.Fatalf("simulated clock advanced %v, want ≥ 6s of backoff", waited)
	}
	if op.Latency < 6*time.Second {
		t.Fatalf("latency %v does not span the backoff waits", op.Latency)
	}
	for _, s := range inj.Snapshot() {
		if s.Class != faults.ClassTxDrop {
			continue
		}
		if s.Injected != 2 || s.Recovered != 2 {
			t.Fatalf("tx_drop injected/recovered = %d/%d, want 2/2", s.Injected, s.Recovered)
		}
	}
}

// TestInvokeDeadlineOnSimulatedClock pins the per-call deadline: against
// an unbounded fault storm the call must give up with a deadline error
// once the cumulative simulated backoff would cross CallOpts.Deadline.
func TestInvokeDeadlineOnSimulatedClock(t *testing.T) {
	ch, conn, acct, h := newPingWorld(t, 2)
	ch.SetFaults(faults.NewInjector(&faults.Plan{
		Rates: map[string]float64{faults.ClassTxDrop: 1},
	}, 3, nil))

	before := conn.Now()
	_, _, err := conn.Invoke(acct, h, "ping", CallOpts{
		Deadline: 10 * time.Second,
		Retry:    faults.RetryPolicy{MaxAttempts: 1000, BaseBackoff: 2 * time.Second, MaxBackoff: 4 * time.Second},
	})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("want deadline error, got %v", err)
	}
	if cls, ok := faults.ClassOf(err); !ok || cls != faults.ClassTxDrop {
		t.Fatalf("deadline error lost its fault class: %v", err)
	}
	// The giving-up check runs before the sleep, so the clock stays at or
	// under the deadline.
	if waited := conn.Now() - before; waited > 10*time.Second {
		t.Fatalf("clock ran %v past a 10s deadline", waited)
	}
}

// TestZeroPolicySingleAttempt is the historical behaviour: without
// SetResilience and with zero CallOpts, a dropped submission surfaces
// immediately as its fault error — one attempt, no retries, no recovery.
func TestZeroPolicySingleAttempt(t *testing.T) {
	ch, conn, acct, h := newPingWorld(t, 4)
	inj := faults.NewInjector(&faults.Plan{
		Rates: map[string]float64{faults.ClassTxDrop: 1},
	}, 5, nil)
	ch.SetFaults(inj)

	_, op, err := conn.Invoke(acct, h, "ping", CallOpts{})
	if err == nil {
		t.Fatal("want a surfaced fault, got success")
	}
	if cls, ok := faults.ClassOf(err); !ok || cls != faults.ClassTxDrop {
		t.Fatalf("error is not a tx_drop fault: %v", err)
	}
	_ = op
	for _, s := range inj.Snapshot() {
		if s.Class == faults.ClassTxDrop && s.Recovered != 0 {
			t.Fatalf("single-attempt failure recorded %d recoveries", s.Recovered)
		}
	}
}

// TestDeprecatedCallMatchesInvoke keeps the old entry points honest: Call
// must be exactly Invoke with CallOpts{Pay}.
func TestDeprecatedCallMatchesInvoke(t *testing.T) {
	_, conn, acct, h := newPingWorld(t, 6)
	vOld, _, err := conn.Call(acct, h, "ping", 0)
	if err != nil {
		t.Fatal(err)
	}
	vNew, _, err := conn.Invoke(acct, h, "ping", CallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if vOld.Uint != 1 || vNew.Uint != 2 {
		t.Fatalf("counter sequence %d,%d — want 1,2", vOld.Uint, vNew.Uint)
	}
}
