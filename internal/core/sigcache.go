package core

import (
	"container/list"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sync"

	"agnopol/internal/polcrypto"
)

// defaultSigCacheSize bounds the signature-verification memo. A quorum run
// re-checks every proof in a bundle at collection, submission and
// verification time; a few thousand entries cover the largest experiment
// matrix while keeping the cache at ~1 MiB worst case.
const defaultSigCacheSize = 4096

// sigCacheKey is the full verification input. ed25519 keys and signatures
// have fixed sizes and the system only ever signs 32-byte proof hashes, so
// the key is a comparable value type — no per-lookup allocation.
type sigCacheKey struct {
	pub  [ed25519.PublicKeySize]byte
	hash [32]byte
	sig  [ed25519.SignatureSize]byte
}

type sigCacheEntry struct {
	key sigCacheKey
	ok  bool
}

// sigCache memoizes (pubkey, hash, signature) → valid under a bounded LRU.
// Both outcomes are cached: a forged signature stays invalid forever, and
// re-rejecting it should be as cheap as re-accepting a genuine one.
type sigCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	idx map[sigCacheKey]*list.Element
}

func newSigCache(capacity int) *sigCache {
	if capacity < 1 {
		capacity = 1
	}
	return &sigCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[sigCacheKey]*list.Element, capacity),
	}
}

// get returns the memoized verdict and whether it was present.
func (c *sigCache) get(k sigCacheKey) (ok, hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.idx[k]
	if !found {
		return false, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*sigCacheEntry).ok, true
}

// put records a verdict, evicting the least-recently-used entry at capacity.
func (c *sigCache) put(k sigCacheKey, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.idx[k]; found {
		el.Value.(*sigCacheEntry).ok = ok
		c.ll.MoveToFront(el)
		return
	}
	c.idx[k] = c.ll.PushFront(&sigCacheEntry{key: k, ok: ok})
	if c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.idx, back.Value.(*sigCacheEntry).key)
	}
}

// len reports the number of cached verdicts.
func (c *sigCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// sigKeyFor packs the verification input into a cache key. Inputs with a
// non-canonical shape (wrong key or signature length, message that is not a
// 32-byte hash) are not cacheable.
func sigKeyFor(pub ed25519.PublicKey, msg, sig []byte) (sigCacheKey, bool) {
	var k sigCacheKey
	if len(pub) != ed25519.PublicKeySize || len(msg) != 32 || len(sig) != ed25519.SignatureSize {
		return k, false
	}
	copy(k.pub[:], pub)
	copy(k.hash[:], msg)
	copy(k.sig[:], sig)
	return k, true
}

// verifySig is polcrypto.Verify memoized through the system's signature
// cache. Quorum validation re-checks the same (witness, hash, signature)
// triple at bundle collection, submission and on-chain verification; the
// scalar math runs once and every re-check is a map hit. Hits and misses
// feed core_sigcache_total when the system is instrumented.
func (s *System) verifySig(pub ed25519.PublicKey, msg, sig []byte) bool {
	key, cacheable := sigKeyFor(pub, msg, sig)
	if !cacheable {
		return polcrypto.Verify(pub, msg, sig)
	}
	if ok, hit := s.sigs.get(key); hit {
		s.countSigCache(true)
		return ok
	}
	s.countSigCache(false)
	ok := polcrypto.Verify(pub, msg, sig)
	s.sigs.put(key, ok)
	return ok
}

// verifyProof is LocationProof.Verify routed through the signature cache.
// The public Verify stays self-contained (callers without a System keep
// working); every in-system verification path goes through here.
func (s *System) verifyProof(p *LocationProof) error {
	if p.Request.Hash() != p.Hash {
		return errors.New("core: proof hash does not match request fields")
	}
	if !s.verifySig(p.WitnessPub, p.Hash[:], p.Signature) {
		return fmt.Errorf("core: %w", polcrypto.ErrBadSignature)
	}
	return nil
}

// validateBundle is ProofBundle.Validate with cached signature checks —
// same consistency rules, same error shapes.
func (s *System) validateBundle(b *ProofBundle) error {
	if len(b.Proofs) == 0 {
		return fmt.Errorf("%w: empty bundle", ErrBundleInconsistent)
	}
	first := b.Proofs[0].Request
	for i, p := range b.Proofs {
		if err := s.verifyProof(p); err != nil {
			return fmt.Errorf("core: bundle proof %d: %w", i, err)
		}
		r := p.Request
		if r.DID != first.DID || r.OLC != first.OLC || r.CID != first.CID || r.Wallet != first.Wallet {
			return fmt.Errorf("%w: proof %d", ErrBundleInconsistent, i)
		}
	}
	return nil
}
