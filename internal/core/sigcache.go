package core

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"agnopol/internal/polcrypto"
)

// The bounded LRU signature memo lives in polcrypto.SigCache so the VM
// precompile layer (internal/precompile) can share the exact implementation
// without importing core. This file keeps the System-level wiring: counter
// instrumentation and the proof/bundle verification paths.

// defaultSigCacheSize bounds the system's signature-verification memo.
const defaultSigCacheSize = polcrypto.DefaultSigCacheSize

// verifySig is polcrypto.Verify memoized through the system's signature
// cache. Quorum validation re-checks the same (witness, hash, signature)
// triple at bundle collection, submission and on-chain verification; the
// scalar math runs once and every re-check is a map hit. Hits and misses
// feed core_sigcache_total when the system is instrumented.
func (s *System) verifySig(pub ed25519.PublicKey, msg, sig []byte) bool {
	key, cacheable := polcrypto.SigKeyFor(pub, msg, sig)
	if !cacheable {
		return polcrypto.Verify(pub, msg, sig)
	}
	if ok, hit := s.sigs.Get(key); hit {
		s.countSigCache(true)
		return ok
	}
	s.countSigCache(false)
	ok := polcrypto.Verify(pub, msg, sig)
	s.sigs.Put(key, ok)
	return ok
}

// verifyProof is LocationProof.Verify routed through the signature cache.
// The public Verify stays self-contained (callers without a System keep
// working); every in-system verification path goes through here.
func (s *System) verifyProof(p *LocationProof) error {
	if p.Request.Hash() != p.Hash {
		return errors.New("core: proof hash does not match request fields")
	}
	if !s.verifySig(p.WitnessPub, p.Hash[:], p.Signature) {
		return fmt.Errorf("core: %w", polcrypto.ErrBadSignature)
	}
	return nil
}

// validateBundle is ProofBundle.Validate with cached signature checks —
// same consistency rules, same error shapes.
func (s *System) validateBundle(b *ProofBundle) error {
	if len(b.Proofs) == 0 {
		return fmt.Errorf("%w: empty bundle", ErrBundleInconsistent)
	}
	first := b.Proofs[0].Request
	for i, p := range b.Proofs {
		if err := s.verifyProof(p); err != nil {
			return fmt.Errorf("core: bundle proof %d: %w", i, err)
		}
		r := p.Request
		if r.DID != first.DID || r.OLC != first.OLC || r.CID != first.CID || r.Wallet != first.Wallet {
			return fmt.Errorf("%w: proof %d", ErrBundleInconsistent, i)
		}
	}
	return nil
}
