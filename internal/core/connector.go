package core

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/eth"
	"agnopol/internal/faults"
	"agnopol/internal/lang"
)

// Connector is the blockchain-agnostic runtime interface (the role of the
// Reach JS standard library, §2.9.3): the same compiled program and the
// same frontend calls run against any implementation. The simulator ships
// two — EVMConnector (Ropsten/Goerli/Polygon) and AlgorandConnector.
type Connector interface {
	// Name of the underlying network (e.g. "goerli").
	Name() string
	// Unit of the native currency.
	Unit() chain.Unit
	// Now is the network's simulated time.
	Now() time.Duration
	// NewAccount creates a funded account (whole tokens).
	NewAccount(tokens float64) (*Account, error)
	// Balance of an account in base units.
	Balance(acct *Account) chain.Amount

	// Deploy publishes the compiled contract with constructor args,
	// retrying transient injected faults under the connector's resilience
	// policy.
	Deploy(acct *Account, compiled *lang.Compiled, args []lang.Value) (*Handle, *OpResult, error)
	// Invoke calls an API under the given options: payment, escrow
	// funding and the resilience policy all travel in CallOpts. This is
	// the one call entry point; Call and CallWithEscrowFunding are its
	// deprecated fixed-option forms.
	Invoke(acct *Account, h *Handle, api string, opts CallOpts, args ...lang.Value) (lang.Value, *OpResult, error)
	// Call invokes an API; pay is the attached native amount in base
	// units.
	//
	// Deprecated: use Invoke with CallOpts{Pay: pay}.
	Call(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error)
	// EscrowFunding is the amount the first call after deployment must
	// carry to activate the contract's account (Algorand's MinBalance;
	// zero on EVM chains).
	EscrowFunding() uint64
	// CallWithEscrowFunding is Call with an escrow-funding payment folded
	// into the same atomic operation.
	//
	// Deprecated: use Invoke with CallOpts{Pay: pay, EscrowFund: true}.
	CallWithEscrowFunding(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error)
	// SetResilience installs the default retry policy Invoke and Deploy
	// apply when CallOpts carries none. The zero policy (the initial
	// state) means a single attempt — the historical behaviour.
	SetResilience(pol faults.RetryPolicy)
	// Sleep advances the connector's simulated clock — the wait primitive
	// backoff runs on.
	Sleep(d time.Duration)
	// View evaluates a view at no cost.
	View(h *Handle, name string) (lang.Value, error)
	// ReadGlobal and ReadMap are the free frontend state reads.
	ReadGlobal(h *Handle, name string) (lang.Value, error)
	ReadMap(h *Handle, mapName string, key uint64) (lang.Value, bool, error)
	// ContractBalance is the contract's native balance in base units.
	ContractBalance(h *Handle) uint64
}

// Account is a chain account usable through a Connector.
type Account struct {
	evm  *eth.Account
	algo *algorand.Account
}

// EVMAccount wraps an externally-created Ethereum-family account — e.g.
// one whose key a harness derived from its own seed stream and funded via
// eth.Chain.Fund — for use through a Connector.
func EVMAccount(a *eth.Account) *Account { return &Account{evm: a} }

// AlgorandAccount wraps an externally-created Algorand account for use
// through a Connector.
func AlgorandAccount(a *algorand.Account) *Account { return &Account{algo: a} }

// Address returns the 20-byte account address.
func (a *Account) Address() [20]byte {
	if a.evm != nil {
		return a.evm.Address
	}
	return a.algo.Address
}

// EVM returns the underlying Ethereum-family account, or nil on other
// connectors — for callers that need chain-native operations beyond the
// Connector interface.
func (a *Account) EVM() *eth.Account { return a.evm }

// Algorand returns the underlying Algorand account, or nil on other
// connectors (e.g. for ASA opt-ins and transfers).
func (a *Account) Algorand() *algorand.Account { return a.algo }

// Handle identifies a deployed contract on some connector — the
// "contract id" users exchange through the hypercube (§2.2).
type Handle struct {
	Connector string
	// EVMAddr is set on Ethereum-family chains; AppID on Algorand.
	EVMAddr  chain.Address
	AppID    uint64
	Compiled *lang.Compiled
}

// ID renders the handle as the string stored in the hypercube.
func (h *Handle) ID() string {
	if h.AppID != 0 {
		return fmt.Sprintf("%s/app/%d", h.Connector, h.AppID)
	}
	return fmt.Sprintf("%s/%s", h.Connector, h.EVMAddr)
}

// OpResult is the measured outcome of one frontend operation — the latency
// and fee samples the evaluation chapter aggregates. Latency spans every
// attempt including backoff waits; Fee and GasUsed are what the chain
// actually charged (dropped submissions cost nothing).
type OpResult struct {
	Latency  time.Duration
	Fee      chain.Amount
	GasUsed  uint64
	Receipts []*chain.Receipt
	// Retries counts the extra attempts the resilience layer needed; 0 on
	// the happy path.
	Retries int
}

// CallOpts carries everything about how an API call should run: the
// attached payment, whether the escrow activation deposit rides along, and
// the resilience policy for transient injected faults.
type CallOpts struct {
	// Pay is the attached native amount in base units.
	Pay uint64
	// EscrowFund folds the contract-account activation deposit
	// (EscrowFunding) into the same atomic operation.
	EscrowFund bool
	// Deadline bounds the call's total simulated time across retries; it
	// overrides the retry policy's own deadline when set.
	Deadline time.Duration
	// Retry overrides the connector's default resilience policy for this
	// call. The zero value defers to the connector.
	Retry faults.RetryPolicy
}

// ErrAPIRejected reports an API call rejected on-chain (assume failure,
// insufficient funds…).
var ErrAPIRejected = errors.New("core: API call rejected")

// retrier is the connector-side surface the shared retry driver needs.
type retrier interface {
	Now() time.Duration
	Sleep(d time.Duration)
	defaultRetry() faults.RetryPolicy
	injector() *faults.Injector
}

// resolveRetry merges per-call options with the connector default policy.
func resolveRetry(c retrier, opts CallOpts) faults.RetryPolicy {
	pol := opts.Retry
	if pol.IsZero() {
		pol = c.defaultRetry()
	}
	if opts.Deadline > 0 {
		pol.Deadline = opts.Deadline
	}
	return pol
}

// withRetry drives once() under a resilience policy: transient injected
// faults back off (capped exponential, on the simulated clock) and retry
// until the attempt or deadline budget runs out; any other error is
// permanent. On eventual success each earlier transient failure counts as
// recovered.
func withRetry(c retrier, pol faults.RetryPolicy, once func() error) (retries int, err error) {
	start := c.Now()
	var overcome []string
	for attempt := 1; ; attempt++ {
		err = once()
		if err == nil {
			for _, cls := range overcome {
				c.injector().Recover(cls)
			}
			return attempt - 1, nil
		}
		cls, transient := faults.ClassOf(err)
		if !transient {
			return attempt - 1, err
		}
		if attempt >= pol.Attempts() {
			return attempt - 1, fmt.Errorf("core: giving up after %d attempts: %w", attempt, err)
		}
		backoff := pol.Backoff(attempt)
		if pol.Deadline > 0 && c.Now()-start+backoff > pol.Deadline {
			return attempt - 1, fmt.Errorf("core: deadline %v exceeded after %d attempts: %w", pol.Deadline, attempt, err)
		}
		overcome = append(overcome, cls)
		c.Sleep(backoff)
	}
}

// --- EVM connector ---

// EVMConnector adapts an Ethereum-family chain.
type EVMConnector struct {
	client *eth.Client
	retry  faults.RetryPolicy
}

// NewEVMConnector wraps a chain.
func NewEVMConnector(c *eth.Chain) *EVMConnector {
	return &EVMConnector{client: eth.NewClient(c)}
}

// Chain exposes the underlying chain.
func (e *EVMConnector) Chain() *eth.Chain { return e.client.Chain() }

var _ Connector = (*EVMConnector)(nil)

// Name implements Connector.
func (e *EVMConnector) Name() string { return e.client.Chain().Config().Name }

// Unit implements Connector.
func (e *EVMConnector) Unit() chain.Unit { return e.client.Chain().Config().Unit }

// Now implements Connector.
func (e *EVMConnector) Now() time.Duration { return e.client.Chain().Now() }

// Sleep implements Connector.
func (e *EVMConnector) Sleep(d time.Duration) { e.client.Sleep(d) }

// SetResilience implements Connector.
func (e *EVMConnector) SetResilience(pol faults.RetryPolicy) { e.retry = pol }

func (e *EVMConnector) defaultRetry() faults.RetryPolicy { return e.retry }

func (e *EVMConnector) injector() *faults.Injector { return e.client.Chain().Faults() }

// NewAccount implements Connector.
func (e *EVMConnector) NewAccount(tokens float64) (*Account, error) {
	amt := chain.AmountFromTokens(tokens, e.Unit())
	return &Account{evm: e.client.Chain().NewAccount(amt.Base)}, nil
}

// Balance implements Connector.
func (e *EVMConnector) Balance(acct *Account) chain.Amount {
	return e.client.Chain().Balance(acct.evm.Address)
}

// Deploy implements Connector: a single creation transaction carrying the
// runtime code and the constructor calldata, resubmitted under the default
// resilience policy when the mempool drops it.
func (e *EVMConnector) Deploy(acct *Account, compiled *lang.Compiled, args []lang.Value) (*Handle, *OpResult, error) {
	start := e.Now()
	ctorData, err := lang.EncodeArgsEVM(lang.CtorMethodName, compiled.Program.Ctor.Params, args)
	if err != nil {
		return nil, nil, err
	}
	gasLimit := compiled.Analysis.EVMDeployGas + compiled.Analysis.EVMDeployGas/4
	var (
		rcpt *chain.Receipt
		addr chain.Address
	)
	retries, err := withRetry(e, e.defaultRetry(), func() error {
		var err error
		rcpt, addr, err = e.client.Deploy(acct.evm, compiled.EVMCode, ctorData, nil, gasLimit)
		return err
	})
	res := opResult(start, e.Now(), rcpt)
	res.Retries = retries
	if err != nil {
		return nil, res, err
	}
	h := &Handle{Connector: e.Name(), EVMAddr: addr, Compiled: compiled}
	return h, res, nil
}

// Invoke implements Connector.
func (e *EVMConnector) Invoke(acct *Account, h *Handle, api string, opts CallOpts, args ...lang.Value) (lang.Value, *OpResult, error) {
	start := e.Now()
	var (
		v   lang.Value
		res *OpResult
	)
	retries, err := withRetry(e, resolveRetry(e, opts), func() error {
		var err error
		v, res, err = e.callOnce(acct, h, api, opts.Pay, args)
		return err
	})
	if res != nil {
		res.Latency = e.Now() - start
		res.Retries = retries
	}
	return v, res, err
}

// callOnce is one attempt of an API call.
func (e *EVMConnector) callOnce(acct *Account, h *Handle, api string, pay uint64, args []lang.Value) (lang.Value, *OpResult, error) {
	start := e.Now()
	a := h.Compiled.Program.FindAPI(api)
	if a == nil {
		return lang.Value{}, nil, fmt.Errorf("core: unknown API %q", api)
	}
	data, err := lang.EncodeArgsEVM(api, a.Params, args)
	if err != nil {
		return lang.Value{}, nil, err
	}
	var cost *analysisCost
	for i := range h.Compiled.Analysis.Methods {
		if h.Compiled.Analysis.Methods[i].Name == api {
			cost = &analysisCost{gas: h.Compiled.Analysis.Methods[i].TotalEVMGas()}
		}
	}
	gasLimit := uint64(eth.DefaultGasLimit)
	if cost != nil {
		gasLimit = cost.gas + cost.gas/4
	}
	rcpt, err := e.client.Call(acct.evm, h.EVMAddr, data, new(big.Int).SetUint64(pay), gasLimit)
	if err != nil {
		return lang.Value{}, opResult(start, e.Now(), rcpt), err
	}
	// The connector's event poll: Reach frontends wait for the call's
	// effects to surface before returning.
	e.client.APIExtraDelay()
	res := opResult(start, e.Now(), rcpt)
	if rcpt.Reverted {
		return lang.Value{}, res, fmt.Errorf("%w: %s: %s", ErrAPIRejected, api, rcpt.RevertMsg)
	}
	v, err := lang.DecodeReturnEVM(a.Returns, rcpt.ReturnValue)
	if err != nil {
		return lang.Value{}, res, err
	}
	return v, res, nil
}

type analysisCost struct{ gas uint64 }

// EscrowFunding implements Connector: EVM contracts need no activation
// deposit.
func (e *EVMConnector) EscrowFunding() uint64 { return 0 }

// Call implements Connector.
//
// Deprecated: use Invoke with CallOpts{Pay: pay}.
func (e *EVMConnector) Call(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return e.Invoke(acct, h, api, CallOpts{Pay: pay}, args...)
}

// CallWithEscrowFunding implements Connector; identical to Call on EVM.
//
// Deprecated: use Invoke with CallOpts{Pay: pay, EscrowFund: true}.
func (e *EVMConnector) CallWithEscrowFunding(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return e.Invoke(acct, h, api, CallOpts{Pay: pay, EscrowFund: true}, args...)
}

// View implements Connector.
func (e *EVMConnector) View(h *Handle, name string) (lang.Value, error) {
	v, ok := h.Compiled.Program.FindView(name)
	if !ok {
		return lang.Value{}, fmt.Errorf("core: unknown view %q", name)
	}
	data, err := lang.EncodeArgsEVM(name, nil, nil)
	if err != nil {
		return lang.Value{}, err
	}
	out, err := e.client.View(h.EVMAddr, data)
	if err != nil {
		return lang.Value{}, err
	}
	return lang.DecodeReturnEVM(v.Type, out)
}

// ReadGlobal implements Connector.
func (e *EVMConnector) ReadGlobal(h *Handle, name string) (lang.Value, error) {
	get := func(key chain.Hash32) chain.Hash32 {
		return e.client.Chain().StorageAt(h.EVMAddr, key)
	}
	return lang.ReadGlobalEVM(get, h.Compiled.Program, name)
}

// ReadMap implements Connector.
func (e *EVMConnector) ReadMap(h *Handle, mapName string, key uint64) (lang.Value, bool, error) {
	get := func(k chain.Hash32) chain.Hash32 {
		return e.client.Chain().StorageAt(h.EVMAddr, k)
	}
	return lang.ReadMapEVM(get, h.Compiled.Program, mapName, key)
}

// ContractBalance implements Connector.
func (e *EVMConnector) ContractBalance(h *Handle) uint64 {
	return e.client.Chain().Balance(h.EVMAddr).Base.Uint64()
}

func opResult(start, end time.Duration, rcpts ...*chain.Receipt) *OpResult {
	res := &OpResult{Latency: end - start}
	for _, r := range rcpts {
		if r == nil {
			continue
		}
		res.Receipts = append(res.Receipts, r)
		res.GasUsed += r.GasUsed
		res.Fee = res.Fee.Add(r.Fee)
	}
	return res
}

// --- Algorand connector ---

// AlgorandConnector adapts the Algorand chain.
type AlgorandConnector struct {
	client *algorand.Client
	retry  faults.RetryPolicy
}

// NewAlgorandConnector wraps a chain.
func NewAlgorandConnector(c *algorand.Chain) *AlgorandConnector {
	return &AlgorandConnector{client: algorand.NewClient(c)}
}

// Chain exposes the underlying chain.
func (a *AlgorandConnector) Chain() *algorand.Chain { return a.client.Chain() }

var _ Connector = (*AlgorandConnector)(nil)

// Name implements Connector.
func (a *AlgorandConnector) Name() string { return a.client.Chain().Config().Name }

// Unit implements Connector.
func (a *AlgorandConnector) Unit() chain.Unit { return a.client.Chain().Config().Unit }

// Now implements Connector.
func (a *AlgorandConnector) Now() time.Duration { return a.client.Chain().Now() }

// Sleep implements Connector.
func (a *AlgorandConnector) Sleep(d time.Duration) { a.client.Sleep(d) }

// SetResilience implements Connector.
func (a *AlgorandConnector) SetResilience(pol faults.RetryPolicy) { a.retry = pol }

func (a *AlgorandConnector) defaultRetry() faults.RetryPolicy { return a.retry }

func (a *AlgorandConnector) injector() *faults.Injector { return a.client.Chain().Faults() }

// NewAccount implements Connector.
func (a *AlgorandConnector) NewAccount(tokens float64) (*Account, error) {
	micro := uint64(tokens * 1e6)
	return &Account{algo: a.client.Chain().NewAccount(micro)}, nil
}

// Balance implements Connector.
func (a *AlgorandConnector) Balance(acct *Account) chain.Amount {
	return a.client.Chain().Balance(acct.algo.Address)
}

// Deploy implements Connector: the application-creation transaction. The
// escrow account still needs its MinBalance deposit before it can hold
// funds; that payment rides the creator's first call
// (CallWithEscrowFunding) — the extra deployment traffic the paper
// attributes to "the design of the network" (§5.1.5).
func (a *AlgorandConnector) Deploy(acct *Account, compiled *lang.Compiled, args []lang.Value) (*Handle, *OpResult, error) {
	start := a.Now()
	ctorArgs, err := lang.EncodeArgsTEAL("", compiled.Program.Ctor.Params, args)
	if err != nil {
		return nil, nil, err
	}
	var (
		rcpt1 *chain.Receipt
		appID uint64
	)
	retries, err := withRetry(a, a.defaultRetry(), func() error {
		var err error
		rcpt1, appID, err = a.client.CreateApp(acct.algo, compiled.TEALSource, ctorArgs)
		return err
	})
	res := opResult(start, a.Now(), rcpt1)
	res.Retries = retries
	if err != nil {
		return nil, res, err
	}
	h := &Handle{Connector: a.Name(), AppID: appID, Compiled: compiled}
	return h, res, nil
}

// EscrowFunding implements Connector.
func (a *AlgorandConnector) EscrowFunding() uint64 { return algorand.MinBalance }

// Invoke implements Connector.
func (a *AlgorandConnector) Invoke(acct *Account, h *Handle, api string, opts CallOpts, args ...lang.Value) (lang.Value, *OpResult, error) {
	escrowFund := uint64(0)
	if opts.EscrowFund {
		escrowFund = algorand.MinBalance
	}
	start := a.Now()
	var (
		v   lang.Value
		res *OpResult
	)
	retries, err := withRetry(a, resolveRetry(a, opts), func() error {
		var err error
		v, res, err = a.callOnce(acct, h, api, opts.Pay, escrowFund, args)
		return err
	})
	if res != nil {
		res.Latency = a.Now() - start
		res.Retries = retries
	}
	return v, res, err
}

// CallWithEscrowFunding implements Connector: the API call grouped with the
// MinBalance funding payment in one atomic operation.
//
// Deprecated: use Invoke with CallOpts{Pay: pay, EscrowFund: true}.
func (a *AlgorandConnector) CallWithEscrowFunding(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return a.Invoke(acct, h, api, CallOpts{Pay: pay, EscrowFund: true}, args...)
}

// Call implements Connector.
//
// Deprecated: use Invoke with CallOpts{Pay: pay}.
func (a *AlgorandConnector) Call(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return a.Invoke(acct, h, api, CallOpts{Pay: pay}, args...)
}

// callOnce is one attempt of an API call.
func (a *AlgorandConnector) callOnce(acct *Account, h *Handle, api string, pay, escrowFund uint64, args []lang.Value) (lang.Value, *OpResult, error) {
	start := a.Now()
	ap := h.Compiled.Program.FindAPI(api)
	if ap == nil {
		return lang.Value{}, nil, fmt.Errorf("core: unknown API %q", api)
	}
	appArgs, err := lang.EncodeArgsTEAL(api, ap.Params, args)
	if err != nil {
		return lang.Value{}, nil, err
	}
	rcpt, err := a.client.CallApp(acct.algo, h.AppID, appArgs, pay, escrowFund)
	if err != nil {
		return lang.Value{}, opResult(start, a.Now(), rcpt), err
	}
	res := opResult(start, a.Now(), rcpt)
	if rcpt.Reverted {
		return lang.Value{}, res, fmt.Errorf("%w: %s: %s", ErrAPIRejected, api, rcpt.RevertMsg)
	}
	v, err := lang.DecodeReturnTEAL(ap.Returns, rcpt.ReturnValue)
	if err != nil {
		return lang.Value{}, res, err
	}
	return v, res, nil
}

// View implements Connector: evaluated by simulation, free of charge.
func (a *AlgorandConnector) View(h *Handle, name string) (lang.Value, error) {
	v, ok := h.Compiled.Program.FindView(name)
	if !ok {
		return lang.Value{}, fmt.Errorf("core: unknown view %q", name)
	}
	appArgs, err := lang.EncodeArgsTEAL("view:"+name, nil, nil)
	if err != nil {
		return lang.Value{}, err
	}
	res, err := a.client.Simulate(h.AppID, chain.Address{}, appArgs)
	if err != nil {
		return lang.Value{}, err
	}
	if !res.Approved {
		return lang.Value{}, fmt.Errorf("core: view %q rejected: %v", name, res.Err)
	}
	return lang.DecodeReturnTEAL(v.Type, res.Return)
}

// ReadGlobal implements Connector.
func (a *AlgorandConnector) ReadGlobal(h *Handle, name string) (lang.Value, error) {
	gi := -1
	for i, g := range h.Compiled.Program.Globals {
		if g.Name == name {
			gi = i
		}
	}
	if gi < 0 {
		return lang.Value{}, fmt.Errorf("core: unknown global %q", name)
	}
	v, ok := a.client.Chain().AppGlobal(h.AppID, lang.TEALGlobalKey(name))
	if !ok {
		return lang.Value{}, fmt.Errorf("core: global %q not set", name)
	}
	return lang.DecodeTEALValue(h.Compiled.Program.Globals[gi].Type, v)
}

// ReadMap implements Connector.
func (a *AlgorandConnector) ReadMap(h *Handle, mapName string, key uint64) (lang.Value, bool, error) {
	k, err := lang.TEALMapKey(h.Compiled.Program, mapName, key)
	if err != nil {
		return lang.Value{}, false, err
	}
	v, ok := a.client.Chain().AppGlobal(h.AppID, k)
	if !ok {
		return lang.Value{}, false, nil
	}
	var valType lang.Type
	for _, m := range h.Compiled.Program.Maps {
		if m.Name == mapName {
			valType = m.Value
		}
	}
	out, err := lang.DecodeTEALValue(valType, v)
	if err != nil {
		return lang.Value{}, false, err
	}
	return out, true, nil
}

// ContractBalance implements Connector: the spendable balance, i.e. the
// escrow balance net of the locked minimum balance, so the same number
// means the same thing on every connector.
func (a *AlgorandConnector) ContractBalance(h *Handle) uint64 {
	total := a.client.Chain().Balance(a.client.Chain().AppAddress(h.AppID)).Base.Uint64()
	if total < algorand.MinBalance {
		return 0
	}
	return total - algorand.MinBalance
}
