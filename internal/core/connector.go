package core

import (
	"errors"
	"fmt"
	"math/big"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/chain"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
)

// Connector is the blockchain-agnostic runtime interface (the role of the
// Reach JS standard library, §2.9.3): the same compiled program and the
// same frontend calls run against any implementation. The simulator ships
// two — EVMConnector (Ropsten/Goerli/Polygon) and AlgorandConnector.
type Connector interface {
	// Name of the underlying network (e.g. "goerli").
	Name() string
	// Unit of the native currency.
	Unit() chain.Unit
	// Now is the network's simulated time.
	Now() time.Duration
	// NewAccount creates a funded account (whole tokens).
	NewAccount(tokens float64) (*Account, error)
	// Balance of an account in base units.
	Balance(acct *Account) chain.Amount

	// Deploy publishes the compiled contract with constructor args.
	Deploy(acct *Account, compiled *lang.Compiled, args []lang.Value) (*Handle, *OpResult, error)
	// Call invokes an API; pay is the attached native amount in base
	// units.
	Call(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error)
	// EscrowFunding is the amount the first call after deployment must
	// carry to activate the contract's account (Algorand's MinBalance;
	// zero on EVM chains).
	EscrowFunding() uint64
	// CallWithEscrowFunding is Call with an escrow-funding payment folded
	// into the same atomic operation.
	CallWithEscrowFunding(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error)
	// View evaluates a view at no cost.
	View(h *Handle, name string) (lang.Value, error)
	// ReadGlobal and ReadMap are the free frontend state reads.
	ReadGlobal(h *Handle, name string) (lang.Value, error)
	ReadMap(h *Handle, mapName string, key uint64) (lang.Value, bool, error)
	// ContractBalance is the contract's native balance in base units.
	ContractBalance(h *Handle) uint64
}

// Account is a chain account usable through a Connector.
type Account struct {
	evm  *eth.Account
	algo *algorand.Account
}

// Address returns the 20-byte account address.
func (a *Account) Address() [20]byte {
	if a.evm != nil {
		return a.evm.Address
	}
	return a.algo.Address
}

// EVM returns the underlying Ethereum-family account, or nil on other
// connectors — for callers that need chain-native operations beyond the
// Connector interface.
func (a *Account) EVM() *eth.Account { return a.evm }

// Algorand returns the underlying Algorand account, or nil on other
// connectors (e.g. for ASA opt-ins and transfers).
func (a *Account) Algorand() *algorand.Account { return a.algo }

// Handle identifies a deployed contract on some connector — the
// "contract id" users exchange through the hypercube (§2.2).
type Handle struct {
	Connector string
	// EVMAddr is set on Ethereum-family chains; AppID on Algorand.
	EVMAddr  chain.Address
	AppID    uint64
	Compiled *lang.Compiled
}

// ID renders the handle as the string stored in the hypercube.
func (h *Handle) ID() string {
	if h.AppID != 0 {
		return fmt.Sprintf("%s/app/%d", h.Connector, h.AppID)
	}
	return fmt.Sprintf("%s/%s", h.Connector, h.EVMAddr)
}

// OpResult is the measured outcome of one frontend operation — the latency
// and fee samples the evaluation chapter aggregates.
type OpResult struct {
	Latency  time.Duration
	Fee      chain.Amount
	GasUsed  uint64
	Receipts []*chain.Receipt
}

// ErrAPIRejected reports an API call rejected on-chain (assume failure,
// insufficient funds…).
var ErrAPIRejected = errors.New("core: API call rejected")

// --- EVM connector ---

// EVMConnector adapts an Ethereum-family chain.
type EVMConnector struct {
	client *eth.Client
}

// NewEVMConnector wraps a chain.
func NewEVMConnector(c *eth.Chain) *EVMConnector {
	return &EVMConnector{client: eth.NewClient(c)}
}

// Chain exposes the underlying chain.
func (e *EVMConnector) Chain() *eth.Chain { return e.client.Chain() }

var _ Connector = (*EVMConnector)(nil)

// Name implements Connector.
func (e *EVMConnector) Name() string { return e.client.Chain().Config().Name }

// Unit implements Connector.
func (e *EVMConnector) Unit() chain.Unit { return e.client.Chain().Config().Unit }

// Now implements Connector.
func (e *EVMConnector) Now() time.Duration { return e.client.Chain().Now() }

// NewAccount implements Connector.
func (e *EVMConnector) NewAccount(tokens float64) (*Account, error) {
	amt := chain.AmountFromTokens(tokens, e.Unit())
	return &Account{evm: e.client.Chain().NewAccount(amt.Base)}, nil
}

// Balance implements Connector.
func (e *EVMConnector) Balance(acct *Account) chain.Amount {
	return e.client.Chain().Balance(acct.evm.Address)
}

// Deploy implements Connector: a single creation transaction carrying the
// runtime code and the constructor calldata.
func (e *EVMConnector) Deploy(acct *Account, compiled *lang.Compiled, args []lang.Value) (*Handle, *OpResult, error) {
	start := e.Now()
	ctorData, err := lang.EncodeArgsEVM(lang.CtorMethodName, compiled.Program.Ctor.Params, args)
	if err != nil {
		return nil, nil, err
	}
	gasLimit := compiled.Analysis.EVMDeployGas + compiled.Analysis.EVMDeployGas/4
	rcpt, addr, err := e.client.Deploy(acct.evm, compiled.EVMCode, ctorData, nil, gasLimit)
	if err != nil {
		return nil, opResult(start, e.Now(), rcpt), err
	}
	h := &Handle{Connector: e.Name(), EVMAddr: addr, Compiled: compiled}
	return h, opResult(start, e.Now(), rcpt), nil
}

// Call implements Connector.
func (e *EVMConnector) Call(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	start := e.Now()
	a := h.Compiled.Program.FindAPI(api)
	if a == nil {
		return lang.Value{}, nil, fmt.Errorf("core: unknown API %q", api)
	}
	data, err := lang.EncodeArgsEVM(api, a.Params, args)
	if err != nil {
		return lang.Value{}, nil, err
	}
	var cost *analysisCost
	for i := range h.Compiled.Analysis.Methods {
		if h.Compiled.Analysis.Methods[i].Name == api {
			cost = &analysisCost{gas: h.Compiled.Analysis.Methods[i].TotalEVMGas()}
		}
	}
	gasLimit := uint64(eth.DefaultGasLimit)
	if cost != nil {
		gasLimit = cost.gas + cost.gas/4
	}
	rcpt, err := e.client.Call(acct.evm, h.EVMAddr, data, new(big.Int).SetUint64(pay), gasLimit)
	if err != nil {
		return lang.Value{}, opResult(start, e.Now(), rcpt), err
	}
	// The connector's event poll: Reach frontends wait for the call's
	// effects to surface before returning.
	e.client.APIExtraDelay()
	res := opResult(start, e.Now(), rcpt)
	if rcpt.Reverted {
		return lang.Value{}, res, fmt.Errorf("%w: %s: %s", ErrAPIRejected, api, rcpt.RevertMsg)
	}
	v, err := lang.DecodeReturnEVM(a.Returns, rcpt.ReturnValue)
	if err != nil {
		return lang.Value{}, res, err
	}
	return v, res, nil
}

type analysisCost struct{ gas uint64 }

// EscrowFunding implements Connector: EVM contracts need no activation
// deposit.
func (e *EVMConnector) EscrowFunding() uint64 { return 0 }

// CallWithEscrowFunding implements Connector; identical to Call on EVM.
func (e *EVMConnector) CallWithEscrowFunding(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return e.Call(acct, h, api, pay, args...)
}

// View implements Connector.
func (e *EVMConnector) View(h *Handle, name string) (lang.Value, error) {
	v, ok := h.Compiled.Program.FindView(name)
	if !ok {
		return lang.Value{}, fmt.Errorf("core: unknown view %q", name)
	}
	data, err := lang.EncodeArgsEVM(name, nil, nil)
	if err != nil {
		return lang.Value{}, err
	}
	out, err := e.client.View(h.EVMAddr, data)
	if err != nil {
		return lang.Value{}, err
	}
	return lang.DecodeReturnEVM(v.Type, out)
}

// ReadGlobal implements Connector.
func (e *EVMConnector) ReadGlobal(h *Handle, name string) (lang.Value, error) {
	get := func(key chain.Hash32) chain.Hash32 {
		return e.client.Chain().StorageAt(h.EVMAddr, key)
	}
	return lang.ReadGlobalEVM(get, h.Compiled.Program, name)
}

// ReadMap implements Connector.
func (e *EVMConnector) ReadMap(h *Handle, mapName string, key uint64) (lang.Value, bool, error) {
	get := func(k chain.Hash32) chain.Hash32 {
		return e.client.Chain().StorageAt(h.EVMAddr, k)
	}
	return lang.ReadMapEVM(get, h.Compiled.Program, mapName, key)
}

// ContractBalance implements Connector.
func (e *EVMConnector) ContractBalance(h *Handle) uint64 {
	return e.client.Chain().Balance(h.EVMAddr).Base.Uint64()
}

func opResult(start, end time.Duration, rcpts ...*chain.Receipt) *OpResult {
	res := &OpResult{Latency: end - start}
	for _, r := range rcpts {
		if r == nil {
			continue
		}
		res.Receipts = append(res.Receipts, r)
		res.GasUsed += r.GasUsed
		res.Fee = res.Fee.Add(r.Fee)
	}
	return res
}

// --- Algorand connector ---

// AlgorandConnector adapts the Algorand chain.
type AlgorandConnector struct {
	client *algorand.Client
}

// NewAlgorandConnector wraps a chain.
func NewAlgorandConnector(c *algorand.Chain) *AlgorandConnector {
	return &AlgorandConnector{client: algorand.NewClient(c)}
}

// Chain exposes the underlying chain.
func (a *AlgorandConnector) Chain() *algorand.Chain { return a.client.Chain() }

var _ Connector = (*AlgorandConnector)(nil)

// Name implements Connector.
func (a *AlgorandConnector) Name() string { return a.client.Chain().Config().Name }

// Unit implements Connector.
func (a *AlgorandConnector) Unit() chain.Unit { return a.client.Chain().Config().Unit }

// Now implements Connector.
func (a *AlgorandConnector) Now() time.Duration { return a.client.Chain().Now() }

// NewAccount implements Connector.
func (a *AlgorandConnector) NewAccount(tokens float64) (*Account, error) {
	micro := uint64(tokens * 1e6)
	return &Account{algo: a.client.Chain().NewAccount(micro)}, nil
}

// Balance implements Connector.
func (a *AlgorandConnector) Balance(acct *Account) chain.Amount {
	return a.client.Chain().Balance(acct.algo.Address)
}

// Deploy implements Connector: the application-creation transaction. The
// escrow account still needs its MinBalance deposit before it can hold
// funds; that payment rides the creator's first call
// (CallWithEscrowFunding) — the extra deployment traffic the paper
// attributes to "the design of the network" (§5.1.5).
func (a *AlgorandConnector) Deploy(acct *Account, compiled *lang.Compiled, args []lang.Value) (*Handle, *OpResult, error) {
	start := a.Now()
	ctorArgs, err := lang.EncodeArgsTEAL("", compiled.Program.Ctor.Params, args)
	if err != nil {
		return nil, nil, err
	}
	rcpt1, appID, err := a.client.CreateApp(acct.algo, compiled.TEALSource, ctorArgs)
	if err != nil {
		return nil, opResult(start, a.Now(), rcpt1), err
	}
	h := &Handle{Connector: a.Name(), AppID: appID, Compiled: compiled}
	return h, opResult(start, a.Now(), rcpt1), nil
}

// EscrowFunding implements Connector.
func (a *AlgorandConnector) EscrowFunding() uint64 { return algorand.MinBalance }

// CallWithEscrowFunding implements Connector: the API call grouped with the
// MinBalance funding payment in one atomic operation.
func (a *AlgorandConnector) CallWithEscrowFunding(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return a.call(acct, h, api, pay, algorand.MinBalance, args)
}

// Call implements Connector.
func (a *AlgorandConnector) Call(acct *Account, h *Handle, api string, pay uint64, args ...lang.Value) (lang.Value, *OpResult, error) {
	return a.call(acct, h, api, pay, 0, args)
}

func (a *AlgorandConnector) call(acct *Account, h *Handle, api string, pay, escrowFund uint64, args []lang.Value) (lang.Value, *OpResult, error) {
	start := a.Now()
	ap := h.Compiled.Program.FindAPI(api)
	if ap == nil {
		return lang.Value{}, nil, fmt.Errorf("core: unknown API %q", api)
	}
	appArgs, err := lang.EncodeArgsTEAL(api, ap.Params, args)
	if err != nil {
		return lang.Value{}, nil, err
	}
	rcpt, err := a.client.CallApp(acct.algo, h.AppID, appArgs, pay, escrowFund)
	if err != nil {
		return lang.Value{}, opResult(start, a.Now(), rcpt), err
	}
	res := opResult(start, a.Now(), rcpt)
	if rcpt.Reverted {
		return lang.Value{}, res, fmt.Errorf("%w: %s: %s", ErrAPIRejected, api, rcpt.RevertMsg)
	}
	v, err := lang.DecodeReturnTEAL(ap.Returns, rcpt.ReturnValue)
	if err != nil {
		return lang.Value{}, res, err
	}
	return v, res, nil
}

// View implements Connector: evaluated by simulation, free of charge.
func (a *AlgorandConnector) View(h *Handle, name string) (lang.Value, error) {
	v, ok := h.Compiled.Program.FindView(name)
	if !ok {
		return lang.Value{}, fmt.Errorf("core: unknown view %q", name)
	}
	appArgs, err := lang.EncodeArgsTEAL("view:"+name, nil, nil)
	if err != nil {
		return lang.Value{}, err
	}
	res, err := a.client.Simulate(h.AppID, chain.Address{}, appArgs)
	if err != nil {
		return lang.Value{}, err
	}
	if !res.Approved {
		return lang.Value{}, fmt.Errorf("core: view %q rejected: %v", name, res.Err)
	}
	return lang.DecodeReturnTEAL(v.Type, res.Return)
}

// ReadGlobal implements Connector.
func (a *AlgorandConnector) ReadGlobal(h *Handle, name string) (lang.Value, error) {
	gi := -1
	for i, g := range h.Compiled.Program.Globals {
		if g.Name == name {
			gi = i
		}
	}
	if gi < 0 {
		return lang.Value{}, fmt.Errorf("core: unknown global %q", name)
	}
	v, ok := a.client.Chain().AppGlobal(h.AppID, lang.TEALGlobalKey(name))
	if !ok {
		return lang.Value{}, fmt.Errorf("core: global %q not set", name)
	}
	return lang.DecodeTEALValue(h.Compiled.Program.Globals[gi].Type, v)
}

// ReadMap implements Connector.
func (a *AlgorandConnector) ReadMap(h *Handle, mapName string, key uint64) (lang.Value, bool, error) {
	k, err := lang.TEALMapKey(h.Compiled.Program, mapName, key)
	if err != nil {
		return lang.Value{}, false, err
	}
	v, ok := a.client.Chain().AppGlobal(h.AppID, k)
	if !ok {
		return lang.Value{}, false, nil
	}
	var valType lang.Type
	for _, m := range h.Compiled.Program.Maps {
		if m.Name == mapName {
			valType = m.Value
		}
	}
	out, err := lang.DecodeTEALValue(valType, v)
	if err != nil {
		return lang.Value{}, false, err
	}
	return out, true, nil
}

// ContractBalance implements Connector: the spendable balance, i.e. the
// escrow balance net of the locked minimum balance, so the same number
// means the same thing on every connector.
func (a *AlgorandConnector) ContractBalance(h *Handle) uint64 {
	total := a.client.Chain().Balance(a.client.Chain().AppAddress(h.AppID)).Base.Uint64()
	if total < algorand.MinBalance {
		return 0
	}
	return total - algorand.MinBalance
}
