package core

import (
	"bytes"
	"os"
	"testing"

	"agnopol/internal/lang"
)

// TestPolSourceFileMatchesBuiltin: the shipped contracts/pol-report.pol,
// compiled through the textual frontend, must produce exactly the backends
// of the built-in BuildPoLProgram — the repo's .pol file IS the contract.
func TestPolSourceFileMatchesBuiltin(t *testing.T) {
	data, err := os.ReadFile("../../contracts/pol-report.pol")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.ParseSource(string(data))
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := lang.Compile(prog, lang.Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := CompilePoL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.EVMCode, builtin.EVMCode) {
		t.Fatalf("EVM bytecode differs: file %d bytes, builtin %d bytes",
			len(fromFile.EVMCode), len(builtin.EVMCode))
	}
	if fromFile.TEALSource != builtin.TEALSource {
		t.Fatal("TEAL source differs between .pol file and builtin program")
	}
}

func TestPoLProgramShape(t *testing.T) {
	p := BuildPoLProgram()
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	for _, api := range []string{"insert_data", "insert_money", "verify", "close"} {
		if p.FindAPI(api) == nil {
			t.Errorf("missing API %q", api)
		}
	}
	for _, v := range []string{"getCtcBalance", "getReward", "getAvailableSits", "getPosition"} {
		if _, ok := p.FindView(v); !ok {
			t.Errorf("missing view %q", v)
		}
	}
	if MaxUsers != 4 {
		t.Fatalf("MaxUsers = %d, thesis uses 4 per contract", MaxUsers)
	}
}

// TestPolV2SourceFileMatchesBuiltin: same guarantee for the extended
// contract.
func TestPolV2SourceFileMatchesBuiltin(t *testing.T) {
	data, err := os.ReadFile("../../contracts/pol-report-v2.pol")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.ParseSource(string(data))
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := lang.Compile(prog, lang.Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := CompilePoLV2()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.EVMCode, builtin.EVMCode) {
		t.Fatalf("EVM bytecode differs: file %d bytes, builtin %d bytes",
			len(fromFile.EVMCode), len(builtin.EVMCode))
	}
	if fromFile.TEALSource != builtin.TEALSource {
		t.Fatal("TEAL source differs between v2 .pol file and builtin program")
	}
}
