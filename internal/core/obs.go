package core

import (
	"time"

	"agnopol/internal/obs"
)

// Pipeline phase names used in core_phase_duration_seconds and as span
// names (prefixed pol.). The PoL lifecycle is discover → challenge →
// sign → submit → verify → publish.
const (
	PhaseDiscover  = "discover"
	PhaseChallenge = "challenge"
	PhaseSign      = "sign"
	PhaseSubmit    = "submit"
	PhaseVerify    = "verify"
	PhasePublish   = "publish"
)

// phaseBuckets covers wall-clock phase durations from 1 µs to 100 s.
// Literal bounds, not ExponentialBuckets(1e-6, 10, 9): 1e-6·10 is not
// representable as exactly 1e-5 in float64, and the drift leaks into
// the le labels of the exposition.
var phaseBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100}

// chainOpBuckets covers simulated on-chain operation latency, which is
// dominated by block/round inclusion time.
var chainOpBuckets = []float64{1, 2.5, 5, 10, 15, 20, 30, 45, 60, 90, 120, 180, 300}

// hopBuckets covers hypercube routing distances; the DHT dimension is 6,
// so a greedy route takes at most 6 hops.
var hopBuckets = []float64{0, 1, 2, 3, 4, 5, 6}

// sysObs bundles the proof-pipeline instruments. nil means the system is
// uninstrumented; every hook reduces to a nil check.
type sysObs struct {
	o *obs.Obs
	// scope is the system's explicit span stack. A System runs one proof
	// pipeline at a time, but many instrumented Systems may run
	// concurrently against one shared tracer (sim.RunMatrix); parenting
	// through a per-system scope instead of the tracer's process-wide
	// implicit stack keeps each run's span tree correctly nested.
	scope *obs.Scope

	phases   map[string]*obs.Histogram
	chainOps map[string]*obs.Histogram
	// chainOpSketches mirror chainOps as mergeable quantile sketches, so
	// tail latency (p99/p999) stays answerable at soak scale where the
	// fixed buckets saturate.
	chainOpSketches   map[string]*obs.QuantileSketch
	hops              *obs.Histogram
	proofsIssued      *obs.Counter
	contractsDeployed *obs.Counter
	proofsAttached    *obs.Counter
	verifAccepted     *obs.Counter
	verifRejected     *obs.Counter
	sigCacheHits      *obs.Counter
	sigCacheMisses    *obs.Counter
}

// Instrument attaches an observability bundle to the system: per-phase
// duration histograms, proof-lifecycle counters and the span tracer.
// Passing nil detaches instrumentation.
func (s *System) Instrument(o *obs.Obs) {
	if o == nil || o.Registry == nil {
		s.obs = nil
		return
	}
	reg := o.Registry
	so := &sysObs{
		o:               o,
		scope:           o.Tracer.NewScope(nil),
		phases:          make(map[string]*obs.Histogram),
		chainOps:        make(map[string]*obs.Histogram),
		chainOpSketches: make(map[string]*obs.QuantileSketch),
	}
	for _, phase := range []string{PhaseDiscover, PhaseChallenge, PhaseSign, PhaseSubmit, PhaseVerify, PhasePublish} {
		so.phases[phase] = reg.Histogram("core_phase_duration_seconds", phaseBuckets, obs.L("phase", phase))
	}
	for _, op := range []string{"deploy", "attach", "verify"} {
		so.chainOps[op] = reg.Histogram("core_chain_op_latency_seconds", chainOpBuckets, obs.L("op", op))
		so.chainOpSketches[op] = reg.Sketch("core_chain_op_latency", obs.L("op", op))
	}
	so.hops = reg.Histogram("core_hypercube_hops", hopBuckets)
	so.proofsIssued = reg.Counter("core_proofs_issued_total")
	so.contractsDeployed = reg.Counter("core_contracts_deployed_total")
	so.proofsAttached = reg.Counter("core_proofs_attached_total")
	so.verifAccepted = reg.Counter("core_verifications_total", obs.L("result", "accepted"))
	so.verifRejected = reg.Counter("core_verifications_total", obs.L("result", "rejected"))
	so.sigCacheHits = reg.Counter("core_sigcache_total", obs.L("result", "hit"))
	so.sigCacheMisses = reg.Counter("core_sigcache_total", obs.L("result", "miss"))
	reg.Help("core_phase_duration_seconds", "Wall-clock duration of each proof-pipeline phase.")
	reg.Help("core_chain_op_latency_seconds", "Simulated latency of on-chain PoL operations.")
	reg.Help("core_chain_op_latency", "Quantile sketch of simulated on-chain PoL operation latency.")
	reg.Help("core_hypercube_hops", "DHT routing hops per contract lookup.")
	reg.Help("core_proofs_issued_total", "Location proofs signed by witnesses.")
	reg.Help("core_proofs_rejected_total", "Witness-side proof request rejections by reason.")
	reg.Help("core_contracts_deployed_total", "PoL contracts deployed (first prover in an area).")
	reg.Help("core_proofs_attached_total", "Proofs attached to an existing contract.")
	reg.Help("core_verifications_total", "Verifier decisions on staged proofs.")
	reg.Help("core_sigcache_total", "Signature-verification cache lookups by result.")
	s.obs = so
}

// Obs returns the attached observability bundle, or nil.
func (s *System) Obs() *obs.Obs {
	if s.obs == nil {
		return nil
	}
	return s.obs.o
}

// TraceScope returns the explicit span stack the system's pol.* spans
// record under, or nil when uninstrumented. Harnesses that drive the
// system open their own spans on the same scope, so the pipeline spans
// nest under the harness's per-run and per-user spans.
func (s *System) TraceScope() *obs.Scope {
	if s.obs == nil {
		return nil
	}
	return s.obs.scope
}

// span opens a trace span on the system's scope; nil-safe when
// uninstrumented.
func (s *System) span(name string, labels ...obs.Label) *obs.Span {
	if s.obs == nil {
		return nil
	}
	return s.obs.scope.Start(name, labels...)
}

// endPhase ends a span and records its duration in the phase histogram.
func (s *System) endPhase(sp *obs.Span, phase string) {
	d := sp.End()
	if s.obs != nil {
		s.obs.phases[phase].Observe(d.Seconds())
	}
}

// observeChainOp records the simulated latency of a deploy/attach/verify
// chain operation.
func (s *System) observeChainOp(op string, latency time.Duration) {
	if s.obs != nil {
		s.obs.chainOps[op].Observe(latency.Seconds())
		s.obs.chainOpSketches[op].Observe(latency.Seconds())
	}
}

// rejectProof counts a witness-side rejection under its reason label.
func (s *System) rejectProof(reason string) {
	if s.obs != nil {
		s.obs.o.Registry.Counter("core_proofs_rejected_total", obs.L("reason", reason)).Inc()
	}
}

// countSigCache records a signature-cache lookup outcome; nil-safe.
func (s *System) countSigCache(hit bool) {
	if s.obs == nil {
		return
	}
	if hit {
		s.obs.sigCacheHits.Inc()
	} else {
		s.obs.sigCacheMisses.Inc()
	}
}

// logger returns the attached structured logger; nil-safe.
func (s *System) logger() *obs.Logger {
	if s.obs == nil {
		return nil
	}
	return s.obs.o.Logger
}
