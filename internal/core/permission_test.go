package core

import (
	"errors"
	"testing"

	"agnopol/internal/eth"
	"agnopol/internal/hypercube"
	"agnopol/internal/lang"
)

// Permissioned verification (§2: "the verifiers are well known and not
// everyone can become one of them"): only CA-designated verifiers may fund
// or validate.
func TestUndesignatedVerifierRejected(t *testing.T) {
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 61))
	w, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	acct, err := p.EnsureAccount(conn, 10)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := p.UploadReport(Report{Title: "x", Category: "env"})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := p.RequestProof(w, cid, acct.Address())
	if err != nil {
		t.Fatal(err)
	}
	sub, err := p.SubmitProof(conn, proof, rewardFor(conn))
	if err != nil {
		t.Fatal(err)
	}

	// Hand-build a verifier the CA never designated.
	rogueKey := p.Key // reuse any key; designation is what matters
	rogue := &Verifier{sys: sys, Key: rogueKey, DID: p.DID, accounts: map[string]*Account{}}
	if _, err := rogue.EnsureAccount(conn, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := rogue.FundContract(conn, sub.Handle, 100); !errors.Is(err, ErrNotVerifier) {
		t.Fatalf("FundContract err = %v, want ErrNotVerifier", err)
	}
	if _, err := rogue.VerifyProver(conn, sub.Handle, p.DID); !errors.Is(err, ErrNotVerifier) {
		t.Fatalf("VerifyProver err = %v, want ErrNotVerifier", err)
	}
	if _, err := rogue.VerifyProverQuorum(conn, sub.Handle, p.DID, 1); !errors.Is(err, ErrNotVerifier) {
		t.Fatalf("VerifyProverQuorum err = %v, want ErrNotVerifier", err)
	}
}

func TestProverNeedsAccountOnConnector(t *testing.T) {
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 62))
	w, err := NewWitness(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	cid, err := p.UploadReport(Report{Title: "x", Category: "env"})
	if err != nil {
		t.Fatal(err)
	}
	proof, err := p.RequestProof(w, cid, [20]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SubmitProof(conn, proof, 100); err == nil {
		t.Fatal("submission without a wallet accepted")
	}
}

func TestEnsureAccountIsIdempotent(t *testing.T) {
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 63))
	p, err := NewProver(sys, bologna)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.EnsureAccount(conn, 10)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p.EnsureAccount(conn, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("EnsureAccount created a second wallet")
	}
}

func TestLookupUnknownContractIDInCube(t *testing.T) {
	sys := newTestSystem(t)
	// A hypercube entry referencing a contract nobody registered must
	// surface an error, not a nil handle.
	code := "8FPHF8VV+X2"
	target, err := sys.NodeIDForOLC(code)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Cube.Put(0, target, code, &hypercube.Entry{ContractID: "ghost/0xdead", OLC: code}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := sys.LookupContract(0, code); err == nil {
		t.Fatal("dangling contract reference resolved")
	}
}

func TestConnectorViewsMatchReads(t *testing.T) {
	// Views and raw state reads must agree on the same quantity.
	sys := newTestSystem(t)
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 64))
	acct, err := conn.NewAccount(10)
	if err != nil {
		t.Fatal(err)
	}
	h, _, err := conn.Deploy(acct, sys.Compiled, []lang.Value{
		lang.BytesValue([]byte("8FPHF8VV+X2")), lang.Uint64Value(1), lang.Uint64Value(777),
	})
	if err != nil {
		t.Fatal(err)
	}
	viewV, err := conn.View(h, "getReward")
	if err != nil {
		t.Fatal(err)
	}
	readV, err := conn.ReadGlobal(h, RewardGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if viewV.Uint != 777 || readV.Uint != 777 {
		t.Fatalf("view=%d read=%d, want 777", viewV.Uint, readV.Uint)
	}
}
