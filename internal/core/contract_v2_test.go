package core

import (
	"testing"
	"time"

	"agnopol/internal/algorand"
	"agnopol/internal/eth"
	"agnopol/internal/lang"
)

func TestPoLV2CompilesAndVerifies(t *testing.T) {
	c, err := CompilePoLV2()
	if err != nil {
		t.Fatal(err)
	}
	if c.Report.Failures != 0 {
		t.Fatalf("v2 verification failures:\n%s", c.Report)
	}
	if c.Report.Checked <= 27 {
		t.Fatalf("v2 should check more theorems than v1 (got %d)", c.Report.Checked)
	}
}

// advance pushes a connector's simulated clock past t by producing blocks.
func advance(t *testing.T, conn Connector, until time.Duration) {
	t.Helper()
	switch c := conn.(type) {
	case *EVMConnector:
		for c.Chain().Now() < until {
			c.Chain().Step()
		}
	case *AlgorandConnector:
		for c.Chain().Now() < until {
			c.Chain().Step()
		}
	default:
		t.Fatalf("unknown connector %T", conn)
	}
}

func TestPoLV2LifecycleBothChains(t *testing.T) {
	compiled, err := CompilePoLV2()
	if err != nil {
		t.Fatal(err)
	}
	conns := []Connector{
		NewEVMConnector(eth.NewChain(eth.Goerli(), 31)),
		NewAlgorandConnector(algorand.NewChain(algorand.Testnet(), 31)),
	}
	for _, conn := range conns {
		conn := conn
		t.Run(conn.Name(), func(t *testing.T) {
			creator, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}
			witness, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}
			verifier, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}
			stranger, err := conn.NewAccount(10)
			if err != nil {
				t.Fatal(err)
			}

			const (
				proverReward  = 1000
				witnessReward = 250
			)
			deadline := uint64((conn.Now() + 30*time.Minute) / time.Second)
			h, _, err := conn.Deploy(creator, compiled, []lang.Value{
				lang.BytesValue([]byte("8FPHF8VV+X2")),
				lang.Uint64Value(111),
				lang.Uint64Value(proverReward),
				lang.Uint64Value(witnessReward),
				lang.Uint64Value(deadline),
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := conn.CallWithEscrowFunding(creator, h, "insert_data", 0,
				lang.BytesValue([]byte("proof-data")), lang.Uint64Value(111)); err != nil {
				t.Fatalf("insert: %v", err)
			}

			// Funding then verify_with_witness: both parties get paid.
			if _, _, err := conn.Call(verifier, h, "insert_money",
				2*(proverReward+witnessReward), lang.Uint64Value(2*(proverReward+witnessReward))); err != nil {
				t.Fatal(err)
			}
			creatorBefore := conn.Balance(creator).Base.Uint64()
			witnessBefore := conn.Balance(witness).Base.Uint64()
			v, _, err := conn.Call(verifier, h, "verify_with_witness", 0,
				lang.Uint64Value(111),
				lang.AddressValue(creator.Address()),
				lang.AddressValue(witness.Address()))
			if err != nil {
				t.Fatalf("verify_with_witness: %v", err)
			}
			if v.Uint != 1 {
				t.Fatalf("verification returned %d, want 1", v.Uint)
			}
			if got := conn.Balance(creator).Base.Uint64() - creatorBefore; got != proverReward {
				t.Fatalf("prover reward %d, want %d", got, proverReward)
			}
			if got := conn.Balance(witness).Base.Uint64() - witnessBefore; got != witnessReward {
				t.Fatalf("witness reward %d, want %d", got, witnessReward)
			}

			// Premature timeout close is rejected.
			if _, _, err := conn.Call(stranger, h, "close_timeout", 0); err == nil {
				t.Fatal("close_timeout before deadline accepted")
			}

			// After the deadline: inserts rejected, anyone can close.
			advance(t, conn, time.Duration(deadline)*time.Second+time.Minute)
			if _, _, err := conn.Call(stranger, h, "insert_data", 0,
				lang.BytesValue([]byte("late")), lang.Uint64Value(999)); err == nil {
				t.Fatal("insert after deadline accepted")
			}
			creatorBefore = conn.Balance(creator).Base.Uint64()
			remaining := conn.ContractBalance(h)
			if remaining == 0 {
				t.Fatal("expected leftover funds before timeout close")
			}
			if _, _, err := conn.Call(stranger, h, "close_timeout", 0); err != nil {
				t.Fatalf("close_timeout after deadline: %v", err)
			}
			if got := conn.Balance(creator).Base.Uint64() - creatorBefore; got != remaining {
				t.Fatalf("creator swept %d, want %d", got, remaining)
			}
			if conn.ContractBalance(h) != 0 {
				t.Fatal("balance not emptied by timeout close")
			}
		})
	}
}

func TestPoLV2UnfundedWitnessVerify(t *testing.T) {
	compiled, err := CompilePoLV2()
	if err != nil {
		t.Fatal(err)
	}
	conn := NewEVMConnector(eth.NewChain(eth.Goerli(), 32))
	creator, err := conn.NewAccount(10)
	if err != nil {
		t.Fatal(err)
	}
	deadline := uint64((conn.Now() + time.Hour) / time.Second)
	h, _, err := conn.Deploy(creator, compiled, []lang.Value{
		lang.BytesValue([]byte("8FPHF8VV+X2")),
		lang.Uint64Value(1), lang.Uint64Value(1000), lang.Uint64Value(250),
		lang.Uint64Value(deadline),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := conn.CallWithEscrowFunding(creator, h, "insert_data", 0,
		lang.BytesValue([]byte("d")), lang.Uint64Value(1)); err != nil {
		t.Fatal(err)
	}
	// Fund only the prover's share: the pool does not cover both rewards,
	// so the call takes the issue branch and pays nobody.
	if _, _, err := conn.Call(creator, h, "insert_money", 1000, lang.Uint64Value(1000)); err != nil {
		t.Fatal(err)
	}
	v, _, err := conn.Call(creator, h, "verify_with_witness", 0,
		lang.Uint64Value(1), lang.AddressValue(creator.Address()), lang.AddressValue(creator.Address()))
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint != 0 {
		t.Fatalf("underfunded verification returned %d, want 0", v.Uint)
	}
	// The map entry survives so a later, funded verification can succeed.
	if _, ok, err := conn.ReadMap(h, EasyMapName, 1); err != nil || !ok {
		t.Fatal("map entry lost by underfunded verification")
	}
}
