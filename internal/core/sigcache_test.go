package core

import (
	"crypto/ed25519"
	"testing"

	"agnopol/internal/chain"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

func sigCacheCounters(t *testing.T, o *obs.Obs) (hits, misses uint64) {
	t.Helper()
	reg := o.Registry
	return reg.Counter("core_sigcache_total", obs.L("result", "hit")).Value(),
		reg.Counter("core_sigcache_total", obs.L("result", "miss")).Value()
}

// TestSigCacheHitAndCounters: the second verification of the same triple
// must come from the cache and bump the hit counter, for genuine and forged
// signatures alike.
func TestSigCacheHitAndCounters(t *testing.T) {
	sys, err := NewSystem(1)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	sys.Instrument(o)

	rng := chain.NewRand(42)
	kp := polcrypto.MustGenerateKeyPair(rng)
	msg := polcrypto.Hash([]byte("claim"))
	sig := kp.Sign(msg[:])

	for round := 0; round < 3; round++ {
		if !sys.verifySig(kp.Public, msg[:], sig) {
			t.Fatalf("round %d: genuine signature rejected", round)
		}
	}
	hits, misses := sigCacheCounters(t, o)
	if misses != 1 || hits != 2 {
		t.Fatalf("genuine: hits=%d misses=%d, want 2/1", hits, misses)
	}

	// A forged signature is cached as invalid — repeat checks are hits and
	// still rejected.
	forged := append([]byte(nil), sig...)
	forged[0] ^= 0xff
	for round := 0; round < 2; round++ {
		if sys.verifySig(kp.Public, msg[:], forged) {
			t.Fatalf("round %d: forged signature accepted", round)
		}
	}
	hits, misses = sigCacheCounters(t, o)
	if misses != 2 || hits != 3 {
		t.Fatalf("after forgery: hits=%d misses=%d, want 3/2", hits, misses)
	}
}

// TestSigCacheUncacheableShapes: inputs that are not (32-byte key, 32-byte
// hash, 64-byte sig) bypass the cache entirely.
func TestSigCacheUncacheableShapes(t *testing.T) {
	sys, err := NewSystem(2)
	if err != nil {
		t.Fatal(err)
	}
	rng := chain.NewRand(7)
	kp := polcrypto.MustGenerateKeyPair(rng)
	longMsg := []byte("not a 32-byte hash, deliberately longer than that")
	sig := kp.Sign(longMsg)
	for round := 0; round < 2; round++ {
		if !sys.verifySig(kp.Public, longMsg, sig) {
			t.Fatal("valid signature over non-hash message rejected")
		}
	}
	if n := sys.sigs.Len(); n != 0 {
		t.Fatalf("uncacheable input landed in the cache: len=%d", n)
	}
	if sys.verifySig(nil, longMsg, sig) {
		t.Fatal("nil public key accepted")
	}
}

// testSigKey builds a canonical-shape cache key whose hash leads with b.
func testSigKey(t *testing.T, b byte) polcrypto.SigKey {
	t.Helper()
	var msg [32]byte
	msg[0] = b
	k, ok := polcrypto.SigKeyFor(make([]byte, ed25519.PublicKeySize), msg[:], make([]byte, ed25519.SignatureSize))
	if !ok {
		t.Fatal("canonical key shape rejected")
	}
	return k
}

// TestSigCacheEviction: the LRU stays bounded and evicts oldest-first.
func TestSigCacheEviction(t *testing.T) {
	c := polcrypto.NewSigCache(3)
	keys := make([]polcrypto.SigKey, 5)
	for i := range keys {
		keys[i] = testSigKey(t, byte(i+1))
		c.Put(keys[i], true)
	}
	if c.Len() != 3 {
		t.Fatalf("cache len = %d, want 3", c.Len())
	}
	for i, want := range []bool{false, false, true, true, true} {
		if _, hit := c.Get(keys[i]); hit != want {
			t.Fatalf("key %d: hit=%v, want %v", i, hit, want)
		}
	}
	// Touching the oldest survivor protects it from the next eviction.
	c.Get(keys[2])
	fresh := testSigKey(t, 0xee)
	c.Put(fresh, false)
	if _, hit := c.Get(keys[2]); !hit {
		t.Fatal("recently-used entry evicted")
	}
	if _, hit := c.Get(keys[3]); hit {
		t.Fatal("least-recently-used entry survived eviction")
	}
	if ok, hit := c.Get(fresh); !hit || ok {
		t.Fatalf("fresh entry: ok=%v hit=%v, want false/true", ok, hit)
	}
}

// TestVerifyProofCachedMatchesUncached: the cached path agrees with the
// public LocationProof.Verify on both accept and reject.
func TestVerifyProofCachedMatchesUncached(t *testing.T) {
	sys, err := NewSystem(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := chain.NewRand(9)
	kp := polcrypto.MustGenerateKeyPair(rng)
	proof := &LocationProof{
		Request:    ProofRequest{DID: "did:pol:abc", OLC: "8FQFMGGM+22", Nonce: 5},
		WitnessPub: kp.Public,
	}
	proof.Hash = proof.Request.Hash()
	proof.Signature = kp.Sign(proof.Hash[:])

	for round := 0; round < 2; round++ {
		pubErr, sysErr := proof.Verify(), sys.verifyProof(proof)
		if (pubErr == nil) != (sysErr == nil) {
			t.Fatalf("round %d: Verify=%v verifyProof=%v", round, pubErr, sysErr)
		}
	}
	proof.Signature[3] ^= 0x40
	for round := 0; round < 2; round++ {
		pubErr, sysErr := proof.Verify(), sys.verifyProof(proof)
		if pubErr == nil || sysErr == nil {
			t.Fatalf("round %d: tampered proof accepted: Verify=%v verifyProof=%v", round, pubErr, sysErr)
		}
	}
	// Tampered request: rejected before any signature math, so the cache is
	// untouched.
	n := sys.sigs.Len()
	bad := *proof
	bad.Request.Nonce++
	if err := sys.verifyProof(&bad); err == nil {
		t.Fatal("hash-mismatched proof accepted")
	}
	if sys.sigs.Len() != n {
		t.Fatal("hash mismatch reached the signature cache")
	}
}
