package core

import (
	"crypto/ed25519"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"time"

	"agnopol/internal/did"
	"agnopol/internal/ipfs"
	"agnopol/internal/polcrypto"
)

// ProofRequest is what the prover broadcasts to a nearby witness over
// Bluetooth (§2.3.1.1): current location as an Open Location Code, the
// prover's DID, the nonce the witness issued (replay protection), and the
// CID of the already-uploaded report data.
type ProofRequest struct {
	DID    did.DID
	OLC    string
	Nonce  uint64
	CID    ipfs.CID
	Wallet [20]byte
}

// hashInput is the canonical byte string hashed into the proof:
// H(DID ‖ OLC ‖ nonce ‖ CID). Hashing location and CID binds the proof to
// the claimed area and the exact report content — the properties §2.3.1.1
// motivates with the Alice-in-Bologna example.
func (r ProofRequest) hashInput() []byte {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], r.Nonce)
	var buf []byte
	buf = append(buf, r.DID...)
	buf = append(buf, '|')
	buf = append(buf, r.OLC...)
	buf = append(buf, '|')
	buf = append(buf, n[:]...)
	buf = append(buf, '|')
	buf = append(buf, r.CID...)
	return buf
}

// Hash computes the proof hash.
func (r ProofRequest) Hash() [32]byte {
	return polcrypto.Hash(r.hashInput())
}

// LocationProof is the signed certificate a witness issues (formula 2.1:
// SignedProof = PrivateKey_wit(Hash(proof))).
type LocationProof struct {
	Request    ProofRequest
	Hash       [32]byte
	Signature  []byte
	WitnessPub ed25519.PublicKey
	IssuedAt   time.Duration
}

// Verify checks formula 2.2: the signature opens to the proof hash under
// the witness public key, and the hash matches the request fields.
func (p *LocationProof) Verify() error {
	want := p.Request.Hash()
	if want != p.Hash {
		return errors.New("core: proof hash does not match request fields")
	}
	if !polcrypto.Verify(p.WitnessPub, p.Hash[:], p.Signature) {
		return fmt.Errorf("core: %w", polcrypto.ErrBadSignature)
	}
	return nil
}

// ConcatData is the "concatenation of values" stored in the contract map
// (§4.2): proofHashed-proofSigned-walletAddress-nonce-cid, hex-encoded
// fields joined with '-' exactly like the thesis frontend's concatData.
func (p *LocationProof) ConcatData() []byte {
	fields := []string{
		hex.EncodeToString(p.Hash[:]),
		hex.EncodeToString(p.Signature),
		hex.EncodeToString(p.Request.Wallet[:]),
		fmt.Sprintf("%d", p.Request.Nonce),
		string(p.Request.CID),
	}
	return []byte(strings.Join(fields, "-"))
}

// ParsedConcat is the decoded on-chain record.
type ParsedConcat struct {
	Hash      [32]byte
	Signature []byte
	Wallet    [20]byte
	Nonce     uint64
	CID       ipfs.CID
}

// ParseConcatData decodes the on-chain concatenation back into its fields.
func ParseConcatData(data []byte) (ParsedConcat, error) {
	parts := strings.Split(string(data), "-")
	if len(parts) != 5 {
		return ParsedConcat{}, fmt.Errorf("core: concat data has %d fields, want 5", len(parts))
	}
	var out ParsedConcat
	h, err := hex.DecodeString(parts[0])
	if err != nil || len(h) != 32 {
		return ParsedConcat{}, fmt.Errorf("core: bad proof hash field: %v", err)
	}
	copy(out.Hash[:], h)
	out.Signature, err = hex.DecodeString(parts[1])
	if err != nil {
		return ParsedConcat{}, fmt.Errorf("core: bad signature field: %w", err)
	}
	w, err := hex.DecodeString(parts[2])
	if err != nil || len(w) != 20 {
		return ParsedConcat{}, fmt.Errorf("core: bad wallet field: %v", err)
	}
	copy(out.Wallet[:], w)
	if _, err := fmt.Sscanf(parts[3], "%d", &out.Nonce); err != nil {
		return ParsedConcat{}, fmt.Errorf("core: bad nonce field: %w", err)
	}
	out.CID = ipfs.CID(parts[4])
	return out, nil
}

// Report is the crowdsensed environmental report of the use case
// (Chapter 3): title, description and optional picture reference, stored on
// IPFS and addressed by CID.
type Report struct {
	Title       string `json:"title"`
	Description string `json:"description"`
	Category    string `json:"category"`
	PictureRef  string `json:"pictureRef,omitempty"`
	OLC         string `json:"olc"`
	Author      string `json:"author"` // the author's DID
}
