package core

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"agnopol/internal/did"
	"agnopol/internal/ipfs"
	"agnopol/internal/lang"
	"agnopol/internal/polcrypto"
)

// Multi-witness quorum proofs — the mitigation for the collusion attacks
// the thesis leaves as future work ("it will be useful to modify the
// architecture proposed by us to solve the issues of the collusion
// attacks", Conclusion). A single dishonest witness can certify an absent
// accomplice; requiring q independent, CA-registered witnesses raises the
// bar to q colluders physically spread across the claimed area.
//
// The bundle of proofs lives on IPFS (it grows with q); the on-chain record
// stores the bundle CID plus the bundle hash, prefixed "Q" so verifiers
// know which verification procedure applies.

// ProofBundle is the prover's collection of proofs for one claim. All
// entries certify the same DID, area, report CID and wallet; they differ in
// nonce and witness.
type ProofBundle struct {
	Proofs []*LocationProof `json:"proofs"`
}

// Quorum errors.
var (
	ErrQuorumTooSmall     = errors.New("core: not enough distinct valid witnesses in bundle")
	ErrBundleInconsistent = errors.New("core: bundle proofs do not certify the same claim")
	ErrNotQuorumRecord    = errors.New("core: on-chain record is not a quorum record")
)

// Validate checks internal consistency: every proof verifies and certifies
// the same (DID, OLC, CID, wallet).
func (b *ProofBundle) Validate() error {
	if len(b.Proofs) == 0 {
		return fmt.Errorf("%w: empty bundle", ErrBundleInconsistent)
	}
	first := b.Proofs[0].Request
	for i, p := range b.Proofs {
		if err := p.Verify(); err != nil {
			return fmt.Errorf("core: bundle proof %d: %w", i, err)
		}
		r := p.Request
		if r.DID != first.DID || r.OLC != first.OLC || r.CID != first.CID || r.Wallet != first.Wallet {
			return fmt.Errorf("%w: proof %d", ErrBundleInconsistent, i)
		}
	}
	return nil
}

// marshalBundle serializes the bundle for IPFS storage.
func marshalBundle(b *ProofBundle) ([]byte, error) {
	type wireProof struct {
		DID        string `json:"did"`
		OLC        string `json:"olc"`
		Nonce      uint64 `json:"nonce"`
		CID        string `json:"cid"`
		Wallet     string `json:"wallet"`
		Hash       string `json:"hash"`
		Signature  string `json:"signature"`
		WitnessPub string `json:"witnessPub"`
	}
	out := make([]wireProof, 0, len(b.Proofs))
	for _, p := range b.Proofs {
		out = append(out, wireProof{
			DID:        string(p.Request.DID),
			OLC:        p.Request.OLC,
			Nonce:      p.Request.Nonce,
			CID:        string(p.Request.CID),
			Wallet:     hex.EncodeToString(p.Request.Wallet[:]),
			Hash:       hex.EncodeToString(p.Hash[:]),
			Signature:  hex.EncodeToString(p.Signature),
			WitnessPub: hex.EncodeToString(p.WitnessPub),
		})
	}
	return json.MarshalIndent(map[string]any{"proofs": out}, "", " ")
}

// unmarshalBundle parses the wire form back.
func unmarshalBundle(data []byte) (*ProofBundle, error) {
	var wire struct {
		Proofs []struct {
			DID        string `json:"did"`
			OLC        string `json:"olc"`
			Nonce      uint64 `json:"nonce"`
			CID        string `json:"cid"`
			Wallet     string `json:"wallet"`
			Hash       string `json:"hash"`
			Signature  string `json:"signature"`
			WitnessPub string `json:"witnessPub"`
		} `json:"proofs"`
	}
	if err := json.Unmarshal(data, &wire); err != nil {
		return nil, fmt.Errorf("core: bundle: %w", err)
	}
	b := &ProofBundle{}
	for _, w := range wire.Proofs {
		p := &LocationProof{}
		p.Request.DID = did.DID(w.DID)
		p.Request.OLC = w.OLC
		p.Request.Nonce = w.Nonce
		p.Request.CID = ipfs.CID(w.CID)
		wallet, err := hex.DecodeString(w.Wallet)
		if err != nil || len(wallet) != 20 {
			return nil, fmt.Errorf("core: bundle wallet: %v", err)
		}
		copy(p.Request.Wallet[:], wallet)
		h, err := hex.DecodeString(w.Hash)
		if err != nil || len(h) != 32 {
			return nil, fmt.Errorf("core: bundle hash: %v", err)
		}
		copy(p.Hash[:], h)
		if p.Signature, err = hex.DecodeString(w.Signature); err != nil {
			return nil, fmt.Errorf("core: bundle signature: %w", err)
		}
		pub, err := hex.DecodeString(w.WitnessPub)
		if err != nil {
			return nil, fmt.Errorf("core: bundle witness key: %w", err)
		}
		p.WitnessPub = pub
		b.Proofs = append(b.Proofs, p)
	}
	return b, nil
}

// quorumConcat builds the on-chain record for a quorum submission.
func quorumConcat(bundleCID ipfs.CID, bundleHash [32]byte) []byte {
	return []byte("Q-" + hex.EncodeToString(bundleHash[:]) + "-" + string(bundleCID))
}

// parseQuorumConcat decodes it.
func parseQuorumConcat(data []byte) (ipfs.CID, [32]byte, error) {
	var hash [32]byte
	parts := bytes.SplitN(data, []byte("-"), 3)
	if len(parts) != 3 || string(parts[0]) != "Q" {
		return "", hash, ErrNotQuorumRecord
	}
	h, err := hex.DecodeString(string(parts[1]))
	if err != nil || len(h) != 32 {
		return "", hash, fmt.Errorf("core: quorum record hash: %v", err)
	}
	copy(hash[:], h)
	return ipfs.CID(parts[2]), hash, nil
}

// RequestProofQuorum collects proofs from q distinct witnesses (each with
// its own challenge–response and nonce) for the same claim.
func (p *Prover) RequestProofQuorum(witnesses []*Witness, cid ipfs.CID, wallet [20]byte) (*ProofBundle, error) {
	bundle := &ProofBundle{}
	for _, w := range witnesses {
		proof, err := p.RequestProof(w, cid, wallet)
		if err != nil {
			return nil, fmt.Errorf("core: quorum witness %s: %w", w.DID, err)
		}
		bundle.Proofs = append(bundle.Proofs, proof)
	}
	if err := p.sys.validateBundle(bundle); err != nil {
		return nil, err
	}
	return bundle, nil
}

// SubmitProofQuorum stores the bundle on IPFS and stages the quorum record
// on-chain, deploying the area contract when needed — the quorum analogue
// of SubmitProof.
func (p *Prover) SubmitProofQuorum(conn Connector, bundle *ProofBundle, rewardPerProver uint64) (*SubmissionResult, error) {
	if err := p.sys.validateBundle(bundle); err != nil {
		return nil, err
	}
	data, err := marshalBundle(bundle)
	if err != nil {
		return nil, err
	}
	bundleCID, err := p.sys.IPFS.Add(string(p.DID), data)
	if err != nil {
		return nil, err
	}
	if err := p.sys.IPFS.Pin(string(p.DID), bundleCID); err != nil {
		return nil, err
	}
	bundleHash := polcrypto.Hash(data)

	code := bundle.Proofs[0].Request.OLC
	via := p.sys.EntryNode(p.DID)
	record := quorumConcat(bundleCID, bundleHash)
	h, hops, found, err := p.sys.LookupContract(via, code)
	if err != nil {
		return nil, err
	}
	if !found {
		handle, deployOp, err := conn.Deploy(p.accounts[conn.Name()], p.sys.Compiled, []lang.Value{
			lang.BytesValue([]byte(code)),
			lang.Uint64Value(p.DID.Uint64()),
			lang.Uint64Value(rewardPerProver),
		})
		if err != nil {
			return nil, err
		}
		_, insertOp, err := conn.Invoke(p.accounts[conn.Name()], handle, "insert_data",
			CallOpts{EscrowFund: true, Retry: p.sys.retry},
			lang.BytesValue(record), lang.Uint64Value(p.DID.Uint64()))
		if err != nil {
			return nil, err
		}
		if _, err := p.sys.PublishContract(via, code, handle); err != nil {
			return nil, err
		}
		op := &OpResult{
			Latency:  deployOp.Latency + insertOp.Latency,
			Fee:      deployOp.Fee.Add(insertOp.Fee),
			GasUsed:  deployOp.GasUsed + insertOp.GasUsed,
			Receipts: append(deployOp.Receipts, insertOp.Receipts...),
		}
		return &SubmissionResult{Handle: handle, Deployed: true, Op: op, Hops: hops}, nil
	}
	_, op, err := conn.Invoke(p.accounts[conn.Name()], h, "insert_data",
		CallOpts{Retry: p.sys.retry},
		lang.BytesValue(record), lang.Uint64Value(p.DID.Uint64()))
	if err != nil {
		return nil, err
	}
	return &SubmissionResult{Handle: h, Deployed: false, Op: op, Hops: hops}, nil
}

// VerifyProverQuorum runs the quorum verification: fetch the bundle, check
// its integrity against the on-chain hash, validate every proof, and count
// the distinct CA-registered witnesses (excluding the prover itself). Only
// when at least `quorum` independent witnesses certified the claim does the
// on-chain verify (reward + garbage-in) proceed.
func (v *Verifier) VerifyProverQuorum(conn Connector, h *Handle, prover did.DID, quorum int) (*Verification, error) {
	if !v.sys.CA.IsVerifier(v.DID) {
		return nil, ErrNotVerifier
	}
	acct := v.accounts[conn.Name()]
	if acct == nil {
		return nil, fmt.Errorf("core: verifier has no account on %s", conn.Name())
	}
	key := prover.Uint64()
	raw, ok, err := conn.ReadMap(h, EasyMapName, key)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("core: no staged data for %s", prover)
	}
	bundleCID, bundleHash, err := parseQuorumConcat(raw.Bytes)
	if err != nil {
		return &Verification{Prover: prover, Accepted: false, Reason: err.Error()}, nil
	}
	data, err := v.fetchReport(conn, bundleCID)
	if err != nil {
		return &Verification{Prover: prover, Accepted: false, Reason: err.Error()}, nil
	}
	if polcrypto.Hash(data) != bundleHash {
		return &Verification{Prover: prover, Accepted: false, Reason: ErrHashMismatch.Error()}, nil
	}
	bundle, err := unmarshalBundle(data)
	if err != nil {
		return &Verification{Prover: prover, Accepted: false, Reason: err.Error()}, nil
	}
	if err := v.sys.validateBundle(bundle); err != nil {
		return &Verification{Prover: prover, Accepted: false, Reason: err.Error()}, nil
	}
	req := bundle.Proofs[0].Request
	if req.DID != prover {
		return &Verification{Prover: prover, Accepted: false, Reason: ErrBundleInconsistent.Error()}, nil
	}
	// The contract's area must be the certified area.
	posVal, err := conn.ReadGlobal(h, PositionGlobal)
	if err != nil {
		return nil, err
	}
	if string(posVal.Bytes) != req.OLC {
		return &Verification{Prover: prover, Accepted: false, Reason: ErrHashMismatch.Error()}, nil
	}

	doc, err := v.sys.Registry.Resolve(prover)
	if err != nil {
		return nil, err
	}
	proverKey, err := doc.AuthenticationKey()
	if err != nil {
		return nil, err
	}
	distinct := make(map[string]bool)
	for _, p := range bundle.Proofs {
		if bytes.Equal(p.WitnessPub, proverKey) {
			continue // self-signed entries never count
		}
		if !v.sys.CA.IsKnownWitness(p.WitnessPub) {
			continue
		}
		distinct[string(p.WitnessPub)] = true
	}
	if len(distinct) < quorum {
		return &Verification{
			Prover: prover, Accepted: false,
			Reason: fmt.Sprintf("%s: %d < %d", ErrQuorumTooSmall.Error(), len(distinct), quorum),
		}, nil
	}

	// Report integrity, then the on-chain verify and garbage-in as usual.
	reportData, err := v.fetchReport(conn, req.CID)
	if err != nil {
		return &Verification{Prover: prover, Accepted: false, Reason: err.Error()}, nil
	}
	var report Report
	if err := json.Unmarshal(reportData, &report); err != nil {
		return &Verification{Prover: prover, Accepted: false, Reason: "malformed report: " + err.Error()}, nil
	}
	_, op, err := conn.Invoke(acct, h, "verify", CallOpts{Retry: v.sys.retry},
		lang.Uint64Value(key), lang.AddressValue(req.Wallet))
	if err != nil {
		return nil, err
	}
	target, err := v.sys.NodeIDForOLC(req.OLC)
	if err != nil {
		return nil, err
	}
	if _, err := v.sys.Cube.AppendCID(v.sys.EntryNode(v.DID), target, req.OLC, h.ID(), string(req.CID)); err != nil {
		return nil, err
	}
	return &Verification{Prover: prover, Report: report, CID: req.CID, Accepted: true, Op: op}, nil
}
