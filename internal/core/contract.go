// Package core implements the paper's primary contribution: the
// decentralized Proof-of-Location system. It wires together the
// blockchain-agnostic contract (package lang) deployed through chain
// connectors (eth, algorand), the DID layer, the hypercube DHT, IPFS and
// the prover/witness/verifier protocol of Chapter 2.
package core

import (
	"fmt"

	"agnopol/internal/lang"
)

// Contract constants from §4.1: every per-location contract accepts at most
// MaxUsers provers (creator included) — the thesis tests with 4 per
// contract — and pays RewardPerProver to each verified prover.
const MaxUsers = 4

// BuildPoLProgram writes the thesis smart contract (§4.1, Fig. 2.8) in the
// agnostic language:
//
//   - the Creator participant deploys with (position, did, data), which
//     stores the first prover's concatenated values in the Map;
//   - attacherAPI.insert_data(data, did) lets up to MaxUsers provers attach
//     (the ParallelReduce over availableSits);
//   - verifierAPI.insert_money(money) funds the reward pool;
//   - verifierAPI.verify(did, wallet) pays the reward when funded, deletes
//     the map entry, and reports the outcome (reportVerification /
//     issueDuringVerification events);
//   - close() sends the remaining balance back to the creator (the timeout
//     step that lets the contract exit with an empty balance — the token-
//     linearity obligation).
//
// rewardPerProver is in the chain's base units (wei / µAlgo) and becomes a
// constructor argument so the same compiled program runs on every connector.
func BuildPoLProgram() *lang.Program {
	p := lang.NewProgram("pol-report")

	p.DeclareGlobal("position", lang.TBytes)
	p.DeclareGlobal("creator", lang.TAddress)
	p.DeclareGlobal("creatorDid", lang.TUInt)
	p.DeclareGlobal("availableSits", lang.TUInt)
	p.DeclareGlobal("reward", lang.TUInt)
	p.DeclareMap("easy_map", lang.TUInt, lang.TBytes)

	// Deployment is two transactions, exactly as the Etherscan trace in
	// Fig. 3.1 shows: the creation transaction publishes position, DID
	// and reward, then the creator inserts its data through insert_data
	// like every other prover.
	p.SetConstructor(
		[]lang.Param{
			{Name: "position", Type: lang.TBytes},
			{Name: "did", Type: lang.TUInt},
			{Name: "rewardPerProver", Type: lang.TUInt},
		},
		&lang.SetGlobal{Name: "position", Value: lang.A(0)},
		&lang.SetGlobal{Name: "creator", Value: &lang.Caller{}},
		&lang.SetGlobal{Name: "creatorDid", Value: lang.A(1)},
		&lang.SetGlobal{Name: "reward", Value: lang.A(2)},
		&lang.SetGlobal{Name: "availableSits", Value: lang.U(MaxUsers)},
	)

	p.AddAPI(&lang.API{
		Name: "insert_data",
		Params: []lang.Param{
			{Name: "data", Type: lang.TBytes},
			{Name: "did", Type: lang.TUInt},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: lang.Gt(lang.G("availableSits"), lang.U(0)), Msg: "contract is full"},
			&lang.Assume{Cond: &lang.Not{A: &lang.MapHas{Map: "easy_map", Key: lang.A(1)}}, Msg: "DID already attached"},
			&lang.MapSet{Map: "easy_map", Key: lang.A(1), Value: lang.A(0)},
			&lang.SetGlobal{Name: "availableSits", Value: lang.Sub(lang.G("availableSits"), lang.U(1))},
			&lang.Emit{Event: "reportData", Value: lang.A(1)},
			&lang.Return{Value: lang.G("availableSits")},
		},
	})

	p.AddAPI(&lang.API{
		Name:    "insert_money",
		Params:  []lang.Param{{Name: "money", Type: lang.TUInt}},
		Returns: lang.TUInt,
		Pay:     lang.A(0),
		Body: []lang.Stmt{
			&lang.Assume{Cond: lang.Gt(lang.A(0), lang.U(0)), Msg: "deposit must be positive"},
			&lang.Return{Value: &lang.Balance{}},
		},
	})

	p.AddAPI(&lang.API{
		Name: "verify",
		Params: []lang.Param{
			{Name: "did", Type: lang.TUInt},
			{Name: "walletAddress", Type: lang.TAddress},
		},
		Returns: lang.TAddress,
		Body: []lang.Stmt{
			&lang.Assume{Cond: &lang.MapHas{Map: "easy_map", Key: lang.A(0)}, Msg: "no data for DID"},
			&lang.If{
				Cond: lang.Ge(&lang.Balance{}, lang.G("reward")),
				Then: []lang.Stmt{
					&lang.Transfer{Amount: lang.G("reward"), To: lang.A(1)},
					&lang.MapDel{Map: "easy_map", Key: lang.A(0)},
					&lang.Emit{Event: "reportVerification", Value: lang.A(0)},
					&lang.Return{Value: lang.A(1)},
				},
				Else: []lang.Stmt{
					&lang.Emit{Event: "issueDuringVerification", Value: lang.A(0)},
					&lang.Return{Value: lang.A(1)},
				},
			},
		},
	})

	p.AddAPI(&lang.API{
		Name:    "close",
		Params:  []lang.Param{},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			// Only the creator can trigger the timeout close; the
			// remaining tokens go back to them (§4.1.5).
			&lang.Assume{Cond: lang.Eq(&lang.Caller{}, lang.G("creator")), Msg: "only creator closes"},
			&lang.Transfer{Amount: &lang.Balance{}, To: lang.G("creator")},
			&lang.Return{Value: lang.U(1)},
		},
	})

	p.AddView("getCtcBalance", lang.TUInt, &lang.Balance{})
	p.AddView("getReward", lang.TUInt, lang.G("reward"))
	p.AddView("getAvailableSits", lang.TUInt, lang.G("availableSits"))
	p.AddView("getPosition", lang.TBytes, lang.G("position"))
	return p
}

// CompilePoL compiles the PoL contract for both backends; the single
// compiled artifact drives every connector.
func CompilePoL() (*lang.Compiled, error) {
	c, err := lang.Compile(BuildPoLProgram(), lang.Options{MaxBytesLen: 512, Precompiles: true})
	if err != nil {
		return nil, fmt.Errorf("core: compile PoL contract: %w", err)
	}
	return c, nil
}

// Map and global indices for off-chain state reads (Reach frontends read
// contract state through the node; the connectors mirror that via
// ReadMap/ReadGlobal).
const (
	EasyMapName      = "easy_map"
	PositionGlobal   = "position"
	SitsGlobal       = "availableSits"
	RewardGlobal     = "reward"
	CreatorGlobal    = "creator"
	CreatorDidGlobal = "creatorDid"
)
