package core

import (
	"bytes"
	"os"
	"testing"

	"agnopol/internal/lang"
	"agnopol/internal/polcrypto"
)

// TestVerifySourceFileMatchesBuiltin: contracts/pol-verify.pol compiled
// through the textual frontend must produce exactly the backends of
// BuildVerifyProgram — the repo's .pol file IS the contract.
func TestVerifySourceFileMatchesBuiltin(t *testing.T) {
	data, err := os.ReadFile("../../contracts/pol-verify.pol")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lang.ParseSource(string(data))
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := lang.Compile(prog, lang.Options{MaxBytesLen: 512, Precompiles: true})
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := CompileVerify()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromFile.EVMCode, builtin.EVMCode) {
		t.Fatalf("EVM bytecode differs: file %d bytes, builtin %d bytes",
			len(fromFile.EVMCode), len(builtin.EVMCode))
	}
	if fromFile.TEALSource != builtin.TEALSource {
		t.Fatal("TEAL source differs between .pol file and builtin program")
	}
}

func TestVerifyProgramShape(t *testing.T) {
	p := BuildVerifyProgram()
	if err := lang.Check(p); err != nil {
		t.Fatal(err)
	}
	c, err := CompileVerify()
	if err != nil {
		t.Fatal(err)
	}
	// The precompiled check_in must actually carry precompile CALLs: the
	// fused digest and olc_contains reserved addresses appear as PUSH1 id
	// immediately before the CALL-argument setup (spot-check the cheap
	// invariant that compiling without Precompiles yields different code).
	interp, err := lang.Compile(BuildVerifyProgram(), lang.Options{MaxBytesLen: 512})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c.EVMCode, interp.EVMCode) {
		t.Fatal("precompiled and interpreted EVM code are identical — the lowering did not trigger")
	}
	if c.TEALSource == interp.TEALSource {
		t.Fatal("precompiled and interpreted TEAL are identical — the lowering did not trigger")
	}
}

// TestVerifyCommitmentShape pins the off-chain commitment recipe to the
// on-chain digest: digest(loc ++ nonce ++ cid) over Bytes parts is the
// plain SHA-256 of the concatenation on both backends.
func TestVerifyCommitmentShape(t *testing.T) {
	loc, nonce, cid := []byte("8FQFCXGV+XX"), []byte("n0"), []byte("bafy...")
	want := polcrypto.Hash(append(append(append([]byte{}, loc...), nonce...), cid...))
	got := polcrypto.Hash(loc, nonce, cid)
	if want != got {
		t.Fatal("variadic Hash must equal Hash of the concatenation")
	}
}
