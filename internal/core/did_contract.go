package core

import (
	"fmt"

	"agnopol/internal/did"
	"agnopol/internal/lang"
	"agnopol/internal/polcrypto"
)

// The DID-generation/anchoring smart contract of §2.1 and §2.4: "One of
// the first smart contracts could be designed with the aim of producing
// DIDs for users that required it". On-chain it anchors the binding
// DID → authentication-key digest, making the verifiable data registry's
// content tamper-evident on the ledger: anyone can check that the document
// they resolved off-chain matches the digest the subject anchored.

// BuildDIDRegistryProgram returns the anchoring contract: a map from the
// DID's UInt compression to the digest of (DID string ‖ authentication
// key), first-come-first-served per key — DIDs are unique by construction,
// so one anchor per identifier.
func BuildDIDRegistryProgram() *lang.Program {
	p := lang.NewProgram("did-registry")
	p.DeclareGlobal("count", lang.TUInt)
	p.DeclareMap("anchors", lang.TUInt, lang.TBytes)
	p.SetConstructor(nil)

	p.AddAPI(&lang.API{
		Name: "register",
		Params: []lang.Param{
			{Name: "didKey", Type: lang.TUInt},
			{Name: "digest", Type: lang.TBytes},
		},
		Returns: lang.TUInt,
		Body: []lang.Stmt{
			&lang.Assume{Cond: &lang.Not{A: &lang.MapHas{Map: "anchors", Key: lang.A(0)}}, Msg: "DID already anchored"},
			&lang.MapSet{Map: "anchors", Key: lang.A(0), Value: lang.A(1)},
			&lang.SetGlobal{Name: "count", Value: lang.Add(lang.G("count"), lang.U(1))},
			&lang.Emit{Event: "didRegistered", Value: lang.A(0)},
			&lang.Return{Value: lang.G("count")},
		},
	})
	p.AddView("getCount", lang.TUInt, lang.G("count"))
	return p
}

// CompileDIDRegistry compiles the anchoring contract for both backends.
func CompileDIDRegistry() (*lang.Compiled, error) {
	c, err := lang.Compile(BuildDIDRegistryProgram(), lang.Options{MaxBytesLen: 64, Precompiles: true})
	if err != nil {
		return nil, fmt.Errorf("core: compile DID registry: %w", err)
	}
	return c, nil
}

// AnchorDigest is the 32-byte commitment anchored on-chain for a DID.
func AnchorDigest(d did.DID, doc *did.Document) ([32]byte, error) {
	key, err := doc.AuthenticationKey()
	if err != nil {
		return [32]byte{}, err
	}
	return polcrypto.Hash([]byte(d), key), nil
}

// DIDAnchor is a deployed anchoring contract on some connector.
type DIDAnchor struct {
	sys    *System
	conn   Connector
	handle *Handle
}

// DeployDIDAnchor deploys the registry contract.
func DeployDIDAnchor(sys *System, conn Connector, payer *Account) (*DIDAnchor, error) {
	compiled, err := CompileDIDRegistry()
	if err != nil {
		return nil, err
	}
	h, _, err := conn.Deploy(payer, compiled, nil)
	if err != nil {
		return nil, err
	}
	return &DIDAnchor{sys: sys, conn: conn, handle: h}, nil
}

// Anchor publishes the digest of a DID's current document.
func (a *DIDAnchor) Anchor(payer *Account, d did.DID) (*OpResult, error) {
	doc, err := a.sys.Registry.Resolve(d)
	if err != nil {
		return nil, err
	}
	digest, err := AnchorDigest(d, doc)
	if err != nil {
		return nil, err
	}
	_, op, err := a.conn.Invoke(payer, a.handle, "register",
		CallOpts{EscrowFund: true, Retry: a.sys.retry},
		lang.Uint64Value(d.Uint64()), lang.BytesValue(digest[:]))
	return op, err
}

// Verify checks the resolved document against the on-chain anchor: a
// mismatch means the off-chain registry served a document the subject
// never anchored (tampering, or a rotation not yet re-anchored).
func (a *DIDAnchor) Verify(d did.DID) error {
	doc, err := a.sys.Registry.Resolve(d)
	if err != nil {
		return err
	}
	want, err := AnchorDigest(d, doc)
	if err != nil {
		return err
	}
	raw, ok, err := a.conn.ReadMap(a.handle, "anchors", d.Uint64())
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: DID %s has no on-chain anchor", d)
	}
	if len(raw.Bytes) != 32 || [32]byte(raw.Bytes) != want {
		return fmt.Errorf("core: DID %s document does not match its on-chain anchor", d)
	}
	return nil
}

// anchoredCount reads the registry's counter (used by tests).
func (a *DIDAnchor) anchoredCount() (uint64, error) {
	v, err := a.conn.View(a.handle, "getCount")
	if err != nil {
		return 0, err
	}
	return v.Uint, nil
}
