package core

import (
	"fmt"
	"testing"

	"agnopol/internal/faults"
	"agnopol/internal/obs"
	"agnopol/internal/olc"
)

// discoveryAreaCode synthesizes the i-th valid full Open Location Code of
// the test grid by spelling i in base 20 over the second digit quad.
func discoveryAreaCode(i int) string {
	a := olc.Alphabet
	n := len(a)
	return fmt.Sprintf("7H36%c%c%c%c+Q2",
		a[(i/(n*n*n))%n], a[(i/(n*n))%n], a[(i/n)%n], a[i%n])
}

// publishBoth registers n areas in a registry and publishes each area's
// handle through both routers into the one shared cube. Flat and sharded
// placement use distinct target nodes, so the two modes coexist without
// clashing on the keyword.
func publishBoth(t *testing.T, sys *System, reg *AreaRegistry, flat, sharded *DHTDiscovery, n int) []string {
	t.Helper()
	areas := make([]string, n)
	for i := 0; i < n; i++ {
		code := discoveryAreaCode(i)
		areas[i] = code
		h := &Handle{Connector: "goerli", AppID: uint64(i) + 1}
		if err := reg.Register(code, h); err != nil {
			t.Fatalf("register %s: %v", code, err)
		}
		if _, err := flat.Publish(0, code, h); err != nil {
			t.Fatalf("flat publish %s: %v", code, err)
		}
		if _, err := sharded.Publish(0, code, h); err != nil {
			t.Fatalf("sharded publish %s: %v", code, err)
		}
	}
	return areas
}

// TestDHTShardedFlatEquivalence pins the determinism contract: for every
// area, sharded discovery must return exactly the handle flat discovery
// returns — the placement changes, the resolution must not.
func TestDHTShardedFlatEquivalence(t *testing.T) {
	sys, err := NewSystem(11)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewAreaRegistry(4)
	flat := NewDHTDiscovery(sys, reg, false, nil)
	sharded := NewDHTDiscovery(sys, reg, true, nil)
	areas := publishBoth(t, sys, reg, flat, sharded, 64)

	for ui, code := range areas {
		via := uint64(ui) & (1<<uint(sys.R) - 1)
		hf, _, okf, err := flat.Lookup(via, code)
		if err != nil || !okf {
			t.Fatalf("flat lookup %s: ok=%v err=%v", code, okf, err)
		}
		hs, _, oks, err := sharded.Lookup(via, code)
		if err != nil || !oks {
			t.Fatalf("sharded lookup %s: ok=%v err=%v", code, oks, err)
		}
		if hf.ID() != hs.ID() {
			t.Fatalf("area %s: sharded resolved %s, flat resolved %s", code, hs.ID(), hf.ID())
		}
	}
}

// TestDHTShardedTargetsStayInNeighborhood pins the placement contract: a
// shard's areas are served by the shard's anchor vertex or one of its r
// direct neighbours — at most r+1 nodes per shard — and the target is a
// pure function of the area, independent of registration order.
func TestDHTShardedTargetsStayInNeighborhood(t *testing.T) {
	sys, err := NewSystem(12)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewAreaRegistry(4)
	d := NewDHTDiscovery(sys, reg, true, nil)
	for i := 0; i < 200; i++ {
		code := discoveryAreaCode(i)
		target, err := d.Target(code)
		if err != nil {
			t.Fatal(err)
		}
		anchor := ShardAnchor(reg.ShardOf(code), sys.R)
		if hops := sys.Cube.Hops(anchor, target); hops > 1 {
			t.Fatalf("area %s target %d is %d hops from its shard anchor %d, want <= 1",
				code, target, hops, anchor)
		}
		again, _ := d.Target(code)
		if again != target {
			t.Fatalf("area %s target moved %d -> %d across calls", code, target, again)
		}
	}
}

// TestDHTShardedHopBoundUnderChurn is the property test for the resilience
// claim: with the fault engine's DHT churn class injecting node failures on
// routing paths, ShardOf-affine routes still never exceed the hypercube's
// r-hop bound — detours flip a different differing bit, they never lengthen
// the path.
func TestDHTShardedHopBoundUnderChurn(t *testing.T) {
	plan, err := faults.Profile("cube", 0.35)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 99} {
		sys, err := NewSystem(seed)
		if err != nil {
			t.Fatal(err)
		}
		sys.SetResilience(faults.NewInjector(plan, seed, nil), faults.RetryPolicy{})
		reg := NewAreaRegistry(8)
		d := NewDHTDiscovery(sys, reg, true, nil)
		areas := make([]string, 96)
		for i := range areas {
			areas[i] = discoveryAreaCode(i)
			h := &Handle{Connector: "algorand", AppID: uint64(i) + 1}
			if err := reg.Register(areas[i], h); err != nil {
				t.Fatal(err)
			}
			if _, err := d.Publish(uint64(i)%uint64(sys.Cube.Size()), areas[i], h); err != nil {
				t.Fatal(err)
			}
		}
		for ui := 0; ui < 400; ui++ {
			code := areas[ui%len(areas)]
			via := uint64(ui*2654435761) & (1<<uint(sys.R) - 1)
			h, hops, ok, err := d.Lookup(via, code)
			if err != nil || !ok {
				t.Fatalf("seed %d: churned lookup %s: ok=%v err=%v", seed, code, ok, err)
			}
			if hops > sys.R {
				t.Fatalf("seed %d: lookup %s took %d hops, above the r=%d bound under churn",
					seed, code, hops, sys.R)
			}
			if h == nil {
				t.Fatalf("seed %d: lookup %s returned nil handle", seed, code)
			}
		}
		if st := sys.Cube.Stats(); st.Rerouted == 0 {
			t.Fatalf("seed %d: churn at rate 0.35 never rerouted a hop — the property was not exercised", seed)
		}
	}
}

// TestDHTShardedLoadCounters pins the observability contract: every lookup
// lands in exactly one core_dht_discovery_total{mode,shard} counter, and
// the shard label matches ShardOf.
func TestDHTShardedLoadCounters(t *testing.T) {
	sys, err := NewSystem(5)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	shards := 3
	reg := NewAreaRegistry(shards)
	flat := NewDHTDiscovery(sys, reg, false, o)
	sharded := NewDHTDiscovery(sys, reg, true, o)
	areas := publishBoth(t, sys, reg, flat, sharded, 30)

	want := make([]uint64, shards)
	const lookups = 120
	for ui := 0; ui < lookups; ui++ {
		code := areas[ui%len(areas)]
		want[reg.ShardOf(code)]++
		if _, _, ok, err := sharded.Lookup(uint64(ui)%uint64(sys.Cube.Size()), code); err != nil || !ok {
			t.Fatalf("lookup %s: ok=%v err=%v", code, ok, err)
		}
	}
	var total uint64
	for s := 0; s < shards; s++ {
		got := o.Registry.Counter("core_dht_discovery_total",
			obs.L("mode", "sharded"), obs.L("shard", fmt.Sprint(s))).Value()
		if got != want[s] {
			t.Fatalf("shard %d: counted %d lookups, want %d", s, got, want[s])
		}
		total += got
	}
	if total != lookups {
		t.Fatalf("per-shard counters sum to %d, want %d", total, lookups)
	}
	// The sharded mode must not leak into the flat counters.
	for s := 0; s < shards; s++ {
		if got := o.Registry.Counter("core_dht_discovery_total",
			obs.L("mode", "flat"), obs.L("shard", fmt.Sprint(s))).Value(); got != 0 {
			t.Fatalf("flat counter for shard %d is %d, want 0", s, got)
		}
	}
}

// TestShardAnchorSpread pins the anchor derivation: distinct shards get
// distinct, in-range anchor vertices for every shard count up to 2^r.
func TestShardAnchorSpread(t *testing.T) {
	const r = 6
	seen := make(map[uint64]int)
	for s := 0; s < 1<<r; s++ {
		a := ShardAnchor(s, r)
		if a >= 1<<r {
			t.Fatalf("anchor(%d) = %d out of range for r=%d", s, a, r)
		}
		if prev, dup := seen[a]; dup {
			t.Fatalf("shards %d and %d share anchor %d", prev, s, a)
		}
		seen[a] = s
	}
	if ShardAnchor(1<<r, r) != ShardAnchor(0, r) {
		t.Fatalf("anchor should wrap at 2^r")
	}
}
