package avm

import (
	"strings"
	"testing"

	"agnopol/internal/chain"
)

func TestParseLabelsAndComments(t *testing.T) {
	p, err := Parse(`
// leading comment
int 1        // trailing comment
bnz skip
err
skip:
int 1
return
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 5 {
		t.Fatalf("instrs = %d", len(p.Instrs))
	}
	if p.Labels["skip"] != 3 {
		t.Fatalf("label skip at %d", p.Labels["skip"])
	}
	// Lines are tracked for diagnostics.
	if p.Instrs[0].Line != 3 {
		t.Fatalf("first instr line %d", p.Instrs[0].Line)
	}
}

func TestTokenizeQuotedStrings(t *testing.T) {
	toks, err := tokenize(`byte "hello \"world\"" extra`)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 {
		t.Fatalf("tokens = %v", toks)
	}
	if got := argString(toks[1]); got != `hello "world"` {
		t.Fatalf("string token %q", got)
	}
	if toks[2] != "extra" {
		t.Fatalf("tail token %q", toks[2])
	}
}

func TestTokenizeErrors(t *testing.T) {
	if _, err := tokenize(`byte "open`); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := tokenize(`   `); err == nil {
		t.Fatal("empty instruction accepted")
	}
}

func TestValueHelpers(t *testing.T) {
	v := Uint64Value(9)
	if v.Truthy() != true {
		t.Fatal("nonzero uint not truthy")
	}
	if Uint64Value(0).Truthy() {
		t.Fatal("zero uint truthy")
	}
	if !BytesValue([]byte("x")).Truthy() || BytesValue(nil).Truthy() {
		t.Fatal("bytes truthiness wrong")
	}
	if _, err := v.AsBytes(); err == nil {
		t.Fatal("uint read as bytes")
	}
	if _, err := BytesValue(nil).AsUint(); err == nil {
		t.Fatal("bytes read as uint")
	}
	if !strings.Contains(BytesValue([]byte("ab")).String(), "ab") {
		t.Fatal("bytes String")
	}
	if !strings.Contains(Uint64Value(7).String(), "7") {
		t.Fatal("uint String")
	}
}

func TestExecutionErrorsCarryLineNumbers(t *testing.T) {
	p, err := Parse("int 1\nint 0\n/\nreturn")
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(p, NewMemLedger(), TxContext{AppID: 1})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "line 3") {
		t.Fatalf("err = %v, want line info", res.Err)
	}
}

func TestStackUnderflowReported(t *testing.T) {
	p, err := Parse("pop\nint 1\nreturn")
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(p, NewMemLedger(), TxContext{AppID: 1})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "stack") {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestScratchSlotBounds(t *testing.T) {
	p, err := Parse("int 1\nstore 300\nint 1\nreturn")
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(p, NewMemLedger(), TxContext{AppID: 1})
	if res.Err == nil {
		t.Fatal("out-of-range scratch slot accepted")
	}
}

func TestTxnArgsOutOfRange(t *testing.T) {
	p, err := Parse("txna ApplicationArgs 3\nint 1\nreturn")
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(p, NewMemLedger(), TxContext{AppID: 1, Args: [][]byte{[]byte("a")}})
	if res.Err == nil {
		t.Fatal("out-of-range ApplicationArgs accepted")
	}
}

func TestUnknownFields(t *testing.T) {
	for _, src := range []string{
		"txn Mystery\nint 1\nreturn",
		"global Mystery\nint 1\nreturn",
		"txna Mystery 0\nint 1\nreturn",
		"gtxn 1 Amount\nint 1\nreturn",
		"itxn_field Mystery\nint 1\nreturn",
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res := Execute(p, NewMemLedger(), TxContext{AppID: 1})
		if res.Err == nil {
			t.Fatalf("accepted: %s", src)
		}
	}
}

func TestItxnProtocolErrors(t *testing.T) {
	for name, src := range map[string]string{
		"field-outside":  "int 1\nitxn_field Amount\nint 1\nreturn",
		"submit-outside": "itxn_submit\nint 1\nreturn",
		"nested-begin":   "itxn_begin\nitxn_begin\nint 1\nreturn",
	} {
		p, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		res := Execute(p, NewMemLedger(), TxContext{AppID: 1})
		if res.Err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}

func TestAccountIndexing(t *testing.T) {
	// Numeric account reference 0 = sender; 1 = Accounts[0]; out of range
	// errors.
	led := NewMemLedger()
	sender := mustAddr("sender")
	other := mustAddr("other")
	led.Balances[sender] = 11
	led.Balances[other] = 22
	p, err := Parse("int 0\nbalance\nint 11\n==\nassert\nint 1\nbalance\nint 22\n==\nreturn")
	if err != nil {
		t.Fatal(err)
	}
	res := Execute(p, led, TxContext{AppID: 1, Sender: sender, Accounts: []chainAddr{other}})
	if !res.Approved {
		t.Fatalf("account indexing failed: %v", res.Err)
	}
	p2, err := Parse("int 5\nbalance\npop\nint 1\nreturn")
	if err != nil {
		t.Fatal(err)
	}
	res = Execute(p2, led, TxContext{AppID: 1, Sender: sender})
	if res.Err == nil {
		t.Fatal("out-of-range account index accepted")
	}
}

// small helpers for the tests above.
type chainAddr = chain.Address

func mustAddr(s string) chainAddr {
	var a chainAddr
	copy(a[:], s)
	return a
}
