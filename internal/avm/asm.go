package avm

import (
	"fmt"
	"strconv"
	"strings"
)

// Instr is one parsed TEAL instruction.
type Instr struct {
	Op   string
	Args []string
	// Line is the 1-based source line, for error messages.
	Line int
	// Cost is the opcode's budget cost, precomputed at parse time so the
	// interpreter loop skips the cost-table lookup. Zero means "not
	// precomputed" and the interpreter falls back to the table.
	Cost uint64
}

// Program is a parsed TEAL program ready for execution.
type Program struct {
	Source string
	Instrs []Instr
	Labels map[string]int // label -> instruction index
}

// Parse assembles TEAL-like source text. Grammar: one instruction per line;
// `//` comments; `name:` defines a label; string immediates use Go-style
// double quotes.
func Parse(src string) (*Program, error) {
	p := &Program{Source: src, Labels: make(map[string]int)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") && !strings.ContainsAny(line, " \t") {
			label := strings.TrimSuffix(line, ":")
			if _, dup := p.Labels[label]; dup {
				return nil, fmt.Errorf("avm: line %d: duplicate label %q", lineNo+1, label)
			}
			p.Labels[label] = len(p.Instrs)
			continue
		}
		fields, err := tokenize(line)
		if err != nil {
			return nil, fmt.Errorf("avm: line %d: %w", lineNo+1, err)
		}
		p.Instrs = append(p.Instrs, Instr{Op: fields[0], Args: fields[1:], Line: lineNo + 1, Cost: instrCostArgs(fields[0], fields[1:])})
	}
	return p, nil
}

// tokenize splits an instruction line, keeping double-quoted strings (with
// escapes) as single tokens.
func tokenize(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		if i >= len(line) {
			break
		}
		if line[i] == '"' {
			j := i + 1
			for j < len(line) {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("unterminated string")
			}
			tok, err := strconv.Unquote(line[i : j+1])
			if err != nil {
				return nil, fmt.Errorf("bad string literal: %w", err)
			}
			out = append(out, "\x00"+tok) // NUL prefix marks "already unquoted string"
			i = j + 1
			continue
		}
		j := i
		for j < len(line) && line[j] != ' ' && line[j] != '\t' {
			j++
		}
		out = append(out, line[i:j])
		i = j
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty instruction")
	}
	return out, nil
}

// argString decodes a token that may be a quoted string (NUL-prefixed by the
// tokenizer) or a bare word.
func argString(tok string) string {
	if strings.HasPrefix(tok, "\x00") {
		return tok[1:]
	}
	return tok
}

// argUint parses a numeric immediate.
func argUint(tok string) (uint64, error) {
	return strconv.ParseUint(argString(tok), 10, 64)
}
