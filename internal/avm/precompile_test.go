package avm

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"testing"
)

// Precompile pseudo-op tests (DESIGN.md §14): the AVM exposes the shared
// native registry as fixed-cost opcodes.

func TestSha256PartsOp(t *testing.T) {
	// Hashing N parts must equal hashing the concatenation — the fusion
	// property the TEAL backend's digest lowering relies on.
	src := "byte \"proof-\"\nbyte \"of-\"\nbyte \"location\"\nsha256_parts 3\n" +
		"byte \"proof-of-location\"\nsha256\n==\nreturn"
	res, _ := exec(t, src, TxContext{AppID: 1, BudgetTxns: 2})
	if res.Err != nil || !res.Approved {
		t.Fatalf("sha256_parts != sha256 of concat: %+v", res)
	}
}

func TestSha256PartsBadCount(t *testing.T) {
	for _, src := range []string{
		"byte \"x\"\nsha256_parts 0\nreturn",
		"byte \"x\"\nsha256_parts 17\nreturn",
	} {
		res, _ := exec(t, src, TxContext{AppID: 1, BudgetTxns: 2})
		if res.Err == nil {
			t.Fatalf("out-of-range part count must fail: %q", src)
		}
	}
}

func TestKeccak256OpIsSystemHash(t *testing.T) {
	// The system digest is SHA-256 throughout; keccak256 is an alias at
	// keccak's op cost.
	src := "byte \"payload\"\nkeccak256\nbyte \"payload\"\nsha256\n==\nreturn"
	res, _ := exec(t, src, TxContext{AppID: 1, BudgetTxns: 2})
	if res.Err != nil || !res.Approved {
		t.Fatalf("keccak256 != sha256: %+v", res)
	}
}

func TestOLCContainsOp(t *testing.T) {
	cases := []struct {
		cell, code string
		want       bool
	}{
		{"8FQFCX", "8FQFCXGV+XX", true},
		{"8FQFCX", "8FQFCX", true},
		{"8FQFCX", "9FQFCXGV+XX", false},
		{"8FQFCXGV+XX", "8FQFCX", false},
	}
	for _, c := range cases {
		src := "byte \"" + c.cell + "\"\nbyte \"" + c.code + "\"\nolc_contains\nreturn"
		res, _ := exec(t, src, TxContext{AppID: 1, BudgetTxns: 2})
		if res.Err != nil || res.Approved != c.want {
			t.Fatalf("contains(%q, %q) = %v err=%v, want %v", c.cell, c.code, res.Approved, res.Err, c.want)
		}
	}
}

func TestSubstring3Op(t *testing.T) {
	src := "byte \"8FQFCXGV+XX\"\nint 0\nint 6\nsubstring3\nbyte \"8FQFCX\"\n==\nreturn"
	res, _ := exec(t, src, TxContext{AppID: 1, BudgetTxns: 2})
	if res.Err != nil || !res.Approved {
		t.Fatalf("substring3 prefix extraction failed: %+v", res)
	}
	for _, bad := range []string{
		"byte \"ab\"\nint 2\nint 1\nsubstring3\nreturn", // start > end
		"byte \"ab\"\nint 0\nint 3\nsubstring3\nreturn", // end > len
	} {
		res, _ := exec(t, bad, TxContext{AppID: 1, BudgetTxns: 2})
		if res.Err == nil {
			t.Fatalf("out-of-bounds substring3 must fail: %q", bad)
		}
	}
}

func TestEd25519VerifyOp(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := sha256.Sum256([]byte("avm check-in"))
	sig := ed25519.Sign(priv, msg[:])

	// TEAL argument order: data, signature, pubkey.
	src := "txna ApplicationArgs 0\ntxna ApplicationArgs 1\ntxna ApplicationArgs 2\ned25519verify\nreturn"
	tx := TxContext{AppID: 1, Args: [][]byte{msg[:], sig, pub}, BudgetTxns: 4}
	res, _ := exec(t, src, tx)
	if res.Err != nil || !res.Approved {
		t.Fatalf("valid signature rejected: %+v", res)
	}

	bad := append([]byte(nil), sig...)
	bad[0] ^= 1
	tx.Args = [][]byte{msg[:], bad, pub}
	res, _ = exec(t, src, tx)
	if res.Err != nil || res.Approved {
		t.Fatalf("corrupted signature accepted: %+v", res)
	}

	// A single-transaction budget (700) cannot afford the 1900-cost op —
	// exactly the real AVM's pooling requirement.
	tx.Args = [][]byte{msg[:], sig, pub}
	tx.BudgetTxns = 1
	res, _ = exec(t, src, tx)
	if res.Err == nil {
		t.Fatal("ed25519verify must exceed a single-txn budget")
	}
}

// TestPseudoOpCosts pins the assembled Instr.Cost of every pseudo-op to the
// registry's schedule, including the arg-aware sha256_parts pricing.
func TestPseudoOpCosts(t *testing.T) {
	cases := []struct {
		src  string
		want uint64
	}{
		{"ed25519verify", 1900},
		{"keccak256", 130},
		{"olc_contains", 20},
		{"substring3", 1},
		{"sha256_parts 1", 36},
		{"sha256_parts 16", 51},
	}
	for _, c := range cases {
		p := mustParse(t, c.src)
		if got := p.Instrs[0].Cost; got != c.want {
			t.Fatalf("cost of %q = %d, want %d", c.src, got, c.want)
		}
	}
}
