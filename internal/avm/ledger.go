package avm

import (
	"errors"

	"agnopol/internal/chain"
)

// Ledger is the application-state interface the AVM mutates. The Algorand
// chain simulator provides the implementation; MemLedger serves tests.
type Ledger interface {
	GlobalGet(app uint64, key string) (Value, bool)
	GlobalPut(app uint64, key string, v Value)
	GlobalDel(app uint64, key string)
	LocalGet(app uint64, addr chain.Address, key string) (Value, bool)
	LocalPut(app uint64, addr chain.Address, key string, v Value)
	LocalDel(app uint64, addr chain.Address, key string)
	OptedIn(app uint64, addr chain.Address) bool
	Balance(addr chain.Address) uint64
	// Pay moves µAlgos between accounts; the VM uses it for inner payment
	// transactions from the application account.
	Pay(from, to chain.Address, amount uint64) error
	// AppAddress is the escrow address of an application.
	AppAddress(app uint64) chain.Address
	// Round and LatestTimestamp feed the `global` opcode.
	Round() uint64
	LatestTimestamp() uint64
}

// ErrInsufficientBalance reports a payment the sender cannot fund.
var ErrInsufficientBalance = errors.New("avm: insufficient balance")

// MemLedger is an in-memory Ledger for unit tests.
type MemLedger struct {
	Globals   map[uint64]map[string]Value
	Locals    map[uint64]map[chain.Address]map[string]Value
	Balances  map[chain.Address]uint64
	CurRound  uint64
	Timestamp uint64
}

// NewMemLedger returns an empty ledger.
func NewMemLedger() *MemLedger {
	return &MemLedger{
		Globals:  make(map[uint64]map[string]Value),
		Locals:   make(map[uint64]map[chain.Address]map[string]Value),
		Balances: make(map[chain.Address]uint64),
	}
}

var _ Ledger = (*MemLedger)(nil)

// GlobalGet implements Ledger.
func (l *MemLedger) GlobalGet(app uint64, key string) (Value, bool) {
	v, ok := l.Globals[app][key]
	return v, ok
}

// GlobalPut implements Ledger.
func (l *MemLedger) GlobalPut(app uint64, key string, v Value) {
	m, ok := l.Globals[app]
	if !ok {
		m = make(map[string]Value)
		l.Globals[app] = m
	}
	m[key] = v
}

// GlobalDel implements Ledger.
func (l *MemLedger) GlobalDel(app uint64, key string) {
	delete(l.Globals[app], key)
}

// LocalGet implements Ledger.
func (l *MemLedger) LocalGet(app uint64, addr chain.Address, key string) (Value, bool) {
	v, ok := l.Locals[app][addr][key]
	return v, ok
}

// LocalPut implements Ledger.
func (l *MemLedger) LocalPut(app uint64, addr chain.Address, key string, v Value) {
	apps, ok := l.Locals[app]
	if !ok {
		apps = make(map[chain.Address]map[string]Value)
		l.Locals[app] = apps
	}
	m, ok := apps[addr]
	if !ok {
		m = make(map[string]Value)
		apps[addr] = m
	}
	m[key] = v
}

// LocalDel implements Ledger.
func (l *MemLedger) LocalDel(app uint64, addr chain.Address, key string) {
	delete(l.Locals[app][addr], key)
}

// OptedIn implements Ledger.
func (l *MemLedger) OptedIn(app uint64, addr chain.Address) bool {
	_, ok := l.Locals[app][addr]
	return ok
}

// Balance implements Ledger.
func (l *MemLedger) Balance(addr chain.Address) uint64 { return l.Balances[addr] }

// Pay implements Ledger.
func (l *MemLedger) Pay(from, to chain.Address, amount uint64) error {
	if l.Balances[from] < amount {
		return ErrInsufficientBalance
	}
	l.Balances[from] -= amount
	l.Balances[to] += amount
	return nil
}

// AppAddress implements Ledger.
func (l *MemLedger) AppAddress(app uint64) chain.Address {
	return chain.AddressFromBytes([]byte{byte(app >> 56), byte(app >> 48), byte(app >> 40),
		byte(app >> 32), byte(app >> 24), byte(app >> 16), byte(app >> 8), byte(app), 'a', 'p', 'p'})
}

// Round implements Ledger.
func (l *MemLedger) Round() uint64 { return l.CurRound }

// LatestTimestamp implements Ledger.
func (l *MemLedger) LatestTimestamp() uint64 { return l.Timestamp }
