package avm

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"agnopol/internal/chain"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return p
}

func exec(t *testing.T, src string, tx TxContext) (Result, *MemLedger) {
	t.Helper()
	led := NewMemLedger()
	return Execute(mustParse(t, src), led, tx), led
}

func TestArithmeticOps(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"add", "int 40\nint 2\n+\nint 42\n==\nreturn", true},
		{"sub", "int 50\nint 8\n-\nint 42\n==\nreturn", true},
		{"mul", "int 6\nint 7\n*\nint 42\n==\nreturn", true},
		{"div", "int 85\nint 2\n/\nint 42\n==\nreturn", true},
		{"mod", "int 85\nint 43\n%\nint 42\n==\nreturn", true},
		{"lt", "int 1\nint 2\n<\nreturn", true},
		{"gt", "int 1\nint 2\n>\nreturn", false},
		{"le", "int 2\nint 2\n<=\nreturn", true},
		{"ge", "int 1\nint 2\n>=\nreturn", false},
		{"ne", "int 1\nint 2\n!=\nreturn", true},
		{"not", "int 0\n!\nreturn", true},
		{"and", "int 1\nint 0\n&&\nreturn", false},
		{"or", "int 1\nint 0\n||\nreturn", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, _ := exec(t, c.src, TxContext{AppID: 1})
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if res.Approved != c.want {
				t.Fatalf("approved = %v, want %v", res.Approved, c.want)
			}
		})
	}
}

func TestArithmeticFaults(t *testing.T) {
	for name, src := range map[string]string{
		"div-zero":      "int 1\nint 0\n/\nreturn",
		"mod-zero":      "int 1\nint 0\n%\nreturn",
		"sub-underflow": "int 1\nint 2\n-\nreturn",
		"add-overflow":  "int 18446744073709551615\nint 1\n+\nreturn",
		"mul-overflow":  "int 18446744073709551615\nint 2\n*\nreturn",
	} {
		t.Run(name, func(t *testing.T) {
			res, _ := exec(t, src, TxContext{AppID: 1})
			if res.Err == nil {
				t.Fatal("fault not reported")
			}
		})
	}
}

func TestBytesOps(t *testing.T) {
	src := `
byte "foo"
byte "bar"
concat
byte "foobar"
==
return`
	res, _ := exec(t, src, TxContext{AppID: 1})
	if !res.Approved {
		t.Fatalf("concat/== failed: %v", res.Err)
	}

	res, _ = exec(t, "byte \"hello\"\nlen\nint 5\n==\nreturn", TxContext{AppID: 1})
	if !res.Approved {
		t.Fatal("len failed")
	}
}

func TestItobBtoiRoundTrip(t *testing.T) {
	err := quick.Check(func(v uint64) bool {
		got, err := Btoi(Itob(v))
		return err == nil && got == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Btoi(make([]byte, 9)); err == nil {
		t.Fatal("9-byte btoi accepted")
	}
}

func TestTypeMismatch(t *testing.T) {
	res, _ := exec(t, "int 1\nbyte \"x\"\n+\nreturn", TxContext{AppID: 1})
	if !errors.Is(res.Err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want type mismatch", res.Err)
	}
	res, _ = exec(t, "int 1\nbyte \"x\"\n==\nreturn", TxContext{AppID: 1})
	if !errors.Is(res.Err, ErrTypeMismatch) {
		t.Fatalf("==: err = %v, want type mismatch", res.Err)
	}
}

func TestGlobalState(t *testing.T) {
	src := `
byte "count"
int 41
app_global_put
byte "count"
app_global_get
int 1
+
byte "count"
swap
app_global_put
byte "count"
app_global_get
int 42
==
return`
	res, led := exec(t, src, TxContext{AppID: 5})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
	v, ok := led.GlobalGet(5, "count")
	if !ok || v.Uint != 42 {
		t.Fatalf("count = %v (ok=%v)", v, ok)
	}
}

func TestGlobalGetEx(t *testing.T) {
	src := `
int 0
byte "missing"
app_global_get_ex
swap
pop
!
assert
byte "present"
int 1
app_global_put
int 0
byte "present"
app_global_get_ex
swap
pop
return`
	res, _ := exec(t, src, TxContext{AppID: 2})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
}

func TestLocalState(t *testing.T) {
	sender := chain.AddressFromBytes([]byte("sender"))
	src := `
int 0
byte "score"
int 9
app_local_put
int 0
byte "score"
app_local_get
int 9
==
return`
	res, led := exec(t, src, TxContext{AppID: 3, Sender: sender})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
	if v, ok := led.LocalGet(3, sender, "score"); !ok || v.Uint != 9 {
		t.Fatalf("local score = %v", v)
	}
}

func TestBranchingAndSubroutines(t *testing.T) {
	src := `
int 5
callsub double
int 10
==
bnz ok
err
ok:
int 1
return
double:
int 2
*
retsub`
	res, _ := exec(t, src, TxContext{AppID: 1})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
}

func TestScratchSlots(t *testing.T) {
	src := `
int 7
store 3
load 3
load 3
+
int 14
==
return`
	res, _ := exec(t, src, TxContext{AppID: 1})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
}

func TestTxnFields(t *testing.T) {
	sender := chain.AddressFromBytes([]byte("abc"))
	src := `
txn Sender
len
int 20
==
assert
txna ApplicationArgs 0
byte "method"
==
assert
txn NumAppArgs
int 2
==
return`
	res, _ := exec(t, src, TxContext{
		AppID: 1, Sender: sender,
		Args: [][]byte{[]byte("method"), []byte("arg")},
	})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
}

func TestCreateModeApplicationID(t *testing.T) {
	src := `
txn ApplicationID
!
return`
	res, _ := exec(t, src, TxContext{AppID: 7, CreateMode: true})
	if !res.Approved {
		t.Fatal("ApplicationID should read 0 in create mode")
	}
	res, _ = exec(t, src, TxContext{AppID: 7})
	if res.Approved {
		t.Fatal("ApplicationID should be non-zero outside create mode")
	}
}

func TestGtxnPayAmount(t *testing.T) {
	src := `
gtxn 0 Amount
int 500
==
return`
	res, _ := exec(t, src, TxContext{AppID: 1, PayAmount: 500})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
}

func TestInnerPayment(t *testing.T) {
	led := NewMemLedger()
	app := uint64(4)
	led.Balances[led.AppAddress(app)] = 1000
	to := chain.AddressFromBytes([]byte("rcpt"))
	// The receiver is taken from txn Sender because raw addresses are not
	// printable in source literals.
	prog := mustParse(t, `
itxn_begin
int 1
itxn_field TypeEnum
txn Sender
itxn_field Receiver
int 300
itxn_field Amount
itxn_submit
int 1
return`)
	res := Execute(prog, led, TxContext{AppID: app, Sender: to})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
	if led.Balances[to] != 300 {
		t.Fatalf("recipient got %d", led.Balances[to])
	}
	if led.Balances[led.AppAddress(app)] != 700 {
		t.Fatalf("app kept %d", led.Balances[led.AppAddress(app)])
	}
}

func TestInnerPaymentInsufficient(t *testing.T) {
	led := NewMemLedger()
	prog := mustParse(t, `
itxn_begin
int 1
itxn_field TypeEnum
txn Sender
itxn_field Receiver
int 300
itxn_field Amount
itxn_submit
int 1
return`)
	res := Execute(prog, led, TxContext{AppID: 9, Sender: chain.AddressFromBytes([]byte("x"))})
	if res.Approved {
		t.Fatal("underfunded inner payment approved")
	}
	if !errors.Is(res.Err, ErrInsufficientBalance) {
		t.Fatalf("err = %v", res.Err)
	}
}

func TestBudgetEnforced(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int 0\n")
	for i := 0; i < 800; i++ {
		sb.WriteString("int 1\n+\n")
	}
	sb.WriteString("return\n")
	res, _ := exec(t, sb.String(), TxContext{AppID: 1})
	if !errors.Is(res.Err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exceeded", res.Err)
	}
	// Pooled budget with 3 grouped txns passes.
	res, _ = exec(t, sb.String(), TxContext{AppID: 1, BudgetTxns: 3})
	if res.Err != nil {
		t.Fatalf("pooled budget rejected: %v", res.Err)
	}
}

func TestSha256Cost(t *testing.T) {
	res, _ := exec(t, "byte \"x\"\nsha256\nlen\nint 32\n==\nreturn", TxContext{AppID: 1})
	if !res.Approved {
		t.Fatalf("rejected: %v", res.Err)
	}
	if res.Cost < 35 {
		t.Fatalf("sha256 cost %d, want ≥35", res.Cost)
	}
}

func TestAssertAndErr(t *testing.T) {
	res, _ := exec(t, "int 0\nassert\nint 1\nreturn", TxContext{AppID: 1})
	if !errors.Is(res.Err, ErrRejected) {
		t.Fatalf("assert 0: err = %v", res.Err)
	}
	res, _ = exec(t, "err", TxContext{AppID: 1})
	if !errors.Is(res.Err, ErrRejected) {
		t.Fatalf("err: %v", res.Err)
	}
}

func TestProgramMustReturn(t *testing.T) {
	res, _ := exec(t, "int 1\npop", TxContext{AppID: 1})
	if res.Err == nil {
		t.Fatal("fall-off-the-end accepted")
	}
}

func TestLogReturnConvention(t *testing.T) {
	src := `
byte "return:ok"
log
int 1
return`
	res, _ := exec(t, src, TxContext{AppID: 1})
	if string(res.Return) != "ok" {
		t.Fatalf("return payload %q", res.Return)
	}
	if len(res.Logs) != 1 {
		t.Fatalf("logs %v", res.Logs)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("byte \"unterminated"); err == nil {
		t.Fatal("unterminated string accepted")
	}
	if _, err := Parse("x:\nx:\nint 1\nreturn"); err == nil {
		t.Fatal("duplicate label accepted")
	}
	res, _ := exec(t, "frobnicate\nint 1\nreturn", TxContext{AppID: 1})
	if res.Err == nil {
		t.Fatal("unknown opcode accepted")
	}
	res, _ = exec(t, "b nowhere\nint 1\nreturn", TxContext{AppID: 1})
	if res.Err == nil {
		t.Fatal("undefined branch target accepted")
	}
}

func TestSelectAndSwap(t *testing.T) {
	src := `
int 10
int 20
int 1
select
int 20
==
return`
	res, _ := exec(t, src, TxContext{AppID: 1})
	if !res.Approved {
		t.Fatalf("select: %v", res.Err)
	}
}
