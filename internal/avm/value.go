// Package avm implements the Algorand Virtual Machine subset the
// blockchain-agnostic contract language compiles to: a TEAL-like assembly
// language (Fig. 1.7 of the thesis), its parser, and a stack interpreter
// with Algorand's per-call opcode budget, global/local application state and
// inner payment transactions. The Algorand chain simulator executes
// application calls through this VM.
package avm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Value is a TEAL stack value: either a uint64 or a byte string.
type Value struct {
	IsBytes bool
	Uint    uint64
	Bytes   []byte
}

// Uint64Value wraps a uint.
func Uint64Value(v uint64) Value { return Value{Uint: v} }

// BytesValue wraps a byte string.
func BytesValue(b []byte) Value { return Value{IsBytes: true, Bytes: b} }

// ErrTypeMismatch reports a stack value of the wrong TEAL type.
var ErrTypeMismatch = errors.New("avm: type mismatch")

// AsUint returns the uint64 content or ErrTypeMismatch.
func (v Value) AsUint() (uint64, error) {
	if v.IsBytes {
		return 0, fmt.Errorf("%w: want uint64, have bytes", ErrTypeMismatch)
	}
	return v.Uint, nil
}

// AsBytes returns the byte content or ErrTypeMismatch.
func (v Value) AsBytes() ([]byte, error) {
	if !v.IsBytes {
		return nil, fmt.Errorf("%w: want bytes, have uint64", ErrTypeMismatch)
	}
	return v.Bytes, nil
}

// Truthy follows TEAL semantics: nonzero uint or nonempty bytes.
func (v Value) Truthy() bool {
	if v.IsBytes {
		return len(v.Bytes) > 0
	}
	return v.Uint != 0
}

func (v Value) String() string {
	if v.IsBytes {
		return fmt.Sprintf("bytes(%q)", v.Bytes)
	}
	return fmt.Sprintf("uint(%d)", v.Uint)
}

// Itob converts a uint64 to its 8-byte big-endian representation (the TEAL
// itob opcode).
func Itob(v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return b[:]
}

// Btoi converts big-endian bytes (up to 8) to a uint64 (the TEAL btoi
// opcode). Longer inputs fail as on the real AVM.
func Btoi(b []byte) (uint64, error) {
	if len(b) > 8 {
		return 0, fmt.Errorf("avm: btoi of %d bytes", len(b))
	}
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v, nil
}
