package avm

import (
	"errors"
	"fmt"
	"sync"

	"agnopol/internal/chain"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
	"agnopol/internal/precompile"
)

// DefaultBudget is the opcode-cost budget of a single application call.
const DefaultBudget = 700

// MinBalanceValue is the µAlgo minimum balance every account must keep
// (surfaced by `global MinBalance`).
const MinBalanceValue = 100_000

// OnCompletion values of an application call.
const (
	OnNoOp      uint64 = 0
	OnOptIn     uint64 = 1
	OnCloseOut  uint64 = 2
	OnDeleteApp uint64 = 5
)

// TxContext is the transaction an application call executes under.
type TxContext struct {
	Sender chain.Address
	// AppID is the application whose state the call mutates. During
	// creation the ledger has already allocated it, but the program sees
	// ApplicationID == 0 (set CreateMode), as on the real AVM.
	AppID        uint64
	CreateMode   bool
	Args         [][]byte
	Accounts     []chain.Address
	OnCompletion uint64
	Fee          uint64
	// PayAmount is the µAlgo amount of the payment transaction grouped in
	// front of this application call (0 when the group has no payment).
	// The program reads it with `gtxn 0 Amount`.
	PayAmount uint64
	// BudgetTxns is the number of grouped transactions pooling their
	// budget (≥1); the effective budget is BudgetTxns·DefaultBudget.
	BudgetTxns int
	// Profiler, when non-nil, receives every executed opcode with its
	// budget cost (nil-checked on the hot path).
	Profiler obs.Profiler
}

// Result reports the outcome of an application call.
type Result struct {
	Approved bool
	Cost     uint64
	Logs     []string
	// Return carries the bytes of the last `log` prefixed with "return:",
	// the convention the contract-language ABI uses for API return values.
	Return []byte
	Err    error
}

// Execution errors.
var (
	ErrBudgetExceeded = errors.New("avm: opcode budget exceeded")
	ErrStack          = errors.New("avm: stack error")
	ErrRejected       = errors.New("avm: program rejected")
	ErrBadProgram     = errors.New("avm: bad program")
)

// opCost gives non-unit opcode costs; everything else costs 1. Parse bakes
// these into Instr.Cost so the interpreter loop never consults the map.
// Precompile pseudo-ops (ed25519verify, keccak256, sha256_parts,
// olc_contains) register their fixed costs from the shared registry at init
// so the two stay in lockstep.
var opCost = map[string]uint64{
	"sha256": 35,
}

func init() {
	for _, p := range precompile.All() {
		if p.AVMOp != "" {
			opCost[p.AVMOp] = p.AVMCost
		}
	}
}

// Pre-resolved precompile entries so the dispatch loop never consults the
// registry map.
var (
	preEd25519     = precompile.ByAVMOp("ed25519verify")
	preKeccak256   = precompile.ByAVMOp("keccak256")
	preSha256Parts = precompile.ByAVMOp("sha256_parts")
	preOLCContains = precompile.ByAVMOp("olc_contains")
)

// instrCost is the budget cost of op (≥ 1).
func instrCost(op string) uint64 {
	if c := opCost[op]; c != 0 {
		return c
	}
	return 1
}

// instrCostArgs is instrCost made argument-aware: sha256_parts charges its
// base cost plus one per hashed part, mirroring how the EVM precompile
// charges per referenced range.
func instrCostArgs(op string, args []string) uint64 {
	c := instrCost(op)
	if op == "sha256_parts" && len(args) == 1 {
		if n, err := argUint(args[0]); err == nil {
			c += n
		}
	}
	return c
}

// machine is the pooled per-call interpreter state. The AVM already
// computes on uint64 values, so the analogue of the EVM's u256 rewrite is
// recycling the machine itself: the 256-slot scratch space (~10 KB) and the
// stack/call-stack slices dominate per-Execute allocation. Scratch slots
// are cleared lazily via a dirty list — a call that writes three slots pays
// for three, not 256.
type machine struct {
	prog   *Program
	ledger Ledger
	tx     TxContext

	stack        []Value
	scratch      [256]Value
	scratchDirty []uint16
	callers      []int
	cost         uint64
	budget       uint64
	logs         []string
	ret          []byte

	itxnOpen     bool
	itxnReceiver chain.Address
	itxnAmount   uint64
}

var machinePool = sync.Pool{New: func() any { return new(machine) }}

// reset prepares a pooled machine for one call.
func (m *machine) reset(prog *Program, ledger Ledger, tx TxContext) {
	m.prog = prog
	m.ledger = ledger
	m.tx = tx
	m.stack = m.stack[:0]
	m.callers = m.callers[:0]
	m.cost = 0
	m.budget = uint64(tx.BudgetTxns) * DefaultBudget
	m.logs = nil // escapes into Result, never pooled
	m.ret = nil
	m.itxnOpen = false
	m.itxnReceiver = chain.Address{}
	m.itxnAmount = 0
}

// release drops every reference before the machine returns to the pool:
// dirty scratch slots, any values left on the stack's backing array, and
// the borrowed program/ledger.
func (m *machine) release() {
	m.prog = nil
	m.ledger = nil
	m.tx = TxContext{}
	for _, i := range m.scratchDirty {
		m.scratch[i] = Value{}
	}
	m.scratchDirty = m.scratchDirty[:0]
	full := m.stack[:cap(m.stack)]
	for i := range full {
		full[i] = Value{}
	}
	m.stack = m.stack[:0]
	m.logs = nil
	m.ret = nil
}

// Execute runs a parsed program as an application call. State mutations go
// straight to the ledger; the chain simulator is responsible for snapshot/
// rollback when a call is rejected.
func Execute(prog *Program, ledger Ledger, tx TxContext) Result {
	if tx.BudgetTxns < 1 {
		tx.BudgetTxns = 1
	}
	m := machinePool.Get().(*machine)
	m.reset(prog, ledger, tx)
	approved, err := m.run()
	res := Result{
		Approved: approved && err == nil,
		Cost:     m.cost,
		Logs:     m.logs,
		Return:   m.ret,
		Err:      err,
	}
	m.release()
	machinePool.Put(m)
	return res
}

func (m *machine) push(v Value) { m.stack = append(m.stack, v) }

func (m *machine) pop() (Value, error) {
	if len(m.stack) == 0 {
		return Value{}, fmt.Errorf("%w: pop on empty stack", ErrStack)
	}
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v, nil
}

func (m *machine) pop2() (Value, Value, error) {
	b, err := m.pop()
	if err != nil {
		return Value{}, Value{}, err
	}
	a, err := m.pop()
	if err != nil {
		return Value{}, Value{}, err
	}
	return a, b, nil
}

func (m *machine) popUint() (uint64, error) {
	v, err := m.pop()
	if err != nil {
		return 0, err
	}
	return v.AsUint()
}

func (m *machine) popBytes() ([]byte, error) {
	v, err := m.pop()
	if err != nil {
		return nil, err
	}
	return v.AsBytes()
}

//nolint:gocyclo // the interpreter is a single large dispatch by design.
func (m *machine) run() (bool, error) {
	pc := 0
	for pc < len(m.prog.Instrs) {
		ins := m.prog.Instrs[pc]
		c := ins.Cost
		if c == 0 { // program not built by Parse
			c = instrCostArgs(ins.Op, ins.Args)
		}
		m.cost += c
		if m.tx.Profiler != nil {
			m.tx.Profiler.Op(ins.Op, c)
		}
		if m.cost > m.budget {
			return false, fmt.Errorf("%w: %d > %d at line %d", ErrBudgetExceeded, m.cost, m.budget, ins.Line)
		}

		errAt := func(err error) error {
			return fmt.Errorf("line %d (%s): %w", ins.Line, ins.Op, err)
		}

		switch ins.Op {
		case "int", "pushint":
			v, err := argUint(ins.Args[0])
			if err != nil {
				return false, errAt(err)
			}
			m.push(Uint64Value(v))

		case "byte", "pushbytes":
			m.push(BytesValue([]byte(argString(ins.Args[0]))))

		case "addr":
			// The assembler writes raw 20-byte addresses as hex with 0x.
			s := argString(ins.Args[0])
			m.push(BytesValue([]byte(s)))

		case "txn":
			switch ins.Args[0] {
			case "Sender":
				// Copy out of the machine struct: the pushed value can
				// escape into the ledger (e.g. a stored creator address),
				// and a slice aliasing the pooled machine's tx field would
				// be rewritten by the next call that reuses the machine.
				sender := m.tx.Sender
				m.push(BytesValue(sender[:]))
			case "ApplicationID":
				if m.tx.CreateMode {
					m.push(Uint64Value(0))
				} else {
					m.push(Uint64Value(m.tx.AppID))
				}
			case "NumAppArgs":
				m.push(Uint64Value(uint64(len(m.tx.Args))))
			case "OnCompletion":
				m.push(Uint64Value(m.tx.OnCompletion))
			case "Fee":
				m.push(Uint64Value(m.tx.Fee))
			default:
				return false, errAt(fmt.Errorf("%w: txn field %q", ErrBadProgram, ins.Args[0]))
			}

		case "txna":
			if ins.Args[0] != "ApplicationArgs" {
				return false, errAt(fmt.Errorf("%w: txna field %q", ErrBadProgram, ins.Args[0]))
			}
			i, err := argUint(ins.Args[1])
			if err != nil {
				return false, errAt(err)
			}
			if i >= uint64(len(m.tx.Args)) {
				return false, errAt(fmt.Errorf("%w: ApplicationArgs index %d of %d", ErrBadProgram, i, len(m.tx.Args)))
			}
			m.push(BytesValue(m.tx.Args[i]))

		case "gtxn":
			// Group index 0 is by convention the payment transaction the
			// connector groups in front of a paying API call.
			if argString(ins.Args[0]) != "0" || ins.Args[1] != "Amount" {
				return false, errAt(fmt.Errorf("%w: gtxn %v", ErrBadProgram, ins.Args))
			}
			m.push(Uint64Value(m.tx.PayAmount))

		case "global":
			switch ins.Args[0] {
			case "LatestTimestamp":
				m.push(Uint64Value(m.ledger.LatestTimestamp()))
			case "Round":
				m.push(Uint64Value(m.ledger.Round()))
			case "CurrentApplicationID":
				m.push(Uint64Value(m.tx.AppID))
			case "CurrentApplicationAddress":
				a := m.ledger.AppAddress(m.tx.AppID)
				m.push(BytesValue(a[:]))
			case "ZeroAddress":
				var z chain.Address
				m.push(BytesValue(z[:]))
			case "MinTxnFee":
				m.push(Uint64Value(1000))
			case "MinBalance":
				m.push(Uint64Value(MinBalanceValue))
			default:
				return false, errAt(fmt.Errorf("%w: global field %q", ErrBadProgram, ins.Args[0]))
			}

		case "+", "-", "*", "/", "%", "<", ">", "<=", ">=", "&&", "||":
			a, b, err := m.pop2()
			if err != nil {
				return false, errAt(err)
			}
			x, err := a.AsUint()
			if err != nil {
				return false, errAt(err)
			}
			y, err := b.AsUint()
			if err != nil {
				return false, errAt(err)
			}
			var out uint64
			switch ins.Op {
			case "+":
				out = x + y
				if out < x {
					return false, errAt(fmt.Errorf("%w: + overflow", ErrBadProgram))
				}
			case "-":
				if y > x {
					return false, errAt(fmt.Errorf("%w: - underflow", ErrBadProgram))
				}
				out = x - y
			case "*":
				if x != 0 && (x*y)/x != y {
					return false, errAt(fmt.Errorf("%w: * overflow", ErrBadProgram))
				}
				out = x * y
			case "/":
				if y == 0 {
					return false, errAt(fmt.Errorf("%w: divide by zero", ErrBadProgram))
				}
				out = x / y
			case "%":
				if y == 0 {
					return false, errAt(fmt.Errorf("%w: modulo by zero", ErrBadProgram))
				}
				out = x % y
			case "<":
				out = b2u(x < y)
			case ">":
				out = b2u(x > y)
			case "<=":
				out = b2u(x <= y)
			case ">=":
				out = b2u(x >= y)
			case "&&":
				out = b2u(x != 0 && y != 0)
			case "||":
				out = b2u(x != 0 || y != 0)
			}
			m.push(Uint64Value(out))

		case "==", "!=":
			a, b, err := m.pop2()
			if err != nil {
				return false, errAt(err)
			}
			if a.IsBytes != b.IsBytes {
				return false, errAt(ErrTypeMismatch)
			}
			eq := false
			if a.IsBytes {
				eq = string(a.Bytes) == string(b.Bytes)
			} else {
				eq = a.Uint == b.Uint
			}
			if ins.Op == "!=" {
				eq = !eq
			}
			m.push(Uint64Value(b2u(eq)))

		case "!":
			x, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			m.push(Uint64Value(b2u(x == 0)))

		case "itob":
			x, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			m.push(BytesValue(Itob(x)))

		case "btoi":
			b, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			v, err := Btoi(b)
			if err != nil {
				return false, errAt(err)
			}
			m.push(Uint64Value(v))

		case "concat":
			a, b, err := m.pop2()
			if err != nil {
				return false, errAt(err)
			}
			x, err := a.AsBytes()
			if err != nil {
				return false, errAt(err)
			}
			y, err := b.AsBytes()
			if err != nil {
				return false, errAt(err)
			}
			m.push(BytesValue(append(append([]byte(nil), x...), y...)))

		case "len":
			b, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			m.push(Uint64Value(uint64(len(b))))

		case "sha256":
			b, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			h := polcrypto.Hash1(b)
			m.push(BytesValue(h[:]))

		case "sha256_parts":
			// Precompile pseudo-op: sha256 over the concatenation of the
			// top N stack values without materializing the concatenation.
			n, err := argUint(ins.Args[0])
			if err != nil || n < 1 || n > 16 {
				return false, errAt(fmt.Errorf("%w: sha256_parts count", ErrBadProgram))
			}
			parts := make([][]byte, n)
			for i := int(n) - 1; i >= 0; i-- {
				if parts[i], err = m.popBytes(); err != nil {
					return false, errAt(err)
				}
			}
			h, _ := preSha256Parts.Native(c, parts...)
			m.push(BytesValue(h[:]))

		case "keccak256":
			// Precompile pseudo-op; the system hash is SHA-256 throughout
			// (DESIGN.md §14), so this is sha256 at keccak's op cost.
			b, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			h, _ := preKeccak256.Native(c, b)
			m.push(BytesValue(h[:]))

		case "ed25519verify":
			// Precompile pseudo-op: pops pubkey, signature, data (TEAL
			// argument order data/sig/pubkey) and pushes the verdict. Routed
			// through the shared LRU signature cache.
			pub, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			sig, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			data, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			w, ok := preEd25519.Native(c, pub, data, sig)
			if !ok {
				return false, errAt(fmt.Errorf("%w: ed25519verify", ErrBadProgram))
			}
			m.push(Uint64Value(uint64(w[31])))

		case "olc_contains":
			// Precompile pseudo-op: pops code, cell and pushes whether the
			// open-location code lies in the (stripped-prefix) area cell.
			code, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			cell, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			w, ok := preOLCContains.Native(c, cell, code)
			if !ok {
				return false, errAt(fmt.Errorf("%w: olc_contains", ErrBadProgram))
			}
			m.push(Uint64Value(uint64(w[31])))

		case "substring3":
			// substring3: A (bytes), B (start), C (end) -> A[B:C].
			end, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			start, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			s, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			if start > end || end > uint64(len(s)) {
				return false, errAt(fmt.Errorf("%w: substring3 range [%d:%d] of %d bytes", ErrBadProgram, start, end, len(s)))
			}
			m.push(BytesValue(append([]byte(nil), s[start:end]...)))

		case "dup":
			v, err := m.pop()
			if err != nil {
				return false, errAt(err)
			}
			m.push(v)
			m.push(v)

		case "pop":
			if _, err := m.pop(); err != nil {
				return false, errAt(err)
			}

		case "swap":
			a, b, err := m.pop2()
			if err != nil {
				return false, errAt(err)
			}
			m.push(b)
			m.push(a)

		case "select":
			// select: A B C -> (C != 0 ? B : A)
			c, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			a, b, err := m.pop2()
			if err != nil {
				return false, errAt(err)
			}
			if c != 0 {
				m.push(b)
			} else {
				m.push(a)
			}

		case "store":
			i, err := argUint(ins.Args[0])
			if err != nil || i >= 256 {
				return false, errAt(fmt.Errorf("%w: scratch slot", ErrBadProgram))
			}
			v, err := m.pop()
			if err != nil {
				return false, errAt(err)
			}
			m.scratch[i] = v
			m.scratchDirty = append(m.scratchDirty, uint16(i))

		case "load":
			i, err := argUint(ins.Args[0])
			if err != nil || i >= 256 {
				return false, errAt(fmt.Errorf("%w: scratch slot", ErrBadProgram))
			}
			m.push(m.scratch[i])

		case "b", "bnz", "bz":
			target, ok := m.prog.Labels[ins.Args[0]]
			if !ok {
				return false, errAt(fmt.Errorf("%w: undefined label %q", ErrBadProgram, ins.Args[0]))
			}
			take := true
			if ins.Op != "b" {
				x, err := m.popUint()
				if err != nil {
					return false, errAt(err)
				}
				take = (ins.Op == "bnz") == (x != 0)
			}
			if take {
				pc = target
				continue
			}

		case "callsub":
			target, ok := m.prog.Labels[ins.Args[0]]
			if !ok {
				return false, errAt(fmt.Errorf("%w: undefined label %q", ErrBadProgram, ins.Args[0]))
			}
			m.callers = append(m.callers, pc+1)
			pc = target
			continue

		case "retsub":
			if len(m.callers) == 0 {
				return false, errAt(fmt.Errorf("%w: retsub without callsub", ErrBadProgram))
			}
			pc = m.callers[len(m.callers)-1]
			m.callers = m.callers[:len(m.callers)-1]
			continue

		case "assert":
			x, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			if x == 0 {
				return false, errAt(fmt.Errorf("%w: assert failed", ErrRejected))
			}

		case "err":
			return false, errAt(ErrRejected)

		case "return":
			x, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			return x != 0, nil

		case "log":
			b, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			m.logs = append(m.logs, string(b))
			const retPrefix = "return:"
			if len(b) >= len(retPrefix) && string(b[:len(retPrefix)]) == retPrefix {
				m.ret = append([]byte(nil), b[len(retPrefix):]...)
			}

		case "app_global_get":
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			v, ok := m.ledger.GlobalGet(m.tx.AppID, string(key))
			if !ok {
				v = Uint64Value(0)
			}
			m.push(v)

		case "app_global_get_ex":
			// Pops key then app id (0 = current app); pushes value and a
			// did-exist flag, as on the real AVM.
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			app, err := m.popUint()
			if err != nil {
				return false, errAt(err)
			}
			if app == 0 {
				app = m.tx.AppID
			}
			v, ok := m.ledger.GlobalGet(app, string(key))
			if !ok {
				v = Uint64Value(0)
			}
			m.push(v)
			m.push(Uint64Value(b2u(ok)))

		case "app_global_put":
			v, err := m.pop()
			if err != nil {
				return false, errAt(err)
			}
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			m.ledger.GlobalPut(m.tx.AppID, string(key), v)

		case "app_global_del":
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			m.ledger.GlobalDel(m.tx.AppID, string(key))

		case "app_local_get":
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			acct, err := m.popAccount()
			if err != nil {
				return false, errAt(err)
			}
			v, ok := m.ledger.LocalGet(m.tx.AppID, acct, string(key))
			if !ok {
				v = Uint64Value(0)
			}
			m.push(v)

		case "app_local_put":
			v, err := m.pop()
			if err != nil {
				return false, errAt(err)
			}
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			acct, err := m.popAccount()
			if err != nil {
				return false, errAt(err)
			}
			m.ledger.LocalPut(m.tx.AppID, acct, string(key), v)

		case "app_local_del":
			key, err := m.popBytes()
			if err != nil {
				return false, errAt(err)
			}
			acct, err := m.popAccount()
			if err != nil {
				return false, errAt(err)
			}
			m.ledger.LocalDel(m.tx.AppID, acct, string(key))

		case "balance":
			acct, err := m.popAccount()
			if err != nil {
				return false, errAt(err)
			}
			m.push(Uint64Value(m.ledger.Balance(acct)))

		case "itxn_begin":
			if m.itxnOpen {
				return false, errAt(fmt.Errorf("%w: nested itxn_begin", ErrBadProgram))
			}
			m.itxnOpen = true
			m.itxnReceiver = chain.Address{}
			m.itxnAmount = 0

		case "itxn_field":
			if !m.itxnOpen {
				return false, errAt(fmt.Errorf("%w: itxn_field outside group", ErrBadProgram))
			}
			switch ins.Args[0] {
			case "Receiver":
				b, err := m.popBytes()
				if err != nil {
					return false, errAt(err)
				}
				m.itxnReceiver = chain.AddressFromBytes(b)
			case "Amount":
				v, err := m.popUint()
				if err != nil {
					return false, errAt(err)
				}
				m.itxnAmount = v
			case "TypeEnum":
				if _, err := m.pop(); err != nil { // only "pay" supported
					return false, errAt(err)
				}
			default:
				return false, errAt(fmt.Errorf("%w: itxn field %q", ErrBadProgram, ins.Args[0]))
			}

		case "itxn_submit":
			if !m.itxnOpen {
				return false, errAt(fmt.Errorf("%w: itxn_submit outside group", ErrBadProgram))
			}
			m.itxnOpen = false
			from := m.ledger.AppAddress(m.tx.AppID)
			if err := m.ledger.Pay(from, m.itxnReceiver, m.itxnAmount); err != nil {
				return false, errAt(err)
			}

		default:
			return false, errAt(fmt.Errorf("%w: unknown opcode %q", ErrBadProgram, ins.Op))
		}
		pc++
	}
	// Falling off the end without `return` rejects, as on the real AVM
	// (which requires a final stack value; our compiler always emits an
	// explicit return).
	return false, fmt.Errorf("%w: program ended without return", ErrBadProgram)
}

// popAccount pops an account reference: bytes are a raw address.
func (m *machine) popAccount() (chain.Address, error) {
	v, err := m.pop()
	if err != nil {
		return chain.Address{}, err
	}
	if v.IsBytes {
		return chain.AddressFromBytes(v.Bytes), nil
	}
	// Numeric account references index the Accounts array; 0 is the sender.
	if v.Uint == 0 {
		return m.tx.Sender, nil
	}
	i := v.Uint - 1
	if i >= uint64(len(m.tx.Accounts)) {
		return chain.Address{}, fmt.Errorf("%w: account index %d", ErrBadProgram, v.Uint)
	}
	return m.tx.Accounts[i], nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
