package avm

import (
	"testing"

	"agnopol/internal/chain"
)

// TestPooledScratchIsolation: a program that stores into scratch must not
// leak the value into a later call that only loads — the dirty-list clear
// in release() is what keeps pooled machines indistinguishable from fresh
// ones.
func TestPooledScratchIsolation(t *testing.T) {
	writer, err := Parse(`
int 77
store 9
int 1
return
`)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := Parse(`
load 9
itob
log
int 1
return
`)
	if err != nil {
		t.Fatal(err)
	}
	led := NewMemLedger()
	for i := 0; i < 20; i++ {
		if res := Execute(writer, led, TxContext{AppID: 1}); res.Err != nil {
			t.Fatal(res.Err)
		}
		res := Execute(reader, led, TxContext{AppID: 1})
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if v, err := Btoi([]byte(res.Logs[0])); err != nil || v != 0 {
			t.Fatalf("round %d: scratch leaked across pooled calls: got %d", i, v)
		}
	}
}

// TestPooledSenderEscapesToLedger: a contract that stores its creator's
// address in a global must still see the original creator after other
// senders run on the recycled machine. Guards against pushing slices that
// alias the pooled machine's tx field — the ledger would then track
// whoever called last instead of the creator.
func TestPooledSenderEscapesToLedger(t *testing.T) {
	writer, err := Parse(`
byte "creator"
txn Sender
app_global_put
int 1
return
`)
	if err != nil {
		t.Fatal(err)
	}
	checker, err := Parse(`
byte "creator"
app_global_get
txn Sender
==
return
`)
	if err != nil {
		t.Fatal(err)
	}
	led := NewMemLedger()
	creator := chain.AddressFromBytes([]byte("the-creator-address!"))
	stranger := chain.AddressFromBytes([]byte("a-total-stranger----"))
	if res := Execute(writer, led, TxContext{AppID: 1, Sender: creator}); res.Err != nil {
		t.Fatal(res.Err)
	}
	// The stranger's call reuses the pooled machine; the stored global must
	// not follow it.
	if res := Execute(checker, led, TxContext{AppID: 1, Sender: stranger}); res.Err != nil || res.Approved {
		t.Fatalf("stored creator aliased the pooled machine: approved=%v err=%v", res.Approved, res.Err)
	}
	if res := Execute(checker, led, TxContext{AppID: 1, Sender: creator}); res.Err != nil || !res.Approved {
		t.Fatalf("creator no longer matches its own stored address: approved=%v err=%v", res.Approved, res.Err)
	}
}

// TestPooledMachineConcurrent exercises the machine pool under -race.
func TestPooledMachineConcurrent(t *testing.T) {
	prog, err := Parse(`
int 6
int 7
*
store 3
load 3
itob
log
int 1
return
`)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			led := NewMemLedger()
			for i := 0; i < 200; i++ {
				res := Execute(prog, led, TxContext{AppID: 1, Sender: chain.Address{byte(i)}})
				if res.Err != nil {
					done <- res.Err
					return
				}
				if v, err := Btoi([]byte(res.Logs[0])); err != nil || v != 42 {
					done <- res.Err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestInstrCostPrecomputed(t *testing.T) {
	prog, err := Parse(`
byte "x"
sha256
pop
int 1
return
`)
	if err != nil {
		t.Fatal(err)
	}
	var sha Instr
	for _, ins := range prog.Instrs {
		if ins.Op == "sha256" {
			sha = ins
		}
		if ins.Cost == 0 {
			t.Fatalf("instruction %q has no precomputed cost", ins.Op)
		}
	}
	if sha.Cost != 35 {
		t.Fatalf("sha256 cost = %d, want 35", sha.Cost)
	}
	// And the executed cost matches: byte(1) + sha256(35) + pop(1) + int(1) + return(1).
	res := Execute(prog, NewMemLedger(), TxContext{AppID: 1})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Cost != 39 {
		t.Fatalf("cost = %d, want 39", res.Cost)
	}
}

func BenchmarkExecuteLoop(b *testing.B) {
	prog, err := Parse(`
int 50
store 0
loop:
load 0
int 1
-
store 0
load 0
bnz loop
int 1
return
`)
	if err != nil {
		b.Fatal(err)
	}
	led := NewMemLedger()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := Execute(prog, led, TxContext{AppID: 1}); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}
