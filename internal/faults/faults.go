// Package faults is the deterministic fault-injection engine: a seed-driven
// source of "should this operation fail here?" decisions that the chain
// simulators, the IPFS swarm, the hypercube DHT and the PoL actors consult
// at well-known sites. Every decision is a pure function of (seed, site,
// sequence) — the same splitmix64 finalizer the experiment matrix derives
// its per-run seeds from — so a faulted run is bit-for-bit reproducible at
// any parallelism: per-site sequence counters advance with the run's own
// (single-threaded) operation order, never with worker scheduling.
//
// The package also owns the resilience side: RetryPolicy is the capped
// exponential backoff (on simulated clocks) the connector layer and the
// prover/witness/verifier actors apply when an injected fault surfaces as
// a transient error. Injections and recoveries are counted per class, both
// locally and — when an obs registry is attached — as
// faults_injected_total / faults_recovered_total series.
package faults

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

// Fault classes — the named failure modes a Plan can enable. Classes that
// surface as errors (transient, retryable) are tx_drop, witness_unavailable,
// ipfs_fetch and ipfs_unpin; tx_delay, congestion and cube_node_down degrade
// latency or routing without erroring, and recover implicitly.
const (
	// ClassTxDrop drops a submitted transaction (or group) at the mempool:
	// the node accepts the RPC but the transaction never propagates.
	ClassTxDrop = "tx_drop"
	// ClassTxDelay delays a submitted transaction's propagation by up to a
	// few block intervals before it becomes includable.
	ClassTxDelay = "tx_delay"
	// ClassCongestion starts a background-demand storm on the EVM chains:
	// blocks fill, the base fee climbs, user transactions get priced out.
	ClassCongestion = "congestion"
	// ClassWitnessDown makes a witness not answer the Bluetooth exchange
	// (churn/no-response during discovery and signing).
	ClassWitnessDown = "witness_unavailable"
	// ClassIPFSFetch fails a content fetch: no reachable provider answers
	// this request.
	ClassIPFSFetch = "ipfs_fetch"
	// ClassIPFSUnpin fails a pin operation, leaving content at risk of
	// garbage collection until re-pinned.
	ClassIPFSUnpin = "ipfs_unpin"
	// ClassCubeNodeDown fails a hypercube node on a routing path, forcing
	// greedy routing to detour around it.
	ClassCubeNodeDown = "cube_node_down"
)

// Classes lists every fault class in report order.
func Classes() []string {
	return []string{
		ClassTxDrop, ClassTxDelay, ClassCongestion, ClassWitnessDown,
		ClassIPFSFetch, ClassIPFSUnpin, ClassCubeNodeDown,
	}
}

// Plan selects which fault classes are active and how often they fire.
// The zero rate disables a class; a Plan with every rate zero is inert —
// an Injector built from it draws nothing and perturbs nothing, so runs
// are bit-identical to the no-faults path.
type Plan struct {
	// Rates maps class name to per-decision probability in [0,1].
	Rates map[string]float64
	// Burst, when positive, caps how many faults each (class, site) stream
	// may inject — the deterministic way tests and bounded storms say
	// "fail twice, then behave".
	Burst int
}

// Uniform returns a plan with every class at the same rate.
func Uniform(rate float64) *Plan {
	p := &Plan{Rates: make(map[string]float64)}
	for _, c := range Classes() {
		p.Rates[c] = rate
	}
	return p
}

// Profiles are the named class subsets polbench exposes.
var profiles = map[string][]string{
	"default": Classes(),
	"chain":   {ClassTxDrop, ClassTxDelay, ClassCongestion},
	"witness": {ClassWitnessDown},
	"ipfs":    {ClassIPFSFetch, ClassIPFSUnpin},
	"cube":    {ClassCubeNodeDown},
}

// ProfileNames lists the known profiles, sorted.
func ProfileNames() []string {
	out := make([]string, 0, len(profiles))
	for name := range profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Profile builds the plan for a named class subset at the given rate.
func Profile(name string, rate float64) (*Plan, error) {
	classes, ok := profiles[name]
	if !ok {
		return nil, fmt.Errorf("faults: unknown profile %q (known: %v)", name, ProfileNames())
	}
	if rate < 0 || rate > 1 {
		return nil, fmt.Errorf("faults: rate %v outside [0,1]", rate)
	}
	p := &Plan{Rates: make(map[string]float64)}
	for _, c := range classes {
		p.Rates[c] = rate
	}
	return p, nil
}

// Fault is the error an injected, retryable failure surfaces as. Layers
// detect it with errors.As (via ClassOf) to distinguish transient injected
// faults from genuine protocol failures.
type Fault struct {
	Class string
	Site  string
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("injected fault: %s at %s", f.Class, f.Site)
}

// ClassOf extracts the fault class from an error chain; ok is false when
// the error is not (wrapping) an injected fault.
func ClassOf(err error) (string, bool) {
	for e := err; e != nil; {
		if f, ok := e.(*Fault); ok {
			return f.Class, true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return "", false
		}
		e = u.Unwrap()
	}
	return "", false
}

// Transient reports whether an error is an injected fault a retry can
// overcome.
func Transient(err error) bool {
	_, ok := ClassOf(err)
	return ok
}

// Injector draws fault decisions for one run. A nil *Injector is inert:
// every method is a no-op and every Hit/Try answers "no fault", so
// uninstrumented code pays a single nil check.
type Injector struct {
	plan *Plan
	seed uint64

	mu        sync.Mutex
	seq       map[string]uint64 // (class,site) -> next sequence number
	burst     map[string]int    // (class,site) -> faults already injected
	injected  map[string]uint64 // class -> injected count
	recovered map[string]uint64 // class -> recovered count

	// Registry counters, nil when no registry is attached.
	injCtr map[string]*obs.Counter
	recCtr map[string]*obs.Counter
}

// NewInjector builds the injector for one run from the shared plan and the
// run's derived seed. A nil plan returns a nil (inert) injector; a zero-rate
// plan returns a live injector that never fires, so the zero-rate path is
// exercised but bit-identical to no faults. When reg is non-nil the
// per-class faults_injected_total / faults_recovered_total counters are
// registered up front so the exposition shows zeros for quiet classes.
func NewInjector(plan *Plan, seed uint64, reg *obs.Registry) *Injector {
	if plan == nil {
		return nil
	}
	inj := &Injector{
		plan:      plan,
		seed:      seed,
		seq:       make(map[string]uint64),
		burst:     make(map[string]int),
		injected:  make(map[string]uint64),
		recovered: make(map[string]uint64),
	}
	if reg != nil {
		inj.injCtr = make(map[string]*obs.Counter)
		inj.recCtr = make(map[string]*obs.Counter)
		for _, c := range Classes() {
			inj.injCtr[c] = reg.Counter("faults_injected_total", obs.L("class", c))
			inj.recCtr[c] = reg.Counter("faults_recovered_total", obs.L("class", c))
		}
		reg.Help("faults_injected_total", "Faults injected by the deterministic fault engine, per class.")
		reg.Help("faults_recovered_total", "Injected faults the resilience layer recovered from, per class.")
	}
	return inj
}

// mix is the splitmix64 finalizer, the same mixer the matrix seed
// derivation uses.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// siteKey hashes (class, site) into the stream's base offset.
func siteKey(class, site string) uint64 {
	h := polcrypto.Hash([]byte(class), []byte{0}, []byte(site))
	return binary.BigEndian.Uint64(h[:8])
}

// draw returns two uniforms in [0,1) for the stream's next sequence number
// — a pure function of (seed, site, sequence).
func (inj *Injector) draw(key string, base uint64) (float64, float64) {
	inj.mu.Lock()
	seq := inj.seq[key]
	inj.seq[key] = seq + 1
	inj.mu.Unlock()
	u1 := mix(inj.seed ^ base ^ mix(2*seq+1)*0x9E3779B97F4A7C15)
	u2 := mix(inj.seed ^ base ^ mix(2*seq+2)*0x9E3779B97F4A7C15)
	return float64(u1>>11) / float64(uint64(1)<<53), float64(u2>>11) / float64(uint64(1)<<53)
}

// hit decides the stream's next draw and returns the secondary uniform for
// magnitude shaping.
func (inj *Injector) hit(class, site string) (bool, float64) {
	if inj == nil {
		return false, 0
	}
	rate := inj.plan.Rates[class]
	if rate <= 0 {
		return false, 0
	}
	key := class + "\x00" + site
	u1, u2 := inj.draw(key, siteKey(class, site))
	if u1 >= rate {
		return false, 0
	}
	inj.mu.Lock()
	if inj.plan.Burst > 0 && inj.burst[key] >= inj.plan.Burst {
		inj.mu.Unlock()
		return false, 0
	}
	inj.burst[key]++
	inj.injected[class]++
	inj.mu.Unlock()
	inj.injCtr[class].Inc()
	return true, u2
}

// Hit reports whether the class's next decision at this site injects a
// fault, counting the injection when it does.
func (inj *Injector) Hit(class, site string) bool {
	h, _ := inj.hit(class, site)
	return h
}

// Draw is Hit plus a deterministic magnitude uniform in [0,1) for shaping
// the fault (delay length, storm duration).
func (inj *Injector) Draw(class, site string) (bool, float64) {
	return inj.hit(class, site)
}

// Try returns the injected *Fault for the class's next decision at this
// site, or nil when no fault fires — the one-liner for error-surfacing
// sites.
func (inj *Injector) Try(class, site string) error {
	if h, _ := inj.hit(class, site); h {
		return &Fault{Class: class, Site: site}
	}
	return nil
}

// Recover counts one recovered fault of a class (a retry, reroute or
// re-pin that overcame an injection).
func (inj *Injector) Recover(class string) {
	if inj == nil {
		return
	}
	inj.mu.Lock()
	inj.recovered[class]++
	inj.mu.Unlock()
	inj.recCtr[class].Inc()
}

// RecoverN counts n recovered faults of a class.
func (inj *Injector) RecoverN(class string, n int) {
	for i := 0; i < n; i++ {
		inj.Recover(class)
	}
}

// ClassStats is one class's injection/recovery tally.
type ClassStats struct {
	Class     string
	Injected  uint64
	Recovered uint64
}

// Snapshot returns per-class tallies in Classes() order (quiet classes
// included with zeros). A nil injector returns nil.
func (inj *Injector) Snapshot() []ClassStats {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	out := make([]ClassStats, 0, len(Classes()))
	for _, c := range Classes() {
		out = append(out, ClassStats{Class: c, Injected: inj.injected[c], Recovered: inj.recovered[c]})
	}
	return out
}

// RetryPolicy is the capped-exponential-backoff resilience policy applied
// on simulated clocks: attempt n sleeps BaseBackoff<<(n-1), capped at
// MaxBackoff, and the whole operation gives up once Deadline of simulated
// time has elapsed. The zero value means "no retries" — exactly one
// attempt, no deadline — which keeps un-faulted runs on the historical
// code path.
type RetryPolicy struct {
	// MaxAttempts bounds total attempts (first try included); values
	// below 1 mean a single attempt.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Deadline bounds the operation's total simulated time across
	// attempts; 0 means unbounded.
	Deadline time.Duration
}

// DefaultRetry is the policy the simulator wires when a fault plan is
// active: durations are simulated time, so generous budgets cost no wall
// clock.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 8,
	BaseBackoff: 2 * time.Second,
	MaxBackoff:  30 * time.Second,
	Deadline:    15 * time.Minute,
}

// IsZero reports whether the policy is the zero value (single attempt).
func (p RetryPolicy) IsZero() bool { return p == RetryPolicy{} }

// Attempts is MaxAttempts clamped to at least one.
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Backoff returns the capped exponential delay before retry n (1-based:
// Backoff(1) follows the first failed attempt).
func (p RetryPolicy) Backoff(n int) time.Duration {
	if p.BaseBackoff <= 0 {
		return 0
	}
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if p.MaxBackoff > 0 && d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if p.MaxBackoff > 0 && d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}
