package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"agnopol/internal/obs"
)

// TestStreamDeterminism: two injectors with the same (plan, seed) must
// agree decision-for-decision regardless of when they were built, and the
// interleaving of *other* sites' draws must not shift a site's stream —
// that's the property that makes runs bit-identical at any parallelism.
func TestStreamDeterminism(t *testing.T) {
	plan := Uniform(0.5)
	a := NewInjector(plan, 42, nil)
	b := NewInjector(plan, 42, nil)

	var seqA []bool
	for i := 0; i < 200; i++ {
		seqA = append(seqA, a.Hit(ClassTxDrop, "eth.mempool"))
	}
	// b interleaves draws on unrelated sites between every tx_drop draw.
	var seqB []bool
	for i := 0; i < 200; i++ {
		b.Hit(ClassIPFSFetch, "ipfs.get")
		b.Hit(ClassWitnessDown, "core.witness")
		seqB = append(seqB, b.Hit(ClassTxDrop, "eth.mempool"))
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d diverged under interleaving: %v vs %v", i, seqA[i], seqB[i])
		}
	}

	// Different seeds must decorrelate.
	c := NewInjector(plan, 43, nil)
	same := 0
	for i := 0; i < 200; i++ {
		if c.Hit(ClassTxDrop, "eth.mempool") == seqA[i] {
			same++
		}
	}
	if same == 200 {
		t.Fatal("seed 43 reproduced seed 42's stream exactly")
	}
}

// TestRates: rate 0 never fires (and counts nothing), rate 1 always
// fires, intermediate rates land near their expectation.
func TestRates(t *testing.T) {
	zero := NewInjector(Uniform(0), 7, nil)
	one := NewInjector(Uniform(1), 7, nil)
	half := NewInjector(Uniform(0.5), 7, nil)
	zeroHits, oneHits, halfHits := 0, 0, 0
	for i := 0; i < 1000; i++ {
		if zero.Hit(ClassTxDrop, "s") {
			zeroHits++
		}
		if one.Hit(ClassTxDrop, "s") {
			oneHits++
		}
		if half.Hit(ClassTxDrop, "s") {
			halfHits++
		}
	}
	if zeroHits != 0 {
		t.Errorf("rate 0 fired %d times", zeroHits)
	}
	if oneHits != 1000 {
		t.Errorf("rate 1 fired %d/1000 times", oneHits)
	}
	if halfHits < 400 || halfHits > 600 {
		t.Errorf("rate 0.5 fired %d/1000 times, implausibly far from 500", halfHits)
	}
	if got := zero.Snapshot()[0].Injected; got != 0 {
		t.Errorf("zero-rate injector counted %d injections", got)
	}
}

// TestBurstCap: Burst bounds each (class, site) stream independently.
func TestBurstCap(t *testing.T) {
	plan := Uniform(1)
	plan.Burst = 2
	inj := NewInjector(plan, 9, nil)
	hits := 0
	for i := 0; i < 10; i++ {
		if inj.Hit(ClassTxDrop, "siteA") {
			hits++
		}
	}
	if hits != 2 {
		t.Fatalf("siteA injected %d faults, want burst cap 2", hits)
	}
	// An unrelated site has its own budget.
	if !inj.Hit(ClassTxDrop, "siteB") {
		t.Fatal("siteB stream exhausted by siteA's burst budget")
	}
}

// TestNilInjector: every method on a nil injector is an inert no-op.
func TestNilInjector(t *testing.T) {
	var inj *Injector
	if inj.Hit(ClassTxDrop, "s") {
		t.Fatal("nil injector fired")
	}
	if err := inj.Try(ClassTxDrop, "s"); err != nil {
		t.Fatal("nil injector returned a fault")
	}
	inj.Recover(ClassTxDrop) // must not panic
	if inj.Snapshot() != nil {
		t.Fatal("nil injector returned a snapshot")
	}
	if NewInjector(nil, 1, nil) != nil {
		t.Fatal("nil plan did not produce a nil injector")
	}
}

// TestFaultError: ClassOf sees through wrapping; ordinary errors are not
// transient.
func TestFaultError(t *testing.T) {
	f := &Fault{Class: ClassIPFSFetch, Site: "ipfs.get"}
	wrapped := fmt.Errorf("fetch report: %w", f)
	if cls, ok := ClassOf(wrapped); !ok || cls != ClassIPFSFetch {
		t.Fatalf("ClassOf(wrapped) = %q, %v", cls, ok)
	}
	if !Transient(wrapped) {
		t.Fatal("wrapped fault not transient")
	}
	if Transient(errors.New("genuine failure")) {
		t.Fatal("plain error reported transient")
	}
	if _, ok := ClassOf(nil); ok {
		t.Fatal("nil error produced a class")
	}
}

// TestRegistryCounters: injections and recoveries land in the obs
// registry per class, with quiet classes pre-registered at zero.
func TestRegistryCounters(t *testing.T) {
	o := obs.New()
	plan := Uniform(1)
	plan.Burst = 3
	inj := NewInjector(plan, 5, o.Registry)
	for i := 0; i < 5; i++ {
		inj.Hit(ClassTxDrop, "s")
	}
	inj.Recover(ClassTxDrop)
	inj.Recover(ClassTxDrop)
	if got := o.Registry.Counter("faults_injected_total", obs.L("class", ClassTxDrop)).Value(); got != 3 {
		t.Errorf("faults_injected_total{tx_drop} = %d, want 3", got)
	}
	if got := o.Registry.Counter("faults_recovered_total", obs.L("class", ClassTxDrop)).Value(); got != 2 {
		t.Errorf("faults_recovered_total{tx_drop} = %d, want 2", got)
	}
	// Quiet class present at zero (pre-registered).
	if got := o.Registry.Counter("faults_injected_total", obs.L("class", ClassCubeNodeDown)).Value(); got != 0 {
		t.Errorf("quiet class counted %d", got)
	}
	snap := inj.Snapshot()
	if len(snap) != len(Classes()) {
		t.Fatalf("snapshot has %d classes, want %d", len(snap), len(Classes()))
	}
	for _, s := range snap {
		if s.Class == ClassTxDrop && (s.Injected != 3 || s.Recovered != 2) {
			t.Errorf("snapshot tx_drop = %+v, want 3/2", s)
		}
	}
}

// TestProfiles: known names resolve to their class subsets; unknown names
// and out-of-range rates error.
func TestProfiles(t *testing.T) {
	p, err := Profile("ipfs", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rates) != 2 || p.Rates[ClassIPFSFetch] != 0.3 || p.Rates[ClassIPFSUnpin] != 0.3 {
		t.Fatalf("ipfs profile = %+v", p.Rates)
	}
	if p.Rates[ClassTxDrop] != 0 {
		t.Fatal("ipfs profile enabled tx_drop")
	}
	if def, err := Profile("default", 0.1); err != nil || len(def.Rates) != len(Classes()) {
		t.Fatalf("default profile = %+v, %v", def, err)
	}
	if _, err := Profile("bogus", 0.1); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := Profile("default", 1.5); err == nil {
		t.Fatal("rate 1.5 accepted")
	}
	if _, err := Profile("default", -0.1); err == nil {
		t.Fatal("rate -0.1 accepted")
	}
}

// TestBackoff: capped exponential growth on the retry policy.
func TestBackoff(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, BaseBackoff: 2 * time.Second, MaxBackoff: 30 * time.Second}
	want := []time.Duration{
		2 * time.Second, 4 * time.Second, 8 * time.Second, 16 * time.Second,
		30 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	var zero RetryPolicy
	if !zero.IsZero() || zero.Attempts() != 1 || zero.Backoff(3) != 0 {
		t.Errorf("zero policy: IsZero=%v Attempts=%d Backoff=%v", zero.IsZero(), zero.Attempts(), zero.Backoff(3))
	}
	uncapped := RetryPolicy{BaseBackoff: time.Second}
	if got := uncapped.Backoff(5); got != 16*time.Second {
		t.Errorf("uncapped Backoff(5) = %v, want 16s", got)
	}
}
