// Package u256 implements the fixed-width 256-bit word the virtual
// machines compute on. A Word is four little-endian uint64 limbs held by
// value, so the interpreter hot path never touches the heap: every
// arithmetic, comparison and bit operation works in registers and returns
// a new value. math/big is kept strictly at the boundaries — calldata and
// state encoding, chain.Hash32 conversion, account balances — through
// FromBig/ToBig.
//
// Semantics match the EVM's modulo-2^256 unsigned arithmetic, and are
// pinned to the math/big reference by the differential property tests in
// this package and in internal/evm.
package u256

import (
	"math/big"
	"math/bits"
)

// Word is an unsigned 256-bit integer: little-endian limbs, held by value.
type Word [4]uint64

// Zero and One are handy constants (by value; callers cannot mutate them).
var (
	Zero = Word{}
	One  = Word{1, 0, 0, 0}
)

// FromUint64 builds a Word from a uint64.
func FromUint64(v uint64) Word { return Word{v, 0, 0, 0} }

// FromBool is 1 for true, 0 for false — the EVM's boolean word.
func FromBool(b bool) Word {
	if b {
		return One
	}
	return Zero
}

// SetBytes interprets b as a big-endian unsigned integer reduced modulo
// 2^256 (inputs longer than 32 bytes keep their low 32 bytes, exactly like
// big.Int.SetBytes followed by Mod 2^256).
func SetBytes(b []byte) Word {
	if len(b) > 32 {
		b = b[len(b)-32:]
	}
	var z Word
	for i := 0; i < len(b); i++ {
		// b[len(b)-1] is the least significant byte.
		pos := len(b) - 1 - i
		z[i/8] |= uint64(b[pos]) << (8 * (i % 8))
	}
	return z
}

// Bytes32 renders the word as a 32-byte big-endian array.
func (x Word) Bytes32() [32]byte {
	var out [32]byte
	x.PutBytes32(out[:])
	return out
}

// PutBytes32 writes the 32-byte big-endian form into dst (len(dst) ≥ 32).
func (x Word) PutBytes32(dst []byte) {
	for i := 0; i < 4; i++ {
		limb := x[3-i]
		dst[i*8+0] = byte(limb >> 56)
		dst[i*8+1] = byte(limb >> 48)
		dst[i*8+2] = byte(limb >> 40)
		dst[i*8+3] = byte(limb >> 32)
		dst[i*8+4] = byte(limb >> 24)
		dst[i*8+5] = byte(limb >> 16)
		dst[i*8+6] = byte(limb >> 8)
		dst[i*8+7] = byte(limb)
	}
}

// FromBig reduces v modulo 2^256 (big.Int.Mod semantics: the result of a
// negative input is the non-negative representative). It is a boundary
// conversion — the fast path never calls it per opcode.
func FromBig(v *big.Int) Word {
	if v == nil {
		return Word{}
	}
	if v.Sign() >= 0 && v.BitLen() <= 256 {
		var buf [32]byte
		v.FillBytes(buf[:])
		return SetBytes(buf[:])
	}
	// Out-of-range or negative input: big.Int.Mod(v, 2^256) gives the
	// non-negative representative.
	m := new(big.Int).Mod(v, twoPow256)
	var buf [32]byte
	m.FillBytes(buf[:])
	return SetBytes(buf[:])
}

var twoPow256 = new(big.Int).Lsh(big.NewInt(1), 256)

// ToBig allocates the math/big form — boundary use only.
func (x Word) ToBig() *big.Int {
	b := x.Bytes32()
	return new(big.Int).SetBytes(b[:])
}

// Uint64 is the low limb — the EVM's semantics for offsets, jump targets
// and sizes (big.Int.Uint64 likewise truncates to the low 64 bits).
func (x Word) Uint64() uint64 { return x[0] }

// IsUint64 reports whether the value fits in 64 bits.
func (x Word) IsUint64() bool { return x[1]|x[2]|x[3] == 0 }

// IsZero reports x == 0.
func (x Word) IsZero() bool { return x[0]|x[1]|x[2]|x[3] == 0 }

// Eq reports x == y.
func (x Word) Eq(y Word) bool { return x == y }

// Cmp returns -1, 0 or +1.
func (x Word) Cmp(y Word) int {
	for i := 3; i >= 0; i-- {
		if x[i] < y[i] {
			return -1
		}
		if x[i] > y[i] {
			return 1
		}
	}
	return 0
}

// Lt reports x < y.
func (x Word) Lt(y Word) bool {
	_, borrow := sub(x, y)
	return borrow != 0
}

// Gt reports x > y.
func (x Word) Gt(y Word) bool { return y.Lt(x) }

// BitLen is the minimal number of bits to represent x.
func (x Word) BitLen() int {
	for i := 3; i >= 0; i-- {
		if x[i] != 0 {
			return i*64 + bits.Len64(x[i])
		}
	}
	return 0
}

// ByteLen is the minimal number of bytes to represent x — the EXP gas
// formula's exponent length.
func (x Word) ByteLen() int { return (x.BitLen() + 7) / 8 }

// Bit reports bit i (0 = least significant).
func (x Word) Bit(i int) bool {
	if i < 0 || i > 255 {
		return false
	}
	return x[i/64]>>(uint(i)%64)&1 == 1
}

func add(x, y Word) (Word, uint64) {
	var z Word
	var c uint64
	z[0], c = bits.Add64(x[0], y[0], 0)
	z[1], c = bits.Add64(x[1], y[1], c)
	z[2], c = bits.Add64(x[2], y[2], c)
	z[3], c = bits.Add64(x[3], y[3], c)
	return z, c
}

func sub(x, y Word) (Word, uint64) {
	var z Word
	var b uint64
	z[0], b = bits.Sub64(x[0], y[0], 0)
	z[1], b = bits.Sub64(x[1], y[1], b)
	z[2], b = bits.Sub64(x[2], y[2], b)
	z[3], b = bits.Sub64(x[3], y[3], b)
	return z, b
}

// Add is x + y mod 2^256.
func (x Word) Add(y Word) Word { z, _ := add(x, y); return z }

// Sub is x - y mod 2^256.
func (x Word) Sub(y Word) Word { z, _ := sub(x, y); return z }

// Mul is x · y mod 2^256 (schoolbook over 64-bit limbs, truncated).
func (x Word) Mul(y Word) Word {
	var p [8]uint64
	for i := 0; i < 4; i++ {
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(x[i], y[j])
			var c uint64
			lo, c = bits.Add64(lo, carry, 0)
			hi += c // hi ≤ 2^64-2, cannot overflow
			p[i+j], c = bits.Add64(p[i+j], lo, 0)
			carry = hi + c
		}
		p[i+4] += carry
	}
	return Word{p[0], p[1], p[2], p[3]}
}

// DivMod returns (x/y, x%y); both are zero when y is zero, the EVM's DIV
// and MOD convention. Single-limb divisors take the bits.Div64 long
// division; the rare multi-limb case runs binary shift-subtract, whose
// correctness is pinned by the big.Int differential tests.
func (x Word) DivMod(y Word) (q, r Word) {
	if y.IsZero() {
		return Word{}, Word{}
	}
	if x.Lt(y) {
		return Word{}, x
	}
	if y.IsUint64() {
		d := y[0]
		var rem uint64
		for i := 3; i >= 0; i-- {
			q[i], rem = bits.Div64(rem, x[i], d)
		}
		r[0] = rem
		return q, r
	}
	// Binary long division: r accumulates x's bits from the top; whenever
	// the 257-bit value (carry·2^256 + r) reaches y, subtract and set the
	// quotient bit. Wrapping Sub is exact even with the carry set, because
	// r' = carry·2^256 + r < 2y ≤ 2^257 and r' - y < y ≤ 2^256.
	for i := x.BitLen() - 1; i >= 0; i-- {
		carry := r[3] >> 63
		r = r.shl1()
		if x.Bit(i) {
			r[0] |= 1
		}
		if carry == 1 || !r.Lt(y) {
			r = r.Sub(y)
			q[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return q, r
}

// Div is x / y, zero when y is zero.
func (x Word) Div(y Word) Word { q, _ := x.DivMod(y); return q }

// Mod is x % y, zero when y is zero.
func (x Word) Mod(y Word) Word { _, r := x.DivMod(y); return r }

// Exp is x^e mod 2^256 by square-and-multiply (x^0 = 1, including 0^0).
func (x Word) Exp(e Word) Word {
	result := One
	base := x
	n := e.BitLen()
	for i := 0; i < n; i++ {
		if e.Bit(i) {
			result = result.Mul(base)
		}
		base = base.Mul(base)
	}
	return result
}

// And, Or, Xor, Not are the bitwise operations.
func (x Word) And(y Word) Word {
	return Word{x[0] & y[0], x[1] & y[1], x[2] & y[2], x[3] & y[3]}
}

// Or is x | y.
func (x Word) Or(y Word) Word {
	return Word{x[0] | y[0], x[1] | y[1], x[2] | y[2], x[3] | y[3]}
}

// Xor is x ^ y.
func (x Word) Xor(y Word) Word {
	return Word{x[0] ^ y[0], x[1] ^ y[1], x[2] ^ y[2], x[3] ^ y[3]}
}

// Not is ^x (equivalently 2^256 - 1 - x).
func (x Word) Not() Word {
	return Word{^x[0], ^x[1], ^x[2], ^x[3]}
}

func (x Word) shl1() Word {
	return Word{
		x[0] << 1,
		x[1]<<1 | x[0]>>63,
		x[2]<<1 | x[1]>>63,
		x[3]<<1 | x[2]>>63,
	}
}

// Lsh is x << n; n ≥ 256 yields zero.
func (x Word) Lsh(n uint) Word {
	if n >= 256 {
		return Word{}
	}
	limbs, rem := n/64, n%64
	var z Word
	for i := 3; i >= int(limbs); i-- {
		z[i] = x[i-int(limbs)] << rem
		if rem > 0 && i-int(limbs)-1 >= 0 {
			z[i] |= x[i-int(limbs)-1] >> (64 - rem)
		}
	}
	return z
}

// Rsh is x >> n; n ≥ 256 yields zero.
func (x Word) Rsh(n uint) Word {
	if n >= 256 {
		return Word{}
	}
	limbs, rem := n/64, n%64
	var z Word
	for i := 0; i+int(limbs) < 4; i++ {
		z[i] = x[i+int(limbs)] >> rem
		if rem > 0 && i+int(limbs)+1 < 4 {
			z[i] |= x[i+int(limbs)+1] << (64 - rem)
		}
	}
	return z
}

// Byte is the EVM BYTE opcode: byte i of the big-endian form (0 is the
// most significant); i ≥ 32 yields zero.
func (x Word) Byte(i uint64) Word {
	if i >= 32 {
		return Word{}
	}
	// Big-endian byte i lives in limb 3-i/8 at shift 56-8*(i%8).
	limb := x[3-i/8]
	return FromUint64(limb >> (56 - 8*(i%8)) & 0xff)
}

// String renders the word in decimal (debug/boundary use; allocates).
func (x Word) String() string { return x.ToBig().String() }
