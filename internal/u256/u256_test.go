package u256

import (
	"math/big"
	"math/rand"
	"testing"
)

var two256 = new(big.Int).Lsh(big.NewInt(1), 256)

func fromHexOrPanic(t *testing.T, s string) *big.Int {
	t.Helper()
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		t.Fatalf("bad hex %q", s)
	}
	return v
}

// randWord draws structured random operands: uniform bytes, small values,
// and boundary patterns — the mix division and shifting care about.
func randWord(rng *rand.Rand) Word {
	switch rng.Intn(5) {
	case 0:
		return FromUint64(rng.Uint64() % 1024) // small
	case 1:
		return FromUint64(rng.Uint64())
	case 2: // all-ones suffix: 2^k - 1
		return maxWord().Rsh(uint(rng.Intn(256)))
	case 3: // single bit
		return One.Lsh(uint(rng.Intn(256)))
	default:
		return Word{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
	}
}

func maxWord() Word { return Word{^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)} }

func TestWrapAroundAt256Bits(t *testing.T) {
	max := maxWord()
	if got := max.Add(One); !got.IsZero() {
		t.Fatalf("max+1 = %s, want 0", got)
	}
	if got := Zero.Sub(One); got != max {
		t.Fatalf("0-1 = %s, want 2^256-1", got)
	}
	// (2^255)·2 wraps to zero; (2^128)² wraps to zero.
	if got := One.Lsh(255).Mul(FromUint64(2)); !got.IsZero() {
		t.Fatalf("2^255·2 = %s, want 0", got)
	}
	half := One.Lsh(128)
	if got := half.Mul(half); !got.IsZero() {
		t.Fatalf("2^128² = %s, want 0", got)
	}
	// max·max mod 2^256 == 1.
	if got := max.Mul(max); got != One {
		t.Fatalf("max·max = %s, want 1", got)
	}
}

func TestDivModByZero(t *testing.T) {
	x := FromUint64(12345)
	if q := x.Div(Zero); !q.IsZero() {
		t.Fatalf("x/0 = %s, want 0", q)
	}
	if r := x.Mod(Zero); !r.IsZero() {
		t.Fatalf("x%%0 = %s, want 0", r)
	}
	q, r := maxWord().DivMod(Zero)
	if !q.IsZero() || !r.IsZero() {
		t.Fatalf("max divmod 0 = %s,%s", q, r)
	}
}

func TestExpEdges(t *testing.T) {
	if got := Zero.Exp(Zero); got != One {
		t.Fatalf("0^0 = %s, want 1", got)
	}
	if got := FromUint64(7).Exp(Zero); got != One {
		t.Fatalf("7^0 = %s, want 1", got)
	}
	if got := Zero.Exp(FromUint64(9)); !got.IsZero() {
		t.Fatalf("0^9 = %s, want 0", got)
	}
	// 2^256 wraps to zero; 2^255 stays.
	if got := FromUint64(2).Exp(FromUint64(256)); !got.IsZero() {
		t.Fatalf("2^256 = %s, want 0", got)
	}
	if got := FromUint64(2).Exp(FromUint64(255)); got != One.Lsh(255) {
		t.Fatalf("2^255 = %s", got)
	}
	// Large exponent: matches big.Int.Exp(base, exp, 2^256). An odd base
	// cycles in the multiplicative group mod 2^256.
	base := FromUint64(3)
	exp := maxWord()
	want := FromBig(new(big.Int).Exp(big.NewInt(3), exp.ToBig(), two256))
	if got := base.Exp(exp); got != want {
		t.Fatalf("3^max = %s, want %s", got, want)
	}
}

func TestSetBytesLengths(t *testing.T) {
	// Short input.
	if got := SetBytes([]byte{0x01, 0x02}); got != FromUint64(0x0102) {
		t.Fatalf("SetBytes short = %s", got)
	}
	// Empty and nil.
	if got := SetBytes(nil); !got.IsZero() {
		t.Fatalf("SetBytes(nil) = %s", got)
	}
	if got := SetBytes([]byte{}); !got.IsZero() {
		t.Fatalf("SetBytes(empty) = %s", got)
	}
	// Exactly 32 bytes round-trips.
	var b32 [32]byte
	for i := range b32 {
		b32[i] = byte(i + 1)
	}
	w := SetBytes(b32[:])
	if w.Bytes32() != b32 {
		t.Fatalf("32-byte round trip failed: %x", w.Bytes32())
	}
	// Longer than 32 bytes: low 32 bytes win (mod 2^256).
	long := append([]byte{0xde, 0xad}, b32[:]...)
	if got := SetBytes(long); got != w {
		t.Fatalf("SetBytes long = %s, want %s", got, w)
	}
}

func TestFromBigNegativeAndOverflow(t *testing.T) {
	// Negative: mod-2^256 representative.
	neg := big.NewInt(-1)
	if got := FromBig(neg); got != maxWord() {
		t.Fatalf("FromBig(-1) = %s, want 2^256-1", got)
	}
	// Over-range: reduced.
	over := new(big.Int).Add(two256, big.NewInt(5))
	if got := FromBig(over); got != FromUint64(5) {
		t.Fatalf("FromBig(2^256+5) = %s, want 5", got)
	}
	if got := FromBig(nil); !got.IsZero() {
		t.Fatalf("FromBig(nil) = %s", got)
	}
}

func TestByteOpcode(t *testing.T) {
	w := FromBig(fromHexOrPanic(t, "0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20"))
	for i := uint64(0); i < 32; i++ {
		want := FromUint64(i + 1)
		if got := w.Byte(i); got != want {
			t.Fatalf("Byte(%d) = %s, want %s", i, got, want)
		}
	}
	if got := w.Byte(32); !got.IsZero() {
		t.Fatal("Byte(32) must be zero")
	}
}

func TestShiftEdges(t *testing.T) {
	w := maxWord()
	if !w.Lsh(256).IsZero() || !w.Rsh(256).IsZero() {
		t.Fatal("shift by 256 must be zero")
	}
	if w.Lsh(0) != w || w.Rsh(0) != w {
		t.Fatal("shift by 0 must be identity")
	}
	if got := One.Lsh(64); got != (Word{0, 1, 0, 0}) {
		t.Fatalf("1<<64 = %v", got)
	}
	if got := (Word{0, 0, 0, 1}).Rsh(192); got != One {
		t.Fatalf("2^192>>192 = %v", got)
	}
}

// TestBigEquivalenceProperty pins every operation to math/big on random
// structured inputs — the executable spec of the package.
func TestBigEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	mod := func(v *big.Int) *big.Int { return new(big.Int).Mod(v, two256) }
	for i := 0; i < 3000; i++ {
		x, y := randWord(rng), randWord(rng)
		bx, by := x.ToBig(), y.ToBig()

		check := func(op string, got Word, want *big.Int) {
			t.Helper()
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("iter %d: %s(%s, %s) = %s, want %s", i, op, bx, by, got, want)
			}
		}
		check("add", x.Add(y), mod(new(big.Int).Add(bx, by)))
		check("sub", x.Sub(y), mod(new(big.Int).Sub(bx, by)))
		check("mul", x.Mul(y), mod(new(big.Int).Mul(bx, by)))
		if !y.IsZero() {
			check("div", x.Div(y), new(big.Int).Div(bx, by))
			check("mod", x.Mod(y), new(big.Int).Mod(bx, by))
		}
		check("and", x.And(y), new(big.Int).And(bx, by))
		check("or", x.Or(y), new(big.Int).Or(bx, by))
		check("xor", x.Xor(y), new(big.Int).Xor(bx, by))
		check("not", x.Not(), new(big.Int).Sub(new(big.Int).Sub(two256, big.NewInt(1)), bx))

		sh := uint(rng.Intn(300))
		if sh >= 256 {
			if !x.Lsh(sh).IsZero() || !x.Rsh(sh).IsZero() {
				t.Fatalf("iter %d: shift %d must zero", i, sh)
			}
		} else {
			check("lsh", x.Lsh(sh), mod(new(big.Int).Lsh(bx, sh)))
			check("rsh", x.Rsh(sh), new(big.Int).Rsh(bx, sh))
		}

		// Exponent kept small enough for big.Exp to stay fast, plus the
		// occasional full-width one.
		e := FromUint64(rng.Uint64() % 5000)
		if i%97 == 0 {
			e = y
		}
		check("exp", x.Exp(e), new(big.Int).Exp(bx, e.ToBig(), two256))

		// Comparisons.
		if got, want := x.Cmp(y), bx.Cmp(by); got != want {
			t.Fatalf("iter %d: cmp = %d, want %d", i, got, want)
		}
		if x.Lt(y) != (bx.Cmp(by) < 0) || x.Gt(y) != (bx.Cmp(by) > 0) {
			t.Fatalf("iter %d: lt/gt mismatch", i)
		}
		if x.IsZero() != (bx.Sign() == 0) {
			t.Fatalf("iter %d: IsZero mismatch", i)
		}
		if x.BitLen() != bx.BitLen() {
			t.Fatalf("iter %d: BitLen = %d, want %d", i, x.BitLen(), bx.BitLen())
		}

		// Round trips.
		if FromBig(bx) != x {
			t.Fatalf("iter %d: FromBig(ToBig) not identity", i)
		}
		b := x.Bytes32()
		if SetBytes(b[:]) != x {
			t.Fatalf("iter %d: SetBytes(Bytes32) not identity", i)
		}
	}
}

// TestDivModMultiLimb targets the binary long-division path with divisors
// wider than one limb.
func TestDivModMultiLimb(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		x := Word{rng.Uint64(), rng.Uint64(), rng.Uint64(), rng.Uint64()}
		y := Word{rng.Uint64(), rng.Uint64(), 0, 0}
		switch rng.Intn(3) {
		case 0:
			y[2] = rng.Uint64()
		case 1:
			y[2], y[3] = rng.Uint64(), rng.Uint64()
		}
		if y.IsUint64() {
			y[1] = 1 // force the multi-limb path
		}
		q, r := x.DivMod(y)
		bq, br := new(big.Int).DivMod(x.ToBig(), y.ToBig(), new(big.Int))
		if q.ToBig().Cmp(bq) != 0 || r.ToBig().Cmp(br) != 0 {
			t.Fatalf("iter %d: %s divmod %s = (%s, %s), want (%s, %s)", i, x, y, q, r, bq, br)
		}
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := maxWord(), FromUint64(12345)
	var acc Word
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc = acc.Add(x).Add(y)
	}
	sink = acc
}

func BenchmarkMul(b *testing.B) {
	x := Word{0x1234567890abcdef, 0xfedcba0987654321, 1, 2}
	acc := One
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc = acc.Mul(x)
	}
	sink = acc
}

func BenchmarkDivSingleLimb(b *testing.B) {
	x := maxWord()
	y := FromUint64(12347)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = x.Div(y)
	}
}

func BenchmarkDivMultiLimb(b *testing.B) {
	x := maxWord()
	y := Word{1, 2, 3, 0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sink = x.Div(y)
	}
}

var sink Word
