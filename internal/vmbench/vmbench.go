// Package vmbench measures interpreter throughput on the workload the
// evaluation chapter actually times: deploying the PoL contract and
// attaching a user (one insert_data Invoke). The EVM workload runs on both
// engines — the u256 fast path (evm.Execute) and the retained big.Int
// reference (evm.ExecuteRef) — so BENCH_vm.json records a measured
// before/after rather than a remembered number. The AVM workload has no
// big.Int baseline (it always computed on uint64); its record tracks the
// pooled machine's ns/op and allocs/op.
package vmbench

import (
	"flag"
	"fmt"
	"math/big"
	"runtime"
	"strings"
	"sync"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/evm"
	"agnopol/internal/lang"
	"agnopol/internal/polcrypto"
)

// Engine is one engine's measurement of a workload.
type Engine struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Workload is one benchmark with its per-engine results. NsImprovement and
// AllocsReduction are bigint/u256 ratios (higher is better), present only
// when both engines ran.
type Workload struct {
	Name            string  `json:"name"`
	U256            *Engine `json:"u256,omitempty"`
	BigInt          *Engine `json:"bigint_ref,omitempty"`
	NsImprovement   float64 `json:"ns_improvement,omitempty"`
	AllocsReduction float64 `json:"allocs_reduction,omitempty"`
}

// Report is the BENCH_vm.json record.
type Report struct {
	Benchtime  string     `json:"benchtime"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Workloads  []Workload `json:"workloads"`
	// Headline numbers for the EVM deploy+attach workload — the metric the
	// perf acceptance gate reads.
	DeployAttachNsImprovement   float64 `json:"evm_deploy_attach_ns_improvement"`
	DeployAttachAllocsReduction float64 `json:"evm_deploy_attach_allocs_reduction"`
	// Headline precompile speedups: interpreted ns/op over precompiled
	// ns/op for the proof-verification workload (DESIGN.md §14), per VM.
	// The benchgate -minprecompilespeedup floor reads the EVM number.
	EVMProofVerifyNsImprovement float64 `json:"evm_proof_verify_precompile_ns_improvement"`
	AVMProofVerifyNsImprovement float64 `json:"avm_proof_verify_precompile_ns_improvement"`
}

func (r *Report) String() string {
	s := fmt.Sprintf("VM microbenchmarks (benchtime %s, GOMAXPROCS %d)\n", r.Benchtime, r.GOMAXPROCS)
	for _, w := range r.Workloads {
		s += fmt.Sprintf("  %-24s", w.Name)
		if w.U256 != nil {
			s += fmt.Sprintf("  u256 %12.0f ns/op %6d allocs/op", w.U256.NsPerOp, w.U256.AllocsPerOp)
		}
		if w.BigInt != nil {
			s += fmt.Sprintf("  bigint %12.0f ns/op %6d allocs/op  (%.1fx ns, %.1fx allocs)",
				w.BigInt.NsPerOp, w.BigInt.AllocsPerOp, w.NsImprovement, w.AllocsReduction)
		}
		s += "\n"
	}
	return s
}

var testingInitOnce sync.Once

// setBenchtime routes the requested duration/count into the testing
// package, which only reads it from its registered flag.
func setBenchtime(v string) error {
	if err := flag.Set("test.benchtime", v); err != nil {
		return fmt.Errorf("vmbench: bad benchtime %q: %w", v, err)
	}
	return nil
}

// Run compiles the PoL contract, sanity-checks both engines agree on the
// workload, and measures it. benchtime is a testing -benchtime value
// ("1s", "100x", …); "1x" gives a compile-and-run smoke for CI. A
// non-empty filter restricts the run to workloads whose name contains it
// ("proof_verify" gives the precompile smoke); headline ratios are only
// populated when their workloads ran.
func Run(benchtime, filter string) (*Report, error) {
	keep := func(name string) bool {
		return filter == "" || strings.Contains(name, filter)
	}

	testingInitOnce.Do(testing.Init)
	if err := setBenchtime(benchtime); err != nil {
		return nil, err
	}

	rep := &Report{Benchtime: benchtime, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	if keep("evm_deploy_attach") || keep("avm_deploy_attach") {
		compiled, err := core.CompilePoL()
		if err != nil {
			return nil, fmt.Errorf("vmbench: compile: %w", err)
		}
		if keep("evm_deploy_attach") {
			w, err := newEVMWorkload(compiled)
			if err != nil {
				return nil, err
			}
			fast := measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.run(evm.Execute)
				}
			})
			ref := measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					w.run(evm.ExecuteRef)
				}
			})
			da := Workload{Name: "evm_deploy_attach", U256: &fast, BigInt: &ref}
			da.NsImprovement = ratio(ref.NsPerOp, fast.NsPerOp)
			da.AllocsReduction = ratio(float64(ref.AllocsPerOp), float64(fast.AllocsPerOp))
			rep.Workloads = append(rep.Workloads, da)
			rep.DeployAttachNsImprovement = da.NsImprovement
			rep.DeployAttachAllocsReduction = da.AllocsReduction
		}
		if keep("avm_deploy_attach") {
			aw, err := newAVMWorkload(compiled)
			if err != nil {
				return nil, err
			}
			am := measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					aw.run()
				}
			})
			rep.Workloads = append(rep.Workloads, Workload{Name: "avm_deploy_attach", U256: &am})
		}
	}

	if err := addProofVerify(rep, keep); err != nil {
		return nil, err
	}
	return rep, nil
}

// addProofVerify measures the proof-verification hot path — one check_in of
// the pol-verify contract against pre-seeded state — compiled with the
// interpreted lowering and with precompiles, on both VMs. The headline
// ratios are what the precompile PR buys: interpreted ns/op over
// precompiled ns/op on the same engine.
func addProofVerify(rep *Report, keep func(string) bool) error {
	names := []string{
		"evm_proof_verify_interp", "evm_proof_verify_precompile",
		"avm_proof_verify_interp", "avm_proof_verify_precompile",
	}
	wanted := false
	for _, n := range names {
		if keep(n) {
			wanted = true
		}
	}
	if !wanted {
		return nil
	}
	interp, err := lang.Compile(core.BuildVerifyProgram(), lang.Options{MaxBytesLen: 512})
	if err != nil {
		return fmt.Errorf("vmbench: compile pol-verify (interpreted): %w", err)
	}
	pre, err := core.CompileVerify()
	if err != nil {
		return fmt.Errorf("vmbench: %w", err)
	}

	measureEVM := func(c *lang.Compiled, name string) (Workload, error) {
		w, err := newPVEVMWorkload(c)
		if err != nil {
			return Workload{}, err
		}
		fast := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.run(evm.Execute)
			}
		})
		ref := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.run(evm.ExecuteRef)
			}
		})
		wl := Workload{Name: name, U256: &fast, BigInt: &ref}
		wl.NsImprovement = ratio(ref.NsPerOp, fast.NsPerOp)
		wl.AllocsReduction = ratio(float64(ref.AllocsPerOp), float64(fast.AllocsPerOp))
		return wl, nil
	}
	var ei, ep Workload
	if keep(names[0]) {
		if ei, err = measureEVM(interp, names[0]); err != nil {
			return err
		}
		rep.Workloads = append(rep.Workloads, ei)
	}
	if keep(names[1]) {
		if ep, err = measureEVM(pre, names[1]); err != nil {
			return err
		}
		rep.Workloads = append(rep.Workloads, ep)
	}
	if ei.U256 != nil && ep.U256 != nil {
		rep.EVMProofVerifyNsImprovement = ratio(ei.U256.NsPerOp, ep.U256.NsPerOp)
	}

	measureAVM := func(c *lang.Compiled, name string) (Workload, error) {
		w, err := newPVAVMWorkload(c)
		if err != nil {
			return Workload{}, err
		}
		m := measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w.run()
			}
		})
		return Workload{Name: name, U256: &m}, nil
	}
	var ai, ap Workload
	if keep(names[2]) {
		if ai, err = measureAVM(interp, names[2]); err != nil {
			return err
		}
		rep.Workloads = append(rep.Workloads, ai)
	}
	if keep(names[3]) {
		if ap, err = measureAVM(pre, names[3]); err != nil {
			return err
		}
		rep.Workloads = append(rep.Workloads, ap)
	}
	if ai.U256 != nil && ap.U256 != nil {
		rep.AVMProofVerifyNsImprovement = ratio(ai.U256.NsPerOp, ap.U256.NsPerOp)
	}
	return nil
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func measure(fn func(*testing.B)) Engine {
	r := testing.Benchmark(fn)
	nsPerOp := 0.0
	allocs, bytesOp := int64(0), int64(0)
	if r.N > 0 {
		nsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		allocs = int64(r.MemAllocs) / int64(r.N)
		bytesOp = int64(r.MemBytes) / int64(r.N)
	}
	return Engine{NsPerOp: nsPerOp, AllocsPerOp: allocs, BytesPerOp: bytesOp, Iterations: r.N}
}

// evmWorkload is the deploy+attach Invoke pair against a fresh world state
// per iteration — the VM cycles behind one Table 5.1 sample.
type evmWorkload struct {
	code     []byte
	ctorData []byte
	callData []byte
	self     chain.Address
	from     chain.Address
}

func newEVMWorkload(compiled *lang.Compiled) (*evmWorkload, error) {
	ctorData, err := lang.EncodeArgsEVM(lang.CtorMethodName, compiled.Program.Ctor.Params,
		[]lang.Value{
			lang.BytesValue([]byte("45.4642,9.1900")), // position
			lang.Uint64Value(1),                       // did
			lang.Uint64Value(100),                     // rewardPerProver
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode ctor: %w", err)
	}
	var insertParams []lang.Param
	for _, api := range compiled.Program.APIs {
		if api.Name == "insert_data" {
			insertParams = api.Params
		}
	}
	callData, err := lang.EncodeArgsEVM("insert_data", insertParams,
		[]lang.Value{
			lang.BytesValue([]byte("proof-cid-0123456789abcdef")),
			lang.Uint64Value(7),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode insert_data: %w", err)
	}
	w := &evmWorkload{
		code:     compiled.EVMCode,
		ctorData: ctorData,
		callData: callData,
		self:     chain.AddressFromBytes([]byte("vmbench-contract")),
		from:     chain.AddressFromBytes([]byte("vmbench-caller")),
	}
	// Sanity on both engines before anything is timed.
	for _, exec := range []func(evm.Context, []byte) evm.Result{evm.Execute, evm.ExecuteRef} {
		if deploy, attach := w.run(exec); deploy.Err != nil || deploy.Reverted ||
			attach.Err != nil || attach.Reverted {
			return nil, fmt.Errorf("vmbench: workload sanity: deploy=%+v attach=%+v", deploy, attach)
		}
	}
	return w, nil
}

func (w *evmWorkload) run(exec func(evm.Context, []byte) evm.Result) (deploy, attach evm.Result) {
	st := evm.NewMemState()
	st.AddBalance(w.from, big.NewInt(1_000_000))
	ctx := evm.Context{
		State: st, Caller: w.from, Address: w.self,
		GasLimit: 10_000_000, BlockNumber: 1, Timestamp: 1000,
	}
	ctx.CallData = w.ctorData
	deploy = exec(ctx, w.code)
	ctx.CallData = w.callData
	attach = exec(ctx, w.code)
	return deploy, attach
}

// avmWorkload is the same pair on the Algorand VM.
type avmWorkload struct {
	prog       *avm.Program
	ctorArgs   [][]byte
	insertArgs [][]byte
	sender     chain.Address
}

func newAVMWorkload(compiled *lang.Compiled) (*avmWorkload, error) {
	ctorArgs, err := lang.EncodeArgsTEAL("", compiled.Program.Ctor.Params,
		[]lang.Value{
			lang.BytesValue([]byte("45.4642,9.1900")),
			lang.Uint64Value(1),
			lang.Uint64Value(100),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal ctor: %w", err)
	}
	var insertParams []lang.Param
	for _, api := range compiled.Program.APIs {
		if api.Name == "insert_data" {
			insertParams = api.Params
		}
	}
	insertArgs, err := lang.EncodeArgsTEAL("insert_data", insertParams,
		[]lang.Value{
			lang.BytesValue([]byte("proof-cid-0123456789abcdef")),
			lang.Uint64Value(7),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal insert_data: %w", err)
	}
	w := &avmWorkload{
		prog:       compiled.TEALProgram,
		ctorArgs:   ctorArgs,
		insertArgs: insertArgs,
		sender:     chain.AddressFromBytes([]byte("vmbench-sender")),
	}
	if create, call := w.run(); create.Err != nil || !create.Approved ||
		call.Err != nil || !call.Approved {
		return nil, fmt.Errorf("vmbench: avm workload sanity: create=%+v call=%+v", create, call)
	}
	return w, nil
}

func (w *avmWorkload) run() (create, call avm.Result) {
	led := avm.NewMemLedger()
	create = avm.Execute(w.prog, led, avm.TxContext{
		Sender: w.sender, AppID: 7, CreateMode: true, Args: w.ctorArgs, BudgetTxns: 4,
	})
	call = avm.Execute(w.prog, led, avm.TxContext{
		Sender: w.sender, AppID: 7, Args: w.insertArgs, BudgetTxns: 4,
	})
	return create, call
}

// Proof-verification payloads, sized like the protocol's real inputs: a
// 32-byte location fix, a 64-byte nonce and a ~256-byte IPFS CID record,
// committed as sha256(loc ++ nonce ++ cid).
var (
	pvArea  = []byte("8FQFCX")
	pvCode  = []byte("8FQFCXGV+XX")
	pvLoc   = bytesOf('L', 32)
	pvNonce = bytesOf('N', 64)
	pvCid   = bytesOf('C', 512)
)

func bytesOf(c byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return b
}

func pvCommitment() []byte {
	h := polcrypto.Hash(pvLoc, pvNonce, pvCid)
	return h[:]
}

func pvAPI(compiled *lang.Compiled, name string) []lang.Param {
	for _, api := range compiled.Program.APIs {
		if api.Name == name {
			return api.Params
		}
	}
	return nil
}

// pvEVMWorkload times one check_in Invoke against pre-seeded state (area
// stored, DID registered); the per-iteration work is exactly the
// verification hot path: digest-over-concat, commitment compare, cell
// containment.
type pvEVMWorkload struct {
	code     []byte
	callData []byte
	state    *evm.MemState
	self     chain.Address
	from     chain.Address
}

func newPVEVMWorkload(compiled *lang.Compiled) (*pvEVMWorkload, error) {
	w := &pvEVMWorkload{
		code: compiled.EVMCode,
		self: chain.AddressFromBytes([]byte("vmbench-verify")),
		from: chain.AddressFromBytes([]byte("vmbench-caller")),
	}
	w.state = evm.NewMemState()
	seed := func(method string, params []lang.Param, args []lang.Value) error {
		data, err := lang.EncodeArgsEVM(method, params, args)
		if err != nil {
			return fmt.Errorf("vmbench: encode %s: %w", method, err)
		}
		res := evm.Execute(evm.Context{
			State: w.state, Caller: w.from, Address: w.self,
			CallData: data, GasLimit: 10_000_000, BlockNumber: 1, Timestamp: 1000,
		}, w.code)
		if res.Err != nil || res.Reverted {
			return fmt.Errorf("vmbench: seed %s: %+v", method, res)
		}
		return nil
	}
	if err := seed(lang.CtorMethodName, compiled.Program.Ctor.Params,
		[]lang.Value{lang.BytesValue(pvArea)}); err != nil {
		return nil, err
	}
	if err := seed("register", pvAPI(compiled, "register"),
		[]lang.Value{lang.Uint64Value(7), lang.BytesValue(pvCommitment())}); err != nil {
		return nil, err
	}
	var err error
	w.callData, err = lang.EncodeArgsEVM("check_in", pvAPI(compiled, "check_in"),
		[]lang.Value{
			lang.Uint64Value(7), lang.BytesValue(pvLoc), lang.BytesValue(pvNonce),
			lang.BytesValue(pvCid), lang.BytesValue(pvCode),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode check_in: %w", err)
	}
	for _, exec := range []func(evm.Context, []byte) evm.Result{evm.Execute, evm.ExecuteRef} {
		if res := w.run(exec); res.Err != nil || res.Reverted {
			return nil, fmt.Errorf("vmbench: check_in sanity: %+v", res)
		}
	}
	return w, nil
}

func (w *pvEVMWorkload) run(exec func(evm.Context, []byte) evm.Result) evm.Result {
	return exec(evm.Context{
		State: w.state, Caller: w.from, Address: w.self,
		CallData: w.callData, GasLimit: 10_000_000, BlockNumber: 1, Timestamp: 1000,
	}, w.code)
}

// pvAVMWorkload is the same single check_in on the Algorand VM.
type pvAVMWorkload struct {
	prog     *avm.Program
	callArgs [][]byte
	ledger   *avm.MemLedger
	sender   chain.Address
}

func newPVAVMWorkload(compiled *lang.Compiled) (*pvAVMWorkload, error) {
	w := &pvAVMWorkload{
		prog:   compiled.TEALProgram,
		ledger: avm.NewMemLedger(),
		sender: chain.AddressFromBytes([]byte("vmbench-sender")),
	}
	ctorArgs, err := lang.EncodeArgsTEAL("", compiled.Program.Ctor.Params,
		[]lang.Value{lang.BytesValue(pvArea)})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal ctor: %w", err)
	}
	if res := avm.Execute(w.prog, w.ledger, avm.TxContext{
		Sender: w.sender, AppID: 7, CreateMode: true, Args: ctorArgs, BudgetTxns: 4,
	}); res.Err != nil || !res.Approved {
		return nil, fmt.Errorf("vmbench: teal ctor: %+v", res)
	}
	regArgs, err := lang.EncodeArgsTEAL("register", pvAPI(compiled, "register"),
		[]lang.Value{lang.Uint64Value(7), lang.BytesValue(pvCommitment())})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal register: %w", err)
	}
	if res := avm.Execute(w.prog, w.ledger, avm.TxContext{
		Sender: w.sender, AppID: 7, Args: regArgs, BudgetTxns: 4,
	}); res.Err != nil || !res.Approved {
		return nil, fmt.Errorf("vmbench: teal register: %+v", res)
	}
	w.callArgs, err = lang.EncodeArgsTEAL("check_in", pvAPI(compiled, "check_in"),
		[]lang.Value{
			lang.Uint64Value(7), lang.BytesValue(pvLoc), lang.BytesValue(pvNonce),
			lang.BytesValue(pvCid), lang.BytesValue(pvCode),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal check_in: %w", err)
	}
	if res := w.run(); res.Err != nil || !res.Approved {
		return nil, fmt.Errorf("vmbench: teal check_in sanity: %+v", res)
	}
	return w, nil
}

func (w *pvAVMWorkload) run() avm.Result {
	return avm.Execute(w.prog, w.ledger, avm.TxContext{
		Sender: w.sender, AppID: 7, Args: w.callArgs, BudgetTxns: 4,
	})
}
