// Package vmbench measures interpreter throughput on the workload the
// evaluation chapter actually times: deploying the PoL contract and
// attaching a user (one insert_data Invoke). The EVM workload runs on both
// engines — the u256 fast path (evm.Execute) and the retained big.Int
// reference (evm.ExecuteRef) — so BENCH_vm.json records a measured
// before/after rather than a remembered number. The AVM workload has no
// big.Int baseline (it always computed on uint64); its record tracks the
// pooled machine's ns/op and allocs/op.
package vmbench

import (
	"flag"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"testing"

	"agnopol/internal/avm"
	"agnopol/internal/chain"
	"agnopol/internal/core"
	"agnopol/internal/evm"
	"agnopol/internal/lang"
)

// Engine is one engine's measurement of a workload.
type Engine struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Workload is one benchmark with its per-engine results. NsImprovement and
// AllocsReduction are bigint/u256 ratios (higher is better), present only
// when both engines ran.
type Workload struct {
	Name            string  `json:"name"`
	U256            *Engine `json:"u256,omitempty"`
	BigInt          *Engine `json:"bigint_ref,omitempty"`
	NsImprovement   float64 `json:"ns_improvement,omitempty"`
	AllocsReduction float64 `json:"allocs_reduction,omitempty"`
}

// Report is the BENCH_vm.json record.
type Report struct {
	Benchtime  string     `json:"benchtime"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Workloads  []Workload `json:"workloads"`
	// Headline numbers for the EVM deploy+attach workload — the metric the
	// perf acceptance gate reads.
	DeployAttachNsImprovement   float64 `json:"evm_deploy_attach_ns_improvement"`
	DeployAttachAllocsReduction float64 `json:"evm_deploy_attach_allocs_reduction"`
}

func (r *Report) String() string {
	s := fmt.Sprintf("VM microbenchmarks (benchtime %s, GOMAXPROCS %d)\n", r.Benchtime, r.GOMAXPROCS)
	for _, w := range r.Workloads {
		s += fmt.Sprintf("  %-24s", w.Name)
		if w.U256 != nil {
			s += fmt.Sprintf("  u256 %12.0f ns/op %6d allocs/op", w.U256.NsPerOp, w.U256.AllocsPerOp)
		}
		if w.BigInt != nil {
			s += fmt.Sprintf("  bigint %12.0f ns/op %6d allocs/op  (%.1fx ns, %.1fx allocs)",
				w.BigInt.NsPerOp, w.BigInt.AllocsPerOp, w.NsImprovement, w.AllocsReduction)
		}
		s += "\n"
	}
	return s
}

var testingInitOnce sync.Once

// setBenchtime routes the requested duration/count into the testing
// package, which only reads it from its registered flag.
func setBenchtime(v string) error {
	if err := flag.Set("test.benchtime", v); err != nil {
		return fmt.Errorf("vmbench: bad benchtime %q: %w", v, err)
	}
	return nil
}

// Run compiles the PoL contract, sanity-checks both engines agree on the
// workload, and measures it. benchtime is a testing -benchtime value
// ("1s", "100x", …); "1x" gives a compile-and-run smoke for CI.
func Run(benchtime string) (*Report, error) {
	compiled, err := core.CompilePoL()
	if err != nil {
		return nil, fmt.Errorf("vmbench: compile: %w", err)
	}

	w, err := newEVMWorkload(compiled)
	if err != nil {
		return nil, err
	}
	aw, err := newAVMWorkload(compiled)
	if err != nil {
		return nil, err
	}

	testingInitOnce.Do(testing.Init)
	if err := setBenchtime(benchtime); err != nil {
		return nil, err
	}

	rep := &Report{Benchtime: benchtime, GOMAXPROCS: runtime.GOMAXPROCS(0)}

	fast := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.run(evm.Execute)
		}
	})
	ref := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w.run(evm.ExecuteRef)
		}
	})
	da := Workload{Name: "evm_deploy_attach", U256: &fast, BigInt: &ref}
	da.NsImprovement = ratio(ref.NsPerOp, fast.NsPerOp)
	da.AllocsReduction = ratio(float64(ref.AllocsPerOp), float64(fast.AllocsPerOp))
	rep.Workloads = append(rep.Workloads, da)
	rep.DeployAttachNsImprovement = da.NsImprovement
	rep.DeployAttachAllocsReduction = da.AllocsReduction

	am := measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			aw.run()
		}
	})
	rep.Workloads = append(rep.Workloads, Workload{Name: "avm_deploy_attach", U256: &am})

	return rep, nil
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func measure(fn func(*testing.B)) Engine {
	r := testing.Benchmark(fn)
	nsPerOp := 0.0
	allocs, bytesOp := int64(0), int64(0)
	if r.N > 0 {
		nsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
		allocs = int64(r.MemAllocs) / int64(r.N)
		bytesOp = int64(r.MemBytes) / int64(r.N)
	}
	return Engine{NsPerOp: nsPerOp, AllocsPerOp: allocs, BytesPerOp: bytesOp, Iterations: r.N}
}

// evmWorkload is the deploy+attach Invoke pair against a fresh world state
// per iteration — the VM cycles behind one Table 5.1 sample.
type evmWorkload struct {
	code     []byte
	ctorData []byte
	callData []byte
	self     chain.Address
	from     chain.Address
}

func newEVMWorkload(compiled *lang.Compiled) (*evmWorkload, error) {
	ctorData, err := lang.EncodeArgsEVM(lang.CtorMethodName, compiled.Program.Ctor.Params,
		[]lang.Value{
			lang.BytesValue([]byte("45.4642,9.1900")), // position
			lang.Uint64Value(1),                       // did
			lang.Uint64Value(100),                     // rewardPerProver
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode ctor: %w", err)
	}
	var insertParams []lang.Param
	for _, api := range compiled.Program.APIs {
		if api.Name == "insert_data" {
			insertParams = api.Params
		}
	}
	callData, err := lang.EncodeArgsEVM("insert_data", insertParams,
		[]lang.Value{
			lang.BytesValue([]byte("proof-cid-0123456789abcdef")),
			lang.Uint64Value(7),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode insert_data: %w", err)
	}
	w := &evmWorkload{
		code:     compiled.EVMCode,
		ctorData: ctorData,
		callData: callData,
		self:     chain.AddressFromBytes([]byte("vmbench-contract")),
		from:     chain.AddressFromBytes([]byte("vmbench-caller")),
	}
	// Sanity on both engines before anything is timed.
	for _, exec := range []func(evm.Context, []byte) evm.Result{evm.Execute, evm.ExecuteRef} {
		if deploy, attach := w.run(exec); deploy.Err != nil || deploy.Reverted ||
			attach.Err != nil || attach.Reverted {
			return nil, fmt.Errorf("vmbench: workload sanity: deploy=%+v attach=%+v", deploy, attach)
		}
	}
	return w, nil
}

func (w *evmWorkload) run(exec func(evm.Context, []byte) evm.Result) (deploy, attach evm.Result) {
	st := evm.NewMemState()
	st.AddBalance(w.from, big.NewInt(1_000_000))
	ctx := evm.Context{
		State: st, Caller: w.from, Address: w.self,
		GasLimit: 10_000_000, BlockNumber: 1, Timestamp: 1000,
	}
	ctx.CallData = w.ctorData
	deploy = exec(ctx, w.code)
	ctx.CallData = w.callData
	attach = exec(ctx, w.code)
	return deploy, attach
}

// avmWorkload is the same pair on the Algorand VM.
type avmWorkload struct {
	prog       *avm.Program
	ctorArgs   [][]byte
	insertArgs [][]byte
	sender     chain.Address
}

func newAVMWorkload(compiled *lang.Compiled) (*avmWorkload, error) {
	ctorArgs, err := lang.EncodeArgsTEAL("", compiled.Program.Ctor.Params,
		[]lang.Value{
			lang.BytesValue([]byte("45.4642,9.1900")),
			lang.Uint64Value(1),
			lang.Uint64Value(100),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal ctor: %w", err)
	}
	var insertParams []lang.Param
	for _, api := range compiled.Program.APIs {
		if api.Name == "insert_data" {
			insertParams = api.Params
		}
	}
	insertArgs, err := lang.EncodeArgsTEAL("insert_data", insertParams,
		[]lang.Value{
			lang.BytesValue([]byte("proof-cid-0123456789abcdef")),
			lang.Uint64Value(7),
		})
	if err != nil {
		return nil, fmt.Errorf("vmbench: encode teal insert_data: %w", err)
	}
	w := &avmWorkload{
		prog:       compiled.TEALProgram,
		ctorArgs:   ctorArgs,
		insertArgs: insertArgs,
		sender:     chain.AddressFromBytes([]byte("vmbench-sender")),
	}
	if create, call := w.run(); create.Err != nil || !create.Approved ||
		call.Err != nil || !call.Approved {
		return nil, fmt.Errorf("vmbench: avm workload sanity: create=%+v call=%+v", create, call)
	}
	return w, nil
}

func (w *avmWorkload) run() (create, call avm.Result) {
	led := avm.NewMemLedger()
	create = avm.Execute(w.prog, led, avm.TxContext{
		Sender: w.sender, AppID: 7, CreateMode: true, Args: w.ctorArgs, BudgetTxns: 4,
	})
	call = avm.Execute(w.prog, led, avm.TxContext{
		Sender: w.sender, AppID: 7, Args: w.insertArgs, BudgetTxns: 4,
	})
	return create, call
}
