package vmbench

import "testing"

// TestRunSmoke runs the whole harness at one iteration per engine — the
// same configuration CI uses — and checks the record is well-formed.
func TestRunSmoke(t *testing.T) {
	rep, err := Run("1x", "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"evm_deploy_attach", "avm_deploy_attach",
		"evm_proof_verify_interp", "evm_proof_verify_precompile",
		"avm_proof_verify_interp", "avm_proof_verify_precompile",
	}
	if len(rep.Workloads) != len(want) {
		t.Fatalf("want %d workloads, got %d", len(want), len(rep.Workloads))
	}
	for i, name := range want {
		if rep.Workloads[i].Name != name {
			t.Fatalf("workload %d = %q, want %q", i, rep.Workloads[i].Name, name)
		}
		if rep.Workloads[i].U256 == nil || rep.Workloads[i].U256.Iterations < 1 {
			t.Fatalf("workload %q did not run: %+v", name, rep.Workloads[i])
		}
	}
	evmW := rep.Workloads[0]
	if evmW.BigInt == nil {
		t.Fatalf("evm workload is missing its big.Int reference leg: %+v", evmW)
	}
	if avmW := rep.Workloads[1]; avmW.BigInt != nil {
		t.Fatalf("avm workload has no big.Int engine, got %+v", avmW)
	}
	if rep.EVMProofVerifyNsImprovement <= 0 || rep.AVMProofVerifyNsImprovement <= 0 {
		t.Fatalf("precompile headline ratios missing: evm=%v avm=%v",
			rep.EVMProofVerifyNsImprovement, rep.AVMProofVerifyNsImprovement)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

// TestRunFilter: a filter restricts the record to matching workloads and
// only populates the headline ratios whose inputs actually ran.
func TestRunFilter(t *testing.T) {
	rep, err := Run("1x", "proof_verify")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 4 {
		t.Fatalf("want the 4 proof_verify workloads, got %+v", rep.Workloads)
	}
	for _, w := range rep.Workloads {
		if w.Name != "evm_proof_verify_interp" && w.Name != "evm_proof_verify_precompile" &&
			w.Name != "avm_proof_verify_interp" && w.Name != "avm_proof_verify_precompile" {
			t.Fatalf("unexpected workload %q under filter", w.Name)
		}
	}
	if rep.EVMProofVerifyNsImprovement <= 0 || rep.AVMProofVerifyNsImprovement <= 0 {
		t.Fatal("filtered run covering both legs must still compute the headlines")
	}
	if rep.DeployAttachNsImprovement != 0 {
		t.Fatal("deploy-attach headline must stay empty when its workload is filtered out")
	}

	// Filtering to a single leg leaves the ratio unpopulated rather than
	// dividing by a measurement that never happened.
	rep, err = Run("1x", "evm_proof_verify_interp")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 1 || rep.EVMProofVerifyNsImprovement != 0 {
		t.Fatalf("single-leg filter: %+v headline %v", rep.Workloads, rep.EVMProofVerifyNsImprovement)
	}
}

// TestWorkloadEnginesAgree: the benchmark workload itself is a differential
// test — both engines must produce identical deploy and attach results.
func TestWorkloadEnginesAgree(t *testing.T) {
	// newEVMWorkload runs the sanity pass over both engines and fails on
	// any divergence or revert; reaching here means they agreed.
	if _, err := Run("1x", ""); err != nil {
		t.Fatal(err)
	}
}
