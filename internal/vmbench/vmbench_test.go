package vmbench

import "testing"

// TestRunSmoke runs the whole harness at one iteration per engine — the
// same configuration CI uses — and checks the record is well-formed.
func TestRunSmoke(t *testing.T) {
	rep, err := Run("1x")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != 2 {
		t.Fatalf("want 2 workloads, got %d", len(rep.Workloads))
	}
	evmW := rep.Workloads[0]
	if evmW.Name != "evm_deploy_attach" || evmW.U256 == nil || evmW.BigInt == nil {
		t.Fatalf("malformed evm workload: %+v", evmW)
	}
	if evmW.U256.Iterations < 1 || evmW.BigInt.Iterations < 1 {
		t.Fatalf("benchmarks did not run: %+v", evmW)
	}
	avmW := rep.Workloads[1]
	if avmW.Name != "avm_deploy_attach" || avmW.U256 == nil || avmW.BigInt != nil {
		t.Fatalf("malformed avm workload: %+v", avmW)
	}
	if rep.String() == "" {
		t.Fatal("empty report rendering")
	}
}

// TestWorkloadEnginesAgree: the benchmark workload itself is a differential
// test — both engines must produce identical deploy and attach results.
func TestWorkloadEnginesAgree(t *testing.T) {
	// newEVMWorkload runs the sanity pass over both engines and fails on
	// any divergence or revert; reaching here means they agreed.
	if _, err := Run("1x"); err != nil {
		t.Fatal(err)
	}
}
