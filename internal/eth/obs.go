package eth

import (
	"agnopol/internal/obs"
)

// InclusionLatencyBuckets are the histogram bounds, in simulated seconds,
// used for transaction inclusion latency. Slots are 12–15 s apart across
// the presets, so the buckets span one slot up to several minutes of
// congestion-induced waiting.
var InclusionLatencyBuckets = []float64{1, 2.5, 5, 10, 15, 20, 30, 45, 60, 90, 120, 180, 300}

// chainObs bundles the chain's metric instruments. A nil chainObs (the
// default) means the chain is uninstrumented and every hook site reduces
// to a single nil check.
type chainObs struct {
	blocksProduced   *obs.Counter
	txsSubmitted     *obs.Counter
	txsIncluded      *obs.Counter
	txsDeferred      *obs.Counter
	congestionSpikes *obs.Counter
	blockGasUsed     *obs.Counter
	baseFee          *obs.Gauge
	mempoolDepth     *obs.Gauge
	inclusionLatency *obs.Histogram
	// inclusionSketch answers tail-latency questions the fixed buckets
	// can't: a mergeable quantile sketch over the same observations.
	inclusionSketch *obs.QuantileSketch
	faultDelay      *obs.QuantileSketch
	prof            obs.Profiler
	log             *obs.Logger
}

// Instrument attaches metric instruments, an opcode profiler and a logger
// to the chain. All metrics carry a chain label with the preset name.
// Passing a nil registry detaches instrumentation.
func (c *Chain) Instrument(reg *obs.Registry, prof obs.Profiler, log *obs.Logger) {
	if reg == nil {
		c.obs = nil
		return
	}
	name := obs.L("chain", c.cfg.Name)
	c.obs = &chainObs{
		blocksProduced:   reg.Counter("eth_blocks_produced_total", name),
		txsSubmitted:     reg.Counter("eth_txs_submitted_total", name),
		txsIncluded:      reg.Counter("eth_txs_included_total", name),
		txsDeferred:      reg.Counter("eth_txs_deferred_total", name),
		congestionSpikes: reg.Counter("eth_congestion_spikes_total", name),
		blockGasUsed:     reg.Counter("eth_block_gas_used_total", name),
		baseFee:          reg.Gauge("eth_base_fee_wei", name),
		mempoolDepth:     reg.Gauge("eth_mempool_depth", name),
		inclusionLatency: reg.Histogram("eth_inclusion_latency_seconds", InclusionLatencyBuckets, name),
		inclusionSketch:  reg.Sketch("eth_inclusion_latency", name),
		faultDelay:       reg.Sketch("faults_injected_delay_seconds", name),
		prof:             prof,
		log:              log,
	}
	reg.Help("eth_blocks_produced_total", "Blocks produced by the simulated EVM chain.")
	reg.Help("eth_txs_submitted_total", "Transactions accepted into the mempool.")
	reg.Help("eth_txs_included_total", "Transactions included in a block.")
	reg.Help("eth_txs_deferred_total", "Eligible transactions deferred past a block (priced out or waiting).")
	reg.Help("eth_congestion_spikes_total", "Congestion spike episodes started.")
	reg.Help("eth_block_gas_used_total", "Total gas consumed across produced blocks.")
	reg.Help("eth_base_fee_wei", "Current EIP-1559 base fee in wei.")
	reg.Help("eth_mempool_depth", "Transactions currently queued in the mempool.")
	reg.Help("eth_inclusion_latency_seconds", "Simulated submit-to-inclusion latency.")
	reg.Help("eth_inclusion_latency", "Quantile sketch of simulated submit-to-inclusion latency.")
	reg.Help("faults_injected_delay_seconds", "Quantile sketch of injected tx_delay propagation stalls.")
}
