package eth

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"time"

	"agnopol/internal/chain"
	"agnopol/internal/evm"
	"agnopol/internal/faults"
	"agnopol/internal/obs"
	"agnopol/internal/polcrypto"
)

// Tx is an EIP-1559-style transaction.
type Tx struct {
	From     chain.Address
	Nonce    uint64
	To       *chain.Address // nil deploys a contract
	Value    *big.Int
	Data     []byte
	GasLimit uint64
	MaxFee   *big.Int // max total fee per gas
	MaxTip   *big.Int // max priority fee per gas
	PubKey   ed25519.PublicKey
	Sig      []byte
}

// Hash returns the transaction hash.
func (tx *Tx) Hash() chain.Hash32 {
	return chain.Hash32(polcrypto.Hash(tx.sigMessage(), tx.Sig))
}

func (tx *Tx) sigMessage() []byte {
	var buf []byte
	buf = append(buf, tx.From[:]...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], tx.Nonce)
	buf = append(buf, n[:]...)
	if tx.To != nil {
		buf = append(buf, tx.To[:]...)
	}
	buf = append(buf, tx.Value.Bytes()...)
	buf = append(buf, tx.Data...)
	binary.BigEndian.PutUint64(n[:], tx.GasLimit)
	buf = append(buf, n[:]...)
	buf = append(buf, tx.MaxFee.Bytes()...)
	buf = append(buf, tx.MaxTip.Bytes()...)
	h := polcrypto.Hash(buf)
	return h[:]
}

// Sign attaches the account's signature and public key.
func (tx *Tx) Sign(acct *Account) {
	tx.PubKey = acct.Key.Public
	tx.Sig = acct.Key.Sign(tx.sigMessage())
}

// Verify checks the signature and that the sender address matches the key.
func (tx *Tx) Verify() error {
	if chain.AddressFromPublicKey(tx.PubKey) != tx.From {
		return errors.New("eth: sender address does not match public key")
	}
	if !polcrypto.Verify(tx.PubKey, tx.sigMessage(), tx.Sig) {
		return polcrypto.ErrBadSignature
	}
	return nil
}

// Attestation is a committee member's vote on a block.
type Attestation struct {
	Validator chain.Address
	Signature []byte
}

// Block is a produced block.
type Block struct {
	Number     uint64
	Time       time.Duration
	ParentHash chain.Hash32
	Hash       chain.Hash32
	Proposer   chain.Address
	BaseFee    *big.Int
	GasUsed    uint64
	// StateRoot is the Merkle root of the world state after executing
	// this block; it is part of the block hash.
	StateRoot    chain.Hash32
	TxHashes     []chain.Hash32
	Attestations []Attestation
}

// Validator is a staked consensus participant.
type Validator struct {
	Key     *polcrypto.KeyPair
	Address chain.Address
	Stake   uint64
}

type pendingTx struct {
	tx        *Tx
	submitted time.Duration
	// delayed marks a transaction whose propagation was pushed back by an
	// injected tx_delay fault; inclusion counts as the recovery.
	delayed bool
}

// Chain is one simulated Ethereum-family network.
type Chain struct {
	cfg        Config
	clock      *chain.Clock
	rng        *chain.Rand
	st         *state
	blocks     []*Block
	mempool    []*pendingTx
	receipts   map[chain.Hash32]*chain.Receipt
	validators []*Validator
	baseFee    *big.Int

	justified uint64
	finalized uint64

	// spikeBlocksLeft tracks the remaining blocks of an ongoing
	// congestion episode.
	spikeBlocksLeft int
	// faultSpike marks the current episode as fault-injected; its end is
	// the recovery.
	faultSpike bool

	// flt injects deterministic faults at the mempool and demand model;
	// nil when fault injection is off.
	flt *faults.Injector

	// history is the explorer's transaction log (Fig. 3.1).
	history []TxRecord

	burned *big.Int
	tipped *big.Int

	// rcptAcc is the rolling hash of every receipt ever included, folded
	// in canonical block order (foldReceipt); rcptCount is how many.
	// Together with the state root they let Digest stay O(1) and let
	// retention pruning drop old receipts without changing the digest.
	rcptAcc   chain.Hash32
	rcptCount uint64

	// retention caps how many recent blocks keep their receipts and
	// explorer rows; <= 0 retains everything.
	retention int

	// shards is the execution fan-out Step may use; <=1 means serial.
	// shardStats tallies per-shard work once SetShards configures it.
	shards     int
	shardStats *chain.ShardStats

	// clientRng is the pre-forked stream clients draw their simulated
	// RPC/API latencies from; see newChain for why it is not forked
	// lazily. Every client attached to the chain shares it.
	clientRng *chain.Rand

	// obs holds the chain's instrumentation; nil when uninstrumented.
	obs *chainObs
}

// NewChain creates a network from a preset and a deterministic seed. It
// is a thin wrapper over Open's in-memory path; chains that should
// restart from a committed state root go through Open directly.
func NewChain(cfg Config, seed uint64) *Chain {
	c, err := Open(Options{Config: cfg, Seed: seed})
	if err != nil {
		// Unreachable: the in-memory path has no failure modes.
		panic("eth: " + err.Error())
	}
	return c
}

func newChain(cfg Config, seed uint64) *Chain {
	c := &Chain{
		cfg:      cfg,
		clock:    chain.NewClock(),
		rng:      chain.NewRand(seed).Fork("eth:" + cfg.Name),
		st:       newState(),
		receipts: make(map[chain.Hash32]*chain.Receipt),
		baseFee:  new(big.Int).Set(cfg.InitialBaseFee),
		burned:   new(big.Int),
		tipped:   new(big.Int),
	}
	// The client stream is forked here, at a fixed point in construction,
	// rather than lazily in NewClient: forking consumes a draw from the
	// chain rng, and a lazy fork would make the chain's stream position
	// depend on whether — and when — a client is attached. A chain
	// reopened from a checkpoint re-forks this stream at the same point,
	// so attaching a client to it never perturbs the restored rng state.
	c.clientRng = c.rng.Fork("client")
	keyRng := c.rng.Fork("validators")
	for i := 0; i < cfg.ValidatorCount; i++ {
		kp := polcrypto.MustGenerateKeyPair(keyRng)
		c.validators = append(c.validators, &Validator{
			Key:     kp,
			Address: chain.AddressFromPublicKey(kp.Public),
			Stake:   32, // every validator stakes exactly 32 ETH
		})
	}
	genesis := &Block{Number: 0, Time: 0, BaseFee: new(big.Int).Set(cfg.InitialBaseFee)}
	genesis.Hash = chain.Hash32(polcrypto.Hash([]byte("genesis:" + cfg.Name)))
	c.blocks = append(c.blocks, genesis)
	return c
}

// Config returns the network configuration.
func (c *Chain) Config() Config { return c.cfg }

// SetFaults attaches a fault injector to the mempool and demand model.
func (c *Chain) SetFaults(inj *faults.Injector) { c.flt = inj }

// Faults returns the attached fault injector, nil when off.
func (c *Chain) Faults() *faults.Injector { return c.flt }

// Now returns the current simulated time.
func (c *Chain) Now() time.Duration { return c.clock.Now() }

// BaseFee returns the current base fee per gas in wei.
func (c *Chain) BaseFee() *big.Int { return new(big.Int).Set(c.baseFee) }

// Head returns the latest block.
func (c *Chain) Head() *Block { return c.blocks[len(c.blocks)-1] }

// FinalizedBlock returns the number of the last finalized checkpoint block.
func (c *Chain) FinalizedBlock() uint64 { return c.finalized }

// BurnedAndTipped reports the cumulative burned base fees and proposer tips.
func (c *Chain) BurnedAndTipped() (burned, tipped *big.Int) {
	return new(big.Int).Set(c.burned), new(big.Int).Set(c.tipped)
}

// NewAccount creates and funds an externally-owned account.
func (c *Chain) NewAccount(balance *big.Int) *Account {
	kp := polcrypto.MustGenerateKeyPair(c.rng.Fork("account"))
	addr := chain.AddressFromPublicKey(kp.Public)
	if balance != nil && balance.Sign() > 0 {
		c.st.AddBalance(addr, balance)
	}
	return &Account{Key: kp, Address: addr}
}

// Balance returns an address's balance as an Amount in the chain's unit.
func (c *Chain) Balance(addr chain.Address) chain.Amount {
	return chain.NewAmount(c.st.GetBalance(addr), c.cfg.Unit)
}

// StorageAt reads one raw storage word of a contract — the eth_getStorageAt
// facility connectors use for free state reads.
func (c *Chain) StorageAt(addr chain.Address, key chain.Hash32) chain.Hash32 {
	return c.st.GetStorage(addr, key)
}

// ContractCode returns the deployed code at an address, if any.
func (c *Chain) ContractCode(addr chain.Address) ([]byte, bool) {
	return c.st.Code(addr)
}

// StateRoot returns the Merkle root of the current world state.
func (c *Chain) StateRoot() chain.Hash32 { return c.st.Root() }

// SetRetention keeps receipts, explorer history and block bodies only for
// the most recent n blocks; n <= 0 (the default) retains everything.
// Long soaks set a small window so memory is bounded by live state, not
// by rounds: the digest is unaffected because receipts fold into the
// rolling accumulator at inclusion time.
func (c *Chain) SetRetention(n int) { c.retention = n }

// Submit errors.
var (
	ErrUnderpriced      = errors.New("eth: max fee below base fee floor")
	ErrInsufficientEth  = errors.New("eth: insufficient balance for gas + value")
	ErrNonceTooLow      = errors.New("eth: nonce too low")
	ErrGasLimitTooLow   = errors.New("eth: gas limit below intrinsic cost")
	ErrGasAboveBlockCap = errors.New("eth: gas limit exceeds block gas limit")
)

// Submit validates a signed transaction and queues it. The returned hash
// identifies the eventual receipt.
func (c *Chain) Submit(tx *Tx) (chain.Hash32, error) {
	if err := tx.Verify(); err != nil {
		return chain.Hash32{}, err
	}
	return c.submitVerified(tx)
}

// submitVerified runs the admission checks past signature verification and
// queues the transaction. SubmitBatch calls it after verifying signatures
// concurrently; the checks and fault draws here must stay serial, in
// submission order, so batched and one-by-one submission build the same
// mempool and consume the same fault streams.
func (c *Chain) submitVerified(tx *Tx) (chain.Hash32, error) {
	if tx.GasLimit > c.cfg.BlockGasLimit {
		return chain.Hash32{}, ErrGasAboveBlockCap
	}
	intrinsic := evm.IntrinsicGas(tx.Data, tx.To == nil)
	if tx.GasLimit < intrinsic {
		return chain.Hash32{}, fmt.Errorf("%w: limit %d < intrinsic %d", ErrGasLimitTooLow, tx.GasLimit, intrinsic)
	}
	if tx.MaxFee.Cmp(c.cfg.MinBaseFee) < 0 {
		return chain.Hash32{}, ErrUnderpriced
	}
	if n := c.st.Nonce(tx.From); tx.Nonce < n {
		return chain.Hash32{}, fmt.Errorf("%w: %d < %d", ErrNonceTooLow, tx.Nonce, n)
	}
	upfront := new(big.Int).Mul(tx.MaxFee, new(big.Int).SetUint64(tx.GasLimit))
	upfront.Add(upfront, tx.Value)
	if c.st.GetBalance(tx.From).Cmp(upfront) < 0 {
		return chain.Hash32{}, ErrInsufficientEth
	}
	if err := c.flt.Try(faults.ClassTxDrop, "eth.mempool"); err != nil {
		// The node accepted the RPC but the transaction never propagates;
		// the submitter's retry layer recovers by resubmitting.
		return chain.Hash32{}, err
	}
	p := &pendingTx{tx: tx, submitted: c.clock.Now()}
	if hit, mag := c.flt.Draw(faults.ClassTxDelay, "eth.mempool"); hit {
		// Propagation stalls for up to three slots before the transaction
		// becomes includable; inclusion is the recovery.
		stall := time.Duration(mag * float64(3*c.cfg.SlotDuration))
		p.submitted += stall
		p.delayed = true
		if c.obs != nil {
			c.obs.faultDelay.ObserveDuration(stall)
		}
	}
	c.mempool = append(c.mempool, p)
	if c.obs != nil {
		c.obs.txsSubmitted.Inc()
		c.obs.mempoolDepth.Set(float64(len(c.mempool)))
	}
	return tx.Hash(), nil
}

// PendingNonce is the next usable nonce for an account: the state nonce,
// advanced past any transactions already queued in the mempool.
func (c *Chain) PendingNonce(addr chain.Address) uint64 {
	n := c.st.Nonce(addr)
	for _, p := range c.mempool {
		if p.tx.From == addr && p.tx.Nonce >= n {
			n = p.tx.Nonce + 1
		}
	}
	return n
}

// Receipt returns the receipt for a transaction hash once included.
func (c *Chain) Receipt(h chain.Hash32) (*chain.Receipt, bool) {
	r, ok := c.receipts[h]
	return r, ok
}

// nextSlotTime is the production time of the next block.
func (c *Chain) nextSlotTime() time.Duration {
	return time.Duration(c.Head().Number+1) * c.cfg.SlotDuration
}

// Step produces the next block: selects the proposer, fills the block with
// background demand plus the queued client transactions that outbid it,
// executes them, collects committee attestations and updates the base fee.
func (c *Chain) Step() *Block {
	blockTime := c.nextSlotTime()
	c.clock.AdvanceTo(blockTime)
	parent := c.Head()

	proposer := c.pickProposer(parent.Hash, parent.Number+1)
	demand := c.backgroundDemand()

	blk := &Block{
		Number:     parent.Number + 1,
		Time:       blockTime,
		ParentHash: parent.Hash,
		Proposer:   proposer.Address,
		BaseFee:    new(big.Int).Set(c.baseFee),
	}

	// Highest tips first; FIFO within equal tips; nonces must be in order
	// per sender.
	sort.SliceStable(c.mempool, func(i, j int) bool {
		ti := effectiveTip(c.mempool[i].tx, c.baseFee)
		tj := effectiveTip(c.mempool[j].tx, c.baseFee)
		if cmp := ti.Cmp(tj); cmp != 0 {
			return cmp > 0
		}
		return c.mempool[i].submitted < c.mempool[j].submitted
	})
	// Selection pass: decide the block's transaction set before executing
	// anything. Capacity is reserved by gas limit, not actual usage, so
	// selection never depends on execution results and the set is the same
	// whether execution later runs serially or sharded. selNonces tracks
	// nonces consumed by earlier selections in this block; selSpend tracks
	// each sender's reserved upfront cost (maxFee·gasLimit + value) so a
	// sender whose balance shrank since admission — or who queued more
	// transactions than the balance covers — is deferred instead of being
	// executed into an overdraft.
	var (
		sel       []*pendingTx
		remaining []*pendingTx
		reserved  uint64
		selNonces map[chain.Address]uint64
		selSpend  map[chain.Address]*big.Int
	)
	nextNonce := func(a chain.Address) uint64 {
		if n, ok := selNonces[a]; ok {
			return n
		}
		return c.st.Nonce(a)
	}
	covered := func(tx *Tx) (*big.Int, bool) {
		upfront := new(big.Int).Mul(tx.MaxFee, new(big.Int).SetUint64(tx.GasLimit))
		upfront.Add(upfront, tx.Value)
		if prior, ok := selSpend[tx.From]; ok {
			upfront.Add(upfront, prior)
		}
		return upfront, upfront.Cmp(c.st.GetBalance(tx.From)) <= 0
	}
	for _, p := range c.mempool {
		tx := p.tx
		spend, affordable := covered(tx)
		switch {
		case p.submitted >= blockTime:
			// Not yet propagated when the block was built.
		case tx.MaxFee.Cmp(c.baseFee) < 0:
			// Base fee above the cap: wait for it to drop.
		case tx.Nonce != nextNonce(tx.From):
			// Nonce gap: wait for the earlier transaction.
		case !affordable:
			// The sender's balance no longer covers every selected
			// transaction's worst case; defer rather than overdraw.
		default:
			tip := effectiveTip(tx, c.baseFee)
			outbid := demand * math.Exp(-bigToFloat(tip)/bigToFloat(c.cfg.TipScale))
			if uint64(outbid)+reserved+tx.GasLimit <= c.cfg.BlockGasLimit {
				if selNonces == nil {
					selNonces = make(map[chain.Address]uint64)
					selSpend = make(map[chain.Address]*big.Int)
				}
				selNonces[tx.From] = tx.Nonce + 1
				selSpend[tx.From] = spend
				reserved += tx.GasLimit
				sel = append(sel, p)
				continue
			}
		}
		if c.obs != nil && p.submitted < blockTime {
			// Propagated but priced out (or nonce-gapped) this block.
			c.obs.txsDeferred.Inc()
		}
		remaining = append(remaining, p)
	}
	c.mempool = remaining

	// Execution (serial or sharded — applyBatch decides), then the
	// serialized merge in canonical order: receipts, proposer tip, burn
	// tally and explorer rows are applied exactly as the serial path would.
	receipts, effects := c.applyBatch(sel, blk)
	userGas := uint64(0)
	for i, p := range sel {
		tx := p.tx
		rcpt := receipts[i]
		rcpt.Submitted = p.submitted
		c.receipts[tx.Hash()] = rcpt
		c.foldReceipt(tx.Hash(), rcpt)
		blk.TxHashes = append(blk.TxHashes, tx.Hash())
		userGas += rcpt.GasUsed
		eff := effects[i]
		c.st.AddBalance(blk.Proposer, eff.tip)
		c.burned.Add(c.burned, eff.burn)
		c.tipped.Add(c.tipped, eff.tip)
		if eff.record {
			c.recordTx(tx, rcpt, eff.target, eff.isCreate)
		}
		if p.delayed {
			c.flt.Recover(faults.ClassTxDelay)
		}
		if c.obs != nil {
			c.obs.txsIncluded.Inc()
			c.obs.inclusionLatency.Observe((blk.Time - p.submitted).Seconds())
			c.obs.inclusionSketch.Observe((blk.Time - p.submitted).Seconds())
		}
	}

	bg := uint64(demand)
	if bg+userGas > c.cfg.BlockGasLimit {
		bg = c.cfg.BlockGasLimit - userGas
	}
	blk.GasUsed = bg + userGas

	blk.StateRoot = c.st.Root()
	blk.Hash = blockHash(blk)
	blk.Attestations = c.attest(blk)
	c.blocks = append(c.blocks, blk)
	c.updateBaseFee(blk)
	c.updateFinality()
	c.pruneRetention()
	if c.obs != nil {
		c.obs.blocksProduced.Inc()
		c.obs.blockGasUsed.Add(blk.GasUsed)
		bf, _ := new(big.Float).SetInt(c.baseFee).Float64()
		c.obs.baseFee.Set(bf)
		c.obs.mempoolDepth.Set(float64(len(c.mempool)))
		if c.obs.log.Enabled(obs.LevelDebug) {
			c.obs.log.Debug("block produced", "chain", c.cfg.Name,
				"number", blk.Number, "txs", len(blk.TxHashes),
				"gas_used", blk.GasUsed, "base_fee", c.baseFee.String())
		}
	}
	return blk
}

// effectiveTip is min(maxTip, maxFee - baseFee), the EIP-1559 priority fee
// the proposer actually receives.
func effectiveTip(tx *Tx, baseFee *big.Int) *big.Int {
	headroom := new(big.Int).Sub(tx.MaxFee, baseFee)
	if headroom.Sign() < 0 {
		return new(big.Int)
	}
	if headroom.Cmp(tx.MaxTip) > 0 {
		return new(big.Int).Set(tx.MaxTip)
	}
	return headroom
}

func bigToFloat(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	if f <= 0 {
		return 1
	}
	return f
}

// backgroundDemand samples the gas demanded by the rest of the network for
// the next block. Demand is lognormal around the configured mean; spike
// episodes multiply it for a geometric number of blocks.
func (c *Chain) backgroundDemand() float64 {
	mean := c.cfg.CongestionMeanGas
	if c.cfg.CongestionElasticity > 0 {
		ratio := bigToFloat(c.cfg.InitialBaseFee) / bigToFloat(c.baseFee)
		mean *= math.Pow(ratio, c.cfg.CongestionElasticity)
	}
	d := mean * math.Exp(c.cfg.CongestionSigma*c.rng.NormFloat64()-c.cfg.CongestionSigma*c.cfg.CongestionSigma/2)
	if c.spikeBlocksLeft == 0 {
		if hit, mag := c.flt.Draw(faults.ClassCongestion, "eth.demand"); hit {
			// Injected storm: blocks fill for one to five blocks; the
			// episode's end is the recovery.
			c.spikeBlocksLeft = 1 + int(mag*4)
			c.faultSpike = true
			if c.obs != nil {
				c.obs.congestionSpikes.Inc()
			}
		}
	}
	if c.spikeBlocksLeft > 0 {
		c.spikeBlocksLeft--
		if c.spikeBlocksLeft == 0 && c.faultSpike {
			c.faultSpike = false
			c.flt.Recover(faults.ClassCongestion)
		}
		return d * c.cfg.SpikeFactor
	}
	if c.rng.Float64() < c.cfg.SpikeProb {
		mean := c.cfg.SpikeBlocksMean
		if mean < 1 {
			mean = 1
		}
		c.spikeBlocksLeft = 1 + int(c.rng.ExpFloat64()*(mean-1)+0.5)
		c.spikeBlocksLeft--
		if c.obs != nil {
			c.obs.congestionSpikes.Inc()
			c.obs.log.Info("congestion spike started", "chain", c.cfg.Name,
				"blocks", c.spikeBlocksLeft+1, "factor", c.cfg.SpikeFactor)
		}
		return d * c.cfg.SpikeFactor
	}
	return d
}

// pickProposer performs the stake-weighted RANDAO-style proposer selection
// for a slot.
func (c *Chain) pickProposer(parentHash chain.Hash32, slot uint64) *Validator {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], slot)
	h := polcrypto.Hash(parentHash[:], buf[:])
	seed := binary.BigEndian.Uint64(h[:8])
	total := uint64(0)
	for _, v := range c.validators {
		total += v.Stake
	}
	target := seed % total
	acc := uint64(0)
	for _, v := range c.validators {
		acc += v.Stake
		if target < acc {
			return v
		}
	}
	return c.validators[len(c.validators)-1]
}

// attest collects the slot committee's signatures over the block hash. The
// simulator's validators are honest, so a supermajority always attests; the
// signatures are real and verified by VerifyBlock.
func (c *Chain) attest(blk *Block) []Attestation {
	committee := c.committee(blk.ParentHash, blk.Number)
	out := make([]Attestation, 0, len(committee))
	for _, v := range committee {
		out = append(out, Attestation{
			Validator: v.Address,
			Signature: v.Key.Sign(blk.Hash[:]),
		})
	}
	return out
}

func (c *Chain) committee(parentHash chain.Hash32, slot uint64) []*Validator {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], slot)
	h := polcrypto.Hash([]byte("committee"), parentHash[:], buf[:])
	rng := chain.NewRand(binary.BigEndian.Uint64(h[:8]))
	idx := make([]int, len(c.validators))
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	n := c.cfg.CommitteeSize
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]*Validator, 0, n)
	for _, i := range idx[:n] {
		out = append(out, c.validators[i])
	}
	return out
}

// VerifyBlock checks a block's attestations: at least 2/3 of its slot
// committee must have signed its hash.
func (c *Chain) VerifyBlock(blk *Block) error {
	committee := c.committee(blk.ParentHash, blk.Number)
	byAddr := make(map[chain.Address]*Validator, len(committee))
	for _, v := range committee {
		byAddr[v.Address] = v
	}
	valid := 0
	for _, at := range blk.Attestations {
		v, ok := byAddr[at.Validator]
		if !ok {
			return fmt.Errorf("eth: attestation from non-committee validator %s", at.Validator)
		}
		if !polcrypto.Verify(v.Key.Public, blk.Hash[:], at.Signature) {
			return fmt.Errorf("eth: bad attestation from %s: %w", at.Validator, polcrypto.ErrBadSignature)
		}
		valid++
	}
	if valid*3 < len(committee)*2 {
		return fmt.Errorf("eth: only %d/%d committee attestations", valid, len(committee))
	}
	return nil
}

func blockHash(b *Block) chain.Hash32 {
	var buf []byte
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], b.Number)
	buf = append(buf, n[:]...)
	buf = append(buf, b.ParentHash[:]...)
	buf = append(buf, b.Proposer[:]...)
	buf = append(buf, b.BaseFee.Bytes()...)
	buf = append(buf, b.StateRoot[:]...)
	for _, h := range b.TxHashes {
		buf = append(buf, h[:]...)
	}
	return chain.Hash32(polcrypto.Hash(buf))
}

// pruneRetention drops receipts, explorer rows and block bodies older
// than the retention window. Everything digest-relevant already lives in
// the rolling accumulators, so pruning never changes Digest.
func (c *Chain) pruneRetention() {
	if c.retention <= 0 || len(c.blocks) <= c.retention {
		return
	}
	for _, old := range c.blocks[:len(c.blocks)-c.retention] {
		for _, h := range old.TxHashes {
			delete(c.receipts, h)
		}
	}
	kept := make([]*Block, c.retention)
	copy(kept, c.blocks[len(c.blocks)-c.retention:])
	c.blocks = kept
	cutoff := c.Head().Number + 1 - uint64(c.retention)
	first := sort.Search(len(c.history), func(i int) bool {
		return c.history[i].Block >= cutoff
	})
	if first > 0 {
		c.history = append([]TxRecord(nil), c.history[first:]...)
	}
}

// updateBaseFee applies the EIP-1559 adjustment: ±1/8 of the deviation from
// the gas target per block, at most 12.5%.
func (c *Chain) updateBaseFee(blk *Block) {
	target := c.cfg.BlockGasLimit / 2
	used := blk.GasUsed
	delta := new(big.Int).Set(c.baseFee)
	if used > target {
		diff := used - target
		delta.Mul(delta, new(big.Int).SetUint64(diff))
		delta.Div(delta, new(big.Int).SetUint64(target*8))
		c.baseFee.Add(c.baseFee, delta)
	} else {
		diff := target - used
		delta.Mul(delta, new(big.Int).SetUint64(diff))
		delta.Div(delta, new(big.Int).SetUint64(target*8))
		c.baseFee.Sub(c.baseFee, delta)
	}
	if c.baseFee.Cmp(c.cfg.MinBaseFee) < 0 {
		c.baseFee.Set(c.cfg.MinBaseFee)
	}
}

// updateFinality advances the justified/finalized checkpoints at epoch
// boundaries (simplified Casper FFG: with an honest supermajority every
// epoch justifies, and the previous justified checkpoint finalizes).
func (c *Chain) updateFinality() {
	head := c.Head().Number
	epoch := uint64(c.cfg.SlotsPerEpoch)
	if epoch == 0 || head%epoch != 0 {
		return
	}
	c.finalized = c.justified
	c.justified = head
}

// txEffects carries a transaction's serialized side effects out of
// executeOn: shard workers must not touch the proposer balance, the chain's
// burn/tip tallies or the explorer log, so those are returned and applied
// by Step in canonical order after every shard finishes.
type txEffects struct {
	burn     *big.Int
	tip      *big.Int
	target   chain.Address
	isCreate bool
	// record is false for executions the explorer does not log (deploys
	// that die on the code deposit before reaching the EVM).
	record bool
}

// executeOn runs a transaction against st — the canonical state on the
// serial path, a shard overlay on the parallel one — and builds its
// receipt. State changes of reverted executions are undone inside the EVM;
// fees are charged regardless, as on the real network. The sender is
// debited on st; the burn/tip split is returned for the caller to apply.
func (c *Chain) executeOn(st execState, tx *Tx, blk *Block) (*chain.Receipt, txEffects) {
	tip := effectiveTip(tx, blk.BaseFee)
	price := new(big.Int).Add(blk.BaseFee, tip)

	rcpt := &chain.Receipt{
		TxHash:      tx.Hash(),
		BlockNumber: blk.Number,
		Included:    blk.Time,
	}

	isCreate := tx.To == nil
	intrinsic := evm.IntrinsicGas(tx.Data, isCreate)
	var target chain.Address
	if isCreate {
		target = chain.ContractAddress(tx.From, tx.Nonce)
	} else {
		target = *tx.To
	}
	eff := txEffects{target: target, isCreate: isCreate}
	st.SetNonce(tx.From, tx.Nonce+1)

	depositGas := uint64(0)
	code, _ := st.Code(target)
	callData := tx.Data
	if isCreate {
		// Our compiler produces runtime code directly; deployment stores
		// it and runs the constructor calldata against it, charging the
		// per-byte code deposit. The connector frames the payload as
		// code||ctorData — see PackDeployData.
		code, callData = SplitDeployData(tx.Data)
		depositGas = uint64(len(code)) * evm.GasCodeDeposit
	}

	gasBudget := tx.GasLimit - intrinsic
	if depositGas > gasBudget {
		// Cannot afford the code deposit: the deployment fails consuming
		// everything.
		rcpt.GasUsed = tx.GasLimit
		rcpt.Reverted = true
		rcpt.RevertMsg = "out of gas: code deposit"
		eff.burn, eff.tip = chargeFeeOn(st, tx, rcpt.GasUsed, price, blk.BaseFee)
		rcpt.Fee = chain.NewAmount(new(big.Int).Mul(price, new(big.Int).SetUint64(rcpt.GasUsed)), c.cfg.Unit)
		return rcpt, eff
	}
	gasBudget -= depositGas

	// Credit the call value before execution; undo if it fails.
	valueMoved := false
	if tx.Value.Sign() > 0 {
		st.SubBalance(tx.From, tx.Value)
		st.AddBalance(target, tx.Value)
		valueMoved = true
	}
	if isCreate {
		st.SetCode(target, code)
	}

	var prof obs.Profiler
	if c.obs != nil {
		prof = c.obs.prof
	}
	res := evm.Execute(evm.Context{
		State:       st,
		Caller:      tx.From,
		Address:     target,
		Value:       tx.Value,
		CallData:    callData,
		GasLimit:    gasBudget,
		BlockNumber: blk.Number,
		Timestamp:   uint64(blk.Time / time.Second),
		Profiler:    prof,
	}, code)

	gasUsed := intrinsic + depositGas + res.GasUsed
	if res.Err == nil && !res.Reverted {
		// EIP-3529: refunds capped at gasUsed/5.
		refund := res.Refund
		if cap := gasUsed / 5; refund > cap {
			refund = cap
		}
		gasUsed -= refund
	} else {
		if valueMoved {
			st.AddBalance(tx.From, tx.Value)
			st.SubBalance(target, tx.Value)
		}
		if isCreate {
			st.DeleteCode(target)
		}
	}

	rcpt.GasUsed = gasUsed
	rcpt.Reverted = res.Reverted || res.Err != nil
	if res.Err != nil {
		rcpt.RevertMsg = res.Err.Error()
	} else {
		rcpt.RevertMsg = res.RevertMsg
	}
	rcpt.ReturnValue = res.ReturnData
	for _, l := range res.Logs {
		rcpt.Logs = append(rcpt.Logs, string(l.Data))
	}
	eff.burn, eff.tip = chargeFeeOn(st, tx, gasUsed, price, blk.BaseFee)
	rcpt.Fee = chain.NewAmount(new(big.Int).Mul(price, new(big.Int).SetUint64(gasUsed)), c.cfg.Unit)
	eff.record = true
	return rcpt, eff
}

// chargeFeeOn debits the sender's full fee on st and returns the
// burn/tip split. The proposer credit and the chain-wide tallies are the
// caller's to apply: they are shared across shards, so they must happen in
// canonical order during the merge, not inside a shard worker.
func chargeFeeOn(st execState, tx *Tx, gasUsed uint64, price, baseFee *big.Int) (burn, tipAmt *big.Int) {
	gas := new(big.Int).SetUint64(gasUsed)
	fee := new(big.Int).Mul(price, gas)
	st.SubBalance(tx.From, fee)
	burn = new(big.Int).Mul(baseFee, gas)
	tipAmt = new(big.Int).Sub(fee, burn)
	return burn, tipAmt
}

// deployPrefix frames code||ctorData in deployment calldata.
const deployPrefixLen = 4

// PackDeployData frames runtime code and constructor calldata into a single
// deployment payload.
func PackDeployData(code, ctorData []byte) []byte {
	out := make([]byte, deployPrefixLen, deployPrefixLen+len(code)+len(ctorData))
	binary.BigEndian.PutUint32(out, uint32(len(code)))
	out = append(out, code...)
	return append(out, ctorData...)
}

// SplitDeployData splits a deployment payload back into code and
// constructor calldata.
func SplitDeployData(data []byte) (code, ctorData []byte) {
	if len(data) < deployPrefixLen {
		return nil, nil
	}
	n := binary.BigEndian.Uint32(data)
	if int(n) > len(data)-deployPrefixLen {
		return data[deployPrefixLen:], nil
	}
	return data[deployPrefixLen : deployPrefixLen+int(n)], data[deployPrefixLen+int(n):]
}
