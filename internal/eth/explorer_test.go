package eth

import (
	"math/big"
	"strings"
	"testing"

	"agnopol/internal/evm"
)

func TestExplorerHistory(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	bob := c.NewAccount(eth(1))

	a := evm.NewAssembler()
	a.Op(evm.STOP)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := cl.Deploy(alice, code, nil, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Call(bob, addr, []byte{0xde, 0xad, 0xbe, 0xef}, big.NewInt(5), 100000); err != nil {
		t.Fatal(err)
	}

	records := c.HistoryOf(addr)
	if len(records) != 2 {
		t.Fatalf("history has %d records, want 2", len(records))
	}
	if records[0].Method != "Contract Creation" || !records[0].Contract {
		t.Fatalf("first record %+v", records[0])
	}
	if records[1].Method != "0xdeadbeef" {
		t.Fatalf("second record method %q", records[1].Method)
	}
	if records[1].From != bob.Address || records[1].Value.Int64() != 5 {
		t.Fatalf("second record %+v", records[1])
	}
	if records[0].Block >= records[1].Block {
		t.Fatal("history not in chain order")
	}

	// Alice's wallet history includes the deployment.
	if got := c.HistoryOf(alice.Address); len(got) != 1 {
		t.Fatalf("alice history %d records", len(got))
	}

	out := FormatHistory(addr, records, c.cfg.Unit)
	for _, want := range []string{"Contract Creation", "0xdeadbeef", "Txn Fee", addr.String()} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted history missing %q:\n%s", want, out)
		}
	}
	// Newest first: creation appears after the call in the rendering.
	if strings.Index(out, "Contract Creation") < strings.Index(out, "0xdeadbeef") {
		t.Fatalf("history not newest-first:\n%s", out)
	}
}

func TestExplorerRecordsReverted(t *testing.T) {
	c := newTestChain(t)
	cl := NewClient(c)
	alice := c.NewAccount(eth(1))
	b := evm.NewAssembler()
	b.Op(evm.CALLDATASIZE).PushLabel("rev").Op(evm.JUMPI).Op(evm.STOP)
	b.Label("rev").PushUint(0).PushUint(0).Op(evm.REVERT)
	code, err := b.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	_, addr, err := cl.Deploy(alice, code, nil, nil, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Call(alice, addr, []byte{1}, nil, 100000); err != nil {
		t.Fatal(err)
	}
	records := c.HistoryOf(addr)
	if len(records) != 2 || !records[1].Reverted {
		t.Fatalf("reverted call not recorded: %+v", records)
	}
	if !strings.Contains(FormatHistory(addr, records, c.cfg.Unit), "(reverted)") {
		t.Fatal("reverted marker missing from rendering")
	}
}
